// Package bench holds the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation section. Each
// benchmark runs the corresponding experiment end to end and reports the
// headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates (in miniature) every artifact the paper presents. The full
// rows/series come from `go run ./cmd/experiments -exp all`; see
// EXPERIMENTS.md for the paper-vs-measured record.
package bench

import (
	"context"
	"flag"
	"fmt"
	"testing"

	"simaibench/internal/clock"
	"simaibench/internal/datastore"
	"simaibench/internal/experiments"
	"simaibench/internal/sweep"
)

// sweepWorkers fans the independent points of the Fig 3/4/5/6 sweeps
// across cores (0 = all cores, 1 = serial). Sweep points are isolated
// single-threaded simulations, so reported metrics are identical at any
// worker count — only the wall time changes.
var sweepWorkers = flag.Int("sweepworkers", 0, "parallel sweep workers for the figure benchmarks (0 = all cores)")

func TestMain(m *testing.M) {
	flag.Parse()
	sweep.Workers = *sweepWorkers
	m.Run()
}

// validationCfg is a scaled-down validation run sized for benchmarking,
// parameterized by emulation clock. TimeScale 0.1 keeps the wall-mode
// run meaningful — padded iterations well above scheduler noise, yet
// still 10× compressed relative to the paper's native real-time mode —
// while the virtual run completes as fast as its real compute allows,
// so the measured wall/virtual ratio *understates* the speedup over an
// uncompressed run by 10×.
func validationCfg(mode experiments.ValidationMode, clk string) experiments.ValidationConfig {
	return experiments.ValidationConfig{
		Mode:         mode,
		TrainIters:   200,
		WritePeriod:  25,
		ReadPeriod:   5,
		PayloadBytes: 50_000,
		TimeScale:    0.1,
		Backend:      datastore.NodeLocal,
		SimInitS:     0.5,
		TrainInitS:   1.0,
		Clock:        clk,
	}
}

// BenchmarkTable2 regenerates Table 2 — the event-count comparison
// between the emulated original workflow and the mini-app — once per
// emulation clock. The wall/virtual ns-per-op ratio is the headline
// speedup of the virtual-time clock (recorded in BENCH_DES.json): the
// same two-component emulation, identical event structure, no real
// sleeping.
func BenchmarkTable2(b *testing.B) {
	for _, clk := range []string{clock.KindWall, clock.KindVirtual} {
		b.Run("clock="+clk, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				orig, err := experiments.RunValidation(context.Background(), validationCfg(experiments.Original, clk))
				if err != nil {
					b.Fatal(err)
				}
				mini, err := experiments.RunValidation(context.Background(), validationCfg(experiments.MiniApp, clk))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(orig.Sim.Timesteps), "orig-sim-steps")
				b.ReportMetric(float64(mini.Sim.Timesteps), "mini-sim-steps")
				b.ReportMetric(float64(orig.Sim.TransportEvents), "orig-sim-events")
				b.ReportMetric(float64(mini.Sim.TransportEvents), "mini-sim-events")
			}
		})
	}
}

// BenchmarkTable3IterationStats regenerates Table 3: iteration-time
// mean/std for both modes (virtual clock — the default scenario path).
func BenchmarkTable3IterationStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		orig, err := experiments.RunValidation(context.Background(), validationCfg(experiments.Original, clock.KindVirtual))
		if err != nil {
			b.Fatal(err)
		}
		mini, err := experiments.RunValidation(context.Background(), validationCfg(experiments.MiniApp, clock.KindVirtual))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(orig.Sim.IterMean*1000, "orig-sim-iter-ms")
		b.ReportMetric(mini.Sim.IterMean*1000, "mini-sim-iter-ms")
		b.ReportMetric(orig.Sim.IterStd*1000, "orig-sim-std-ms")
		b.ReportMetric(mini.Sim.IterStd*1000, "mini-sim-std-ms")
	}
}

// BenchmarkFig2Timeline regenerates Fig 2: the execution-timeline
// rendering of a validation run.
func BenchmarkFig2Timeline(b *testing.B) {
	res, err := experiments.RunValidation(context.Background(), validationCfg(experiments.MiniApp, clock.KindVirtual))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink discard
		if err := res.Timeline.Render(&sink, 0, 0.25, 100); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Timeline.Spans())), "timeline-spans")
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFig3Throughput regenerates Fig 3: the Pattern 1 backend ×
// size × scale throughput sweep on the simulated cluster.
func BenchmarkFig3Throughput(b *testing.B) {
	for _, nodes := range experiments.Fig3NodeCounts {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var points []experiments.Pattern1Point
			for i := 0; i < b.N; i++ {
				var err error
				points, err = experiments.RunFig3(context.Background(), nodes, 300)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, pt := range points {
				if pt.SizeMB == 8 {
					b.ReportMetric(pt.WriteGBps, pt.Backend.String()+"-8MB-GBps")
				}
			}
		})
	}
}

// BenchmarkFig4ComputeVsTransport regenerates Fig 4: compute versus
// transport time per event for the two extreme backends.
func BenchmarkFig4ComputeVsTransport(b *testing.B) {
	for _, nodes := range experiments.Fig3NodeCounts {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var points []experiments.Pattern1Point
			for i := 0; i < b.N; i++ {
				var err error
				points, err = experiments.RunFig4(context.Background(), nodes, 300)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, pt := range points {
				if pt.SizeMB == 32 {
					b.ReportMetric(pt.WriteMean*1000, pt.Backend.String()+"-32MB-write-ms")
				}
			}
		})
	}
}

// BenchmarkFig5NonLocalThroughput regenerates Fig 5: the 2-node
// local-write / non-local-read profile.
func BenchmarkFig5NonLocalThroughput(b *testing.B) {
	var points []experiments.Fig5Point
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.RunFig5Sweep(context.Background(), 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range points {
		if pt.SizeMB == 10 {
			b.ReportMetric(pt.ReadGBps, pt.Backend.String()+"-10MB-read-GBps")
		}
	}
}

// BenchmarkFig6ManyToOne regenerates Fig 6: training runtime per
// iteration for the many-to-one pattern at both ensemble scales.
func BenchmarkFig6ManyToOne(b *testing.B) {
	for _, nodes := range experiments.Fig6NodeCounts {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var points []experiments.Fig6Point
			for i := 0; i < b.N; i++ {
				var err error
				points, err = experiments.RunFig6Sweep(context.Background(), nodes, 200)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, pt := range points {
				if pt.SizeMB == 1 {
					b.ReportMetric(pt.ExecPerIterS*1000, pt.Backend.String()+"-1MB-exec-ms")
				}
			}
		})
	}
}

// BenchmarkScaleOut tracks the multi-tenant subsystem: one shared-Redis
// scale-out point per tenant count, reporting the contention observables
// (mean staging latency and aggregate delivered throughput) so the perf
// trajectory of the co-scheduler + shared-queue path is recorded next to
// the single-tenant figures.
func BenchmarkScaleOut(b *testing.B) {
	for _, tenants := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			var pt experiments.ScaleOutPoint
			for i := 0; i < b.N; i++ {
				pt = experiments.RunScaleOut(experiments.ScaleOutConfig{
					Tenants: tenants, Backend: datastore.Redis, SizeMB: 8, TrainIters: 200,
				})
			}
			b.ReportMetric(pt.StageMeanS*1000, "redis-8MB-stage-ms")
			b.ReportMetric(pt.AggGBps, "redis-8MB-agg-GBps")
		})
	}
}

// BenchmarkResilience runs the fault-injection campaign in its two
// regimes: healthy (MTBF=∞ — the interruptibility hooks riding along
// for free on the scale-out hot path) and a short failure-dominated
// checkpoint/restart cell. The healthy cell's cost should track
// BenchmarkScaleOut/tenants=4; the faulty cell adds injector events,
// checkpoint traffic and recovery reads.
func BenchmarkResilience(b *testing.B) {
	cells := []struct {
		name string
		cfg  experiments.ResilienceConfig
	}{
		{"mtbf=inf", experiments.ResilienceConfig{Backend: datastore.Redis, TrainIters: 200}},
		{"mtbf=20_ckpt=4", experiments.ResilienceConfig{
			Backend: datastore.Redis, TrainIters: 200, MTBFS: 20, CkptIntervalS: 4}},
	}
	for _, cell := range cells {
		b.Run(cell.name, func(b *testing.B) {
			var pt experiments.ResiliencePoint
			for i := 0; i < b.N; i++ {
				pt = experiments.RunResilience(cell.cfg)
			}
			b.ReportMetric(pt.WastedFrac, "wasted-frac")
			b.ReportMetric(pt.EffGBps, "eff-GBps")
			b.ReportMetric(float64(pt.Crashes), "crashes")
		})
	}
}

// BenchmarkAblationIncast regenerates the incast-latency ablation (a
// mechanism check on the Fig 6b small-message gap).
func BenchmarkAblationIncast(b *testing.B) {
	var points []experiments.IncastAblationPoint
	for i := 0; i < b.N; i++ {
		var err error
		points, err = experiments.RunIncastAblation(context.Background(), []float64{0, 0.010}, 100)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range points {
		if pt.SizeMB == 1 {
			b.ReportMetric(pt.DragonFetchS*1000,
				fmt.Sprintf("dragon-1MB-lat%.0fms-fetch-ms", pt.IncastLatencyS*1000))
		}
	}
}

// BenchmarkStreaming regenerates the staged-polling vs streaming
// comparison with real data movement, once per emulation clock: in
// wall mode the consumer genuinely sleeps its poll intervals; in
// virtual mode the same bytes move but every wait is a virtual-clock
// pad, so the benchmark runs at transfer speed.
func BenchmarkStreaming(b *testing.B) {
	for _, clk := range []string{clock.KindWall, clock.KindVirtual} {
		b.Run("clock="+clk, func(b *testing.B) {
			var points []experiments.StreamingPoint
			for i := 0; i < b.N; i++ {
				var err error
				points, err = experiments.RunStreamingComparison(context.Background(), experiments.StreamingConfig{
					SizeMB: 1, Snapshots: 10, Clock: clk,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, pt := range points {
				b.ReportMetric(pt.LatencyMeanS*1000, string(pt.Method)+"-latency-ms")
			}
		})
	}
}

// BenchmarkGuardrails prices the run guardrails on a healthy sweep
// cell: one Fig 3 point (node-local, 8 MB, 8 nodes) with the DES event
// budget disarmed versus armed with a generous limit. An armed guard
// costs one branch per executed event and nothing else — the guard=on
// vs guard=off delta recorded in BENCH_DES.json is the zero-cost
// evidence, alongside the byte-identical-output tests
// (TestGuardrailsZeroCostOnHealthyRuns).
func BenchmarkGuardrails(b *testing.B) {
	cfg := experiments.Pattern1Config{
		Nodes: 8, Backend: datastore.NodeLocal, SizeMB: 8, TrainIters: 300,
	}
	for _, guarded := range []bool{false, true} {
		name, c := "guard=off", cfg
		if guarded {
			name = "guard=on"
			c.MaxEvents = 1 << 40
		}
		b.Run(name, func(b *testing.B) {
			var pt experiments.Pattern1Point
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = experiments.RunPattern1Checked(c)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.WriteGBps, "write-GBps")
		})
	}
}

// BenchmarkFig3LP prices the parallel DES engine on one Fig 3 point
// (node-local, 8 MB): the 512-node scale-out point at workers 1/2/4/8,
// plus the paper's 4096-node Fig-3 extrapolation at workers 1 and 4 —
// the headline scaling curve recorded in BENCH_DES.json as
// parallel_des. Metrics are bit-identical across worker counts (the
// equivalence suite enforces it); only wall time may change. On a
// single-core host the workers>1 rows measure the engine's
// synchronization overhead rather than speedup — the scaling shows on
// multicore CI.
func BenchmarkFig3LP(b *testing.B) {
	cases := []struct{ nodes, workers int }{
		{512, 1}, {512, 2}, {512, 4}, {512, 8},
		{4096, 1}, {4096, 4},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("nodes=%d/workers=%d", c.nodes, c.workers), func(b *testing.B) {
			var pt experiments.Pattern1Point
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = experiments.RunPattern1Checked(experiments.Pattern1Config{
					Nodes: c.nodes, Backend: datastore.NodeLocal, SizeMB: 8,
					TrainIters: 600, Workers: c.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.WriteGBps, "write-GBps")
			b.ReportMetric(float64(pt.Writes+pt.Reads), "ops")
		})
	}
}

// BenchmarkCampaign runs the facility-scale scheduling campaign at the
// two interesting offered-load multiples: 0.7× capacity (the healthy
// operating point) and 1.2× (sustained overload, where discipline
// choice dominates the tails). The reported p99 slowdowns are the
// headline contract recorded in BENCH_DES.json: at overload the
// size-aware policies (SRPT, Hermod) hold the p99 slowdown an order of
// magnitude below FIFO at the same ≥0.9 utilization.
func BenchmarkCampaign(b *testing.B) {
	for _, load := range []float64{0.7, 1.2} {
		for _, pol := range []string{"fifo", "srpt", "hermod"} {
			b.Run(fmt.Sprintf("load=%.1f_policy=%s", load, pol), func(b *testing.B) {
				var pt experiments.CampaignPoint
				for i := 0; i < b.N; i++ {
					var err error
					pt, err = experiments.RunCampaignChecked(experiments.CampaignConfig{
						Load: load, Policy: pol, Jobs: 2000,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(pt.SlowP99, "p99-slowdown")
				b.ReportMetric(pt.WaitP99S, "p99-wait-s")
				b.ReportMetric(pt.Util, "util")
			})
		}
	}
}
