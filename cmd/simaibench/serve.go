// The serve subcommand: simulation-as-a-service over the scenario
// registry.
//
//	simaibench serve -addr :8080 -workers 4 -queue 64
//
// serves POST /v1/run, GET /v1/scenarios, /healthz, /readyz and /statz
// (see internal/serve) until SIGINT/SIGTERM, then drains gracefully:
// readiness flips first, new runs get typed 503s, in-flight runs finish
// up to -drain-timeout and every completed result is flushed to its
// waiting caller before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"syscall"
	"time"

	_ "simaibench/internal/experiments" // registers the paper's scenarios
	"simaibench/internal/serve"
	"simaibench/internal/sigctx"
)

// serveMain is the testable body of `simaibench serve`: it parses args,
// serves until ctx or a termination signal cancels, and returns the
// process exit code (0 clean drain, 1 drain timeout or listener error,
// 2 flag-parse failure).
func serveMain(ctx context.Context, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("simaibench serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max simulations running concurrently (0 = all cores)")
	queue := fs.Int("queue", 64, "admission queue depth; a full queue sheds with 429 + Retry-After")
	cacheSize := fs.Int("cache-size", 1024, "result cache entries (LRU; negative disables caching)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight runs")
	runTimeout := fs.Duration("run-timeout", 120*time.Second, "default per-run deadline when the request carries none")
	maxEvents := fs.Int64("max-events", 0, "default DES event budget per sweep cell when the request carries none (0 = unlimited)")
	retries := fs.Int("retries", 0, "extra attempts per run on retryable failures")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	s := serve.New(serve.Config{
		Addr: *addr, Workers: *workers, QueueDepth: *queue, CacheSize: *cacheSize,
		DrainTimeout: *drainTimeout, RunTimeout: *runTimeout,
		MaxEvents: *maxEvents, Retries: *retries,
	})

	// First SIGINT/SIGTERM drains gracefully; a second kills outright
	// (sigctx restores default handling once the drain starts).
	sctx, stop := sigctx.WithSignals(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	go func() {
		<-s.Ready()
		fmt.Fprintf(stderr, "simaibench serve: serving on http://%s (queue %d, cache %d)\n",
			s.Addr(), *queue, *cacheSize)
	}()
	if err := s.ListenAndServe(sctx); err != nil {
		fmt.Fprintln(stderr, "simaibench serve:", err)
		return 1
	}
	fmt.Fprintln(stderr, "simaibench serve: drained cleanly")
	return 0
}
