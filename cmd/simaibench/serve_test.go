package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// End-to-end coverage of the serve subcommand against the real scenario
// registry (the experiments import), including the signal path the unit
// tests can only simulate: a genuine SIGTERM delivered to the process
// mid-serve must drain gracefully and exit 0.

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the
// subcommand's stderr while it runs.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var servingLine = regexp.MustCompile(`serving on (http://\S+)`)

// startServe launches serveMain with the given extra args on an
// ephemeral port and returns the announced base URL plus the exit-code
// channel.
func startServe(t *testing.T, args ...string) (string, chan int, *syncBuffer) {
	t.Helper()
	var errBuf syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- serveMain(context.Background(),
			append([]string{"-addr", "127.0.0.1:0"}, args...), &errBuf)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := servingLine.FindStringSubmatch(errBuf.String()); m != nil {
			return m[1], done, &errBuf
		}
		select {
		case code := <-done:
			t.Fatalf("serve exited early with code %d: %s", code, errBuf.String())
		default:
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("serve never announced its address: %s", errBuf.String())
	return "", nil, nil
}

func TestServeSubcommandSIGTERM(t *testing.T) {
	base, done, errBuf := startServe(t, "-workers", "2", "-drain-timeout", "10s")

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v (status %d)", err, resp.StatusCode)
	}
	resp.Body.Close()

	// One real scenario, cold then hot: byte-identical bodies, the
	// disposition only in X-Cache.
	req := `{"scenario":"fig5","params":{"sweep_iters":40},"seed":1}`
	post := func() (int, []byte, string) {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatalf("POST /v1/run: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body, resp.Header.Get("X-Cache")
	}
	st, cold, tag := post()
	if st != http.StatusOK || tag != "miss" {
		t.Fatalf("cold run: status %d X-Cache %q: %s", st, tag, cold)
	}
	st, hot, tag := post()
	if st != http.StatusOK || tag != "hit" {
		t.Fatalf("hot run: status %d X-Cache %q", st, tag)
	}
	if !bytes.Equal(cold, hot) {
		t.Fatalf("cached body differs from computed body")
	}

	// The real thing: SIGTERM to this very process. sigctx catches it,
	// the server drains, serveMain returns 0.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exited %d after SIGTERM: %s", code, errBuf.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not exit after SIGTERM: %s", errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "drained cleanly") {
		t.Fatalf("no clean-drain confirmation: %s", errBuf.String())
	}
	// The listener is gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatalf("listener still answering after shutdown")
	}
}

func TestServeSubcommandBadFlags(t *testing.T) {
	var errBuf syncBuffer
	if code := serveMain(context.Background(), []string{"-no-such-flag"}, &errBuf); code != 2 {
		t.Fatalf("bad flags: exit %d, want 2", code)
	}
}
