// Command simaibench runs a co-located one-to-one workflow mini-app from
// JSON component configurations — the CLI equivalent of the paper's
// quick-prototyping flow: pick a backend at runtime, point at a
// simulation config (Listing 2 schema) and an AI config, and get
// per-component iteration and transport statistics.
//
// Example:
//
//	simaibench -backend node-local -sim sim.json -ai ai.json \
//	    -train-iters 500 -payload-mb 1.2 -time-scale 0.01
//
// Omitting -sim/-ai uses the built-in nekRS-ML emulation configs.
//
// The serve subcommand runs the simulation service instead (HTTP/JSON
// API over the scenario registry with caching, admission control and
// graceful shutdown — see internal/serve):
//
//	simaibench serve -addr :8080
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"simaibench/internal/ai"
	"simaibench/internal/config"
	"simaibench/internal/datastore"
	"simaibench/internal/simulation"
	"simaibench/internal/workflow"
)

// builtinSimConfig is the Listing 2 nekRS emulation, with the heavy
// matmul swapped for a small kernel so timing emulation stays accurate
// under aggressive time scales.
const builtinSimConfig = `{
  "kernels": [{
    "name": "nekrs_iter",
    "mini_app_kernel": "AXPY",
    "run_time": 0.03147,
    "data_size": [512],
    "device": "xpu"
  }]
}`

const builtinAIConfig = `{
  "layers": [16, 32, 16],
  "lr": 0.01,
  "batch": 16,
  "run_time": 0.061,
  "device": "xpu"
}`

func main() {
	// Subcommand dispatch: `simaibench serve` is the long-running
	// simulation service; everything else is the original flag-driven
	// one-shot workflow run.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(serveMain(context.Background(), os.Args[2:], os.Stderr))
	}
	backendFlag := flag.String("backend", "node-local", "data transport backend: redis|dragon|node-local|filesystem")
	simPath := flag.String("sim", "", "simulation component config JSON (default: built-in nekRS emulation)")
	aiPath := flag.String("ai", "", "AI component config JSON (default: built-in trainer)")
	trainIters := flag.Int("train-iters", 500, "training iterations before the trainer stops the workflow")
	writePeriod := flag.Int("write-period", 100, "solver iterations between snapshot writes")
	readPeriod := flag.Int("read-period", 10, "training iterations between data polls")
	payloadMB := flag.Float64("payload-mb", 1.2, "staged array size in MB")
	timeScale := flag.Float64("time-scale", 0.01, "wall-clock compression factor")
	flag.Parse()

	if err := run(*backendFlag, *simPath, *aiPath, *trainIters, *writePeriod, *readPeriod, *payloadMB, *timeScale); err != nil {
		fmt.Fprintln(os.Stderr, "simaibench:", err)
		os.Exit(1)
	}
}

func run(backendName, simPath, aiPath string, trainIters, writePeriod, readPeriod int, payloadMB, timeScale float64) error {
	backend, err := datastore.ParseBackend(backendName)
	if err != nil {
		return err
	}
	simCfg, err := loadSimConfig(simPath)
	if err != nil {
		return err
	}
	aiCfg, err := loadAIConfig(aiPath)
	if err != nil {
		return err
	}

	mgr, info, err := datastore.StartBackend(backend, "")
	if err != nil {
		return err
	}
	defer mgr.Stop()
	fmt.Printf("backend %s deployed (%+v)\n", backend, info)

	// Stage real float64 arrays (random bytes would decode to NaNs and
	// poison the trainer's data loader).
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, int(payloadMB*1e6)/8)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	payload := ai.EncodeFloat64s(vals)

	const stopKey = "control/stop"
	var simReport simulation.Report
	var aiReport ai.Report

	w := workflow.New("simaibench")
	if err := w.Register(workflow.Component{
		Name: "sim",
		Body: func(ctx workflow.Ctx) error {
			store, err := datastore.Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			sim, err := simulation.New("sim", simCfg,
				simulation.WithStore(store), simulation.WithTimeScale(timeScale))
			if err != nil {
				return err
			}
			for step := 1; ; step++ {
				if err := sim.RunIteration(); err != nil {
					return err
				}
				if step%writePeriod == 0 {
					if err := sim.StageWrite(fmt.Sprintf("snap/%d", step), payload); err != nil {
						return err
					}
					if err := store.StageWrite("control/head", []byte(fmt.Sprint(step))); err != nil {
						return err
					}
				}
				if step%10 == 0 {
					if stop, _ := store.Poll(stopKey); stop {
						break
					}
				}
			}
			simReport = sim.Report()
			return nil
		},
	}); err != nil {
		return err
	}
	if err := w.Register(workflow.Component{
		Name: "train",
		Body: func(ctx workflow.Ctx) error {
			store, err := datastore.Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			tr, err := ai.New("train", aiCfg,
				ai.WithStore(store), ai.WithTimeScale(timeScale))
			if err != nil {
				return err
			}
			last := ""
			for i := 1; i <= trainIters; i++ {
				if _, err := tr.TrainIteration(); err != nil {
					return err
				}
				if i%readPeriod != 0 {
					continue
				}
				head, err := store.StageRead("control/head")
				if err != nil {
					continue // nothing staged yet
				}
				if string(head) == last {
					continue
				}
				last = string(head)
				if err := tr.UpdateLoader("snap/" + last); err != nil {
					return err
				}
			}
			if err := store.StageWrite(stopKey, []byte("1")); err != nil {
				return err
			}
			aiReport = tr.Report()
			return nil
		},
	}); err != nil {
		return err
	}

	if err := w.Launch(context.Background()); err != nil {
		return err
	}

	fmt.Printf("\nSimulation: %d steps, iter %.4f ± %.4f s, %d writes (mean %.4f s, %.3f GB/s)\n",
		simReport.Iterations, simReport.IterMean, simReport.IterStd,
		simReport.Writes, simReport.WriteMean, simReport.WriteGBps)
	fmt.Printf("Training:   %d steps, iter %.4f ± %.4f s, %d reads (mean %.4f s, %.3f GB/s), final loss %.4g\n",
		aiReport.Iterations, aiReport.IterMean, aiReport.IterStd,
		aiReport.Reads, aiReport.ReadMean, aiReport.ReadGBps, aiReport.LastLoss)
	return nil
}

func loadSimConfig(path string) (config.SimulationConfig, error) {
	if path == "" {
		return config.ParseSimulation([]byte(builtinSimConfig))
	}
	return config.LoadSimulation(path)
}

func loadAIConfig(path string) (config.AIConfig, error) {
	if path == "" {
		return config.ParseAI([]byte(builtinAIConfig))
	}
	return config.LoadAI(path)
}
