// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Each experiment id maps to one artifact:
//
//	table2  event-count validation (original vs mini-app)
//	table3  iteration-time statistics
//	fig2    execution timelines (ASCII)
//	fig3    Pattern 1 throughput sweep (8 and 512 nodes)
//	fig4    Pattern 1 compute vs transport time
//	fig5    Pattern 2 two-node non-local throughput
//	fig6    Pattern 2 many-to-one scaling (8 and 128 nodes)
//	all     everything above in order
//
// The validation experiments run in real mode (actual data movement on
// this machine, time-compressed); the scale experiments run on the
// simulated Aurora cluster. See EXPERIMENTS.md for paper-vs-measured.
package main

import (
	"flag"
	"fmt"
	"os"

	"simaibench/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table2|table3|fig2|fig3|fig4|fig5|fig6|streaming|ablation|all")
	trainIters := flag.Int("train-iters", 2500, "validation training iterations (paper: 5000)")
	sweepIters := flag.Int("sweep-iters", 600, "simulated training iterations per sweep point")
	timeScale := flag.Float64("time-scale", 0.01, "wall-clock compression for real-mode validation")
	parallel := flag.Int("parallel", 0, "sweep worker count (0 = all cores, 1 = serial); results are identical at any setting")
	flag.Parse()

	experiments.SweepWorkers = *parallel
	if err := run(*exp, *trainIters, *sweepIters, *timeScale); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, trainIters, sweepIters int, timeScale float64) error {
	out := os.Stdout
	needsValidation := exp == "table2" || exp == "table3" || exp == "fig2" || exp == "all"

	var orig, mini *experiments.ValidationResult
	if needsValidation {
		var err error
		fmt.Fprintf(out, "running validation (%d training iterations, time scale %g)...\n",
			trainIters, timeScale)
		orig, err = experiments.RunValidation(experiments.ValidationConfig{
			Mode: experiments.Original, TrainIters: trainIters, TimeScale: timeScale,
		})
		if err != nil {
			return err
		}
		mini, err = experiments.RunValidation(experiments.ValidationConfig{
			Mode: experiments.MiniApp, TrainIters: trainIters, TimeScale: timeScale,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	switch exp {
	case "table2":
		experiments.PrintTable2(out, orig, mini)
	case "table3":
		experiments.PrintTable3(out, orig, mini)
	case "fig2":
		return experiments.PrintFig2(out, orig, mini, 25)
	case "fig3":
		for _, nodes := range experiments.Fig3NodeCounts {
			experiments.PrintFig3(out, nodes, experiments.RunFig3(nodes, sweepIters))
			fmt.Fprintln(out)
		}
	case "fig4":
		for _, nodes := range experiments.Fig3NodeCounts {
			experiments.PrintFig4(out, nodes, experiments.RunFig4(nodes, sweepIters))
			fmt.Fprintln(out)
		}
	case "fig5":
		experiments.PrintFig5(out, experiments.RunFig5Sweep(50))
	case "fig6":
		for _, nodes := range experiments.Fig6NodeCounts {
			experiments.PrintFig6(out, nodes, experiments.RunFig6Sweep(nodes, sweepIters))
			fmt.Fprintln(out)
		}
	case "streaming":
		for _, size := range []float64{0.4, 2, 8} {
			points, err := experiments.RunStreamingComparison(experiments.StreamingConfig{SizeMB: size})
			if err != nil {
				return err
			}
			experiments.PrintStreaming(out, points)
			fmt.Fprintln(out)
		}
	case "ablation":
		experiments.PrintMDSAblation(out, experiments.RunMDSAblation(
			[]float64{0.00001, 0.0001, 0.0004, 0.0016}, sweepIters))
		fmt.Fprintln(out)
		experiments.PrintCacheAblation(out, experiments.RunCacheAblation(
			[]float64{2, 8.75, 35, 1000}, sweepIters))
		fmt.Fprintln(out)
		experiments.PrintIncastAblation(out, experiments.RunIncastAblation(
			[]float64{0, 0.002, 0.010, 0.040}, sweepIters))
	case "all":
		experiments.PrintTable2(out, orig, mini)
		fmt.Fprintln(out)
		experiments.PrintTable3(out, orig, mini)
		fmt.Fprintln(out)
		if err := experiments.PrintFig2(out, orig, mini, 25); err != nil {
			return err
		}
		for _, nodes := range experiments.Fig3NodeCounts {
			experiments.PrintFig3(out, nodes, experiments.RunFig3(nodes, sweepIters))
			fmt.Fprintln(out)
		}
		for _, nodes := range experiments.Fig3NodeCounts {
			experiments.PrintFig4(out, nodes, experiments.RunFig4(nodes, sweepIters))
			fmt.Fprintln(out)
		}
		experiments.PrintFig5(out, experiments.RunFig5Sweep(50))
		fmt.Fprintln(out)
		for _, nodes := range experiments.Fig6NodeCounts {
			experiments.PrintFig6(out, nodes, experiments.RunFig6Sweep(nodes, sweepIters))
			fmt.Fprintln(out)
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
