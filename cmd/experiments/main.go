// Command experiments runs the registered scenarios that regenerate the
// tables and figures of the paper's evaluation section, plus this
// reproduction's extensions. Scenarios live in a registry (see
// internal/scenario); discover them with
//
//	experiments -list
//
// and run one (or a group like "all", the paper's core artifacts) with
//
//	experiments -exp fig3                 # paper-identical text tables
//	experiments -exp fig3 -format json    # machine-readable per-point records
//	experiments -exp all -format csv -o results.csv
//
// The validation scenarios (table2, table3, fig2) and the streaming
// extension run in real mode: actual data movement on this machine. By
// default they pad on a deterministic virtual clock (-clock virtual)
// and complete at DES speed with bit-reproducible output; -clock wall
// restores the genuine time-compressed real-time emulation. The scale
// scenarios run on the simulated Aurora cluster either way. Progress
// goes to stderr so -format json|csv output stays parseable.
//
// -timeout, -retries and -max-events arm the run guardrails on every
// sweep cell (per-cell deadline, bounded retry, DES event budget); a
// failed cell becomes a structured, rendered failure instead of
// aborting the campaign, and the process exits nonzero so a partial
// artifact can never pass as complete. See EXPERIMENTS.md for
// paper-vs-measured, the exit-code contract and how to add a new
// scenario.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"simaibench/internal/clock"
	"simaibench/internal/experiments" // registers the paper's scenarios
	"simaibench/internal/mpi"
	"simaibench/internal/scenario"
	"simaibench/internal/sigctx"
	"simaibench/internal/sweep"
)

func main() {
	os.Exit(realMain(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable CLI body: it parses args, runs the selected
// scenarios and returns the process exit code. Exit 0 means every cell of
// every scenario completed; a run whose guardrails caught failed cells
// still writes its (partial) artifacts but exits nonzero with a per-cell
// summary on stderr, so scripted campaigns cannot mistake a partial
// result for a complete one. Exit 2 is flag-parse failure.
func realMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id or group (see -list)")
	list := fs.Bool("list", false, "list registered scenarios and groups, then exit (-format md emits the EXPERIMENTS.md table)")
	format := fs.String("format", "text", "output format: text|json|csv (with -list: text|md)")
	out := fs.String("o", "", "write output to FILE (default stdout)")
	trainIters := fs.Int("train-iters", 2500, "validation training iterations (paper: 5000)")
	sweepIters := fs.Int("sweep-iters", 600, "simulated training iterations per sweep point")
	timeScale := fs.Float64("time-scale", 0.01, "wall-clock compression for real-mode validation")
	clockKind := fs.String("clock", "", "emulation clock for the real-mode scenarios: virtual (default; deterministic, DES speed) or wall (genuine real-time emulation)")
	tenants := fs.Int("tenants", 0, "max co-scheduled workflows for the scale-out family (0 = scenario default, 16)")
	mtbf := fs.Float64("mtbf", 0, "per-node MTBF seconds for the resilience family: narrows the sweep to {healthy, MTBF} (0 = full default grid)")
	ckpt := fs.Float64("ckpt", 0, "checkpoint interval seconds for the resilience family: narrows the sweep to {fail-stop, CKPT} (0 = full default grid)")
	rate := fs.Float64("rate", 0, "offered load multiple for the campaign family: narrows the sweep to {RATE} (0 = full default grid)")
	policy := fs.String("policy", "", "scheduling policy for the campaign family: fifo|edf|srpt|hermod (empty = all policies)")
	jobs := fs.Int("jobs", 0, "open-loop jobs per campaign sweep cell (0 = scenario default, 2000)")
	parallel := fs.Int("parallel", 0, "sweep worker count (0 = all cores, 1 = serial); results are identical at any setting")
	workers := fs.Int("workers", 1, "parallel DES workers per simulated cell for fig3/fig4/scale-out/gradsync (1 = sequential engine); metrics are bit-identical at any setting")
	collAlgo := fs.String("collalgo", "", "collective algorithm for the gradsync family: flat|ring|tree|hier (empty = full algorithm sweep)")
	timeout := fs.Float64("timeout", 0, "per-sweep-cell wall-clock deadline in seconds (0 = none); a wedged cell is abandoned with a structured failure instead of hanging the run")
	retries := fs.Int("retries", 0, "extra attempts per sweep cell on retryable failures (0 = fail on first error)")
	maxEvents := fs.Int64("max-events", 0, "DES event budget per simulated sweep cell (0 = unlimited); a runaway cell aborts with a structured budget error")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sweep.Workers = *parallel
	if *list {
		// -o applies to -list too, so `-list -format md -o FILE` can
		// regenerate the EXPERIMENTS.md table block directly. The list
		// is rendered in memory first so a write failure (ENOSPC,
		// closed pipe) cannot leave a truncated file with exit 0.
		var buf bytes.Buffer
		switch *format {
		case "md":
			buf.WriteString(scenarioTableMD())
		case "text":
			printList(&buf)
		default:
			fmt.Fprintf(stderr, "experiments: unknown -list format %q (valid: text, md)\n", *format)
			return 1
		}
		if err := writeOut(*out, stdout, buf.Bytes()); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		return 0
	}
	if _, err := clock.FromKind(*clockKind); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	if _, err := mpi.ParseCollAlgo(*collAlgo); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	params := scenario.Params{
		TrainIters:   *trainIters,
		SweepIters:   *sweepIters,
		TimeScale:    *timeScale,
		Tenants:      *tenants,
		Clock:        *clockKind,
		MTBF:         *mtbf,
		CkptInterval: *ckpt,
		Rate:         *rate,
		Policy:       *policy,
		Jobs:         *jobs,
		TimeoutS:     *timeout,
		Retries:      *retries,
		MaxEvents:    *maxEvents,
		CollAlgo:     *collAlgo,
	}
	if *workers > 1 {
		// Only record an explicit parallel-engine request: Workers stays
		// zero at the default so workers=1 artifacts (JSON params
		// included) remain byte-identical to pre-knob output.
		params.Workers = *workers
	}
	failedCells, err := run(ctx, *exp, *format, *out, params, stdout, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	if failedCells > 0 {
		fmt.Fprintf(stderr, "experiments: %d sweep cell(s) failed; partial results were written\n", failedCells)
		return 1
	}
	return 0
}

// printList enumerates the registry: every scenario id with its
// description, then the runnable groups.
func printList(w io.Writer) {
	fmt.Fprintln(w, "Scenarios:")
	for _, s := range scenario.All() {
		fmt.Fprintf(w, "  %-10s %s\n", s.Name(), s.Description())
	}
	fmt.Fprintln(w, "Groups:")
	for _, g := range scenario.Groups() {
		members, _ := scenario.Resolve(g)
		fmt.Fprintf(w, "  %-10s", g)
		for i, m := range members {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, m.Name())
		}
		fmt.Fprintln(w)
	}
}

// scenarioTableMD renders the registry as the markdown table embedded in
// EXPERIMENTS.md (between the scenario-table markers). The doc table is
// generated from the registry — and a test pins the EXPERIMENTS.md copy
// to this output — so the CLI's -list and the documentation cannot
// diverge.
func scenarioTableMD() string {
	var b strings.Builder
	b.WriteString("| id | description |\n|---|---|\n")
	for _, s := range scenario.All() {
		fmt.Fprintf(&b, "| `%s` | %s |\n", s.Name(), s.Description())
	}
	for _, g := range scenario.Groups() {
		members, _ := scenario.Resolve(g)
		names := make([]string, len(members))
		for i, m := range members {
			names[i] = m.Name()
		}
		fmt.Fprintf(&b, "| `%s` (group) | %s |\n", g, strings.Join(names, " "))
	}
	return b.String()
}

// writeOut writes data to path, or to stdout when path is empty,
// reporting any write error.
func writeOut(path string, stdout io.Writer, data []byte) error {
	if path == "" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// run executes the resolved scenarios and reports them. It returns the
// number of sweep cells the guardrails caught failing (the scenarios
// still completed around them — their partial artifacts are written) and
// the first hard error, if any.
func run(ctx context.Context, exp, format, outPath string, params scenario.Params,
	stdout, stderr io.Writer) (failedCells int, _ error) {
	scenarios, err := scenario.Resolve(exp)
	if err != nil {
		return 0, err
	}
	reporter, err := scenario.NewReporter(format)
	if err != nil {
		return 0, err
	}

	// Open the output first so a bad -o path fails before minutes of
	// sweeps, not after.
	w := stdout
	var outFile *os.File
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return 0, err
		}
		outFile = f
		w = f
	}

	// Ctrl-C cancels the in-flight scenario instead of killing the
	// process mid-write; sigctx restores default signal handling as soon
	// as the first interrupt lands, so a second Ctrl-C kills outright.
	sigCtx, stop := sigctx.WithSignals(ctx)
	defer stop()

	// Scenarios sharing this run share one validation measurement per
	// configuration (table2/table3/fig2 in -exp all).
	ctx = experiments.WithValidationCache(sigCtx)

	var results []*scenario.Result
	var runErr error
	for _, s := range scenarios {
		fmt.Fprintf(stderr, "running %s (%s)...\n", s.Name(), s.Description())
		res, err := s.Run(ctx, params)
		if err != nil {
			runErr = fmt.Errorf("%s: %w", s.Name(), err)
			break
		}
		results = append(results, res)
	}

	// Report whatever completed even when a later scenario failed or was
	// cancelled: minutes of finished sweeps should never be discarded.
	// Cells that failed under the guardrails are summarized on stderr in
	// addition to the reporter's own rendering, so the diagnosis survives
	// even when -o sends the artifacts to a file.
	if len(results) > 0 {
		if err := reporter.Report(w, results); err != nil {
			if runErr == nil {
				runErr = err
			}
			return failedCells, runErr
		}
		if runErr != nil {
			fmt.Fprintln(stderr, "experiments: reported partial results:", runErr)
		}
		for _, res := range results {
			for _, f := range res.Failures {
				fmt.Fprintf(stderr, "experiments: %s: %s[%d] failed after %d attempt(s): %s\n",
					res.Scenario, f.Sweep, f.Cell, f.Attempts, f.Error)
				failedCells++
			}
		}
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	return failedCells, runErr
}
