// Package stream implements ADIOS2-SST-style point-to-point streaming —
// the transport the paper names as future work ("we plan [to] add
// support for point-to-point streaming, for instance using ADIOS2").
// Unlike the staging backends (key-value, polled), a stream delivers
// *steps* in order with backpressure: the writer publishes one step at a
// time (BeginStep / Put / EndStep), and a reader consumes them in
// sequence, blocking until the next step arrives.
//
// Two transports mirror the rest of the repo: an in-process bounded
// queue, and a TCP transport with length-prefixed frames. Semantics
// follow SST's bounded queue: when the queue is full the writer's
// EndStep blocks (reliable mode) until the reader drains a step.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrClosed reports use of a closed stream endpoint.
var ErrClosed = errors.New("stream: closed")

// ErrDone reports that the writer closed the stream and all steps have
// been consumed (the reader's end-of-stream).
var ErrDone = errors.New("stream: done")

// Step is one published timestep: a set of named variables.
type Step struct {
	Index int
	vars  map[string][]byte
}

// Get returns a variable's payload; ok is false when absent.
func (s *Step) Get(name string) (data []byte, ok bool) {
	data, ok = s.vars[name]
	return
}

// Vars lists variable names, sorted.
func (s *Step) Vars() []string {
	names := make([]string, 0, len(s.vars))
	for n := range s.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bytes returns the total payload size of the step.
func (s *Step) Bytes() int {
	n := 0
	for _, v := range s.vars {
		n += len(v)
	}
	return n
}

// Writer publishes steps. Implementations: the in-proc pipe writer and
// the TCP writer.
type Writer interface {
	// BeginStep starts the next step. Exactly one step may be open at a
	// time.
	BeginStep() (*OpenStep, error)
	// Close ends the stream; the reader drains queued steps then sees
	// ErrDone.
	Close() error
}

// Reader consumes steps in order.
type Reader interface {
	// NextStep blocks for the next step; ErrDone after the writer
	// closes and the queue drains.
	NextStep() (*Step, error)
	// Close releases the reader.
	Close() error
}

// OpenStep is a step under construction on the writer side.
type OpenStep struct {
	step   *Step
	commit func(*Step) error
	done   bool
}

// Put adds a named variable to the open step. The payload is copied.
func (o *OpenStep) Put(name string, data []byte) error {
	if o.done {
		return fmt.Errorf("stream: Put after EndStep")
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	o.step.vars[name] = buf
	return nil
}

// EndStep publishes the step, blocking while the queue is full
// (SST reliable mode).
func (o *OpenStep) EndStep() error {
	if o.done {
		return fmt.Errorf("stream: double EndStep")
	}
	o.done = true
	return o.commit(o.step)
}

// pipe is the in-process transport: a bounded queue of steps.
type pipe struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*Step
	capacity int
	next     int
	closedW  bool
	closedR  bool
	open     bool // a step is under construction
}

// Pipe returns a connected in-process writer/reader pair with the given
// queue capacity (>= 1).
func Pipe(capacity int) (Writer, Reader) {
	if capacity < 1 {
		capacity = 1
	}
	p := &pipe{capacity: capacity}
	p.cond = sync.NewCond(&p.mu)
	return (*pipeWriter)(p), (*pipeReader)(p)
}

type pipeWriter pipe

func (w *pipeWriter) BeginStep() (*OpenStep, error) {
	p := (*pipe)(w)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closedW {
		return nil, ErrClosed
	}
	if p.open {
		return nil, fmt.Errorf("stream: BeginStep with a step already open")
	}
	p.open = true
	idx := p.next
	p.next++
	return &OpenStep{
		step:   &Step{Index: idx, vars: map[string][]byte{}},
		commit: p.commit,
	}, nil
}

func (p *pipe) commit(s *Step) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) >= p.capacity && !p.closedR && !p.closedW {
		p.cond.Wait()
	}
	p.open = false
	if p.closedW {
		return ErrClosed
	}
	if p.closedR {
		// Reader gone: drop the step (writer keeps running, like SST
		// with a departed reader).
		p.cond.Broadcast()
		return nil
	}
	p.queue = append(p.queue, s)
	p.cond.Broadcast()
	return nil
}

func (w *pipeWriter) Close() error {
	p := (*pipe)(w)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closedW = true
	p.cond.Broadcast()
	return nil
}

type pipeReader pipe

func (r *pipeReader) NextStep() (*Step, error) {
	p := (*pipe)(r)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closedR {
			return nil, ErrClosed
		}
		if len(p.queue) > 0 {
			s := p.queue[0]
			p.queue = p.queue[1:]
			p.cond.Broadcast() // wake a writer blocked on a full queue
			return s, nil
		}
		if p.closedW {
			return nil, ErrDone
		}
		p.cond.Wait()
	}
}

func (r *pipeReader) Close() error {
	p := (*pipe)(r)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closedR = true
	p.cond.Broadcast()
	return nil
}
