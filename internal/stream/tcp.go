package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP framing: each step is
//
//	[8B step index][4B var count]
//	repeated: [4B name length][name][8B data length][data]
//
// followed by the next step; a frame with var count 0xFFFFFFFF marks
// end-of-stream. Backpressure comes from TCP flow control plus the
// writer-side bounded queue.
const endOfStreamMark = ^uint32(0)

// maxStreamVar bounds one variable payload (1 GiB) against corruption.
const maxStreamVar = 1 << 30

// TCPWriter serves a stream to exactly one reader over TCP.
type TCPWriter struct {
	ln   net.Listener
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
	next int
	open bool
	done bool
}

// ListenTCP starts a stream writer on addr; the returned writer's
// BeginStep blocks until a reader connects.
func ListenTCP(addr string) (*TCPWriter, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen %s: %w", addr, err)
	}
	return &TCPWriter{ln: ln}, nil
}

// Addr returns the bound address readers dial.
func (t *TCPWriter) Addr() string { return t.ln.Addr().String() }

// ensureConn accepts the reader connection lazily.
func (t *TCPWriter) ensureConn() error {
	if t.conn != nil {
		return nil
	}
	conn, err := t.ln.Accept()
	if err != nil {
		return fmt.Errorf("stream: accept: %w", err)
	}
	t.conn = conn
	t.w = bufio.NewWriterSize(conn, 1<<16)
	return nil
}

// BeginStep starts the next step (accepting the reader on first use).
func (t *TCPWriter) BeginStep() (*OpenStep, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil, ErrClosed
	}
	if t.open {
		return nil, fmt.Errorf("stream: BeginStep with a step already open")
	}
	if err := t.ensureConn(); err != nil {
		return nil, err
	}
	t.open = true
	idx := t.next
	t.next++
	return &OpenStep{
		step:   &Step{Index: idx, vars: map[string][]byte{}},
		commit: t.commit,
	}, nil
}

func (t *TCPWriter) commit(s *Step) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.open = false
	if t.done {
		return ErrClosed
	}
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(s.Index))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(s.vars)))
	if _, err := t.w.Write(hdr[:]); err != nil {
		return err
	}
	for _, name := range s.Vars() {
		data := s.vars[name]
		var nl [4]byte
		binary.BigEndian.PutUint32(nl[:], uint32(len(name)))
		if _, err := t.w.Write(nl[:]); err != nil {
			return err
		}
		if _, err := t.w.WriteString(name); err != nil {
			return err
		}
		var dl [8]byte
		binary.BigEndian.PutUint64(dl[:], uint64(len(data)))
		if _, err := t.w.Write(dl[:]); err != nil {
			return err
		}
		if _, err := t.w.Write(data); err != nil {
			return err
		}
	}
	return t.w.Flush()
}

// Close marks end-of-stream and tears down the listener.
func (t *TCPWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return nil
	}
	t.done = true
	if t.w != nil {
		var hdr [12]byte
		binary.BigEndian.PutUint32(hdr[8:], endOfStreamMark)
		t.w.Write(hdr[:])
		t.w.Flush()
	}
	if t.conn != nil {
		t.conn.Close()
	}
	return t.ln.Close()
}

// TCPReader consumes a stream over TCP.
type TCPReader struct {
	conn net.Conn
	r    *bufio.Reader
	done bool
}

// DialTCP connects to a stream writer.
func DialTCP(addr string) (*TCPReader, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dial %s: %w", addr, err)
	}
	return &TCPReader{conn: conn, r: bufio.NewReaderSize(conn, 1<<16)}, nil
}

// NextStep blocks for the next framed step.
func (t *TCPReader) NextStep() (*Step, error) {
	if t.done {
		return nil, ErrDone
	}
	var hdr [12]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			t.done = true
			return nil, ErrDone
		}
		return nil, err
	}
	nvars := binary.BigEndian.Uint32(hdr[8:])
	if nvars == endOfStreamMark {
		t.done = true
		return nil, ErrDone
	}
	s := &Step{Index: int(binary.BigEndian.Uint64(hdr[:8])), vars: map[string][]byte{}}
	for i := uint32(0); i < nvars; i++ {
		var nl [4]byte
		if _, err := io.ReadFull(t.r, nl[:]); err != nil {
			return nil, err
		}
		nameLen := binary.BigEndian.Uint32(nl[:])
		if nameLen > maxStreamVar {
			return nil, fmt.Errorf("stream: name length %d exceeds limit", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(t.r, name); err != nil {
			return nil, err
		}
		var dl [8]byte
		if _, err := io.ReadFull(t.r, dl[:]); err != nil {
			return nil, err
		}
		dataLen := binary.BigEndian.Uint64(dl[:])
		if dataLen > maxStreamVar {
			return nil, fmt.Errorf("stream: var %q length %d exceeds limit", name, dataLen)
		}
		data := make([]byte, dataLen)
		if _, err := io.ReadFull(t.r, data); err != nil {
			return nil, err
		}
		s.vars[string(name)] = data
	}
	return s, nil
}

// Close releases the connection.
func (t *TCPReader) Close() error {
	t.done = true
	return t.conn.Close()
}
