package stream

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// transports runs a behaviour test against both the in-proc pipe and the
// TCP transport.
func transports(t *testing.T, fn func(t *testing.T, w Writer, r Reader)) {
	t.Run("pipe", func(t *testing.T) {
		w, r := Pipe(4)
		t.Cleanup(func() { w.Close(); r.Close() })
		fn(t, w, r)
	})
	t.Run("tcp", func(t *testing.T) {
		tw, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tr, err := DialTCP(tw.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tw.Close(); tr.Close() })
		fn(t, tw, tr)
	})
}

func publish(t *testing.T, w Writer, vars map[string][]byte) {
	t.Helper()
	step, err := w.BeginStep()
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range vars {
		if err := step.Put(name, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := step.EndStep(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleStepRoundTrip(t *testing.T) {
	transports(t, func(t *testing.T, w Writer, r Reader) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			publish(t, w, map[string][]byte{
				"velocity": []byte("vvv"),
				"pressure": []byte("pp"),
			})
		}()
		s, err := r.NextStep()
		if err != nil {
			t.Fatal(err)
		}
		<-done
		if s.Index != 0 {
			t.Fatalf("index = %d", s.Index)
		}
		v, ok := s.Get("velocity")
		if !ok || string(v) != "vvv" {
			t.Fatalf("velocity = %q,%v", v, ok)
		}
		if got := s.Vars(); len(got) != 2 || got[0] != "pressure" {
			t.Fatalf("vars = %v", got)
		}
		if s.Bytes() != 5 {
			t.Fatalf("bytes = %d", s.Bytes())
		}
	})
}

func TestStepsArriveInOrder(t *testing.T) {
	transports(t, func(t *testing.T, w Writer, r Reader) {
		const n = 25
		go func() {
			for i := 0; i < n; i++ {
				publish(t, w, map[string][]byte{"x": {byte(i)}})
			}
			w.Close()
		}()
		for i := 0; i < n; i++ {
			s, err := r.NextStep()
			if err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if s.Index != i {
				t.Fatalf("step index = %d, want %d", s.Index, i)
			}
			v, _ := s.Get("x")
			if v[0] != byte(i) {
				t.Fatalf("step %d payload = %v", i, v)
			}
		}
		if _, err := r.NextStep(); !errors.Is(err, ErrDone) {
			t.Fatalf("after close: %v, want ErrDone", err)
		}
	})
}

func TestEndOfStream(t *testing.T) {
	transports(t, func(t *testing.T, w Writer, r Reader) {
		go func() {
			publish(t, w, map[string][]byte{"a": []byte("1")})
			w.Close()
		}()
		if _, err := r.NextStep(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.NextStep(); !errors.Is(err, ErrDone) {
			t.Fatalf("err = %v, want ErrDone", err)
		}
		// ErrDone is sticky.
		if _, err := r.NextStep(); !errors.Is(err, ErrDone) {
			t.Fatalf("second err = %v, want ErrDone", err)
		}
	})
}

func TestBackpressureBlocksWriter(t *testing.T) {
	w, r := Pipe(2)
	defer r.Close()
	// Fill the queue.
	publish(t, w, map[string][]byte{"x": nil})
	publish(t, w, map[string][]byte{"x": nil})
	blocked := make(chan struct{})
	go func() {
		publish(t, w, map[string][]byte{"x": nil}) // must block
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("writer did not block on full queue")
	case <-time.After(20 * time.Millisecond):
	}
	// Draining one step unblocks it.
	if _, err := r.NextStep(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-blocked:
	case <-time.After(2 * time.Second):
		t.Fatal("writer stayed blocked after drain")
	}
	w.Close()
}

func TestDoubleEndStep(t *testing.T) {
	w, r := Pipe(2)
	defer w.Close()
	defer r.Close()
	step, _ := w.BeginStep()
	step.Put("x", nil)
	if err := step.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := step.EndStep(); err == nil {
		t.Fatal("double EndStep succeeded")
	}
	if err := step.Put("y", nil); err == nil {
		t.Fatal("Put after EndStep succeeded")
	}
}

func TestBeginStepWhileOpen(t *testing.T) {
	w, r := Pipe(2)
	defer w.Close()
	defer r.Close()
	if _, err := w.BeginStep(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.BeginStep(); err == nil {
		t.Fatal("second BeginStep with open step succeeded")
	}
}

func TestWriterAfterClose(t *testing.T) {
	w, r := Pipe(2)
	r.Close()
	w.Close()
	if _, err := w.BeginStep(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestReaderGoneDropsSteps(t *testing.T) {
	w, r := Pipe(1)
	r.Close()
	// Writer keeps working; steps are dropped, no deadlock.
	for i := 0; i < 5; i++ {
		publish(t, w, map[string][]byte{"x": {byte(i)}})
	}
	w.Close()
}

func TestPutCopiesData(t *testing.T) {
	w, r := Pipe(2)
	defer w.Close()
	defer r.Close()
	buf := []byte{1, 2, 3}
	step, _ := w.BeginStep()
	step.Put("x", buf)
	buf[0] = 99
	step.EndStep()
	s, err := r.NextStep()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("x")
	if v[0] != 1 {
		t.Fatalf("payload mutated after Put: %v", v)
	}
}

func TestLargeStepOverTCP(t *testing.T) {
	tw, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()
	payload := bytes.Repeat([]byte{0x77}, 4<<20)
	go func() {
		step, err := tw.BeginStep()
		if err != nil {
			t.Error(err)
			return
		}
		step.Put("big", payload)
		step.EndStep()
	}()
	tr, err := DialTCP(tw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	s, err := tr.NextStep()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("big")
	if !bytes.Equal(v, payload) {
		t.Fatal("4MB step corrupted over TCP")
	}
}

func TestConcurrentProducerConsumerThroughput(t *testing.T) {
	w, r := Pipe(8)
	const steps = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < steps; i++ {
			publish(t, w, map[string][]byte{"x": {byte(i)}})
		}
		w.Close()
	}()
	got := 0
	for {
		_, err := r.NextStep()
		if errors.Is(err, ErrDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	wg.Wait()
	if got != steps {
		t.Fatalf("received %d steps, want %d", got, steps)
	}
}

func TestPropertyStepVarsRoundTripTCP(t *testing.T) {
	tw, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()
	tr, err := DialTCP(tw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	f := func(name string, data []byte) bool {
		if name == "" {
			name = "v"
		}
		step, err := tw.BeginStep()
		if err != nil {
			return false
		}
		step.Put(name, data)
		errCh := make(chan error, 1)
		go func() { errCh <- step.EndStep() }()
		s, err := tr.NextStep()
		if err != nil || <-errCh != nil {
			return false
		}
		v, ok := s.Get(name)
		return ok && bytes.Equal(v, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPipeStep1MB(b *testing.B) {
	w, r := Pipe(8)
	payload := make([]byte, 1<<20)
	go func() {
		for {
			step, err := w.BeginStep()
			if err != nil {
				return
			}
			step.Put("x", payload)
			if step.EndStep() != nil {
				return
			}
		}
	}()
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.NextStep(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	r.Close()
	w.Close()
}

func BenchmarkTCPStep1MB(b *testing.B) {
	tw, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer tw.Close()
	payload := make([]byte, 1<<20)
	go func() {
		for {
			step, err := tw.BeginStep()
			if err != nil {
				return
			}
			step.Put("x", payload)
			if step.EndStep() != nil {
				return
			}
		}
	}()
	tr, err := DialTCP(tw.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.NextStep(); err != nil {
			b.Fatal(err)
		}
	}
}

func ExamplePipe() {
	w, r := Pipe(2)
	go func() {
		for i := 0; i < 2; i++ {
			step, _ := w.BeginStep()
			step.Put("field", []byte{byte(i)})
			step.EndStep()
		}
		w.Close()
	}()
	for {
		s, err := r.NextStep()
		if err != nil {
			break
		}
		v, _ := s.Get("field")
		fmt.Println(s.Index, v[0])
	}
	// Output:
	// 0 0
	// 1 1
}
