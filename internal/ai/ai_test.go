package ai

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"simaibench/internal/config"
	"simaibench/internal/datastore"
	"simaibench/internal/mpi"
	"simaibench/internal/nn"
	"simaibench/internal/trace"
)

func smallAIConfig() config.AIConfig {
	return config.AIConfig{Layers: []int{8, 16, 4}, LR: 0.01, Batch: 8}
}

func TestPropertyFloat64Codec(t *testing.T) {
	f := func(xs []float64) bool {
		got := DecodeFloat64s(EncodeFloat64s(xs))
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if math.Float64bits(got[i]) != math.Float64bits(xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrainIterationRuns(t *testing.T) {
	tr, err := New("ai", smallAIConfig())
	if err != nil {
		t.Fatal(err)
	}
	loss, err := tr.TrainIteration()
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || math.IsNaN(loss) {
		t.Fatalf("loss = %v", loss)
	}
	r := tr.Report()
	if r.Iterations != 1 || r.LastLoss != loss {
		t.Fatalf("report = %+v", r)
	}
}

func TestTrainingLearnsOnSyntheticTask(t *testing.T) {
	tr, err := New("ai", config.AIConfig{Layers: []int{4, 32, 2}, LR: 0.05, Batch: 32}, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	first, err := tr.TrainIteration()
	if err != nil {
		t.Fatal(err)
	}
	last, err := tr.Train(300)
	if err != nil {
		t.Fatal(err)
	}
	if last > first*0.5 {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestRunTimePadding(t *testing.T) {
	cfg := smallAIConfig()
	rt := config.DistSpec{Type: "fixed", Value: 0.02}
	cfg.RunTime = &rt
	tr, err := New("ai", cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := tr.Train(3); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start).Seconds(); el < 0.05 {
		t.Fatalf("3 padded iterations took %v, want >= 0.06", el)
	}
	r := tr.Report()
	if math.Abs(r.IterMean-0.02)/0.02 > 0.5 {
		t.Fatalf("iter mean = %v, want ~0.02", r.IterMean)
	}
}

func TestTimeScale(t *testing.T) {
	cfg := smallAIConfig()
	rt := config.DistSpec{Type: "fixed", Value: 0.5}
	cfg.RunTime = &rt
	tr, err := New("ai", cfg, WithTimeScale(0.01))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	tr.Train(2)
	if time.Since(start).Seconds() > 0.5 {
		t.Fatal("time scale ignored")
	}
}

func TestUpdateLoaderFromStore(t *testing.T) {
	mgr, info, err := datastore.StartBackend(datastore.NodeLocal, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	store, _ := datastore.Connect(info)
	defer store.Close()

	tr, err := New("ai", smallAIConfig(), WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	// Stage 10 full samples (80 floats at input width 8) + a ragged tail.
	data := make([]float64, 83)
	for i := range data {
		data[i] = float64(i)
	}
	store.StageWrite("snap", EncodeFloat64s(data))
	if err := tr.UpdateLoader("snap"); err != nil {
		t.Fatal(err)
	}
	if tr.LoaderSize() != 10 {
		t.Fatalf("loader = %d samples, want 10 (tail dropped)", tr.LoaderSize())
	}
	r := tr.Report()
	if r.Reads != 1 || r.ReadGBps <= 0 {
		t.Fatalf("read stats = %+v", r)
	}
	// Training then consumes real staged data.
	if _, err := tr.TrainIteration(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateLoaderMissingKey(t *testing.T) {
	mgr, info, _ := datastore.StartBackend(datastore.NodeLocal, t.TempDir())
	defer mgr.Stop()
	store, _ := datastore.Connect(info)
	defer store.Close()
	tr, _ := New("ai", smallAIConfig(), WithStore(store))
	if err := tr.UpdateLoader("missing"); err == nil {
		t.Fatal("missing key loaded")
	}
	if tr.Report().Reads != 0 {
		t.Fatal("failed read counted")
	}
}

func TestUpdateLoaderWithoutStore(t *testing.T) {
	tr, _ := New("ai", smallAIConfig())
	if err := tr.UpdateLoader("k"); err == nil {
		t.Fatal("loader update without store succeeded")
	}
}

func TestLoaderBounded(t *testing.T) {
	mgr, info, _ := datastore.StartBackend(datastore.NodeLocal, t.TempDir())
	defer mgr.Stop()
	store, _ := datastore.Connect(info)
	defer store.Close()
	tr, _ := New("ai", smallAIConfig(), WithStore(store))
	big := make([]float64, 8*40000) // 40k samples
	store.StageWrite("big", EncodeFloat64s(big))
	tr.UpdateLoader("big")
	tr.UpdateLoader("big")
	if tr.LoaderSize() > 65536 {
		t.Fatalf("loader unbounded: %d", tr.LoaderSize())
	}
}

func TestDDPGradientAveraging(t *testing.T) {
	// With identical models and identical batches on every rank, a DDP
	// step must leave all ranks with identical weights; with different
	// batches, the all-reduce must still keep replicas in lockstep.
	const ranks = 4
	w := mpi.NewWorld(ranks)
	weights := make([][]float64, ranks)
	w.Run(func(c *mpi.Comm) {
		tr, err := New("ai", smallAIConfig(), WithComm(c), WithSeed(9))
		if err != nil {
			t.Error(err)
			return
		}
		// Different per-rank data RNG: reseed the trainer's rng by rank
		// by consuming rank draws.
		for i := 0; i < c.Rank()*13; i++ {
			tr.rng.Float64()
		}
		if _, err := tr.Train(5); err != nil {
			t.Error(err)
			return
		}
		var flat []float64
		for _, p := range tr.Model().Params() {
			flat = append(flat, p.W...)
		}
		weights[c.Rank()] = flat
	})
	for r := 1; r < ranks; r++ {
		if len(weights[r]) != len(weights[0]) {
			t.Fatalf("weight length mismatch")
		}
		for i := range weights[0] {
			if math.Abs(weights[r][i]-weights[0][i]) > 1e-12 {
				t.Fatalf("rank %d diverged at weight %d: %v vs %v",
					r, i, weights[r][i], weights[0][i])
			}
		}
	}
}

func TestDDPMatchesSequentialAveragedGradients(t *testing.T) {
	// 2-rank DDP with known per-rank batches must equal a serial step on
	// the averaged gradient. We verify via the public invariant: the
	// all-reduced gradient equals the mean of per-rank gradients.
	const ranks = 2
	w := mpi.NewWorld(ranks)
	grads := make([][]float64, ranks)
	var ddpGrad []float64
	w.Run(func(c *mpi.Comm) {
		rng := rand.New(rand.NewSource(33))
		model, _ := nn.NewMLP([]int{3, 4, 1}, rng)
		x := [][]float64{{float64(c.Rank() + 1), 2, 3}}
		y := [][]float64{{1}}
		model.ZeroGrad()
		_, g := nn.MSELoss(model.Forward(x), y)
		model.Backward(g)
		// Save local gradient before reduction.
		local := append([]float64(nil), model.Params()[0].Grad...)
		grads[c.Rank()] = local
		// DDP reduction.
		c.AllReduce(mpi.Sum, model.Params()[0].Grad)
		for i := range model.Params()[0].Grad {
			model.Params()[0].Grad[i] /= ranks
		}
		if c.Rank() == 0 {
			ddpGrad = append([]float64(nil), model.Params()[0].Grad...)
		}
	})
	for i := range ddpGrad {
		want := (grads[0][i] + grads[1][i]) / 2
		if math.Abs(ddpGrad[i]-want) > 1e-12 {
			t.Fatalf("ddp grad[%d] = %v, want %v", i, ddpGrad[i], want)
		}
	}
}

func TestTimelineSpans(t *testing.T) {
	tl := trace.New()
	tr, _ := New("ai", smallAIConfig(), WithTimeline(tl, "Training"))
	tr.Train(4)
	if got := tl.Count("Training", trace.KindCompute); got != 4 {
		t.Fatalf("compute spans = %d, want 4", got)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New("ai", config.AIConfig{Layers: []int{3}}); err != nil {
		return
	}
	t.Fatal("invalid config accepted")
}

func TestInferForwardOnly(t *testing.T) {
	tr, _ := New("ai", smallAIConfig(), WithSeed(4))
	x := [][]float64{{1, 2, 3, 4, 5, 6, 7, 8}}
	before := tr.Model().Params()[0].W[0]
	out := tr.Infer(x)
	if len(out) != 1 || len(out[0]) != 4 {
		t.Fatalf("infer shape = %dx%d, want 1x4", len(out), len(out[0]))
	}
	if tr.Model().Params()[0].W[0] != before {
		t.Fatal("inference modified weights")
	}
}

func TestInferIterationRoundTrip(t *testing.T) {
	mgr, info, err := datastore.StartBackend(datastore.NodeLocal, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	store, _ := datastore.Connect(info)
	defer store.Close()
	tr, _ := New("ai", smallAIConfig(), WithStore(store))
	// Stage 5 full input samples (input width 8).
	inputs := make([]float64, 40)
	for i := range inputs {
		inputs[i] = float64(i) / 40
	}
	store.StageWrite("infer/in", EncodeFloat64s(inputs))
	lat, err := tr.InferIteration("infer/in", "infer/out")
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("latency = %v", lat)
	}
	raw, err := store.StageRead("infer/out")
	if err != nil {
		t.Fatal(err)
	}
	preds := DecodeFloat64s(raw)
	if len(preds) != 5*4 { // 5 samples × output width 4
		t.Fatalf("prediction floats = %d, want 20", len(preds))
	}
}

func TestInferIterationErrors(t *testing.T) {
	tr, _ := New("ai", smallAIConfig())
	if _, err := tr.InferIteration("in", "out"); err == nil {
		t.Fatal("inference without store succeeded")
	}
	mgr, info, _ := datastore.StartBackend(datastore.NodeLocal, t.TempDir())
	defer mgr.Stop()
	store, _ := datastore.Connect(info)
	defer store.Close()
	tr2, _ := New("ai", smallAIConfig(), WithStore(store))
	if _, err := tr2.InferIteration("missing", "out"); err == nil {
		t.Fatal("inference on missing input succeeded")
	}
	// Too-short staged input: no full sample.
	store.StageWrite("short", EncodeFloat64s([]float64{1, 2}))
	if _, err := tr2.InferIteration("short", "out"); err == nil {
		t.Fatal("inference on short input succeeded")
	}
}

func TestLoaderDropsNonFiniteRows(t *testing.T) {
	mgr, info, _ := datastore.StartBackend(datastore.NodeLocal, t.TempDir())
	defer mgr.Stop()
	store, _ := datastore.Connect(info)
	defer store.Close()
	tr, _ := New("ai", smallAIConfig(), WithStore(store))
	vals := make([]float64, 24) // 3 rows at width 8
	vals[3] = math.NaN()        // poisons row 0
	vals[17] = math.Inf(1)      // poisons row 2
	store.StageWrite("dirty", EncodeFloat64s(vals))
	tr.UpdateLoader("dirty")
	if tr.LoaderSize() != 1 {
		t.Fatalf("loader kept %d rows, want 1 (non-finite rows dropped)", tr.LoaderSize())
	}
}
