// Package ai implements the paper's AI class (§3.4): a training/inference
// component built on the nn substrate with distributed data-parallel
// semantics (gradient all-reduce over the MPI runtime, the stand-in for
// PyTorch DDP), a data loader fed from the DataStore, and the same
// run_time/run_count execution control as the Simulation class.
package ai

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"time"

	"simaibench/internal/clock"
	"simaibench/internal/config"
	"simaibench/internal/datastore"
	"simaibench/internal/dist"
	"simaibench/internal/mpi"
	"simaibench/internal/nn"
	"simaibench/internal/spin"
	"simaibench/internal/stats"
	"simaibench/internal/trace"
)

// EncodeFloat64s serializes training arrays for staging (little-endian),
// the wire format simulation snapshots use.
func EncodeFloat64s(xs []float64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

// DecodeFloat64s is the inverse of EncodeFloat64s.
func DecodeFloat64s(b []byte) []float64 {
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

// Option customizes a Trainer.
type Option func(*Trainer)

// WithStore attaches the data-transport client.
func WithStore(s datastore.Store) Option { return func(t *Trainer) { t.store = s } }

// WithComm enables DDP over the communicator: gradients are all-reduced
// and averaged across ranks each step.
func WithComm(c *mpi.Comm) Option { return func(t *Trainer) { t.comm = c } }

// WithTimeline attaches a trace timeline.
func WithTimeline(tl *trace.Timeline, lane string) Option {
	return func(t *Trainer) { t.timeline, t.lane = tl, lane }
}

// WithSeed fixes the model-init and data RNG seed.
func WithSeed(seed int64) Option { return func(t *Trainer) { t.seed = &seed } }

// WithTimeScale scales emulated durations like simulation.WithTimeScale.
func WithTimeScale(f float64) Option { return func(t *Trainer) { t.timeScale = f } }

// WithClock runs the trainer against the given emulation clock, exactly
// as simulation.WithClock does for the solver: padding and timestamps
// come from the clock, while the real DDP step still executes (in zero
// virtual time under a clock.Virtual).
func WithClock(c clock.Clock) Option {
	return func(t *Trainer) { t.now, t.sleep = c.Now, c.Sleep }
}

// Trainer is one AI component instance.
type Trainer struct {
	name      string
	cfg       config.AIConfig
	model     *nn.MLP
	opt       nn.SGD
	store     datastore.Store
	comm      *mpi.Comm
	timeline  *trace.Timeline
	lane      string
	rng       *rand.Rand
	seed      *int64
	timeScale float64
	runTime   dist.Sampler

	// loader holds the most recently staged training samples.
	loader [][]float64

	iterStats stats.Welford
	lossStats stats.Welford
	lastLoss  float64
	readStats stats.Welford
	readTput  stats.Throughput
	reads     int
	iters     int

	start time.Time
	now   func() time.Time
	sleep func(time.Duration)
}

// New builds a trainer from a validated config.
func New(name string, cfg config.AIConfig, opts ...Option) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Trainer{
		name:      name,
		cfg:       cfg,
		timeScale: 1,
		now:       time.Now,
		sleep:     spin.Sleep,
	}
	for _, o := range opts {
		o(t)
	}
	seed := int64(7)
	if t.seed != nil {
		seed = *t.seed
	}
	t.rng = rand.New(rand.NewSource(seed))
	model, err := nn.NewMLP(cfg.Layers, t.rng)
	if err != nil {
		return nil, err
	}
	t.model = model
	lr := cfg.LR
	if lr == 0 {
		lr = 0.01
	}
	t.opt = nn.SGD{LR: lr}
	if cfg.RunTime != nil {
		if t.runTime, err = cfg.RunTime.Sampler(); err != nil {
			return nil, err
		}
	}
	t.start = t.now()
	return t, nil
}

// Name returns the component name.
func (t *Trainer) Name() string { return t.name }

// Model exposes the underlying network (weight inspection in tests).
func (t *Trainer) Model() *nn.MLP { return t.model }

// Elapsed returns wall seconds since construction.
func (t *Trainer) Elapsed() float64 { return t.now().Sub(t.start).Seconds() }

// batchSize returns the configured batch (default 16).
func (t *Trainer) batchSize() int {
	if t.cfg.Batch > 0 {
		return t.cfg.Batch
	}
	return 16
}

// inDim / outDim are the model's input and output widths.
func (t *Trainer) inDim() int  { return t.cfg.Layers[0] }
func (t *Trainer) outDim() int { return t.cfg.Layers[len(t.cfg.Layers)-1] }

// UpdateLoader reads a staged array and appends its samples to the data
// loader, recording the transfer (the trainer-side "read" of the
// one-to-one pattern). The staged array is reshaped into rows of the
// model's input width; short tails are dropped.
func (t *Trainer) UpdateLoader(key string) error {
	if t.store == nil {
		return fmt.Errorf("ai %s: no data store attached", t.name)
	}
	start := t.now()
	raw, err := t.store.StageRead(key)
	if err != nil {
		return err
	}
	dur := t.now().Sub(start).Seconds()
	t.readStats.Add(dur)
	t.readTput.Add(int64(len(raw)), dur)
	t.reads++
	if t.timeline != nil {
		// Timeline coordinates are emulated (unscaled) seconds.
		end := t.Elapsed() / t.timeScale
		t.timeline.AddSpan(t.lane, trace.KindTransfer, end-dur/t.timeScale, end, "read "+key)
	}
	xs := DecodeFloat64s(raw)
	w := t.inDim()
	for off := 0; off+w <= len(xs); off += w {
		row := make([]float64, w)
		copy(row, xs[off:off+w])
		if !finite(row) {
			continue // drop corrupt samples rather than poison training
		}
		t.loader = append(t.loader, row)
	}
	// Bound loader memory like a real streaming dataset.
	const maxSamples = 65536
	if len(t.loader) > maxSamples {
		t.loader = t.loader[len(t.loader)-maxSamples:]
	}
	return nil
}

// finite reports whether every element is a finite number.
func finite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Poll checks whether a key is staged.
func (t *Trainer) Poll(key string) (bool, error) {
	if t.store == nil {
		return false, fmt.Errorf("ai %s: no data store attached", t.name)
	}
	return t.store.Poll(key)
}

// LoaderSize reports the number of buffered training samples.
func (t *Trainer) LoaderSize() int { return len(t.loader) }

// sampleBatch draws a minibatch from the loader (synthetic data when the
// loader is empty, so training can begin before the first snapshot — the
// original GNN warm-starts the same way). Targets are a fixed smooth
// function of the inputs, giving the optimizer a real signal.
func (t *Trainer) sampleBatch() (xs, ys [][]float64) {
	b := t.batchSize()
	xs = make([][]float64, b)
	ys = make([][]float64, b)
	for i := 0; i < b; i++ {
		var row []float64
		if len(t.loader) > 0 {
			row = t.loader[t.rng.Intn(len(t.loader))]
		} else {
			row = make([]float64, t.inDim())
			for j := range row {
				row[j] = t.rng.NormFloat64()
			}
		}
		xs[i] = row
		y := make([]float64, t.outDim())
		for j := range y {
			s := 0.0
			for k, v := range row {
				if (k+j)%2 == 0 {
					s += v
				} else {
					s -= v
				}
			}
			y[j] = math.Tanh(s / float64(len(row)))
		}
		ys[i] = y
	}
	return xs, ys
}

// TrainIteration performs one real DDP step: forward, MSE loss,
// backward, gradient all-reduce (when a communicator is attached), SGD
// update — then pads to the sampled run_time so the iteration matches
// the profiled duration (0.061 s for the paper's GNN).
func (t *Trainer) TrainIteration() (float64, error) {
	iterStart := t.now()
	var target float64
	if t.runTime != nil {
		target = t.runTime.Sample(t.rng) * t.timeScale
	}
	xs, ys := t.sampleBatch()
	t.model.ZeroGrad()
	pred := t.model.Forward(xs)
	loss, grad := nn.MSELoss(pred, ys)
	t.model.Backward(grad)
	if t.comm != nil && t.comm.Size() > 1 {
		t.allReduceGrads()
	}
	t.opt.Step(t.model.Params())
	if target > 0 {
		if rem := target - t.now().Sub(iterStart).Seconds(); rem > 0 {
			t.sleep(time.Duration(rem * float64(time.Second)))
		}
	}
	dur := t.now().Sub(iterStart).Seconds()
	t.iterStats.Add(dur / t.timeScale)
	t.lossStats.Add(loss)
	t.lastLoss = loss
	t.iters++
	if t.timeline != nil {
		end := t.Elapsed() / t.timeScale
		t.timeline.AddSpan(t.lane, trace.KindCompute, end-dur/t.timeScale, end, "train")
	}
	return loss, nil
}

// Infer runs a forward pass over a batch of inputs, returning the
// model's predictions. It performs no weight updates and no collective
// communication.
func (t *Trainer) Infer(x [][]float64) [][]float64 {
	return t.model.Forward(x)
}

// InferIteration emulates one latency-limited inference step of the kind
// the paper's introduction motivates ("inference workloads can be
// latency limited, with the cost of data transfer dominating over the
// computational one"): read a staged input, run a forward pass, stage
// the prediction back. It returns the end-to-end latency in seconds, of
// which transfer typically dominates compute.
func (t *Trainer) InferIteration(inputKey, outputKey string) (float64, error) {
	if t.store == nil {
		return 0, fmt.Errorf("ai %s: no data store attached", t.name)
	}
	start := t.now()
	raw, err := t.store.StageRead(inputKey)
	if err != nil {
		return 0, err
	}
	xs := DecodeFloat64s(raw)
	w := t.inDim()
	n := len(xs) / w
	if n == 0 {
		return 0, fmt.Errorf("ai %s: staged input %q holds no full samples (got %d floats, need %d)",
			t.name, inputKey, len(xs), w)
	}
	batch := make([][]float64, n)
	for i := 0; i < n; i++ {
		batch[i] = xs[i*w : (i+1)*w]
	}
	pred := t.model.Forward(batch)
	flat := make([]float64, 0, n*t.outDim())
	for _, row := range pred {
		flat = append(flat, row...)
	}
	if err := t.store.StageWrite(outputKey, EncodeFloat64s(flat)); err != nil {
		return 0, err
	}
	lat := t.now().Sub(start).Seconds()
	t.iterStats.Add(lat / t.timeScale)
	t.iters++
	if t.timeline != nil {
		end := t.Elapsed() / t.timeScale
		t.timeline.AddSpan(t.lane, trace.KindTransfer, end-lat/t.timeScale, end, "infer "+inputKey)
	}
	return lat, nil
}

// allReduceGrads averages gradients across ranks — the communication
// PyTorch DDP hides inside loss.backward(), made explicit here.
func (t *Trainer) allReduceGrads() {
	for _, p := range t.model.Params() {
		t.comm.AllReduce(mpi.Sum, p.Grad)
		inv := 1.0 / float64(t.comm.Size())
		for i := range p.Grad {
			p.Grad[i] *= inv
		}
	}
}

// Train runs n iterations, returning the final loss.
func (t *Trainer) Train(n int) (float64, error) {
	var loss float64
	var err error
	for i := 0; i < n; i++ {
		if loss, err = t.TrainIteration(); err != nil {
			return loss, err
		}
	}
	return loss, nil
}

// Report mirrors simulation.Report for the trainer side.
type Report struct {
	Name       string
	Iterations int
	IterMean   float64
	IterStd    float64
	Reads      int
	ReadMean   float64
	ReadGBps   float64
	LossMean   float64
	LastLoss   float64
}

// Report returns current statistics.
func (t *Trainer) Report() Report {
	return Report{
		Name:       t.name,
		Iterations: t.iters,
		IterMean:   t.iterStats.Mean(),
		IterStd:    t.iterStats.Std(),
		Reads:      t.reads,
		ReadMean:   t.readStats.Mean(),
		ReadGBps:   t.readTput.MeanGBps(),
		LossMean:   t.lossStats.Mean(),
		LastLoss:   t.lastLoss,
	}
}
