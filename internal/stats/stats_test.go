package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Std() != 0 {
		t.Fatalf("empty welford: %v", w)
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(5)
	if w.Mean() != 5 || w.Std() != 0 || w.Min() != 5 || w.Max() != 5 {
		t.Fatalf("single obs: mean=%v std=%v", w.Mean(), w.Std())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almostEqual(w.Var(), 32.0/7, 1e-12) {
		t.Fatalf("var = %v, want %v", w.Var(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 || w.Sum() != 40 {
		t.Fatalf("min/max/sum = %v/%v/%v", w.Min(), w.Max(), w.Sum())
	}
}

func TestWelfordMergeMatchesCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) || !almostEqual(a.Var(), all.Var(), 1e-9) {
		t.Fatalf("merged %v vs combined %v", a, all)
	}
	if a.N() != all.N() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged counts/extremes differ")
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&b) // empty other: no-op
	if a != before {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(&a) // empty receiver: copy
	if b.Mean() != 2 || b.N() != 2 {
		t.Fatalf("empty.Merge: %v", b)
	}
}

func TestSafeWelfordConcurrent(t *testing.T) {
	var s SafeWelford
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(1)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.N() != 8000 || snap.Mean() != 1 {
		t.Fatalf("concurrent adds: %v", snap)
	}
}

func TestThroughput(t *testing.T) {
	var tp Throughput
	tp.Add(1e9, 1.0) // 1 GB/s
	tp.Add(2e9, 1.0) // 2 GB/s
	tp.Add(1e9, 0)   // ignored: zero duration
	if tp.Events() != 2 {
		t.Fatalf("events = %d, want 2", tp.Events())
	}
	if !almostEqual(tp.MeanGBps(), 1.5, 1e-12) {
		t.Fatalf("mean GB/s = %v, want 1.5", tp.MeanGBps())
	}
}

func TestThroughputMerge(t *testing.T) {
	var a, b Throughput
	a.Add(1e9, 1)
	b.Add(3e9, 1)
	a.Merge(&b)
	if a.Events() != 2 || !almostEqual(a.MeanGBps(), 2, 1e-12) {
		t.Fatalf("merged throughput: %v events, %v GB/s", a.Events(), a.MeanGBps())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extreme quantiles wrong")
	}
	if !almostEqual(Quantile(xs, 0.5), 2.5, 1e-12) {
		t.Fatalf("median = %v, want 2.5", Quantile(xs, 0.5))
	}
	// Input must be unmodified.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}

func TestPropertyWelfordMatchesNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, r := range raw {
			d := float64(r) - mean
			ss += d * d
		}
		naiveVar := ss / float64(len(raw)-1)
		return almostEqual(w.Mean(), mean, 1e-6) && almostEqual(w.Var(), naiveVar, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMergeOrderInvariant(t *testing.T) {
	f := func(xs, ys []int8) bool {
		var a1, b1, a2, b2 Welford
		for _, x := range xs {
			a1.Add(float64(x))
			a2.Add(float64(x))
		}
		for _, y := range ys {
			b1.Add(float64(y))
			b2.Add(float64(y))
		}
		a1.Merge(&b1) // xs then ys
		b2.Merge(&a2) // ys then xs
		return a1.N() == b2.N() &&
			almostEqual(a1.Mean(), b2.Mean(), 1e-9) &&
			almostEqual(a1.Var(), b2.Var(), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDigestQuantiles(t *testing.T) {
	var d Digest
	// 1..1000 in scrambled order: exact interpolated quantiles are known.
	for i := 0; i < 1000; i++ {
		d.Add(float64((i*617)%1000 + 1))
	}
	if d.N() != 1000 {
		t.Fatalf("n = %d", d.N())
	}
	if got := d.P50(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 500.5", got)
	}
	if got := d.P99(); math.Abs(got-990.01) > 1e-9 {
		t.Fatalf("p99 = %v, want 990.01", got)
	}
	if got := d.P999(); math.Abs(got-999.001) > 1e-9 {
		t.Fatalf("p999 = %v, want 999.001", got)
	}
	if got := d.Max(); got != 1000 {
		t.Fatalf("max = %v", got)
	}
	if got := d.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	// Digest quantiles must agree exactly with the one-shot helper.
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var d2 Digest
	for _, x := range xs {
		d2.Add(x)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if a, b := d2.Quantile(q), Quantile(xs, q); a != b {
			t.Fatalf("Digest.Quantile(%v) = %v, Quantile = %v", q, a, b)
		}
	}
}

func TestDigestAddAfterQuantileResorts(t *testing.T) {
	var d Digest
	d.Add(10)
	d.Add(20)
	if got := d.P50(); got != 15 {
		t.Fatalf("p50 = %v", got)
	}
	d.Add(0) // arrives below the sorted prefix
	if got := d.Quantile(0); got != 0 {
		t.Fatalf("min after late Add = %v, want 0", got)
	}
}

func TestDigestEmpty(t *testing.T) {
	var d Digest
	for _, got := range []float64{d.P50(), d.P999(), d.Mean(), d.Max()} {
		if !math.IsNaN(got) {
			t.Fatalf("empty digest returned %v, want NaN", got)
		}
	}
}

func TestJainFairness(t *testing.T) {
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v, want 1", got)
	}
	// One tenant monopolizes: index collapses toward 1/n.
	if got := Jain([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("monopoly: %v, want 0.25", got)
	}
	// Textbook example: (1+2+3)² / (3·(1+4+9)) = 36/42.
	if got := Jain([]float64{1, 2, 3}); math.Abs(got-36.0/42.0) > 1e-12 {
		t.Fatalf("1,2,3: %v, want %v", got, 36.0/42.0)
	}
	if got := Jain(nil); got != 1 {
		t.Fatalf("empty: %v, want 1 (vacuously fair)", got)
	}
	if got := Jain([]float64{0, 0}); got != 1 {
		t.Fatalf("all-zero: %v, want 1", got)
	}
}
