// Package stats provides the streaming statistics the evaluation section
// reports: Welford mean/std accumulators for iteration times (Table 3),
// event counters (Table 2), and throughput accounting for the transport
// figures (Fig 3, 5). All statistics are computed online in O(1) space so
// million-event simulated runs stay cheap.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Welford accumulates mean and variance online (Welford's algorithm).
// The zero value is ready to use. Not safe for concurrent use; wrap in
// SafeWelford when multiple goroutines record.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.sum += x
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Sum returns the running total.
func (w *Welford) Sum() float64 { return w.sum }

// Var returns the sample variance (n-1 denominator; 0 for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min and Max return the observed extremes (0 if empty).
func (w *Welford) Min() float64 { return w.min }
func (w *Welford) Max() float64 { return w.max }

// Merge folds other into w (Chan et al. parallel combination), so
// per-rank accumulators can be combined into the per-experiment
// statistics the paper reports ("averaged over all the processes").
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	mean := w.mean + d*float64(other.n)/float64(n)
	m2 := w.m2 + other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean, w.m2, w.n = mean, m2, n
	w.sum += other.sum
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// String formats as "mean ± std (n=N)".
func (w *Welford) String() string {
	return fmt.Sprintf("%.4g ± %.4g (n=%d)", w.Mean(), w.Std(), w.n)
}

// SafeWelford is a mutex-guarded Welford for concurrent recording.
type SafeWelford struct {
	mu sync.Mutex
	w  Welford
}

// Add records one observation.
func (s *SafeWelford) Add(x float64) {
	s.mu.Lock()
	s.w.Add(x)
	s.mu.Unlock()
}

// Snapshot returns a copy of the current accumulator.
func (s *SafeWelford) Snapshot() Welford {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w
}

// Throughput converts (bytes, seconds) observations into the GB/s-per-
// process numbers of Fig 3/5: each event contributes bytes/seconds, and
// the reported value is the mean over events, matching "averaging over
// all the processes and events".
type Throughput struct {
	perEvent Welford
}

// Add records one transfer event.
func (t *Throughput) Add(bytes int64, seconds float64) {
	if seconds <= 0 {
		return
	}
	t.perEvent.Add(float64(bytes) / seconds)
}

// Events returns the number of transfer events recorded.
func (t *Throughput) Events() int64 { return t.perEvent.N() }

// MeanBps returns mean bytes/second per event.
func (t *Throughput) MeanBps() float64 { return t.perEvent.Mean() }

// MeanGBps returns mean gigabytes/second per event (decimal GB, as
// customary for bandwidth plots).
func (t *Throughput) MeanGBps() float64 { return t.perEvent.Mean() / 1e9 }

// Merge folds another throughput accumulator in.
func (t *Throughput) Merge(other *Throughput) { t.perEvent.Merge(&other.perEvent) }

// Digest is an exact percentile digest: it collects every sample and
// serves interpolated quantiles from one deferred sort, so a report
// that asks for P50, P99 and P999 of the same population pays for a
// single O(n log n) pass instead of one per quantile (what repeated
// Quantile calls would cost). Samples are exact, not sketched — the
// tail percentiles of a queueing campaign are the headline metric and
// must not carry sketch error. The zero value is ready to use. Not
// safe for concurrent use.
type Digest struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (d *Digest) Add(x float64) {
	d.xs = append(d.xs, x)
	d.sorted = false
}

// N returns the observation count.
func (d *Digest) N() int { return len(d.xs) }

// Quantile returns the q-quantile (0..1) by linear interpolation over
// the sorted samples, or NaN when empty. The first call after an Add
// sorts; subsequent calls are O(1) lookups.
func (d *Digest) Quantile(q float64) float64 {
	if len(d.xs) == 0 {
		return math.NaN()
	}
	if !d.sorted {
		sort.Float64s(d.xs)
		d.sorted = true
	}
	if q <= 0 {
		return d.xs[0]
	}
	if q >= 1 {
		return d.xs[len(d.xs)-1]
	}
	pos := q * float64(len(d.xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(d.xs) {
		return d.xs[lo]
	}
	return d.xs[lo]*(1-frac) + d.xs[lo+1]*frac
}

// P50, P99 and P999 are the campaign reports' tail quantiles.
func (d *Digest) P50() float64  { return d.Quantile(0.50) }
func (d *Digest) P99() float64  { return d.Quantile(0.99) }  // 99th percentile
func (d *Digest) P999() float64 { return d.Quantile(0.999) } // 99.9th percentile

// Max returns the largest observation (NaN when empty).
func (d *Digest) Max() float64 { return d.Quantile(1) }

// Mean returns the sample mean (NaN when empty).
func (d *Digest) Mean() float64 {
	if len(d.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range d.xs {
		sum += x
	}
	return sum / float64(len(d.xs))
}

// Jain computes Jain's fairness index (Σx)² / (n·Σx²) over a vector of
// per-tenant allocations: 1.0 when every tenant receives the same
// share, approaching 1/n as one tenant monopolizes. All-zero
// allocations are perfectly equal, hence 1; the empty vector is
// vacuously fair, also 1.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Quantile computes the q-quantile (0..1) of a sample slice by linear
// interpolation, used in reports; the input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(cp) {
		return cp[lo]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}
