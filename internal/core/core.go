package core
