package faults

import (
	"math"
	"testing"

	"simaibench/internal/cluster"
	"simaibench/internal/des"
)

func TestHealthyProfileSchedulesNothing(t *testing.T) {
	for _, prof := range []Profile{
		{},
		{MTBFS: math.Inf(1), RepairS: 1},
		{MTBFS: -1, StragglerFactor: 0.5, StragglerMTBS: 10},
	} {
		env := des.NewEnv()
		in := New(env, cluster.Aurora(8), prof, Hooks{})
		in.Start()
		if env.Pending() != 0 {
			t.Fatalf("profile %+v scheduled %d events", prof, env.Pending())
		}
	}
}

func TestCrashTimelineDeterministicPerSeed(t *testing.T) {
	timeline := func(seed int64) []float64 {
		env := des.NewEnv()
		var crashes []float64
		in := New(env, cluster.Aurora(4), Profile{Seed: seed, MTBFS: 20, RepairS: 1},
			Hooks{Crash: func(node int) { crashes = append(crashes, env.Now()) }})
		in.Start()
		env.RunUntil(500)
		env.Shutdown()
		return crashes
	}
	a, b := timeline(7), timeline(7)
	if len(a) == 0 {
		t.Fatal("no crashes injected over 500 s at MTBF 20")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different crash counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, crash %d at %v vs %v", i, a[i], b[i])
		}
	}
	c := timeline(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical crash timelines")
	}
}

// TestCrashTimelineInvariantUnderOtherAxes pins the sweep-comparability
// property: enabling stragglers and outages must not move a single
// crash.
func TestCrashTimelineInvariantUnderOtherAxes(t *testing.T) {
	run := func(prof Profile) []float64 {
		env := des.NewEnv()
		var crashes []float64
		in := New(env, cluster.Aurora(4), prof,
			Hooks{Crash: func(node int) { crashes = append(crashes, env.Now()) }})
		in.Start()
		env.RunUntil(300)
		env.Shutdown()
		return crashes
	}
	base := Profile{Seed: 3, MTBFS: 15, RepairS: 2}
	noisy := base
	noisy.StragglerMTBS, noisy.StragglerFactor, noisy.StragglerDurS = 10, 3, 5
	noisy.OutageMTBS, noisy.OutageDurS = 40, 3
	a, b := run(base), run(noisy)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("crash counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crash %d moved: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCrashRepairDrivesNodeSet(t *testing.T) {
	env := des.NewEnv()
	var in *Injector
	downDuring := 0
	in = New(env, cluster.Aurora(2), Profile{Seed: 1, MTBFS: 10, RepairS: 2}, Hooks{
		Crash: func(node int) {
			if in.NodeUp(node) {
				t.Error("Crash hook ran with node still up")
			}
			downDuring++
		},
		Repair: func(node int) {
			if !in.NodeUp(node) {
				t.Error("Repair hook ran with node still down")
			}
		},
	})
	in.Start()
	env.RunUntil(200)
	env.Shutdown()
	if downDuring == 0 {
		t.Fatal("no crashes in 200 s at MTBF 10")
	}
	if in.Crashes() != downDuring {
		t.Fatalf("Crashes() = %d, hooks saw %d", in.Crashes(), downDuring)
	}
	if in.NodeSet().UpCount() != 2 {
		t.Fatalf("after horizon both nodes should be repaired, %d up", in.NodeSet().UpCount())
	}
}

func TestEmpiricalMTBFMatchesProfile(t *testing.T) {
	env := des.NewEnv()
	prof := Profile{Seed: 11, MTBFS: 50, RepairS: 0.5}
	in := New(env, cluster.Aurora(16), prof, Hooks{})
	in.Start()
	horizon := 5000.0
	env.RunUntil(horizon)
	env.Shutdown()
	// 16 nodes × 5000 s / 50 s MTBF ≈ 1600 crashes (repair shortens
	// exposure slightly); accept ±15%.
	want := 16 * horizon / prof.MTBFS
	got := float64(in.Crashes())
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("observed %v crashes, want ~%v", got, want)
	}
}

func TestStragglerEpisodeSetsSlowdown(t *testing.T) {
	env := des.NewEnv()
	var in *Injector
	starts, ends := 0, 0
	in = New(env, cluster.Aurora(2),
		Profile{Seed: 5, StragglerMTBS: 20, StragglerFactor: 4, StragglerDurS: 3},
		Hooks{
			StragglerStart: func(node int) {
				starts++
				if in.Slowdown(node) != 4 {
					t.Errorf("slowdown during episode = %v, want 4", in.Slowdown(node))
				}
			},
			StragglerEnd: func(node int) {
				ends++
				if in.Slowdown(node) != 1 {
					t.Errorf("slowdown after episode = %v, want 1", in.Slowdown(node))
				}
			},
		})
	in.Start()
	env.RunUntil(500)
	env.Shutdown()
	// Episodes straddling the horizon never see their end event; at most
	// one per node can be in flight.
	if starts == 0 || ends > starts || starts-ends > 2 {
		t.Fatalf("episodes: %d starts, %d ends", starts, ends)
	}
	if in.Stragglers() != starts {
		t.Fatalf("Stragglers() = %d, want %d", in.Stragglers(), starts)
	}
}

func TestOutageWindow(t *testing.T) {
	env := des.NewEnv()
	var in *Injector
	in = New(env, cluster.Aurora(1), Profile{Seed: 9, OutageMTBS: 30, OutageDurS: 2}, Hooks{
		OutageStart: func() {
			if !in.OutageActive() {
				t.Error("OutageStart ran with OutageActive false")
			}
			if got := in.OutageUntil() - env.Now(); math.Abs(got-2) > 1e-12 {
				t.Errorf("outage window %v, want 2", got)
			}
		},
		OutageEnd: func() {
			if in.OutageActive() {
				t.Error("OutageEnd ran with OutageActive still true")
			}
		},
	})
	in.Start()
	env.RunUntil(300)
	env.Shutdown()
	if in.Outages() == 0 {
		t.Fatal("no outages in 300 s at MTBO 30")
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"": FailStop, "fail-stop": FailStop, "failstop": FailStop,
		"checkpoint-restart": CheckpointRestart, "ckpt": CheckpointRestart,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus")
	}
	if FailStop.String() != "fail-stop" || CheckpointRestart.String() != "checkpoint-restart" {
		t.Error("Policy.String drifted")
	}
}
