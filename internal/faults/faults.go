// Package faults is the deterministic fault-injection layer of the
// simulated-scale experiments: seeded, dist-driven disturbance
// timelines (node crashes, straggler slowdowns, transient datastore
// outages) driven as ordinary events through a des.Env, plus the
// recovery-policy vocabulary (fail-stop, checkpoint/restart, straggler
// re-dispatch) the resilience scenarios sweep.
//
// Design rules:
//
//   - Determinism: every disturbance axis draws from its own
//     math/rand stream, seeded from (Profile.Seed, node). Two runs with
//     equal profiles produce bit-identical fault timelines, and — the
//     property the optimal-checkpoint-interval sweeps rely on — the
//     crash timeline is invariant under changes to the recovery
//     configuration, so sweeping the checkpoint cadence compares
//     policies against the *same* disturbances.
//   - Nothing when healthy: a profile with every axis disabled
//     schedules zero events, so a resilient harness running a healthy
//     profile replays the exact event sequence of its fault-free
//     counterpart (pinned by the scale-out equivalence contract test).
//   - The injector owns the cluster.NodeSet: crash/repair transitions
//     flow through it, and workload-side machines read availability,
//     slowdown factors and outage windows through the accessors instead
//     of keeping shadow state.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"simaibench/internal/cluster"
	"simaibench/internal/des"
	"simaibench/internal/dist"
)

// Policy selects the recovery strategy of a resilient campaign.
type Policy int

// The recovery policies the resilience scenarios compare.
const (
	// FailStop restarts lost work from the beginning of the run: no
	// checkpoints, maximal wasted work — the baseline.
	FailStop Policy = iota
	// CheckpointRestart persists state through the datastore backend at
	// a configurable cadence and restarts from the last durable
	// checkpoint.
	CheckpointRestart
)

// String returns the config name.
func (p Policy) String() string {
	if p == CheckpointRestart {
		return "checkpoint-restart"
	}
	return "fail-stop"
}

// ParsePolicy converts a CLI/config string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fail-stop", "failstop", "":
		return FailStop, nil
	case "checkpoint-restart", "checkpoint", "ckpt":
		return CheckpointRestart, nil
	}
	return FailStop, fmt.Errorf("faults: unknown policy %q", s)
}

// Recovery configures how a resilient campaign reacts to disturbances.
type Recovery struct {
	// Policy selects fail-stop or checkpoint/restart.
	Policy Policy
	// CkptIntervalS is the checkpoint cadence in virtual seconds
	// (checkpoint/restart only; <= 0 disables checkpointing, degrading
	// the policy to fail-stop).
	CkptIntervalS float64
	// CkptSizeMB sizes one checkpoint write/read per rank.
	CkptSizeMB float64
	// ReDispatchStragglers migrates a rank off a straggling node to a
	// healthy replacement (cluster.NodeSet.Replacement) instead of
	// riding out the slowdown.
	ReDispatchStragglers bool
}

// Profile describes the disturbance statistics of one campaign. The
// zero value injects nothing.
type Profile struct {
	// Seed roots every disturbance stream; equal seeds give equal
	// timelines.
	Seed int64
	// MTBFS is the per-node mean time between crashes (exponential
	// inter-arrivals). 0, negative or +Inf disables crashes.
	MTBFS float64
	// RepairS is the node repair/reboot time after a crash.
	RepairS float64
	// StragglerMTBS is the per-node mean time between straggler
	// episodes (0 disables).
	StragglerMTBS float64
	// StragglerFactor multiplies a straggling node's iteration periods
	// (> 1; values <= 1 disable).
	StragglerFactor float64
	// StragglerDurS is the episode duration.
	StragglerDurS float64
	// OutageMTBS is the mean time between transient datastore outages
	// (0 disables); during an outage staged operations cannot start.
	OutageMTBS float64
	// OutageDurS is the outage duration.
	OutageDurS float64
	// Until bounds the disturbance streams: no new crash, straggler
	// episode or outage begins at or after this virtual time (0 =
	// unbounded). Recovery events (repairs, episode ends) of
	// disturbances that began before the bound still complete, so a
	// bounded campaign ends with every node up. Bounding keeps the last
	// event of a faulty run near the workload's own end, which keeps
	// delivered-throughput denominators comparable to a healthy run.
	Until float64
}

// CrashesEnabled reports whether the profile injects node crashes.
func (p Profile) CrashesEnabled() bool { return p.MTBFS > 0 && !math.IsInf(p.MTBFS, 1) }

// StragglersEnabled reports whether the profile injects straggler
// episodes.
func (p Profile) StragglersEnabled() bool {
	return p.StragglerMTBS > 0 && p.StragglerFactor > 1 && p.StragglerDurS > 0
}

// OutagesEnabled reports whether the profile injects datastore outages.
func (p Profile) OutagesEnabled() bool { return p.OutageMTBS > 0 && p.OutageDurS > 0 }

// Hooks are the workload-side callbacks an Injector drives. Any field
// may be nil. Hooks run flat on the scheduler goroutine at the virtual
// time of the transition, after the injector's own state (NodeSet,
// slowdown, outage window) has been updated.
type Hooks struct {
	// Crash fires when a node goes down.
	Crash func(node int)
	// Repair fires when a node comes back up.
	Repair func(node int)
	// StragglerStart / StragglerEnd bracket a slowdown episode.
	StragglerStart func(node int)
	StragglerEnd   func(node int)
	// OutageStart / OutageEnd bracket a datastore outage.
	OutageStart func()
	OutageEnd   func()
}

// Injector drives a Profile's disturbance timelines against a des.Env.
// Construct with New, wire the workload through Hooks and the
// accessors, then Start before running the environment.
type Injector struct {
	env   *des.Env
	nodes *cluster.NodeSet
	prof  Profile
	hooks Hooks

	slow        []float64 // per-node slowdown factor, 1 = nominal
	outageUntil float64
	stragglers  int
	outages     int
}

// New builds an injector for spec's nodes. The injector owns the
// returned NodeSet view (see NodeSet); it schedules nothing until
// Start.
func New(env *des.Env, spec cluster.Spec, prof Profile, hooks Hooks) *Injector {
	in := &Injector{
		env:         env,
		nodes:       cluster.NewNodeSet(spec),
		prof:        prof,
		hooks:       hooks,
		slow:        make([]float64, spec.Nodes),
		outageUntil: math.Inf(-1),
	}
	for i := range in.slow {
		in.slow[i] = 1
	}
	return in
}

// nodeRNG returns the seeded stream for one (axis, node) pair: streams
// are independent across axes and nodes, so adding stragglers cannot
// shift crash times.
func (in *Injector) nodeRNG(axis, node int64) *rand.Rand {
	return rand.New(rand.NewSource(in.prof.Seed*1000003 + axis*7368787 + node*1000000007 + 1))
}

// scheduleStart arms a disturbance start after d, honouring the Until
// bound: a start that would land at or past the bound is dropped (and
// with it the rest of that stream — every later draw would land past
// the bound too).
func (in *Injector) scheduleStart(d float64, fn func()) {
	if in.prof.Until > 0 && in.env.Now()+d >= in.prof.Until {
		return
	}
	in.env.After(d, fn)
}

// Start schedules the first disturbance of every enabled axis. A
// healthy profile schedules nothing at all.
func (in *Injector) Start() {
	if in.prof.CrashesEnabled() {
		mtbf := dist.Exponential{MeanV: in.prof.MTBFS}
		for n := 0; n < in.nodes.Nodes(); n++ {
			n := n
			rng := in.nodeRNG(1, int64(n))
			var crash func()
			crash = func() {
				if !in.nodes.Fail(n) {
					// Already down (cannot happen with crash/repair on one
					// stream, but stay safe): draw again.
					in.scheduleStart(mtbf.Sample(rng), crash)
					return
				}
				if in.hooks.Crash != nil {
					in.hooks.Crash(n)
				}
				in.env.After(in.prof.RepairS, func() {
					in.nodes.Restore(n)
					if in.hooks.Repair != nil {
						in.hooks.Repair(n)
					}
					in.scheduleStart(mtbf.Sample(rng), crash)
				})
			}
			in.scheduleStart(mtbf.Sample(rng), crash)
		}
	}
	if in.prof.StragglersEnabled() {
		mtbs := dist.Exponential{MeanV: in.prof.StragglerMTBS}
		for n := 0; n < in.nodes.Nodes(); n++ {
			n := n
			rng := in.nodeRNG(2, int64(n))
			var episode func()
			episode = func() {
				if in.nodes.Up(n) && in.slow[n] == 1 {
					in.slow[n] = in.prof.StragglerFactor
					in.stragglers++
					if in.hooks.StragglerStart != nil {
						in.hooks.StragglerStart(n)
					}
					in.env.After(in.prof.StragglerDurS, func() {
						in.slow[n] = 1
						if in.hooks.StragglerEnd != nil {
							in.hooks.StragglerEnd(n)
						}
					})
				}
				in.scheduleStart(mtbs.Sample(rng), episode)
			}
			in.scheduleStart(mtbs.Sample(rng), episode)
		}
	}
	if in.prof.OutagesEnabled() {
		mtbo := dist.Exponential{MeanV: in.prof.OutageMTBS}
		rng := in.nodeRNG(3, 0)
		var outage func()
		outage = func() {
			in.outageUntil = in.env.Now() + in.prof.OutageDurS
			in.outages++
			if in.hooks.OutageStart != nil {
				in.hooks.OutageStart()
			}
			in.env.After(in.prof.OutageDurS, func() {
				if in.hooks.OutageEnd != nil {
					in.hooks.OutageEnd()
				}
				in.scheduleStart(mtbo.Sample(rng), outage)
			})
		}
		in.scheduleStart(mtbo.Sample(rng), outage)
	}
}

// NodeSet exposes the injector's availability state: workload machines
// read placement decisions from it (and must not mutate it).
func (in *Injector) NodeSet() *cluster.NodeSet { return in.nodes }

// NodeUp reports whether node is currently available.
func (in *Injector) NodeUp(node int) bool { return in.nodes.Up(node) }

// Slowdown returns node's current iteration-period multiplier (1 when
// healthy, Profile.StragglerFactor during an episode).
func (in *Injector) Slowdown(node int) float64 { return in.slow[node] }

// OutageActive reports whether a datastore outage is in progress.
func (in *Injector) OutageActive() bool { return in.env.Now() < in.outageUntil }

// OutageUntil returns the end time of the current outage (meaningful
// only while OutageActive).
func (in *Injector) OutageUntil() float64 { return in.outageUntil }

// Crashes reports the number of node crashes injected so far.
func (in *Injector) Crashes() int { return in.nodes.Fails() }

// Stragglers reports the number of straggler episodes started so far.
func (in *Injector) Stragglers() int { return in.stragglers }

// Outages reports the number of datastore outages started so far.
func (in *Injector) Outages() int { return in.outages }
