package mpi

import (
	"fmt"
	"sync"
)

// message is one in-flight point-to-point payload.
type message struct {
	src, tag int
	data     []byte
}

// mailbox is a per-rank queue of unmatched messages with (src, tag)
// matching, including wildcards, in arrival order per MPI's
// non-overtaking rule.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	dead    bool
	// Clock-bridge state (World.SetClockBridge): parked receivers leave
	// the emulation clock's barrier; the sender rejoins every parked
	// waiter under the mutex before broadcasting.
	join    func()
	leave   func()
	waiters int
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m message) {
	b.mu.Lock()
	b.pending = append(b.pending, m)
	// Rejoin every parked receiver before waking it (see
	// World.SetClockBridge); non-matching receivers leave again from
	// take's loop. The momentary over-count only tightens the barrier.
	if b.join != nil {
		for i := 0; i < b.waiters; i++ {
			b.join()
		}
		b.waiters = 0
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is present and removes
// the earliest match.
func (b *mailbox) take(src, tag int) message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.pending {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				return m
			}
		}
		if b.dead {
			panic("mpi: world killed while receiving")
		}
		// Park: release the clock barrier until a sender rejoins us.
		// Every wake here is a put or a kill, both of which rejoin all
		// parked waiters first — a woken receiver always holds its
		// barrier slot again, whether it matches, re-parks, or dies on
		// the dead check above.
		if b.leave != nil {
			b.leave()
			b.waiters++
		}
		b.cond.Wait()
	}
}

// probe reports whether a matching message is queued, without removing it.
func (b *mailbox) probe(src, tag int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.pending {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			return true
		}
	}
	return false
}

func (b *mailbox) kill() {
	b.mu.Lock()
	b.dead = true
	// Parked receivers released their clock-barrier slot through the
	// bridge; rejoin them before the wake so each one's unwind (panic →
	// rank teardown → Leave) retires exactly the slot it holds, instead
	// of driving the participant count negative.
	if b.join != nil {
		for i := 0; i < b.waiters; i++ {
			b.join()
		}
		b.waiters = 0
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Send delivers data to dst with the given tag. Sends are eager and never
// block. The payload is copied, so the caller may reuse its buffer.
func (c *Comm) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: buf})
}

// Recv blocks until a message matching (src, tag) arrives — AnySource and
// AnyTag act as wildcards — and returns its payload and actual source.
// Under a clock bridge (World.SetClockBridge) an unmatched Recv releases
// the emulation clock's barrier until the matching send rejoins it.
func (c *Comm) Recv(src, tag int) (data []byte, from int) {
	m := c.world.boxes[c.rank].take(src, tag)
	return m.data, m.src
}

// Probe reports whether a matching message is already queued.
func (c *Comm) Probe(src, tag int) bool {
	return c.world.boxes[c.rank].probe(src, tag)
}

// SendFloat64s sends a float64 slice (little-endian encoding).
func (c *Comm) SendFloat64s(dst, tag int, xs []float64) {
	c.Send(dst, tag, encodeFloat64s(xs))
}

// RecvFloat64s receives a float64 slice from (src, tag).
func (c *Comm) RecvFloat64s(src, tag int) ([]float64, int) {
	data, from := c.Recv(src, tag)
	return decodeFloat64s(data), from
}

// SendRecv performs a combined send to dst and receive from src, a common
// shift pattern. Eager sends make the ordering deadlock-free.
func (c *Comm) SendRecv(dst, sendTag int, data []byte, src, recvTag int) ([]byte, int) {
	c.Send(dst, sendTag, data)
	return c.Recv(src, recvTag)
}
