package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Algorithmic collectives: the flat rendezvous of coll.go models a
// collective as one synchronization with a single cost, which is blind
// to the question the gradsync scenario family asks — when does the
// *algorithm* (ring vs recursive doubling vs hierarchical) dominate a
// data-parallel training step? This file adds both halves of the
// answer:
//
//   - Cost models: Ring/Tree/Hier/FlatAllReduceCost compute the
//     per-step DES cost profile of each algorithm from message size ×
//     a caller-supplied LinkCost (internal/costmodel bridges a
//     cluster.Topology into one), plus the ReduceScatter/AllGather
//     building blocks ring AllReduce composes from.
//   - Data plane: AllReduceAlgo executes the algorithm's real
//     communication structure over the point-to-point layer (so clock
//     bridging and kill-teardown come for free), while applying the
//     reduction itself locally in canonical rank order 0..n-1. Every
//     algorithm therefore produces bits identical to the flat
//     AllReduce — algorithms shape *communication*, never the result.
//
// The bit-identity trick: each algorithm's message pattern moves
// per-rank contribution *sets* (ring shift, Bruck doubling, or
// hierarchical gather/ring/bcast) until every rank holds all n
// contributions, then reduceContribs folds them in rank order —
// exactly the order the flat rendezvous combine uses. Floating-point
// reduction order is thus invariant across algorithms, which the
// equivalence suite in algo_test.go pins.

// CollAlgo selects the collective algorithm of AllReduceAlgo and the
// cost models. The zero value is AlgoFlat — the legacy single-cost
// rendezvous — so an unset param preserves pre-existing behavior.
type CollAlgo int

const (
	// AlgoFlat is the single shared-memory rendezvous of coll.go,
	// costed as one step over the slowest link to rank 0.
	AlgoFlat CollAlgo = iota
	// AlgoRing is the bandwidth-optimal ring: reduce-scatter then
	// all-gather, 2(n-1) steps of size S/n.
	AlgoRing
	// AlgoTree is recursive doubling (Bruck-style at non-powers of
	// two): ceil(log2 n) full-size exchange rounds.
	AlgoTree
	// AlgoHier is the topology-aware hierarchy: reduce within each
	// router, reduce across each group's routers, ring across group
	// leaders, then broadcast back down.
	AlgoHier
)

// CollAlgos enumerates every algorithm, flat first.
func CollAlgos() []CollAlgo { return []CollAlgo{AlgoFlat, AlgoRing, AlgoTree, AlgoHier} }

// String returns the algorithm's flag spelling.
func (a CollAlgo) String() string {
	switch a {
	case AlgoFlat:
		return "flat"
	case AlgoRing:
		return "ring"
	case AlgoTree:
		return "tree"
	case AlgoHier:
		return "hier"
	}
	return "unknown"
}

// ParseCollAlgo parses a -collalgo flag value. The empty string is
// AlgoFlat, the default-preserving choice.
func ParseCollAlgo(s string) (CollAlgo, error) {
	switch s {
	case "", "flat":
		return AlgoFlat, nil
	case "ring":
		return AlgoRing, nil
	case "tree":
		return AlgoTree, nil
	case "hier", "hierarchical":
		return AlgoHier, nil
	}
	return 0, fmt.Errorf("mpi: unknown collective algorithm %q (valid: flat, ring, tree, hier)", s)
}

// LinkCost models the seconds one transfer of mb megabytes takes
// between ranks a and b. internal/costmodel adapts a cluster.Topology
// and a rank→node placement into one; a==b transfers should cost 0.
type LinkCost func(a, b int, mb float64) float64

// CollCost is the modeled execution profile of one collective: how
// many synchronized communication steps it takes and their total
// modeled time (each step bounded by its slowest link).
type CollCost struct {
	// Steps counts the algorithm's synchronized communication rounds.
	Steps int
	// TimeS is the summed per-step maxima in seconds.
	TimeS float64
}

// FlatAllReduceCost costs the legacy single-rendezvous AllReduce: one
// step in which every rank exchanges its full vector through a
// rendezvous point (rank 0), bounded by the slowest such link. This is
// the pre-algorithm behavior every default-config scenario keeps.
func FlatAllReduceCost(n int, mb float64, link LinkCost) CollCost {
	if n <= 1 {
		return CollCost{}
	}
	worst := 0.0
	for r := 1; r < n; r++ {
		if c := link(0, r, mb); c > worst {
			worst = c
		}
	}
	return CollCost{Steps: 1, TimeS: worst}
}

// RingReduceScatterCost costs the ring reduce-scatter building block:
// n-1 steps, each shifting an S/n segment to the next rank, every step
// bounded by the slowest ring link.
func RingReduceScatterCost(n int, mb float64, link LinkCost) CollCost {
	if n <= 1 {
		return CollCost{}
	}
	per := 0.0
	for r := 0; r < n; r++ {
		if c := link(r, (r+1)%n, mb/float64(n)); c > per {
			per = c
		}
	}
	return CollCost{Steps: n - 1, TimeS: float64(n-1) * per}
}

// RingAllGatherCost costs the ring all-gather building block — the
// same n-1 S/n-segment shifts as the reduce-scatter phase.
func RingAllGatherCost(n int, mb float64, link LinkCost) CollCost {
	return RingReduceScatterCost(n, mb, link)
}

// RingAllReduceCost composes reduce-scatter + all-gather: 2(n-1) steps
// of size S/n. Bandwidth-optimal (each byte crosses each link ~2×),
// but the step count scales linearly with ranks — the latency term
// that loses to the hierarchy at small messages and high rank counts.
func RingAllReduceCost(n int, mb float64, link LinkCost) CollCost {
	rs := RingReduceScatterCost(n, mb, link)
	ag := RingAllGatherCost(n, mb, link)
	return CollCost{Steps: rs.Steps + ag.Steps, TimeS: rs.TimeS + ag.TimeS}
}

// TreeAllReduceCost costs recursive doubling: ceil(log2 n) rounds of
// full-size exchange with the partner at distance 2^k (modular, the
// Bruck generalization for non-powers of two), each round bounded by
// its slowest pair. Latency-optimal step count, but every round moves
// the full vector — the bandwidth term that loses at large messages.
func TreeAllReduceCost(n int, mb float64, link LinkCost) CollCost {
	if n <= 1 {
		return CollCost{}
	}
	total := 0.0
	steps := 0
	for dist := 1; dist < n; dist *= 2 {
		worst := 0.0
		for r := 0; r < n; r++ {
			if c := link(r, (r+dist)%n, mb); c > worst {
				worst = c
			}
		}
		total += worst
		steps++
	}
	return CollCost{Steps: steps, TimeS: total}
}

// HierAllReduceCost costs the topology-aware hierarchy over a rank→
// router grouping (nil routerOf = everyone on one router): a
// ceil(log2 m) binary reduce within each router, a ring across the L
// router leaders at S/L segments, and the mirror-image broadcast back
// down. Most steps traverse only local links and the leader ring moves
// 1/L of the bytes, which is why it wins at small messages and high
// rank counts; the up/down phases move the full vector, which is why
// the plain ring wins it back at large messages.
func HierAllReduceCost(n int, mb float64, routerOf []int, link LinkCost) CollCost {
	if n <= 1 {
		return CollCost{}
	}
	members, leaders := routerPartition(n, routerOf)
	var cost CollCost
	// Up/down within routers: ceil(log2 m) rounds each way, every
	// round bounded by the slowest member↔leader link.
	mmax, localWorst := 0, 0.0
	for _, ms := range members {
		if len(ms) > mmax {
			mmax = len(ms)
		}
		for _, m := range ms[1:] {
			if c := link(m, ms[0], mb); c > localWorst {
				localWorst = c
			}
		}
	}
	for span := 1; span < mmax; span *= 2 {
		cost.Steps += 2
		cost.TimeS += 2 * localWorst
	}
	// Ring across router leaders at S/L segments, both directions.
	if l := len(leaders); l > 1 {
		per := 0.0
		for i, r := range leaders {
			if c := link(r, leaders[(i+1)%l], mb/float64(l)); c > per {
				per = c
			}
		}
		cost.Steps += 2 * (l - 1)
		cost.TimeS += 2 * float64(l-1) * per
	}
	return cost
}

// AllReduceCost dispatches to the algorithm's cost model. routerOf is
// only consulted by AlgoHier.
func AllReduceCost(algo CollAlgo, n int, mb float64, routerOf []int, link LinkCost) CollCost {
	switch algo {
	case AlgoFlat:
		return FlatAllReduceCost(n, mb, link)
	case AlgoRing:
		return RingAllReduceCost(n, mb, link)
	case AlgoTree:
		return TreeAllReduceCost(n, mb, link)
	case AlgoHier:
		return HierAllReduceCost(n, mb, routerOf, link)
	}
	panic(fmt.Sprintf("mpi: unknown collective algorithm %d", algo))
}

// routerPartition groups ranks by router id (nil routerOf = one
// router). members holds each router's ranks ascending (so members[i][0]
// is that router's leader); leaders lists every leader rank ascending —
// the deterministic ring order of the hierarchical algorithm.
func routerPartition(n int, routerOf []int) (members [][]int, leaders []int) {
	if routerOf == nil {
		all := make([]int, n)
		for r := range all {
			all[r] = r
		}
		return [][]int{all}, []int{0}
	}
	if len(routerOf) != n {
		panic(fmt.Sprintf("mpi: router layout has %d entries for %d ranks", len(routerOf), n))
	}
	byRouter := map[int][]int{}
	for r := 0; r < n; r++ {
		byRouter[routerOf[r]] = append(byRouter[routerOf[r]], r)
	}
	for _, ms := range byRouter {
		members = append(members, ms)
		leaders = append(leaders, ms[0])
	}
	sort.Ints(leaders)
	sort.Slice(members, func(i, j int) bool { return members[i][0] < members[j][0] })
	return members, leaders
}

// Reserved point-to-point tag space of the algorithmic collectives,
// far above any user tag. Matching within a collective rides MPI's
// non-overtaking rule: repeated collectives may reuse a (src, tag)
// pair because each rank consumes its messages in FIFO order.
const (
	algoTagRing     = 1 << 28
	algoTagBruck    = 1<<28 + 1<<20
	algoTagHierUp   = 1<<28 + 2<<20
	algoTagHierRing = 1<<28 + 3<<20
	algoTagHierDown = 1<<28 + 4<<20
)

// AllReduceAlgo reduces buf across all ranks like AllReduce, but moves
// the data over the selected algorithm's real point-to-point structure
// (rank r on router r of a single-router world; use AllReduceAlgoOn
// for an explicit layout). Results are bit-identical to AllReduce for
// every algorithm: the reduction is applied locally in rank order.
func (c *Comm) AllReduceAlgo(algo CollAlgo, op Op, buf []float64) {
	c.AllReduceAlgoOn(algo, op, buf, nil)
}

// AllReduceAlgoOn is AllReduceAlgo with an explicit rank→router layout
// for the hierarchical algorithm (nil = one router; ring and tree
// ignore it). All ranks must pass the same algorithm and layout —
// share one slice, it is only read.
func (c *Comm) AllReduceAlgoOn(algo CollAlgo, op Op, buf []float64, routerOf []int) {
	if algo == AlgoFlat || c.world.size == 1 {
		c.AllReduce(op, buf)
		return
	}
	reduceContribs(op, c.gatherContribs(algo, buf, routerOf), buf)
}

// AllGatherAlgo is AllGather over the selected algorithm's
// communication structure: every rank's buf concatenated in rank
// order, bit-identical to the flat AllGather.
func (c *Comm) AllGatherAlgo(algo CollAlgo, buf []float64) []float64 {
	if algo == AlgoFlat || c.world.size == 1 {
		return c.AllGather(buf)
	}
	contribs := c.gatherContribs(algo, buf, nil)
	var all []float64
	for r, xs := range contribs {
		if len(xs) != len(contribs[0]) {
			panic(fmt.Sprintf("mpi: allgather length mismatch: rank 0 has %d elements, rank %d has %d",
				len(contribs[0]), r, len(xs)))
		}
		all = append(all, xs...)
	}
	return all
}

// ReduceScatterAlgo is ReduceScatter over the selected algorithm's
// communication structure: the rank-order reduction of buf, of which
// this rank receives element block Rank. len(buf) must be a multiple
// of Size on every rank.
func (c *Comm) ReduceScatterAlgo(algo CollAlgo, op Op, buf []float64) []float64 {
	n := c.world.size
	if len(buf)%n != 0 {
		panic(fmt.Sprintf("mpi: reducescatter length %d not divisible by world size %d (rank %d)",
			len(buf), n, c.rank))
	}
	if algo == AlgoFlat || n == 1 {
		return c.ReduceScatter(op, buf)
	}
	acc := make([]float64, len(buf))
	copy(acc, buf)
	reduceContribs(op, c.gatherContribs(algo, buf, nil), acc)
	chunk := len(buf) / n
	res := make([]float64, chunk)
	copy(res, acc[c.rank*chunk:(c.rank+1)*chunk])
	return res
}

// gatherContribs runs the algorithm's communication pattern until this
// rank holds every rank's contribution, indexed by source rank.
func (c *Comm) gatherContribs(algo CollAlgo, buf []float64, routerOf []int) [][]float64 {
	switch algo {
	case AlgoRing:
		return c.ringContribs(buf)
	case AlgoTree:
		return c.bruckContribs(buf)
	case AlgoHier:
		return c.hierContribs(buf, routerOf)
	}
	panic(fmt.Sprintf("mpi: unknown collective algorithm %d", algo))
}

// reduceContribs folds the n contributions into buf in canonical rank
// order 0..n-1 — the exact accumulation order of the flat rendezvous
// combine, so every algorithm's result is bit-identical to AllReduce's.
// Mismatched contribution lengths panic naming both ranks.
func reduceContribs(op Op, contribs [][]float64, buf []float64) {
	for r, xs := range contribs {
		if len(xs) != len(contribs[0]) {
			panic(fmt.Sprintf("mpi: allreduce length mismatch: rank 0 has %d elements, rank %d has %d",
				len(contribs[0]), r, len(xs)))
		}
	}
	acc := make([]float64, len(contribs[0]))
	copy(acc, contribs[0])
	for r := 1; r < len(contribs); r++ {
		xs := contribs[r]
		for i := range acc {
			acc[i] = op.apply(acc[i], xs[i])
		}
	}
	copy(buf, acc)
}

// ringContribs circulates contributions around the rank ring: at step
// s each rank forwards the contribution of rank (r-s) mod n — its own
// at step 0, thereafter the one it just received — so after n-1 steps
// every rank holds all n.
func (c *Comm) ringContribs(buf []float64) [][]float64 {
	n, r := c.world.size, c.rank
	contribs := make([][]float64, n)
	own := make([]float64, len(buf))
	copy(own, buf)
	contribs[r] = own
	right, left := (r+1)%n, (r-1+n)%n
	for s := 0; s < n-1; s++ {
		c.SendFloat64s(right, algoTagRing+s, contribs[((r-s)%n+n)%n])
		data, _ := c.RecvFloat64s(left, algoTagRing+s)
		contribs[((left-s)%n+n)%n] = data
	}
	return contribs
}

// bruckContribs doubles the held contribution set each round: rank r
// sends everything it holds to (r-2^k) mod n and receives from
// (r+2^k) mod n, so after round k it holds contributions r..r+2^(k+1)-1
// (mod n) — all n after ceil(log2 n) rounds, powers of two or not.
func (c *Comm) bruckContribs(buf []float64) [][]float64 {
	n, r := c.world.size, c.rank
	contribs := make([][]float64, n)
	own := make([]float64, len(buf))
	copy(own, buf)
	contribs[r] = own
	for s, dist := 0, 1; dist < n; s, dist = s+1, dist*2 {
		c.Send(((r-dist)%n+n)%n, algoTagBruck+s, encodeContribs(contribs))
		data, _ := c.Recv((r+dist)%n, algoTagBruck+s)
		mergeContribs(contribs, data)
	}
	return contribs
}

// hierContribs runs the hierarchy's data plane over a rank→router
// layout (nil = one router): members ship their contribution to their
// router's leader (lowest member rank), leaders circulate router sets
// around the leader ring, then each leader broadcasts the complete set
// back to its members.
func (c *Comm) hierContribs(buf []float64, routerOf []int) [][]float64 {
	n, r := c.world.size, c.rank
	members, leaders := routerPartition(n, routerOf)
	var mine []int
	for _, ms := range members {
		for _, m := range ms {
			if m == r {
				mine = ms
				break
			}
		}
	}
	contribs := make([][]float64, n)
	own := make([]float64, len(buf))
	copy(own, buf)
	contribs[r] = own
	leader := mine[0]
	if r != leader {
		c.SendFloat64s(leader, algoTagHierUp, own)
		data, _ := c.Recv(leader, algoTagHierDown)
		mergeContribs(contribs, data)
		return contribs
	}
	// Leader: gather members in ascending rank order (deterministic).
	for _, m := range mine[1:] {
		vec, _ := c.RecvFloat64s(m, algoTagHierUp)
		contribs[m] = vec
	}
	// Circulate router sets around the leader ring: forward at step s
	// the set received at step s-1 (initially this router's own).
	if l := len(leaders); l > 1 {
		li := sort.SearchInts(leaders, r)
		rightL, leftL := leaders[(li+1)%l], leaders[(li-1+l)%l]
		cur := make([][]float64, n)
		for _, m := range mine {
			cur[m] = contribs[m]
		}
		for s := 0; s < l-1; s++ {
			c.Send(rightL, algoTagHierRing+s, encodeContribs(cur))
			data, _ := c.Recv(leftL, algoTagHierRing+s)
			next := make([][]float64, n)
			mergeContribs(next, data)
			mergeContribs(contribs, data)
			cur = next
		}
	}
	// Broadcast the complete set down to this router's members.
	if len(mine) > 1 {
		payload := encodeContribs(contribs)
		for _, m := range mine[1:] {
			c.Send(m, algoTagHierDown, payload)
		}
	}
	return contribs
}

// encodeContribs serializes the non-nil entries of a contribution set
// as (count, then per entry: rank, length, little-endian values).
func encodeContribs(contribs [][]float64) []byte {
	count, words := 0, 1
	for _, xs := range contribs {
		if xs != nil {
			count++
			words += 2 + len(xs)
		}
	}
	b := make([]byte, 0, 8*words)
	b = binary.LittleEndian.AppendUint64(b, uint64(count))
	for r, xs := range contribs {
		if xs == nil {
			continue
		}
		b = binary.LittleEndian.AppendUint64(b, uint64(r))
		b = binary.LittleEndian.AppendUint64(b, uint64(len(xs)))
		b = append(b, encodeFloat64s(xs)...)
	}
	return b
}

// mergeContribs decodes an encoded contribution set into contribs,
// keeping existing entries (duplicates arrive in the Bruck rounds).
func mergeContribs(contribs [][]float64, data []byte) {
	count := binary.LittleEndian.Uint64(data)
	off := 8
	for i := uint64(0); i < count; i++ {
		r := int(binary.LittleEndian.Uint64(data[off:]))
		ln := int(binary.LittleEndian.Uint64(data[off+8:]))
		off += 16
		if contribs[r] == nil {
			contribs[r] = decodeFloat64s(data[off : off+8*ln])
		}
		off += 8 * ln
	}
}
