package mpi

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestWorldSize(t *testing.T) {
	w := NewWorld(4)
	if w.Size() != 4 {
		t.Fatalf("size = %d, want 4", w.Size())
	}
}

func TestBadWorldSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []byte("hello"))
		} else {
			data, from := c.Recv(0, 7)
			if string(data) != "hello" || from != 0 {
				t.Errorf("recv = %q from %d, want hello from 0", data, from)
			}
		}
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not affect the delivered message
			c.Send(1, 1, nil)
		} else {
			data, _ := c.Recv(0, 0)
			c.Recv(0, 1)
			if data[0] != 1 {
				t.Errorf("message mutated after send: %v", data)
			}
		}
	})
}

func TestRecvTagMatching(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 10, []byte("ten"))
			c.Send(1, 20, []byte("twenty"))
		} else {
			// Receive out of arrival order by tag.
			d20, _ := c.Recv(0, 20)
			d10, _ := c.Recv(0, 10)
			if string(d20) != "twenty" || string(d10) != "ten" {
				t.Errorf("tag matching failed: %q %q", d20, d10)
			}
		}
	})
}

func TestRecvAnySourceAnyTag(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				_, from := c.Recv(AnySource, AnyTag)
				seen[from] = true
			}
			if !seen[1] || !seen[2] {
				t.Errorf("wildcard recv missed a source: %v", seen)
			}
		default:
			c.Send(0, c.Rank()*100, []byte{byte(c.Rank())})
		}
	})
}

func TestNonOvertakingSameSourceTag(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 20; i++ {
				c.Send(1, 5, []byte{byte(i)})
			}
		} else {
			for i := 0; i < 20; i++ {
				data, _ := c.Recv(0, 5)
				if data[0] != byte(i) {
					t.Errorf("message %d overtaken: got %d", i, data[0])
				}
			}
		}
	})
}

func TestProbe(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []byte("x"))
		} else {
			for !c.Probe(0, 3) {
			}
			if c.Probe(0, 99) {
				t.Error("probe matched wrong tag")
			}
			c.Recv(0, 3)
		}
	})
}

func TestSendRecvShift(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		data, from := c.SendRecv(right, 0, []byte{byte(c.Rank())}, left, 0)
		if from != left || data[0] != byte(left) {
			t.Errorf("rank %d: shift got %d from %d, want %d", c.Rank(), data[0], from, left)
		}
	})
}

func TestFloat64RoundTrip(t *testing.T) {
	w := NewWorld(2)
	want := []float64{1.5, -2.25, math.Pi, 0, math.Inf(1)}
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SendFloat64s(1, 0, want)
		} else {
			got, _ := c.RecvFloat64s(0, 0)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("float round trip = %v, want %v", got, want)
			}
		}
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	var mu sync.Mutex
	before, after := 0, 0
	w.Run(func(c *Comm) {
		mu.Lock()
		before++
		mu.Unlock()
		c.Barrier()
		mu.Lock()
		if before != n {
			t.Errorf("rank %d passed barrier with only %d arrivals", c.Rank(), before)
		}
		after++
		mu.Unlock()
	})
	if after != n {
		t.Fatalf("after = %d, want %d", after, n)
	}
}

func TestRepeatedBarriers(t *testing.T) {
	const n, rounds = 6, 25
	w := NewWorld(n)
	counters := make([]int, n)
	w.Run(func(c *Comm) {
		for r := 0; r < rounds; r++ {
			counters[c.Rank()]++
			c.Barrier()
			for i := range counters {
				if counters[i] < r+1 {
					t.Errorf("barrier round %d leaked: rank %d at %d", r, i, counters[i])
				}
			}
			c.Barrier()
		}
	})
}

func TestAllReduceSum(t *testing.T) {
	const n = 7
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		buf := []float64{float64(c.Rank()), 1}
		c.AllReduce(Sum, buf)
		wantFirst := float64(n * (n - 1) / 2)
		if buf[0] != wantFirst || buf[1] != n {
			t.Errorf("rank %d: allreduce = %v, want [%v %v]", c.Rank(), buf, wantFirst, float64(n))
		}
	})
}

func TestAllReduceOps(t *testing.T) {
	cases := []struct {
		op   Op
		want float64
	}{
		{Sum, 0 + 1 + 2 + 3},
		{Prod, 0},
		{Max, 3},
		{Min, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.op.String(), func(t *testing.T) {
			w := NewWorld(4)
			w.Run(func(c *Comm) {
				buf := []float64{float64(c.Rank())}
				c.AllReduce(tc.op, buf)
				if buf[0] != tc.want {
					t.Errorf("%v: got %v, want %v", tc.op, buf[0], tc.want)
				}
			})
		})
	}
}

func TestReduceRootOnly(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		res := c.Reduce(Sum, 2, []float64{1})
		if c.Rank() == 2 {
			if res == nil || res[0] != n {
				t.Errorf("root reduce = %v, want [%d]", res, n)
			}
		} else if res != nil {
			t.Errorf("non-root rank %d got %v, want nil", c.Rank(), res)
		}
	})
}

func TestBcast(t *testing.T) {
	const n = 6
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		buf := make([]float64, 3)
		if c.Rank() == 1 {
			buf = []float64{10, 20, 30}
		}
		c.Bcast(1, buf)
		if !reflect.DeepEqual(buf, []float64{10, 20, 30}) {
			t.Errorf("rank %d: bcast = %v", c.Rank(), buf)
		}
	})
}

func TestAllGatherOrdered(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		got := c.AllGather([]float64{float64(c.Rank()), float64(c.Rank() * 10)})
		want := []float64{0, 0, 1, 10, 2, 20, 3, 30}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rank %d: allgather = %v, want %v", c.Rank(), got, want)
		}
	})
}

func TestGatherRootOnly(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		got := c.Gather(0, []float64{float64(c.Rank() + 1)})
		if c.Rank() == 0 {
			if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
				t.Errorf("gather = %v", got)
			}
		} else if got != nil {
			t.Errorf("non-root gather = %v, want nil", got)
		}
	})
}

func TestScatter(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		var data []float64
		if c.Rank() == 0 {
			data = []float64{0, 1, 2, 3, 4, 5, 6, 7}
		}
		chunk := c.Scatter(0, data)
		want := []float64{float64(2 * c.Rank()), float64(2*c.Rank() + 1)}
		if !reflect.DeepEqual(chunk, want) {
			t.Errorf("rank %d: scatter = %v, want %v", c.Rank(), chunk, want)
		}
	})
}

func TestCollectivesBackToBack(t *testing.T) {
	// Stress ordering: many different collectives in sequence must not
	// bleed state between phases.
	const n = 5
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		for round := 0; round < 30; round++ {
			buf := []float64{float64(c.Rank() + round)}
			c.AllReduce(Sum, buf)
			want := float64(n*round) + float64(n*(n-1)/2)
			if buf[0] != want {
				t.Errorf("round %d: %v want %v", round, buf[0], want)
				return
			}
			g := c.AllGather([]float64{float64(c.Rank())})
			if len(g) != n {
				t.Errorf("round %d: gather len %d", round, len(g))
				return
			}
			c.Barrier()
		}
	})
}

func TestPropertyAllReduceMatchesSerialSum(t *testing.T) {
	f := func(seed int64, rawN uint8, rawLen uint8) bool {
		n := int(rawN%6) + 1
		length := int(rawLen%32) + 1
		rng := rand.New(rand.NewSource(seed))
		inputs := make([][]float64, n)
		want := make([]float64, length)
		for r := 0; r < n; r++ {
			inputs[r] = make([]float64, length)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
				want[i] += inputs[r][i]
			}
		}
		ok := true
		var mu sync.Mutex
		w := NewWorld(n)
		w.Run(func(c *Comm) {
			buf := make([]float64, length)
			copy(buf, inputs[c.Rank()])
			c.AllReduce(Sum, buf)
			for i := range buf {
				if math.Abs(buf[i]-want[i]) > 1e-9 {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodeDecodeFloat64s(t *testing.T) {
	f := func(xs []float64) bool {
		got := decodeFloat64s(encodeFloat64s(xs))
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if math.Float64bits(got[i]) != math.Float64bits(xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	w := NewWorld(3)
	defer func() {
		if recover() == nil {
			t.Fatal("rank panic not propagated")
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("rank failure")
		}
		// Other ranks block on a receive that will never complete; the
		// kill must unwind them rather than deadlock.
		defer func() { recover() }()
		c.Recv(AnySource, AnyTag)
	})
}

func TestManyRanksStress(t *testing.T) {
	const n = 32
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		buf := []float64{1}
		for i := 0; i < 10; i++ {
			c.AllReduce(Sum, buf)
		}
		if buf[0] != math.Pow(n, 10) {
			t.Errorf("rank %d: got %v want %v", c.Rank(), buf[0], math.Pow(n, 10))
		}
	})
}

func BenchmarkAllReduce8Ranks(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("len=%d", size), func(b *testing.B) {
			w := NewWorld(8)
			b.ResetTimer()
			w.Run(func(c *Comm) {
				buf := make([]float64, size)
				for i := 0; i < b.N; i++ {
					c.AllReduce(Sum, buf)
				}
			})
		})
	}
}

func BenchmarkSendRecvPingPong(b *testing.B) {
	w := NewWorld(2)
	payload := make([]byte, 1024)
	b.ResetTimer()
	w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, payload)
				c.Recv(1, 1)
			} else {
				c.Recv(0, 0)
				c.Send(0, 1, payload)
			}
		}
	})
}

func TestCollectivesSkewedReentry(t *testing.T) {
	// Regression: a fast rank must not deposit for collective k+1 until
	// every rank drained collective k. Skew rank speeds with sleeps so
	// re-entry pressure is constant.
	const n, rounds = 4, 60
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		for r := 0; r < rounds; r++ {
			buf := []float64{float64(c.Rank() + 1)}
			c.AllReduce(Sum, buf)
			if buf[0] != 1+2+3+4 {
				t.Errorf("rank %d round %d: got %v want 10", c.Rank(), r, buf[0])
				return
			}
			// Rank 0 races ahead; rank n-1 lags.
			time.Sleep(time.Duration(c.Rank()) * 100 * time.Microsecond)
		}
	})
}

func TestMixedCollectiveKindsInterleaved(t *testing.T) {
	const n, rounds = 3, 40
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		for r := 0; r < rounds; r++ {
			g := c.AllGather([]float64{float64(c.Rank())})
			if len(g) != n || g[0] != 0 || g[n-1] != float64(n-1) {
				t.Errorf("round %d gather = %v", r, g)
				return
			}
			buf := []float64{1}
			c.AllReduce(Max, buf)
			if buf[0] != 1 {
				t.Errorf("round %d max = %v", r, buf[0])
				return
			}
			c.Barrier()
		}
	})
}

func TestAllToAll(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		// Rank i sends value 10*i+j to rank j.
		buf := make([]float64, n)
		for j := range buf {
			buf[j] = float64(10*c.Rank() + j)
		}
		got := c.AllToAll(buf)
		// Rank j receives 10*i+j from each source i.
		for i := range got {
			want := float64(10*i + c.Rank())
			if got[i] != want {
				t.Errorf("rank %d: alltoall[%d] = %v, want %v", c.Rank(), i, got[i], want)
			}
		}
	})
}

func TestAllToAllMultiElementChunks(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		buf := make([]float64, 2*n)
		for i := range buf {
			buf[i] = float64(100*c.Rank() + i)
		}
		got := c.AllToAll(buf)
		if len(got) != 2*n {
			t.Errorf("rank %d: len = %d", c.Rank(), len(got))
			return
		}
		for src := 0; src < n; src++ {
			for e := 0; e < 2; e++ {
				want := float64(100*src + 2*c.Rank() + e)
				if got[2*src+e] != want {
					t.Errorf("rank %d: chunk from %d elem %d = %v, want %v",
						c.Rank(), src, e, got[2*src+e], want)
				}
			}
		}
	})
}

func TestAllToAllBadLengthPanics(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("indivisible alltoall did not panic")
			}
		}()
		c.AllToAll(make([]float64, 4))
	})
}

func TestReduceScatter(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		buf := make([]float64, n)
		for i := range buf {
			buf[i] = float64(c.Rank() + i)
		}
		got := c.ReduceScatter(Sum, buf)
		// Sum over ranks of (rank + i) = n*i + n(n-1)/2; rank r gets block r.
		want := float64(n*c.Rank()) + float64(n*(n-1)/2)
		if len(got) != 1 || got[0] != want {
			t.Errorf("rank %d: reducescatter = %v, want [%v]", c.Rank(), got, want)
		}
	})
}

func TestReduceScatterEqualsReduceThenScatter(t *testing.T) {
	const n, per = 3, 2
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		buf := make([]float64, n*per)
		for i := range buf {
			buf[i] = float64((c.Rank() + 1) * (i + 1))
		}
		rs := c.ReduceScatter(Sum, buf)
		full := make([]float64, n*per)
		copy(full, buf)
		c.AllReduce(Sum, full)
		for i := 0; i < per; i++ {
			if rs[i] != full[c.Rank()*per+i] {
				t.Errorf("rank %d: rs[%d]=%v, reference %v", c.Rank(), i, rs[i], full[c.Rank()*per+i])
			}
		}
	})
}
