package mpi

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"simaibench/internal/clock"
)

// contribValue gives each (rank, element) pair a value whose floating-
// point sum is order-sensitive, so any algorithm that reduced in a
// different order than the flat rendezvous would produce different
// bits.
func contribValue(rank, i int) float64 {
	return 1.0/3.0*float64(rank+1) + float64(i)*1e-7 + math.Pi*float64(rank*i%7)
}

// equivalenceLayout assigns ranks round-robin-free to routers of two
// ranks each, giving the hierarchical algorithm a multi-router,
// uneven-tail grouping at every tested world size.
func equivalenceLayout(n int) []int {
	routerOf := make([]int, n)
	for r := range routerOf {
		routerOf[r] = r / 2
	}
	return routerOf
}

// TestAllReduceAlgoEquivalence pins the bit-identity contract: every
// CollAlgo produces exactly the flat AllReduce's bits for ops
// {Sum, Max} across world sizes {2, 5, 8}, with and without a
// multi-router layout. Only the communication structure differs
// between algorithms — never a single result bit.
func TestAllReduceAlgoEquivalence(t *testing.T) {
	const elems = 9
	for _, n := range []int{2, 5, 8} {
		for _, op := range []Op{Sum, Max} {
			// Reference: the flat rendezvous combine.
			want := make([][]float64, n)
			{
				w := NewWorld(n)
				w.Run(func(c *Comm) {
					buf := make([]float64, elems)
					for i := range buf {
						buf[i] = contribValue(c.Rank(), i)
					}
					c.AllReduce(op, buf)
					want[c.Rank()] = buf
				})
			}
			for _, algo := range CollAlgos() {
				for _, layout := range [][]int{nil, equivalenceLayout(n)} {
					w := NewWorld(n)
					got := make([][]float64, n)
					routerOf := layout
					w.Run(func(c *Comm) {
						buf := make([]float64, elems)
						for i := range buf {
							buf[i] = contribValue(c.Rank(), i)
						}
						c.AllReduceAlgoOn(algo, op, buf, routerOf)
						got[c.Rank()] = buf
					})
					for r := 0; r < n; r++ {
						for i := range got[r] {
							if got[r][i] != want[r][i] {
								t.Fatalf("n=%d op=%s algo=%s layout=%v rank %d elem %d: got %x, want %x (bits differ)",
									n, op, algo, layout != nil, r, i, got[r][i], want[r][i])
							}
						}
					}
				}
			}
		}
	}
}

// TestAllReduceAlgoUnderClockBridge runs every algorithm with the
// world's waits bridged to a virtual clock's participant barrier and
// ranks entering the collective at skewed virtual times — the exact
// configuration workflow.Launch builds for Remote components. Under
// -race this also exercises the bridge's join/leave accounting against
// the p2p mailbox path the algorithms run on.
func TestAllReduceAlgoUnderClockBridge(t *testing.T) {
	const n, elems = 5, 4
	for _, algo := range CollAlgos() {
		v := clock.NewVirtual()
		w := NewWorld(n)
		w.SetClockBridge(v.Join, v.Leave)
		got := make([][]float64, n)
		routerOf := equivalenceLayout(n)
		w.Run(func(c *Comm) {
			v.Join()
			defer v.Leave()
			// Skew arrival: slower ranks drag virtual time while fast
			// ranks park inside the collective via the bridge.
			v.Sleep(time.Duration(c.Rank()+1) * 10 * time.Millisecond)
			buf := make([]float64, elems)
			for i := range buf {
				buf[i] = contribValue(c.Rank(), i)
			}
			c.AllReduceAlgoOn(algo, Sum, buf, routerOf)
			got[c.Rank()] = buf
		})
		for r := 1; r < n; r++ {
			for i := range got[r] {
				if got[r][i] != got[0][i] {
					t.Fatalf("algo=%s: rank %d disagrees with rank 0 under clock bridge", algo, r)
				}
			}
		}
	}
}

// TestAllGatherAndReduceScatterAlgo pins the building blocks to their
// flat counterparts across algorithms.
func TestAllGatherAndReduceScatterAlgo(t *testing.T) {
	const n = 5
	for _, algo := range CollAlgos() {
		w := NewWorld(n)
		w.Run(func(c *Comm) {
			buf := make([]float64, 2*n)
			for i := range buf {
				buf[i] = contribValue(c.Rank(), i)
			}
			wantAG := c.AllGather(buf[:3])
			gotAG := c.AllGatherAlgo(algo, buf[:3])
			for i := range wantAG {
				if gotAG[i] != wantAG[i] {
					panic(fmt.Sprintf("algo=%s allgather elem %d: got %x want %x", algo, i, gotAG[i], wantAG[i]))
				}
			}
			wantRS := c.ReduceScatter(Sum, buf)
			gotRS := c.ReduceScatterAlgo(algo, Sum, buf)
			for i := range wantRS {
				if gotRS[i] != wantRS[i] {
					panic(fmt.Sprintf("algo=%s reducescatter elem %d: got %x want %x", algo, i, gotRS[i], wantRS[i]))
				}
			}
		})
	}
}

func TestParseCollAlgo(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CollAlgo
	}{
		{"", AlgoFlat}, {"flat", AlgoFlat}, {"ring", AlgoRing},
		{"tree", AlgoTree}, {"hier", AlgoHier}, {"hierarchical", AlgoHier},
	} {
		got, err := ParseCollAlgo(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseCollAlgo(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseCollAlgo("butterfly"); err == nil {
		t.Error("ParseCollAlgo should reject unknown algorithms")
	}
	if CollAlgo(99).String() != "unknown" {
		t.Error("out-of-range CollAlgo should stringify as unknown")
	}
}

// TestCollCostShapes pins the analytic step counts and times of each
// cost model on a uniform link (α=1µs, B=10 GB/s), where the closed
// forms are exact.
func TestCollCostShapes(t *testing.T) {
	const alpha, bw = 1e-6, 10.0
	link := func(a, b int, mb float64) float64 {
		if a == b {
			return 0
		}
		return alpha + mb/1000/bw
	}
	const n, mb = 8, 16.0
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }

	flat := FlatAllReduceCost(n, mb, link)
	if flat.Steps != 1 || !approx(flat.TimeS, link(0, 1, mb)) {
		t.Errorf("flat cost = %+v", flat)
	}
	ring := RingAllReduceCost(n, mb, link)
	if ring.Steps != 2*(n-1) || !approx(ring.TimeS, float64(2*(n-1))*link(0, 1, mb/n)) {
		t.Errorf("ring cost = %+v", ring)
	}
	tree := TreeAllReduceCost(n, mb, link)
	if tree.Steps != 3 || !approx(tree.TimeS, 3*link(0, 1, mb)) {
		t.Errorf("tree cost = %+v", tree)
	}
	// Hierarchy on 4 routers of 2: up/down are 1 round each (m=2),
	// leader ring is 2·3 steps at mb/4.
	hier := HierAllReduceCost(n, mb, equivalenceLayout(n), link)
	wantHier := 2*link(0, 1, mb) + 6*link(0, 2, mb/4)
	if hier.Steps != 2+6 || !approx(hier.TimeS, wantHier) {
		t.Errorf("hier cost = %+v, want time %v", hier, wantHier)
	}
	// Single rank: every algorithm is free.
	for _, algo := range CollAlgos() {
		if c := AllReduceCost(algo, 1, mb, nil, link); c.Steps != 0 || c.TimeS != 0 {
			t.Errorf("%s cost at n=1 = %+v, want zero", algo, c)
		}
	}
}

// TestScatterValidatesBeforeRendezvous: a root passing a non-divisible
// length must fail at the call site, before depositing into the shared
// barrier — the world's unwind then names the scatter, not a confusing
// post-barrier panic on every rank.
func TestScatterValidatesBeforeRendezvous(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic")
		}
		msg := fmt.Sprint(p)
		if !strings.Contains(msg, "scatter root 0 data length 5 not divisible by world size 3") {
			t.Fatalf("panic = %q, want the named pre-deposit validation", msg)
		}
	}()
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		c.Scatter(0, make([]float64, 5))
	})
}

// TestAllReduceLengthMismatchNamesRanks: mismatched contribution
// lengths must panic naming both ranks and lengths instead of reducing
// garbage or indexing out of bounds.
func TestAllReduceLengthMismatchNamesRanks(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic")
		}
		msg := fmt.Sprint(p)
		if !strings.Contains(msg, "allreduce length mismatch: rank 0 has 4 elements, rank 2 has 7") {
			t.Fatalf("panic = %q, want both ranks and lengths named", msg)
		}
	}()
	w := NewWorld(3)
	w.Run(func(c *Comm) {
		ln := 4
		if c.Rank() == 2 {
			ln = 7
		}
		c.AllReduce(Sum, make([]float64, ln))
	})
}

// TestBcastLengthMismatchPanics covers the broadcast variant of the
// explicit mismatch check (previously a silent truncation).
func TestBcastLengthMismatchPanics(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(fmt.Sprint(p), "bcast length mismatch") {
			t.Fatalf("panic = %v, want bcast mismatch", p)
		}
	}()
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		c.Bcast(0, make([]float64, 3+c.Rank()))
	})
}

// TestScatterCopiesBeforeDeposit is the mutation-under-rendezvous
// regression test: root deposits its contribution and parks; a
// concurrent writer then scribbles over the caller's original slice
// before the remaining ranks arrive. Every rank's chunk must reflect
// the values at call time — the shared slot must hold a private copy,
// never an alias of the caller's buffer.
func TestScatterCopiesBeforeDeposit(t *testing.T) {
	const n = 3
	w := NewWorld(n)
	data := []float64{0, 1, 2, 3, 4, 5}
	release := make(chan struct{})
	go func() {
		// Wait until root's contribution sits in the shared slot.
		for {
			w.coll.mu.Lock()
			arrived := w.coll.arrived
			w.coll.mu.Unlock()
			if arrived == 1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		for i := range data {
			data[i] = -1
		}
		close(release)
	}()
	var mu sync.Mutex
	chunks := make([][]float64, n)
	w.Run(func(c *Comm) {
		var chunk []float64
		if c.Rank() == 0 {
			chunk = c.Scatter(0, data)
		} else {
			<-release // arrive only after the mutation landed
			chunk = c.Scatter(0, nil)
		}
		mu.Lock()
		chunks[c.Rank()] = chunk
		mu.Unlock()
	})
	for r := 0; r < n; r++ {
		for i, v := range chunks[r] {
			if want := float64(r*2 + i); v != want {
				t.Fatalf("rank %d chunk[%d] = %v, want %v (root's buffer was aliased in the rendezvous)",
					r, i, v, want)
			}
		}
	}
}
