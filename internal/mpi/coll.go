package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// Op is a reduction operator for Reduce/AllReduce.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Prod
	Max
	Min
)

func (op Op) apply(a, b float64) float64 {
	switch op {
	case Sum:
		return a + b
	case Prod:
		return a * b
	case Max:
		return math.Max(a, b)
	case Min:
		return math.Min(a, b)
	}
	panic("mpi: unknown op")
}

// String returns the operator name.
func (op Op) String() string {
	switch op {
	case Sum:
		return "sum"
	case Prod:
		return "prod"
	case Max:
		return "max"
	case Min:
		return "min"
	}
	return "unknown"
}

// collState holds the rendezvous structures for collective operations:
// a two-phase cyclic barrier plus a shared contribution slot array. One
// collective may be in flight at a time per world, matching MPI's
// requirement that all ranks call collectives in the same order. The
// draining flag is load-bearing: a fast rank finishing collective k must
// not deposit its contribution for collective k+1 until every rank has
// picked up collective k's result, or slots and generations desynchronize.
type collState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	arrived  int   // ranks deposited in the current collective
	exited   int   // ranks that picked up the current result
	gen      int   // barrier generation
	draining bool  // result published, waiting for all ranks to exit
	slots    []any // per-rank contribution for the current collective
	out      any   // combined result, valid while draining
	dead     bool
	// Clock-bridge state (World.SetClockBridge): ranks parked waiting
	// for slower ranks leave the emulation clock's barrier; the rank
	// whose broadcast releases them rejoins them first, under the
	// mutex, so virtual time cannot slip into the wakeup window.
	join         func()
	leave        func()
	genWaiters   int // ranks parked waiting for the current combine
	entryWaiters int // ranks parked waiting for the previous drain
}

// leaveOne parks the calling rank off the clock barrier (bridge only).
func (c *collState) leaveOne(ctr *int) {
	if c.leave != nil {
		c.leave()
		*ctr++
	}
}

// joinAll rejoins every rank parked on ctr; call before the broadcast
// that wakes them.
func (c *collState) joinAll(ctr *int) {
	if c.join != nil {
		for i := 0; i < *ctr; i++ {
			c.join()
		}
	}
	*ctr = 0
}

func newCollState(n int) *collState {
	c := &collState{n: n, slots: make([]any, n)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collState) kill() {
	c.mu.Lock()
	c.dead = true
	// Rejoin every bridge-parked rank before waking it to die (see
	// mailbox.kill): the panic unwind retires each rank's barrier slot
	// exactly once.
	c.joinAll(&c.genWaiters)
	c.joinAll(&c.entryWaiters)
	c.mu.Unlock()
	c.cond.Broadcast()
}

// rendezvous deposits this rank's contribution, blocks until all n ranks
// have arrived, computes combine (on the last arriver) exactly once, and
// returns the combined result to every rank.
func (c *collState) rendezvous(rank int, contribution any, combine func(slots []any) any) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Entry phase: the previous collective must be fully drained before
	// this rank may deposit for the next one. Parked entrants leave the
	// clock barrier once and are rejoined by the reopening rank; the
	// combine broadcast may wake them spuriously, in which case they
	// keep waiting without touching the barrier again.
	if c.draining {
		c.leaveOne(&c.entryWaiters)
		for c.draining {
			if c.dead {
				panic("mpi: world killed during collective")
			}
			c.cond.Wait()
		}
	}
	if c.dead {
		panic("mpi: world killed during collective")
	}
	gen := c.gen
	c.slots[rank] = contribution
	c.arrived++
	if c.arrived == c.n {
		c.out = combine(c.slots)
		// Rejoin the n-1 parked ranks before releasing them: they wake
		// already inside the clock barrier.
		c.joinAll(&c.genWaiters)
		c.gen++
		c.draining = true
		c.cond.Broadcast()
	} else {
		c.leaveOne(&c.genWaiters)
		for gen == c.gen {
			if c.dead {
				panic("mpi: world killed during collective")
			}
			c.cond.Wait()
		}
	}
	out := c.out
	// Exit phase: the last rank out resets state and reopens entry.
	c.exited++
	if c.exited == c.n {
		c.arrived, c.exited = 0, 0
		for i := range c.slots {
			c.slots[i] = nil
		}
		c.out = nil
		c.draining = false
		c.joinAll(&c.entryWaiters)
		c.cond.Broadcast()
	}
	return out
}

// rendezvous is the Comm-level entry into the shared collective state.
func (c *Comm) rendezvous(contribution any, combine func(slots []any) any) any {
	return c.world.coll.rendezvous(c.rank, contribution, combine)
}

// Barrier blocks until every rank in the world has entered it.
func (c *Comm) Barrier() {
	c.rendezvous(nil, func([]any) any { return nil })
}

// validateEqualLengths panics when any two ranks' contributions to the
// current collective disagree in length, naming both ranks and lengths.
// It runs inside the combine — on the last-arriving rank, before any
// result is published — so a mismatch is a loud, attributable failure
// instead of a silently truncated broadcast or an out-of-bounds panic
// deep in the element loop.
func validateEqualLengths(coll string, slots []any) {
	n0 := len(slots[0].([]float64))
	for r := 1; r < len(slots); r++ {
		if nr := len(slots[r].([]float64)); nr != n0 {
			panic(fmt.Sprintf("mpi: %s length mismatch: rank 0 has %d elements, rank %d has %d",
				coll, n0, r, nr))
		}
	}
}

// Bcast broadcasts root's buffer to all ranks. Every rank passes its own
// buf; non-root buffers are overwritten in place (lengths must match —
// a mismatch panics naming both ranks).
func (c *Comm) Bcast(root int, buf []float64) {
	contribution := make([]float64, len(buf))
	copy(contribution, buf)
	out := c.rendezvous(contribution, func(slots []any) any {
		validateEqualLengths("bcast", slots)
		return slots[root]
	})
	copy(buf, out.([]float64))
}

// AllReduce reduces buf element-wise across all ranks with op and writes
// the result back into buf on every rank. Lengths must match across
// ranks; a mismatch panics naming both ranks.
func (c *Comm) AllReduce(op Op, buf []float64) {
	contribution := make([]float64, len(buf))
	copy(contribution, buf)
	out := c.rendezvous(contribution, func(slots []any) any {
		validateEqualLengths("allreduce", slots)
		acc := make([]float64, len(slots[0].([]float64)))
		copy(acc, slots[0].([]float64))
		for r := 1; r < len(slots); r++ {
			xs := slots[r].([]float64)
			for i := range acc {
				acc[i] = op.apply(acc[i], xs[i])
			}
		}
		return acc
	})
	copy(buf, out.([]float64))
}

// Reduce reduces to root only; other ranks receive buf unchanged and the
// result slice is returned only on root (nil elsewhere). Lengths must
// match across ranks; a mismatch panics naming both ranks.
func (c *Comm) Reduce(op Op, root int, buf []float64) []float64 {
	contribution := make([]float64, len(buf))
	copy(contribution, buf)
	out := c.rendezvous(contribution, func(slots []any) any {
		validateEqualLengths("reduce", slots)
		acc := make([]float64, len(slots[0].([]float64)))
		copy(acc, slots[0].([]float64))
		for r := 1; r < len(slots); r++ {
			xs := slots[r].([]float64)
			for i := range acc {
				acc[i] = op.apply(acc[i], xs[i])
			}
		}
		return acc
	})
	if c.rank == root {
		return out.([]float64)
	}
	return nil
}

// AllGather concatenates every rank's buf in rank order and returns the
// full vector on every rank.
func (c *Comm) AllGather(buf []float64) []float64 {
	contribution := make([]float64, len(buf))
	copy(contribution, buf)
	out := c.rendezvous(contribution, func(slots []any) any {
		var all []float64
		for _, s := range slots {
			all = append(all, s.([]float64)...)
		}
		return all
	})
	src := out.([]float64)
	res := make([]float64, len(src))
	copy(res, src)
	return res
}

// Gather concatenates every rank's buf in rank order on root; other ranks
// get nil.
func (c *Comm) Gather(root int, buf []float64) []float64 {
	contribution := make([]float64, len(buf))
	copy(contribution, buf)
	out := c.rendezvous(contribution, func(slots []any) any {
		var all []float64
		for _, s := range slots {
			all = append(all, s.([]float64)...)
		}
		return all
	})
	if c.rank == root {
		src := out.([]float64)
		res := make([]float64, len(src))
		copy(res, src)
		return res
	}
	return nil
}

// Scatter splits root's data into world-size equal chunks and returns this
// rank's chunk on every rank. len(data) must be a multiple of Size on
// root; other ranks may pass nil. Root's length is validated *before*
// the rendezvous — a bad length panics only the offending caller, never
// the whole world past the barrier — and root's data is copied before
// deposit, so the caller's slice is never aliased in the shared
// rendezvous state (a caller mutating data while slower ranks are still
// in the collective cannot corrupt their chunks).
func (c *Comm) Scatter(root int, data []float64) []float64 {
	n := c.world.size
	var contribution []float64
	if c.rank == root {
		if len(data)%n != 0 {
			panic(fmt.Sprintf("mpi: scatter root %d data length %d not divisible by world size %d",
				root, len(data), n))
		}
		contribution = make([]float64, len(data))
		copy(contribution, data)
	}
	out := c.rendezvous(contribution, func(slots []any) any {
		// The deposit is already a private copy; publish it directly.
		return slots[root]
	})
	full := out.([]float64)
	chunk := len(full) / n
	res := make([]float64, chunk)
	copy(res, full[c.rank*chunk:(c.rank+1)*chunk])
	return res
}

// encodeFloat64s serializes a float64 slice little-endian.
func encodeFloat64s(xs []float64) []byte {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return buf
}

// decodeFloat64s is the inverse of encodeFloat64s.
func decodeFloat64s(b []byte) []float64 {
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return xs
}

// AllToAll exchanges equal chunks between every pair of ranks: rank i
// sends buf[j*chunk:(j+1)*chunk] to rank j and returns the concatenation
// of the chunks addressed to it, in source-rank order. len(buf) must be
// a multiple of Size.
func (c *Comm) AllToAll(buf []float64) []float64 {
	n := c.world.size
	if len(buf)%n != 0 {
		panic(fmt.Sprintf("mpi: alltoall length %d not divisible by world size %d (rank %d)",
			len(buf), n, c.rank))
	}
	contribution := make([]float64, len(buf))
	copy(contribution, buf)
	out := c.rendezvous(contribution, func(slots []any) any {
		validateEqualLengths("alltoall", slots)
		// Copy the slot container: ranks slice their columns after the
		// rendezvous, by which time the shared slots array has been
		// reset for the next collective.
		return append([]any(nil), slots...)
	})
	slots := out.([]any)
	chunk := len(buf) / n
	res := make([]float64, 0, len(buf))
	for src := 0; src < n; src++ {
		data := slots[src].([]float64)
		res = append(res, data[c.rank*chunk:(c.rank+1)*chunk]...)
	}
	return res
}

// ReduceScatter reduces buf element-wise across ranks with op, then
// scatters the result: rank i receives element block i. len(buf) must be
// a multiple of Size.
func (c *Comm) ReduceScatter(op Op, buf []float64) []float64 {
	n := c.world.size
	if len(buf)%n != 0 {
		panic(fmt.Sprintf("mpi: reducescatter length %d not divisible by world size %d (rank %d)",
			len(buf), n, c.rank))
	}
	contribution := make([]float64, len(buf))
	copy(contribution, buf)
	out := c.rendezvous(contribution, func(slots []any) any {
		validateEqualLengths("reducescatter", slots)
		acc := make([]float64, len(slots[0].([]float64)))
		copy(acc, slots[0].([]float64))
		for r := 1; r < len(slots); r++ {
			xs := slots[r].([]float64)
			for i := range acc {
				acc[i] = op.apply(acc[i], xs[i])
			}
		}
		return acc
	})
	full := out.([]float64)
	chunk := len(buf) / n
	res := make([]float64, chunk)
	copy(res, full[c.rank*chunk:(c.rank+1)*chunk])
	return res
}
