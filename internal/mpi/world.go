// Package mpi provides an in-process message-passing runtime with MPI-like
// semantics: a fixed-size world of ranks, point-to-point send/receive with
// source and tag matching, and the collective operations the paper's
// Kernels module exposes (AllReduce, AllGather, Bcast, Barrier, ...).
//
// It replaces mpi4py/mpirun from the original Python framework: in real
// mode every workflow component rank is a goroutine inside one process,
// and this package is the fabric between them. Sends are eager (buffered
// at the receiver), so common exchange patterns cannot deadlock.
package mpi

import (
	"fmt"
	"sync"
)

// Wildcard values for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// World is a communicator universe of fixed size. Create one with
// NewWorld, then either call Run to spawn one goroutine per rank or use
// Comm handles directly from goroutines you manage yourself.
type World struct {
	size   int
	boxes  []*mailbox
	coll   *collState
	killed bool
	mu     sync.Mutex
}

// NewWorld returns a world with the given number of ranks (>= 1).
func NewWorld(size int) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{size: size}
	w.boxes = make([]*mailbox, size)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	w.coll = newCollState(size)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetClockBridge connects this world's blocking waits to an emulation
// clock's participant barrier (clock.Virtual). A rank that parks inside
// MPI — a Recv with no matching message, a collective waiting for
// slower ranks — calls leave, releasing the barrier so ranks sleeping
// on the clock can progress toward the matching send. The *waker* (the
// sender, the last rank into a collective) calls join once per parked
// waiter it is about to release, while still holding the monitor, so a
// woken rank re-enters the barrier before the waker can possibly reach
// its next sleep: virtual time can never slip past a rank in the wakeup
// window, which keeps multi-rank components deterministic.
//
// Call before any communication. Both hooks must be safe for concurrent
// use; pass clock.Clock.Join/Leave. Nil restores the default (waits run
// inline, untracked).
func (w *World) SetClockBridge(join, leave func()) {
	for _, b := range w.boxes {
		b.join, b.leave = join, leave
	}
	w.coll.join, w.coll.leave = join, leave
}

// Comm returns the communicator handle for the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Run spawns one goroutine per rank executing body and blocks until every
// rank returns. If any rank panics, Run re-panics with the first failure
// after the others finish or stall; ranks are expected to be well matched.
func (w *World) Run(body func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make(chan any, w.size)
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
					w.kill()
				}
			}()
			body(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// kill unblocks all pending receives so a panicking run can unwind.
// Ranks parked under a clock bridge are rejoined before they wake (see
// mailbox.kill), so each dying rank's teardown retires exactly the
// barrier slot it holds.
func (w *World) kill() {
	w.mu.Lock()
	w.killed = true
	w.mu.Unlock()
	for _, b := range w.boxes {
		b.kill()
	}
	w.coll.kill()
}

// Comm is a per-rank communicator handle. Handles are cheap and safe to
// copy; all methods may block per MPI semantics.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// World returns the owning world.
func (c *Comm) World() *World { return c.world }
