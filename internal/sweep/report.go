package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"time"
)

// This file is the hardened sweep runner: the guardrail layer that lets
// a thousand-cell campaign survive one bad cell. Every cell runs with
// panic isolation; Options add a per-attempt wall-clock deadline (so a
// wedged cell is abandoned, not waited on forever) and bounded
// seeded-backoff retry for cells that fail with Retryable errors. The
// Report result carries per-cell completion state, so a sweep returns
// every completed cell plus structured failures instead of being
// all-or-nothing — and so cancelled sweeps can tell a real zero-value
// result from a cell that never started.

// Status classifies one cell of a Report.
type Status uint8

// The per-cell completion states of a hardened sweep.
const (
	// StatusSkipped: the cell never started — the sweep was cancelled
	// before a worker claimed it. Its value slot holds a zero value that
	// is NOT a result.
	StatusSkipped Status = iota
	// StatusOK: the cell completed; its value slot is valid.
	StatusOK
	// StatusFailed: the cell panicked, timed out, or returned an error on
	// its final attempt; its failure is in Report.Failures.
	StatusFailed
)

// String names the status for reports and tests.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusFailed:
		return "failed"
	default:
		return "skipped"
	}
}

// PanicError wraps a panic recovered from a sweep cell, so one
// misbehaving cell surfaces as a structured per-cell failure instead of
// killing the whole process.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
}

// Error renders the panic value.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// ErrCellTimeout marks a cell abandoned at its per-attempt deadline
// (Options.Timeout): the cell's goroutine was still running — possibly
// wedged on a barrier — when the sweep gave up on it.
var ErrCellTimeout = errors.New("sweep: cell deadline exceeded")

// CellError is the structured failure of one sweep cell.
type CellError struct {
	// Index is the cell's position in enumeration order.
	Index int
	// Attempts is how many attempts were made (1 = no retries).
	Attempts int
	// Err is the final attempt's error; a *PanicError for panics,
	// ErrCellTimeout (wrapped) for abandoned cells.
	Err error
	// Stack is the goroutine stack captured at the panic site, empty for
	// non-panic failures.
	Stack string
}

// Error summarizes the failure without the stack.
func (e *CellError) Error() string {
	return fmt.Sprintf("sweep: cell %d failed after %d attempt(s): %v", e.Index, e.Attempts, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// retryableError is the marker wrapper set by Retryable.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// Retryable marks err as transient: the hardened runner re-attempts a
// cell that fails with a Retryable error, up to Options.Retries extra
// attempts with seeded exponential backoff. Unmarked errors, panics and
// timeouts fail the cell immediately.
func Retryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err}
}

// IsRetryable reports whether err (or anything it wraps) was marked
// with Retryable.
func IsRetryable(err error) bool {
	var r *retryableError
	return errors.As(err, &r)
}

// Options are the guardrail knobs of a hardened sweep. The zero value
// runs every cell inline with panic isolation only — no deadline, no
// retry — which is the zero-cost configuration healthy sweeps use.
type Options struct {
	// Timeout is the per-attempt wall-clock deadline (0 = none). When
	// set, each attempt runs on its own goroutine and is abandoned at the
	// deadline with ErrCellTimeout: a cell wedged on a barrier cannot
	// hang the sweep, but its goroutine leaks by design — prefer cells
	// that observe their ctx so abandonment is the last resort.
	Timeout time.Duration
	// Retries is the number of extra attempts granted to a cell whose
	// error is marked Retryable (0 = fail on first error).
	Retries int
	// Backoff is the delay before the first retry, doubling each further
	// retry and jittered deterministically from Seed; 0 defaults to 1ms.
	Backoff time.Duration
	// Seed roots the per-cell backoff jitter, so retry timing is
	// reproducible per (Seed, cell index).
	Seed int64
}

// Report is the structured outcome of a hardened sweep: per-cell values,
// per-cell completion state, and the failures in index order.
type Report[T any] struct {
	// Values holds one slot per cell in enumeration order. Only cells
	// whose Status is StatusOK hold results; Failed and Skipped slots
	// hold zero values.
	Values []T
	// Status classifies each cell (same indexing as Values).
	Status []Status
	// Failures lists every failed cell in index order.
	Failures []*CellError
	// CtxErr is the sweep context's error when the sweep was cancelled,
	// nil otherwise.
	CtxErr error
}

// OK reports whether every cell completed successfully.
func (r *Report[T]) OK() bool { return r.CtxErr == nil && len(r.Failures) == 0 }

// Err summarizes the sweep: the context error if it was cancelled, else
// the first cell failure, else nil.
func (r *Report[T]) Err() error {
	if r.CtxErr != nil {
		return r.CtxErr
	}
	if len(r.Failures) > 0 {
		return r.Failures[0]
	}
	return nil
}

// Completed returns the values of the StatusOK cells in enumeration
// order — the partial-result view that drops failed and never-started
// cells instead of passing their zero values off as data.
func (r *Report[T]) Completed() []T {
	if r.OK() {
		return r.Values
	}
	out := make([]T, 0, len(r.Values))
	for i, v := range r.Values {
		if r.Status[i] == StatusOK {
			out = append(out, v)
		}
	}
	return out
}

// Run evaluates f(ctx, 0..n-1) on the bounded worker pool with the full
// guardrail stack: panic isolation always, plus opts' per-attempt
// deadline and retry policy. Unlike Map it never discards completion
// state — every cell ends StatusOK, StatusFailed or StatusSkipped, and
// the sweep always returns every completed cell.
func Run[T any](ctx context.Context, n int, opts Options, f func(ctx context.Context, i int) (T, error)) *Report[T] {
	r := &Report[T]{Values: make([]T, n), Status: make([]Status, n)}
	if n == 0 {
		return r
	}
	// Per-slot failure storage keeps workers lock-free (each writes only
	// its own cells); gathered into index order afterwards.
	fails := make([]*CellError, n)
	cell := func(i int) {
		if v, cerr := runCell(ctx, i, opts, f); cerr != nil {
			r.Status[i] = StatusFailed
			fails[i] = cerr
		} else {
			r.Values[i] = v
			r.Status[i] = StatusOK
		}
	}
	forEachCell(ctx, n, cell)
	r.CtxErr = ctx.Err()
	for _, ce := range fails {
		if ce != nil {
			r.Failures = append(r.Failures, ce)
		}
	}
	return r
}

// RunGrid is Run over the row-major cartesian product of xs × ys — the
// hardened counterpart of Grid, with the same enumeration order.
func RunGrid[X, Y, T any](ctx context.Context, xs []X, ys []Y, opts Options,
	f func(ctx context.Context, x X, y Y) (T, error)) *Report[T] {
	return Run(ctx, len(xs)*len(ys), opts, func(ctx context.Context, i int) (T, error) {
		return f(ctx, xs[i/len(ys)], ys[i%len(ys)])
	})
}

// runCell runs one cell's attempt loop: panic isolation on every
// attempt, bounded seeded-backoff retry for Retryable failures.
func runCell[T any](ctx context.Context, i int, opts Options, f func(context.Context, int) (T, error)) (T, *CellError) {
	var zero T
	var rng *rand.Rand
	for attempt := 1; ; attempt++ {
		val, err, stack := runAttempt(ctx, i, opts.Timeout, f)
		if err == nil {
			return val, nil
		}
		if attempt > opts.Retries || !IsRetryable(err) || ctx.Err() != nil {
			return zero, &CellError{Index: i, Attempts: attempt, Err: err, Stack: stack}
		}
		base := opts.Backoff
		if base <= 0 {
			base = time.Millisecond
		}
		if rng == nil {
			// Distinct deterministic stream per (Seed, cell).
			rng = rand.New(rand.NewSource(opts.Seed ^ (int64(i)+1)*0x9e3779b97f4a7c))
		}
		d := time.Duration(float64(base) * float64(int64(1)<<(attempt-1)) * (0.5 + rng.Float64()))
		select {
		case <-ctx.Done():
			return zero, &CellError{Index: i, Attempts: attempt, Err: err, Stack: stack}
		case <-time.After(d):
		}
	}
}

// runAttempt executes one attempt. Without a timeout it runs inline on
// the worker (zero extra cost); with one it runs on its own goroutine so
// a wedged cell can be abandoned at the deadline.
func runAttempt[T any](ctx context.Context, i int, timeout time.Duration, f func(context.Context, int) (T, error)) (T, error, string) {
	if timeout <= 0 {
		return protect(ctx, i, f)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type outcome struct {
		val   T
		err   error
		stack string
	}
	ch := make(chan outcome, 1)
	go func() {
		v, e, s := protect(actx, i, f)
		ch <- outcome{v, e, s}
	}()
	select {
	case o := <-ch:
		return o.val, o.err, o.stack
	case <-actx.Done():
		// Abandon the attempt: its goroutine keeps running until it
		// observes actx (or leaks, if it is truly wedged) — the sweep
		// must survive either way.
		var zero T
		if err := ctx.Err(); err != nil {
			return zero, err, "" // parent cancellation, not a cell timeout
		}
		return zero, fmt.Errorf("%w (after %v)", ErrCellTimeout, timeout), ""
	}
}

// protect runs f with panic isolation, capturing the stack at the panic
// site so the report can say where the cell died.
func protect[T any](ctx context.Context, i int, f func(context.Context, int) (T, error)) (val T, err error, stack string) {
	defer func() {
		if rec := recover(); rec != nil {
			var zero T
			val, err, stack = zero, &PanicError{Value: rec}, string(debug.Stack())
		}
	}()
	v, e := f(ctx, i)
	return v, e, ""
}
