package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	prev := Workers
	defer func() { Workers = prev }()
	for _, workers := range []int{1, 2, 8, 100} {
		Workers = workers
		got, err := Map(context.Background(), 25, func(i int) int { return i * i })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestGridRowMajorOrder(t *testing.T) {
	type cell struct {
		x string
		y int
	}
	got, err := Grid(context.Background(), []string{"a", "b"}, []int{1, 2, 3},
		func(x string, y int) cell { return cell{x, y} })
	if err != nil {
		t.Fatal(err)
	}
	want := []cell{{"a", 1}, {"a", 2}, {"a", 3}, {"b", 1}, {"b", 2}, {"b", 3}}
	if len(got) != len(want) {
		t.Fatalf("%d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMapCancelled(t *testing.T) {
	prev := Workers
	defer func() { Workers = prev }()
	for _, workers := range []int{1, 4} {
		Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		_, err := Map(ctx, 1000, func(i int) int {
			if ran.Add(1) == 3 {
				cancel()
			}
			return i
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1000 {
			t.Fatalf("workers=%d: cancellation did not stop the sweep (%d cells ran)", workers, n)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 0, func(i int) int { return i })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}
