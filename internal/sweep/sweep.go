// Package sweep is the parallel parameter-sweep runner shared by every
// experiment harness: a bounded worker pool that fans independent cells
// across cores, a declarative cartesian Grid on top of it, and a
// hardened Run variant (report.go) with panic isolation, per-cell
// deadlines, retry and per-cell completion state.
//
// Each cell builds its own isolated des.Env and cost model, runs
// single-threaded and bit-deterministic, and writes only its own result
// slot — so results are identical at any worker count and the slice
// order never depends on scheduling.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers caps the worker pool used to fan independent sweep cells
// across cores; 0 (the default) uses GOMAXPROCS, 1 forces serial
// execution.
var Workers int

// forEachCell dispatches cell(0..n-1) over the bounded worker pool,
// stopping dispatch (but not in-flight cells) when ctx is cancelled.
func forEachCell(ctx context.Context, n int, cell func(i int)) {
	workers := Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			cell(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cell(i)
			}
		}()
	}
	wg.Wait()
}

// Map evaluates f(0..n-1) on the bounded worker pool and returns the
// results in index order. Cancelling ctx stops new cells from starting;
// Map then returns the partial results alongside ctx.Err(). A panicking
// cell no longer kills the sweep: it surfaces as a *CellError. Note the
// returned slice alone cannot distinguish a never-started cell's zero
// value from a real result — use Run when per-cell completion state
// matters.
func Map[T any](ctx context.Context, n int, f func(i int) T) ([]T, error) {
	r := Run(ctx, n, Options{}, func(_ context.Context, i int) (T, error) {
		return f(i), nil
	})
	return r.Values, r.Err()
}

// Grid runs f over the row-major cartesian product of xs × ys — the
// (backend, size) and (ablated constant, scale) loops every experiment
// used to hand-roll — fanning the cells across the worker pool. Results
// keep enumeration order: all ys for xs[0], then all ys for xs[1], …
func Grid[X, Y, T any](ctx context.Context, xs []X, ys []Y, f func(X, Y) T) ([]T, error) {
	return Map(ctx, len(xs)*len(ys), func(i int) T {
		return f(xs[i/len(ys)], ys[i%len(ys)])
	})
}
