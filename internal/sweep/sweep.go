// Package sweep is the parallel parameter-sweep runner shared by every
// experiment harness: a bounded worker pool that fans independent cells
// across cores and a declarative cartesian Grid on top of it.
//
// Each cell builds its own isolated des.Env and cost model, runs
// single-threaded and bit-deterministic, and writes only its own result
// slot — so results are identical at any worker count and the slice
// order never depends on scheduling.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers caps the worker pool used to fan independent sweep cells
// across cores; 0 (the default) uses GOMAXPROCS, 1 forces serial
// execution.
var Workers int

// Map evaluates f(0..n-1) on a bounded worker pool and returns the
// results in index order. Cancelling ctx stops new cells from starting;
// Map then returns the partial results alongside ctx.Err() (cells never
// started hold zero values).
func Map[T any](ctx context.Context, n int, f func(i int) T) ([]T, error) {
	out := make([]T, n)
	workers := Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = f(i)
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// Grid runs f over the row-major cartesian product of xs × ys — the
// (backend, size) and (ablated constant, scale) loops every experiment
// used to hand-roll — fanning the cells across the worker pool. Results
// keep enumeration order: all ys for xs[0], then all ys for xs[1], …
func Grid[X, Y, T any](ctx context.Context, xs []X, ys []Y, f func(X, Y) T) ([]T, error) {
	return Map(ctx, len(xs)*len(ys), func(i int) T {
		return f(xs[i/len(ys)], ys[i%len(ys)])
	})
}
