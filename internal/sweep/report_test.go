package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// A panicking cell must surface as a structured CellError with a stack,
// while every other cell completes — the sweep is no longer
// all-or-nothing.
func TestRunIsolatesPanics(t *testing.T) {
	prev := Workers
	defer func() { Workers = prev }()
	for _, workers := range []int{1, 4} {
		Workers = workers
		r := Run(context.Background(), 10, Options{}, func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("saboteur")
			}
			return i * i, nil
		})
		if r.OK() {
			t.Fatalf("workers=%d: OK() true with a panicking cell", workers)
		}
		if len(r.Failures) != 1 {
			t.Fatalf("workers=%d: %d failures, want 1", workers, len(r.Failures))
		}
		ce := r.Failures[0]
		if ce.Index != 3 || ce.Attempts != 1 {
			t.Fatalf("workers=%d: failure = %+v, want cell 3, 1 attempt", workers, ce)
		}
		var pe *PanicError
		if !errors.As(ce.Err, &pe) || pe.Value != "saboteur" {
			t.Fatalf("workers=%d: Err = %v, want PanicError(saboteur)", workers, ce.Err)
		}
		if !strings.Contains(ce.Stack, "TestRunIsolatesPanics") {
			t.Fatalf("workers=%d: stack does not name the panic site:\n%s", workers, ce.Stack)
		}
		for i := 0; i < 10; i++ {
			want, st := StatusOK, i*i
			if i == 3 {
				want, st = StatusFailed, 0
			}
			if r.Status[i] != want || r.Values[i] != st {
				t.Fatalf("workers=%d: cell %d = (%v, %d), want (%v, %d)",
					workers, i, r.Status[i], r.Values[i], want, st)
			}
		}
		if got := r.Completed(); len(got) != 9 {
			t.Fatalf("workers=%d: Completed() returned %d values, want 9", workers, len(got))
		}
	}
}

// The partial-result ambiguity fix: on cancellation, never-started cells
// are StatusSkipped — distinguishable from completed cells whose result
// happens to be the zero value.
func TestRunCancellationMarksSkippedCells(t *testing.T) {
	prev := Workers
	defer func() { Workers = prev }()
	Workers = 1 // serial: deterministic claim order
	ctx, cancel := context.WithCancel(context.Background())
	r := Run(ctx, 100, Options{}, func(_ context.Context, i int) (int, error) {
		if i == 4 {
			cancel()
		}
		return 0, nil // the zero value IS the legitimate result
	})
	if !errors.Is(r.CtxErr, context.Canceled) || !errors.Is(r.Err(), context.Canceled) {
		t.Fatalf("CtxErr = %v, want Canceled", r.CtxErr)
	}
	for i := 0; i <= 4; i++ {
		if r.Status[i] != StatusOK {
			t.Fatalf("completed cell %d marked %v", i, r.Status[i])
		}
	}
	for i := 5; i < 100; i++ {
		if r.Status[i] != StatusSkipped {
			t.Fatalf("never-started cell %d marked %v, want skipped", i, r.Status[i])
		}
	}
	if got := r.Completed(); len(got) != 5 {
		t.Fatalf("Completed() = %d values, want the 5 that ran", len(got))
	}
}

// Retryable failures are re-attempted with bounded backoff; the attempt
// count lands in the report. Non-retryable errors fail immediately.
func TestRunRetriesRetryableErrors(t *testing.T) {
	var attempts atomic.Int64
	r := Run(context.Background(), 1, Options{Retries: 3, Backoff: time.Microsecond},
		func(_ context.Context, i int) (string, error) {
			if attempts.Add(1) < 3 {
				return "", Retryable(errors.New("transient"))
			}
			return "recovered", nil
		})
	if !r.OK() || r.Values[0] != "recovered" {
		t.Fatalf("flaky cell did not recover: %+v err=%v", r.Values, r.Err())
	}
	if attempts.Load() != 3 {
		t.Fatalf("made %d attempts, want 3", attempts.Load())
	}

	// Retries exhausted: the report records every attempt.
	attempts.Store(0)
	r2 := Run(context.Background(), 1, Options{Retries: 2, Backoff: time.Microsecond},
		func(_ context.Context, i int) (string, error) {
			attempts.Add(1)
			return "", Retryable(errors.New("always down"))
		})
	if r2.OK() || r2.Failures[0].Attempts != 3 || attempts.Load() != 3 {
		t.Fatalf("exhausted retry: failures=%v attempts=%d", r2.Failures, attempts.Load())
	}

	// Non-retryable: one attempt only, despite the retry budget.
	attempts.Store(0)
	r3 := Run(context.Background(), 1, Options{Retries: 5},
		func(_ context.Context, i int) (string, error) {
			attempts.Add(1)
			return "", errors.New("permanent")
		})
	if r3.OK() || attempts.Load() != 1 || r3.Failures[0].Attempts != 1 {
		t.Fatalf("non-retryable error was retried: attempts=%d", attempts.Load())
	}
}

// A cell wedged past its deadline is abandoned with ErrCellTimeout while
// the rest of the sweep completes.
func TestRunAbandonsHungCell(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang) // release the abandoned goroutine at test end
	r := Run(context.Background(), 4, Options{Timeout: 50 * time.Millisecond},
		func(_ context.Context, i int) (int, error) {
			if i == 2 {
				<-hang // wedged: never observes its ctx
			}
			return i, nil
		})
	if len(r.Failures) != 1 || r.Failures[0].Index != 2 {
		t.Fatalf("failures = %v, want exactly the hung cell 2", r.Failures)
	}
	if !errors.Is(r.Failures[0].Err, ErrCellTimeout) {
		t.Fatalf("hung cell error = %v, want ErrCellTimeout", r.Failures[0].Err)
	}
	for _, i := range []int{0, 1, 3} {
		if r.Status[i] != StatusOK || r.Values[i] != i {
			t.Fatalf("healthy cell %d = (%v, %d)", i, r.Status[i], r.Values[i])
		}
	}
}

// RunGrid keeps Grid's row-major enumeration order.
func TestRunGridOrder(t *testing.T) {
	r := RunGrid(context.Background(), []string{"a", "b"}, []int{1, 2, 3}, Options{},
		func(_ context.Context, x string, y int) (string, error) {
			return fmt.Sprintf("%s%d", x, y), nil
		})
	want := []string{"a1", "a2", "a3", "b1", "b2", "b3"}
	for i, w := range want {
		if r.Values[i] != w {
			t.Fatalf("cell %d = %q, want %q", i, r.Values[i], w)
		}
	}
}

// Map is now backed by the hardened runner: a panicking cell yields an
// error instead of killing the process, and healthy behavior is
// unchanged.
func TestMapSurvivesPanic(t *testing.T) {
	_, err := Map(context.Background(), 5, func(i int) int {
		if i == 1 {
			panic("boom")
		}
		return i
	})
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("Map error = %v, want *CellError for cell 1", err)
	}
}

// Backoff jitter is deterministic per (Seed, cell index).
func TestRetryBackoffSeeded(t *testing.T) {
	timing := func(seed int64) time.Duration {
		start := time.Now()
		Run(context.Background(), 1, Options{Retries: 2, Backoff: 2 * time.Millisecond, Seed: seed},
			func(_ context.Context, i int) (int, error) {
				return 0, Retryable(errors.New("transient"))
			})
		return time.Since(start)
	}
	// Two runs with the same seed take the same backoff schedule; this is
	// a smoke check that the path is exercised, not a timing assertion.
	if d := timing(7); d < 2*time.Millisecond {
		t.Fatalf("backoff did not delay retries (total %v)", d)
	}
}
