package config

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// listing2 is the paper's published nekRS emulation configuration.
const listing2 = `{
  "kernels": [
    {
      "name": "nekrs_iter",
      "run_time": 0.03147,
      "data_size": [256, 256],
      "mini_app_kernel": "MatMulSimple2D",
      "device": "xpu"
    }
  ]
}`

func TestParseListing2(t *testing.T) {
	c, err := ParseSimulation([]byte(listing2))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Kernels) != 1 {
		t.Fatalf("kernels = %d", len(c.Kernels))
	}
	k := c.Kernels[0]
	if k.Name != "nekrs_iter" || k.Kernel != "MatMulSimple2D" || k.Device != "xpu" {
		t.Fatalf("kernel = %+v", k)
	}
	if len(k.DataSize) != 2 || k.DataSize[0] != 256 {
		t.Fatalf("data_size = %v", k.DataSize)
	}
	if !k.RunTime.Fixed() || k.RunTime.Value != 0.03147 {
		t.Fatalf("run_time = %+v", k.RunTime)
	}
	s, err := k.RunTime.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean() != 0.03147 {
		t.Fatalf("sampler mean = %v", s.Mean())
	}
}

func TestDistSpecForms(t *testing.T) {
	cases := []struct {
		name string
		js   string
		mean float64
		tol  float64
	}{
		{"bare-number", `0.5`, 0.5, 0},
		{"discrete", `{"type":"discrete","values":[1,3],"weights":[1,1]}`, 2, 0},
		{"implicit-discrete", `{"values":[2,4],"weights":[1,1]}`, 3, 0},
		{"lognormal", `{"type":"lognormal","mean":0.0312,"std":0.0273}`, 0.0312, 1e-9},
		{"normal", `{"type":"normal","mean":0.03,"std":0.001}`, 0.03, 1e-9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d DistSpec
			if err := json.Unmarshal([]byte(tc.js), &d); err != nil {
				t.Fatal(err)
			}
			s, err := d.Sampler()
			if err != nil {
				t.Fatal(err)
			}
			if diff := s.Mean() - tc.mean; diff > tc.tol || diff < -tc.tol {
				t.Fatalf("mean = %v, want %v", s.Mean(), tc.mean)
			}
		})
	}
}

func TestDistSpecMarshalRoundTrip(t *testing.T) {
	var d DistSpec
	if err := json.Unmarshal([]byte(`0.25`), &d); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "0.25" {
		t.Fatalf("fixed marshals to %s, want 0.25", out)
	}
}

func TestDistSpecRejectsGarbage(t *testing.T) {
	var d DistSpec
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Fatal("string distribution accepted")
	}
	if err := json.Unmarshal([]byte(`{"type":"zipf"}`), &d); err != nil {
		t.Fatal(err) // decodes fine...
	}
	if _, err := d.Sampler(); err == nil {
		t.Fatal("unknown distribution type compiled") // ...but does not compile
	}
}

func TestSamplerDeterministic(t *testing.T) {
	var d DistSpec
	json.Unmarshal([]byte(`{"type":"lognormal","mean":1,"std":0.5}`), &d)
	s, _ := d.Sampler()
	a := s.Sample(rand.New(rand.NewSource(3)))
	b := s.Sample(rand.New(rand.NewSource(3)))
	if a != b {
		t.Fatal("sampler not deterministic under fixed seed")
	}
}

func TestSimulationValidation(t *testing.T) {
	bad := []string{
		`{"kernels":[]}`, // empty
		`{"kernels":[{"name":"x","mini_app_kernel":"NoSuchKernel","run_time":1}]}`,
		`{"kernels":[{"name":"","mini_app_kernel":"AXPY","run_time":1}]}`,
		`{"kernels":[{"name":"x","mini_app_kernel":"AXPY"}]}`, // no run_time/run_count
		`{"kernels":[{"name":"x","mini_app_kernel":"AXPY","run_time":1,"device":"abacus"}]}`,
		`{"kernels":[{"name":"x","mini_app_kernel":"AXPY","run_time":1,"data_size":[0]}]}`,
		`{"kernels":[{"name":"x","mini_app_kernel":"AXPY","run_time":-0.1}]}`,
	}
	for _, js := range bad {
		if _, err := ParseSimulation([]byte(js)); err == nil {
			t.Errorf("accepted invalid config: %s", js)
		}
	}
}

func TestRunCountConfig(t *testing.T) {
	js := `{"kernels":[{"name":"gemm","mini_app_kernel":"MatMulGeneral","run_count":3,"data_size":[16,16,16]}]}`
	c, err := ParseSimulation([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if c.Kernels[0].RunCount == nil || c.Kernels[0].RunCount.Value != 3 {
		t.Fatalf("run_count = %+v", c.Kernels[0].RunCount)
	}
}

func TestLoadSimulationFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sim.json")
	if err := os.WriteFile(path, []byte(listing2), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadSimulation(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kernels[0].Name != "nekrs_iter" {
		t.Fatalf("kernel = %+v", c.Kernels[0])
	}
	if _, err := LoadSimulation(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestAIConfig(t *testing.T) {
	js := `{"layers":[64,128,8],"lr":0.01,"batch":32,"run_time":0.061,"device":"xpu"}`
	c, err := ParseAI([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Layers) != 3 || c.Layers[1] != 128 || c.Batch != 32 {
		t.Fatalf("ai config = %+v", c)
	}
	if c.RunTime == nil || c.RunTime.Value != 0.061 {
		t.Fatalf("run_time = %+v", c.RunTime)
	}
}

func TestAIValidation(t *testing.T) {
	bad := []string{
		`{"layers":[64]}`,
		`{"layers":[64,0,8]}`,
		`{"layers":[64,8],"lr":-1}`,
		`{"layers":[64,8],"batch":-2}`,
		`{"layers":[64,8],"device":"quantum"}`,
	}
	for _, js := range bad {
		if _, err := ParseAI([]byte(js)); err == nil {
			t.Errorf("accepted invalid ai config: %s", js)
		}
	}
}

func TestLoadAIFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ai.json")
	os.WriteFile(path, []byte(`{"layers":[4,4]}`), 0o644)
	if _, err := LoadAI(path); err != nil {
		t.Fatal(err)
	}
}
