// Package config defines the JSON configuration schema of the paper's
// mini-apps (Listing 2): a simulation component is a list of kernels,
// each with a name, the registered mini_app_kernel to execute, a
// deterministic or stochastic run_time / run_count, a data_size, and a
// target device. AI components are configured analogously (§3.4).
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"simaibench/internal/dist"
	"simaibench/internal/kernels"
)

// DistSpec is a run_time / run_count parameter that is either a fixed
// number or a discrete/parametric PDF, mirroring the paper's
// deterministic-or-stochastic kernel characterization.
//
// JSON forms:
//
//	0.03147                                          fixed
//	{"type":"discrete","values":[...],"weights":[...]}
//	{"type":"lognormal","mean":0.0312,"std":0.0273}
//	{"type":"normal","mean":0.03,"std":0.001}
type DistSpec struct {
	Type    string    `json:"type,omitempty"`
	Value   float64   `json:"value,omitempty"`
	Values  []float64 `json:"values,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
	Mean    float64   `json:"mean,omitempty"`
	Std     float64   `json:"std,omitempty"`

	fixed bool // set when unmarshaled from a bare number
}

// UnmarshalJSON accepts either a bare number or the object form.
func (d *DistSpec) UnmarshalJSON(b []byte) error {
	var num float64
	if err := json.Unmarshal(b, &num); err == nil {
		*d = DistSpec{Type: "fixed", Value: num, fixed: true}
		return nil
	}
	type raw DistSpec
	var r raw
	if err := json.Unmarshal(b, &r); err != nil {
		return fmt.Errorf("config: distribution must be a number or object: %w", err)
	}
	*d = DistSpec(r)
	if d.Type == "" {
		switch {
		case len(d.Values) > 0:
			d.Type = "discrete"
		default:
			d.Type = "fixed"
		}
	}
	return nil
}

// MarshalJSON emits the compact number form for fixed distributions.
func (d DistSpec) MarshalJSON() ([]byte, error) {
	if d.Type == "fixed" || d.Type == "" {
		return json.Marshal(d.Value)
	}
	type raw DistSpec
	return json.Marshal(raw(d))
}

// Sampler compiles the spec into a dist.Sampler.
func (d *DistSpec) Sampler() (dist.Sampler, error) {
	switch d.Type {
	case "", "fixed":
		if d.Value < 0 {
			return nil, fmt.Errorf("config: negative fixed value %v", d.Value)
		}
		return dist.Fixed(d.Value), nil
	case "discrete":
		return dist.NewDiscrete(d.Values, d.Weights)
	case "lognormal":
		return dist.NewLogNormal(d.Mean, d.Std)
	case "normal":
		if d.Mean < 0 || d.Std < 0 {
			return nil, fmt.Errorf("config: negative normal params")
		}
		return dist.Normal{MeanV: d.Mean, Std: d.Std}, nil
	}
	return nil, fmt.Errorf("config: unknown distribution type %q", d.Type)
}

// Fixed reports whether the spec came from a bare JSON number.
func (d *DistSpec) Fixed() bool { return d.fixed || d.Type == "fixed" || d.Type == "" }

// KernelSpec configures one kernel of a simulation component
// (Listing 2's entries).
type KernelSpec struct {
	// Name labels the kernel in stats and traces ("nekrs_iter").
	Name string `json:"name"`
	// Kernel is the registered mini-app kernel to execute.
	Kernel string `json:"mini_app_kernel"`
	// RunTime: target duration per iteration (seconds). When set, the
	// kernel is executed and the iteration padded to the sampled
	// duration, reproducing the original's makespan.
	RunTime *DistSpec `json:"run_time,omitempty"`
	// RunCount: number of kernel executions per iteration (used when
	// RunTime is absent).
	RunCount *DistSpec `json:"run_count,omitempty"`
	// DataSize is the kernel-specific size vector ([256,256] for the
	// nekRS matmul stand-in).
	DataSize []int `json:"data_size,omitempty"`
	// Device is "cpu" or "xpu".
	Device string `json:"device,omitempty"`
}

// Validate checks the spec against the kernel registry.
func (k *KernelSpec) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("config: kernel with empty name")
	}
	if _, err := kernels.New(k.Kernel); err != nil {
		return fmt.Errorf("config: kernel %q: %w", k.Name, err)
	}
	if _, err := kernels.ParseDevice(k.Device); err != nil {
		return fmt.Errorf("config: kernel %q: %w", k.Name, err)
	}
	if k.RunTime == nil && k.RunCount == nil {
		return fmt.Errorf("config: kernel %q needs run_time or run_count", k.Name)
	}
	for _, spec := range []*DistSpec{k.RunTime, k.RunCount} {
		if spec == nil {
			continue
		}
		if _, err := spec.Sampler(); err != nil {
			return fmt.Errorf("config: kernel %q: %w", k.Name, err)
		}
	}
	for _, d := range k.DataSize {
		if d < 1 {
			return fmt.Errorf("config: kernel %q: non-positive data_size %v", k.Name, k.DataSize)
		}
	}
	return nil
}

// SimulationConfig is the top-level simulation component configuration
// (Listing 2).
type SimulationConfig struct {
	Kernels []KernelSpec `json:"kernels"`
}

// Validate checks every kernel.
func (c *SimulationConfig) Validate() error {
	if len(c.Kernels) == 0 {
		return fmt.Errorf("config: simulation needs at least one kernel")
	}
	for i := range c.Kernels {
		if err := c.Kernels[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// AIConfig configures an AI component (§3.4): a feed-forward network
// trained for a prescribed number of iterations or duration.
type AIConfig struct {
	// Layers are the MLP widths, input first ("feed-forward,
	// fully-connected").
	Layers []int `json:"layers"`
	// LR is the SGD learning rate.
	LR float64 `json:"lr,omitempty"`
	// Batch is the per-rank minibatch size.
	Batch int `json:"batch,omitempty"`
	// RunTime: target duration per training iteration; like the
	// simulation kernels, real compute is padded to this duration so
	// the mini-app matches the profiled GNN iteration time.
	RunTime *DistSpec `json:"run_time,omitempty"`
	// Device is "cpu" or "xpu".
	Device string `json:"device,omitempty"`
}

// Validate applies defaults and checks ranges.
func (c *AIConfig) Validate() error {
	if len(c.Layers) < 2 {
		return fmt.Errorf("config: ai needs >= 2 layer widths, got %v", c.Layers)
	}
	for _, w := range c.Layers {
		if w < 1 {
			return fmt.Errorf("config: ai layer width %d", w)
		}
	}
	if c.LR < 0 {
		return fmt.Errorf("config: negative lr %v", c.LR)
	}
	if c.Batch < 0 {
		return fmt.Errorf("config: negative batch %d", c.Batch)
	}
	if _, err := kernels.ParseDevice(c.Device); err != nil {
		return err
	}
	if c.RunTime != nil {
		if _, err := c.RunTime.Sampler(); err != nil {
			return err
		}
	}
	return nil
}

// ParseSimulation decodes and validates a simulation config from JSON.
func ParseSimulation(data []byte) (SimulationConfig, error) {
	var c SimulationConfig
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("config: parse simulation: %w", err)
	}
	return c, c.Validate()
}

// LoadSimulation reads a simulation config file.
func LoadSimulation(path string) (SimulationConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SimulationConfig{}, fmt.Errorf("config: %w", err)
	}
	return ParseSimulation(data)
}

// ParseAI decodes and validates an AI config from JSON.
func ParseAI(data []byte) (AIConfig, error) {
	var c AIConfig
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("config: parse ai: %w", err)
	}
	return c, c.Validate()
}

// LoadAI reads an AI config file.
func LoadAI(path string) (AIConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return AIConfig{}, fmt.Errorf("config: %w", err)
	}
	return ParseAI(data)
}
