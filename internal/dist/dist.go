// Package dist provides the sampling distributions behind the config
// schema's run_time / run_count parameters: a kernel's per-iteration
// duration is either a fixed number or drawn from a discrete, normal or
// log-normal PDF (the paper's deterministic-or-stochastic kernel
// characterization, §3.4). Samplers are pure: all randomness comes from
// the caller's *rand.Rand, so simulations stay reproducible under a
// fixed seed.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Sampler draws values from a distribution. Mean returns the analytic
// expectation, used for validation and for sizing deterministic runs.
type Sampler interface {
	Sample(rng *rand.Rand) float64
	Mean() float64
}

// Fixed is a degenerate distribution: every sample is the same value.
type Fixed float64

// Sample returns the fixed value; the rng is unused.
func (f Fixed) Sample(*rand.Rand) float64 { return float64(f) }

// Mean returns the fixed value.
func (f Fixed) Mean() float64 { return float64(f) }

// Normal is a Gaussian distribution truncated at zero (durations and
// counts cannot be negative).
type Normal struct {
	MeanV float64
	Std   float64
}

// NewNormal builds a zero-truncated Gaussian, validating the degenerate
// parameters the composite literal cannot catch: a negative, NaN or
// infinite std and a non-finite mean. Open-loop load generators build
// their samplers through this contract so a misconfigured class fails
// at construction instead of producing NaN durations mid-campaign. A
// zero std degenerates to Fixed(mean).
func NewNormal(mean, std float64) (Sampler, error) {
	if math.IsNaN(mean) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("dist: normal mean must be finite, got %v", mean)
	}
	if std < 0 || math.IsNaN(std) || math.IsInf(std, 0) {
		return nil, fmt.Errorf("dist: normal std must be finite and >= 0, got %v", std)
	}
	if std == 0 {
		return Fixed(mean), nil
	}
	return Normal{MeanV: mean, Std: std}, nil
}

// Sample draws from N(MeanV, Std²), clamped to be non-negative.
func (n Normal) Sample(rng *rand.Rand) float64 {
	v := n.MeanV + n.Std*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// Mean returns the (untruncated) mean. The truncation bias is negligible
// for the narrow kernel-time distributions the configs use.
func (n Normal) Mean() float64 { return n.MeanV }

// Exponential is the memoryless distribution: inter-arrival times of
// node failures and straggler episodes in the fault-injection layer
// (MTBF draws). Parameterized by its mean (the MTBF itself).
type Exponential struct {
	MeanV float64
}

// NewExponential builds the memoryless distribution with the given
// mean, rejecting non-positive, NaN or infinite means — the degenerate
// parameters that would otherwise turn an arrival process into a burst
// of zero-gap (or never-arriving) events. Inter-arrival samplers built
// through this contract fail fast at configuration time.
func NewExponential(mean float64) (Sampler, error) {
	if !(mean > 0) || math.IsInf(mean, 0) {
		return nil, fmt.Errorf("dist: exponential mean must be finite and > 0, got %v", mean)
	}
	return Exponential{MeanV: mean}, nil
}

// Sample draws from Exp(1/MeanV). A non-positive mean degenerates to
// zero, matching the truncation conventions of the other samplers.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	if e.MeanV <= 0 {
		return 0
	}
	return rng.ExpFloat64() * e.MeanV
}

// Mean returns the distribution mean (the MTBF).
func (e Exponential) Mean() float64 { return e.MeanV }

// LogNormal is parameterized by the mean and standard deviation of the
// distribution itself (not of the underlying normal), matching how the
// paper reports profiled iteration times.
type LogNormal struct {
	mu    float64 // mean of ln X
	sigma float64 // std of ln X
	mean  float64 // E[X], as given
}

// NewLogNormal builds a log-normal with the given distribution mean and
// standard deviation. A zero std degenerates to Fixed(mean).
func NewLogNormal(mean, std float64) (Sampler, error) {
	if mean <= 0 {
		return nil, fmt.Errorf("dist: lognormal mean must be > 0, got %v", mean)
	}
	if std < 0 {
		return nil, fmt.Errorf("dist: negative lognormal std %v", std)
	}
	if std == 0 {
		return Fixed(mean), nil
	}
	// Invert E[X] = exp(mu + sigma²/2), Var[X] = (exp(sigma²)-1)·E[X]².
	sigma2 := math.Log(1 + (std*std)/(mean*mean))
	return LogNormal{
		mu:    math.Log(mean) - sigma2/2,
		sigma: math.Sqrt(sigma2),
		mean:  mean,
	}, nil
}

// Sample draws exp(N(mu, sigma²)).
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.mu + l.sigma*rng.NormFloat64())
}

// Mean returns the distribution mean the sampler was constructed with.
func (l LogNormal) Mean() float64 { return l.mean }

// Discrete is a weighted empirical distribution over a fixed value set —
// the config form {"type":"discrete","values":[...],"weights":[...]}.
type Discrete struct {
	values []float64
	cum    []float64 // cumulative weights, cum[len-1] == total
	mean   float64
}

// NewDiscrete builds a weighted discrete distribution. Weights may be
// nil/empty for uniform weighting; otherwise they must match values in
// length, be non-negative, and not all zero.
func NewDiscrete(values, weights []float64) (Sampler, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("dist: discrete needs at least one value")
	}
	if len(weights) == 0 {
		weights = make([]float64, len(values))
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != len(values) {
		return nil, fmt.Errorf("dist: %d values but %d weights", len(values), len(weights))
	}
	d := Discrete{
		values: append([]float64(nil), values...),
		cum:    make([]float64, len(weights)),
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: negative weight %v", w)
		}
		total += w
		d.cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: discrete weights sum to zero")
	}
	for i, v := range values {
		d.mean += v * weights[i] / total
	}
	return d, nil
}

// Sample draws one of the values with probability proportional to its
// weight.
func (d Discrete) Sample(rng *rand.Rand) float64 {
	u := rng.Float64() * d.cum[len(d.cum)-1]
	i := sort.Search(len(d.cum), func(i int) bool { return d.cum[i] > u })
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Mean returns the weighted mean of the value set.
func (d Discrete) Mean() float64 { return d.mean }
