package dist

import (
	"math"
	"math/rand"
	"testing"
)

func TestFixed(t *testing.T) {
	s := Fixed(0.03147)
	if s.Mean() != 0.03147 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if v := s.Sample(rand.New(rand.NewSource(1))); v != 0.03147 {
		t.Fatalf("sample = %v", v)
	}
}

func TestNormal(t *testing.T) {
	s := Normal{MeanV: 0.03, Std: 0.001}
	if s.Mean() != 0.03 {
		t.Fatalf("mean = %v", s.Mean())
	}
	rng := rand.New(rand.NewSource(7))
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Sample(rng)
		if v < 0 {
			t.Fatalf("negative sample %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-0.03) > 0.0005 {
		t.Fatalf("empirical mean = %v, want ~0.03", got)
	}
}

func TestNormalTruncatesAtZero(t *testing.T) {
	s := Normal{MeanV: 0.001, Std: 10} // almost every draw would be negative
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if v := s.Sample(rng); v < 0 {
			t.Fatalf("negative sample %v", v)
		}
	}
}

func TestLogNormal(t *testing.T) {
	s, err := NewLogNormal(0.0312, 0.0273)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Mean(); math.Abs(got-0.0312) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	rng := rand.New(rand.NewSource(11))
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Sample(rng)
		if v <= 0 {
			t.Fatalf("non-positive lognormal sample %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-0.0312)/0.0312 > 0.02 {
		t.Fatalf("empirical mean = %v, want ~0.0312", got)
	}
}

func TestLogNormalZeroStdIsFixed(t *testing.T) {
	s, err := NewLogNormal(2.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(Fixed); !ok {
		t.Fatalf("zero-std lognormal is %T, want Fixed", s)
	}
}

func TestLogNormalRejects(t *testing.T) {
	if _, err := NewLogNormal(0, 1); err == nil {
		t.Fatal("zero mean accepted")
	}
	if _, err := NewLogNormal(-1, 1); err == nil {
		t.Fatal("negative mean accepted")
	}
	if _, err := NewLogNormal(1, -1); err == nil {
		t.Fatal("negative std accepted")
	}
}

func TestDiscrete(t *testing.T) {
	s, err := NewDiscrete([]float64{1, 3}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean() != 2 {
		t.Fatalf("mean = %v", s.Mean())
	}
	s, err = NewDiscrete([]float64{1, 2, 4}, []float64{0, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean() != 4 {
		t.Fatalf("weighted mean = %v", s.Mean())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if v := s.Sample(rng); v != 4 {
			t.Fatalf("zero-weight value %v sampled", v)
		}
	}
}

func TestDiscreteUniformDefault(t *testing.T) {
	s, err := NewDiscrete([]float64{2, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean() != 3 {
		t.Fatalf("uniform mean = %v", s.Mean())
	}
}

func TestDiscreteRejects(t *testing.T) {
	if _, err := NewDiscrete(nil, nil); err == nil {
		t.Fatal("empty values accepted")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewDiscrete([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewDiscrete([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
}

func TestExponential(t *testing.T) {
	s := Exponential{MeanV: 120}
	if s.Mean() != 120 {
		t.Fatalf("mean = %v", s.Mean())
	}
	rng := rand.New(rand.NewSource(7))
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		v := s.Sample(rng)
		if v < 0 {
			t.Fatalf("negative sample %v", v)
		}
		sum += v
	}
	if got := sum / float64(n); math.Abs(got-120) > 2 {
		t.Fatalf("empirical mean %v, want ~120", got)
	}
	if v := (Exponential{}).Sample(rng); v != 0 {
		t.Fatalf("zero-mean exponential sampled %v", v)
	}
}

func TestSamplersDeterministic(t *testing.T) {
	ln, _ := NewLogNormal(1, 0.5)
	di, _ := NewDiscrete([]float64{1, 2, 3}, []float64{1, 2, 3})
	for _, s := range []Sampler{Normal{MeanV: 1, Std: 0.1}, ln, di, Exponential{MeanV: 2}} {
		a := s.Sample(rand.New(rand.NewSource(42)))
		b := s.Sample(rand.New(rand.NewSource(42)))
		if a != b {
			t.Fatalf("%T not deterministic under fixed seed", s)
		}
	}
}

func TestNewNormalValidates(t *testing.T) {
	for _, tc := range []struct{ mean, std float64 }{
		{1, -0.5},
		{1, math.NaN()},
		{1, math.Inf(1)},
		{math.NaN(), 0.1},
		{math.Inf(1), 0.1},
	} {
		if _, err := NewNormal(tc.mean, tc.std); err == nil {
			t.Errorf("NewNormal(%v, %v) accepted degenerate parameters", tc.mean, tc.std)
		}
	}
	s, err := NewNormal(0.03, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean() != 0.03 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Zero std degenerates to the fixed distribution, like NewLogNormal.
	s, err = NewNormal(2.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(Fixed); !ok {
		t.Fatalf("NewNormal with zero std returned %T, want Fixed", s)
	}
}

func TestNewExponentialValidates(t *testing.T) {
	for _, mean := range []float64{0, -3, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewExponential(mean); err == nil {
			t.Errorf("NewExponential(%v) accepted a degenerate mean", mean)
		}
	}
	s, err := NewExponential(120)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean() != 120 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// The validated sampler draws from the same stream positions as the
	// composite literal, so swapping constructors cannot shift timelines.
	a := s.Sample(rand.New(rand.NewSource(9)))
	b := Exponential{MeanV: 120}.Sample(rand.New(rand.NewSource(9)))
	if a != b {
		t.Fatalf("constructor sampler diverged: %v vs %v", a, b)
	}
}
