// Package clock unifies the repo's two time domains. The DES engine
// (internal/des) always ran on virtual time; the timing-emulation layer
// (internal/simulation, internal/ai, the validation and streaming
// harnesses) ran on the wall clock, padding every iteration with real
// sleeps. A Clock abstracts that second domain: Wall keeps the
// genuine-compute emulation the paper validates with (spin-precise real
// sleeps), while Virtual replaces every pad with a deterministic
// cooperative scheduler, so a 300-virtual-second validation run
// completes as fast as its real compute allows and is bit-reproducible
// per seed.
package clock

import (
	"context"
	"fmt"
	"time"

	"simaibench/internal/spin"
)

// Clock is the emulation layer's time source. Components take their
// Now/Sleep from a Clock instead of the time package, so one harness
// runs unchanged in both domains.
//
// Join/Leave/Block are the participant protocol of the Virtual clock's
// cross-goroutine barrier (no-ops on Wall): a joined participant is a
// goroutine whose compute must not be overtaken by virtual time.
// Virtual time advances only when every joined participant is parked in
// Sleep, and only one participant is woken per advance, so concurrently
// padding components interleave in deterministic virtual-deadline order
// — exactly the order their pads complete under spin.Sleep.
type Clock interface {
	// Now returns the current time in this clock's domain.
	Now() time.Time
	// Sleep blocks for at least d in this clock's domain. On Virtual
	// the caller must be accounted for by a Join (its own or one made
	// on its behalf), or time may advance past running participants.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed. On Virtual the timer fires as sleeping participants drag
	// time past its deadline; it does not advance time by itself.
	After(d time.Duration) <-chan time.Time
	// Join registers one timed participant (see the interface comment).
	Join()
	// Leave deregisters one participant, releasing the barrier for the
	// rest. Every Join must be balanced by exactly one Leave.
	Leave()
	// Block runs fn with one participant temporarily deregistered: use
	// it around waits that are resolved by other goroutines (an MPI
	// collective, a channel receive), or the barrier would deadlock
	// waiting for a participant that cannot sleep.
	Block(fn func())
}

// wall is the real-time clock: time.Now plus the spin-precise Sleep the
// emulation layer has always used. The participant protocol is a no-op
// — the operating system is the barrier.
type wall struct{}

func (wall) Now() time.Time                         { return time.Now() }
func (wall) Sleep(d time.Duration)                  { spin.Sleep(d) }
func (wall) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (wall) Join()                                  {}
func (wall) Leave()                                 {}
func (wall) Block(fn func())                        { fn() }

// Wall is the shared real-time clock.
var Wall Clock = wall{}

// Kind names. A Kind is the serializable selector harness configs carry
// (it is comparable, so configs using it stay usable as map keys).
const (
	// KindVirtual selects a fresh Virtual clock per run — the default
	// for scenario runs and sweeps.
	KindVirtual = "virtual"
	// KindWall selects the genuine-compute wall-clock emulation mode.
	KindWall = "wall"
)

// FromKind resolves a config string to a clock: "virtual" or "" yields
// a fresh Virtual clock, "wall" the shared Wall clock.
func FromKind(kind string) (Clock, error) {
	switch kind {
	case KindVirtual, "":
		return NewVirtual(), nil
	case KindWall:
		return Wall, nil
	}
	return nil, fmt.Errorf("clock: unknown kind %q (valid: %s, %s)", kind, KindVirtual, KindWall)
}

// IsVirtual reports whether kind selects the virtual domain (the
// default when empty).
func IsVirtual(kind string) bool { return kind == "" || kind == KindVirtual }

// SleepCtx sleeps d on c, returning early with ctx's error if it is
// cancelled. On Virtual the sleep itself completes in negligible real
// time, so cancellation is simply checked around it; otherwise the
// wait parks fully on the clock's After timer alongside the context —
// poll cadences need no spin precision, and a parked wait burns no
// core while a consumer idles between ticks.
func SleepCtx(ctx context.Context, c Clock, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if v, ok := c.(*Virtual); ok || d <= 0 {
		if ok {
			v.Sleep(d)
		} else {
			c.Sleep(d)
		}
		return ctx.Err()
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.After(d):
		return nil
	}
}
