package clock

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStalled is the sentinel wrapped by every StallError, so callers can
// classify stalls with errors.Is without caring about the diagnosis
// payload.
var ErrStalled = errors.New("clock: virtual time stalled")

// StallError diagnoses a wedged Virtual clock: the barrier cannot
// release because some joined participant is blocked outside Sleep
// (an un-Block'ed channel wait, a mis-joined collective), so the parked
// sleepers — and virtual time — can never advance. It reports the
// participant accounting a deadlocked process cannot.
type StallError struct {
	// Joined is the number of registered participants at detection time.
	Joined int
	// Sleepers is how many of them were parked in Sleep — fewer than
	// Joined, or the barrier would have advanced.
	Sleepers int
	// Timers is the number of pending After timers that can never fire.
	Timers int
	// NowNS is the virtual offset (nanoseconds) time is frozen at.
	NowNS int64
	// Idle is how long the clock made no progress on the wall clock
	// before the watchdog declared the stall.
	Idle time.Duration
}

// Error renders the stall diagnosis.
func (e *StallError) Error() string {
	return fmt.Sprintf("%v: no progress for %v with %d of %d joined participants parked in Sleep (%d pending timers, virtual offset %v) — a participant is blocked outside Sleep without Block, so the barrier can never release",
		ErrStalled, e.Idle, e.Sleepers, e.Joined, e.Timers, time.Duration(e.NowNS))
}

// Unwrap ties StallError to the ErrStalled sentinel.
func (e *StallError) Unwrap() error { return ErrStalled }

// Snapshot returns the barrier accounting — joined participants, parked
// sleepers, pending timers — for diagnostics and watchdogs.
func (v *Virtual) Snapshot() (joined, sleepers, timers int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.joined, len(v.sleepers), len(v.timers)
}

// vclockState is one watchdog sample of the barrier; any field changing
// between samples counts as progress.
type vclockState struct {
	nowNS            int64
	seq              uint64
	joined, sleepers int
	timers           int
}

// sample reads the progress-relevant state under the lock.
func (v *Virtual) sample() vclockState {
	v.mu.Lock()
	defer v.mu.Unlock()
	return vclockState{nowNS: v.nowNS, seq: v.seq, joined: v.joined,
		sleepers: len(v.sleepers), timers: len(v.timers)}
}

// Watchdog starts an optional wall-clock monitor over the barrier: if
// the clock makes no progress (no advance, no new sleeper or timer, no
// Join/Leave) for at least patience while at least one sleeper is
// parked, onStall is invoked with a StallError instead of the process
// deadlocking silently. A parked sleeper is the tell: participants doing
// long real compute keep no sleepers parked past their own Sleep, so
// frozen state with sleepers waiting means the barrier is wedged.
//
// onStall runs on the watchdog goroutine and fires once per stall
// episode (it re-arms after the next progress). Choose patience well
// above the longest real compute one participant performs between
// sleeps. The returned stop function releases the watchdog; it is
// idempotent and safe to call with the clock in any state.
func (v *Virtual) Watchdog(patience time.Duration, onStall func(*StallError)) (stop func()) {
	if patience <= 0 {
		patience = time.Second
	}
	poll := patience / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(poll)
		defer tick.Stop()
		last := v.sample()
		lastProgress := time.Now()
		fired := false
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			cur := v.sample()
			if cur != last {
				last = cur
				lastProgress = time.Now()
				fired = false
				continue
			}
			if fired || cur.sleepers == 0 {
				continue // already reported, or nobody is waiting on time
			}
			if idle := time.Since(lastProgress); idle >= patience {
				fired = true
				onStall(&StallError{Joined: cur.joined, Sleepers: cur.sleepers,
					Timers: cur.timers, NowNS: cur.nowNS, Idle: idle})
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
