package clock

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// A participant blocked outside Sleep without Block wedges the barrier;
// the watchdog must report a diagnosable StallError with the
// participant/sleeper accounting instead of deadlocking forever.
func TestWatchdogDetectsBarrierStall(t *testing.T) {
	v := NewVirtual()
	stalled := make(chan *StallError, 1)
	stop := v.Watchdog(30*time.Millisecond, func(e *StallError) { stalled <- e })
	defer stop()

	v.Join() // participant A: this goroutine
	v.Join() // participant B: the sleeper below
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Second) // parks; barrier waits for A, which never sleeps
		close(done)
	}()

	// A now waits on a channel WITHOUT Block — the exact bug class the
	// watchdog exists for.
	var e *StallError
	select {
	case e = <-stalled:
	case <-done:
		t.Fatal("sleeper woke while a joined participant was still running")
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a wedged barrier")
	}

	if !errors.Is(e, ErrStalled) {
		t.Fatalf("errors.Is(e, ErrStalled) = false for %v", e)
	}
	if e.Joined != 2 || e.Sleepers != 1 {
		t.Fatalf("diagnosis = %d joined / %d sleepers, want 2 / 1", e.Joined, e.Sleepers)
	}
	if !strings.Contains(e.Error(), "1 of 2 joined participants") {
		t.Fatalf("undiagnosable message: %q", e)
	}

	// Recovery: A abandons the barrier; B's sleep must now drain.
	v.Leave()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sleeper did not drain after the wedged participant left")
	}
	v.Leave()
}

// A healthy sleep/advance loop must never trip the watchdog, and stop
// must be idempotent.
func TestWatchdogQuietOnHealthyClock(t *testing.T) {
	v := NewVirtual()
	var fired int32
	stop := v.Watchdog(50*time.Millisecond, func(*StallError) { fired++ })
	v.Join()
	for i := 0; i < 100; i++ {
		v.Sleep(time.Millisecond)
	}
	v.Leave()
	stop()
	stop() // idempotent
	if fired != 0 {
		t.Fatalf("watchdog fired %d times on a healthy clock", fired)
	}
}

// Snapshot exposes the barrier accounting.
func TestSnapshot(t *testing.T) {
	v := NewVirtual()
	v.Join()
	v.Join()
	_ = v.After(time.Second)
	done := make(chan struct{})
	go func() { v.Sleep(time.Second); close(done) }()
	// Wait (real time) for the sleeper to park.
	for i := 0; ; i++ {
		if _, sleepers, _ := v.Snapshot(); sleepers == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("sleeper never parked")
		}
		time.Sleep(time.Millisecond)
	}
	joined, sleepers, timers := v.Snapshot()
	if joined != 2 || sleepers != 1 || timers != 1 {
		t.Fatalf("Snapshot() = (%d, %d, %d), want (2, 1, 1)", joined, sleepers, timers)
	}
	v.Leave() // barrier releases: 1 sleeper >= 1 joined
	<-done
	v.Leave()
}

// An unmatched Leave must panic loudly instead of silently corrupting
// the barrier condition with a negative participant count.
func TestLeaveUnderflowPanics(t *testing.T) {
	v := NewVirtual()
	v.Join()
	v.Leave()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unbalanced Leave did not panic")
		}
		if !strings.Contains(r.(string), "without a matching Join") {
			t.Fatalf("panic message undiagnosable: %v", r)
		}
	}()
	v.Leave()
}
