package clock

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestWallSleepAndNow(t *testing.T) {
	start := Wall.Now()
	Wall.Sleep(2 * time.Millisecond)
	if el := Wall.Now().Sub(start); el < 2*time.Millisecond {
		t.Fatalf("wall sleep too short: %v", el)
	}
	// The participant protocol is a no-op.
	Wall.Join()
	ran := false
	Wall.Block(func() { ran = true })
	Wall.Leave()
	if !ran {
		t.Fatal("Wall.Block did not run fn")
	}
}

func TestFromKind(t *testing.T) {
	if c, err := FromKind(""); err != nil {
		t.Fatal(err)
	} else if _, ok := c.(*Virtual); !ok {
		t.Fatalf("empty kind should default to virtual, got %T", c)
	}
	if c, err := FromKind(KindWall); err != nil || c != Wall {
		t.Fatalf("wall kind: %v %v", c, err)
	}
	if _, err := FromKind("sundial"); err == nil {
		t.Fatal("unknown kind should error")
	}
	if !IsVirtual("") || !IsVirtual(KindVirtual) || IsVirtual(KindWall) {
		t.Fatal("IsVirtual misclassifies")
	}
}

func TestVirtualSingleSleeperAdvances(t *testing.T) {
	v := NewVirtual()
	v.Join()
	defer v.Leave()
	start := v.Now()
	wallStart := time.Now()
	v.Sleep(10 * time.Second) // ten virtual seconds, ~zero real time
	if got := v.Now().Sub(start); got != 10*time.Second {
		t.Fatalf("virtual elapsed %v, want 10s", got)
	}
	if real := time.Since(wallStart); real > time.Second {
		t.Fatalf("virtual sleep took %v of real time", real)
	}
	v.Sleep(0)
	v.Sleep(-time.Second)
	if got := v.Now().Sub(start); got != 10*time.Second {
		t.Fatalf("non-positive sleeps advanced time: %v", got)
	}
}

// TestVirtualBarrierInterleaving is the tentpole property: two
// participants padding concurrently interleave in virtual-deadline
// order, serialized one at a time, deterministically.
func TestVirtualBarrierInterleaving(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		v := NewVirtual()
		var mu sync.Mutex
		var order []string
		v.Join() // participant a
		v.Join() // participant b
		var wg sync.WaitGroup
		run := func(name string, period time.Duration, n int) {
			defer wg.Done()
			defer v.Leave()
			for i := 0; i < n; i++ {
				v.Sleep(period)
				mu.Lock()
				order = append(order, fmt.Sprintf("%s%d@%v", name, i, v.Now().Unix()))
				mu.Unlock()
			}
		}
		wg.Add(2)
		go run("a", 2*time.Second, 6)
		go run("b", 3*time.Second, 4)
		wg.Wait()
		// Deadlines: a at 2,4,6,8,10,12; b at 3,6,9,12. Ties (6, 12) go
		// to the sleeper that was scheduled first: b reschedules toward
		// 6 on waking at 3, before a does on waking at 4, so b wins at
		// 6 — and likewise at 12 (b schedules at 9, a at 10).
		want := "a0@2 b0@3 a1@4 b1@6 a2@6 a3@8 b2@9 a4@10 b3@12 a5@12"
		got := ""
		for i, o := range order {
			if i > 0 {
				got += " "
			}
			got += o
		}
		if got != want {
			t.Fatalf("trial %d: interleaving %q, want %q", trial, got, want)
		}
	}
}

func TestVirtualLeaveReleasesBarrier(t *testing.T) {
	v := NewVirtual()
	v.Join()
	v.Join()
	done := make(chan struct{})
	go func() {
		v.Sleep(5 * time.Second)
		v.Leave()
		close(done)
	}()
	// The sleeper cannot advance until this participant leaves.
	time.Sleep(5 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("sleeper advanced while a participant was running")
	default:
	}
	v.Leave()
	<-done
}

func TestVirtualBlockAllowsCrossWaits(t *testing.T) {
	v := NewVirtual()
	v.Join()
	v.Join()
	ch := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // participant 1 waits on participant 2 through a channel
		defer wg.Done()
		defer v.Leave()
		v.Block(func() { <-ch })
		v.Sleep(time.Second)
	}()
	go func() { // participant 2 sleeps first, then signals
		defer wg.Done()
		defer v.Leave()
		v.Sleep(2 * time.Second)
		ch <- struct{}{}
	}()
	wg.Wait()
	if got := v.NowNS(); got != int64(3*time.Second) {
		t.Fatalf("virtual end time %v, want 3s", time.Duration(got))
	}
}

func TestVirtualAfterFiresOnAdvance(t *testing.T) {
	v := NewVirtual()
	v.Join()
	defer v.Leave()
	ch := v.After(3 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before its deadline")
	default:
	}
	v.Sleep(5 * time.Second)
	select {
	case at := <-ch:
		if got := at.Sub(time.Unix(0, 0).UTC()); got != 5*time.Second {
			t.Fatalf("timer stamped %v, want 5s (fired on the advance that passed it)", got)
		}
	default:
		t.Fatal("timer did not fire after time passed its deadline")
	}
	// Zero-duration timers fire immediately.
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestSleepCtx(t *testing.T) {
	// Cancelled context returns promptly on Wall.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepCtx(ctx, Wall, time.Hour); err == nil {
		t.Fatal("SleepCtx on cancelled ctx should error")
	}
	// Virtual: sleeps in virtual time, then reports cancellation state.
	v := NewVirtual()
	v.Join()
	defer v.Leave()
	if err := SleepCtx(context.Background(), v, time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := v.NowNS(); got != int64(time.Minute) {
		t.Fatalf("virtual SleepCtx advanced %v, want 1m", time.Duration(got))
	}
}

// TestVirtualNoParticipantsDrains: with nothing joined, sleeps behave
// as an auto-advancing simulated clock for single-goroutine harnesses.
func TestVirtualNoParticipantsDrains(t *testing.T) {
	v := NewVirtual()
	for i := 0; i < 100; i++ {
		v.Sleep(time.Second)
	}
	if got := v.NowNS(); got != int64(100*time.Second) {
		t.Fatalf("drained to %v, want 100s", time.Duration(got))
	}
}
