package clock

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Metamorphic properties of the Virtual clock's cooperative barrier.
// For a set of participants each executing a fixed sequence of sleeps,
// the final virtual time (the makespan) is max_i Σ(durations of i) —
// a quantity with two symmetries the scheduler must preserve exactly:
//
//   - Join-order permutation: which participant joins or starts first
//     cannot change the makespan (the barrier serializes wake-ups by
//     deadline, not by goroutine identity).
//   - Time-scale rescaling: multiplying every duration by a constant k
//     multiplies the makespan by exactly k (deadlines are integer
//     nanoseconds; scaling by an integer factor is exact).

// participantSet is one randomized workload: per participant, a list
// of sleep durations in nanoseconds.
func participantSet(rng *rand.Rand) [][]int64 {
	n := 2 + rng.Intn(6)
	set := make([][]int64, n)
	for i := range set {
		steps := 1 + rng.Intn(8)
		set[i] = make([]int64, steps)
		for j := range set[i] {
			set[i][j] = int64(1 + rng.Intn(1_000_000))
		}
	}
	return set
}

// runVirtual executes the participant set on a fresh Virtual clock in
// the given participant order, optionally scaling every duration, and
// returns the final virtual offset.
func runVirtual(set [][]int64, order []int, scale int64) int64 {
	v := NewVirtual()
	// Join everyone up front (the orchestrator pattern of
	// workflow.Launch): no participant can outrun another's start.
	for range order {
		v.Join()
	}
	var wg sync.WaitGroup
	for _, idx := range order {
		durs := set[idx]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, d := range durs {
				v.Sleep(time.Duration(d * scale))
			}
			v.Leave()
		}()
	}
	wg.Wait()
	return v.NowNS()
}

// expectedMakespan is the analytic ground truth.
func expectedMakespan(set [][]int64, scale int64) int64 {
	best := int64(0)
	for _, durs := range set {
		sum := int64(0)
		for _, d := range durs {
			sum += d * scale
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

func TestVirtualMakespanMatchesAnalytic(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		set := participantSet(rng)
		order := rng.Perm(len(set))
		got := runVirtual(set, order, 1)
		if want := expectedMakespan(set, 1); got != want {
			t.Fatalf("seed %d: makespan %d, want %d", seed, got, want)
		}
	}
}

// TestVirtualMakespanInvariantUnderJoinOrder permutes the participant
// start order and demands an identical makespan every time.
func TestVirtualMakespanInvariantUnderJoinOrder(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x7a11))
		set := participantSet(rng)
		base := runVirtual(set, rng.Perm(len(set)), 1)
		for trial := 0; trial < 4; trial++ {
			if got := runVirtual(set, rng.Perm(len(set)), 1); got != base {
				t.Fatalf("seed %d trial %d: makespan %d, permuted baseline %d",
					seed, trial, got, base)
			}
		}
	}
}

// TestVirtualMakespanScalesLinearly rescales every duration by integer
// factors and demands the makespan scale by exactly the same factor.
func TestVirtualMakespanScalesLinearly(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
		set := participantSet(rng)
		order := rng.Perm(len(set))
		base := runVirtual(set, order, 1)
		for _, k := range []int64{2, 7, 1000} {
			if got := runVirtual(set, order, k); got != k*base {
				t.Fatalf("seed %d scale %d: makespan %d, want %d", seed, k, got, k*base)
			}
		}
	}
}
