package clock

import (
	"sync"
	"time"
)

// Virtual is a deterministic simulated clock for the emulation layer.
// Goroutines that pad with Sleep never sleep for real: each Sleep parks
// the caller until virtual time reaches its deadline, and virtual time
// advances only when every joined participant is parked. Exactly one
// sleeper — the one with the earliest deadline, schedule order breaking
// ties — is woken per advance, so participants execute one at a time in
// virtual-deadline order: the same interleaving their pads would
// produce under spin.Sleep, minus the waiting. The single-wake rule is
// the cross-goroutine barrier that makes concurrent components (a
// simulation and a trainer padding simultaneously) bit-deterministic.
//
// The convention mirrors des.Env's one-runnable-goroutine discipline:
// between two of its sleeps a participant may do arbitrary real work
// (compute kernels, staging I/O against backend servers) — that work
// takes zero virtual time, exactly as DES events do.
//
// Rules of use:
//
//   - Join one participant per padding goroutine before any of them can
//     sleep (the orchestrator may Join on a goroutine's behalf before
//     spawning it — Join counts participants, it does not bind them).
//   - A participant that waits on another participant through anything
//     other than Sleep (an MPI collective, a channel) must wrap that
//     wait in Block, or the barrier deadlocks.
//   - Goroutines outside the barrier (backend servers, stream
//     producers) must not call Sleep on this clock; their real-time
//     blocking is invisible to it, which is fine as long as some
//     participant's work unblocks them promptly.
type Virtual struct {
	mu       sync.Mutex
	base     time.Time
	nowNS    int64
	joined   int
	seq      uint64
	sleepers []vsleeper
	timers   []vtimer
}

// vsleeper is one parked Sleep call.
type vsleeper struct {
	at  int64
	seq uint64
	ch  chan struct{}
}

// vtimer is one pending After channel.
type vtimer struct {
	at  int64
	seq uint64
	ch  chan time.Time
}

// NewVirtual returns a virtual clock at a fixed epoch (time.Unix(0,0)
// UTC), so every run starts from the same instant.
func NewVirtual() *Virtual {
	return &Virtual{base: time.Unix(0, 0).UTC()}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.base.Add(time.Duration(v.nowNS))
}

// NowNS returns the current virtual offset in nanoseconds (tests,
// reporting).
func (v *Virtual) NowNS() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.nowNS
}

// Join registers one timed participant.
func (v *Virtual) Join() {
	v.mu.Lock()
	v.joined++
	v.mu.Unlock()
}

// Leave deregisters one participant and releases the barrier if the
// rest are all asleep. An unmatched Leave panics: letting the count go
// negative would silently corrupt advanceLocked's barrier condition
// (len(sleepers) >= joined), waking sleepers while participants still
// run and destroying determinism far from the buggy call site.
func (v *Virtual) Leave() {
	v.mu.Lock()
	v.joined--
	if v.joined < 0 {
		v.joined = 0
		v.mu.Unlock()
		panic("clock: Virtual.Leave without a matching Join — participant underflow would corrupt the time barrier")
	}
	v.advanceLocked()
	v.mu.Unlock()
}

// Block runs fn with the calling participant deregistered for its
// duration, so waits serviced by other goroutines cannot stall the
// barrier.
func (v *Virtual) Block(fn func()) {
	v.Leave()
	defer v.Join()
	fn()
}

// Sleep parks the caller until virtual time reaches now+d.
// Non-positive durations return immediately, like spin.Sleep.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	s := vsleeper{at: v.nowNS + int64(d), seq: v.seq, ch: make(chan struct{})}
	v.seq++
	v.pushSleeper(s)
	v.advanceLocked()
	v.mu.Unlock()
	<-s.ch
}

// After returns a channel delivering the virtual time once it passes
// now+d. The timer does not hold the barrier open: it fires when
// sleeping participants (or a Leave) drag time past its deadline.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := v.nowNS + int64(d)
	if d <= 0 {
		ch <- v.base.Add(time.Duration(v.nowNS))
		return ch
	}
	v.timers = append(v.timers, vtimer{at: at, seq: v.seq, ch: ch})
	v.seq++
	return ch
}

// advanceLocked wakes the earliest sleeper when every joined
// participant is parked — the barrier condition. Waking exactly one
// keeps execution serialized; the woken participant triggers the next
// advance from its own next Sleep (or Leave). With no participants
// joined, pending sleeps simply drain in deadline order.
func (v *Virtual) advanceLocked() {
	for len(v.sleepers) > 0 && len(v.sleepers) >= v.joined {
		s := v.popSleeper()
		if s.at > v.nowNS {
			v.nowNS = s.at
		}
		v.fireTimersLocked()
		close(s.ch)
		if v.joined > 0 {
			return // exactly one runnable participant at a time
		}
	}
}

// fireTimersLocked delivers every timer whose deadline has passed, in
// (deadline, creation) order.
func (v *Virtual) fireTimersLocked() {
	for {
		best := -1
		for i := range v.timers {
			if v.timers[i].at > v.nowNS {
				continue
			}
			if best < 0 || v.timers[i].at < v.timers[best].at ||
				(v.timers[i].at == v.timers[best].at && v.timers[i].seq < v.timers[best].seq) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		t := v.timers[best]
		v.timers = append(v.timers[:best], v.timers[best+1:]...)
		t.ch <- v.base.Add(time.Duration(v.nowNS))
	}
}

// sleeperBefore orders the sleeper heap by (deadline, schedule order).
func sleeperBefore(a, b vsleeper) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushSleeper inserts into the binary min-heap.
func (v *Virtual) pushSleeper(s vsleeper) {
	q := append(v.sleepers, s)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !sleeperBefore(s, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = s
	v.sleepers = q
}

// popSleeper removes the earliest sleeper.
func (v *Virtual) popSleeper() vsleeper {
	q := v.sleepers
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q = q[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && sleeperBefore(q[c+1], q[c]) {
				c++
			}
			if !sleeperBefore(q[c], last) {
				break
			}
			q[i] = q[c]
			i = c
		}
		q[i] = last
	}
	v.sleepers = q
	return top
}
