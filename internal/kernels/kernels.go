// Package kernels provides the primitive operations of the paper's
// Kernels module (Table 1): compute, I/O, collective-communication and
// copy kernels that Simulation components assemble into mini-apps. The
// compute kernels perform real floating-point work (the Go analogue of
// the CuPy/dpnp kernels), the I/O kernels move real bytes to disk, the
// collectives run over the in-process MPI substrate, and the copy kernels
// model host<->device staging with real buffer copies.
//
// Kernels are registered by name so JSON configurations (the paper's
// Listing 2, e.g. "mini_app_kernel": "MatMulSimple2D") resolve at
// runtime; Register allows custom kernels exactly as the paper's module
// "is designed for extensibility".
package kernels

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"simaibench/internal/mpi"
)

// Device models resource placement: the paper's configurations pin
// kernels to "cpu" or "xpu" (Intel GPU) devices. Without real GPUs the
// device choice selects which modeled memory space buffers live in and
// is reported in placement metadata.
type Device int

// Devices.
const (
	CPU Device = iota
	XPU
)

// ParseDevice converts a config string ("cpu", "xpu", "gpu") to a Device.
func ParseDevice(s string) (Device, error) {
	switch s {
	case "cpu", "":
		return CPU, nil
	case "xpu", "gpu", "cuda":
		return XPU, nil
	}
	return CPU, fmt.Errorf("kernels: unknown device %q", s)
}

// String returns the config name of the device.
func (d Device) String() string {
	if d == XPU {
		return "xpu"
	}
	return "cpu"
}

// Context carries everything a kernel invocation needs: the rank's
// communicator (nil for serial runs), a working directory for I/O
// kernels, a seeded RNG, and the target device.
type Context struct {
	Comm   *mpi.Comm
	Dir    string
	Rng    *rand.Rand
	Device Device
}

// rank returns the caller's rank, 0 when serial.
func (c *Context) rank() int {
	if c.Comm == nil {
		return 0
	}
	return c.Comm.Rank()
}

// Kernel is one runnable primitive. Size is the data_size from the
// configuration: its interpretation is kernel-specific (matrix dims,
// vector length, element count...). Run executes one iteration.
type Kernel interface {
	Name() string
	Run(ctx *Context, size []int) error
}

// registry maps kernel names to factories.
var (
	regMu    sync.RWMutex
	registry = map[string]func() Kernel{}
)

// Register installs a kernel factory under its name. Registering a
// duplicate name panics: silent replacement would make configs ambiguous.
func Register(name string, factory func() Kernel) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("kernels: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New instantiates a registered kernel by name.
func New(name string) (Kernel, error) {
	regMu.RLock()
	factory, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("kernels: unknown kernel %q", name)
	}
	return factory(), nil
}

// Names lists registered kernels, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// dim returns size[i] or def when absent/nonpositive.
func dim(size []int, i, def int) int {
	if i < len(size) && size[i] > 0 {
		return size[i]
	}
	return def
}

func init() {
	Register("MatMulSimple2D", func() Kernel { return matMulSimple2D{} })
	Register("MatMulGeneral", func() Kernel { return matMulGeneral{} })
	Register("FFT", func() Kernel { return fftKernel{} })
	Register("AXPY", func() Kernel { return axpy{} })
	Register("InplaceCompute", func() Kernel { return inplaceCompute{} })
	Register("GenerateRandomNumber", func() Kernel { return generateRandom{} })
	Register("ScatterAdd", func() Kernel { return scatterAdd{} })
	Register("WriteSingleRank", func() Kernel { return writeSingleRank{} })
	Register("WriteNonMPI", func() Kernel { return writeNonMPI{} })
	Register("WriteWithMPI", func() Kernel { return writeWithMPI{} })
	Register("ReadNonMPI", func() Kernel { return readNonMPI{} })
	Register("ReadWithMPI", func() Kernel { return readWithMPI{} })
	Register("AllReduce", func() Kernel { return allReduce{} })
	Register("AllGather", func() Kernel { return allGather{} })
	Register("CopyHostToDevice", func() Kernel { return copyH2D{} })
	Register("CopyDeviceToHost", func() Kernel { return copyD2H{} })
}
