package kernels

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"simaibench/internal/mpi"
)

// payload builds size[0] float64s of deterministic data for I/O kernels.
func payload(size []int) []byte {
	n := dim(size, 0, 1<<14)
	buf := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(float64(i)))
	}
	return buf
}

// ioPath returns the file used by rank r in ctx.Dir.
func ioPath(ctx *Context, r int) string {
	return filepath.Join(ctx.Dir, fmt.Sprintf("kernel-io-rank%d.bin", r))
}

func requireDir(ctx *Context, name string) error {
	if ctx.Dir == "" {
		return fmt.Errorf("kernels: %s needs Context.Dir", name)
	}
	return nil
}

// writeSingleRank has rank 0 write the whole payload; other ranks idle,
// like the paper's "a single process writes data to a file".
type writeSingleRank struct{}

func (writeSingleRank) Name() string { return "WriteSingleRank" }

func (writeSingleRank) Run(ctx *Context, size []int) error {
	if err := requireDir(ctx, "WriteSingleRank"); err != nil {
		return err
	}
	if ctx.rank() != 0 {
		return nil
	}
	return os.WriteFile(ioPath(ctx, 0), payload(size), 0o644)
}

// writeNonMPI has every rank write its own file independently ("writes
// data to a file without MPI-IO").
type writeNonMPI struct{}

func (writeNonMPI) Name() string { return "WriteNonMPI" }

func (writeNonMPI) Run(ctx *Context, size []int) error {
	if err := requireDir(ctx, "WriteNonMPI"); err != nil {
		return err
	}
	return os.WriteFile(ioPath(ctx, ctx.rank()), payload(size), 0o644)
}

// writeWithMPI emulates an MPI-IO collective write: ranks gather their
// blocks to rank 0, which writes one shared file.
type writeWithMPI struct{}

func (writeWithMPI) Name() string { return "WriteWithMPI" }

func (writeWithMPI) Run(ctx *Context, size []int) error {
	if err := requireDir(ctx, "WriteWithMPI"); err != nil {
		return err
	}
	if ctx.Comm == nil {
		return os.WriteFile(filepath.Join(ctx.Dir, "kernel-io-shared.bin"), payload(size), 0o644)
	}
	n := dim(size, 0, 1<<14)
	local := make([]float64, n)
	for i := range local {
		local[i] = float64(ctx.Comm.Rank()*n + i)
	}
	all := ctx.Comm.Gather(0, local)
	if ctx.Comm.Rank() == 0 {
		buf := make([]byte, 8*len(all))
		for i, x := range all {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
		}
		if err := os.WriteFile(filepath.Join(ctx.Dir, "kernel-io-shared.bin"), buf, 0o644); err != nil {
			return err
		}
	}
	ctx.Comm.Barrier() // collective completes together
	return nil
}

// readNonMPI has every rank read its own file (written by WriteNonMPI or
// WriteSingleRank for rank 0).
type readNonMPI struct{}

func (readNonMPI) Name() string { return "ReadNonMPI" }

func (readNonMPI) Run(ctx *Context, size []int) error {
	if err := requireDir(ctx, "ReadNonMPI"); err != nil {
		return err
	}
	data, err := os.ReadFile(ioPath(ctx, ctx.rank()))
	if err != nil {
		return fmt.Errorf("kernels: ReadNonMPI: %w", err)
	}
	if len(data) > 0 {
		keep(float64(data[0]))
	}
	return nil
}

// readWithMPI emulates an MPI-IO collective read: rank 0 reads the
// shared file and scatters equal blocks.
type readWithMPI struct{}

func (readWithMPI) Name() string { return "ReadWithMPI" }

func (readWithMPI) Run(ctx *Context, size []int) error {
	if err := requireDir(ctx, "ReadWithMPI"); err != nil {
		return err
	}
	shared := filepath.Join(ctx.Dir, "kernel-io-shared.bin")
	if ctx.Comm == nil {
		data, err := os.ReadFile(shared)
		if err != nil {
			return fmt.Errorf("kernels: ReadWithMPI: %w", err)
		}
		if len(data) > 0 {
			keep(float64(data[0]))
		}
		return nil
	}
	var all []float64
	if ctx.Comm.Rank() == 0 {
		data, err := os.ReadFile(shared)
		if err != nil {
			return fmt.Errorf("kernels: ReadWithMPI: %w", err)
		}
		all = make([]float64, len(data)/8)
		for i := range all {
			all[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		// Trim so the scatter divides evenly.
		all = all[:len(all)/ctx.Comm.Size()*ctx.Comm.Size()]
	}
	// Broadcast total length, then scatter.
	lenBuf := []float64{float64(len(all))}
	ctx.Comm.Bcast(0, lenBuf)
	if ctx.Comm.Rank() != 0 {
		all = make([]float64, int(lenBuf[0]))
	}
	chunk := ctx.Comm.Scatter(0, all)
	if len(chunk) > 0 {
		keep(chunk[0])
	}
	return nil
}

// allReduce performs an all-reduce over size[0] elements.
type allReduce struct{}

func (allReduce) Name() string { return "AllReduce" }

func (allReduce) Run(ctx *Context, size []int) error {
	if ctx.Comm == nil {
		return fmt.Errorf("kernels: AllReduce needs Context.Comm")
	}
	n := dim(size, 0, 1<<14)
	buf := make([]float64, n)
	for i := range buf {
		buf[i] = float64(ctx.Comm.Rank())
	}
	ctx.Comm.AllReduce(mpi.Sum, buf)
	keep(buf[0])
	return nil
}

// allGather performs an all-gather of size[0] elements per rank.
type allGather struct{}

func (allGather) Name() string { return "AllGather" }

func (allGather) Run(ctx *Context, size []int) error {
	if ctx.Comm == nil {
		return fmt.Errorf("kernels: AllGather needs Context.Comm")
	}
	n := dim(size, 0, 1<<12)
	buf := make([]float64, n)
	out := ctx.Comm.AllGather(buf)
	keep(out[0])
	return nil
}

// copyH2D models a host-to-device copy: a real memmove between two
// buffers standing in for DDR and HBM. The byte volume is what matters
// for the transport studies; PCIe/fabric latency belongs to the DES cost
// models.
type copyH2D struct{}

func (copyH2D) Name() string { return "CopyHostToDevice" }

func (copyH2D) Run(ctx *Context, size []int) error {
	n := dim(size, 0, 1<<16)
	host := deterministicMatrix(1, n, 1)
	device := make([]float64, n)
	copy(device, host)
	keep(device[n-1])
	return nil
}

// copyD2H models the reverse device-to-host copy.
type copyD2H struct{}

func (copyD2H) Name() string { return "CopyDeviceToHost" }

func (copyD2H) Run(ctx *Context, size []int) error {
	n := dim(size, 0, 1<<16)
	device := deterministicMatrix(1, n, 2)
	host := make([]float64, n)
	copy(host, device)
	keep(host[n-1])
	return nil
}
