package kernels

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync/atomic"
)

// matMulSimple2D multiplies two square size[0]×size[0] matrices — the
// kernel the paper uses to emulate nekRS iterations ("data_size":
// [256, 256]).
type matMulSimple2D struct{}

func (matMulSimple2D) Name() string { return "MatMulSimple2D" }

func (matMulSimple2D) Run(ctx *Context, size []int) error {
	n := dim(size, 0, 256)
	a := deterministicMatrix(n, n, 1)
	b := deterministicMatrix(n, n, 2)
	c := make([]float64, n*n)
	matmul(c, a, b, n, n, n)
	keep(c[0])
	return nil
}

// matMulGeneral multiplies size[0]×size[1] by size[1]×size[2] (GEMM).
type matMulGeneral struct{}

func (matMulGeneral) Name() string { return "MatMulGeneral" }

func (matMulGeneral) Run(ctx *Context, size []int) error {
	m := dim(size, 0, 128)
	k := dim(size, 1, 128)
	n := dim(size, 2, 128)
	a := deterministicMatrix(m, k, 1)
	b := deterministicMatrix(k, n, 2)
	c := make([]float64, m*n)
	matmul(c, a, b, m, k, n)
	keep(c[0])
	return nil
}

// matmul computes C = A·B for row-major A (m×k), B (k×n) with an
// ikj loop order for cache-friendly streaming of B and C rows.
func matmul(c, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			aip := a[i*k+p]
			bp := b[p*n : (p+1)*n]
			for j := range ci {
				ci[j] += aip * bp[j]
			}
		}
	}
}

// deterministicMatrix fills an m×n matrix with a cheap deterministic
// pattern so kernels are reproducible without holding RNG state.
// math.Trunc lowers to a single rounding instruction, and for finite
// positive x, x - Trunc(x) equals math.Mod(x, 1) exactly — same values,
// an order of magnitude faster, which matters under the virtual clock
// where kernel data generation is real compute on the critical path
// instead of being hidden inside the iteration pad.
func deterministicMatrix(m, n int, seed float64) []float64 {
	out := make([]float64, m*n)
	for i := range out {
		v := seed * float64(i+1) * 0.618033988749895
		out[i] = v - math.Trunc(v)
	}
	return out
}

// sink defeats dead-code elimination of kernel results. Kernels run
// concurrently on MPI rank goroutines, so the store is atomic — a plain
// global write is a (benign but race-detector-visible) data race.
var sink atomic.Uint64

// keep publishes a kernel result into the sink.
func keep(v float64) { sink.Store(math.Float64bits(v)) }

// fftKernel runs an in-place radix-2 Cooley-Tukey FFT over size[0]
// complex points (rounded up to a power of two).
type fftKernel struct{}

func (fftKernel) Name() string { return "FFT" }

func (fftKernel) Run(ctx *Context, size []int) error {
	n := nextPow2(dim(size, 0, 1024))
	data := make([]complex128, n)
	for i := range data {
		data[i] = complex(math.Sin(float64(i)), 0)
	}
	FFT(data)
	keep(real(data[0]))
	return nil
}

// nextPow2 rounds n up to a power of two (minimum 2).
func nextPow2(n int) int {
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

// FFT performs an in-place radix-2 Cooley-Tukey transform. len(data)
// must be a power of two; it panics otherwise. Exported so tests can
// verify against a direct DFT.
func FFT(data []complex128) {
	n := len(data)
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("kernels: FFT length %d not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			data[i], data[j] = data[j], data[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := data[i+j]
				v := data[i+j+length/2] * w
				data[i+j] = u + v
				data[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// IFFT inverts FFT (in place).
func IFFT(data []complex128) {
	for i := range data {
		data[i] = cmplx.Conj(data[i])
	}
	FFT(data)
	n := complex(float64(len(data)), 0)
	for i := range data {
		data[i] = cmplx.Conj(data[i]) / n
	}
}

// axpy computes y = a*x + y over size[0] elements.
type axpy struct{}

func (axpy) Name() string { return "AXPY" }

func (axpy) Run(ctx *Context, size []int) error {
	n := dim(size, 0, 1<<16)
	x := deterministicMatrix(1, n, 1)
	y := deterministicMatrix(1, n, 2)
	const a = 2.5
	for i := range y {
		y[i] += a * x[i]
	}
	keep(y[n-1])
	return nil
}

// inplaceCompute applies f(x) = sin(x)+x² element-wise in place over
// size[0] elements.
type inplaceCompute struct{}

func (inplaceCompute) Name() string { return "InplaceCompute" }

func (inplaceCompute) Run(ctx *Context, size []int) error {
	n := dim(size, 0, 1<<16)
	x := deterministicMatrix(1, n, 3)
	for i := range x {
		x[i] = math.Sin(x[i]) + x[i]*x[i]
	}
	keep(x[0])
	return nil
}

// generateRandom fills size[0] elements from the context RNG.
type generateRandom struct{}

func (generateRandom) Name() string { return "GenerateRandomNumber" }

func (generateRandom) Run(ctx *Context, size []int) error {
	n := dim(size, 0, 1<<16)
	out := make([]float64, n)
	for i := range out {
		out[i] = ctx.Rng.Float64()
	}
	keep(out[n-1])
	return nil
}

// scatterAdd scatters size[0] values into a size[1]-element accumulator
// at RNG-chosen indices (the classic scatter-add primitive of mesh/GNN
// workloads).
type scatterAdd struct{}

func (scatterAdd) Name() string { return "ScatterAdd" }

func (scatterAdd) Run(ctx *Context, size []int) error {
	nVals := dim(size, 0, 1<<16)
	nBins := dim(size, 1, 1024)
	acc := make([]float64, nBins)
	for i := 0; i < nVals; i++ {
		acc[ctx.Rng.Intn(nBins)] += float64(i)
	}
	keep(acc[0])
	return nil
}
