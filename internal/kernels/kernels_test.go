package kernels

import (
	"math"
	"math/cmplx"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"simaibench/internal/mpi"
)

func serialCtx(t *testing.T) *Context {
	t.Helper()
	return &Context{Dir: t.TempDir(), Rng: rand.New(rand.NewSource(1))}
}

func TestRegistryHasTable1Kernels(t *testing.T) {
	// Every kernel in the paper's Table 1 must be constructible by its
	// published name.
	want := []string{
		"MatMulSimple2D", "MatMulGeneral", "FFT", "AXPY", "InplaceCompute",
		"GenerateRandomNumber", "ScatterAdd",
		"WriteSingleRank", "WriteNonMPI", "WriteWithMPI", "ReadNonMPI", "ReadWithMPI",
		"AllReduce", "AllGather",
		"CopyHostToDevice", "CopyDeviceToHost",
	}
	for _, name := range want {
		k, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if k.Name() != name {
			t.Errorf("kernel %q reports name %q", name, k.Name())
		}
	}
	if len(Names()) < len(want) {
		t.Errorf("Names() = %d kernels, want >= %d", len(Names()), len(want))
	}
}

func TestUnknownKernel(t *testing.T) {
	if _, err := New("NoSuchKernel"); err == nil {
		t.Fatal("unknown kernel constructed")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("MatMulSimple2D", func() Kernel { return matMulSimple2D{} })
}

func TestParseDevice(t *testing.T) {
	for in, want := range map[string]Device{"cpu": CPU, "": CPU, "xpu": XPU, "gpu": XPU} {
		got, err := ParseDevice(in)
		if err != nil || got != want {
			t.Errorf("ParseDevice(%q) = %v,%v want %v", in, got, err, want)
		}
	}
	if _, err := ParseDevice("tpu"); err == nil {
		t.Error("ParseDevice accepted tpu")
	}
	if CPU.String() != "cpu" || XPU.String() != "xpu" {
		t.Error("device String() wrong")
	}
}

func TestComputeKernelsRunSerial(t *testing.T) {
	ctx := serialCtx(t)
	for _, name := range []string{
		"MatMulSimple2D", "MatMulGeneral", "FFT", "AXPY",
		"InplaceCompute", "GenerateRandomNumber", "ScatterAdd",
		"CopyHostToDevice", "CopyDeviceToHost",
	} {
		k, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Run(ctx, []int{64, 64, 64}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Default sizes must also work.
		if err := k.Run(ctx, nil); err != nil {
			t.Errorf("%s with default size: %v", name, err)
		}
	}
}

func TestMatmulCorrectness(t *testing.T) {
	// 2x2 known product.
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c := make([]float64, 4)
	matmul(c, a, b, 2, 2, 2)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("matmul = %v, want %v", c, want)
		}
	}
}

func TestMatmulRectangular(t *testing.T) {
	// (1x3)·(3x2): result 1x2.
	a := []float64{1, 2, 3}
	b := []float64{1, 4, 2, 5, 3, 6}
	c := make([]float64, 2)
	matmul(c, a, b, 1, 3, 2)
	if c[0] != 14 || c[1] != 32 {
		t.Fatalf("rect matmul = %v, want [14 32]", c)
	}
}

// directDFT computes the O(n²) reference transform.
func directDFT(in []complex128) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += in[j] * cmplx.Exp(complex(0, ang))
		}
	}
	return out
}

func TestFFTMatchesDirectDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 4, 8, 64, 256} {
		data := make([]complex128, n)
		for i := range data {
			data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := directDFT(data)
		FFT(data)
		for i := range data {
			if cmplx.Abs(data[i]-want[i]) > 1e-6*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, data[i], want[i])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]complex128, 128)
	orig := make([]complex128, 128)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = data[i]
	}
	FFT(data)
	IFFT(data)
	for i := range data {
		if cmplx.Abs(data[i]-orig[i]) > 1e-9 {
			t.Fatalf("IFFT(FFT(x))[%d] = %v, want %v", i, data[i], orig[i])
		}
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT of length 3 did not panic")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestPropertyFFTLinearity(t *testing.T) {
	// FFT(a*x + y) == a*FFT(x) + FFT(y)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		x := make([]complex128, n)
		y := make([]complex128, n)
		combo := make([]complex128, n)
		a := complex(rng.NormFloat64(), 0)
		for i := 0; i < n; i++ {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			combo[i] = a*x[i] + y[i]
		}
		FFT(x)
		FFT(y)
		FFT(combo)
		for i := 0; i < n; i++ {
			if cmplx.Abs(combo[i]-(a*x[i]+y[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalTheorem(t *testing.T) {
	// sum |x|^2 == (1/n) sum |X|^2 — an FFT invariant.
	rng := rand.New(rand.NewSource(8))
	const n = 256
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i] * cmplx.Conj(x[i]))
	}
	FFT(x)
	var freqEnergy float64
	for i := range x {
		freqEnergy += real(x[i] * cmplx.Conj(x[i]))
	}
	if math.Abs(timeEnergy-freqEnergy/n) > 1e-8*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", timeEnergy, freqEnergy/n)
	}
}

func TestIOKernelsSingleRank(t *testing.T) {
	ctx := serialCtx(t)
	for _, step := range []struct {
		kernel string
		size   []int
	}{
		{"WriteSingleRank", []int{100}},
		{"WriteNonMPI", []int{100}},
		{"ReadNonMPI", []int{100}},
		{"WriteWithMPI", []int{100}},
		{"ReadWithMPI", []int{100}},
	} {
		k, err := New(step.kernel)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Run(ctx, step.size); err != nil {
			t.Fatalf("%s: %v", step.kernel, err)
		}
	}
	// Files must actually exist with the right sizes (100 float64s).
	fi, err := os.Stat(filepath.Join(ctx.Dir, "kernel-io-rank0.bin"))
	if err != nil || fi.Size() != 800 {
		t.Fatalf("rank0 file: %v size=%v", err, fi.Size())
	}
}

func TestIOKernelsRequireDir(t *testing.T) {
	ctx := &Context{Rng: rand.New(rand.NewSource(1))}
	for _, name := range []string{"WriteSingleRank", "WriteNonMPI", "ReadNonMPI"} {
		k, _ := New(name)
		if err := k.Run(ctx, nil); err == nil {
			t.Errorf("%s without Dir succeeded", name)
		}
	}
}

func TestReadMissingFileFails(t *testing.T) {
	ctx := serialCtx(t)
	k, _ := New("ReadNonMPI")
	if err := k.Run(ctx, nil); err == nil {
		t.Fatal("read of missing file succeeded")
	}
}

func TestCollectiveKernelsUnderMPI(t *testing.T) {
	const ranks = 4
	w := mpi.NewWorld(ranks)
	dir := t.TempDir()
	w.Run(func(c *mpi.Comm) {
		ctx := &Context{Comm: c, Dir: dir, Rng: rand.New(rand.NewSource(int64(c.Rank())))}
		for _, name := range []string{"AllReduce", "AllGather"} {
			k, err := New(name)
			if err != nil {
				t.Error(err)
				return
			}
			if err := k.Run(ctx, []int{256}); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	})
}

func TestCollectiveKernelsNeedComm(t *testing.T) {
	ctx := serialCtx(t)
	for _, name := range []string{"AllReduce", "AllGather"} {
		k, _ := New(name)
		if err := k.Run(ctx, nil); err == nil {
			t.Errorf("%s without Comm succeeded", name)
		}
	}
}

func TestMPIIOKernelsRoundTrip(t *testing.T) {
	const ranks = 4
	w := mpi.NewWorld(ranks)
	dir := t.TempDir()
	w.Run(func(c *mpi.Comm) {
		ctx := &Context{Comm: c, Dir: dir, Rng: rand.New(rand.NewSource(int64(c.Rank())))}
		wk, _ := New("WriteWithMPI")
		if err := wk.Run(ctx, []int{64}); err != nil {
			t.Errorf("WriteWithMPI: %v", err)
			return
		}
		rk, _ := New("ReadWithMPI")
		if err := rk.Run(ctx, []int{64}); err != nil {
			t.Errorf("ReadWithMPI: %v", err)
		}
	})
	// Shared file holds ranks*64 float64s.
	fi, err := os.Stat(filepath.Join(dir, "kernel-io-shared.bin"))
	if err != nil || fi.Size() != ranks*64*8 {
		t.Fatalf("shared file: %v size=%v want %d", err, fi.Size(), ranks*64*8)
	}
}

func TestWriteNonMPIPerRankFiles(t *testing.T) {
	const ranks = 3
	w := mpi.NewWorld(ranks)
	dir := t.TempDir()
	w.Run(func(c *mpi.Comm) {
		ctx := &Context{Comm: c, Dir: dir, Rng: rand.New(rand.NewSource(0))}
		k, _ := New("WriteNonMPI")
		if err := k.Run(ctx, []int{10}); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
	})
	for r := 0; r < ranks; r++ {
		if _, err := os.Stat(filepath.Join(dir, "kernel-io-rank"+string(rune('0'+r))+".bin")); err != nil {
			t.Errorf("rank %d file missing: %v", r, err)
		}
	}
}

func BenchmarkMatMulSimple2D256(b *testing.B) {
	ctx := &Context{Rng: rand.New(rand.NewSource(1))}
	k, _ := New("MatMulSimple2D")
	for i := 0; i < b.N; i++ {
		k.Run(ctx, []int{256, 256})
	}
}

func BenchmarkFFT64K(b *testing.B) {
	ctx := &Context{Rng: rand.New(rand.NewSource(1))}
	k, _ := New("FFT")
	for i := 0; i < b.N; i++ {
		k.Run(ctx, []int{1 << 16})
	}
}
