package cluster

import (
	"math"
	"testing"
)

func TestAuroraSpec(t *testing.T) {
	s := Aurora(512)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 512 || s.CPUsPerNode != 2 || s.GPUsPerNode != 6 || s.TilesPerGPU != 2 {
		t.Fatalf("spec = %+v", s)
	}
	if s.TilesPerNode() != 12 {
		t.Fatalf("tiles/node = %d, want 12", s.TilesPerNode())
	}
	if s.TotalTiles() != 512*12 {
		t.Fatalf("total tiles = %d", s.TotalTiles())
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Nodes: 0, CPUsPerNode: 2, NICGBps: 25},
		{Nodes: 4, CPUsPerNode: 0, NICGBps: 25},
		{Nodes: 4, CPUsPerNode: 2, NICGBps: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("accepted bad spec %+v", s)
		}
	}
}

func TestCacheSharePerProc(t *testing.T) {
	s := Aurora(8)
	// The paper: 105 MB L3 / 12 procs ≈ 8 MB per process.
	got := s.CacheSharePerProcMB(12)
	if math.Abs(got-105.0/12) > 1e-9 {
		t.Fatalf("cache share = %v, want %v", got, 105.0/12)
	}
	if s.CacheSharePerProcMB(0) != s.CacheSharePerProcMB(1) {
		t.Fatal("zero procs should clamp to 1")
	}
}

func TestPattern1PlacementSplitsTiles(t *testing.T) {
	s := Aurora(8)
	p := Pattern1Placement(s)
	if p.SimTilesPerNode != 6 || p.AITilesPerNode != 6 {
		t.Fatalf("placement = %+v, want 6+6", p)
	}
	if p.ProcsPerNode() != 12 {
		t.Fatalf("procs/node = %d", p.ProcsPerNode())
	}
}

func TestPattern2PlacementFullNode(t *testing.T) {
	s := Aurora(2)
	p := Pattern2Placement(s)
	if p.SimTilesPerNode != 12 || p.AITilesPerNode != 12 {
		t.Fatalf("placement = %+v, want 12/12", p)
	}
}
