package cluster

import (
	"math"
	"testing"
)

func TestAuroraSpec(t *testing.T) {
	s := Aurora(512)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 512 || s.CPUsPerNode != 2 || s.GPUsPerNode != 6 || s.TilesPerGPU != 2 {
		t.Fatalf("spec = %+v", s)
	}
	if s.TilesPerNode() != 12 {
		t.Fatalf("tiles/node = %d, want 12", s.TilesPerNode())
	}
	if s.TotalTiles() != 512*12 {
		t.Fatalf("total tiles = %d", s.TotalTiles())
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Nodes: 0, CPUsPerNode: 2, NICGBps: 25},
		{Nodes: 4, CPUsPerNode: 0, NICGBps: 25},
		{Nodes: 4, CPUsPerNode: 2, NICGBps: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("accepted bad spec %+v", s)
		}
	}
}

func TestCacheSharePerProc(t *testing.T) {
	s := Aurora(8)
	// The paper: 105 MB L3 / 12 procs ≈ 8 MB per process.
	got := s.CacheSharePerProcMB(12)
	if math.Abs(got-105.0/12) > 1e-9 {
		t.Fatalf("cache share = %v, want %v", got, 105.0/12)
	}
	if s.CacheSharePerProcMB(0) != s.CacheSharePerProcMB(1) {
		t.Fatal("zero procs should clamp to 1")
	}
}

func TestPattern1PlacementSplitsTiles(t *testing.T) {
	s := Aurora(8)
	p := Pattern1Placement(s)
	if p.SimTilesPerNode != 6 || p.AITilesPerNode != 6 {
		t.Fatalf("placement = %+v, want 6+6", p)
	}
	if p.ProcsPerNode() != 12 {
		t.Fatalf("procs/node = %d", p.ProcsPerNode())
	}
}

func TestPattern2PlacementFullNode(t *testing.T) {
	s := Aurora(2)
	p := Pattern2Placement(s)
	if p.SimTilesPerNode != 12 || p.AITilesPerNode != 12 {
		t.Fatalf("placement = %+v, want 12/12", p)
	}
}

func TestCoScheduleDedicatedBlocks(t *testing.T) {
	// Enough nodes: every tenant gets a dedicated, disjoint block.
	s := Aurora(8)
	tenants, err := CoSchedule(s, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != 4 {
		t.Fatalf("tenants = %d, want 4", len(tenants))
	}
	seen := map[int]bool{}
	for i, tn := range tenants {
		if tn.ID != i {
			t.Fatalf("tenant %d has ID %d", i, tn.ID)
		}
		if len(tn.Nodes) != 2 {
			t.Fatalf("tenant %d nodes = %v, want 2", i, tn.Nodes)
		}
		for _, n := range tn.Nodes {
			if n < 0 || n >= s.Nodes {
				t.Fatalf("tenant %d placed on node %d outside spec", i, n)
			}
			if seen[n] {
				t.Fatalf("node %d shared despite sufficient capacity", n)
			}
			seen[n] = true
		}
	}
	if got := Oversubscription(s, tenants); got != 1.0 {
		t.Fatalf("oversubscription = %v, want 1.0", got)
	}
	// Dedicated placement on an under-filled partition is still 1.0:
	// idle nodes don't dilute the metric.
	few, err := CoSchedule(Aurora(8), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := Oversubscription(Aurora(8), few); got != 1.0 {
		t.Fatalf("under-filled oversubscription = %v, want 1.0", got)
	}
}

func TestCoScheduleOversubscribed(t *testing.T) {
	// 6 tenants × 2 nodes on a 4-node partition: placement wraps and
	// nodes are shared, 3 tenant-nodes per physical node on average.
	s := Aurora(4)
	tenants, err := CoSchedule(s, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, tn := range tenants {
		for _, n := range tn.Nodes {
			if n < 0 || n >= s.Nodes {
				t.Fatalf("node %d outside spec", n)
			}
			counts[n]++
		}
	}
	for n := 0; n < s.Nodes; n++ {
		if counts[n] != 3 {
			t.Fatalf("node %d carries %d tenant placements, want 3 (round-robin balance)", n, counts[n])
		}
	}
	if got := Oversubscription(s, tenants); math.Abs(got-3.0) > 1e-12 {
		t.Fatalf("oversubscription = %v, want 3.0", got)
	}
}

func TestCoScheduleRejectsBadRequests(t *testing.T) {
	s := Aurora(4)
	if _, err := CoSchedule(s, 0, 2); err == nil {
		t.Error("accepted 0 tenants")
	}
	if _, err := CoSchedule(s, 2, 0); err == nil {
		t.Error("accepted 0 nodes per tenant")
	}
	if _, err := CoSchedule(Spec{}, 1, 1); err == nil {
		t.Error("accepted invalid spec")
	}
}

func TestNodeSetFailRestore(t *testing.T) {
	ns := NewNodeSet(Aurora(4))
	if ns.Nodes() != 4 || ns.UpCount() != 4 {
		t.Fatalf("fresh set: %d nodes, %d up", ns.Nodes(), ns.UpCount())
	}
	if !ns.Fail(2) {
		t.Fatal("Fail(2) on an up node returned false")
	}
	if ns.Fail(2) {
		t.Fatal("Fail(2) twice should be a no-op")
	}
	if ns.Up(2) || ns.UpCount() != 3 || ns.Fails() != 1 {
		t.Fatalf("after fail: up=%v upcount=%d fails=%d", ns.Up(2), ns.UpCount(), ns.Fails())
	}
	if !ns.Restore(2) {
		t.Fatal("Restore(2) on a down node returned false")
	}
	if ns.Restore(2) {
		t.Fatal("Restore(2) twice should be a no-op")
	}
	if !ns.Up(2) || ns.UpCount() != 4 || ns.Fails() != 1 {
		t.Fatalf("after restore: up=%v upcount=%d fails=%d", ns.Up(2), ns.UpCount(), ns.Fails())
	}
}

func TestNodeSetReplacementRoundRobin(t *testing.T) {
	ns := NewNodeSet(Aurora(4))
	ns.Fail(1)
	if n, ok := ns.Replacement(1); !ok || n != 2 {
		t.Fatalf("Replacement(1) = %d,%v, want 2,true", n, ok)
	}
	ns.Fail(2)
	if n, ok := ns.Replacement(1); !ok || n != 3 {
		t.Fatalf("Replacement(1) with 2 down = %d,%v, want 3,true", n, ok)
	}
	ns.Fail(3)
	if n, ok := ns.Replacement(3); !ok || n != 0 {
		t.Fatalf("Replacement(3) wraps to %d,%v, want 0,true", n, ok)
	}
	ns.Fail(0)
	if _, ok := ns.Replacement(0); ok {
		t.Fatal("Replacement with all nodes down should report !ok")
	}
}

// TestNodeSetReplacementPoolExhaustion walks the pool down to empty
// and back: every intermediate state must still produce a valid up
// replacement, exhaustion must be reported exactly when the last node
// falls, and a single restore must re-open the pool with that node.
func TestNodeSetReplacementPoolExhaustion(t *testing.T) {
	const n = 8
	ns := NewNodeSet(Aurora(n))
	for i := 0; i < n-1; i++ {
		ns.Fail(i)
		r, ok := ns.Replacement(i)
		if !ok {
			t.Fatalf("pool reported empty with %d nodes still up", ns.UpCount())
		}
		if !ns.Up(r) {
			t.Fatalf("Replacement(%d) = %d, which is down", i, r)
		}
	}
	// Only node n-1 remains: every caller must be routed to it.
	for failed := 0; failed < n-1; failed++ {
		if r, ok := ns.Replacement(failed); !ok || r != n-1 {
			t.Fatalf("Replacement(%d) = %d,%v, want %d,true", failed, r, ok, n-1)
		}
	}
	ns.Fail(n - 1)
	for failed := 0; failed < n; failed++ {
		if _, ok := ns.Replacement(failed); ok {
			t.Fatalf("Replacement(%d) found a node with all %d down", failed, n)
		}
	}
	if ns.UpCount() != 0 || ns.Fails() != n {
		t.Fatalf("exhausted pool: upcount=%d fails=%d", ns.UpCount(), ns.Fails())
	}
	// One repair re-opens the pool, and it is the only candidate.
	ns.Restore(3)
	for failed := 0; failed < n; failed++ {
		if r, ok := ns.Replacement(failed); !ok || r != 3 {
			t.Fatalf("after restoring 3: Replacement(%d) = %d,%v", failed, r, ok)
		}
	}
}

// TestNodeSetInterleavedAccounting drives a long deterministic
// fail/restore interleaving (including redundant transitions) against
// a naive reference model and checks Up/UpCount/Fails agree at every
// step — the accounting contract the scheduler's free-pool counter
// leans on.
func TestNodeSetInterleavedAccounting(t *testing.T) {
	const n = 5
	ns := NewNodeSet(Aurora(n))
	up := [n]bool{true, true, true, true, true}
	fails := 0
	// A fixed pseudo-random walk: step i toggles node (i*3)%n, failing
	// on even parity and restoring on odd, so the sequence hits
	// double-fails and double-restores naturally.
	for i := 0; i < 200; i++ {
		node := (i * 3) % n
		if i%2 == 0 {
			want := up[node]
			if got := ns.Fail(node); got != want {
				t.Fatalf("step %d: Fail(%d) = %v, want %v", i, node, got, want)
			}
			if want {
				up[node] = false
				fails++
			}
		} else {
			want := !up[node]
			if got := ns.Restore(node); got != want {
				t.Fatalf("step %d: Restore(%d) = %v, want %v", i, node, got, want)
			}
			if want {
				up[node] = true
			}
		}
		wantUp := 0
		for j, u := range up {
			if u != ns.Up(j) {
				t.Fatalf("step %d: node %d up=%v, model says %v", i, j, ns.Up(j), u)
			}
			if u {
				wantUp++
			}
		}
		if ns.UpCount() != wantUp || ns.Fails() != fails {
			t.Fatalf("step %d: upcount=%d fails=%d, model says %d/%d",
				i, ns.UpCount(), ns.Fails(), wantUp, fails)
		}
	}
}
