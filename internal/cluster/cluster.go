// Package cluster models the Aurora-like virtual machine room the
// simulated-scale experiments run on: node counts, CPU/GPU-tile
// inventory, memory hierarchy and interconnect headline numbers. The
// numbers come straight from the paper's §4 hardware description and are
// consumed by internal/costmodel to size resources and cache thresholds.
//
// Beyond the paper's single-workflow placements (Pattern1Placement,
// Pattern2Placement), the package provides the multi-tenant co-scheduler
// (CoSchedule): N concurrent workflow instances placed round-robin onto
// a shared partition, the substrate of the scale-out scenario family.
package cluster

import "fmt"

// Spec describes a homogeneous cluster partition.
type Spec struct {
	// Nodes is the number of compute nodes in the job.
	Nodes int
	// CPUsPerNode: Aurora nodes have 2 Intel Xeon Max sockets.
	CPUsPerNode int
	// GPUsPerNode: 6 Intel Data Center GPU Max 1550 per node.
	GPUsPerNode int
	// TilesPerGPU: each GPU exposes 2 tiles/stacks; workflow components
	// are placed per tile (12 per node).
	TilesPerGPU int
	// L3CacheMBPerCPU: 105 MB per Xeon Max — the paper derives its 8
	// MB-per-process cache share from this.
	L3CacheMBPerCPU float64
	// DDRGBPerCPU / HBMGBPerCPU: 512 GB DDR5 + 64 GB HBM per socket.
	DDRGBPerCPU float64
	HBMGBPerCPU float64
	// NICGBps is per-node injection bandwidth into the interconnect
	// (Slingshot-class, ~25 GB/s per NIC pair usable).
	NICGBps float64
	// NICLatencyUS is the one-way fabric latency in microseconds.
	NICLatencyUS float64
}

// Aurora returns the paper's testbed scaled to the given node count.
func Aurora(nodes int) Spec {
	return Spec{
		Nodes:           nodes,
		CPUsPerNode:     2,
		GPUsPerNode:     6,
		TilesPerGPU:     2,
		L3CacheMBPerCPU: 105,
		DDRGBPerCPU:     512,
		HBMGBPerCPU:     64,
		NICGBps:         25,
		NICLatencyUS:    2,
	}
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.Nodes < 1:
		return fmt.Errorf("cluster: %d nodes", s.Nodes)
	case s.CPUsPerNode < 1 || s.GPUsPerNode < 0 || s.TilesPerGPU < 0:
		return fmt.Errorf("cluster: bad per-node inventory %+v", s)
	case s.NICGBps <= 0:
		return fmt.Errorf("cluster: NIC bandwidth %v", s.NICGBps)
	}
	return nil
}

// TilesPerNode returns the GPU tile count per node (12 on Aurora).
func (s Spec) TilesPerNode() int { return s.GPUsPerNode * s.TilesPerGPU }

// TotalTiles returns the job-wide tile count.
func (s Spec) TotalTiles() int { return s.Nodes * s.TilesPerNode() }

// CacheSharePerProcMB returns the per-process L3 share when procs
// processes run per node: total L3 across sockets divided evenly. With
// the paper's 12-process configuration this is ~105*2/12 — the paper
// quotes ~8 MB per process per CPU, i.e. 105/12 with components split
// per socket; we follow the paper's arithmetic (105 MB / 12 procs).
func (s Spec) CacheSharePerProcMB(procs int) float64 {
	if procs < 1 {
		procs = 1
	}
	return s.L3CacheMBPerCPU * float64(s.CPUsPerNode) / 2 / float64(procs) * 2 / float64(s.CPUsPerNode)
}

// Placement describes how a co-located pattern splits a node's tiles
// between the simulation and AI components (6 + 6 in the paper).
type Placement struct {
	SimTilesPerNode int
	AITilesPerNode  int
}

// Pattern1Placement is the paper's one-to-one split: half the tiles to
// the simulation, half to the trainer.
func Pattern1Placement(s Spec) Placement {
	half := s.TilesPerNode() / 2
	return Placement{SimTilesPerNode: half, AITilesPerNode: half}
}

// Pattern2Placement gives a component all tiles of its own node (the
// many-to-one pattern dedicates whole nodes).
func Pattern2Placement(s Spec) Placement {
	return Placement{SimTilesPerNode: s.TilesPerNode(), AITilesPerNode: s.TilesPerNode()}
}

// ProcsPerNode returns total ranks per node under a placement.
func (p Placement) ProcsPerNode() int { return p.SimTilesPerNode + p.AITilesPerNode }

// Tenant is one co-scheduled workflow instance in a multi-tenant
// partition: a stable id plus the node indices its components run on.
type Tenant struct {
	// ID numbers tenants 0..n-1 in scheduling order.
	ID int
	// Nodes are the spec node indices this tenant's ranks are placed on.
	Nodes []int
}

// CoSchedule places n concurrent workflow instances, each requesting
// nodesPer nodes, onto the partition's nodes in round-robin order. When
// the partition has at least n×nodesPer nodes every tenant receives a
// dedicated block (the scale-out case: compute is dedicated, only the
// datastore deployment is shared); with fewer nodes the assignment wraps
// and tenants share nodes (oversubscription), which also contends on the
// per-node exchange buses of the cost model.
func CoSchedule(s Spec, n, nodesPer int) ([]Tenant, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n < 1 || nodesPer < 1 {
		return nil, fmt.Errorf("cluster: co-schedule %d tenants × %d nodes", n, nodesPer)
	}
	tenants := make([]Tenant, n)
	next := 0
	for i := range tenants {
		nodes := make([]int, nodesPer)
		for j := range nodes {
			nodes[j] = next % s.Nodes
			next++
		}
		tenants[i] = Tenant{ID: i, Nodes: nodes}
	}
	return tenants, nil
}

// Block is a contiguous range of a partition's node indices assigned to
// one logical process of the parallel DES engine (des.LPSet): the
// node-block granularity of LP partitioning.
type Block struct {
	// Start is the first global node index of the block.
	Start int
	// Nodes is the number of nodes in the block.
	Nodes int
}

// LPBlocks partitions nodes into contiguous blocks of blockNodes each
// (the final block takes any remainder) — the block→LP mapping of the
// parallel engine. The mapping is a pure function of (nodes,
// blockNodes), deliberately independent of worker count: the canonical
// cross-LP merge order — and therefore every bit of a parallel run's
// metrics — depends only on the partition, so results cannot vary with
// how many cores executed it.
func LPBlocks(nodes, blockNodes int) []Block {
	if nodes < 1 {
		return nil
	}
	if blockNodes < 1 {
		blockNodes = 1
	}
	blocks := make([]Block, 0, (nodes+blockNodes-1)/blockNodes)
	for start := 0; start < nodes; start += blockNodes {
		n := blockNodes
		if start+n > nodes {
			n = nodes - start
		}
		blocks = append(blocks, Block{Start: start, Nodes: n})
	}
	return blocks
}

// NodeSet tracks the up/down availability of a partition's nodes — the
// cluster-side state of the fault-injection layer (internal/faults).
// The zero value is unusable; construct with NewNodeSet, which starts
// every node up. NodeSet is not safe for concurrent use: like the rest
// of the simulated-scale state it is mutated only from the single
// scheduler goroutine of a des.Env.
type NodeSet struct {
	up  []bool
	nUp int
	// fails counts Fail transitions, the cluster-level crash tally the
	// resilience reports use.
	fails int
}

// NewNodeSet returns the availability state for spec, all nodes up.
func NewNodeSet(s Spec) *NodeSet {
	ns := &NodeSet{up: make([]bool, s.Nodes), nUp: s.Nodes}
	for i := range ns.up {
		ns.up[i] = true
	}
	return ns
}

// Nodes returns the partition size.
func (ns *NodeSet) Nodes() int { return len(ns.up) }

// Up reports whether node is currently available.
func (ns *NodeSet) Up(node int) bool { return ns.up[node] }

// UpCount reports how many nodes are currently available.
func (ns *NodeSet) UpCount() int { return ns.nUp }

// Fails reports the number of Fail transitions so far.
func (ns *NodeSet) Fails() int { return ns.fails }

// Fail marks node down, reporting whether it was up (failing a node
// twice is a no-op, matching fail-stop semantics: a crashed node cannot
// crash again until restored).
func (ns *NodeSet) Fail(node int) bool {
	if !ns.up[node] {
		return false
	}
	ns.up[node] = false
	ns.nUp--
	ns.fails++
	return true
}

// Restore marks node up again after repair, reporting whether it was
// down.
func (ns *NodeSet) Restore(node int) bool {
	if ns.up[node] {
		return false
	}
	ns.up[node] = true
	ns.nUp++
	return true
}

// Replacement returns a deterministic re-placement target for work that
// was running on a failed node: the first up node scanning round-robin
// from failed+1 (so consecutive failures spread over the partition
// instead of piling onto node 0). ok is false when every node is down.
func (ns *NodeSet) Replacement(failed int) (node int, ok bool) {
	n := len(ns.up)
	for i := 1; i <= n; i++ {
		c := (failed + i) % n
		if ns.up[c] {
			return c, true
		}
	}
	return 0, false
}

// Oversubscription reports the mean number of tenant placements per
// *occupied* physical node: exactly 1.0 when every tenant has dedicated
// nodes (regardless of how much of the partition is idle), above 1 when
// CoSchedule wrapped and tenants share nodes.
func Oversubscription(s Spec, tenants []Tenant) float64 {
	placements := 0
	occupied := map[int]bool{}
	for _, t := range tenants {
		placements += len(t.Nodes)
		for _, n := range t.Nodes {
			occupied[n] = true
		}
	}
	if len(occupied) == 0 {
		return 0
	}
	return float64(placements) / float64(len(occupied))
}
