package cluster

import "fmt"

// This file models the interconnect the Spec's headline NIC numbers sit
// on: a Slingshot-class dragonfly. Spec carries per-node injection
// bandwidth and one fabric latency; Topology resolves *where the two
// endpoints sit* — same router, same group, or across a global optical
// link — so any node-pair transfer can be costed per hop class. The
// collective algorithm cost models (internal/mpi, bridged through
// internal/costmodel) are built on exactly this resolution: a ring
// AllReduce crossing groups every step and a hierarchical one that
// keeps most steps router-local price out very differently on the same
// Spec.

// HopClass classifies the dragonfly path between two nodes by the most
// expensive link it traverses.
type HopClass int

const (
	// HopLocal: both endpoints share a router — one switch traversal.
	HopLocal HopClass = iota
	// HopGroup: same dragonfly group, different routers — the group's
	// all-to-all local links add a switch hop.
	HopGroup
	// HopGlobal: different groups — the path crosses a global optical
	// link, the longest-latency, most-tapered class.
	HopGlobal
)

// String returns the hop class name.
func (h HopClass) String() string {
	switch h {
	case HopLocal:
		return "local"
	case HopGroup:
		return "group"
	case HopGlobal:
		return "global"
	}
	return "unknown"
}

// Topology is a dragonfly interconnect: Groups groups of
// RoutersPerGroup routers with NodesPerRouter nodes each, with one
// (bandwidth, latency) pair per hop class. Nodes are numbered densely:
// node i sits on router i/NodesPerRouter, group i/(NodesPerRouter×
// RoutersPerGroup). Bandwidths are per-transfer GB/s, latencies one-way
// seconds.
type Topology struct {
	Groups          int
	RoutersPerGroup int
	NodesPerRouter  int

	// LocalBWGBps / LocalLatencyS cost a same-router transfer.
	LocalBWGBps   float64
	LocalLatencyS float64
	// GroupBWGBps / GroupLatencyS cost an intra-group, inter-router
	// transfer.
	GroupBWGBps   float64
	GroupLatencyS float64
	// GlobalBWGBps / GlobalLatencyS cost an inter-group transfer over a
	// global link.
	GlobalBWGBps   float64
	GlobalLatencyS float64
}

// AuroraTopology returns the dragonfly Aurora(nodes) sits on: the
// paper's §4 Slingshot numbers (25 GB/s per-NIC injection, ~2 µs
// one-way fabric latency) resolved per hop class. Same-router hops see
// slightly under the quoted fabric latency (one switch traversal),
// intra-group hops slightly over (local-link hop added), and global
// hops pay the optical-link tax at half the injection bandwidth (the
// dragonfly's tapered global links). Groups is sized to hold the node
// count at 8 routers × 4 nodes per group (32 nodes per group), so
// multi-hundred-node jobs span many groups — the regime where
// collective-algorithm choice matters.
func AuroraTopology(nodes int) Topology {
	if nodes < 1 {
		nodes = 1
	}
	const perGroup = 8 * 4
	return Topology{
		Groups:          (nodes + perGroup - 1) / perGroup,
		RoutersPerGroup: 8,
		NodesPerRouter:  4,
		LocalBWGBps:     25,
		LocalLatencyS:   1.8e-6,
		GroupBWGBps:     25,
		GroupLatencyS:   2.4e-6,
		GlobalBWGBps:    12.5,
		GlobalLatencyS:  4.2e-6,
	}
}

// Validate reports configuration errors.
func (t Topology) Validate() error {
	switch {
	case t.Groups < 1 || t.RoutersPerGroup < 1 || t.NodesPerRouter < 1:
		return fmt.Errorf("cluster: topology shape %d×%d×%d", t.Groups, t.RoutersPerGroup, t.NodesPerRouter)
	case t.LocalBWGBps <= 0 || t.GroupBWGBps <= 0 || t.GlobalBWGBps <= 0:
		return fmt.Errorf("cluster: topology bandwidths %v/%v/%v GB/s", t.LocalBWGBps, t.GroupBWGBps, t.GlobalBWGBps)
	case t.LocalLatencyS < 0 || t.GroupLatencyS < 0 || t.GlobalLatencyS < 0:
		return fmt.Errorf("cluster: topology latencies %v/%v/%v s", t.LocalLatencyS, t.GroupLatencyS, t.GlobalLatencyS)
	}
	return nil
}

// Nodes returns the topology's node capacity.
func (t Topology) Nodes() int { return t.Groups * t.RoutersPerGroup * t.NodesPerRouter }

// Router returns the global router index of a node.
func (t Topology) Router(node int) int { return node / t.NodesPerRouter }

// Group returns the group index of a node.
func (t Topology) Group(node int) int { return node / (t.NodesPerRouter * t.RoutersPerGroup) }

// Hop resolves the hop class between two nodes: same router, same
// group, or global. A node paired with itself resolves HopLocal (but
// see TransferS, which charges nothing for it).
func (t Topology) Hop(a, b int) HopClass {
	switch {
	case t.Router(a) == t.Router(b):
		return HopLocal
	case t.Group(a) == t.Group(b):
		return HopGroup
	}
	return HopGlobal
}

// LinkBWGBps returns the transfer bandwidth of a hop class.
func (t Topology) LinkBWGBps(h HopClass) float64 {
	switch h {
	case HopLocal:
		return t.LocalBWGBps
	case HopGroup:
		return t.GroupBWGBps
	}
	return t.GlobalBWGBps
}

// LinkLatencyS returns the one-way latency of a hop class.
func (t Topology) LinkLatencyS(h HopClass) float64 {
	switch h {
	case HopLocal:
		return t.LocalLatencyS
	case HopGroup:
		return t.GroupLatencyS
	}
	return t.GlobalLatencyS
}

// TransferS costs one mb-megabyte transfer from node a to node b under
// the α+S/B model of the resolved hop class: latency plus size over
// bandwidth. A node-to-itself transfer is free (no fabric involved).
func (t Topology) TransferS(a, b int, mb float64) float64 {
	if a == b {
		return 0
	}
	h := t.Hop(a, b)
	return t.LinkLatencyS(h) + mb/1000/t.LinkBWGBps(h)
}
