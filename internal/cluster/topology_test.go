package cluster

import (
	"math"
	"testing"
)

func TestAuroraTopologyShape(t *testing.T) {
	for _, tc := range []struct {
		nodes, groups int
	}{
		{1, 1}, {8, 1}, {32, 1}, {33, 2}, {64, 2}, {512, 16},
	} {
		topo := AuroraTopology(tc.nodes)
		if err := topo.Validate(); err != nil {
			t.Fatalf("AuroraTopology(%d): %v", tc.nodes, err)
		}
		if topo.Groups != tc.groups {
			t.Errorf("AuroraTopology(%d).Groups = %d, want %d", tc.nodes, topo.Groups, tc.groups)
		}
		if topo.Nodes() < tc.nodes {
			t.Errorf("AuroraTopology(%d) capacity %d < node count", tc.nodes, topo.Nodes())
		}
	}
}

func TestTopologyHopResolution(t *testing.T) {
	topo := AuroraTopology(512) // 4 nodes/router, 8 routers/group
	cases := []struct {
		a, b int
		want HopClass
	}{
		{0, 0, HopLocal},   // same node
		{0, 3, HopLocal},   // same router
		{0, 4, HopGroup},   // next router, same group
		{0, 31, HopGroup},  // last node of group 0
		{0, 32, HopGlobal}, // first node of group 1
		{33, 500, HopGlobal},
		{100, 101, HopLocal}, // router 25 holds nodes 100..103
	}
	for _, tc := range cases {
		if got := topo.Hop(tc.a, tc.b); got != tc.want {
			t.Errorf("Hop(%d, %d) = %s, want %s", tc.a, tc.b, got, tc.want)
		}
		if got := topo.Hop(tc.b, tc.a); got != tc.want {
			t.Errorf("Hop(%d, %d) = %s, want %s (asymmetric)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestTopologyTransferCost(t *testing.T) {
	topo := AuroraTopology(64)
	if got := topo.TransferS(5, 5, 100); got != 0 {
		t.Fatalf("self-transfer costs %v, want 0", got)
	}
	// α+S/B per hop class: costs are strictly ordered local < group <
	// global at any size, and every class is latency + size/bandwidth.
	const mb = 8.0
	local := topo.TransferS(0, 1, mb)
	group := topo.TransferS(0, 4, mb)
	global := topo.TransferS(0, 40, mb)
	if !(local < group && group < global) {
		t.Fatalf("cost ordering violated: local %v, group %v, global %v", local, group, global)
	}
	want := topo.LocalLatencyS + mb/1000/topo.LocalBWGBps
	if math.Abs(local-want) > 1e-15 {
		t.Fatalf("local transfer = %v, want %v", local, want)
	}
	// Zero-size transfers still pay the hop latency.
	if got := topo.TransferS(0, 40, 0); got != topo.GlobalLatencyS {
		t.Fatalf("zero-size global transfer = %v, want latency %v", got, topo.GlobalLatencyS)
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{},
		{Groups: 1, RoutersPerGroup: 0, NodesPerRouter: 1, LocalBWGBps: 1, GroupBWGBps: 1, GlobalBWGBps: 1},
		{Groups: 1, RoutersPerGroup: 1, NodesPerRouter: 1, LocalBWGBps: 0, GroupBWGBps: 1, GlobalBWGBps: 1},
		{Groups: 1, RoutersPerGroup: 1, NodesPerRouter: 1, LocalBWGBps: 1, GroupBWGBps: 1, GlobalBWGBps: 1, GroupLatencyS: -1},
	}
	for i, topo := range bad {
		if topo.Validate() == nil {
			t.Errorf("case %d: Validate accepted %+v", i, topo)
		}
	}
	if HopClass(99).String() != "unknown" {
		t.Error("out-of-range HopClass should stringify as unknown")
	}
}
