// Package spin provides a high-precision sleep for the timing-emulation
// layer. The paper's mini-apps pad every iteration to a target duration;
// when runs are time-scaled (a 300-second workflow compressed into a few
// hundred milliseconds), targets shrink to tens of microseconds — far
// below time.Sleep's scheduling granularity. Sleep here parks the
// goroutine for the bulk of the wait and yield-spins the final stretch:
// the yield keeps concurrent components (a simulation and a trainer
// padding simultaneously) interleaving fairly even on a single-core
// machine, while the spin gives microsecond accuracy.
package spin

import (
	"runtime"
	"time"
)

// spinThreshold is the tail of every wait that is yield-spun instead of
// slept. 500µs comfortably covers timer wake-up jitter on Linux.
const spinThreshold = 500 * time.Microsecond

// Sleep blocks for at least d, with microsecond precision. Non-positive
// durations return immediately.
func Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > spinThreshold {
		time.Sleep(d - spinThreshold)
	}
	for time.Now().Before(deadline) {
		// Yield so other emulated components progress while we pad;
		// a hard spin would starve them on few-core machines.
		runtime.Gosched()
	}
}

// Until blocks until the given deadline with the same precision.
func Until(deadline time.Time) {
	Sleep(time.Until(deadline))
}
