package spin

import (
	"testing"
	"time"
)

func TestSleepAccuracyMicroseconds(t *testing.T) {
	for _, d := range []time.Duration{
		50 * time.Microsecond,
		200 * time.Microsecond,
		2 * time.Millisecond,
	} {
		start := time.Now()
		Sleep(d)
		got := time.Since(start)
		if got < d {
			t.Fatalf("Sleep(%v) returned early after %v", d, got)
		}
		// Precision: overshoot bounded by ~200µs even for tiny waits
		// (generous bound for noisy CI machines).
		if got > d+2*time.Millisecond {
			t.Fatalf("Sleep(%v) overshot to %v", d, got)
		}
	}
}

func TestSleepNonPositive(t *testing.T) {
	start := time.Now()
	Sleep(0)
	Sleep(-time.Second)
	if time.Since(start) > 10*time.Millisecond {
		t.Fatal("non-positive sleep blocked")
	}
}

func TestUntil(t *testing.T) {
	deadline := time.Now().Add(300 * time.Microsecond)
	Until(deadline)
	if time.Now().Before(deadline) {
		t.Fatal("Until returned before deadline")
	}
}
