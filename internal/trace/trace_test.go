package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestSpansSortedByStart(t *testing.T) {
	tl := New()
	tl.AddSpan("Training", KindCompute, 5, 6, "")
	tl.AddSpan("Simulation", KindCompute, 1, 2, "")
	tl.AddSpan("Simulation", KindTransfer, 3, 3.1, "write")
	spans := tl.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans unsorted: %v", spans)
		}
	}
}

func TestLanesFirstAppearanceOrder(t *testing.T) {
	tl := New()
	tl.AddSpan("Simulation", KindInit, 0, 1, "")
	tl.AddSpan("Training", KindInit, 0, 2, "")
	tl.AddSpan("Simulation", KindCompute, 1, 2, "")
	lanes := tl.Lanes()
	if len(lanes) != 2 || lanes[0] != "Simulation" || lanes[1] != "Training" {
		t.Fatalf("lanes = %v", lanes)
	}
}

func TestCountByKind(t *testing.T) {
	tl := New()
	for i := 0; i < 7; i++ {
		tl.AddSpan("Simulation", KindTransfer, float64(i), float64(i)+0.1, "")
	}
	tl.AddSpan("Simulation", KindCompute, 0, 10, "")
	if got := tl.Count("Simulation", KindTransfer); got != 7 {
		t.Fatalf("transfer count = %d, want 7", got)
	}
	if got := tl.Count("Simulation", KindCompute); got != 1 {
		t.Fatalf("compute count = %d, want 1", got)
	}
	if got := tl.Count("Training", KindTransfer); got != 0 {
		t.Fatalf("foreign lane count = %d, want 0", got)
	}
}

func TestConcurrentAdd(t *testing.T) {
	tl := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tl.AddSpan("lane", KindCompute, float64(i), float64(i)+1, "")
			}
		}()
	}
	wg.Wait()
	if len(tl.Spans()) != 800 {
		t.Fatalf("spans = %d, want 800", len(tl.Spans()))
	}
}

func TestWriteCSV(t *testing.T) {
	tl := New()
	tl.AddSpan("Sim", KindTransfer, 1.5, 1.75, "key=a,b") // comma must be escaped
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %v", lines)
	}
	if lines[0] != "lane,kind,start,end,label" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "transfer") || strings.Count(lines[1], ",") != 4 {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestRenderGlyphs(t *testing.T) {
	tl := New()
	tl.AddSpan("Simulation", KindInit, 0, 2, "")
	tl.AddSpan("Simulation", KindCompute, 2, 8, "")
	tl.AddSpan("Simulation", KindTransfer, 5, 5.05, "")
	tl.AddSpan("Training", KindCompute, 0, 10, "")
	var buf bytes.Buffer
	if err := tl.Render(&buf, 0, 10, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "░") {
		t.Error("render missing init glyph")
	}
	if !strings.Contains(out, "█") {
		t.Error("render missing compute glyph")
	}
	if !strings.Contains(out, "|") {
		t.Error("render missing transfer glyph (short transfers must stay visible)")
	}
	if !strings.Contains(out, "Simulation") || !strings.Contains(out, "Training") {
		t.Error("render missing lane names")
	}
}

func TestRenderEmptyWindowErrors(t *testing.T) {
	tl := New()
	var buf bytes.Buffer
	if err := tl.Render(&buf, 5, 5, 40); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestRenderClipsOutOfWindowSpans(t *testing.T) {
	tl := New()
	tl.AddSpan("L", KindCompute, 100, 200, "") // outside window
	var buf bytes.Buffer
	if err := tl.Render(&buf, 0, 10, 20); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "█") {
		t.Fatal("out-of-window span rendered")
	}
}

func TestSummarize(t *testing.T) {
	tl := New()
	tl.AddSpan("Sim", KindInit, 0, 2, "")
	tl.AddSpan("Sim", KindCompute, 2, 8, "")
	tl.AddSpan("Sim", KindTransfer, 8, 9, "")
	tl.AddSpan("Train", KindCompute, 0, 10, "")
	sums := tl.Summarize(0, 10)
	if len(sums) != 2 {
		t.Fatalf("lanes = %d", len(sums))
	}
	sim := sums[0]
	if sim.Lane != "Sim" || sim.ComputeS != 6 || sim.TransferS != 1 || sim.InitS != 2 {
		t.Fatalf("sim summary = %+v", sim)
	}
	if sim.Transfers != 1 || sim.ComputeFrac != 0.6 {
		t.Fatalf("sim fractions = %+v", sim)
	}
}

func TestSummarizeClipsToWindow(t *testing.T) {
	tl := New()
	tl.AddSpan("L", KindCompute, 0, 100, "")
	sums := tl.Summarize(10, 20)
	if sums[0].ComputeS != 10 || sums[0].ComputeFrac != 1.0 {
		t.Fatalf("clipped summary = %+v", sums[0])
	}
}

func TestSummarizeEmptyWindow(t *testing.T) {
	tl := New()
	tl.AddSpan("L", KindCompute, 0, 1, "")
	if got := tl.Summarize(5, 5); got != nil {
		t.Fatalf("empty window summary = %v", got)
	}
}

// TestLanesOrderedByStartThenName pins the lane order against
// insertion-order nondeterminism: concurrently-recording components
// whose first spans share a start time must render in (start, name)
// order no matter which Add landed first.
func TestLanesOrderedByStartThenName(t *testing.T) {
	// "Training" inserted before "Simulation", both starting at 0: the
	// name breaks the tie, not the insertion order.
	tl := New()
	tl.AddSpan("Training", KindInit, 0, 1, "")
	tl.AddSpan("Simulation", KindInit, 0, 2, "")
	tl.AddSpan("Late", KindCompute, 5, 6, "")
	want := []string{"Simulation", "Training", "Late"}
	got := tl.Lanes()
	if len(got) != len(want) {
		t.Fatalf("lanes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lanes = %v, want %v", got, want)
		}
	}
	// An earlier span added later still pulls its lane forward.
	tl.AddSpan("Late", KindCompute, -1, 0, "")
	if got := tl.Lanes(); got[0] != "Late" {
		t.Fatalf("after backdated span, lanes = %v, want Late first", got)
	}
}
