// Package trace records execution timelines of workflow components —
// compute spans, data-transfer marks and initialization periods — and
// renders them as the Fig-2-style timeline comparison (ASCII art in a
// terminal, CSV for plotting). Each component gets one lane; events carry
// a kind so the renderer can distinguish computation from transfers.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a span.
type Kind int

// Span kinds, mirroring the Fig 2 legend: compute (blue/orange regions),
// transfer (red bars), init (gray areas).
const (
	KindCompute Kind = iota
	KindTransfer
	KindInit
)

// String returns the kind label used in CSV output.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindTransfer:
		return "transfer"
	case KindInit:
		return "init"
	}
	return "unknown"
}

// Span is one timeline interval on a component lane.
type Span struct {
	Lane  string // component name, e.g. "Simulation", "Training"
	Kind  Kind
	Start float64 // seconds
	End   float64 // seconds
	Label string  // optional annotation, e.g. "write key=step100"
}

// Timeline collects spans from concurrently-running components.
type Timeline struct {
	mu    sync.Mutex
	spans []Span
}

// New returns an empty timeline.
func New() *Timeline { return &Timeline{} }

// Add records one span. Safe for concurrent use.
func (tl *Timeline) Add(s Span) {
	tl.mu.Lock()
	tl.spans = append(tl.spans, s)
	tl.mu.Unlock()
}

// AddSpan is a convenience wrapper.
func (tl *Timeline) AddSpan(lane string, kind Kind, start, end float64, label string) {
	tl.Add(Span{Lane: lane, Kind: kind, Start: start, End: end, Label: label})
}

// Spans returns a copy of all recorded spans sorted by start time.
func (tl *Timeline) Spans() []Span {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	cp := append([]Span(nil), tl.spans...)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Start != cp[j].Start {
			return cp[i].Start < cp[j].Start
		}
		return cp[i].Lane < cp[j].Lane
	})
	return cp
}

// Lanes returns the distinct lane names ordered by (earliest span
// start, name). Insertion order would depend on how concurrently-
// running components interleave their Add calls — two components whose
// first spans share a start time (both initializing at t=0) would swap
// lanes from run to run — so the order is derived from the recorded
// times instead, with the name as a deterministic tie-break.
func (tl *Timeline) Lanes() []string {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	first := map[string]float64{}
	var lanes []string
	for _, s := range tl.spans {
		if t, ok := first[s.Lane]; !ok || s.Start < t {
			if !ok {
				lanes = append(lanes, s.Lane)
			}
			first[s.Lane] = s.Start
		}
	}
	sort.Slice(lanes, func(i, j int) bool {
		if first[lanes[i]] != first[lanes[j]] {
			return first[lanes[i]] < first[lanes[j]]
		}
		return lanes[i] < lanes[j]
	})
	return lanes
}

// Count returns the number of spans of the given kind on a lane
// (Table 2's "data transport events" when kind is KindTransfer).
func (tl *Timeline) Count(lane string, kind Kind) int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	n := 0
	for _, s := range tl.spans {
		if s.Lane == lane && s.Kind == kind {
			n++
		}
	}
	return n
}

// WriteCSV emits "lane,kind,start,end,label" rows for external plotting.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "lane,kind,start,end,label"); err != nil {
		return err
	}
	for _, s := range tl.Spans() {
		if _, err := fmt.Fprintf(w, "%s,%s,%.6f,%.6f,%s\n",
			s.Lane, s.Kind, s.Start, s.End, strings.ReplaceAll(s.Label, ",", ";")); err != nil {
			return err
		}
	}
	return nil
}

// Render draws an ASCII timeline of the window [from, to) with the given
// width in characters, one row per lane. Compute spans render as '█',
// transfers as '|', init as '░', idle as spaces — the textual equivalent
// of Fig 2.
func (tl *Timeline) Render(w io.Writer, from, to float64, width int) error {
	if width < 10 {
		width = 10
	}
	if to <= from {
		return fmt.Errorf("trace: empty window [%v,%v)", from, to)
	}
	scale := float64(width) / (to - from)
	lanes := tl.Lanes()
	spans := tl.Spans()
	maxName := 0
	for _, l := range lanes {
		if len(l) > maxName {
			maxName = len(l)
		}
	}
	for _, lane := range lanes {
		row := make([]rune, width)
		for i := range row {
			row[i] = ' '
		}
		paint := func(s Span, glyph rune, minCells int) {
			lo := int(math.Floor((s.Start - from) * scale))
			hi := int(math.Ceil((s.End - from) * scale))
			if hi <= lo {
				hi = lo + minCells
			}
			for i := lo; i < hi && i < width; i++ {
				if i >= 0 {
					row[i] = glyph
				}
			}
		}
		// Paint compute and init first, transfers on top so short
		// transfers stay visible (they are the red bars of Fig 2).
		for _, s := range spans {
			if s.Lane != lane || s.End < from || s.Start > to {
				continue
			}
			switch s.Kind {
			case KindInit:
				paint(s, '░', 1)
			case KindCompute:
				paint(s, '█', 1)
			}
		}
		for _, s := range spans {
			if s.Lane != lane || s.End < from || s.Start > to || s.Kind != KindTransfer {
				continue
			}
			paint(s, '|', 1)
		}
		if _, err := fmt.Fprintf(w, "%-*s %s\n", maxName, lane, string(row)); err != nil {
			return err
		}
	}
	// Time axis.
	axis := fmt.Sprintf("%-*s %-*.1f%*.1f", maxName, "t(s)", width/2, from, width-width/2, to)
	_, err := fmt.Fprintln(w, axis)
	return err
}

// LaneSummary aggregates a lane's time accounting over a window: the
// fractions of time spent computing, transferring and initializing —
// the utilization view a workflow analyst derives from Fig-2 timelines.
type LaneSummary struct {
	Lane         string
	ComputeS     float64
	TransferS    float64
	InitS        float64
	Transfers    int
	WindowS      float64
	ComputeFrac  float64
	TransferFrac float64
}

// Summarize computes per-lane utilization over [from, to). Spans are
// clipped to the window; overlapping spans of the same kind double-count
// (components do not overlap their own compute in practice).
func (tl *Timeline) Summarize(from, to float64) []LaneSummary {
	window := to - from
	if window <= 0 {
		return nil
	}
	var out []LaneSummary
	for _, lane := range tl.Lanes() {
		s := LaneSummary{Lane: lane, WindowS: window}
		for _, sp := range tl.Spans() {
			if sp.Lane != lane || sp.End <= from || sp.Start >= to {
				continue
			}
			d := math.Min(sp.End, to) - math.Max(sp.Start, from)
			switch sp.Kind {
			case KindCompute:
				s.ComputeS += d
			case KindTransfer:
				s.TransferS += d
				s.Transfers++
			case KindInit:
				s.InitS += d
			}
		}
		s.ComputeFrac = s.ComputeS / window
		s.TransferFrac = s.TransferS / window
		out = append(out, s)
	}
	return out
}
