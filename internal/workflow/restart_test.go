package workflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"simaibench/internal/clock"
	"simaibench/internal/mpi"
)

// TestRestartableLocalComponentResumesFromCheckpoint: a Local component
// that fails restartably resumes from its last Save with an
// incremented Attempt, and the workflow succeeds.
func TestRestartableLocalComponentResumesFromCheckpoint(t *testing.T) {
	w := New("wf")
	var attempts []int
	var resumedFrom []int
	err := w.Register(Component{
		Name:        "solver",
		MaxRestarts: 3,
		Body: func(ctx Ctx) error {
			attempts = append(attempts, ctx.Attempt)
			step := 0
			if v, ok := ctx.Ckpt.Load("step"); ok {
				step = v.(int)
			}
			resumedFrom = append(resumedFrom, step)
			for ; step < 10; step++ {
				ctx.Ckpt.Save("step", step)
				if step == 4 && ctx.Attempt == 0 {
					return Restartable(errors.New("node crash"))
				}
				if step == 7 && ctx.Attempt == 1 {
					return Restartable(errors.New("node crash"))
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Launch(context.Background()); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if want := []int{0, 1, 2}; fmt.Sprint(attempts) != fmt.Sprint(want) {
		t.Fatalf("attempts = %v, want %v", attempts, want)
	}
	if want := []int{0, 4, 7}; fmt.Sprint(resumedFrom) != fmt.Sprint(want) {
		t.Fatalf("resumed from %v, want %v", resumedFrom, want)
	}
}

// TestRestartBudgetExhausted: when every attempt fails restartably the
// workflow fails with the last error once MaxRestarts is spent.
func TestRestartBudgetExhausted(t *testing.T) {
	w := New("wf")
	runs := 0
	_ = w.Register(Component{
		Name:        "flaky",
		MaxRestarts: 2,
		Body: func(ctx Ctx) error {
			runs++
			return Restartable(errors.New("still broken"))
		},
	})
	err := w.Launch(context.Background())
	if err == nil || !strings.Contains(err.Error(), "still broken") {
		t.Fatalf("Launch = %v, want the final restartable error", err)
	}
	if runs != 3 {
		t.Fatalf("body ran %d times, want 3 (initial + 2 restarts)", runs)
	}
	if !IsRestartable(err) {
		t.Fatal("the surfaced error should still unwrap as restartable")
	}
}

// TestNonRestartableErrorNotRetried: plain errors fail immediately even
// with restart budget available.
func TestNonRestartableErrorNotRetried(t *testing.T) {
	w := New("wf")
	runs := 0
	_ = w.Register(Component{
		Name:        "fatal",
		MaxRestarts: 5,
		Body: func(ctx Ctx) error {
			runs++
			return errors.New("hard failure")
		},
	})
	if err := w.Launch(context.Background()); err == nil {
		t.Fatal("Launch should fail")
	}
	if runs != 1 {
		t.Fatalf("body ran %d times, want 1", runs)
	}
}

// TestRestartableHelpers covers the marker API edge cases.
func TestRestartableHelpers(t *testing.T) {
	if Restartable(nil) != nil {
		t.Fatal("Restartable(nil) should be nil")
	}
	base := errors.New("x")
	wrapped := fmt.Errorf("context: %w", Restartable(base))
	if !IsRestartable(wrapped) {
		t.Fatal("IsRestartable should see through wrapping")
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("Restartable should preserve the error chain")
	}
	if IsRestartable(base) {
		t.Fatal("unwrapped error is not restartable")
	}
}

// TestCrashMidAllReduceTearsDownClockBridge injects a hard crash into
// one rank while its siblings are parked inside an AllReduce with their
// barrier slots released through the mpi clock bridge — the teardown
// path a node failure exercises in a virtual-clock run. The workflow
// must surface the failure (no deadlock: the killed world unblocks the
// parked collective waiters) and the crash must not be retried. Run
// under -race in CI, this also checks the bridge's join/leave
// accounting races cleanly with the kill broadcast.
func TestCrashMidAllReduceTearsDownClockBridge(t *testing.T) {
	v := clock.NewVirtual()
	w := New("wf", WithClock(v))
	const ranks = 4
	var mu sync.Mutex
	runs := 0
	_ = w.Register(Component{
		Name:        "train",
		Type:        Remote,
		Ranks:       ranks,
		MaxRestarts: 2, // must not apply: panics are not restartable
		Body: func(ctx Ctx) error {
			mu.Lock()
			runs++
			mu.Unlock()
			ctx.Clock.Sleep(5)
			if ctx.Comm.Rank() == 1 {
				// Let the other ranks reach the collective and park
				// (leaving the clock barrier through the bridge), then
				// die without ever depositing.
				ctx.Clock.Sleep(20)
				panic("node 1 hardware failure")
			}
			// Bare AllReduce: collective waits are bridged to the clock
			// barrier by Launch, so wrapping them in Clock.Block would
			// double-release the caller's slot.
			buf := []float64{1}
			ctx.Comm.AllReduce(mpi.Sum, buf)
			return nil
		},
	})
	err := w.Launch(context.Background())
	if err == nil || !strings.Contains(err.Error(), "node 1 hardware failure") {
		t.Fatalf("Launch = %v, want the injected crash", err)
	}
	if runs != ranks {
		t.Fatalf("bodies ran %d times, want %d (no restart after a panic)", runs, ranks)
	}
}

// TestCrashMidHierAllReduceTearsDownClockBridge mirrors the flat-
// rendezvous crash test for the hierarchical algorithmic AllReduce,
// whose waits park in point-to-point mailboxes (member→leader gather,
// leader ring, leader→member broadcast) rather than the collective
// barrier. A rank dying mid-hierarchy must still unwind every parked
// sibling through the killed world — leaders waiting on a member that
// never sends, members waiting on a broadcast that never comes — with
// the bridge's barrier accounting intact (run under -race in CI).
func TestCrashMidHierAllReduceTearsDownClockBridge(t *testing.T) {
	v := clock.NewVirtual()
	w := New("wf", WithClock(v))
	const ranks = 4
	// Two routers of two: rank 1 is router 0's non-leader member, so
	// leader 0 parks in the gather Recv and router 1's ranks park in
	// the leader-ring Recv when it dies.
	routerOf := []int{0, 0, 1, 1}
	var mu sync.Mutex
	runs := 0
	_ = w.Register(Component{
		Name:        "train",
		Type:        Remote,
		Ranks:       ranks,
		MaxRestarts: 2, // must not apply: panics are not restartable
		Body: func(ctx Ctx) error {
			mu.Lock()
			runs++
			mu.Unlock()
			ctx.Clock.Sleep(5)
			if ctx.Comm.Rank() == 1 {
				// Let the other ranks park inside the hierarchy's p2p
				// waits (leaving the clock barrier through the mailbox
				// bridge), then die without ever sending upward.
				ctx.Clock.Sleep(20)
				panic("node 1 hardware failure")
			}
			buf := []float64{1}
			ctx.Comm.AllReduceAlgoOn(mpi.AlgoHier, mpi.Sum, buf, routerOf)
			return nil
		},
	})
	err := w.Launch(context.Background())
	if err == nil || !strings.Contains(err.Error(), "node 1 hardware failure") {
		t.Fatalf("Launch = %v, want the injected crash", err)
	}
	if runs != ranks {
		t.Fatalf("bodies ran %d times, want %d (no restart after a panic)", runs, ranks)
	}
}

// TestRemoteRankRestartsUnderVirtualClock: one rank of a remote
// component fails restartably and re-enters the collectives its
// siblings are parked in; the workflow completes deterministically on
// the virtual clock.
func TestRemoteRankRestartsUnderVirtualClock(t *testing.T) {
	v := clock.NewVirtual()
	w := New("wf", WithClock(v))
	const ranks = 4
	var mu sync.Mutex
	restarts := 0
	_ = w.Register(Component{
		Name:        "train",
		Type:        Remote,
		Ranks:       ranks,
		MaxRestarts: 1,
		Body: func(ctx Ctx) error {
			key := fmt.Sprintf("rank%d", ctx.Comm.Rank())
			start := 0
			if vv, ok := ctx.Ckpt.Load(key); ok {
				start = vv.(int)
			}
			for i := start; i < 3; i++ {
				ctx.Clock.Sleep(10)
				if ctx.Comm.Rank() == 2 && i == 1 && ctx.Attempt == 0 {
					mu.Lock()
					restarts++
					mu.Unlock()
					return Restartable(errors.New("rank 2 lost"))
				}
				buf := []float64{float64(i)}
				ctx.Comm.AllReduce(mpi.Sum, buf)
				if buf[0] != float64(i*ranks) {
					return fmt.Errorf("allreduce = %v at iter %d", buf[0], i)
				}
				ctx.Ckpt.Save(key, i+1)
			}
			return nil
		},
	})
	if err := w.Launch(context.Background()); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if restarts != 1 {
		t.Fatalf("rank restarted %d times, want 1", restarts)
	}
}
