package workflow

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"simaibench/internal/clock"
	"simaibench/internal/mpi"
)

// TestVirtualClockTwoComponents is the emulation-layer barrier in
// miniature: two concurrent Local components padding on one virtual
// clock interleave in virtual-deadline order, serialized one at a time,
// and the whole workflow finishes in negligible real time.
func TestVirtualClockTwoComponents(t *testing.T) {
	v := clock.NewVirtual()
	w := New("wf", WithClock(v))
	if w.Clock() != v {
		t.Fatal("Clock() should return the attached clock")
	}
	var mu sync.Mutex
	var order []string
	comp := func(name string, period time.Duration, n int) Body {
		return func(ctx Ctx) error {
			for i := 0; i < n; i++ {
				ctx.Clock.Sleep(period)
				mu.Lock()
				order = append(order, name)
				mu.Unlock()
			}
			return nil
		}
	}
	w.Register(Component{Name: "a", Body: comp("a", 2*time.Second, 3)})
	w.Register(Component{Name: "b", Body: comp("b", 3*time.Second, 2)})
	wallStart := time.Now()
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if real := time.Since(wallStart); real > 2*time.Second {
		t.Fatalf("virtual workflow took %v of real time", real)
	}
	// Deadlines: a at 2,4,6; b at 3,6 — b reschedules toward 6 first.
	want := []string{"a", "b", "a", "b", "a"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if got := v.NowNS(); got != int64(6*time.Second) {
		t.Fatalf("virtual makespan %v, want 6s", time.Duration(got))
	}
}

// TestVirtualClockDependencyHandoff: a finishing component hands its
// barrier slot to the dependent it releases, and the dependent's sleeps
// then drive virtual time.
func TestVirtualClockDependencyHandoff(t *testing.T) {
	v := clock.NewVirtual()
	w := New("wf", WithClock(v))
	w.Register(Component{Name: "first", Body: func(ctx Ctx) error {
		ctx.Clock.Sleep(5 * time.Second)
		return nil
	}})
	w.Register(Component{Name: "second", Deps: []string{"first"}, Body: func(ctx Ctx) error {
		ctx.Clock.Sleep(3 * time.Second)
		return nil
	}})
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := v.NowNS(); got != int64(8*time.Second) {
		t.Fatalf("virtual makespan %v, want 8s", time.Duration(got))
	}
}

// TestVirtualClockSkipsFailedDependents: barrier accounting must not
// leak when a dependency fails and its dependents never run.
func TestVirtualClockSkipsFailedDependents(t *testing.T) {
	v := clock.NewVirtual()
	w := New("wf", WithClock(v))
	boom := errors.New("boom")
	w.Register(Component{Name: "bad", Body: func(ctx Ctx) error {
		ctx.Clock.Sleep(time.Second)
		return boom
	}})
	w.Register(Component{Name: "bystander", Body: func(ctx Ctx) error {
		ctx.Clock.Sleep(4 * time.Second)
		return nil
	}})
	w.Register(Component{Name: "orphan", Deps: []string{"bad"}, Body: func(ctx Ctx) error {
		return nil
	}})
	if err := w.Launch(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The bystander's sleeps must still complete (no leaked barrier
	// slot from the never-started orphan).
	if got := v.NowNS(); got != int64(4*time.Second) {
		t.Fatalf("virtual end %v, want 4s", time.Duration(got))
	}
}

// TestVirtualClockCancelRacingFinisher: a dependency that finishes
// successfully AFTER its dependent already gave up on a cancelled
// context must not join barrier slots for that dependent — phantom
// participants would park the remaining sleepers forever and hang
// Launch.
func TestVirtualClockCancelRacingFinisher(t *testing.T) {
	v := clock.NewVirtual()
	w := New("wf", WithClock(v))
	release := make(chan struct{})
	w.Register(Component{Name: "slow", Body: func(ctx Ctx) error {
		<-release // keeps running across the cancellation, then succeeds
		return nil
	}})
	w.Register(Component{Name: "dependent", Deps: []string{"slow"}, Body: func(ctx Ctx) error {
		return nil
	}})
	w.Register(Component{Name: "sleeper", Body: func(ctx Ctx) error {
		ctx.Clock.Sleep(time.Second)
		return nil
	}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Launch(ctx) }()
	cancel()
	// Give the dependent's launcher goroutine time to observe the
	// cancellation and abandon before the dependency completes.
	time.Sleep(20 * time.Millisecond)
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Launch hung: a finished dependency joined barrier slots for an abandoned dependent")
	}
}

// TestVirtualClockRemoteRanks: a multi-rank Remote component under the
// virtual clock — rank sleeps pad in virtual time and collective waits
// release the barrier through the MPI block bridge instead of
// deadlocking it.
func TestVirtualClockRemoteRanks(t *testing.T) {
	v := clock.NewVirtual()
	w := New("wf", WithClock(v))
	const ranks = 4
	sums := make([]float64, ranks)
	w.Register(Component{Name: "ddp", Type: Remote, Ranks: ranks, Body: func(ctx Ctx) error {
		// Skew the ranks so the collective genuinely waits: rank r
		// sleeps (r+1) virtual seconds before contributing.
		ctx.Clock.Sleep(time.Duration(ctx.Comm.Rank()+1) * time.Second)
		buf := []float64{float64(ctx.Comm.Rank())}
		ctx.Comm.AllReduce(mpi.Sum, buf)
		sums[ctx.Comm.Rank()] = buf[0]
		ctx.Clock.Sleep(time.Second)
		return nil
	}})
	done := make(chan error, 1)
	go func() { done <- w.Launch(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("remote ranks deadlocked under the virtual clock")
	}
	for r, s := range sums {
		if s != 6 { // 0+1+2+3
			t.Fatalf("rank %d allreduce sum = %v, want 6", r, s)
		}
	}
	// Slowest rank contributes at 4s; everyone resumes there and pads
	// one more second.
	if got := v.NowNS(); got != int64(5*time.Second) {
		t.Fatalf("virtual makespan %v, want 5s", time.Duration(got))
	}
}

// TestVirtualClockRemoteSendRecv exercises the mailbox side of the MPI
// clock bridge: a receiver parked in Recv releases the barrier so the
// sender's pad can advance virtual time, and is rejoined by the send.
func TestVirtualClockRemoteSendRecv(t *testing.T) {
	v := clock.NewVirtual()
	w := New("wf", WithClock(v))
	var got []byte
	w.Register(Component{Name: "pair", Type: Remote, Ranks: 2, Body: func(ctx Ctx) error {
		if ctx.Comm.Rank() == 0 {
			ctx.Clock.Sleep(7 * time.Second)
			ctx.Comm.Send(1, 0, []byte("snapshot"))
			return nil
		}
		data, _ := ctx.Comm.Recv(0, 0)
		got = data
		ctx.Clock.Sleep(2 * time.Second)
		return nil
	}})
	done := make(chan error, 1)
	go func() { done <- w.Launch(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("send/recv deadlocked under the virtual clock")
	}
	if string(got) != "snapshot" {
		t.Fatalf("recv got %q", got)
	}
	if end := v.NowNS(); end != int64(9*time.Second) {
		t.Fatalf("virtual makespan %v, want 9s", time.Duration(end))
	}
}

// TestWallClockDefault: workflows without WithClock run on the wall
// clock and bodies see it in their Ctx.
func TestWallClockDefault(t *testing.T) {
	w := New("wf")
	w.Register(Component{Name: "c", Body: func(ctx Ctx) error {
		if ctx.Clock != clock.Wall {
			t.Errorf("default ctx clock = %v, want Wall", ctx.Clock)
		}
		return nil
	}})
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
}
