package workflow

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseLaunchType(t *testing.T) {
	for in, want := range map[string]LaunchType{"local": Local, "": Local, "remote": Remote} {
		got, err := ParseLaunchType(in)
		if err != nil || got != want {
			t.Errorf("ParseLaunchType(%q) = %v,%v", in, got, err)
		}
	}
	if _, err := ParseLaunchType("cloud"); err == nil {
		t.Error("unknown launch type parsed")
	}
	if Local.String() != "local" || Remote.String() != "remote" {
		t.Error("launch type String() wrong")
	}
}

func TestSingleComponent(t *testing.T) {
	w := New("wf")
	ran := false
	w.Register(Component{Name: "only", Body: func(ctx Ctx) error {
		ran = true
		if ctx.Component != "only" {
			t.Errorf("ctx.Component = %q", ctx.Component)
		}
		return nil
	}})
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("component did not run")
	}
}

func TestDependencyOrdering(t *testing.T) {
	// The paper's Listing 1: run_sim must complete before run_sim2.
	w := New("wf")
	var mu sync.Mutex
	var order []string
	log := func(name string) Body {
		return func(ctx Ctx) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	w.Register(Component{Name: "sim2", Deps: []string{"sim"}, Body: log("sim2")})
	w.Register(Component{Name: "sim", Body: log("sim")})
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "sim" || order[1] != "sim2" {
		t.Fatalf("order = %v", order)
	}
}

func TestDiamondDAG(t *testing.T) {
	w := New("wf")
	var mu sync.Mutex
	finished := map[string]bool{}
	mk := func(name string, deps ...string) {
		w.Register(Component{Name: name, Deps: deps, Body: func(ctx Ctx) error {
			mu.Lock()
			defer mu.Unlock()
			for _, d := range deps {
				if !finished[d] {
					t.Errorf("%s started before dep %s finished", name, d)
				}
			}
			finished[name] = true
			return nil
		}})
	}
	mk("a")
	mk("b", "a")
	mk("c", "a")
	mk("d", "b", "c")
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(finished) != 4 {
		t.Fatalf("finished = %v", finished)
	}
}

func TestIndependentComponentsRunConcurrently(t *testing.T) {
	w := New("wf")
	gate := make(chan struct{})
	// Two components that each wait for the other via the gate: they can
	// only finish if they truly overlap.
	w.Register(Component{Name: "a", Body: func(ctx Ctx) error {
		select {
		case gate <- struct{}{}:
		case <-gate:
		}
		return nil
	}})
	w.Register(Component{Name: "b", Body: func(ctx Ctx) error {
		select {
		case gate <- struct{}{}:
		case <-gate:
		}
		return nil
	}})
	done := make(chan error, 1)
	go func() { done <- w.Launch(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("independent components did not overlap (deadlock)")
	}
}

func TestRemoteComponentGetsWorld(t *testing.T) {
	w := New("wf")
	var ranksSeen int32
	w.Register(Component{Name: "mpi-job", Type: Remote, Ranks: 6, Body: func(ctx Ctx) error {
		if ctx.Comm == nil {
			t.Error("remote component without comm")
			return nil
		}
		if ctx.Comm.Size() != 6 {
			t.Errorf("world size = %d", ctx.Comm.Size())
		}
		ctx.Comm.Barrier()
		atomic.AddInt32(&ranksSeen, 1)
		return nil
	}})
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ranksSeen != 6 {
		t.Fatalf("ranks ran = %d, want 6", ranksSeen)
	}
}

func TestLocalComponentHasNoComm(t *testing.T) {
	w := New("wf")
	w.Register(Component{Name: "local", Type: Local, Body: func(ctx Ctx) error {
		if ctx.Comm != nil {
			t.Error("local component got a comm")
		}
		return nil
	}})
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCycleDetected(t *testing.T) {
	w := New("wf")
	w.Register(Component{Name: "a", Deps: []string{"b"}, Body: func(Ctx) error { return nil }})
	w.Register(Component{Name: "b", Deps: []string{"a"}, Body: func(Ctx) error { return nil }})
	err := w.Launch(context.Background())
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle detection", err)
	}
}

func TestUnknownDependency(t *testing.T) {
	w := New("wf")
	w.Register(Component{Name: "a", Deps: []string{"ghost"}, Body: func(Ctx) error { return nil }})
	if err := w.Launch(context.Background()); err == nil {
		t.Fatal("unknown dependency accepted")
	}
}

func TestSelfDependency(t *testing.T) {
	w := New("wf")
	w.Register(Component{Name: "a", Deps: []string{"a"}, Body: func(Ctx) error { return nil }})
	if err := w.Launch(context.Background()); err == nil {
		t.Fatal("self dependency accepted")
	}
}

func TestDuplicateRegistration(t *testing.T) {
	w := New("wf")
	ok := func(Ctx) error { return nil }
	if err := w.Register(Component{Name: "a", Body: ok}); err != nil {
		t.Fatal(err)
	}
	if err := w.Register(Component{Name: "a", Body: ok}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	w := New("wf")
	if err := w.Register(Component{Name: "", Body: func(Ctx) error { return nil }}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := w.Register(Component{Name: "x"}); err == nil {
		t.Fatal("nil body accepted")
	}
	if err := w.Register(Component{Name: "y", Ranks: -1, Body: func(Ctx) error { return nil }}); err == nil {
		t.Fatal("negative ranks accepted")
	}
}

func TestFailurePropagatesAndSkipsDependents(t *testing.T) {
	w := New("wf")
	boom := errors.New("boom")
	depRan := false
	w.Register(Component{Name: "bad", Body: func(Ctx) error { return boom }})
	w.Register(Component{Name: "after", Deps: []string{"bad"}, Body: func(Ctx) error {
		depRan = true
		return nil
	}})
	err := w.Launch(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if depRan {
		t.Fatal("dependent ran after dependency failed")
	}
}

func TestPanicInComponentBecomesError(t *testing.T) {
	w := New("wf")
	w.Register(Component{Name: "panicky", Body: func(Ctx) error { panic("kaboom") }})
	err := w.Launch(context.Background())
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestContextCancellationStopsWorkflow(t *testing.T) {
	w := New("wf")
	started := make(chan struct{})
	w.Register(Component{Name: "long", Body: func(ctx Ctx) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	err := w.Launch(ctx)
	if err == nil {
		t.Fatal("canceled workflow returned nil")
	}
}

func TestLaunchTwiceFails(t *testing.T) {
	w := New("wf")
	w.Register(Component{Name: "a", Body: func(Ctx) error { return nil }})
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := w.Launch(context.Background()); err == nil {
		t.Fatal("second launch succeeded")
	}
}

func TestComponentsListedInRegistrationOrder(t *testing.T) {
	w := New("wf")
	ok := func(Ctx) error { return nil }
	w.Register(Component{Name: "z", Body: ok})
	w.Register(Component{Name: "a", Body: ok})
	got := w.Components()
	if len(got) != 2 || got[0] != "z" || got[1] != "a" {
		t.Fatalf("components = %v", got)
	}
}

func TestRemoteRankErrorPropagates(t *testing.T) {
	w := New("wf")
	bad := errors.New("rank 2 failed")
	w.Register(Component{Name: "job", Type: Remote, Ranks: 4, Body: func(ctx Ctx) error {
		if ctx.Comm.Rank() == 2 {
			return bad
		}
		return nil
	}})
	if err := w.Launch(context.Background()); !errors.Is(err, bad) {
		t.Fatalf("err = %v, want rank error", err)
	}
}

func TestPlanTopologicalOrder(t *testing.T) {
	w := New("wf")
	ok := func(Ctx) error { return nil }
	w.Register(Component{Name: "train", Deps: []string{"sim", "preprocess"}, Body: ok})
	w.Register(Component{Name: "sim", Deps: []string{"preprocess"}, Body: ok})
	w.Register(Component{Name: "preprocess", Body: ok})
	plan, err := w.Plan()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, name := range plan {
		pos[name] = i
	}
	if !(pos["preprocess"] < pos["sim"] && pos["sim"] < pos["train"]) {
		t.Fatalf("plan = %v, want topological order", plan)
	}
	// Plan does not consume the launch.
	if err := w.Launch(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPlanReportsCycle(t *testing.T) {
	w := New("wf")
	ok := func(Ctx) error { return nil }
	w.Register(Component{Name: "a", Deps: []string{"b"}, Body: ok})
	w.Register(Component{Name: "b", Deps: []string{"a"}, Body: ok})
	if _, err := w.Plan(); err == nil {
		t.Fatal("cyclic plan accepted")
	}
}
