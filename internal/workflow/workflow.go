// Package workflow implements the paper's orchestration layer (§3.5): a
// Workflow of registered components with an explicit dependency DAG,
// launched onto local or "remote" resources. Components whose
// dependencies are satisfied run concurrently; launch type "remote"
// spawns a multi-rank MPI world for the component (the in-process
// analogue of mpirun), while "local" runs a single goroutine (the
// analogue of multiprocessing).
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"simaibench/internal/mpi"
)

// LaunchType selects a component's execution vehicle.
type LaunchType int

// Launch types, mirroring the paper's type="remote"/"local" component
// argument.
const (
	Local LaunchType = iota
	Remote
)

// ParseLaunchType converts a config string.
func ParseLaunchType(s string) (LaunchType, error) {
	switch s {
	case "local", "":
		return Local, nil
	case "remote":
		return Remote, nil
	}
	return Local, fmt.Errorf("workflow: unknown launch type %q", s)
}

// String returns the config name.
func (lt LaunchType) String() string {
	if lt == Remote {
		return "remote"
	}
	return "local"
}

// Ctx is passed to every component body.
type Ctx struct {
	// Context carries cancellation: when any component fails, the rest
	// observe Done.
	context.Context
	// Comm is the component's communicator: a world of Ranks ranks for
	// remote components, nil for local ones.
	Comm *mpi.Comm
	// Component is the component's registered name.
	Component string
}

// Body is a component implementation. For remote components the body
// runs once per rank.
type Body func(ctx Ctx) error

// Component is one registered workflow node.
type Component struct {
	Name  string
	Type  LaunchType
	Ranks int // ranks for Remote (default 1)
	Deps  []string
	Body  Body
}

// Workflow is a DAG of components. Register everything, then Launch.
type Workflow struct {
	name       string
	mu         sync.Mutex
	components map[string]*Component
	order      []string // registration order, for deterministic reporting
	launched   bool
}

// New returns an empty workflow.
func New(name string) *Workflow {
	return &Workflow{name: name, components: make(map[string]*Component)}
}

// Name returns the workflow name.
func (w *Workflow) Name() string { return w.name }

// Register adds a component. It is the Go analogue of the paper's
// @w.component decorator. Errors: duplicate names, nil bodies,
// nonpositive rank counts.
func (w *Workflow) Register(c Component) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if c.Name == "" {
		return errors.New("workflow: component with empty name")
	}
	if _, dup := w.components[c.Name]; dup {
		return fmt.Errorf("workflow: duplicate component %q", c.Name)
	}
	if c.Body == nil {
		return fmt.Errorf("workflow: component %q has no body", c.Name)
	}
	if c.Ranks == 0 {
		c.Ranks = 1
	}
	if c.Ranks < 0 {
		return fmt.Errorf("workflow: component %q has %d ranks", c.Name, c.Ranks)
	}
	cp := c
	cp.Deps = append([]string(nil), c.Deps...)
	w.components[c.Name] = &cp
	w.order = append(w.order, c.Name)
	return nil
}

// Components returns registered names in registration order.
func (w *Workflow) Components() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.order...)
}

// validate checks dependency references and acyclicity, returning a
// topological order.
func (w *Workflow) validate() ([]string, error) {
	indeg := make(map[string]int, len(w.components))
	dependents := make(map[string][]string)
	for name, c := range w.components {
		if _, ok := indeg[name]; !ok {
			indeg[name] = 0
		}
		for _, d := range c.Deps {
			if _, ok := w.components[d]; !ok {
				return nil, fmt.Errorf("workflow: component %q depends on unknown %q", name, d)
			}
			if d == name {
				return nil, fmt.Errorf("workflow: component %q depends on itself", name)
			}
			indeg[name]++
			dependents[d] = append(dependents[d], name)
		}
	}
	// Kahn's algorithm with sorted frontier for determinism.
	var frontier []string
	for name, d := range indeg {
		if d == 0 {
			frontier = append(frontier, name)
		}
	}
	sort.Strings(frontier)
	var topo []string
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		topo = append(topo, n)
		var released []string
		for _, m := range dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				released = append(released, m)
			}
		}
		sort.Strings(released)
		frontier = append(frontier, released...)
	}
	if len(topo) != len(w.components) {
		return nil, errors.New("workflow: dependency cycle detected")
	}
	return topo, nil
}

// Launch validates the DAG and executes it: every component starts as
// soon as all its dependencies have completed successfully, and
// independent components run concurrently. On the first component error
// the shared context is canceled and Launch returns that error after all
// started components finish. A workflow can be launched only once.
func (w *Workflow) Launch(ctx context.Context) error {
	w.mu.Lock()
	if w.launched {
		w.mu.Unlock()
		return errors.New("workflow: already launched")
	}
	w.launched = true
	w.mu.Unlock()

	if _, err := w.validate(); err != nil {
		return err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	done := make(map[string]chan struct{}, len(w.components))
	for name := range w.components {
		done[name] = make(chan struct{})
	}

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	succeeded := make(map[string]bool, len(w.components))
	var okMu sync.Mutex

	for name := range w.components {
		c := w.components[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[c.Name])
			// Wait for dependencies (or cancellation).
			for _, d := range c.Deps {
				select {
				case <-done[d]:
				case <-runCtx.Done():
					return
				}
			}
			okMu.Lock()
			ready := true
			for _, d := range c.Deps {
				if !succeeded[d] {
					ready = false
				}
			}
			okMu.Unlock()
			if !ready || runCtx.Err() != nil {
				return
			}
			if err := w.runComponent(runCtx, c); err != nil {
				fail(fmt.Errorf("workflow %s: component %s: %w", w.name, c.Name, err))
				return
			}
			okMu.Lock()
			succeeded[c.Name] = true
			okMu.Unlock()
		}()
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr == nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return firstErr
}

// runComponent executes one component body on its launch vehicle.
func (w *Workflow) runComponent(ctx context.Context, c *Component) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	switch c.Type {
	case Local:
		return c.Body(Ctx{Context: ctx, Component: c.Name})
	case Remote:
		world := mpi.NewWorld(c.Ranks)
		var mu sync.Mutex
		var rankErr error
		world.Run(func(comm *mpi.Comm) {
			if e := c.Body(Ctx{Context: ctx, Comm: comm, Component: c.Name}); e != nil {
				mu.Lock()
				if rankErr == nil {
					rankErr = e
				}
				mu.Unlock()
			}
		})
		return rankErr
	}
	return fmt.Errorf("unknown launch type %v", c.Type)
}

// Plan returns a topological execution order of the registered
// components without launching them. It is the exported form third-party
// workflow managers consume (the paper's §3.5: components "can be
// exported for use with third-party workflow managers, such as
// RADICAL-Pilot or Parsl"); an error reports cycles or unknown
// dependencies.
func (w *Workflow) Plan() ([]string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.validate()
}
