// Package workflow implements the paper's orchestration layer (§3.5): a
// Workflow of registered components with an explicit dependency DAG,
// launched onto local or "remote" resources. Components whose
// dependencies are satisfied run concurrently; launch type "remote"
// spawns a multi-rank MPI world for the component (the in-process
// analogue of mpirun), while "local" runs a single goroutine (the
// analogue of multiprocessing).
package workflow

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"simaibench/internal/clock"
	"simaibench/internal/mpi"
)

// LaunchType selects a component's execution vehicle.
type LaunchType int

// Launch types, mirroring the paper's type="remote"/"local" component
// argument.
const (
	Local LaunchType = iota
	Remote
)

// ParseLaunchType converts a config string.
func ParseLaunchType(s string) (LaunchType, error) {
	switch s {
	case "local", "":
		return Local, nil
	case "remote":
		return Remote, nil
	}
	return Local, fmt.Errorf("workflow: unknown launch type %q", s)
}

// String returns the config name.
func (lt LaunchType) String() string {
	if lt == Remote {
		return "remote"
	}
	return "local"
}

// Ctx is passed to every component body.
type Ctx struct {
	// Context carries cancellation: when any component fails, the rest
	// observe Done.
	context.Context
	// Comm is the component's communicator: a world of Ranks ranks for
	// remote components, nil for local ones.
	Comm *mpi.Comm
	// Component is the component's registered name.
	Component string
	// Clock is the workflow's emulation clock (WithClock), never nil:
	// bodies pad and timestamp against it so one harness runs in both
	// time domains. Launch handles the participant protocol — bodies
	// must not Join or Leave, but must wrap waits on sibling components
	// that bypass the datastore/MPI layers in Clock.Block.
	Clock clock.Clock
	// Attempt counts restarts of this body: 0 on the first run,
	// incremented each time a Restartable error relaunches it (see
	// Component.MaxRestarts).
	Attempt int
	// Ckpt is the component's checkpoint store: state a body Saves here
	// survives a restart, so attempt n+1 resumes from the last
	// checkpoint instead of from scratch. Shared by all ranks of a
	// remote component (key by rank).
	Ckpt *Checkpoint
}

// Checkpoint is a component's in-memory checkpoint store: the
// restart-recovery analogue of the staged checkpoints the simulated
// campaigns write through internal/costmodel. Safe for concurrent use
// by the ranks of a remote component.
type Checkpoint struct {
	mu   sync.Mutex
	vals map[string]any
}

// NewCheckpoint returns an empty checkpoint store. Launch creates one
// per component automatically; tests and external harnesses may build
// their own.
func NewCheckpoint() *Checkpoint { return &Checkpoint{vals: make(map[string]any)} }

// Save stores v under key, replacing any previous checkpoint.
func (c *Checkpoint) Save(key string, v any) {
	c.mu.Lock()
	c.vals[key] = v
	c.mu.Unlock()
}

// Load returns the last value saved under key.
func (c *Checkpoint) Load(key string) (any, bool) {
	c.mu.Lock()
	v, ok := c.vals[key]
	c.mu.Unlock()
	return v, ok
}

// restartableError marks an error as recoverable by restarting the
// component from its last checkpoint.
type restartableError struct{ err error }

func (e *restartableError) Error() string { return "restartable: " + e.err.Error() }
func (e *restartableError) Unwrap() error { return e.err }

// Restartable wraps err to mark the failure as recoverable: Launch
// re-runs the failing body (up to Component.MaxRestarts times) with the
// same Checkpoint and an incremented Attempt instead of failing the
// workflow. Wrapping nil returns nil.
func Restartable(err error) error {
	if err == nil {
		return nil
	}
	return &restartableError{err: err}
}

// IsRestartable reports whether err (or anything it wraps) was marked
// by Restartable. Panics are never restartable: a panicking body has
// unknown state, and restarting it would mask the bug.
func IsRestartable(err error) bool {
	var re *restartableError
	return errors.As(err, &re)
}

// Body is a component implementation. For remote components the body
// runs once per rank.
type Body func(ctx Ctx) error

// Component is one registered workflow node.
type Component struct {
	Name  string
	Type  LaunchType
	Ranks int // ranks for Remote (default 1)
	Deps  []string
	Body  Body
	// MaxRestarts bounds how many times a body returning a Restartable
	// error is re-run from its last checkpoint (0 = never restart). For
	// remote components each rank restarts independently, re-entering
	// the collectives its siblings are still parked in.
	MaxRestarts int
}

// Option customizes a Workflow at construction.
type Option func(*Workflow)

// WithClock runs the workflow's components against the given emulation
// clock. Launch operates the participant protocol for a clock.Virtual:
// every rank of every dependency-free component is joined before
// anything starts (so virtual time cannot advance until all of them
// sleep — the deterministic start barrier), ranks leave as they finish,
// and a finishing component hands its barrier slots to the dependents
// it releases before leaving, so the handoff cannot let time slip in
// between. Remote components additionally get their MPI world's
// blocking waits bridged through Clock.Block.
func WithClock(c clock.Clock) Option { return func(w *Workflow) { w.clk = c } }

// Workflow is a DAG of components. Register everything, then Launch.
type Workflow struct {
	name       string
	mu         sync.Mutex
	components map[string]*Component
	order      []string // registration order, for deterministic reporting
	launched   bool
	clk        clock.Clock
}

// New returns an empty workflow.
func New(name string, opts ...Option) *Workflow {
	w := &Workflow{name: name, components: make(map[string]*Component), clk: clock.Wall}
	for _, o := range opts {
		o(w)
	}
	return w
}

// Name returns the workflow name.
func (w *Workflow) Name() string { return w.name }

// Clock returns the emulation clock the workflow launches against.
func (w *Workflow) Clock() clock.Clock { return w.clk }

// Register adds a component. It is the Go analogue of the paper's
// @w.component decorator. Errors: duplicate names, nil bodies,
// nonpositive rank counts.
func (w *Workflow) Register(c Component) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if c.Name == "" {
		return errors.New("workflow: component with empty name")
	}
	if _, dup := w.components[c.Name]; dup {
		return fmt.Errorf("workflow: duplicate component %q", c.Name)
	}
	if c.Body == nil {
		return fmt.Errorf("workflow: component %q has no body", c.Name)
	}
	if c.Ranks == 0 {
		c.Ranks = 1
	}
	if c.Ranks < 0 {
		return fmt.Errorf("workflow: component %q has %d ranks", c.Name, c.Ranks)
	}
	cp := c
	cp.Deps = append([]string(nil), c.Deps...)
	w.components[c.Name] = &cp
	w.order = append(w.order, c.Name)
	return nil
}

// Components returns registered names in registration order.
func (w *Workflow) Components() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.order...)
}

// validate checks dependency references and acyclicity, returning a
// topological order.
func (w *Workflow) validate() ([]string, error) {
	indeg := make(map[string]int, len(w.components))
	dependents := make(map[string][]string)
	for name, c := range w.components {
		if _, ok := indeg[name]; !ok {
			indeg[name] = 0
		}
		for _, d := range c.Deps {
			if _, ok := w.components[d]; !ok {
				return nil, fmt.Errorf("workflow: component %q depends on unknown %q", name, d)
			}
			if d == name {
				return nil, fmt.Errorf("workflow: component %q depends on itself", name)
			}
			indeg[name]++
			dependents[d] = append(dependents[d], name)
		}
	}
	// Kahn's algorithm with sorted frontier for determinism.
	var frontier []string
	for name, d := range indeg {
		if d == 0 {
			frontier = append(frontier, name)
		}
	}
	sort.Strings(frontier)
	var topo []string
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		topo = append(topo, n)
		var released []string
		for _, m := range dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				released = append(released, m)
			}
		}
		sort.Strings(released)
		frontier = append(frontier, released...)
	}
	if len(topo) != len(w.components) {
		return nil, errors.New("workflow: dependency cycle detected")
	}
	return topo, nil
}

// ranks returns a component's barrier weight: one participant per rank.
func ranks(c *Component) int {
	if c.Type == Remote {
		return c.Ranks
	}
	return 1
}

// joinPlan operates the clock participant protocol across the DAG (see
// WithClock). All methods are safe for concurrent use.
type joinPlan struct {
	clk clock.Clock
	mu  sync.Mutex
	// pendingDeps counts unfinished successful dependencies; a component
	// is joined when it reaches zero.
	pendingDeps map[string]int
	dependents  map[string][]string
	joined      map[string]bool
	running     map[string]int // ranks of this component still running
	failed      map[string]bool
	// abandoned marks components whose launcher goroutine has already
	// returned without running (cancellation, failed dependency): a
	// later-finishing dependency must not join barrier slots on their
	// behalf, or the slots would leak and stall the barrier forever.
	abandoned map[string]bool
}

// newJoinPlan pre-joins every dependency-free component.
func newJoinPlan(clk clock.Clock, components map[string]*Component) *joinPlan {
	p := &joinPlan{
		clk:         clk,
		pendingDeps: make(map[string]int, len(components)),
		dependents:  make(map[string][]string),
		joined:      make(map[string]bool, len(components)),
		running:     make(map[string]int, len(components)),
		failed:      make(map[string]bool),
		abandoned:   make(map[string]bool),
	}
	for name, c := range components {
		p.pendingDeps[name] = len(c.Deps)
		p.running[name] = ranks(c)
		for _, d := range c.Deps {
			p.dependents[d] = append(p.dependents[d], name)
		}
		if len(c.Deps) == 0 {
			for i := 0; i < ranks(c); i++ {
				clk.Join()
			}
			p.joined[name] = true
		}
	}
	return p
}

// rankDone retires one rank of c: when it is the component's last rank
// and every rank succeeded, the dependents this completion releases are
// joined BEFORE the rank leaves, so the barrier slot transfers without
// a window in which virtual time could advance.
func (p *joinPlan) rankDone(c *Component, components map[string]*Component, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		p.failed[c.Name] = true
	}
	p.running[c.Name]--
	if p.running[c.Name] == 0 && !p.failed[c.Name] {
		for _, dep := range p.dependents[c.Name] {
			p.pendingDeps[dep]--
			// Never join on behalf of a dependent whose goroutine has
			// already given up (cancellation racing a slow finisher):
			// nobody would ever Leave for it.
			if p.pendingDeps[dep] == 0 && !p.joined[dep] && !p.abandoned[dep] {
				for i := 0; i < ranks(components[dep]); i++ {
					p.clk.Join()
				}
				p.joined[dep] = true
			}
		}
	}
	p.clk.Leave()
}

// abandon retires a component that will never run (a dependency failed
// after satisfying others, or the run context was cancelled first):
// its barrier slots are released if it was already joined, and it is
// marked so a dependency finishing later cannot join slots for it.
func (p *joinPlan) abandon(c *Component) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.abandoned[c.Name] = true
	if !p.joined[c.Name] {
		return
	}
	p.joined[c.Name] = false
	for i := 0; i < ranks(c); i++ {
		p.clk.Leave()
	}
}

// Launch validates the DAG and executes it: every component starts as
// soon as all its dependencies have completed successfully, and
// independent components run concurrently. On the first component error
// the shared context is canceled and Launch returns that error after all
// started components finish. A workflow can be launched only once.
func (w *Workflow) Launch(ctx context.Context) error {
	w.mu.Lock()
	if w.launched {
		w.mu.Unlock()
		return errors.New("workflow: already launched")
	}
	w.launched = true
	w.mu.Unlock()

	if _, err := w.validate(); err != nil {
		return err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	plan := newJoinPlan(w.clk, w.components)

	done := make(map[string]chan struct{}, len(w.components))
	for name := range w.components {
		done[name] = make(chan struct{})
	}

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}
	succeeded := make(map[string]bool, len(w.components))
	var okMu sync.Mutex

	for name := range w.components {
		c := w.components[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[c.Name])
			// Wait for dependencies (or cancellation).
			for _, d := range c.Deps {
				select {
				case <-done[d]:
				case <-runCtx.Done():
					plan.abandon(c)
					return
				}
			}
			okMu.Lock()
			ready := true
			for _, d := range c.Deps {
				if !succeeded[d] {
					ready = false
				}
			}
			okMu.Unlock()
			if !ready || runCtx.Err() != nil {
				plan.abandon(c)
				return
			}
			if err := w.runComponent(runCtx, c, plan); err != nil {
				fail(fmt.Errorf("workflow %s: component %s: %w", w.name, c.Name, err))
				return
			}
			okMu.Lock()
			succeeded[c.Name] = true
			okMu.Unlock()
		}()
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	if firstErr == nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return firstErr
}

// runBody executes a component body with restart-from-checkpoint
// semantics: a Restartable error re-runs the body with the same
// Checkpoint and an incremented Attempt, up to MaxRestarts times. The
// barrier slot is retired only after the final attempt, so a
// restarting rank never lets virtual time slip while it relaunches.
func (w *Workflow) runBody(ctx context.Context, c *Component, comm *mpi.Comm, ckpt *Checkpoint) error {
	for attempt := 0; ; attempt++ {
		err := c.Body(Ctx{Context: ctx, Comm: comm, Component: c.Name, Clock: w.clk,
			Attempt: attempt, Ckpt: ckpt})
		if err == nil || !IsRestartable(err) || attempt >= c.MaxRestarts || ctx.Err() != nil {
			return err
		}
	}
}

// runComponent executes one component body on its launch vehicle,
// retiring barrier slots rank by rank as bodies return.
func (w *Workflow) runComponent(ctx context.Context, c *Component, plan *joinPlan) error {
	ckpt := NewCheckpoint()
	switch c.Type {
	case Local:
		var err error
		func() {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("panic: %v", p)
				}
				plan.rankDone(c, w.components, err)
			}()
			err = w.runBody(ctx, c, nil, ckpt)
		}()
		return err
	case Remote:
		world := mpi.NewWorld(c.Ranks)
		world.SetClockBridge(w.clk.Join, w.clk.Leave)
		var mu sync.Mutex
		var rankErr error
		err := func() (err error) {
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("panic: %v", p)
				}
			}()
			world.Run(func(comm *mpi.Comm) {
				var e error
				defer func() {
					if p := recover(); p != nil {
						plan.rankDone(c, w.components, fmt.Errorf("panic: %v", p))
						// Re-panic so World.Run keeps its contract of
						// killing the world and unblocking siblings.
						panic(p)
					}
					plan.rankDone(c, w.components, e)
				}()
				e = w.runBody(ctx, c, comm, ckpt)
				if e != nil {
					mu.Lock()
					if rankErr == nil {
						rankErr = e
					}
					mu.Unlock()
				}
			})
			return nil
		}()
		if err != nil {
			return err
		}
		return rankErr
	}
	plan.rankDone(c, w.components, nil)
	return fmt.Errorf("unknown launch type %v", c.Type)
}

// Plan returns a topological execution order of the registered
// components without launching them. It is the exported form third-party
// workflow managers consume (the paper's §3.5: components "can be
// exported for use with third-party workflow managers, such as
// RADICAL-Pilot or Parsl"); an error reports cycles or unknown
// dependencies.
func (w *Workflow) Plan() ([]string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.validate()
}
