// Package fskv implements the sharded file-backed key-value store the
// paper uses for its node-local and parallel-file-system backends (§3.2):
// keys are hashed with CRC32 to pick a shard directory, and every write
// goes to a temporary file that is atomically renamed to its final
// destination (key.pickle in the original; key.val here) so readers never
// observe partial values.
//
// The same implementation serves two backends: pointed at a tmpfs
// directory it is the "node-local" store; pointed at a shared directory it
// is the "file system" (Lustre-style) store. The paper scales the shard
// count linearly with node count; callers control that through Shards.
package fskv

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"net/url"
	"os"
	"path/filepath"
	"strings"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("fskv: key not found")

// valueExt is the suffix for committed values (the original uses .pickle).
const valueExt = ".val"

// Store is a sharded key-value store rooted at a directory. It is safe
// for concurrent use by multiple goroutines and multiple processes: all
// cross-writer coordination happens through atomic rename.
type Store struct {
	root   string
	shards int
}

// Open creates (if necessary) and returns a store rooted at dir with the
// given shard count (>= 1). Reopening an existing root with the same
// shard count sees all previously committed values.
func Open(dir string, shards int) (*Store, error) {
	if shards < 1 {
		return nil, fmt.Errorf("fskv: shard count %d < 1", shards)
	}
	for i := 0; i < shards; i++ {
		if err := os.MkdirAll(shardPath(dir, i), 0o755); err != nil {
			return nil, fmt.Errorf("fskv: create shard %d: %w", i, err)
		}
	}
	return &Store{root: dir, shards: shards}, nil
}

// Root returns the root directory.
func (s *Store) Root() string { return s.root }

// Shards returns the shard count.
func (s *Store) Shards() int { return s.shards }

func shardPath(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard%04d", i))
}

// Shard returns the shard index for key: CRC32(IEEE) mod shards, matching
// the paper's design.
func (s *Store) Shard(key string) int {
	return int(crc32.ChecksumIEEE([]byte(key)) % uint32(s.shards))
}

// maxNameLen caps the escaped-key filename; longer keys fall back to a
// hashed name (most filesystems limit names to 255 bytes).
const maxNameLen = 200

// longPrefix marks hashed filenames for keys too long to escape inline.
const longPrefix = "long-"

// keyExt is the suffix of the companion file holding the full key for
// hashed names, so Keys can recover them.
const keyExt = ".key"

// fileName returns the base name (without extension) under which key is
// stored, and whether the hashed fallback was used.
func fileName(key string) (name string, hashed bool) {
	esc := url.PathEscape(key)
	if len(esc) <= maxNameLen {
		return esc, false
	}
	sum := sha256.Sum256([]byte(key))
	return longPrefix + hex.EncodeToString(sum[:]), true
}

// path returns the final value path for key. Keys are percent-escaped so
// arbitrary strings (including separators) are valid; very long keys use
// a content-hashed filename with a companion .key file.
func (s *Store) path(key string) string {
	name, _ := fileName(key)
	return filepath.Join(shardPath(s.root, s.Shard(key)), name+valueExt)
}

// Put atomically writes value under key: write to a temp file in the
// shard, fsync-free rename over the final name. Concurrent writers to the
// same key leave one complete value; readers never see partial data.
func (s *Store) Put(key string, value []byte) error {
	final := s.path(key)
	if name, hashed := fileName(key); hashed {
		// Companion file lets Keys recover the original key. Written
		// first so any visible value has a resolvable key.
		keyFile := filepath.Join(filepath.Dir(final), name+keyExt)
		if err := os.WriteFile(keyFile, []byte(key), 0o644); err != nil {
			return fmt.Errorf("fskv: put %q: %w", key, err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), ".tmp-*")
	if err != nil {
		return fmt.Errorf("fskv: put %q: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(value); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fskv: put %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fskv: put %q: %w", key, err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fskv: put %q: %w", key, err)
	}
	return nil
}

// Get returns the value for key, or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("fskv: get %q: %w", key, err)
	}
	return data, nil
}

// Exists reports whether key has a committed value.
func (s *Store) Exists(key string) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

// Delete removes key. Deleting a missing key is not an error, mirroring
// the idempotent clean-up semantics of the paper's clean_staged_data.
func (s *Store) Delete(key string) error {
	final := s.path(key)
	err := os.Remove(final)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("fskv: delete %q: %w", key, err)
	}
	if name, hashed := fileName(key); hashed {
		os.Remove(filepath.Join(filepath.Dir(final), name+keyExt))
	}
	return nil
}

// Keys returns every committed key, in no particular order. Temporary
// files from in-flight writes are skipped.
func (s *Store) Keys() ([]string, error) {
	var keys []string
	for i := 0; i < s.shards; i++ {
		entries, err := os.ReadDir(shardPath(s.root, i))
		if err != nil {
			return nil, fmt.Errorf("fskv: keys: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, valueExt) {
				continue
			}
			base := strings.TrimSuffix(name, valueExt)
			if strings.HasPrefix(base, longPrefix) {
				raw, err := os.ReadFile(filepath.Join(shardPath(s.root, i), base+keyExt))
				if err != nil {
					continue // orphaned hashed value
				}
				keys = append(keys, string(raw))
				continue
			}
			key, err := url.PathUnescape(base)
			if err != nil {
				continue // foreign file in the shard dir
			}
			keys = append(keys, key)
		}
	}
	return keys, nil
}

// Len returns the number of committed keys.
func (s *Store) Len() (int, error) {
	keys, err := s.Keys()
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

// Clean removes every committed value and stray temp file, keeping the
// shard directories so the store stays usable.
func (s *Store) Clean() error {
	for i := 0; i < s.shards; i++ {
		dir := shardPath(s.root, i)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fskv: clean: %w", err)
		}
		for _, e := range entries {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("fskv: clean: %w", err)
			}
		}
	}
	return nil
}

// Destroy removes the entire store directory tree.
func (s *Store) Destroy() error { return os.RemoveAll(s.root) }
