package fskv

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func newStore(t *testing.T, shards int) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), shards)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore(t, 4)
	if err := s.Put("alpha", []byte("value-1")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "value-1" {
		t.Fatalf("got %q, want value-1", got)
	}
}

func TestGetMissingKey(t *testing.T) {
	s := newStore(t, 2)
	_, err := s.Get("nope")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestOverwrite(t *testing.T) {
	s := newStore(t, 2)
	for i := 0; i < 5; i++ {
		if err := s.Put("k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Fatalf("after overwrites got %v, want [4]", got)
	}
}

func TestEmptyValue(t *testing.T) {
	s := newStore(t, 2)
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes, want 0", len(got))
	}
	if !s.Exists("empty") {
		t.Fatal("empty value should still exist")
	}
}

func TestExists(t *testing.T) {
	s := newStore(t, 2)
	if s.Exists("k") {
		t.Fatal("Exists before put")
	}
	s.Put("k", []byte("v"))
	if !s.Exists("k") {
		t.Fatal("!Exists after put")
	}
}

func TestDelete(t *testing.T) {
	s := newStore(t, 2)
	s.Put("k", []byte("v"))
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("k") {
		t.Fatal("key exists after delete")
	}
	// Deleting again is idempotent.
	if err := s.Delete("k"); err != nil {
		t.Fatalf("second delete: %v", err)
	}
}

func TestKeysListing(t *testing.T) {
	s := newStore(t, 8)
	want := []string{"a", "b/with/slashes", "c with spaces", "d%percent", "häagen"}
	for _, k := range want {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

func TestLenAndClean(t *testing.T) {
	s := newStore(t, 4)
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	n, err := s.Len()
	if err != nil || n != 10 {
		t.Fatalf("Len = %d,%v want 10", n, err)
	}
	if err := s.Clean(); err != nil {
		t.Fatal(err)
	}
	n, _ = s.Len()
	if n != 0 {
		t.Fatalf("Len after clean = %d, want 0", n)
	}
	// Store must stay usable after Clean.
	if err := s.Put("again", []byte("v")); err != nil {
		t.Fatalf("put after clean: %v", err)
	}
}

func TestReopenSeesData(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put("persist", []byte("xyz"))
	s2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("persist")
	if err != nil || string(got) != "xyz" {
		t.Fatalf("reopen get = %q,%v", got, err)
	}
}

func TestBadShardCount(t *testing.T) {
	if _, err := Open(t.TempDir(), 0); err == nil {
		t.Fatal("Open with 0 shards succeeded")
	}
}

func TestShardStability(t *testing.T) {
	s := newStore(t, 16)
	for _, k := range []string{"a", "b", "key-42", "workflow/sim/0"} {
		if s.Shard(k) != s.Shard(k) {
			t.Fatalf("shard of %q unstable", k)
		}
		if s.Shard(k) < 0 || s.Shard(k) >= 16 {
			t.Fatalf("shard of %q out of range: %d", k, s.Shard(k))
		}
	}
}

func TestShardDistribution(t *testing.T) {
	// CRC32 sharding should spread many keys roughly evenly; assert no
	// shard is pathologically empty or overloaded.
	s := newStore(t, 8)
	counts := make([]int, 8)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[s.Shard(fmt.Sprintf("rank%d/step%d", i%12, i))]++
	}
	for i, c := range counts {
		if c < n/8/2 || c > n/8*2 {
			t.Fatalf("shard %d count %d far from uniform %d: %v", i, c, n/8, counts)
		}
	}
}

func TestConcurrentWritersAtomicity(t *testing.T) {
	// Many writers hammering one key, many readers: a reader must always
	// see one writer's complete value, never a mix or partial write.
	s := newStore(t, 2)
	const writers, iters = 8, 50
	valueFor := func(w int) []byte {
		return bytes.Repeat([]byte{byte('A' + w)}, 1024)
	}
	s.Put("hot", valueFor(0))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := s.Put("hot", valueFor(w)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	var readerWg sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := s.Get("hot")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if len(got) != 1024 {
					t.Errorf("partial read: %d bytes", len(got))
					return
				}
				for _, b := range got {
					if b != got[0] {
						t.Error("torn value: mixed writer bytes")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWg.Wait()
}

func TestConcurrentDistinctKeys(t *testing.T) {
	s := newStore(t, 8)
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i)
			if err := s.Put(key, []byte(key)); err != nil {
				t.Errorf("put %s: %v", key, err)
			}
		}(i)
	}
	wg.Wait()
	cnt, err := s.Len()
	if err != nil || cnt != n {
		t.Fatalf("Len = %d,%v want %d", cnt, err, n)
	}
}

func TestCleanRemovesStrayTempFiles(t *testing.T) {
	s := newStore(t, 2)
	s.Put("k", []byte("v"))
	// Simulate a crashed writer leaving a temp file behind.
	stray := filepath.Join(s.Root(), "shard0000", ".tmp-crashed")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Keys must skip it...
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k == ".tmp-crashed" {
			t.Fatal("stray temp file listed as key")
		}
	}
	// ...and Clean must remove it.
	if err := s.Clean(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stray temp file survived clean")
	}
}

func TestDestroy(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "store"), 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("k", []byte("v"))
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.Root()); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("root survived destroy")
	}
}

func TestPropertyRoundTripArbitraryKV(t *testing.T) {
	s := newStore(t, 8)
	f := func(key string, value []byte) bool {
		if key == "" {
			key = "-"
		}
		if err := s.Put(key, value); err != nil {
			return false
		}
		got, err := s.Get(key)
		if err != nil {
			return false
		}
		return bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyShardInRange(t *testing.T) {
	f := func(key string, rawShards uint8) bool {
		shards := int(rawShards%32) + 1
		s := &Store{root: "unused", shards: shards}
		sh := s.Shard(key)
		return sh >= 0 && sh < shards
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut1MB(b *testing.B) {
	s, err := Open(b.TempDir(), 8)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i%16), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet1MB(b *testing.B) {
	s, err := Open(b.TempDir(), 8)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 1<<20)
	s.Put("k", val)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get("k"); err != nil {
			b.Fatal(err)
		}
	}
}
