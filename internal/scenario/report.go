package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// A Reporter renders scenario results to a writer. The text reporter
// reproduces the paper tables byte-for-byte (pinned by golden tests);
// JSON and CSV carry the same metrics as machine-readable records.
type Reporter interface {
	Report(w io.Writer, results []*Result) error
}

// Formats lists the -format values accepted by NewReporter.
func Formats() []string { return []string{"text", "json", "csv"} }

// NewReporter returns the reporter for a -format flag value.
func NewReporter(format string) (Reporter, error) {
	switch format {
	case "text":
		return textReporter{}, nil
	case "json":
		return jsonReporter{}, nil
	case "csv":
		return csvReporter{}, nil
	default:
		return nil, fmt.Errorf("unknown format %q (valid: %s)", format, strings.Join(Formats(), ", "))
	}
}

// WriteTable renders one table in paper text layout: title line, header
// line from the columns' HeadFmt, one line per row from CellFmt — or the
// freeform Text body for column-less tables.
func WriteTable(w io.Writer, t Table) error {
	if t.Title != "" {
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
	}
	if len(t.Columns) == 0 {
		_, err := io.WriteString(w, t.Text)
		return err
	}
	headFmts := make([]string, len(t.Columns))
	cellFmts := make([]string, len(t.Columns))
	heads := make([]any, len(t.Columns))
	for i, c := range t.Columns {
		headFmts[i] = c.HeadFmt
		cellFmts[i] = c.CellFmt
		heads[i] = c.Head
	}
	if _, err := fmt.Fprintf(w, strings.Join(headFmts, " ")+"\n", heads...); err != nil {
		return err
	}
	rowFmt := strings.Join(cellFmts, " ") + "\n"
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, rowFmt, row...); err != nil {
			return err
		}
	}
	return nil
}

type textReporter struct{}

func (textReporter) Report(w io.Writer, results []*Result) error {
	for _, res := range results {
		for _, t := range res.Tables {
			if err := WriteTable(w, t); err != nil {
				return err
			}
			// Blank separator after every artifact, as the pre-registry
			// CLI printed between blocks.
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		// Failed sweep cells are rendered explicitly — a partial result
		// must never pass for a complete one. Healthy runs emit nothing
		// here, keeping their output byte-identical.
		if err := writeFailures(w, res); err != nil {
			return err
		}
	}
	return nil
}

// writeFailures renders a result's failed sweep cells as a text block
// shaped like the table artifacts (title, rows, blank separator).
func writeFailures(w io.Writer, res *Result) error {
	if len(res.Failures) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "FAILED cells — %s (%d of the sweep's cells did not complete)\n",
		res.Scenario, len(res.Failures)); err != nil {
		return err
	}
	for _, f := range res.Failures {
		if _, err := fmt.Fprintf(w, "  %s[%d] after %d attempt(s): %s\n",
			f.Sweep, f.Cell, f.Attempts, f.Error); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// MarshalJSON renders a Table as {"title", "columns", "rows"} with rows
// as key→value records (or {"title", "text"} for freeform tables), so
// JSON output needs no knowledge of the text-layout fmt verbs.
func (t Table) MarshalJSON() ([]byte, error) {
	if len(t.Columns) == 0 {
		return json.Marshal(struct {
			Title string `json:"title"`
			Text  string `json:"text"`
		}{t.Title, t.Text})
	}
	keys := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		keys[i] = c.Key
	}
	rows := make([]map[string]any, len(t.Rows))
	for i, row := range t.Rows {
		rec := make(map[string]any, len(row))
		// Ragged rows (possible in user-registered scenarios) drop the
		// excess cells rather than panicking mid-encode.
		for j, v := range row {
			if j >= len(keys) {
				break
			}
			rec[keys[j]] = v
		}
		rows[i] = rec
	}
	return json.Marshal(struct {
		Title   string           `json:"title"`
		Columns []string         `json:"columns"`
		Rows    []map[string]any `json:"rows"`
	}{t.Title, keys, rows})
}

// UnmarshalJSON inverts MarshalJSON so JSON results round-trip (the
// serving client depends on this). The text-layout fmt verbs are not
// part of the wire shape, so decoded Columns carry keys only and
// numeric cells come back as float64.
func (t *Table) UnmarshalJSON(data []byte) error {
	var aux struct {
		Title   string           `json:"title"`
		Text    string           `json:"text"`
		Columns []string         `json:"columns"`
		Rows    []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	t.Title, t.Text = aux.Title, aux.Text
	t.Columns, t.Rows = nil, nil
	for _, k := range aux.Columns {
		t.Columns = append(t.Columns, Column{Key: k})
	}
	for _, rec := range aux.Rows {
		row := make([]any, len(aux.Columns))
		for j, k := range aux.Columns {
			row[j] = rec[k]
		}
		t.Rows = append(t.Rows, row)
	}
	return nil
}

type jsonReporter struct{}

func (jsonReporter) Report(w io.Writer, results []*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Results []*Result `json:"results"`
	}{results})
}

type csvReporter struct{}

func (csvReporter) Report(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	for _, res := range results {
		for _, t := range res.Tables {
			if len(t.Columns) == 0 {
				continue // freeform artifacts (timelines) have no records
			}
			header := []string{"scenario", "table"}
			for _, c := range t.Columns {
				header = append(header, c.Key)
			}
			if err := cw.Write(header); err != nil {
				return err
			}
			for _, row := range t.Rows {
				rec := []string{res.Scenario, t.Title}
				// Bound by the header width so ragged rows from
				// user-registered scenarios cannot emit records wider than
				// the header (matching the JSON marshaller's truncation).
				for j, v := range row {
					if j >= len(t.Columns) {
						break
					}
					rec = append(rec, fmt.Sprint(v))
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
		// Failed sweep cells become their own record block, so CSV
		// consumers see the holes instead of inferring them from missing
		// rows. Healthy runs emit nothing.
		if len(res.Failures) > 0 {
			if err := cw.Write([]string{"scenario", "failed_sweep", "cell", "attempts", "error"}); err != nil {
				return err
			}
			for _, f := range res.Failures {
				rec := []string{res.Scenario, f.Sweep, fmt.Sprint(f.Cell), fmt.Sprint(f.Attempts), f.Error}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
