package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"simaibench/internal/sweep"
)

func failingResult() *Result {
	return &Result{
		Scenario: "demo",
		Tables: []Table{{
			Title:   "Demo table",
			Columns: []Column{{Key: "x", Head: "x", HeadFmt: "%4s", CellFmt: "%4d"}},
			Rows:    [][]any{{1}, {2}},
		}},
		Failures: FailuresFrom("demo/grid", []*sweep.CellError{
			{Index: 3, Attempts: 2, Err: errors.New("panic: saboteur")},
		}),
	}
}

// Failed cells must be explicit in every output format; healthy results
// must render byte-identically whether or not the failure path exists.
func TestReportersRenderFailedCells(t *testing.T) {
	res := failingResult()

	var text bytes.Buffer
	if err := (textReporter{}).Report(&text, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FAILED cells — demo", "demo/grid[3] after 2 attempt(s): panic: saboteur"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, text.String())
		}
	}

	var jsonBuf bytes.Buffer
	if err := (jsonReporter{}).Report(&jsonBuf, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Results []struct {
			Failures []CellFailure `json:"failures"`
		} `json:"results"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	f := decoded.Results[0].Failures
	if len(f) != 1 || f[0].Sweep != "demo/grid" || f[0].Cell != 3 || f[0].Attempts != 2 {
		t.Fatalf("JSON failures = %+v", f)
	}

	var csvBuf bytes.Buffer
	if err := (csvReporter{}).Report(&csvBuf, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "demo,demo/grid,3,2,panic: saboteur") {
		t.Errorf("CSV output missing failure record:\n%s", csvBuf.String())
	}
}

// A result with no failures renders exactly as before the guardrails
// layer existed, in all three formats — the zero-cost contract.
func TestHealthyResultOutputUnchanged(t *testing.T) {
	res := failingResult()
	res.Failures = nil
	for _, format := range Formats() {
		r, err := NewReporter(format)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.Report(&buf, []*Result{res}); err != nil {
			t.Fatal(err)
		}
		for _, forbidden := range []string{"FAILED", "failures", "failed_sweep"} {
			if strings.Contains(buf.String(), forbidden) {
				t.Errorf("%s output of a healthy result mentions %q:\n%s", format, forbidden, buf.String())
			}
		}
	}
}

// Guardrails maps the per-cell params onto the hardened runner's
// options, and merge propagates the new fields from defaults.
func TestParamsGuardrails(t *testing.T) {
	p := Params{TimeoutS: 2.5, Retries: 3}
	opts := p.Guardrails()
	if opts.Timeout != 2500*time.Millisecond || opts.Retries != 3 {
		t.Fatalf("Guardrails() = %+v", opts)
	}
	merged := Params{}.merge(Params{TimeoutS: 1, Retries: 2, MaxEvents: 99})
	if merged.TimeoutS != 1 || merged.Retries != 2 || merged.MaxEvents != 99 {
		t.Fatalf("merge dropped guardrail fields: %+v", merged)
	}
}
