package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The global registry. Scenarios register from package init in
// registration order (which the CLI preserves for -list and groups);
// the mutex makes registration and lookup safe from tests that register
// concurrently.
var registry struct {
	sync.Mutex
	order  []string
	byName map[string]Scenario
	groups map[string][]string
	gorder []string
}

// Register adds s to the global registry. Registering a duplicate or
// empty name, or a name that collides with a group, panics: scenario ids
// are a flat public namespace and a silent overwrite would change what
// an experiment id means.
func Register(s Scenario) {
	registry.Lock()
	defer registry.Unlock()
	name := s.Name()
	if name == "" {
		panic("scenario: Register with empty name")
	}
	if registry.byName == nil {
		registry.byName = make(map[string]Scenario)
	}
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", name))
	}
	if _, dup := registry.groups[name]; dup {
		panic(fmt.Sprintf("scenario: %q already names a group", name))
	}
	registry.byName[name] = s
	registry.order = append(registry.order, name)
}

// RegisterGroup defines a named, ordered set of already-registered
// scenarios runnable as a single experiment id (e.g. "all" = the
// paper's core artifacts). Members must be registered first; unknown
// members and duplicate group names panic.
func RegisterGroup(name string, members ...string) {
	registry.Lock()
	defer registry.Unlock()
	if name == "" || len(members) == 0 {
		panic("scenario: RegisterGroup needs a name and at least one member")
	}
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("scenario: group %q collides with a scenario", name))
	}
	if _, dup := registry.groups[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate group %q", name))
	}
	for _, m := range members {
		if _, ok := registry.byName[m]; !ok {
			panic(fmt.Sprintf("scenario: group %q member %q is not registered", name, m))
		}
	}
	if registry.groups == nil {
		registry.groups = make(map[string][]string)
	}
	registry.groups[name] = append([]string(nil), members...)
	registry.gorder = append(registry.gorder, name)
}

// Lookup returns the scenario registered under name.
func Lookup(name string) (Scenario, bool) {
	registry.Lock()
	defer registry.Unlock()
	s, ok := registry.byName[name]
	return s, ok
}

// All returns every registered scenario in registration order.
func All() []Scenario {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Scenario, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.byName[name])
	}
	return out
}

// Names returns the scenario ids in registration order.
func Names() []string {
	registry.Lock()
	defer registry.Unlock()
	return append([]string(nil), registry.order...)
}

// Groups returns the group names in registration order.
func Groups() []string {
	registry.Lock()
	defer registry.Unlock()
	return append([]string(nil), registry.gorder...)
}

// Resolve expands an experiment id into the scenarios it names: a
// scenario id yields that scenario, a group id its members in group
// order. Unknown ids return an error naming every valid id.
func Resolve(id string) ([]Scenario, error) {
	registry.Lock()
	defer registry.Unlock()
	if s, ok := registry.byName[id]; ok {
		return []Scenario{s}, nil
	}
	if members, ok := registry.groups[id]; ok {
		out := make([]Scenario, len(members))
		for i, m := range members {
			out[i] = registry.byName[m]
		}
		return out, nil
	}
	valid := append(append([]string(nil), registry.order...), registry.gorder...)
	sort.Strings(valid)
	return nil, fmt.Errorf("unknown experiment %q (valid ids: %s)", id, strings.Join(valid, ", "))
}
