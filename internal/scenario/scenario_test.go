package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func stub(name string) Scenario {
	return New(name, "stub scenario "+name, Params{SweepIters: 600},
		func(ctx context.Context, p Params) (*Result, error) {
			return &Result{Scenario: name, Params: p}, nil
		})
}

// resetRegistry isolates registry tests from the package-level state
// other tests (and real registrations) share.
func resetRegistry() {
	registry.Lock()
	defer registry.Unlock()
	registry.order = nil
	registry.byName = nil
	registry.groups = nil
	registry.gorder = nil
}

func TestRegisterDuplicatePanics(t *testing.T) {
	resetRegistry()
	defer resetRegistry()
	Register(stub("dup"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(stub("dup"))
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	resetRegistry()
	defer resetRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name registration did not panic")
		}
	}()
	Register(stub(""))
}

func TestGroupUnknownMemberPanics(t *testing.T) {
	resetRegistry()
	defer resetRegistry()
	Register(stub("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("group with unregistered member did not panic")
		}
	}()
	RegisterGroup("g", "a", "missing")
}

func TestResolveOrderAndErrors(t *testing.T) {
	resetRegistry()
	defer resetRegistry()
	Register(stub("beta"))
	Register(stub("alpha"))
	RegisterGroup("both", "alpha", "beta")

	if got := Names(); got[0] != "beta" || got[1] != "alpha" {
		t.Fatalf("Names() = %v, want registration order", got)
	}
	ss, err := Resolve("both")
	if err != nil || len(ss) != 2 || ss[0].Name() != "alpha" || ss[1].Name() != "beta" {
		t.Fatalf("Resolve(both) = %v, %v", ss, err)
	}
	_, err = Resolve("nope")
	if err == nil {
		t.Fatal("Resolve of unknown id succeeded")
	}
	for _, want := range []string{"alpha", "beta", "both", `"nope"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %s", err, want)
		}
	}
}

func TestDefaultsMergeIntoRun(t *testing.T) {
	var got Params
	s := New("m", "", Params{SweepIters: 600, TimeScale: 0.01},
		func(ctx context.Context, p Params) (*Result, error) {
			got = p
			return &Result{Scenario: "m", Params: p}, nil
		})
	if _, err := s.Run(context.Background(), Params{TimeScale: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got.SweepIters != 600 || got.TimeScale != 0.5 {
		t.Fatalf("merged params = %+v", got)
	}
}

func sampleResult() *Result {
	return &Result{
		Scenario: "sample",
		Tables: []Table{{
			Title: "Sample — a table",
			Columns: []Column{
				{Key: "backend", Head: "backend", HeadFmt: "%-12s", CellFmt: "%-12s"},
				{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			},
			Rows: [][]any{{"redis", 0.4}, {"dragon", 32.0}},
		}, {
			Title: "Sample — freeform",
			Text:  "ascii art\n",
		}},
	}
}

func TestTextReporterLayout(t *testing.T) {
	var buf bytes.Buffer
	r, err := NewReporter("text")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Report(&buf, []*Result{sampleResult()}); err != nil {
		t.Fatal(err)
	}
	want := "Sample — a table\n" +
		"backend        size(MB)\n" +
		"redis              0.40\n" +
		"dragon            32.00\n" +
		"\n" +
		"Sample — freeform\n" +
		"ascii art\n" +
		"\n"
	if buf.String() != want {
		t.Fatalf("text output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestJSONReporterRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	r, _ := NewReporter("json")
	if err := r.Report(&buf, []*Result{sampleResult()}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []struct {
			Scenario string `json:"scenario"`
			Tables   []struct {
				Title   string           `json:"title"`
				Columns []string         `json:"columns"`
				Rows    []map[string]any `json:"rows"`
				Text    string           `json:"text"`
			} `json:"tables"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Results) != 1 || doc.Results[0].Scenario != "sample" {
		t.Fatalf("bad doc: %+v", doc)
	}
	tb := doc.Results[0].Tables[0]
	if tb.Columns[0] != "backend" || tb.Rows[1]["size_mb"].(float64) != 32.0 {
		t.Fatalf("bad table records: %+v", tb)
	}
	if doc.Results[0].Tables[1].Text != "ascii art\n" {
		t.Fatalf("freeform text lost: %+v", doc.Results[0].Tables[1])
	}
}

func TestCSVReporter(t *testing.T) {
	var buf bytes.Buffer
	r, _ := NewReporter("csv")
	if err := r.Report(&buf, []*Result{sampleResult()}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines:\n%s", len(lines), buf.String())
	}
	if lines[0] != "scenario,table,backend,size_mb" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "sample,Sample — a table,redis,0.4") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestCSVReporterRaggedRow(t *testing.T) {
	var buf bytes.Buffer
	r, _ := NewReporter("csv")
	res := &Result{Scenario: "r", Tables: []Table{{
		Title:   "ragged",
		Columns: []Column{{Key: "a", Head: "a", HeadFmt: "%s", CellFmt: "%v"}},
		Rows:    [][]any{{1, 2, 3}},
	}}}
	if err := r.Report(&buf, []*Result{res}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "scenario,table,a" || lines[1] != "r,ragged,1" {
		t.Fatalf("ragged CSV record wider than header:\n%s", buf.String())
	}
}

func TestJSONMarshalRaggedRow(t *testing.T) {
	// A user-registered scenario can build a row with more cells than
	// columns; JSON must drop the excess, not panic.
	tb := Table{
		Title:   "ragged",
		Columns: []Column{{Key: "a", Head: "a", HeadFmt: "%s", CellFmt: "%v"}},
		Rows:    [][]any{{1, 2, 3}},
	}
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != 1 || doc.Rows[0]["a"].(float64) != 1 || len(doc.Rows[0]) != 1 {
		t.Fatalf("ragged row record = %v", doc.Rows[0])
	}
}

func TestNewReporterUnknownFormat(t *testing.T) {
	if _, err := NewReporter("xml"); err == nil || !strings.Contains(err.Error(), "text") {
		t.Fatalf("want error naming valid formats, got %v", err)
	}
}
