package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// This file is the Params canonicalization contract the serving layer's
// result cache rests on: two semantically equal parameter sets must
// serialize to the same bytes and therefore hash to the same cache key.
// encoding/json alone cannot promise that — omitempty drops fields a
// client spelled out explicitly at their default values, and any future
// map-typed field would serialize in random key order, silently
// splitting the cache. CanonicalParams closes both holes: scenario
// defaults are filled in first (so "left blank" and "spelled out" agree)
// and every field is emitted explicitly with recursively sorted keys.

// CanonicalParams returns the deterministic serialization of p for cache
// keying: p is merged with the scenario's defaults (zero fields filled,
// exactly as Run applies them), then rendered as JSON with every field
// explicit — zero values included — and all object keys in sorted order,
// recursively. Two Params that produce the same effective run produce
// identical bytes. The output round-trips through json.Unmarshal back to
// the merged Params.
func CanonicalParams(p, defaults Params) ([]byte, error) {
	return canonicalJSON(reflect.ValueOf(p.merge(defaults)))
}

// CacheKey returns the content address of one (scenario, params, seed)
// run: the hex SHA-256 over the scenario name, the seed and the
// canonical parameter serialization. Virtual-clock runs are
// bit-deterministic per effective parameters (pinned by the determinism
// suites), so equal keys imply equal results — the property that makes
// memoizing simulation results correct by construction.
func CacheKey(scenarioName string, p, defaults Params, seed int64) (string, error) {
	canon, err := CanonicalParams(p, defaults)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00", scenarioName, seed)
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// canonicalJSON renders v as deterministic JSON: struct fields are
// emitted under their json tag names in sorted order with no omitempty
// elision, map keys are sorted, and scalars go through encoding/json
// (shortest-round-trip floats, standard string escaping). Unsupported
// values (NaN, Inf, channels, …) propagate encoding/json's error.
func canonicalJSON(v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return []byte("null"), nil
		}
		return canonicalJSON(v.Elem())
	case reflect.Struct:
		names, fields := canonicalFields(v)
		var b []byte
		b = append(b, '{')
		for i, name := range names {
			if i > 0 {
				b = append(b, ',')
			}
			key, err := json.Marshal(name)
			if err != nil {
				return nil, err
			}
			val, err := canonicalJSON(fields[i])
			if err != nil {
				return nil, err
			}
			b = append(b, key...)
			b = append(b, ':')
			b = append(b, val...)
		}
		return append(b, '}'), nil
	case reflect.Map:
		if v.Type().Key().Kind() != reflect.String {
			return nil, fmt.Errorf("scenario: canonical JSON needs string map keys, got %s", v.Type())
		}
		keys := make([]string, 0, v.Len())
		for _, k := range v.MapKeys() {
			keys = append(keys, k.String())
		}
		sort.Strings(keys)
		var b []byte
		b = append(b, '{')
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			key, err := json.Marshal(k)
			if err != nil {
				return nil, err
			}
			val, err := canonicalJSON(v.MapIndex(reflect.ValueOf(k)))
			if err != nil {
				return nil, err
			}
			b = append(b, key...)
			b = append(b, ':')
			b = append(b, val...)
		}
		return append(b, '}'), nil
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			return []byte("null"), nil
		}
		var b []byte
		b = append(b, '[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b = append(b, ',')
			}
			val, err := canonicalJSON(v.Index(i))
			if err != nil {
				return nil, err
			}
			b = append(b, val...)
		}
		return append(b, ']'), nil
	default:
		return json.Marshal(v.Interface())
	}
}

// canonicalFields returns v's exported json-visible fields as parallel
// (sorted tag name, value) slices. Fields tagged "-" are skipped;
// omitempty is ignored — canonical form is always explicit.
func canonicalFields(v reflect.Value) ([]string, []reflect.Value) {
	t := v.Type()
	type field struct {
		name string
		val  reflect.Value
	}
	fields := make([]field, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		if !sf.IsExported() {
			continue
		}
		name := sf.Name
		if tag, ok := sf.Tag.Lookup("json"); ok {
			base, _, _ := strings.Cut(tag, ",")
			if base == "-" {
				continue
			}
			if base != "" {
				name = base
			}
		}
		fields = append(fields, field{name, v.Field(i)})
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].name < fields[j].name })
	names := make([]string, len(fields))
	vals := make([]reflect.Value, len(fields))
	for i, f := range fields {
		names[i] = f.name
		vals[i] = f.val
	}
	return names, vals
}
