package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The canonicalization contract: semantically equal Params must produce
// identical canonical bytes and therefore identical cache keys, whether
// the caller spelled scenario defaults out explicitly or left them zero,
// and regardless of the JSON key order a request body arrived in.

func TestCanonicalParamsRoundTrip(t *testing.T) {
	defaults := Params{SweepIters: 600, Tenants: 16, Clock: "virtual", TimeScale: 0.01}
	p := Params{SweepIters: 100, Rate: 1.2, Policy: "srpt"}

	canon, err := CanonicalParams(p, defaults)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip: the canonical bytes decode back to exactly the merged
	// params.
	var back Params
	if err := json.Unmarshal(canon, &back); err != nil {
		t.Fatalf("canonical bytes do not parse as JSON: %v\n%s", err, canon)
	}
	want := p.merge(defaults)
	if back != want {
		t.Fatalf("round-trip = %+v, want merged %+v", back, want)
	}
	// Stability: re-canonicalizing the round-tripped params reproduces
	// the identical bytes.
	again, err := CanonicalParams(back, defaults)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, again) {
		t.Fatalf("canonical form not stable:\n%s\n%s", canon, again)
	}
}

func TestCanonicalParamsExplicitAndSorted(t *testing.T) {
	canon, err := CanonicalParams(Params{}, Params{SweepIters: 600})
	if err != nil {
		t.Fatal(err)
	}
	// Every field is explicit: zero-valued fields appear rather than
	// being omitempty-elided, so "left blank" and "spelled out at zero"
	// canonicalize identically.
	var m map[string]any
	if err := json.Unmarshal(canon, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"sweep_iters", "train_iters", "timeout_s", "max_events", "clock", "workers"} {
		if _, ok := m[key]; !ok {
			t.Errorf("canonical form missing explicit field %q:\n%s", key, canon)
		}
	}
	// Keys appear in sorted order in the serialized bytes.
	var keys []string
	dec := json.NewDecoder(bytes.NewReader(canon))
	dec.Token() // {
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			t.Fatal(err)
		}
		if k, ok := tok.(string); ok {
			keys = append(keys, k)
			var discard any
			if err := dec.Decode(&discard); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("canonical keys not sorted: %q before %q\n%s", keys[i-1], keys[i], canon)
		}
	}
}

// Two semantically equal parameter sets — one leaving scenario defaults
// implicit, one spelling every default out — must hash to the same key;
// different effective params, or a different seed, must not.
func TestCacheKeyStability(t *testing.T) {
	defaults := Params{SweepIters: 600, Tenants: 16, Clock: "virtual"}

	implicit := Params{Rate: 0.7}
	explicit := Params{Rate: 0.7, SweepIters: 600, Tenants: 16, Clock: "virtual"}

	k1, err := CacheKey("campaign", implicit, defaults, 42)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey("campaign", explicit, defaults, 42)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("semantically equal params split the cache: %s vs %s", k1, k2)
	}

	k3, _ := CacheKey("campaign", Params{Rate: 1.2}, defaults, 42)
	if k3 == k1 {
		t.Error("different rate collides with the same key")
	}
	k4, _ := CacheKey("campaign", implicit, defaults, 43)
	if k4 == k1 {
		t.Error("different seed collides with the same key")
	}
	k5, _ := CacheKey("scale-out", implicit, defaults, 42)
	if k5 == k1 {
		t.Error("different scenario collides with the same key")
	}
	if len(k1) != 64 || strings.ToLower(k1) != k1 {
		t.Errorf("key %q is not lowercase hex sha-256", k1)
	}
}

// A request body's JSON key order must not affect the key: two
// orderings of the same document decode to the same Params and
// therefore the same canonical bytes — the decode-then-canonicalize
// discipline that keeps map-ordering out of the cache key.
func TestCacheKeyInvariantUnderJSONKeyOrder(t *testing.T) {
	defaults := Params{SweepIters: 600}
	bodies := []string{
		`{"sweep_iters": 100, "rate": 1.2, "policy": "srpt"}`,
		`{"policy": "srpt", "rate": 1.2, "sweep_iters": 100}`,
	}
	var keys []string
	for _, body := range bodies {
		var p Params
		if err := json.Unmarshal([]byte(body), &p); err != nil {
			t.Fatal(err)
		}
		k, err := CacheKey("campaign", p, defaults, 0)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if keys[0] != keys[1] {
		t.Errorf("JSON key order split the cache: %s vs %s", keys[0], keys[1])
	}
}
