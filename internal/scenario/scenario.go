// Package scenario is the registry-driven experiment framework: every
// workload this repo can run — the paper's tables and figures, the
// streaming extension, the ablations, and any future scenario — is a
// Scenario registered under a stable id, returning structured Results
// that pluggable reporters render as paper-identical text tables, JSON,
// or CSV.
//
// Adding a workload is one Register call:
//
//	scenario.Register(scenario.New("myscenario", "what it shows",
//		scenario.Params{SweepIters: 600},
//		func(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
//			pts, err := sweep.Grid(ctx, backends, sizes, runOnePoint)
//			...
//			return &scenario.Result{Scenario: "myscenario", Tables: ...}, nil
//		}))
//
// The cmd/experiments CLI and the pkg/simaibench library API both
// enumerate the same registry.
package scenario

import (
	"context"
	"time"

	"simaibench/internal/sweep"
)

// Params are the shared runtime knobs every scenario understands. The
// zero value means "use this scenario's defaults"; a Scenario's
// Defaults() carries the paper's values.
type Params struct {
	// TrainIters: real-mode validation training iterations (paper: 5000).
	TrainIters int `json:"train_iters,omitempty"`
	// SweepIters: simulated training iterations per sweep point (600
	// preserves the steady-state statistics of the paper's >=2500).
	SweepIters int `json:"sweep_iters,omitempty"`
	// TimeScale: wall-clock compression for real-mode runs (paper runs in
	// real time; 0.01 compresses a 300-virtual-second run to ~3 s).
	TimeScale float64 `json:"time_scale,omitempty"`
	// Transfers: write/read pairs per Fig-5 point (50).
	Transfers int `json:"transfers,omitempty"`
	// TimelineWindowS: emulated seconds of timeline rendered by Fig 2 (25).
	TimelineWindowS float64 `json:"timeline_window_s,omitempty"`
	// Tenants caps the co-scheduled workflow count of the multi-tenant
	// scale-out family: the tenant sweep doubles 1, 2, 4, … up to this
	// value (16).
	Tenants int `json:"tenants,omitempty"`
	// Clock selects the emulation time domain of the real-mode
	// scenarios (table2/table3/fig2, streaming): "virtual" (their
	// default) pads on a deterministic virtual clock and runs at DES
	// speed; "wall" keeps the genuine wall-clock emulation. The
	// simulated-scale scenarios always run on DES virtual time and
	// ignore this.
	Clock string `json:"clock,omitempty"`
	// MTBF narrows the resilience family's per-node mean-time-between-
	// failures sweep to {healthy, MTBF} seconds (0 = the scenario's full
	// default grid).
	MTBF float64 `json:"mtbf_s,omitempty"`
	// CkptInterval narrows the resilience family's checkpoint-cadence
	// sweep to {fail-stop, CkptInterval} seconds (0 = the full default
	// grid).
	CkptInterval float64 `json:"ckpt_interval_s,omitempty"`
	// Rate narrows the campaign family's offered-load sweep to the
	// single multiple of facility capacity (0 = the full default grid,
	// e.g. 1.2 = 20% overload).
	Rate float64 `json:"rate,omitempty"`
	// Policy narrows the campaign family's scheduling-policy sweep to
	// one policy id (empty = all built-in policies).
	Policy string `json:"policy,omitempty"`
	// Jobs sets the campaign family's open-loop job count per sweep
	// cell (0 = the scenario default).
	Jobs int `json:"jobs,omitempty"`
	// TimeoutS is the per-sweep-cell wall-clock deadline in seconds
	// (0 = none): a cell that hangs — e.g. on a mis-joined virtual-clock
	// barrier — is abandoned with a structured failure instead of
	// wedging the whole run.
	TimeoutS float64 `json:"timeout_s,omitempty"`
	// Retries grants each sweep cell extra attempts when it fails with a
	// retryable error (0 = fail on first error).
	Retries int `json:"retries,omitempty"`
	// MaxEvents caps the DES events each simulated sweep cell may
	// execute (0 = unlimited); a runaway cell aborts with a structured
	// budget error instead of looping forever.
	MaxEvents int64 `json:"max_events,omitempty"`
	// Workers selects the parallel DES engine for the simulated-scale
	// cells that support it (fig3/fig4/scale-out/gradsync): with
	// Workers > 1 each cell partitions into logical processes advanced
	// by up to that many cores (des.LPSet); 0 or 1 keeps the sequential
	// engine. Metrics are bit-identical for every value — Workers only
	// trades wall-clock.
	Workers int `json:"workers,omitempty"`
	// CollAlgo narrows the gradsync family's collective-algorithm sweep
	// to one algorithm: "flat", "ring", "tree" or "hier" (empty = the
	// full algorithm axis; other scenarios ignore it). Threaded into
	// costmodel.Params.CollAlgo, whose empty default prices collectives
	// as the legacy flat rendezvous.
	CollAlgo string `json:"coll_algo,omitempty"`
}

// Guardrails converts the params' per-cell guardrail knobs into the
// hardened sweep runner's options. (The event budget is not a sweep
// option: scenarios thread MaxEvents into each cell's des.Env guard.)
func (p Params) Guardrails() sweep.Options {
	return sweep.Options{
		Timeout: time.Duration(p.TimeoutS * float64(time.Second)),
		Retries: p.Retries,
	}
}

// merge fills zero fields of p from d.
func (p Params) merge(d Params) Params {
	if p.TrainIters == 0 {
		p.TrainIters = d.TrainIters
	}
	if p.SweepIters == 0 {
		p.SweepIters = d.SweepIters
	}
	if p.TimeScale == 0 {
		p.TimeScale = d.TimeScale
	}
	if p.Transfers == 0 {
		p.Transfers = d.Transfers
	}
	if p.TimelineWindowS == 0 {
		p.TimelineWindowS = d.TimelineWindowS
	}
	if p.Tenants == 0 {
		p.Tenants = d.Tenants
	}
	if p.Clock == "" {
		p.Clock = d.Clock
	}
	if p.MTBF == 0 {
		p.MTBF = d.MTBF
	}
	if p.CkptInterval == 0 {
		p.CkptInterval = d.CkptInterval
	}
	if p.Rate == 0 {
		p.Rate = d.Rate
	}
	if p.Policy == "" {
		p.Policy = d.Policy
	}
	if p.Jobs == 0 {
		p.Jobs = d.Jobs
	}
	if p.TimeoutS == 0 {
		p.TimeoutS = d.TimeoutS
	}
	if p.Retries == 0 {
		p.Retries = d.Retries
	}
	if p.MaxEvents == 0 {
		p.MaxEvents = d.MaxEvents
	}
	if p.Workers == 0 {
		p.Workers = d.Workers
	}
	if p.CollAlgo == "" {
		p.CollAlgo = d.CollAlgo
	}
	return p
}

// Scenario is one registered experiment: a named, self-describing
// workload with paper-default parameters and a context-cancellable run.
type Scenario interface {
	// Name is the stable id used by -exp and the library API.
	Name() string
	// Description is the one-line summary shown by -list.
	Description() string
	// Defaults are the paper's parameter values for this scenario.
	Defaults() Params
	// Run executes the scenario; zero fields of p fall back to Defaults.
	Run(ctx context.Context, p Params) (*Result, error)
}

// RunFunc is the body of a func-backed Scenario. It receives params with
// defaults already applied.
type RunFunc func(ctx context.Context, p Params) (*Result, error)

// funcScenario adapts a RunFunc to the Scenario interface.
type funcScenario struct {
	name, desc string
	defaults   Params
	run        RunFunc
}

// New builds a Scenario from a name, description, paper-default params
// and a run function.
func New(name, desc string, defaults Params, run RunFunc) Scenario {
	return &funcScenario{name: name, desc: desc, defaults: defaults, run: run}
}

func (s *funcScenario) Name() string        { return s.name }
func (s *funcScenario) Description() string { return s.desc }
func (s *funcScenario) Defaults() Params    { return s.defaults }

func (s *funcScenario) Run(ctx context.Context, p Params) (*Result, error) {
	return s.run(ctx, p.merge(s.defaults))
}

// Result is the structured outcome of one scenario run: one or more
// tables of named-column records. The same Result feeds the text, JSON
// and CSV reporters, so machine-readable artifacts come from the exact
// path that produces the paper tables.
type Result struct {
	Scenario string  `json:"scenario"`
	Params   Params  `json:"params"`
	Tables   []Table `json:"tables"`
	// Failures lists sweep cells that failed under the run guardrails —
	// panics, budget trips, timeouts — while the rest of the sweep
	// completed. Empty on healthy runs (and omitted from JSON), so
	// healthy output is byte-identical with guardrails on.
	Failures []CellFailure `json:"failures,omitempty"`
}

// CellFailure records one failed sweep cell of a scenario run, in the
// reporters' render path so failed cells are explicit in text, JSON and
// CSV output instead of silently missing rows.
type CellFailure struct {
	// Sweep labels which of the scenario's sweeps the cell belongs to
	// (e.g. "fig3/512", "scale-out/redis").
	Sweep string `json:"sweep"`
	// Cell is the cell's index in the sweep's enumeration order.
	Cell int `json:"cell"`
	// Attempts is how many attempts the guarded runner made.
	Attempts int `json:"attempts,omitempty"`
	// Error is the structured cell failure rendered as text.
	Error string `json:"error"`
}

// FailuresFrom converts the hardened sweep runner's cell errors into
// scenario failure records under one sweep label.
func FailuresFrom(sweepLabel string, errs []*sweep.CellError) []CellFailure {
	out := make([]CellFailure, 0, len(errs))
	for _, ce := range errs {
		out = append(out, CellFailure{
			Sweep: sweepLabel, Cell: ce.Index, Attempts: ce.Attempts,
			Error: ce.Err.Error(),
		})
	}
	return out
}

// Table is one rendered artifact: either a column-formatted table
// (Columns + Rows) or a freeform text block (Text, e.g. the Fig 2 ASCII
// timelines).
type Table struct {
	// Title is printed verbatim above the table.
	Title string
	// Columns describe the cells of each row; nil for freeform tables.
	Columns []Column
	// Rows hold one value per column, in column order.
	Rows [][]any
	// Text is the freeform body when Columns is nil; must end with "\n".
	Text string
}

// Column is one table column: a machine-readable key for JSON/CSV plus
// the header label and fmt verbs that pin the text rendering to the
// paper tables' exact layout.
type Column struct {
	// Key names the value in JSON and CSV records (snake_case).
	Key string
	// Head is the text-mode header label, e.g. "write(GB/s)".
	Head string
	// HeadFmt formats Head in the header line, e.g. "%10s".
	HeadFmt string
	// CellFmt formats the cell value in a row, e.g. "%10.2f".
	CellFmt string
}
