package loadgen

import (
	"math"
	"testing"

	"simaibench/internal/dist"
)

// testConfig is a small campaign with every modulation axis enabled.
func testConfig() Config {
	return Config{
		Seed:           42,
		RatePerS:       0.5,
		Jobs:           500,
		Tenants:        8,
		DiurnalAmp:     0.4,
		DiurnalPeriodS: 600,
		BurstFactor:    3,
		BurstMTBS:      400,
		BurstDurS:      60,
		Classes:        DefaultClasses(),
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 500 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if Signature(a) != Signature(b) {
		t.Fatal("signatures differ on identical job lists")
	}
	cfg := testConfig()
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Signature(a) == Signature(c) {
		t.Fatal("different seeds produced identical signatures")
	}
}

func TestGenerateJobInvariants(t *testing.T) {
	jobs, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for _, j := range jobs {
		if j.ArriveS < last {
			t.Fatalf("job %d arrives at %v before predecessor %v", j.ID, j.ArriveS, last)
		}
		last = j.ArriveS
		if j.Nodes < 1 {
			t.Fatalf("job %d requests %d nodes", j.ID, j.Nodes)
		}
		if !(j.ServiceS > 0) {
			t.Fatalf("job %d service %v", j.ID, j.ServiceS)
		}
		if j.DeadlineS < j.ArriveS+j.ServiceS {
			t.Fatalf("job %d deadline %v before earliest possible finish %v",
				j.ID, j.DeadlineS, j.ArriveS+j.ServiceS)
		}
		if j.Tenant < 0 || j.Tenant >= 8 {
			t.Fatalf("job %d tenant %d", j.ID, j.Tenant)
		}
		if j.Class == "" {
			t.Fatalf("job %d has no class", j.ID)
		}
	}
}

// TestClassMixDoesNotShiftArrivals pins the stream discipline: the
// arrival instants live on their own rng stream, so reweighting the
// class mix must leave every arrival time untouched.
func TestClassMixDoesNotShiftArrivals(t *testing.T) {
	base, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Classes = append([]Class{}, cfg.Classes...)
	cfg.Classes[0].Weight = 5 // drastically reweight the mix
	skewed, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i].ArriveS != skewed[i].ArriveS {
			t.Fatalf("arrival %d shifted under class reweighting: %v vs %v",
				i, base[i].ArriveS, skewed[i].ArriveS)
		}
	}
}

// TestAttributesStableUnderRateChange pins the per-class attribute
// streams: the i-th job of a class keeps its size/service/slack draws
// when the arrival rate changes, because attributes are drawn from the
// class's own stream in acceptance order.
func TestAttributesStableUnderRateChange(t *testing.T) {
	slow, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.RatePerS *= 4
	fast, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type attrs struct {
		nodes          int
		service, slack float64
	}
	perClass := func(jobs []Job) map[string][]attrs {
		m := map[string][]attrs{}
		for _, j := range jobs {
			m[j.Class] = append(m[j.Class], attrs{j.Nodes, j.ServiceS, j.DeadlineS - j.ArriveS - j.ServiceS})
		}
		return m
	}
	a, b := perClass(slow), perClass(fast)
	for class, as := range a {
		bs := b[class]
		n := len(as)
		if len(bs) < n {
			n = len(bs)
		}
		for i := 0; i < n; i++ {
			// Nodes and service are the raw draws; slack is reconstructed
			// from the absolute deadline, so it reassociates with the
			// (different) arrival time — compare within float tolerance.
			if as[i].nodes != bs[i].nodes || as[i].service != bs[i].service ||
				math.Abs(as[i].slack-bs[i].slack) > 1e-9 {
				t.Fatalf("%s job %d attributes changed under rate change: %+v vs %+v",
					class, i, as[i], bs[i])
			}
		}
	}
}

// TestEmpiricalRateTracksConfig sanity-checks the thinning: without
// modulation the realized rate must be close to the configured one.
func TestEmpiricalRateTracksConfig(t *testing.T) {
	cfg := Config{
		Seed: 7, RatePerS: 2, Jobs: 20000, Classes: DefaultClasses(),
	}
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := jobs[len(jobs)-1].ArriveS - jobs[0].ArriveS
	got := float64(len(jobs)-1) / span
	if math.Abs(got-2) > 0.1 {
		t.Fatalf("empirical rate %v, want ~2", got)
	}
}

// TestBurstsRaiseLocalRate verifies the bursty axis actually modulates:
// with a high burst factor the tightest inter-arrival windows should be
// far denser than the base rate alone produces.
func TestBurstsRaiseLocalRate(t *testing.T) {
	base := Config{Seed: 11, RatePerS: 0.5, Jobs: 4000, Classes: DefaultClasses()}
	bursty := base
	bursty.BurstFactor, bursty.BurstMTBS, bursty.BurstDurS = 8, 500, 100
	peak := func(cfg Config) float64 {
		jobs, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Densest 50-job window rate.
		best := 0.0
		for i := 0; i+50 < len(jobs); i++ {
			w := jobs[i+50].ArriveS - jobs[i].ArriveS
			if r := 50 / w; r > best {
				best = r
			}
		}
		return best
	}
	if pb, pp := peak(base), peak(bursty); pp < 2*pb {
		t.Fatalf("burst peak rate %v not clearly above base peak %v", pp, pb)
	}
}

func TestOfferedLoadRoundTrip(t *testing.T) {
	cfg := testConfig()
	rate := cfg.RateForLoad(0.9, 64)
	cfg.RatePerS = rate
	if got := cfg.OfferedLoad(64); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("offered load %v, want 0.9", got)
	}
	if cfg.NodeSecondsPerJob() <= 0 {
		t.Fatal("non-positive node-seconds per job")
	}
}

func TestValidateRejectsDegenerateConfigs(t *testing.T) {
	ok := testConfig()
	for name, mut := range map[string]func(*Config){
		"zero rate":       func(c *Config) { c.RatePerS = 0 },
		"negative rate":   func(c *Config) { c.RatePerS = -1 },
		"NaN rate":        func(c *Config) { c.RatePerS = math.NaN() },
		"no jobs":         func(c *Config) { c.Jobs = 0 },
		"diurnal amp >=1": func(c *Config) { c.DiurnalAmp = 1 },
		"diurnal no period": func(c *Config) {
			c.DiurnalAmp = 0.5
			c.DiurnalPeriodS = 0
		},
		"burst factor <1": func(c *Config) { c.BurstFactor = 0.5 },
		"burst no mtbs": func(c *Config) {
			c.BurstFactor = 2
			c.BurstMTBS = 0
		},
		"no classes": func(c *Config) { c.Classes = nil },
		"bad class weight": func(c *Config) {
			c.Classes = append([]Class{}, c.Classes...)
			c.Classes[0].Weight = 0
		},
		"nil sampler": func(c *Config) {
			c.Classes = append([]Class{}, c.Classes...)
			c.Classes[0].ServiceS = nil
		},
	} {
		cfg := ok
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("%s: Generate accepted the config", name)
		}
	}
	if _, err := Generate(ok); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDefaultClassesShape(t *testing.T) {
	classes := DefaultClasses()
	if len(classes) != 3 {
		t.Fatalf("%d classes", len(classes))
	}
	// The mix must have meaningful size variance: the large class's
	// footprint dominates the small class's by well over an order of
	// magnitude (what separates size-aware policies from FIFO).
	small, large := classes[0].NodeSeconds(), classes[2].NodeSeconds()
	if large < 10*small {
		t.Fatalf("footprints too close: small %v, large %v", small, large)
	}
	for _, cl := range classes {
		if err := cl.validate(); err != nil {
			t.Errorf("default class %s invalid: %v", cl.Name, err)
		}
	}
	// Sanity: a fixed-node class with a validated sampler keeps mean 1.
	if classes[0].Nodes.(dist.Fixed) != 1 {
		t.Fatalf("table2 class nodes = %v", classes[0].Nodes)
	}
}
