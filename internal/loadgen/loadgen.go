// Package loadgen is the open-loop traffic source of the facility-scale
// campaign scenarios: a stochastic arrival process that submits workflow
// jobs to the global scheduler (internal/schedule) the way real users
// submit to a shared cluster — independent of how fast the facility
// drains them. Everything before this package is closed-loop (N tenants
// launched at t=0 and re-issuing work as soon as the previous finishes);
// an open-loop stream is what exposes queueing delay, slowdown tails
// and fairness under overload, the service-level observables a paper
// table of per-run makespans cannot show.
//
// The arrival process is a non-homogeneous Poisson stream — a base rate
// modulated by a diurnal sine and bursty episodes — realized by Lewis &
// Shedler thinning. Jobs are drawn from a weighted mix of classes shaped
// after this repo's scenario families (validation-, scale-out- and
// resilience-like workflows), each with its own node-count, service-time
// and deadline-slack samplers.
//
// Determinism follows the fault-injection layer's stream discipline:
// every stochastic axis (arrival thinning, burst windows, class mix,
// tenant assignment, per-class attributes) draws from its own rng
// stream seeded from (Config.Seed, axis). Two Generate calls with equal
// configs return bit-identical job lists, and — since generation never
// sees the scheduler — the arrival timeline is invariant under
// scheduling-policy choice, so a policy sweep judges every policy
// against the same offered traffic.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"

	"simaibench/internal/dist"
)

// Class is one job species of the facility mix: a relative weight plus
// the samplers that shape its members.
type Class struct {
	// Name labels the class in job records and reports.
	Name string
	// Weight is the class's relative share of arrivals (> 0).
	Weight float64
	// Nodes samples the node-count request (rounded to the nearest
	// integer, floored at 1).
	Nodes dist.Sampler
	// ServiceS samples the nominal service time in virtual seconds: how
	// long the job occupies its nodes once placed, absent disturbances.
	ServiceS dist.Sampler
	// SlackS samples the deadline slack: a job arriving at t with
	// service s is due at t + s + slack (the EDF policy's input).
	SlackS dist.Sampler
}

// validate reports a misconfigured class.
func (c Class) validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("loadgen: class with empty name")
	case !(c.Weight > 0) || math.IsInf(c.Weight, 0):
		return fmt.Errorf("loadgen: class %s weight %v", c.Name, c.Weight)
	case c.Nodes == nil || c.ServiceS == nil || c.SlackS == nil:
		return fmt.Errorf("loadgen: class %s has nil samplers", c.Name)
	}
	return nil
}

// NodeSeconds returns the class's expected footprint per job,
// E[nodes]·E[service] node-seconds — the quantity capacity planning
// divides the facility's node count by. (Node count and service time
// are drawn independently, so the product of means is the mean of the
// product.)
func (c Class) NodeSeconds() float64 { return c.Nodes.Mean() * c.ServiceS.Mean() }

// Config describes one open-loop arrival campaign. The zero value is
// invalid; fill RatePerS, Jobs and Classes (or use DefaultClasses) and
// Validate.
type Config struct {
	// Seed roots every stochastic axis; equal seeds give bit-identical
	// job lists.
	Seed int64
	// RatePerS is the base mean arrival rate in jobs per virtual second.
	RatePerS float64
	// Jobs is the number of arrivals to generate.
	Jobs int
	// Tenants spreads jobs over this many submitting tenants (round
	// numbers drawn uniformly from their own stream); < 1 means 1.
	Tenants int
	// DiurnalAmp is the amplitude of the sinusoidal rate modulation in
	// [0, 1): λ(t) scales by 1 + DiurnalAmp·sin(2πt/DiurnalPeriodS).
	// 0 disables the diurnal axis.
	DiurnalAmp float64
	// DiurnalPeriodS is the modulation period (required when
	// DiurnalAmp > 0).
	DiurnalPeriodS float64
	// BurstFactor multiplies the rate during burst episodes (>= 1;
	// 1 disables the bursty axis).
	BurstFactor float64
	// BurstMTBS is the mean gap between burst episodes (exponential,
	// drawn on the burst stream).
	BurstMTBS float64
	// BurstDurS is the episode duration.
	BurstDurS float64
	// Classes is the weighted job mix.
	Classes []Class
}

// Validate reports configuration errors: degenerate rates, modulation
// parameters outside their domains, or a malformed class mix. Generate
// calls it, so misconfiguration fails fast instead of producing NaN
// arrival times.
func (c Config) Validate() error {
	if !(c.RatePerS > 0) || math.IsInf(c.RatePerS, 0) {
		return fmt.Errorf("loadgen: arrival rate must be finite and > 0, got %v", c.RatePerS)
	}
	if c.Jobs < 1 {
		return fmt.Errorf("loadgen: %d jobs", c.Jobs)
	}
	if c.DiurnalAmp < 0 || c.DiurnalAmp >= 1 || math.IsNaN(c.DiurnalAmp) {
		return fmt.Errorf("loadgen: diurnal amplitude %v outside [0, 1)", c.DiurnalAmp)
	}
	if c.DiurnalAmp > 0 && !(c.DiurnalPeriodS > 0) {
		return fmt.Errorf("loadgen: diurnal period %v with amplitude %v", c.DiurnalPeriodS, c.DiurnalAmp)
	}
	if c.BurstFactor != 0 && c.BurstFactor < 1 {
		return fmt.Errorf("loadgen: burst factor %v < 1", c.BurstFactor)
	}
	if c.BurstFactor > 1 && (!(c.BurstMTBS > 0) || !(c.BurstDurS > 0)) {
		return fmt.Errorf("loadgen: burst factor %v needs positive MTBS and duration", c.BurstFactor)
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("loadgen: no job classes")
	}
	for _, cl := range c.Classes {
		if err := cl.validate(); err != nil {
			return err
		}
	}
	return nil
}

// NodeSecondsPerJob returns the expected facility footprint of one
// arrival under the weighted class mix.
func (c Config) NodeSecondsPerJob() float64 {
	var total, weight float64
	for _, cl := range c.Classes {
		total += cl.Weight * cl.NodeSeconds()
		weight += cl.Weight
	}
	if weight == 0 {
		return 0
	}
	return total / weight
}

// OfferedLoad returns the campaign's offered utilization of a facility
// with the given node count: λ·E[nodes·service]/N. Values above 1 mean
// overload — the queue grows until arrivals stop.
func (c Config) OfferedLoad(facilityNodes int) float64 {
	if facilityNodes < 1 {
		return math.Inf(1)
	}
	return c.RatePerS * c.NodeSecondsPerJob() / float64(facilityNodes)
}

// RateForLoad returns the base arrival rate that offers the given
// utilization on a facility of the given size under this config's class
// mix — how the campaign scenario turns "0.7× capacity" into jobs per
// second.
func (c Config) RateForLoad(load float64, facilityNodes int) float64 {
	ns := c.NodeSecondsPerJob()
	if ns <= 0 {
		return 0
	}
	return load * float64(facilityNodes) / ns
}

// Job is one generated arrival: the vocabulary the global scheduler
// consumes.
type Job struct {
	// ID numbers jobs in arrival order, 0-based.
	ID int
	// Tenant identifies the submitting tenant (0-based), the fairness
	// dimension of the campaign reports.
	Tenant int
	// Class names the job's species.
	Class string
	// ArriveS is the submission time in virtual seconds.
	ArriveS float64
	// Nodes is the node-count request (>= 1).
	Nodes int
	// ServiceS is the nominal service time once placed.
	ServiceS float64
	// DeadlineS is the absolute due time: ArriveS + ServiceS + slack.
	DeadlineS float64
}

// Stream axes: every stochastic dimension draws from its own rand
// stream seeded from (Seed, axis), so e.g. reweighting the class mix
// cannot shift arrival instants and raising the rate cannot change
// which class (or size) the i-th job gets.
const (
	axisArrival = 1 + iota // thinning candidates + accept draws
	axisBurst              // burst-window gaps
	axisClass              // class mix picks
	axisTenant             // tenant assignment
	axisAttrs              // base for per-class attribute streams (axisAttrs+i)
)

// axisRNG returns the seeded stream for one axis, independent across
// axes and seeds (same mixing constants as the fault injector's
// per-node streams).
func axisRNG(seed int64, axis int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + axis*7368787 + 1))
}

// Generate realizes the campaign: cfg.Jobs arrivals in increasing
// ArriveS order. Bit-deterministic per config; see the package comment
// for the stream discipline.
func Generate(cfg Config) ([]Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tenants := cfg.Tenants
	if tenants < 1 {
		tenants = 1
	}
	burstFactor := cfg.BurstFactor
	if burstFactor < 1 {
		burstFactor = 1
	}

	arrivalRNG := axisRNG(cfg.Seed, axisArrival)
	burstRNG := axisRNG(cfg.Seed, axisBurst)
	classRNG := axisRNG(cfg.Seed, axisClass)
	tenantRNG := axisRNG(cfg.Seed, axisTenant)
	attrRNG := make([]*rand.Rand, len(cfg.Classes))
	for i := range cfg.Classes {
		attrRNG[i] = axisRNG(cfg.Seed, axisAttrs+int64(i))
	}

	var cumWeight []float64
	total := 0.0
	for _, cl := range cfg.Classes {
		total += cl.Weight
		cumWeight = append(cumWeight, total)
	}

	// Burst windows are generated lazily along the (monotone) candidate
	// clock: gap ~ Exp(BurstMTBS) after the previous window ends.
	burstStart, burstEnd := math.Inf(1), math.Inf(1)
	if burstFactor > 1 {
		burstStart = burstRNG.ExpFloat64() * cfg.BurstMTBS
		burstEnd = burstStart + cfg.BurstDurS
	}
	inBurst := func(t float64) bool {
		for t >= burstEnd {
			burstStart = burstEnd + burstRNG.ExpFloat64()*cfg.BurstMTBS
			burstEnd = burstStart + cfg.BurstDurS
		}
		return t >= burstStart
	}
	// Thinning: candidates at the envelope rate λmax, accepted with
	// probability λ(t)/λmax.
	rateMax := cfg.RatePerS * (1 + cfg.DiurnalAmp) * burstFactor
	rateAt := func(t float64) float64 {
		r := cfg.RatePerS
		if cfg.DiurnalAmp > 0 {
			r *= 1 + cfg.DiurnalAmp*math.Sin(2*math.Pi*t/cfg.DiurnalPeriodS)
		}
		if burstFactor > 1 && inBurst(t) {
			r *= burstFactor
		}
		return r
	}

	jobs := make([]Job, 0, cfg.Jobs)
	now := 0.0
	for len(jobs) < cfg.Jobs {
		now += arrivalRNG.ExpFloat64() / rateMax
		if arrivalRNG.Float64()*rateMax > rateAt(now) {
			continue // thinned candidate
		}
		u := classRNG.Float64() * total
		ci := 0
		for ci < len(cumWeight)-1 && u >= cumWeight[ci] {
			ci++
		}
		cl := cfg.Classes[ci]
		rng := attrRNG[ci]
		nodes := int(math.Round(cl.Nodes.Sample(rng)))
		if nodes < 1 {
			nodes = 1
		}
		service := cl.ServiceS.Sample(rng)
		if service <= 0 {
			service = cl.ServiceS.Mean()
		}
		slack := cl.SlackS.Sample(rng)
		if slack < 0 {
			slack = 0
		}
		jobs = append(jobs, Job{
			ID:        len(jobs),
			Tenant:    tenantRNG.Intn(tenants),
			Class:     cl.Name,
			ArriveS:   now,
			Nodes:     nodes,
			ServiceS:  service,
			DeadlineS: now + service + slack,
		})
	}
	return jobs, nil
}

// Signature folds a job list into a 64-bit FNV-1a digest of every
// arrival's (time, tenant, class, nodes, service, deadline) — the
// cheap equality witness the campaign scenario records per sweep cell
// so tests can assert that arrival timelines are invariant across
// scheduling policies.
func Signature(jobs []Job) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for _, j := range jobs {
		mix(math.Float64bits(j.ArriveS))
		mix(uint64(j.Tenant))
		mix(uint64(len(j.Class)))
		for _, b := range []byte(j.Class) {
			h ^= uint64(b)
			h *= prime64
		}
		mix(uint64(j.Nodes))
		mix(math.Float64bits(j.ServiceS))
		mix(math.Float64bits(j.DeadlineS))
	}
	return h
}

// DefaultClasses returns the facility mix the campaign scenario offers:
// a numerous validation-shaped small class, a moderate scale-out-shaped
// class, and a rare resilience-shaped large class — the classic
// many-small / few-large cluster mix whose size variance is exactly
// what separates size-aware policies from FIFO under overload. Shapes
// are built through the dist constructor-error contract; the fixed
// parameters below cannot fail, hence no error return.
func DefaultClasses() []Class {
	mustLogNormal := func(mean, std float64) dist.Sampler {
		s, err := dist.NewLogNormal(mean, std)
		if err != nil {
			panic(err)
		}
		return s
	}
	mustExp := func(mean float64) dist.Sampler {
		s, err := dist.NewExponential(mean)
		if err != nil {
			panic(err)
		}
		return s
	}
	mustDiscrete := func(values []float64) dist.Sampler {
		s, err := dist.NewDiscrete(values, nil)
		if err != nil {
			panic(err)
		}
		return s
	}
	return []Class{
		{
			// Short single-node validation workflows (the table2 family):
			// the bulk of the traffic, latency-sensitive.
			Name:     "table2",
			Weight:   0.6,
			Nodes:    dist.Fixed(1),
			ServiceS: mustLogNormal(12, 6),
			SlackS:   mustExp(30),
		},
		{
			// Multi-node staging workflows (the scale-out family).
			Name:     "scale-out",
			Weight:   0.3,
			Nodes:    mustDiscrete([]float64{2, 4, 8}),
			ServiceS: mustLogNormal(30, 15),
			SlackS:   mustExp(90),
		},
		{
			// Long wide checkpointed campaigns (the resilience family):
			// rare, but each occupies a large block for a long time.
			Name:     "resilience",
			Weight:   0.1,
			Nodes:    mustDiscrete([]float64{4, 8, 16}),
			ServiceS: mustLogNormal(90, 45),
			SlackS:   mustExp(300),
		},
	}
}
