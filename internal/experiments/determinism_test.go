package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"simaibench/internal/clock"
	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
	"simaibench/internal/scenario"
	"simaibench/internal/stats"
	"simaibench/internal/sweep"
)

// The flat-callback harnesses (flat.go) must be semantically identical
// to the process-based bodies they replaced: same event order, same
// metrics, bit for bit. These tests keep the pre-refactor process
// implementations alive as references and compare every reported field
// exactly, across the full backend grid. A divergence anywhere —
// engine, cost model, or rank state machine — fails here.

// runPattern1Reference is the pre-refactor process implementation of
// RunPattern1.
func runPattern1Reference(cfg Pattern1Config) Pattern1Point {
	cfg = cfg.withDefaults()
	spec := cluster.Aurora(cfg.Nodes)
	place := cluster.Pattern1Placement(spec)
	env := des.NewEnv()
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)

	horizon := float64(cfg.TrainIters) * cfg.TrainIterS
	var writeTput, readTput stats.Throughput
	var writeTime, readTime stats.Welford
	bytes := int64(cfg.SizeMB * 1e6)

	for node := 0; node < cfg.Nodes; node++ {
		node := node
		for r := 0; r < place.SimTilesPerNode; r++ {
			env.Spawn("sim", func(p *des.Proc) {
				period := float64(cfg.WritePeriod) * cfg.SimIterS
				for p.Now() < horizon {
					p.Sleep(period)
					d := model.LocalWrite(p, cfg.Backend, node, cfg.SizeMB)
					writeTime.Add(d)
					writeTput.Add(bytes, d)
				}
			})
		}
		for r := 0; r < place.AITilesPerNode; r++ {
			env.Spawn("ai", func(p *des.Proc) {
				readPeriod := float64(cfg.ReadPeriod) * cfg.TrainIterS
				writePeriod := float64(cfg.WritePeriod) * cfg.SimIterS
				lastRead := -writePeriod
				for p.Now() < horizon {
					p.Sleep(readPeriod)
					if p.Now()-lastRead < writePeriod {
						continue
					}
					lastRead = p.Now()
					d := model.LocalRead(p, cfg.Backend, node, cfg.SizeMB)
					readTime.Add(d)
					readTput.Add(bytes, d)
				}
			})
		}
	}
	env.RunUntil(horizon * 1.5)
	env.Shutdown()

	return Pattern1Point{
		Nodes:     cfg.Nodes,
		Backend:   cfg.Backend,
		SizeMB:    cfg.SizeMB,
		ReadGBps:  readTput.MeanGBps(),
		WriteGBps: writeTput.MeanGBps(),
		ReadMeanS: readTime.Mean(),
		WriteMean: writeTime.Mean(),
		SimIterS:  cfg.SimIterS,
		TrainIter: cfg.TrainIterS,
		Writes:    writeTime.N(),
		Reads:     readTime.N(),
	}
}

func TestPattern1MatchesProcessReference(t *testing.T) {
	for _, b := range datastore.Backends() {
		for _, size := range []float64{0.4, 8, 32} {
			cfg := Pattern1Config{Nodes: 4, Backend: b, SizeMB: size, TrainIters: 120}
			got := RunPattern1(cfg)
			want := runPattern1Reference(cfg)
			if got != want {
				t.Errorf("%v %gMB: flat %+v != reference %+v", b, size, got, want)
			}
		}
	}
}

func TestPattern1MatchesReferenceAtScaleFS(t *testing.T) {
	// The file-system backend at scale is the contention-heavy case:
	// every rank funnels through one MDS queue, so any event-order
	// divergence shows up here first.
	if testing.Short() {
		t.Skip("contention case is slow in -short mode")
	}
	cfg := Pattern1Config{Nodes: 64, Backend: datastore.FileSystem, SizeMB: 8, TrainIters: 60}
	got := RunPattern1(cfg)
	want := runPattern1Reference(cfg)
	if got != want {
		t.Errorf("fs@64: flat %+v != reference %+v", got, want)
	}
}

// runFig5Reference is the pre-refactor process implementation of RunFig5.
func runFig5Reference(cfg Fig5Config) Fig5Point {
	if cfg.Transfers == 0 {
		cfg.Transfers = 50
	}
	spec := cluster.Aurora(2)
	env := des.NewEnv()
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)
	bytes := int64(cfg.SizeMB * 1e6)

	var writeTput, readTput stats.Throughput
	env.Spawn("pair", func(p *des.Proc) {
		for i := 0; i < cfg.Transfers; i++ {
			d := model.LocalWrite(p, cfg.Backend, 0, cfg.SizeMB)
			writeTput.Add(bytes, d)
			d = model.RemoteReadOne(p, cfg.Backend, cfg.SizeMB)
			readTput.Add(bytes, d)
		}
	})
	env.Run()
	return Fig5Point{
		Backend:   cfg.Backend,
		SizeMB:    cfg.SizeMB,
		ReadGBps:  readTput.MeanGBps(),
		WriteGBps: writeTput.MeanGBps(),
	}
}

func TestFig5MatchesProcessReference(t *testing.T) {
	for _, b := range Pattern2Backends {
		for _, size := range []float64{1, 10, 128} {
			cfg := Fig5Config{Backend: b, SizeMB: size, Transfers: 25}
			got := RunFig5(cfg)
			want := runFig5Reference(cfg)
			if got != want {
				t.Errorf("%v %gMB: flat %+v != reference %+v", b, size, got, want)
			}
		}
	}
}

// runFig6Reference is the pre-refactor process implementation of RunFig6.
func runFig6Reference(cfg Fig6Config) Fig6Point {
	cfg = cfg.withDefaults()
	spec := cluster.Aurora(cfg.Nodes + 1)
	env := des.NewEnv()
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)

	horizon := float64(cfg.TrainIters) * cfg.TrainIterS * 10
	var fetchTime stats.Welford

	for node := 0; node < cfg.Nodes; node++ {
		node := node
		env.Spawn("sim", func(p *des.Proc) {
			period := float64(cfg.WritePeriod) * cfg.SimIterS
			for p.Now() < horizon {
				p.Sleep(period)
				model.LocalWrite(p, cfg.Backend, node, cfg.SizeMB)
			}
		})
	}

	var lastPeriodEnd float64
	completedPeriods := 0
	env.Spawn("trainer", func(p *des.Proc) {
		periods := cfg.TrainIters / cfg.ReadPeriod
		for i := 0; i < periods; i++ {
			p.Sleep(float64(cfg.ReadPeriod) * cfg.TrainIterS)
			d := model.FetchAll(p, cfg.Backend, cfg.Nodes, cfg.SizeMB)
			fetchTime.Add(d)
			lastPeriodEnd = p.Now()
			completedPeriods++
		}
	})
	env.RunUntil(horizon)
	env.Shutdown()

	execPerIter := 0.0
	if completedPeriods > 0 {
		execPerIter = lastPeriodEnd / float64(completedPeriods*cfg.ReadPeriod)
	}
	return Fig6Point{
		Nodes:        cfg.Nodes,
		Backend:      cfg.Backend,
		SizeMB:       cfg.SizeMB,
		ExecPerIterS: execPerIter,
		FetchMeanS:   fetchTime.Mean(),
	}
}

func TestFig6MatchesProcessReference(t *testing.T) {
	for _, b := range Pattern2Backends {
		for _, size := range []float64{1, 10} {
			cfg := Fig6Config{Nodes: 16, Backend: b, SizeMB: size, TrainIters: 100}
			got := RunFig6(cfg)
			want := runFig6Reference(cfg)
			if got != want {
				t.Errorf("%v %gMB: flat %+v != reference %+v", b, size, got, want)
			}
		}
	}
}

// TestSweepParallelismInvariant: the parallel sweep runner must produce
// results identical to serial execution, in the same order, at any
// worker count.
func TestSweepParallelismInvariant(t *testing.T) {
	prev := sweep.Workers
	defer func() { sweep.Workers = prev }()

	sweep.Workers = 1
	serial, err := RunFig3(bg, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		sweep.Workers = workers
		got, err := RunFig3(bg, 4, 80)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Errorf("workers=%d point %d: %+v != serial %+v", workers, i, got[i], serial[i])
			}
		}
	}
}

// --- Virtual-clock determinism (the PR 4 tentpole property) ---
//
// Under clock.Virtual, the real-mode artifacts must be bit-deterministic
// per seed: two runs of the same configuration render byte-identical
// tables, because every pad is a virtual-deadline handoff instead of a
// wall-clock race.

// renderScenarioText runs a registered scenario and renders it through
// the text reporter (the cmd/experiments path).
func renderScenarioText(t *testing.T, name string, p scenario.Params) []byte {
	t.Helper()
	s, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	res, err := s.Run(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	reporter, err := scenario.NewReporter("text")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reporter.Report(&buf, []*scenario.Result{res}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestVirtualValidationTablesDeterministic(t *testing.T) {
	p := scenario.Params{TrainIters: 150, TimeScale: 0.01, Clock: clock.KindVirtual}
	for _, name := range []string{"table2", "table3"} {
		a := renderScenarioText(t, name, p)
		b := renderScenarioText(t, name, p)
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs across two virtual runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", name, a, b)
		}
	}
}

func TestVirtualStreamingTablesDeterministic(t *testing.T) {
	p := scenario.Params{Clock: clock.KindVirtual}
	a := renderScenarioText(t, "streaming", p)
	b := renderScenarioText(t, "streaming", p)
	if !bytes.Equal(a, b) {
		t.Errorf("streaming differs across two virtual runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

func TestVirtualFig2Deterministic(t *testing.T) {
	p := scenario.Params{TrainIters: 120, TimeScale: 0.01, TimelineWindowS: 10, Clock: clock.KindVirtual}
	a := renderScenarioText(t, "fig2", p)
	b := renderScenarioText(t, "fig2", p)
	if !bytes.Equal(a, b) {
		t.Error("fig2 timelines differ across two virtual runs")
	}
}

// TestWallVirtualMakespanConsistency: the virtual clock must reproduce
// the wall-clock emulation's structure, not just run fast — the same
// mini-app configuration yields the same emulated makespan within the
// wall run's measurement noise.
func TestWallVirtualMakespanConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock run is timing-sensitive under -short (race CI)")
	}
	cfg := ValidationConfig{
		Mode: MiniApp, TrainIters: 60, WritePeriod: 25, ReadPeriod: 5,
		PayloadBytes: 20_000, TimeScale: 0.05, Backend: datastore.NodeLocal,
		SimInitS: 0.2, TrainInitS: 0.4,
	}
	cfg.Clock = clock.KindVirtual
	virt, err := RunValidation(bg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock makespans are inherently sensitive to outside load (the
	// suite shares a machine with parallel test binaries), so allow a
	// few attempts, like TestValidationMiniAppLowStd: a genuine
	// structural regression fails every attempt.
	const attempts = 3
	var lastErr string
	for attempt := 0; attempt < attempts; attempt++ {
		cfg.Clock = clock.KindWall
		wall, err := RunValidation(bg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Virtual transfers and compute take zero virtual time, so the
		// wall makespan is an upper bound; it must agree within the
		// overheads a loaded machine adds.
		ratio := wall.MakespanS / virt.MakespanS
		simRatio := float64(wall.Sim.Timesteps) / float64(virt.Sim.Timesteps)
		switch {
		case ratio < 0.95 || ratio > 1.5:
			lastErr = fmt.Sprintf("wall/virtual makespan ratio %.3f (wall %.3f s, virtual %.3f s emulated)",
				ratio, wall.MakespanS, virt.MakespanS)
		// The event structure must agree exactly on the trainer side
		// (fixed iteration count) and closely on the sim side.
		case wall.Train.Timesteps != virt.Train.Timesteps:
			lastErr = fmt.Sprintf("train steps: wall %d vs virtual %d", wall.Train.Timesteps, virt.Train.Timesteps)
		case simRatio < 0.85 || simRatio > 1.5:
			lastErr = fmt.Sprintf("sim steps diverge: wall %d vs virtual %d", wall.Sim.Timesteps, virt.Sim.Timesteps)
		default:
			return // wall run agrees with the virtual one
		}
		t.Logf("attempt %d: %s", attempt, lastErr)
	}
	t.Fatal(lastErr)
}
