package experiments

import (
	"testing"

	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
	"simaibench/internal/stats"
	"simaibench/internal/sweep"
)

// The flat-callback harnesses (flat.go) must be semantically identical
// to the process-based bodies they replaced: same event order, same
// metrics, bit for bit. These tests keep the pre-refactor process
// implementations alive as references and compare every reported field
// exactly, across the full backend grid. A divergence anywhere —
// engine, cost model, or rank state machine — fails here.

// runPattern1Reference is the pre-refactor process implementation of
// RunPattern1.
func runPattern1Reference(cfg Pattern1Config) Pattern1Point {
	cfg = cfg.withDefaults()
	spec := cluster.Aurora(cfg.Nodes)
	place := cluster.Pattern1Placement(spec)
	env := des.NewEnv()
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)

	horizon := float64(cfg.TrainIters) * cfg.TrainIterS
	var writeTput, readTput stats.Throughput
	var writeTime, readTime stats.Welford
	bytes := int64(cfg.SizeMB * 1e6)

	for node := 0; node < cfg.Nodes; node++ {
		node := node
		for r := 0; r < place.SimTilesPerNode; r++ {
			env.Spawn("sim", func(p *des.Proc) {
				period := float64(cfg.WritePeriod) * cfg.SimIterS
				for p.Now() < horizon {
					p.Sleep(period)
					d := model.LocalWrite(p, cfg.Backend, node, cfg.SizeMB)
					writeTime.Add(d)
					writeTput.Add(bytes, d)
				}
			})
		}
		for r := 0; r < place.AITilesPerNode; r++ {
			env.Spawn("ai", func(p *des.Proc) {
				readPeriod := float64(cfg.ReadPeriod) * cfg.TrainIterS
				writePeriod := float64(cfg.WritePeriod) * cfg.SimIterS
				lastRead := -writePeriod
				for p.Now() < horizon {
					p.Sleep(readPeriod)
					if p.Now()-lastRead < writePeriod {
						continue
					}
					lastRead = p.Now()
					d := model.LocalRead(p, cfg.Backend, node, cfg.SizeMB)
					readTime.Add(d)
					readTput.Add(bytes, d)
				}
			})
		}
	}
	env.RunUntil(horizon * 1.5)
	env.Shutdown()

	return Pattern1Point{
		Nodes:     cfg.Nodes,
		Backend:   cfg.Backend,
		SizeMB:    cfg.SizeMB,
		ReadGBps:  readTput.MeanGBps(),
		WriteGBps: writeTput.MeanGBps(),
		ReadMeanS: readTime.Mean(),
		WriteMean: writeTime.Mean(),
		SimIterS:  cfg.SimIterS,
		TrainIter: cfg.TrainIterS,
		Writes:    writeTime.N(),
		Reads:     readTime.N(),
	}
}

func TestPattern1MatchesProcessReference(t *testing.T) {
	for _, b := range datastore.Backends() {
		for _, size := range []float64{0.4, 8, 32} {
			cfg := Pattern1Config{Nodes: 4, Backend: b, SizeMB: size, TrainIters: 120}
			got := RunPattern1(cfg)
			want := runPattern1Reference(cfg)
			if got != want {
				t.Errorf("%v %gMB: flat %+v != reference %+v", b, size, got, want)
			}
		}
	}
}

func TestPattern1MatchesReferenceAtScaleFS(t *testing.T) {
	// The file-system backend at scale is the contention-heavy case:
	// every rank funnels through one MDS queue, so any event-order
	// divergence shows up here first.
	if testing.Short() {
		t.Skip("contention case is slow in -short mode")
	}
	cfg := Pattern1Config{Nodes: 64, Backend: datastore.FileSystem, SizeMB: 8, TrainIters: 60}
	got := RunPattern1(cfg)
	want := runPattern1Reference(cfg)
	if got != want {
		t.Errorf("fs@64: flat %+v != reference %+v", got, want)
	}
}

// runFig5Reference is the pre-refactor process implementation of RunFig5.
func runFig5Reference(cfg Fig5Config) Fig5Point {
	if cfg.Transfers == 0 {
		cfg.Transfers = 50
	}
	spec := cluster.Aurora(2)
	env := des.NewEnv()
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)
	bytes := int64(cfg.SizeMB * 1e6)

	var writeTput, readTput stats.Throughput
	env.Spawn("pair", func(p *des.Proc) {
		for i := 0; i < cfg.Transfers; i++ {
			d := model.LocalWrite(p, cfg.Backend, 0, cfg.SizeMB)
			writeTput.Add(bytes, d)
			d = model.RemoteReadOne(p, cfg.Backend, cfg.SizeMB)
			readTput.Add(bytes, d)
		}
	})
	env.Run()
	return Fig5Point{
		Backend:   cfg.Backend,
		SizeMB:    cfg.SizeMB,
		ReadGBps:  readTput.MeanGBps(),
		WriteGBps: writeTput.MeanGBps(),
	}
}

func TestFig5MatchesProcessReference(t *testing.T) {
	for _, b := range Pattern2Backends {
		for _, size := range []float64{1, 10, 128} {
			cfg := Fig5Config{Backend: b, SizeMB: size, Transfers: 25}
			got := RunFig5(cfg)
			want := runFig5Reference(cfg)
			if got != want {
				t.Errorf("%v %gMB: flat %+v != reference %+v", b, size, got, want)
			}
		}
	}
}

// runFig6Reference is the pre-refactor process implementation of RunFig6.
func runFig6Reference(cfg Fig6Config) Fig6Point {
	cfg = cfg.withDefaults()
	spec := cluster.Aurora(cfg.Nodes + 1)
	env := des.NewEnv()
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)

	horizon := float64(cfg.TrainIters) * cfg.TrainIterS * 10
	var fetchTime stats.Welford

	for node := 0; node < cfg.Nodes; node++ {
		node := node
		env.Spawn("sim", func(p *des.Proc) {
			period := float64(cfg.WritePeriod) * cfg.SimIterS
			for p.Now() < horizon {
				p.Sleep(period)
				model.LocalWrite(p, cfg.Backend, node, cfg.SizeMB)
			}
		})
	}

	var lastPeriodEnd float64
	completedPeriods := 0
	env.Spawn("trainer", func(p *des.Proc) {
		periods := cfg.TrainIters / cfg.ReadPeriod
		for i := 0; i < periods; i++ {
			p.Sleep(float64(cfg.ReadPeriod) * cfg.TrainIterS)
			d := model.FetchAll(p, cfg.Backend, cfg.Nodes, cfg.SizeMB)
			fetchTime.Add(d)
			lastPeriodEnd = p.Now()
			completedPeriods++
		}
	})
	env.RunUntil(horizon)
	env.Shutdown()

	execPerIter := 0.0
	if completedPeriods > 0 {
		execPerIter = lastPeriodEnd / float64(completedPeriods*cfg.ReadPeriod)
	}
	return Fig6Point{
		Nodes:        cfg.Nodes,
		Backend:      cfg.Backend,
		SizeMB:       cfg.SizeMB,
		ExecPerIterS: execPerIter,
		FetchMeanS:   fetchTime.Mean(),
	}
}

func TestFig6MatchesProcessReference(t *testing.T) {
	for _, b := range Pattern2Backends {
		for _, size := range []float64{1, 10} {
			cfg := Fig6Config{Nodes: 16, Backend: b, SizeMB: size, TrainIters: 100}
			got := RunFig6(cfg)
			want := runFig6Reference(cfg)
			if got != want {
				t.Errorf("%v %gMB: flat %+v != reference %+v", b, size, got, want)
			}
		}
	}
}

// TestSweepParallelismInvariant: the parallel sweep runner must produce
// results identical to serial execution, in the same order, at any
// worker count.
func TestSweepParallelismInvariant(t *testing.T) {
	prev := sweep.Workers
	defer func() { sweep.Workers = prev }()

	sweep.Workers = 1
	serial, err := RunFig3(bg, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		sweep.Workers = workers
		got, err := RunFig3(bg, 4, 80)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Errorf("workers=%d point %d: %+v != serial %+v", workers, i, got[i], serial[i])
			}
		}
	}
}
