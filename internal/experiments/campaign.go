package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"simaibench/internal/cluster"
	"simaibench/internal/faults"
	"simaibench/internal/loadgen"
	"simaibench/internal/scenario"
	"simaibench/internal/schedule"
)

// Campaign family: the facility-scale scheduling study. Every other
// scenario simulates the *inside* of one (or N co-scheduled) workflow
// runs; the campaign simulates the machine room around them — an
// open-loop stream of workflow-shaped jobs (internal/loadgen: Poisson
// base rate with diurnal and bursty modulation, three job classes
// echoing the table2-, scale-out- and resilience-sized workflows)
// arriving at a shared facility whose global scheduler
// (internal/schedule) places each job on a free block of nodes under a
// pluggable policy. The sweep axes are offered load × policy, run once
// healthy and once under the crash/repair profile of internal/faults;
// the observables are queueing-delay percentiles, slowdown tails,
// delivered facility utilization and the Jain fairness index over
// per-tenant slowdowns.
//
// The determinism contract extends PR 5's stream discipline across the
// whole stack: arrival timelines depend only on (seed, rate, modulation),
// never on the policy under test — each point carries the arrival-stream
// signature so the invariance is checkable — and the crash timeline is
// policy-invariant too, so every policy is judged against identical
// offered work and identical disturbances.

// CampaignConfig drives one (load, policy) campaign cell.
type CampaignConfig struct {
	// Nodes sizes the facility (64).
	Nodes int
	// Jobs is the open-loop job count (2000).
	Jobs int
	// Tenants spreads jobs across fairness-tracked tenants (8).
	Tenants int
	// Load is the offered load as a multiple of facility capacity
	// (λ·E[node-seconds]/Nodes; 0.7 default). Values above 1 are a
	// transient-overload study: the queue grows until the arrival
	// stream ends.
	Load float64
	// Policy is the schedule policy id (fifo/edf/srpt/hermod).
	Policy string
	// Seed roots both the arrival streams and the fault streams.
	Seed int64
	// MTBFS / RepairS configure the crash profile (0 MTBF = healthy).
	MTBFS   float64
	RepairS float64
	// MaxEvents caps the DES events of the run (0 = unlimited).
	MaxEvents int64
}

// withDefaults fills unset fields with the campaign defaults.
func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Nodes <= 0 {
		c.Nodes = 64
	}
	if c.Jobs <= 0 {
		c.Jobs = 2000
	}
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.Load <= 0 {
		c.Load = 0.7
	}
	if c.Policy == "" {
		c.Policy = "fifo"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RepairS <= 0 {
		c.RepairS = 120
	}
	return c
}

// loadgenConfig derives the open-loop generator configuration: the
// paper-shaped class mix with mild diurnal and bursty modulation, rate
// solved from the offered-load multiple.
func (c CampaignConfig) loadgenConfig() loadgen.Config {
	lg := loadgen.Config{
		Seed:           c.Seed,
		Jobs:           c.Jobs,
		Tenants:        c.Tenants,
		DiurnalAmp:     0.3,
		DiurnalPeriodS: 3600,
		BurstFactor:    2,
		BurstMTBS:      1800,
		BurstDurS:      300,
		Classes:        loadgen.DefaultClasses(),
	}
	lg.RatePerS = lg.RateForLoad(c.Load, c.Nodes)
	return lg
}

// CampaignPoint is one (load, policy) measurement.
type CampaignPoint struct {
	Load   float64
	Policy string
	// RatePerS is the solved arrival rate (jobs/s).
	RatePerS float64
	// ArrivalSig is the FNV digest of the arrival timeline; equal
	// across every policy at the same (seed, load) — the open-loop
	// invariance contract.
	ArrivalSig uint64
	// WaitP50S / WaitP99S / WaitP999S are queueing-delay percentiles.
	WaitP50S, WaitP99S, WaitP999S float64
	// SlowP50 / SlowP99 are slowdown percentiles ((completion −
	// arrival)/service).
	SlowP50, SlowP99 float64
	// Util is delivered facility utilization over the makespan.
	Util float64
	// Fairness is Jain's index over per-tenant mean slowdowns.
	Fairness float64
	// Completed / Dropped / Restarts / Crashes count job outcomes and
	// injected node crashes.
	Completed, Dropped, Restarts, Crashes int
	// MakespanS is the virtual time of the last completion.
	MakespanS float64
}

// RunCampaign simulates one campaign cell. Deterministic: equal
// configs give bit-equal points.
func RunCampaign(cfg CampaignConfig) CampaignPoint {
	pt, _ := RunCampaignChecked(cfg)
	return pt
}

// RunCampaignChecked is RunCampaign under the run guardrails: a
// malformed policy id, a degenerate generator config or a blown event
// budget surface as errors instead of zero-value points.
func RunCampaignChecked(cfg CampaignConfig) (CampaignPoint, error) {
	cfg = cfg.withDefaults()
	fail := func(err error) (CampaignPoint, error) {
		return CampaignPoint{}, fmt.Errorf("campaign (load %g, %s): %w", cfg.Load, cfg.Policy, err)
	}
	pol, err := schedule.ParsePolicy(cfg.Policy)
	if err != nil {
		return fail(err)
	}
	jobs, err := loadgen.Generate(cfg.loadgenConfig())
	if err != nil {
		return fail(err)
	}
	env := newGuardedEnv(cfg.MaxEvents)
	s, err := schedule.New(env, cluster.Aurora(cfg.Nodes), schedule.Config{
		Policy:     pol,
		Faults:     faults.Profile{Seed: cfg.Seed, MTBFS: cfg.MTBFS, RepairS: cfg.RepairS},
		OnComplete: env.Stop,
	})
	if err != nil {
		return fail(err)
	}
	if err := s.Submit(jobs); err != nil {
		return fail(err)
	}
	env.Run()
	if err := env.Err(); err != nil {
		return fail(err)
	}
	if !s.Done() {
		return fail(fmt.Errorf("run drained with %d jobs still pending", s.QueueLen()))
	}
	m := s.Metrics()
	return CampaignPoint{
		Load:       cfg.Load,
		Policy:     cfg.Policy,
		RatePerS:   cfg.loadgenConfig().RatePerS,
		ArrivalSig: loadgen.Signature(jobs),
		WaitP50S:   orZero(m.Wait.P50()),
		WaitP99S:   orZero(m.Wait.P99()),
		WaitP999S:  orZero(m.Wait.P999()),
		SlowP50:    orZero(m.Slowdown.P50()),
		SlowP99:    orZero(m.Slowdown.P99()),
		Util:       m.Utilization(cfg.Nodes),
		Fairness:   m.JainFairness(),
		Completed:  m.Completed,
		Dropped:    m.Dropped,
		Restarts:   m.Restarts,
		Crashes:    s.Injector().Crashes(),
		MakespanS:  m.LastCompletionS,
	}, nil
}

// orZero maps the empty-digest NaN to 0 so the JSON reporter never
// sees an unencodable value (a cell where every job was dropped).
func orZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// CampaignLoads is the default offered-load sweep: half loaded,
// moderately loaded, near saturation, and 20% transient overload —
// the regime where the policies separate.
var CampaignLoads = []float64{0.5, 0.7, 0.9, 1.2}

// CampaignFaultyMTBFS is the per-node MTBF of the campaign's faulty
// table: a few dozen crashes over a default-length campaign.
const CampaignFaultyMTBFS = 20000

// campaignLoads / campaignPolicies derive the sweep axes from Params:
// -rate / -policy narrow the grid to one cell each.
func campaignLoads(rate float64) []float64 {
	if rate > 0 {
		return []float64{rate}
	}
	return CampaignLoads
}

func campaignPolicies(policy string) []string {
	if policy != "" {
		return []string{policy}
	}
	return schedule.PolicyNames()
}

// RunCampaignSweep runs the load × policy grid for one fault profile,
// fanning cells across the worker pool; each cell is an isolated
// deterministic simulation.
func RunCampaignSweep(ctx context.Context, loads []float64, policies []string,
	jobs int, mtbfS float64) ([]CampaignPoint, error) {
	points, fails, err := guardedGrid(ctx, scenario.Params{}, "campaign", loads, policies,
		func(load float64, pol string) (CampaignPoint, error) {
			return RunCampaignChecked(CampaignConfig{
				Load: load, Policy: pol, Jobs: jobs, MTBFS: mtbfS,
			})
		})
	if err != nil {
		return nil, err
	}
	if len(fails) > 0 {
		return points, fmt.Errorf("campaign: %d cell(s) failed: %s", len(fails), fails[0].Error)
	}
	return points, nil
}

// campaignTable structures one fault profile's load × policy grid.
func campaignTable(label string, points []CampaignPoint) scenario.Table {
	t := scenario.Table{
		Title: fmt.Sprintf("Campaign — %s: queueing and fairness under offered load × scheduling policy", label),
		Columns: []scenario.Column{
			{Key: "load", Head: "load", HeadFmt: "%5s", CellFmt: "%5.2f"},
			{Key: "policy", Head: "policy", HeadFmt: "%-7s", CellFmt: "%-7s"},
			{Key: "wait_p50_s", Head: "p50-wait(s)", HeadFmt: "%12s", CellFmt: "%12.1f"},
			{Key: "wait_p99_s", Head: "p99-wait(s)", HeadFmt: "%12s", CellFmt: "%12.1f"},
			{Key: "wait_p999_s", Head: "p999-wait(s)", HeadFmt: "%13s", CellFmt: "%13.1f"},
			{Key: "slow_p99", Head: "p99-slow", HeadFmt: "%9s", CellFmt: "%9.2f"},
			{Key: "util", Head: "util", HeadFmt: "%6s", CellFmt: "%6.3f"},
			{Key: "fairness", Head: "jain", HeadFmt: "%6s", CellFmt: "%6.3f"},
			{Key: "dropped", Head: "dropped", HeadFmt: "%8s", CellFmt: "%8d"},
			{Key: "crashes", Head: "crashes", HeadFmt: "%8s", CellFmt: "%8d"},
		},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []any{pt.Load, pt.Policy, pt.WaitP50S, pt.WaitP99S,
			pt.WaitP999S, pt.SlowP99, pt.Util, pt.Fairness, pt.Dropped, pt.Crashes})
	}
	return t
}

// PrintCampaign renders one fault profile's campaign rows in text
// layout.
func PrintCampaign(w io.Writer, label string, points []CampaignPoint) {
	_ = scenario.WriteTable(w, campaignTable(label, points))
}

// runCampaignScenario is the registered "campaign" scenario: the
// offered-load × policy grid, once healthy and once under the crash
// profile. Each grid runs under the run guardrails: failed cells
// become Result.Failures while the completed points still render.
func runCampaignScenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	res := &scenario.Result{Scenario: "campaign", Params: p}
	loads := campaignLoads(p.Rate)
	policies := campaignPolicies(p.Policy)
	for _, prof := range []struct {
		label string
		mtbfS float64
	}{
		{"healthy", 0},
		{"faulty", CampaignFaultyMTBFS},
	} {
		points, fails, err := guardedGrid(ctx, p, "campaign/"+prof.label, loads, policies,
			func(load float64, pol string) (CampaignPoint, error) {
				return RunCampaignChecked(CampaignConfig{
					Load: load, Policy: pol, Jobs: p.Jobs, Tenants: p.Tenants,
					MTBFS: prof.mtbfS, MaxEvents: p.MaxEvents,
				})
			})
		if err != nil {
			return nil, err
		}
		res.Failures = append(res.Failures, fails...)
		res.Tables = append(res.Tables, campaignTable(prof.label, points))
	}
	return res, nil
}
