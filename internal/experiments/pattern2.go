package experiments

import (
	"context"
	"fmt"
	"io"

	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/scenario"
	"simaibench/internal/stats"
	"simaibench/internal/sweep"
)

// Pattern2Backends are the backends that support non-local access
// (node-local tmpfs is excluded, exactly as in the paper: "a node-local
// solution using tmpfs is not possible in this case").
var Pattern2Backends = []datastore.Backend{datastore.Redis, datastore.FileSystem, datastore.Dragon}

// Fig5Config drives the 2-node point-to-point experiment: the simulation
// stages data to its local backend on node 0, the AI component reads it
// non-locally from node 1.
type Fig5Config struct {
	Backend datastore.Backend
	SizeMB  float64
	// Transfers: how many write/read pairs to sample.
	Transfers int
	// MaxEvents caps the DES events the run may execute (0 = unlimited);
	// RunFig5Checked surfaces the budget trip as an error.
	MaxEvents int64
	Params    *costmodel.Params
}

// Fig5Point is one (backend, size) measurement: local-write and
// non-local-read throughput per process.
type Fig5Point struct {
	Backend   datastore.Backend
	SizeMB    float64
	ReadGBps  float64
	WriteGBps float64
}

// RunFig5 measures the 2-node local-write / non-local-read pattern.
func RunFig5(cfg Fig5Config) Fig5Point {
	pt, _ := RunFig5Checked(cfg)
	return pt
}

// RunFig5Checked is RunFig5 under the run guardrails: with cfg.MaxEvents
// set, a runaway simulation aborts with the structured des.BudgetExceeded
// error. With no budget it never fails.
func RunFig5Checked(cfg Fig5Config) (Fig5Point, error) {
	if cfg.Transfers == 0 {
		cfg.Transfers = 50
	}
	spec := cluster.Aurora(2)
	env := newGuardedEnv(cfg.MaxEvents)
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)
	bytes := int64(cfg.SizeMB * 1e6)

	// One flat chain alternates the local write on node 0 with the
	// remote AI read over the fabric (see flat.go).
	var writeTput, readTput stats.Throughput
	newFig5Pair(env, model, cfg.Backend, cfg.SizeMB, cfg.Transfers, bytes, &writeTput, &readTput)
	env.Run()
	if err := env.Err(); err != nil {
		return Fig5Point{}, fmt.Errorf("fig5 (%s, %g MB): %w", cfg.Backend, cfg.SizeMB, err)
	}
	return Fig5Point{
		Backend:   cfg.Backend,
		SizeMB:    cfg.SizeMB,
		ReadGBps:  readTput.MeanGBps(),
		WriteGBps: writeTput.MeanGBps(),
	}, nil
}

// Fig5Sizes spans the paper's log-scale x axis (10^0 .. ~10^2 MB).
var Fig5Sizes = []float64{0.4, 1, 4, 10, 32, 128}

// RunFig5Sweep runs the full Fig 5 grid, one worker per point.
func RunFig5Sweep(ctx context.Context, transfers int) ([]Fig5Point, error) {
	return sweep.Grid(ctx, Pattern2Backends, Fig5Sizes,
		func(b datastore.Backend, size float64) Fig5Point {
			return RunFig5(Fig5Config{Backend: b, SizeMB: size, Transfers: transfers})
		})
}

// fig5Table structures Fig-5-style rows for the reporters.
func fig5Table(points []Fig5Point) scenario.Table {
	t := scenario.Table{
		Title: "Fig 5 — Pattern 2, 2 nodes: non-local read / local write throughput per process",
		Columns: []scenario.Column{
			{Key: "backend", Head: "backend", HeadFmt: "%-12s", CellFmt: "%-12s"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			{Key: "read_gbps", Head: "read(GB/s)", HeadFmt: "%14s", CellFmt: "%14.3f"},
			{Key: "write_gbps", Head: "write(GB/s)", HeadFmt: "%14s", CellFmt: "%14.3f"},
		},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []any{pt.Backend.String(), pt.SizeMB, pt.ReadGBps, pt.WriteGBps})
	}
	return t
}

// PrintFig5 renders Fig-5-style rows in the paper's text layout.
func PrintFig5(w io.Writer, points []Fig5Point) {
	_ = scenario.WriteTable(w, fig5Table(points))
}

// Fig6Config drives the many-to-one scaling experiment: one simulation
// component per node staging locally, a single AI component on its own
// node reading the whole ensemble every read period and blocking until
// all arrays arrive.
type Fig6Config struct {
	// Nodes is the number of simulation nodes (one sim component each);
	// the trainer gets its own additional node.
	Nodes   int
	Backend datastore.Backend
	SizeMB  float64
	// SimIterS / TrainIterS: emulated iteration times (same as Pattern 1).
	SimIterS   float64
	TrainIterS float64
	// WritePeriod / ReadPeriod in iterations (10 and 10 in the paper).
	WritePeriod int
	ReadPeriod  int
	// TrainIters: training iterations to simulate.
	TrainIters int
	// MaxEvents caps the DES events the run may execute (0 = unlimited);
	// RunFig6Checked surfaces the budget trip as an error.
	MaxEvents int64
	Params    *costmodel.Params
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.SimIterS == 0 {
		c.SimIterS = 0.0325
	}
	if c.TrainIterS == 0 {
		c.TrainIterS = 0.0633
	}
	if c.WritePeriod == 0 {
		c.WritePeriod = 10
	}
	if c.ReadPeriod == 0 {
		c.ReadPeriod = 10
	}
	if c.TrainIters == 0 {
		c.TrainIters = 300
	}
	return c
}

// Fig6Point is one (nodes, backend, size) measurement: the trainer's
// execution time per iteration, compute plus blocking ensemble reads —
// exactly the paper's metric ("total execution time of the training
// component divided by the number of iterations").
type Fig6Point struct {
	Nodes        int
	Backend      datastore.Backend
	SizeMB       float64
	ExecPerIterS float64
	FetchMeanS   float64 // mean blocking ensemble-read time per period
}

// RunFig6 simulates the many-to-one pattern at scale.
func RunFig6(cfg Fig6Config) Fig6Point {
	pt, _ := RunFig6Checked(cfg)
	return pt
}

// RunFig6Checked is RunFig6 under the run guardrails: with cfg.MaxEvents
// set, a runaway simulation aborts with the structured des.BudgetExceeded
// error. With no budget it never fails.
func RunFig6Checked(cfg Fig6Config) (Fig6Point, error) {
	cfg = cfg.withDefaults()
	spec := cluster.Aurora(cfg.Nodes + 1) // +1 trainer node
	env := newGuardedEnv(cfg.MaxEvents)
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)

	horizon := float64(cfg.TrainIters) * cfg.TrainIterS * 10 // generous cap
	var fetchTime stats.Welford

	// Simulation components: one per node, staging locally every write
	// period. For the file-system backend these writes land on the shared
	// Lustre model and contribute real MDS/OST load.
	for node := 0; node < cfg.Nodes; node++ {
		newSimWriter(env, model, simWriterConfig{
			backend: cfg.Backend, node: node, sizeMB: cfg.SizeMB,
			period:  float64(cfg.WritePeriod) * cfg.SimIterS,
			horizon: horizon,
		})
	}

	// Trainer: compute for a read period, then a blocking ensemble read
	// of one array from every simulation. Progress is tracked per period
	// so the exec/iter metric stays correct even when a slow backend
	// (Redis at the largest sizes) does not finish within the horizon.
	var lastPeriodEnd float64
	completedPeriods := 0
	newFig6Trainer(env, model, fig6TrainerConfig{
		backend: cfg.Backend, nodes: cfg.Nodes, sizeMB: cfg.SizeMB,
		periods:   cfg.TrainIters / cfg.ReadPeriod,
		sleepS:    float64(cfg.ReadPeriod) * cfg.TrainIterS,
		fetchTime: &fetchTime, lastPeriodEnd: &lastPeriodEnd, completedPeriods: &completedPeriods,
	})
	env.RunUntil(horizon)
	if err := env.Err(); err != nil {
		return Fig6Point{}, fmt.Errorf("fig6 (%s, %g MB, %d nodes): %w",
			cfg.Backend, cfg.SizeMB, cfg.Nodes, err)
	}

	execPerIter := 0.0
	if completedPeriods > 0 {
		execPerIter = lastPeriodEnd / float64(completedPeriods*cfg.ReadPeriod)
	}
	return Fig6Point{
		Nodes:        cfg.Nodes,
		Backend:      cfg.Backend,
		SizeMB:       cfg.SizeMB,
		ExecPerIterS: execPerIter,
		FetchMeanS:   fetchTime.Mean(),
	}, nil
}

// Fig6Sizes spans the paper's per-process data-size axis.
var Fig6Sizes = []float64{0.4, 1, 4, 10, 32, 128}

// Fig6NodeCounts are the two ensemble scales of Fig 6.
var Fig6NodeCounts = []int{8, 128}

// RunFig6Sweep runs the full grid at one node count, one worker per
// point.
func RunFig6Sweep(ctx context.Context, nodes, trainIters int) ([]Fig6Point, error) {
	return sweep.Grid(ctx, Pattern2Backends, Fig6Sizes,
		func(b datastore.Backend, size float64) Fig6Point {
			return RunFig6(Fig6Config{
				Nodes: nodes, Backend: b, SizeMB: size, TrainIters: trainIters,
			})
		})
}

// fig6Table structures Fig-6-style rows for the reporters.
func fig6Table(nodes int, points []Fig6Point) scenario.Table {
	t := scenario.Table{
		Title: fmt.Sprintf("Fig 6 — Pattern 2 training runtime per iteration, %d simulation nodes", nodes),
		Columns: []scenario.Column{
			{Key: "backend", Head: "backend", HeadFmt: "%-12s", CellFmt: "%-12s"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			{Key: "exec_per_iter_s", Head: "exec/iter(s)", HeadFmt: "%18s", CellFmt: "%18.4f"},
			{Key: "fetch_mean_s", Head: "fetch-mean(s)", HeadFmt: "%16s", CellFmt: "%16.4f"},
		},
	}
	for _, pt := range points {
		if pt.Nodes != nodes {
			continue
		}
		t.Rows = append(t.Rows, []any{pt.Backend.String(), pt.SizeMB, pt.ExecPerIterS, pt.FetchMeanS})
	}
	return t
}

// PrintFig6 renders Fig-6-style rows in the paper's text layout.
func PrintFig6(w io.Writer, nodes int, points []Fig6Point) {
	_ = scenario.WriteTable(w, fig6Table(nodes, points))
}
