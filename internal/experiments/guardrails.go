package experiments

import (
	"context"

	"simaibench/internal/des"
	"simaibench/internal/scenario"
	"simaibench/internal/sweep"
)

// This file wires the run guardrails into the experiment harnesses. Each
// scenario sweep runs on the hardened sweep runner (panic isolation,
// per-cell deadline, bounded retry — see internal/sweep/report.go), and
// each simulated cell's des.Env carries the per-cell event budget from
// Params.MaxEvents. A cell that panics, hangs or blows its budget becomes
// a structured scenario.CellFailure while the rest of the grid completes;
// with no guardrail params set, every path below is the exact pre-existing
// behavior (the zero Options run cells inline, and an unset budget leaves
// the env unguarded).

// newGuardedEnv builds the DES environment for one sweep cell, applying
// the per-cell event budget (0 = unguarded, the zero-cost default).
func newGuardedEnv(maxEvents int64) *des.Env {
	env := des.NewEnv()
	if maxEvents > 0 {
		env.SetGuard(des.Guard{MaxEvents: maxEvents})
	}
	return env
}

// guardedGrid runs one scenario sweep grid (row-major xs × ys) under the
// params' guardrails, returning the completed points plus the failed
// cells as reportable records. Cancellation of ctx is the only error:
// cell failures are data, not reasons to abort the scenario.
func guardedGrid[X, Y, T any](ctx context.Context, p scenario.Params, label string,
	xs []X, ys []Y, f func(x X, y Y) (T, error)) ([]T, []scenario.CellFailure, error) {
	rep := sweep.RunGrid(ctx, xs, ys, p.Guardrails(),
		func(_ context.Context, x X, y Y) (T, error) { return f(x, y) })
	if rep.CtxErr != nil {
		return nil, nil, rep.CtxErr
	}
	return rep.Completed(), scenario.FailuresFrom(label, rep.Failures), nil
}
