// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation (§4):
//
//	Table 2/3, Fig 2 — validation of the one-to-one mini-app (real mode)
//	Fig 3/4         — Pattern 1 transport sweep (simulated cluster)
//	Fig 5/6         — Pattern 2 non-local transport and scaling (simulated)
//
// Each experiment returns structured results and can print itself in the
// same rows/series the paper reports; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"io"

	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/scenario"
	"simaibench/internal/stats"
	"simaibench/internal/sweep"
)

// Pattern1Config drives the Fig 3/4 sweep: the co-located one-to-one
// workflow on a simulated Aurora partition.
type Pattern1Config struct {
	Nodes   int
	Backend datastore.Backend
	SizeMB  float64
	// SimIterS / TrainIterS are the emulated iteration times measured
	// from the production workflow (Table 3 mini-app row).
	SimIterS   float64
	TrainIterS float64
	// WritePeriod: simulation writes a snapshot every this many solver
	// iterations (100 in the paper).
	WritePeriod int
	// ReadPeriod: the trainer checks for data every this many training
	// iterations (10 in the paper).
	ReadPeriod int
	// TrainIters: training iterations to simulate (>=2500 in the paper;
	// smaller values preserve the steady-state statistics).
	TrainIters int
	// MaxEvents caps the DES events the run may execute (0 = unlimited);
	// RunPattern1Checked surfaces the budget trip as an error.
	MaxEvents int64
	// Workers selects the parallel DES engine: with Workers > 1 the run
	// partitions into one logical process per node (des.LPSet) advanced
	// by up to that many cores, when the backend has no cross-LP edges
	// (costmodel.LPLookaheadS = +Inf); zero-lookahead backends keep the
	// sequential engine. Results are bit-identical to Workers <= 1.
	Workers int
	// Params overrides the cost-model constants (zero value = Default).
	Params *costmodel.Params
}

// withDefaults fills unset fields with the paper's values.
func (c Pattern1Config) withDefaults() Pattern1Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.SimIterS == 0 {
		c.SimIterS = 0.0325
	}
	if c.TrainIterS == 0 {
		c.TrainIterS = 0.0633
	}
	if c.WritePeriod == 0 {
		c.WritePeriod = 100
	}
	if c.ReadPeriod == 0 {
		c.ReadPeriod = 10
	}
	if c.TrainIters == 0 {
		c.TrainIters = 600
	}
	return c
}

// Pattern1Point is one (backend, size, nodes) measurement of Fig 3/4.
type Pattern1Point struct {
	Nodes     int
	Backend   datastore.Backend
	SizeMB    float64
	ReadGBps  float64 // per-process read throughput (Fig 3)
	WriteGBps float64 // per-process write throughput (Fig 3)
	ReadMeanS float64 // mean time per read event (Fig 4)
	WriteMean float64 // mean time per write event (Fig 4)
	SimIterS  float64 // compute reference lines of Fig 4
	TrainIter float64
	Writes    int64
	Reads     int64
}

// RunPattern1 simulates the co-located one-to-one workflow: 6 simulation
// ranks and 6 trainer ranks per node, fully asynchronous staging through
// the chosen backend, and returns throughput/time-per-event statistics
// averaged over all processes and events (the paper's methodology).
// Ranks run as flat callback state machines (see flat.go), so a 512-node
// point costs no goroutines and no steady-state allocations.
func RunPattern1(cfg Pattern1Config) Pattern1Point {
	pt, _ := RunPattern1Checked(cfg)
	return pt
}

// RunPattern1Checked is RunPattern1 under the run guardrails: with
// cfg.MaxEvents set, a runaway simulation aborts with the structured
// des.BudgetExceeded error instead of looping forever. With no budget it
// never fails.
func RunPattern1Checked(cfg Pattern1Config) (Pattern1Point, error) {
	cfg = cfg.withDefaults()
	if lpEligible(cfg.Workers, cfg.Nodes, costmodel.LPLookaheadS(cfg.Backend, false)) {
		return runPattern1LP(cfg)
	}
	spec := cluster.Aurora(cfg.Nodes)
	place := cluster.Pattern1Placement(spec)
	env := newGuardedEnv(cfg.MaxEvents)
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)

	horizon := float64(cfg.TrainIters) * cfg.TrainIterS
	var writeTput, readTput stats.Throughput
	var writeTime, readTime stats.Welford
	bytes := int64(cfg.SizeMB * 1e6)

	// Rank machines live in two slabs — one allocation each instead of
	// one per rank, which matters at 512 nodes (3072 ranks).
	writers := make([]simWriter, cfg.Nodes*place.SimTilesPerNode)
	readers := make([]aiReader, cfg.Nodes*place.AITilesPerNode)
	wi, ri := 0, 0
	for node := 0; node < cfg.Nodes; node++ {
		// Simulation ranks: write one snapshot per write period. The
		// compute between writes is a single virtual sleep (iteration
		// timing is deterministic, so batching sleeps loses nothing).
		for r := 0; r < place.SimTilesPerNode; r++ {
			initSimWriter(&writers[wi], env, model, simWriterConfig{
				backend: cfg.Backend, node: node, sizeMB: cfg.SizeMB,
				period:  float64(cfg.WritePeriod) * cfg.SimIterS,
				horizon: horizon, bytes: bytes,
				time: &writeTime, tput: &writeTput,
			})
			wi++
		}
		// Trainer ranks: read one snapshot per read period, but only
		// when fresh data exists — once per write period, matching the
		// asynchronous polling of the real workflow (most polls find
		// nothing new; those cost no transfer).
		for r := 0; r < place.AITilesPerNode; r++ {
			initAIReader(&readers[ri], env, model, aiReaderConfig{
				backend: cfg.Backend, node: node, sizeMB: cfg.SizeMB,
				readPeriod:  float64(cfg.ReadPeriod) * cfg.TrainIterS,
				writePeriod: float64(cfg.WritePeriod) * cfg.SimIterS,
				horizon:     horizon, bytes: bytes,
				time: &readTime, tput: &readTput,
			})
			ri++
		}
	}
	env.RunUntil(horizon * 1.5)
	if err := env.Err(); err != nil {
		return Pattern1Point{}, fmt.Errorf("pattern1 (%s, %g MB, %d nodes): %w",
			cfg.Backend, cfg.SizeMB, cfg.Nodes, err)
	}

	return Pattern1Point{
		Nodes:     cfg.Nodes,
		Backend:   cfg.Backend,
		SizeMB:    cfg.SizeMB,
		ReadGBps:  readTput.MeanGBps(),
		WriteGBps: writeTput.MeanGBps(),
		ReadMeanS: readTime.Mean(),
		WriteMean: writeTime.Mean(),
		SimIterS:  cfg.SimIterS,
		TrainIter: cfg.TrainIterS,
		Writes:    writeTime.N(),
		Reads:     readTime.N(),
	}, nil
}

// Fig3Sizes are the paper's message sizes for Pattern 1.
var Fig3Sizes = []float64{0.4, 2, 8, 32}

// Fig3NodeCounts are the two scales shown in Fig 3.
var Fig3NodeCounts = []int{8, 512}

// RunFig3 sweeps all backends and sizes at the given node count,
// fanning the independent points across cores (see sweep.Workers).
func RunFig3(ctx context.Context, nodes, trainIters int) ([]Pattern1Point, error) {
	return sweep.Grid(ctx, datastore.Backends(), Fig3Sizes,
		func(b datastore.Backend, size float64) Pattern1Point {
			return RunPattern1(Pattern1Config{
				Nodes: nodes, Backend: b, SizeMB: size, TrainIters: trainIters,
			})
		})
}

// fig3Table structures Fig-3-style rows — per-process read and write
// throughput by backend and data size — for the reporters.
func fig3Table(nodes int, points []Pattern1Point) scenario.Table {
	t := scenario.Table{
		Title: fmt.Sprintf("Fig 3 — Pattern 1 read/write throughput per process, %d nodes", nodes),
		Columns: []scenario.Column{
			{Key: "backend", Head: "backend", HeadFmt: "%-12s", CellFmt: "%-12s"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			{Key: "read_gbps", Head: "read(GB/s)", HeadFmt: "%14s", CellFmt: "%14.3f"},
			{Key: "write_gbps", Head: "write(GB/s)", HeadFmt: "%14s", CellFmt: "%14.3f"},
		},
	}
	for _, pt := range points {
		if pt.Nodes != nodes {
			continue
		}
		t.Rows = append(t.Rows, []any{pt.Backend.String(), pt.SizeMB, pt.ReadGBps, pt.WriteGBps})
	}
	return t
}

// PrintFig3 renders Fig-3-style rows in the paper's text layout.
func PrintFig3(w io.Writer, nodes int, points []Pattern1Point) {
	_ = scenario.WriteTable(w, fig3Table(nodes, points))
}

// Fig4Backends are the two extremes compared in Fig 4.
var Fig4Backends = []datastore.Backend{datastore.NodeLocal, datastore.FileSystem}

// RunFig4 reuses the Pattern 1 harness for the compute-vs-transport
// comparison of Fig 4, with the same parallel fan-out as RunFig3.
func RunFig4(ctx context.Context, nodes, trainIters int) ([]Pattern1Point, error) {
	return sweep.Grid(ctx, Fig4Backends, Fig3Sizes,
		func(b datastore.Backend, size float64) Pattern1Point {
			return RunPattern1(Pattern1Config{
				Nodes: nodes, Backend: b, SizeMB: size, TrainIters: trainIters,
			})
		})
}

// fig4Table structures Fig-4-style rows: mean time per event for compute
// (Sim iter, AI iter) versus transport (read, write).
func fig4Table(nodes int, points []Pattern1Point) scenario.Table {
	t := scenario.Table{
		Title: fmt.Sprintf("Fig 4 — Pattern 1 compute vs transport time per event, %d nodes", nodes),
		Columns: []scenario.Column{
			{Key: "backend", Head: "backend", HeadFmt: "%-12s", CellFmt: "%-12s"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			{Key: "sim_iter_s", Head: "sim-iter(s)", HeadFmt: "%12s", CellFmt: "%12.4f"},
			{Key: "ai_iter_s", Head: "ai-iter(s)", HeadFmt: "%12s", CellFmt: "%12.4f"},
			{Key: "write_mean_s", Head: "write(s)", HeadFmt: "%12s", CellFmt: "%12.4f"},
			{Key: "read_mean_s", Head: "read(s)", HeadFmt: "%12s", CellFmt: "%12.4f"},
		},
	}
	for _, pt := range points {
		if pt.Nodes != nodes {
			continue
		}
		t.Rows = append(t.Rows, []any{pt.Backend.String(), pt.SizeMB,
			pt.SimIterS, pt.TrainIter, pt.WriteMean, pt.ReadMeanS})
	}
	return t
}

// PrintFig4 renders Fig-4-style rows in the paper's text layout.
func PrintFig4(w io.Writer, nodes int, points []Pattern1Point) {
	_ = scenario.WriteTable(w, fig4Table(nodes, points))
}
