package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
	"simaibench/internal/faults"
	"simaibench/internal/scenario"
	"simaibench/internal/stats"
	"simaibench/internal/sweep"
)

// Resilience family: the scale-out campaign under disturbance. Every
// other scenario assumes a perfectly healthy cluster; here the same N
// co-scheduled one-to-one workflows run while a seeded fault injector
// (internal/faults) crashes nodes, slows stragglers and takes the
// shared datastore offline, and a recovery policy — fail-stop or
// checkpoint/restart through the same backend deployment the snapshots
// stage through — decides how much work each disturbance costs. The
// sweep axes are MTBF × checkpoint interval × backend; the observables
// are the wasted-work fraction, the checkpoint-overhead fraction and
// the effective (delivered) throughput, plus an optimal-checkpoint-
// interval table comparing the empirical best cadence against Young's
// √(2·δ·MTBF) approximation.
//
// The rank machines below are the scale-out machines of flat.go with
// interruptibility threaded through: cancellable wake-ups (des.Hold),
// abortable checkpoints (costmodel.CheckpointOp over cancellable
// des.Grants), and epoch counters that discard transfers whose node
// died mid-flight. With a healthy profile (MTBF=∞, checkpointing off)
// they issue exactly the schedule calls of initSimWriter/initAIReader,
// so the healthy resilience run is bit-identical to the equivalent
// scale-out run — pinned by TestResilienceHealthyMatchesScaleOut.

// ResilienceConfig drives one disturbance measurement: the scale-out
// workload of ScaleOutConfig plus a fault profile and recovery policy.
type ResilienceConfig struct {
	// Tenants / NodesPerTenant: the co-scheduled workload, as in
	// ScaleOutConfig (defaults 4 × 2).
	Tenants        int
	NodesPerTenant int
	Backend        datastore.Backend
	SizeMB         float64
	// SimIterS / TrainIterS / WritePeriod / ReadPeriod / TrainIters:
	// iteration profile, as in ScaleOutConfig.
	SimIterS    float64
	TrainIterS  float64
	WritePeriod int
	ReadPeriod  int
	TrainIters  int
	// Seed roots the fault injector's disturbance streams.
	Seed int64
	// MTBFS is the per-node mean time between crashes; 0 or +Inf
	// disables crashes (the healthy baseline).
	MTBFS float64
	// RepairS is the node reboot time after a crash (1 s).
	RepairS float64
	// CkptIntervalS is the checkpoint cadence per sim rank; <= 0
	// disables checkpointing (fail-stop recovery).
	CkptIntervalS float64
	// CkptSizeMB sizes one checkpoint write/read (8 MB).
	CkptSizeMB float64
	// ReDispatchStragglers migrates ranks off straggling nodes.
	ReDispatchStragglers bool
	// StragglerMTBS / StragglerFactor / StragglerDurS: straggler
	// episodes (disabled unless all set; see faults.Profile).
	StragglerMTBS   float64
	StragglerFactor float64
	StragglerDurS   float64
	// OutageMTBS / OutageDurS: transient datastore outages (disabled
	// unless both set).
	OutageMTBS float64
	OutageDurS float64
	// MaxEvents caps the DES events the run may execute (0 = unlimited);
	// RunResilienceChecked surfaces the budget trip as an error.
	MaxEvents int64
	// Params overrides the cost-model constants (zero value = Default).
	Params *costmodel.Params
}

// withDefaults fills unset fields with the resilience defaults,
// mirroring ScaleOutConfig.withDefaults for the shared workload knobs.
func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.NodesPerTenant <= 0 {
		c.NodesPerTenant = 2
	}
	if c.SizeMB <= 0 {
		c.SizeMB = 8
	}
	if c.SimIterS <= 0 {
		c.SimIterS = 0.0325
	}
	if c.TrainIterS <= 0 {
		c.TrainIterS = 0.0633
	}
	if c.WritePeriod <= 0 {
		c.WritePeriod = 10
	}
	if c.ReadPeriod <= 0 {
		c.ReadPeriod = 10
	}
	if c.TrainIters <= 0 {
		c.TrainIters = 600
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RepairS <= 0 {
		c.RepairS = 1
	}
	if c.CkptSizeMB <= 0 {
		c.CkptSizeMB = 8
	}
	return c
}

// Recovery derives the faults.Recovery this config selects: the policy
// is CheckpointRestart exactly when a checkpoint cadence is set,
// fail-stop otherwise. Exposed so callers can inspect which policy a
// configuration implies (e.g. comparing against faults.ParsePolicy
// output) without re-deriving the rule.
func (c ResilienceConfig) Recovery() faults.Recovery {
	rec := faults.Recovery{
		CkptIntervalS:        c.CkptIntervalS,
		CkptSizeMB:           c.CkptSizeMB,
		ReDispatchStragglers: c.ReDispatchStragglers,
	}
	if c.CkptIntervalS > 0 {
		rec.Policy = faults.CheckpointRestart
	}
	return rec
}

// ResiliencePoint is one (mtbf, ckpt-interval, backend) measurement.
// The staging fields (WriteGBps … Writes) carry the exact semantics of
// ScaleOutPoint, and with a healthy profile their values are
// bit-identical to the equivalent scale-out run.
type ResiliencePoint struct {
	Tenants       int
	Backend       datastore.Backend
	SizeMB        float64
	MTBFS         float64 // +Inf = never
	CkptIntervalS float64 // 0 = fail-stop
	WriteGBps     float64
	ReadGBps      float64
	StageMeanS    float64
	StageP50S     float64
	SharedWaitS   float64
	AggGBps       float64
	Writes        int64
	// Crashes is the number of node crashes injected.
	Crashes int
	// WastedS is the total virtual compute-seconds lost to crashes
	// (work since each victim rank's last durable commit), summed over
	// sim ranks; WastedFrac normalizes by sim-rank × horizon seconds.
	WastedS    float64
	WastedFrac float64
	// CkptWrites / CkptTotalS count completed checkpoint writes and
	// their cumulative duration; CkptFrac normalizes like WastedFrac.
	CkptWrites int64
	CkptTotalS float64
	CkptFrac   float64
	// EffGBps is the effective throughput: the delivered aggregate
	// staging throughput discounted by the fraction of compute whose
	// results were lost — AggGBps × (1 − WastedFrac). This is the
	// quantity the optimal-checkpoint-interval selection maximizes:
	// fail-stop pays full waste, aggressive cadences pay checkpoint
	// contention on the shared deployment.
	EffGBps float64
}

// resFaultState is the per-run state shared by every rank machine: the
// injector plus the model/config handles ranks need to rebuild their
// transfer objects when re-dispatched.
type resFaultState struct {
	inj     *faults.Injector
	model   *costmodel.Model
	rec     faults.Recovery
	backend datastore.Backend
	sizeMB  float64
	horizon float64
	// byNodeW / byNodeR map node index -> resident rank machines;
	// re-dispatch moves a writer between lists.
	byNodeW [][]*resSimWriter
	byNodeR [][]*resAIReader
}

// resSimWriter is the solver rank of the resilience campaign: the
// simWriter loop of flat.go plus crash/repair, checkpointing,
// straggler re-dispatch and outage deferral.
type resSimWriter struct {
	env     *des.Env
	fs      *resFaultState
	node    int
	period  float64
	horizon float64
	start   float64
	bytes   int64
	time    *stats.Welford
	tput    *stats.Throughput
	samples *[]float64
	xfer    xferStarter
	wake    *des.Hold

	down       bool
	busy       bool // staged write in flight
	epoch      int  // bumps on crash; stale transfers are discarded
	startEpoch int
	pendResume bool // resume deferred behind a draining transfer
	// unrecovered marks a rank whose loss since lastCommit has been
	// charged but whose recovery has not completed (restore still
	// running, parked behind an outage, or dropped at the horizon): a
	// further crash in that window accrued no new work and must charge
	// nothing.
	unrecovered bool
	lastCommit  float64
	wasted      *float64
	ckptW       *costmodel.CheckpointOp
	ckptR       *costmodel.CheckpointOp
	ckptHold    *des.Hold
	restoreHold *des.Hold // defers a restore parked behind an outage
	ckptStart   float64
	ckptBusy    bool
	restoring   bool
	ckptWrites  *int64
	ckptTotalS  *float64
	slowdownRef func(node int) float64
	// stagger phases this rank's first cadence tick within [1, 2)
	// intervals, spreading the fleet's checkpoints evenly instead of
	// firing all ranks in one synchronized burst against the shared
	// deployment.
	stagger float64
}

// initResSimWriter mirrors initSimWriter: in a healthy run its
// schedule calls (one wake push at construction, one per completed
// write) land at identical (time, order) positions.
func initResSimWriter(w *resSimWriter, env *des.Env, fs *resFaultState, node int,
	period float64, bytes int64, time *stats.Welford, tput *stats.Throughput,
	samples *[]float64, wasted *float64, ckptWrites *int64, ckptTotalS *float64,
	stagger float64) {
	*w = resSimWriter{
		env: env, fs: fs, node: node, period: period, horizon: fs.horizon,
		bytes: bytes, time: time, tput: tput, samples: samples,
		lastCommit: env.Now(), wasted: wasted,
		ckptWrites: ckptWrites, ckptTotalS: ckptTotalS,
		slowdownRef: fs.inj.Slowdown,
		stagger:     stagger,
	}
	w.wake = des.NewHold(env, func() {
		if w.down {
			return // repair resumes us
		}
		if fs.inj.OutageActive() {
			// Defer to the outage end; a deferral past the horizon is
			// dropped so outage housekeeping cannot stretch the
			// measured end time.
			if u := fs.inj.OutageUntil(); u < w.horizon {
				w.wake.At(u)
			}
			return
		}
		w.start = env.Now()
		w.busy = true
		w.startEpoch = w.epoch
		w.xfer.Start()
	})
	w.bindNode(node)
	w.ckptHold = des.NewHold(env, func() {
		if env.Now() >= w.horizon {
			return // never let checkpoint traffic outlive the campaign
		}
		if w.down || w.ckptBusy {
			// A previous checkpoint is still in flight: skip this
			// cadence tick rather than stacking operations.
			if !w.down {
				w.armCkpt(fs.rec.CkptIntervalS)
			}
			return
		}
		if fs.inj.OutageActive() {
			// The datastore is down: no checkpoint can start. Defer the
			// tick to the outage end (horizon-guarded like every arm).
			if fs.inj.OutageUntil() < w.horizon {
				w.ckptHold.At(fs.inj.OutageUntil())
			}
			return
		}
		w.ckptStart = env.Now()
		w.ckptBusy = true
		w.ckptW.Start()
	})
	w.restoreHold = des.NewHold(env, w.startRestore)
	if env.Now() < w.horizon {
		w.wake.After(w.period)
	}
	if fs.rec.Policy == faults.CheckpointRestart && fs.rec.CkptIntervalS > 0 {
		w.armCkpt(fs.rec.CkptIntervalS * (1 + w.stagger))
	}
}

// bindNode (re)builds the transfer objects rooted at the rank's
// current node — at construction and again on re-dispatch.
func (w *resSimWriter) bindNode(node int) {
	w.node = node
	w.xfer = w.fs.model.NewSharedLocalWrite(w.fs.backend, node, w.fs.sizeMB, w.writeDone)
	w.ckptW = w.fs.model.NewCheckpointWrite(w.fs.backend, node, w.fs.rec.CkptSizeMB, w.ckptDone)
	w.ckptR = w.fs.model.NewCheckpointRead(w.fs.backend, node, w.fs.rec.CkptSizeMB, w.restoreDone)
}

// writeDone completes one staged snapshot write.
func (w *resSimWriter) writeDone() {
	w.busy = false
	now := w.env.Now()
	if w.startEpoch != w.epoch {
		// The node died while this transfer was in flight: the result
		// is gone. If the rank has already been repaired, resume the
		// loop that was parked behind the drain.
		if w.pendResume && !w.down {
			w.pendResume = false
			w.resume()
		}
		return
	}
	d := now - w.start
	if w.time != nil {
		w.time.Add(d)
	}
	if w.tput != nil {
		w.tput.Add(w.bytes, d)
	}
	if w.samples != nil {
		*w.samples = append(*w.samples, d)
	}
	if now < w.horizon {
		w.wake.After(w.period * w.slowdownRef(w.node))
	}
}

// resume re-arms the work loop after recovery, deferring behind a
// still-draining orphaned transfer.
func (w *resSimWriter) resume() {
	if w.busy {
		w.pendResume = true
		return
	}
	if w.env.Now() < w.horizon {
		w.wake.After(w.period * w.slowdownRef(w.node))
	}
}

// armCkpt schedules the next cadence tick if it lands inside the
// campaign; a tick past the horizon is never scheduled at all, so
// checkpoint housekeeping cannot stretch the measured end time.
func (w *resSimWriter) armCkpt(d float64) {
	if w.env.Now()+d < w.horizon {
		w.ckptHold.After(d)
	}
}

// ckptDone commits one durable checkpoint. The commit point is the
// write's *start* time: the checkpoint can only capture state as of
// the moment it began, so work done while it was being written is not
// durable and is charged as wasted if the node crashes afterwards.
func (w *resSimWriter) ckptDone() {
	w.ckptBusy = false
	now := w.env.Now()
	*w.ckptWrites++
	*w.ckptTotalS += now - w.ckptStart
	w.lastCommit = w.ckptStart
	w.armCkpt(w.fs.rec.CkptIntervalS)
}

// restoreDone completes the post-repair checkpoint read: the rank is
// recovered and resumes work and checkpointing.
func (w *resSimWriter) restoreDone() {
	w.restoring = false
	w.unrecovered = false
	w.lastCommit = w.env.Now()
	w.resume()
	w.armCkpt(w.fs.rec.CkptIntervalS)
}

// onCrash tears the rank down: cancel the pending wake and checkpoint
// cadence, abort in-flight checkpoint operations, account the work
// lost since the last durable commit. A crash landing mid-recovery —
// the restore read still running, or parked behind an outage — charges
// nothing: no work has accrued since the repair, and the loss since
// lastCommit was already charged at the previous crash.
func (w *resSimWriter) onCrash() {
	w.down = true
	w.epoch++
	w.pendResume = false
	w.wake.Cancel()
	w.ckptHold.Cancel()
	if w.ckptBusy {
		w.ckptW.Abort()
		w.ckptBusy = false
	}
	w.restoreHold.Cancel()
	if w.restoring {
		w.ckptR.Abort()
		w.restoring = false
	}
	if !w.unrecovered {
		*w.wasted += w.env.Now() - w.lastCommit
		w.unrecovered = true
	}
}

// onRepair brings the rank back: fail-stop restarts from scratch
// immediately; checkpoint/restart first replays the last durable
// checkpoint through the backend.
func (w *resSimWriter) onRepair() {
	w.down = false
	if w.fs.rec.Policy == faults.CheckpointRestart && w.fs.rec.CkptIntervalS > 0 {
		w.startRestore()
		return
	}
	w.unrecovered = false
	w.lastCommit = w.env.Now()
	w.resume()
}

// startRestore begins the post-repair checkpoint read, waiting out an
// active datastore outage first (a restore cannot read from a backend
// that is down).
func (w *resSimWriter) startRestore() {
	if w.fs.inj.OutageActive() {
		if w.fs.inj.OutageUntil() < w.horizon {
			w.restoreHold.At(w.fs.inj.OutageUntil())
		}
		return
	}
	w.restoring = true
	w.ckptR.Start()
}

// reDispatch migrates the rank to a healthy replacement node (straggler
// re-dispatch policy). In-flight checkpoint operations bound to the old
// node are aborted first — rebinding would otherwise orphan their only
// Abort handle, letting a dead claim fire ckptDone later. An aborted
// restore is replayed from the new node.
func (w *resSimWriter) reDispatch(to int) {
	if w.ckptBusy {
		w.ckptW.Abort()
		w.ckptBusy = false
		// The aborted write was carrying the cadence (ckptDone would
		// have re-armed it): re-arm, or the migrated rank would never
		// checkpoint again.
		w.armCkpt(w.fs.rec.CkptIntervalS)
	}
	redoRestore := w.restoring
	if redoRestore {
		w.ckptR.Abort()
		w.restoring = false
	}
	w.bindNode(to)
	if redoRestore {
		w.startRestore()
	}
}

// resAIReader is the trainer rank: the aiReader poll loop plus
// crash/repair pause and outage deferral.
type resAIReader struct {
	env         *des.Env
	fs          *resFaultState
	node        int
	readPeriod  float64
	writePeriod float64
	horizon     float64
	lastRead    float64
	start       float64
	bytes       int64
	tput        *stats.Throughput
	xfer        xferStarter
	wake        *des.Hold

	down       bool
	busy       bool
	epoch      int
	startEpoch int
	pendResume bool
}

// initResAIReader mirrors initAIReader's schedule calls in a healthy
// run.
func initResAIReader(r *resAIReader, env *des.Env, fs *resFaultState, node int,
	readPeriod, writePeriod float64, bytes int64, tput *stats.Throughput) {
	*r = resAIReader{
		env: env, fs: fs, node: node, readPeriod: readPeriod, writePeriod: writePeriod,
		horizon: fs.horizon, lastRead: -writePeriod, bytes: bytes, tput: tput,
	}
	r.xfer = fs.model.NewSharedLocalRead(fs.backend, node, fs.sizeMB, r.readDone)
	r.wake = des.NewHold(env, func() {
		if r.down {
			return
		}
		now := env.Now()
		if now-r.lastRead < r.writePeriod {
			if now < r.horizon {
				r.wake.After(r.readPeriod)
			}
			return
		}
		if fs.inj.OutageActive() {
			if u := fs.inj.OutageUntil(); u < r.horizon {
				r.wake.At(u)
			}
			return
		}
		r.lastRead = now
		r.start = now
		r.busy = true
		r.startEpoch = r.epoch
		r.xfer.Start()
	})
	if env.Now() < r.horizon {
		r.wake.After(r.readPeriod)
	}
}

func (r *resAIReader) readDone() {
	r.busy = false
	now := r.env.Now()
	if r.startEpoch != r.epoch {
		if r.pendResume && !r.down {
			r.pendResume = false
			r.resume()
		}
		return
	}
	if r.tput != nil {
		r.tput.Add(r.bytes, now-r.start)
	}
	if now < r.horizon {
		r.wake.After(r.readPeriod)
	}
}

func (r *resAIReader) resume() {
	if r.busy {
		r.pendResume = true
		return
	}
	if r.env.Now() < r.horizon {
		r.wake.After(r.readPeriod)
	}
}

func (r *resAIReader) onCrash() {
	r.down = true
	r.epoch++
	r.pendResume = false
	r.wake.Cancel()
}

func (r *resAIReader) onRepair() {
	r.down = false
	r.resume()
}

// RunResilience simulates one disturbance configuration and returns its
// measurement. Deterministic: equal configs give bit-equal points, and
// the crash timeline depends only on (Seed, MTBFS, RepairS, node
// count), so sweeping the checkpoint cadence compares recovery
// policies against identical disturbances.
func RunResilience(cfg ResilienceConfig) ResiliencePoint {
	pt, _ := RunResilienceChecked(cfg)
	return pt
}

// RunResilienceChecked is RunResilience under the run guardrails: with
// cfg.MaxEvents set, a runaway simulation aborts with the structured
// des.BudgetExceeded error. With no budget it never fails.
func RunResilienceChecked(cfg ResilienceConfig) (ResiliencePoint, error) {
	cfg = cfg.withDefaults()
	spec := cluster.Aurora(cfg.Tenants * cfg.NodesPerTenant)
	tenants, err := cluster.CoSchedule(spec, cfg.Tenants, cfg.NodesPerTenant)
	if err != nil {
		// Unreachable with withDefaults-sanitized inputs.
		panic(err)
	}
	place := cluster.Pattern1Placement(spec)
	env := newGuardedEnv(cfg.MaxEvents)
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)

	horizon := float64(cfg.TrainIters) * cfg.TrainIterS
	bytes := int64(cfg.SizeMB * 1e6)
	var writeTput, readTput stats.Throughput
	var writeTime stats.Welford
	var wasted, ckptTotalS float64
	var ckptWrites int64

	fs := &resFaultState{
		model: model, rec: cfg.Recovery(), backend: cfg.Backend,
		sizeMB: cfg.SizeMB, horizon: horizon,
		byNodeW: make([][]*resSimWriter, spec.Nodes),
		byNodeR: make([][]*resAIReader, spec.Nodes),
	}
	fs.inj = faults.New(env, spec, faults.Profile{
		Seed:            cfg.Seed,
		MTBFS:           cfg.MTBFS,
		RepairS:         cfg.RepairS,
		StragglerMTBS:   cfg.StragglerMTBS,
		StragglerFactor: cfg.StragglerFactor,
		StragglerDurS:   cfg.StragglerDurS,
		OutageMTBS:      cfg.OutageMTBS,
		OutageDurS:      cfg.OutageDurS,
		Until:           horizon,
	}, faults.Hooks{
		Crash: func(node int) {
			for _, w := range fs.byNodeW[node] {
				w.onCrash()
			}
			for _, r := range fs.byNodeR[node] {
				r.onCrash()
			}
		},
		Repair: func(node int) {
			for _, w := range fs.byNodeW[node] {
				w.onRepair()
			}
			for _, r := range fs.byNodeR[node] {
				r.onRepair()
			}
		},
		StragglerStart: func(node int) {
			if !fs.rec.ReDispatchStragglers {
				return
			}
			to, ok := fs.inj.NodeSet().Replacement(node)
			if !ok {
				return
			}
			moved := fs.byNodeW[node]
			fs.byNodeW[node] = nil
			for _, w := range moved {
				w.reDispatch(to)
			}
			fs.byNodeW[to] = append(fs.byNodeW[to], moved...)
		},
	})
	fs.inj.Start()

	writePeriod := float64(cfg.WritePeriod) * cfg.SimIterS
	readPeriod := float64(cfg.ReadPeriod) * cfg.TrainIterS
	nodes := cfg.Tenants * cfg.NodesPerTenant
	simRanks := nodes * place.SimTilesPerNode
	samples := make([]float64, 0, simRanks*(int(horizon/writePeriod)+2))
	writers := make([]resSimWriter, simRanks)
	readers := make([]resAIReader, nodes*place.AITilesPerNode)
	wi, ri := 0, 0
	for _, tn := range tenants {
		for _, node := range tn.Nodes {
			for k := 0; k < place.SimTilesPerNode; k++ {
				w := &writers[wi]
				initResSimWriter(w, env, fs, node, writePeriod, bytes,
					&writeTime, &writeTput, &samples, &wasted, &ckptWrites, &ckptTotalS,
					float64(wi)/float64(simRanks))
				fs.byNodeW[node] = append(fs.byNodeW[node], w)
				wi++
			}
			for k := 0; k < place.AITilesPerNode; k++ {
				r := &readers[ri]
				initResAIReader(r, env, fs, node, readPeriod, writePeriod, bytes, &readTput)
				fs.byNodeR[node] = append(fs.byNodeR[node], r)
				ri++
			}
		}
	}
	endT := env.RunUntil(horizon * 1.5)
	guardErr := env.Err()
	if endT <= 0 {
		endT = horizon
	}
	env.Shutdown() // drop the injector's pending disturbance events
	if guardErr != nil {
		return ResiliencePoint{}, fmt.Errorf("resilience (%s, mtbf %s, ckpt %s): %w",
			cfg.Backend, mtbfLabel(cfg.MTBFS), ckptLabel(cfg.CkptIntervalS), guardErr)
	}

	aggGBps := 0.0
	if writeTime.N() > 0 {
		aggGBps = float64(writeTime.N()) * float64(bytes) / 1e9 / endT
	}
	rankSeconds := float64(simRanks) * horizon
	pt := ResiliencePoint{
		Tenants:       cfg.Tenants,
		Backend:       cfg.Backend,
		SizeMB:        cfg.SizeMB,
		MTBFS:         cfg.MTBFS,
		CkptIntervalS: cfg.CkptIntervalS,
		WriteGBps:     writeTput.MeanGBps(),
		ReadGBps:      readTput.MeanGBps(),
		StageMeanS:    writeTime.Mean(),
		StageP50S:     stats.Quantile(samples, 0.5),
		SharedWaitS:   model.SharedWaitS(cfg.Backend),
		AggGBps:       aggGBps,
		Writes:        writeTime.N(),
		Crashes:       fs.inj.Crashes(),
		WastedS:       wasted,
		WastedFrac:    wasted / rankSeconds,
		CkptWrites:    ckptWrites,
		CkptTotalS:    ckptTotalS,
		CkptFrac:      ckptTotalS / rankSeconds,
	}
	pt.EffGBps = pt.AggGBps * (1 - pt.WastedFrac)
	if cfg.MTBFS <= 0 {
		pt.MTBFS = math.Inf(1)
	}
	return pt, nil
}

// ResilienceMTBFs is the default per-node MTBF sweep: healthy, a
// failure every couple of campaign lengths, and a failure-dominated
// regime.
var ResilienceMTBFs = []float64{math.Inf(1), 120, 30}

// ResilienceCkptIntervals is the default checkpoint-cadence sweep; 0 is
// the fail-stop baseline (no checkpoints).
var ResilienceCkptIntervals = []float64{0, 16, 8, 4, 2}

// resilienceMTBFs / resilienceCkpts derive the sweep axes from Params:
// -mtbf / -ckpt narrow the grid to {healthy, value} / {fail-stop,
// value} so single points remain scriptable from the CLI.
func resilienceMTBFs(mtbf float64) []float64 {
	if mtbf > 0 && !math.IsInf(mtbf, 1) {
		return []float64{math.Inf(1), mtbf}
	}
	return ResilienceMTBFs
}

func resilienceCkpts(ckpt float64) []float64 {
	if ckpt > 0 {
		return []float64{0, ckpt}
	}
	return ResilienceCkptIntervals
}

// RunResilienceSweep runs the MTBF × checkpoint-interval grid for one
// backend, fanning cells across the worker pool; each cell is an
// isolated deterministic simulation.
func RunResilienceSweep(ctx context.Context, b datastore.Backend, mtbfs, ckpts []float64,
	tenants, trainIters int) ([]ResiliencePoint, error) {
	return sweep.Grid(ctx, mtbfs, ckpts, func(mtbf, ckpt float64) ResiliencePoint {
		return RunResilience(ResilienceConfig{
			Tenants: tenants, Backend: b, TrainIters: trainIters,
			MTBFS: mtbf, CkptIntervalS: ckpt,
		})
	})
}

// mtbfLabel renders an MTBF cell: finite seconds, or "never" for the
// healthy baseline (tables must not carry ±Inf values — the JSON
// reporter cannot encode them).
func mtbfLabel(mtbf float64) string {
	if math.IsInf(mtbf, 1) || mtbf <= 0 {
		return "never"
	}
	return fmt.Sprintf("%g", mtbf)
}

// ckptLabel renders a checkpoint-interval cell; 0 is the fail-stop
// baseline.
func ckptLabel(ckpt float64) string {
	if ckpt <= 0 {
		return "off"
	}
	return fmt.Sprintf("%g", ckpt)
}

// resilienceTable structures one backend's disturbance grid. The eff
// column is each row's delivered aggregate throughput relative to the
// healthy fail-stop baseline row of the same backend.
func resilienceTable(b datastore.Backend, points []ResiliencePoint) scenario.Table {
	t := scenario.Table{
		Title: fmt.Sprintf("Resilience — %s: wasted work and effective throughput under node failures", b),
		Columns: []scenario.Column{
			{Key: "mtbf_s", Head: "mtbf(s)", HeadFmt: "%8s", CellFmt: "%8s"},
			{Key: "ckpt_s", Head: "ckpt(s)", HeadFmt: "%8s", CellFmt: "%8s"},
			{Key: "crashes", Head: "crashes", HeadFmt: "%8s", CellFmt: "%8d"},
			{Key: "wasted_frac", Head: "wasted", HeadFmt: "%8s", CellFmt: "%8.4f"},
			{Key: "ckpt_frac", Head: "ckpt-ovh", HeadFmt: "%9s", CellFmt: "%9.4f"},
			{Key: "stage_p50_s", Head: "p50-stage(s)", HeadFmt: "%13s", CellFmt: "%13.5f"},
			{Key: "agg_gbps", Head: "agg(GB/s)", HeadFmt: "%10s", CellFmt: "%10.3f"},
			{Key: "eff", Head: "eff", HeadFmt: "%6s", CellFmt: "%6.3f"},
		},
	}
	base := 0.0
	for _, pt := range points {
		if math.IsInf(pt.MTBFS, 1) && pt.CkptIntervalS == 0 {
			base = pt.EffGBps
		}
	}
	for _, pt := range points {
		eff := 0.0
		if base > 0 {
			eff = pt.EffGBps / base
		}
		t.Rows = append(t.Rows, []any{mtbfLabel(pt.MTBFS), ckptLabel(pt.CkptIntervalS),
			pt.Crashes, pt.WastedFrac, pt.CkptFrac, pt.StageP50S, pt.AggGBps, eff})
	}
	return t
}

// optimalCkptTable summarizes, per backend and finite MTBF, the
// empirically best checkpoint interval of the sweep (maximum delivered
// throughput) against Young's √(2·δ·MTBF) approximation, with δ the
// analytic uncontended checkpoint write time.
func optimalCkptTable(byBackend map[datastore.Backend][]ResiliencePoint, ckptSizeMB float64) scenario.Table {
	t := scenario.Table{
		Title: "Resilience — optimal checkpoint interval per backend (empirical best vs Young's approximation)",
		Columns: []scenario.Column{
			{Key: "backend", Head: "backend", HeadFmt: "%-12s", CellFmt: "%-12s"},
			{Key: "mtbf_s", Head: "mtbf(s)", HeadFmt: "%8s", CellFmt: "%8s"},
			{Key: "best_ckpt_s", Head: "best-ckpt(s)", HeadFmt: "%13s", CellFmt: "%13s"},
			{Key: "young_ckpt_s", Head: "young-ckpt(s)", HeadFmt: "%14s", CellFmt: "%14.2f"},
			{Key: "eff_best_gbps", Head: "eff@best", HeadFmt: "%9s", CellFmt: "%9.3f"},
			{Key: "eff_failstop_gbps", Head: "eff@off", HeadFmt: "%8s", CellFmt: "%8.3f"},
		},
	}
	// Analytic checkpoint cost needs a model instance; the constants are
	// size-independent of the cluster, so a minimal spec serves.
	model := costmodel.New(des.NewEnv(), cluster.Aurora(1), costmodel.Default())
	for _, b := range datastore.Backends() {
		points := byBackend[b]
		mtbfs := []float64{}
		seen := map[float64]bool{}
		for _, pt := range points {
			if !math.IsInf(pt.MTBFS, 1) && !seen[pt.MTBFS] {
				seen[pt.MTBFS] = true
				mtbfs = append(mtbfs, pt.MTBFS)
			}
		}
		delta := model.AnalyticCheckpoint(b, ckptSizeMB)
		for _, m := range mtbfs {
			best, bestEff, failstopEff := 0.0, -1.0, 0.0
			for _, pt := range points {
				if pt.MTBFS != m {
					continue
				}
				if pt.CkptIntervalS == 0 {
					failstopEff = pt.EffGBps
				}
				if pt.EffGBps > bestEff {
					bestEff, best = pt.EffGBps, pt.CkptIntervalS
				}
			}
			t.Rows = append(t.Rows, []any{b.String(), mtbfLabel(m), ckptLabel(best),
				math.Sqrt(2 * delta * m), bestEff, failstopEff})
		}
	}
	return t
}

// PrintResilience renders one backend's resilience rows in text layout.
func PrintResilience(w io.Writer, b datastore.Backend, points []ResiliencePoint) {
	_ = scenario.WriteTable(w, resilienceTable(b, points))
}

// runResilienceScenario is the registered "resilience" scenario: the
// MTBF × checkpoint-interval grid for all four backends, one
// disturbance table per backend plus the optimal-interval summary. Each
// grid runs under the run guardrails: failed cells become
// Result.Failures while the completed points still render.
func runResilienceScenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	res := &scenario.Result{Scenario: "resilience", Params: p}
	mtbfs := resilienceMTBFs(p.MTBF)
	ckpts := resilienceCkpts(p.CkptInterval)
	byBackend := map[datastore.Backend][]ResiliencePoint{}
	for _, b := range datastore.Backends() {
		points, fails, err := guardedGrid(ctx, p, "resilience/"+b.String(), mtbfs, ckpts,
			func(mtbf, ckpt float64) (ResiliencePoint, error) {
				return RunResilienceChecked(ResilienceConfig{
					Tenants: p.Tenants, Backend: b, TrainIters: p.SweepIters,
					MTBFS: mtbf, CkptIntervalS: ckpt, MaxEvents: p.MaxEvents,
				})
			})
		if err != nil {
			return nil, err
		}
		res.Failures = append(res.Failures, fails...)
		byBackend[b] = points
		res.Tables = append(res.Tables, resilienceTable(b, points))
	}
	res.Tables = append(res.Tables, optimalCkptTable(byBackend, ResilienceConfig{}.withDefaults().CkptSizeMB))
	return res, nil
}
