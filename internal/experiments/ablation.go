package experiments

import (
	"context"
	"io"

	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/scenario"
	"simaibench/internal/sweep"
)

// Ablations probe the cost-model mechanisms behind the paper's three
// headline effects, varying one design constant at a time:
//
//   - the Lustre MDS service time (behind the 512-node file-system
//     collapse of Fig 3b/4d),
//   - the per-process cache share (behind the 32 MB in-memory dip of
//     Fig 3),
//   - the Dragon incast latency (behind the small-message many-to-one
//     gap of Fig 6b).
//
// They answer "is the claimed mechanism actually what produces the
// effect in this model?" — if an ablated constant removes the effect,
// the mechanism attribution holds.

// MDSAblationPoint is one (service time, nodes) file-system measurement.
type MDSAblationPoint struct {
	MDSServiceS float64
	Nodes       int
	WriteMeanS  float64
}

// RunMDSAblation sweeps the MDS service time at both Fig 3 scales,
// measuring the Pattern 1 file-system write time at 8 MB.
func RunMDSAblation(ctx context.Context, services []float64, trainIters int) ([]MDSAblationPoint, error) {
	return sweep.Grid(ctx, services, []int{8, 512},
		func(svc float64, nodes int) MDSAblationPoint {
			params := costmodel.Default()
			params.LustreMDSServiceS = svc
			pt := RunPattern1(Pattern1Config{
				Nodes: nodes, Backend: datastore.FileSystem, SizeMB: 8,
				TrainIters: trainIters, Params: &params,
			})
			return MDSAblationPoint{MDSServiceS: svc, Nodes: nodes, WriteMeanS: pt.WriteMean}
		})
}

// runMDSAblationGuarded is the scenario-path variant of RunMDSAblation:
// the same grid under the run guardrails, with failed cells returned as
// reportable records instead of aborting the sweep.
func runMDSAblationGuarded(ctx context.Context, p scenario.Params) ([]MDSAblationPoint, []scenario.CellFailure, error) {
	return guardedGrid(ctx, p, "ablation/mds", MDSAblationServices, []int{8, 512},
		func(svc float64, nodes int) (MDSAblationPoint, error) {
			params := costmodel.Default()
			params.LustreMDSServiceS = svc
			pt, err := RunPattern1Checked(Pattern1Config{
				Nodes: nodes, Backend: datastore.FileSystem, SizeMB: 8,
				TrainIters: p.SweepIters, MaxEvents: p.MaxEvents, Params: &params,
			})
			if err != nil {
				return MDSAblationPoint{}, err
			}
			return MDSAblationPoint{MDSServiceS: svc, Nodes: nodes, WriteMeanS: pt.WriteMean}, nil
		})
}

// mdsAblationTable structures the sweep for the reporters.
func mdsAblationTable(points []MDSAblationPoint) scenario.Table {
	t := scenario.Table{
		Title: "Ablation — Lustre MDS service time vs FS write latency (Pattern 1, 8 MB)",
		Columns: []scenario.Column{
			{Key: "mds_svc_ms", Head: "mds-svc(ms)", HeadFmt: "%14s", CellFmt: "%14.2f"},
			{Key: "nodes", Head: "nodes", HeadFmt: "%8s", CellFmt: "%8d"},
			{Key: "write_mean_s", Head: "write-mean(s)", HeadFmt: "%14s", CellFmt: "%14.4f"},
		},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []any{pt.MDSServiceS * 1000, pt.Nodes, pt.WriteMeanS})
	}
	return t
}

// PrintMDSAblation renders the sweep.
func PrintMDSAblation(w io.Writer, points []MDSAblationPoint) {
	_ = scenario.WriteTable(w, mdsAblationTable(points))
}

// CacheAblationPoint is one (cache share, size) node-local measurement.
type CacheAblationPoint struct {
	CacheShareMB float64
	SizeMB       float64
	WriteGBps    float64
}

// RunCacheAblation sweeps the per-process cache share and measures the
// node-local write throughput profile across the Fig 3 sizes.
func RunCacheAblation(ctx context.Context, shares []float64, trainIters int) ([]CacheAblationPoint, error) {
	return sweep.Grid(ctx, shares, Fig3Sizes,
		func(share, size float64) CacheAblationPoint {
			params := costmodel.Default()
			params.CacheShareMB = share
			pt := RunPattern1(Pattern1Config{
				Nodes: 8, Backend: datastore.NodeLocal, SizeMB: size,
				TrainIters: trainIters, Params: &params,
			})
			return CacheAblationPoint{CacheShareMB: share, SizeMB: size, WriteGBps: pt.WriteGBps}
		})
}

// runCacheAblationGuarded is the scenario-path variant of
// RunCacheAblation, under the run guardrails.
func runCacheAblationGuarded(ctx context.Context, p scenario.Params) ([]CacheAblationPoint, []scenario.CellFailure, error) {
	return guardedGrid(ctx, p, "ablation/cache", CacheAblationShares, Fig3Sizes,
		func(share, size float64) (CacheAblationPoint, error) {
			params := costmodel.Default()
			params.CacheShareMB = share
			pt, err := RunPattern1Checked(Pattern1Config{
				Nodes: 8, Backend: datastore.NodeLocal, SizeMB: size,
				TrainIters: p.SweepIters, MaxEvents: p.MaxEvents, Params: &params,
			})
			if err != nil {
				return CacheAblationPoint{}, err
			}
			return CacheAblationPoint{CacheShareMB: share, SizeMB: size, WriteGBps: pt.WriteGBps}, nil
		})
}

// cacheAblationTable structures the sweep for the reporters.
func cacheAblationTable(points []CacheAblationPoint) scenario.Table {
	t := scenario.Table{
		Title: "Ablation — per-process L3 share vs node-local throughput profile (Pattern 1, 8 nodes)",
		Columns: []scenario.Column{
			{Key: "share_mb", Head: "share(MB)", HeadFmt: "%14s", CellFmt: "%14.1f"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			{Key: "write_gbps", Head: "write(GB/s)", HeadFmt: "%14s", CellFmt: "%14.3f"},
		},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []any{pt.CacheShareMB, pt.SizeMB, pt.WriteGBps})
	}
	return t
}

// PrintCacheAblation renders the sweep.
func PrintCacheAblation(w io.Writer, points []CacheAblationPoint) {
	_ = scenario.WriteTable(w, cacheAblationTable(points))
}

// IncastAblationPoint is one (incast latency, size) Pattern 2 comparison.
type IncastAblationPoint struct {
	IncastLatencyS float64
	SizeMB         float64
	DragonFetchS   float64
	FSFetchS       float64
}

// RunIncastAblation sweeps Dragon's per-message incast latency at 128
// nodes, comparing the trainer's ensemble-fetch time against the file
// system's. With the latency ablated to ~zero, Dragon's point-to-point
// advantage should reassert itself at small messages.
func RunIncastAblation(ctx context.Context, latencies []float64, trainIters int) ([]IncastAblationPoint, error) {
	return sweep.Grid(ctx, latencies, []float64{1, 10, 128},
		func(lat, size float64) IncastAblationPoint {
			params := costmodel.Default()
			params.DragonIncastLatencyS = lat
			dr := RunFig6(Fig6Config{
				Nodes: 128, Backend: datastore.Dragon, SizeMB: size,
				TrainIters: trainIters, Params: &params,
			})
			fs := RunFig6(Fig6Config{
				Nodes: 128, Backend: datastore.FileSystem, SizeMB: size,
				TrainIters: trainIters, Params: &params,
			})
			return IncastAblationPoint{
				IncastLatencyS: lat, SizeMB: size,
				DragonFetchS: dr.FetchMeanS, FSFetchS: fs.FetchMeanS,
			}
		})
}

// runIncastAblationGuarded is the scenario-path variant of
// RunIncastAblation, under the run guardrails.
func runIncastAblationGuarded(ctx context.Context, p scenario.Params) ([]IncastAblationPoint, []scenario.CellFailure, error) {
	return guardedGrid(ctx, p, "ablation/incast", IncastAblationLatencies, []float64{1, 10, 128},
		func(lat, size float64) (IncastAblationPoint, error) {
			params := costmodel.Default()
			params.DragonIncastLatencyS = lat
			dr, err := RunFig6Checked(Fig6Config{
				Nodes: 128, Backend: datastore.Dragon, SizeMB: size,
				TrainIters: p.SweepIters, MaxEvents: p.MaxEvents, Params: &params,
			})
			if err != nil {
				return IncastAblationPoint{}, err
			}
			fs, err := RunFig6Checked(Fig6Config{
				Nodes: 128, Backend: datastore.FileSystem, SizeMB: size,
				TrainIters: p.SweepIters, MaxEvents: p.MaxEvents, Params: &params,
			})
			if err != nil {
				return IncastAblationPoint{}, err
			}
			return IncastAblationPoint{
				IncastLatencyS: lat, SizeMB: size,
				DragonFetchS: dr.FetchMeanS, FSFetchS: fs.FetchMeanS,
			}, nil
		})
}

// incastAblationTable structures the sweep for the reporters.
func incastAblationTable(points []IncastAblationPoint) scenario.Table {
	t := scenario.Table{
		Title: "Ablation — Dragon incast latency vs many-to-one fetch time (128 nodes)",
		Columns: []scenario.Column{
			{Key: "incast_lat_ms", Head: "incast-lat(ms)", HeadFmt: "%16s", CellFmt: "%16.1f"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			{Key: "dragon_fetch_s", Head: "dragon-fetch(s)", HeadFmt: "%16s", CellFmt: "%16.4f"},
			{Key: "fs_fetch_s", Head: "fs-fetch(s)", HeadFmt: "%14s", CellFmt: "%14.4f"},
		},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []any{pt.IncastLatencyS * 1000, pt.SizeMB, pt.DragonFetchS, pt.FSFetchS})
	}
	return t
}

// PrintIncastAblation renders the sweep.
func PrintIncastAblation(w io.Writer, points []IncastAblationPoint) {
	_ = scenario.WriteTable(w, incastAblationTable(points))
}
