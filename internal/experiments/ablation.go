package experiments

import (
	"fmt"
	"io"

	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
)

// Ablations probe the cost-model mechanisms behind the paper's three
// headline effects, varying one design constant at a time:
//
//   - the Lustre MDS service time (behind the 512-node file-system
//     collapse of Fig 3b/4d),
//   - the per-process cache share (behind the 32 MB in-memory dip of
//     Fig 3),
//   - the Dragon incast latency (behind the small-message many-to-one
//     gap of Fig 6b).
//
// They answer "is the claimed mechanism actually what produces the
// effect in this model?" — if an ablated constant removes the effect,
// the mechanism attribution holds.

// MDSAblationPoint is one (service time, nodes) file-system measurement.
type MDSAblationPoint struct {
	MDSServiceS float64
	Nodes       int
	WriteMeanS  float64
}

// RunMDSAblation sweeps the MDS service time at both Fig 3 scales,
// measuring the Pattern 1 file-system write time at 8 MB.
func RunMDSAblation(services []float64, trainIters int) []MDSAblationPoint {
	type cell struct {
		svc   float64
		nodes int
	}
	var cells []cell
	for _, svc := range services {
		for _, nodes := range []int{8, 512} {
			cells = append(cells, cell{svc, nodes})
		}
	}
	return sweepParallel(len(cells), func(i int) MDSAblationPoint {
		c := cells[i]
		params := costmodel.Default()
		params.LustreMDSServiceS = c.svc
		pt := RunPattern1(Pattern1Config{
			Nodes: c.nodes, Backend: datastore.FileSystem, SizeMB: 8,
			TrainIters: trainIters, Params: &params,
		})
		return MDSAblationPoint{MDSServiceS: c.svc, Nodes: c.nodes, WriteMeanS: pt.WriteMean}
	})
}

// PrintMDSAblation renders the sweep.
func PrintMDSAblation(w io.Writer, points []MDSAblationPoint) {
	fmt.Fprintln(w, "Ablation — Lustre MDS service time vs FS write latency (Pattern 1, 8 MB)")
	fmt.Fprintf(w, "%14s %8s %14s\n", "mds-svc(ms)", "nodes", "write-mean(s)")
	for _, pt := range points {
		fmt.Fprintf(w, "%14.2f %8d %14.4f\n", pt.MDSServiceS*1000, pt.Nodes, pt.WriteMeanS)
	}
}

// CacheAblationPoint is one (cache share, size) node-local measurement.
type CacheAblationPoint struct {
	CacheShareMB float64
	SizeMB       float64
	WriteGBps    float64
}

// RunCacheAblation sweeps the per-process cache share and measures the
// node-local write throughput profile across the Fig 3 sizes.
func RunCacheAblation(shares []float64, trainIters int) []CacheAblationPoint {
	type cell struct{ share, size float64 }
	var cells []cell
	for _, share := range shares {
		for _, size := range Fig3Sizes {
			cells = append(cells, cell{share, size})
		}
	}
	return sweepParallel(len(cells), func(i int) CacheAblationPoint {
		c := cells[i]
		params := costmodel.Default()
		params.CacheShareMB = c.share
		pt := RunPattern1(Pattern1Config{
			Nodes: 8, Backend: datastore.NodeLocal, SizeMB: c.size,
			TrainIters: trainIters, Params: &params,
		})
		return CacheAblationPoint{CacheShareMB: c.share, SizeMB: c.size, WriteGBps: pt.WriteGBps}
	})
}

// PrintCacheAblation renders the sweep.
func PrintCacheAblation(w io.Writer, points []CacheAblationPoint) {
	fmt.Fprintln(w, "Ablation — per-process L3 share vs node-local throughput profile (Pattern 1, 8 nodes)")
	fmt.Fprintf(w, "%14s %10s %14s\n", "share(MB)", "size(MB)", "write(GB/s)")
	for _, pt := range points {
		fmt.Fprintf(w, "%14.1f %10.2f %14.3f\n", pt.CacheShareMB, pt.SizeMB, pt.WriteGBps)
	}
}

// IncastAblationPoint is one (incast latency, size) Pattern 2 comparison.
type IncastAblationPoint struct {
	IncastLatencyS float64
	SizeMB         float64
	DragonFetchS   float64
	FSFetchS       float64
}

// RunIncastAblation sweeps Dragon's per-message incast latency at 128
// nodes, comparing the trainer's ensemble-fetch time against the file
// system's. With the latency ablated to ~zero, Dragon's point-to-point
// advantage should reassert itself at small messages.
func RunIncastAblation(latencies []float64, trainIters int) []IncastAblationPoint {
	type cell struct{ lat, size float64 }
	var cells []cell
	for _, lat := range latencies {
		for _, size := range []float64{1, 10, 128} {
			cells = append(cells, cell{lat, size})
		}
	}
	return sweepParallel(len(cells), func(i int) IncastAblationPoint {
		c := cells[i]
		params := costmodel.Default()
		params.DragonIncastLatencyS = c.lat
		dr := RunFig6(Fig6Config{
			Nodes: 128, Backend: datastore.Dragon, SizeMB: c.size,
			TrainIters: trainIters, Params: &params,
		})
		fs := RunFig6(Fig6Config{
			Nodes: 128, Backend: datastore.FileSystem, SizeMB: c.size,
			TrainIters: trainIters, Params: &params,
		})
		return IncastAblationPoint{
			IncastLatencyS: c.lat, SizeMB: c.size,
			DragonFetchS: dr.FetchMeanS, FSFetchS: fs.FetchMeanS,
		}
	})
}

// PrintIncastAblation renders the sweep.
func PrintIncastAblation(w io.Writer, points []IncastAblationPoint) {
	fmt.Fprintln(w, "Ablation — Dragon incast latency vs many-to-one fetch time (128 nodes)")
	fmt.Fprintf(w, "%16s %10s %16s %14s\n", "incast-lat(ms)", "size(MB)", "dragon-fetch(s)", "fs-fetch(s)")
	for _, pt := range points {
		fmt.Fprintf(w, "%16.1f %10.2f %16.4f %14.4f\n",
			pt.IncastLatencyS*1000, pt.SizeMB, pt.DragonFetchS, pt.FSFetchS)
	}
}
