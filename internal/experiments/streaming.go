package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"simaibench/internal/clock"
	"simaibench/internal/datastore"
	"simaibench/internal/scenario"
	"simaibench/internal/stats"
	"simaibench/internal/stream"
)

// The streaming experiment is this reproduction's extension of the
// paper's named future work ("we plan [to] add support for
// point-to-point streaming, for instance using ADIOS2"): it compares
// snapshot delivery through the polled staging path (stage_write + the
// consumer's poll loop) against push-based step streaming, measuring
// end-to-end delivery latency and throughput with real data movement.

// StreamingMethod labels one transport discipline.
type StreamingMethod string

// Methods compared.
const (
	MethodStagedPolling StreamingMethod = "staged-poll"
	MethodStreamInProc  StreamingMethod = "stream-inproc"
	MethodStreamTCP     StreamingMethod = "stream-tcp"
)

// StreamingPoint is one (method, size) measurement.
type StreamingPoint struct {
	Method       StreamingMethod
	SizeMB       float64
	LatencyMeanS float64 // producer EndStep/StageWrite start -> consumer has bytes
	GBps         float64
}

// StreamingConfig drives the comparison.
type StreamingConfig struct {
	SizeMB    float64
	Snapshots int
	// PollInterval is the consumer's staging poll period — the latency
	// floor of the staged path that streaming removes. It is spent on
	// the active clock, so virtual runs carry the same poll floor in
	// their latency decomposition as wall runs without sleeping for
	// real.
	PollInterval time.Duration
	// Backend for the staged path (node-local by default).
	Backend datastore.Backend
	// Clock selects the time domain (clock.KindVirtual by default, see
	// ValidationConfig.Clock). Wall runs measure real transfer times;
	// virtual runs still move every byte for real but pad each transfer
	// to the modeled duration SizeMB/XferGBps in virtual time, so the
	// reported latency keeps the wall decomposition (transfer cost plus
	// the staged path's poll floor) while the tables are deterministic
	// and the run never sleeps for real.
	Clock string
	// XferGBps is the modeled transfer bandwidth of virtual runs
	// (default 2 GB/s, the mid-range of the Fig 3 single-tenant
	// backends). Ignored in wall mode.
	XferGBps float64
}

func (c StreamingConfig) withDefaults() StreamingConfig {
	if c.SizeMB == 0 {
		c.SizeMB = 1
	}
	if c.Snapshots == 0 {
		c.Snapshots = 20
	}
	if c.PollInterval == 0 {
		c.PollInterval = 5 * time.Millisecond
	}
	if c.Clock == "" {
		c.Clock = clock.KindVirtual
	}
	if c.XferGBps == 0 {
		c.XferGBps = 2
	}
	return c
}

// xferPad returns the modeled virtual duration of one snapshot
// transfer, or zero in wall mode (where transfers take their real
// time).
func (c StreamingConfig) xferPad() time.Duration {
	if !clock.IsVirtual(c.Clock) {
		return 0
	}
	return time.Duration(c.SizeMB / 1000 / c.XferGBps * float64(time.Second))
}

// RunStagedPolling measures the staging path: producer writes snapshots
// under fresh keys, consumer polls at the configured interval and reads
// when present. All waiting runs on the configured clock; in virtual
// mode each write and read is additionally padded to its modeled
// duration, so the reported latency decomposes exactly as a wall run's
// (transfer + poll floor) without any real sleeping. Cancelling ctx
// interrupts the poll loop.
func RunStagedPolling(ctx context.Context, cfg StreamingConfig) (StreamingPoint, error) {
	cfg = cfg.withDefaults()
	clk, err := clock.FromKind(cfg.Clock)
	if err != nil {
		return StreamingPoint{}, err
	}
	mgr, info, err := datastore.StartBackend(cfg.Backend, "")
	if err != nil {
		return StreamingPoint{}, err
	}
	defer mgr.Stop()
	store, err := datastore.Connect(info)
	if err != nil {
		return StreamingPoint{}, err
	}
	defer store.Close()

	pad := cfg.xferPad()
	payload := make([]byte, int(cfg.SizeMB*1e6))
	var lat stats.Welford
	var tput stats.Throughput
	for i := 0; i < cfg.Snapshots; i++ {
		key := fmt.Sprintf("snap/%d", i)
		start := clk.Now()
		if err := store.StageWrite(key, payload); err != nil {
			return StreamingPoint{}, err
		}
		clk.Sleep(pad) // virtual mode: the write's modeled duration
		// Consumer side: poll until present, then read.
		for {
			if err := ctx.Err(); err != nil {
				return StreamingPoint{}, err
			}
			ok, err := store.Poll(key)
			if err != nil {
				return StreamingPoint{}, err
			}
			if ok {
				break
			}
			clk.Sleep(cfg.PollInterval)
		}
		// First poll can race the write; model the steady-state consumer
		// that discovers the key on its next poll tick.
		clk.Sleep(cfg.PollInterval)
		got, err := store.StageRead(key)
		if err != nil {
			return StreamingPoint{}, err
		}
		clk.Sleep(pad) // virtual mode: the read's modeled duration
		d := clk.Now().Sub(start).Seconds()
		lat.Add(d)
		tput.Add(int64(len(got)), d)
	}
	return StreamingPoint{
		Method: MethodStagedPolling, SizeMB: cfg.SizeMB,
		LatencyMeanS: lat.Mean(), GBps: tput.MeanGBps(),
	}, nil
}

// RunStreamDelivery measures the push path over the given writer/reader
// pair: the producer publishes steps, the consumer receives them with
// no polling. In wall mode the latency is the measured EndStep-to-
// receipt time; in virtual mode every byte still moves for real, but
// each delivery is padded to its modeled transfer duration in virtual
// time — the push path has no poll floor, which is exactly the
// comparison the tables make.
func RunStreamDelivery(cfg StreamingConfig, method StreamingMethod, w stream.Writer, r stream.Reader) (StreamingPoint, error) {
	cfg = cfg.withDefaults()
	clk, err := clock.FromKind(cfg.Clock)
	if err != nil {
		return StreamingPoint{}, err
	}
	pad := cfg.xferPad()
	virtual := clock.IsVirtual(cfg.Clock)
	payload := make([]byte, int(cfg.SizeMB*1e6))
	var lat stats.Welford
	var tput stats.Throughput
	errCh := make(chan error, 1)
	starts := make(chan time.Time, cfg.Snapshots)
	go func() {
		// The producer is a free-running goroutine outside any clock
		// barrier: its stamps are only read in wall mode.
		defer w.Close()
		for i := 0; i < cfg.Snapshots; i++ {
			step, err := w.BeginStep()
			if err != nil {
				errCh <- err
				return
			}
			if err := step.Put("field", payload); err != nil {
				errCh <- err
				return
			}
			starts <- time.Now()
			if err := step.EndStep(); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < cfg.Snapshots; i++ {
		s, err := r.NextStep()
		if err != nil {
			return StreamingPoint{}, err
		}
		start := <-starts
		var d float64
		if virtual {
			t0 := clk.Now()
			clk.Sleep(pad)
			d = clk.Now().Sub(t0).Seconds()
		} else {
			d = time.Since(start).Seconds()
		}
		lat.Add(d)
		tput.Add(int64(s.Bytes()), d)
	}
	if err := <-errCh; err != nil {
		return StreamingPoint{}, err
	}
	return StreamingPoint{
		Method: method, SizeMB: cfg.SizeMB,
		LatencyMeanS: lat.Mean(), GBps: tput.MeanGBps(),
	}, nil
}

// RunStreamingComparison runs all three methods at one size.
func RunStreamingComparison(ctx context.Context, cfg StreamingConfig) ([]StreamingPoint, error) {
	cfg = cfg.withDefaults()
	var points []StreamingPoint

	staged, err := RunStagedPolling(ctx, cfg)
	if err != nil {
		return nil, err
	}
	points = append(points, staged)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pw, pr := stream.Pipe(4)
	inproc, err := RunStreamDelivery(cfg, MethodStreamInProc, pw, pr)
	if err != nil {
		return nil, err
	}
	pr.Close()
	points = append(points, inproc)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tw, err := stream.ListenTCP("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tr, err := stream.DialTCP(tw.Addr())
	if err != nil {
		tw.Close()
		return nil, err
	}
	tcp, err := RunStreamDelivery(cfg, MethodStreamTCP, tw, tr)
	tr.Close()
	if err != nil {
		return nil, err
	}
	points = append(points, tcp)
	return points, nil
}

// streamingTable structures the comparison for the reporters.
func streamingTable(points []StreamingPoint) scenario.Table {
	t := scenario.Table{
		Title: "Extension — staged polling vs point-to-point streaming (real data movement)",
		Columns: []scenario.Column{
			{Key: "method", Head: "method", HeadFmt: "%-14s", CellFmt: "%-14s"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			{Key: "latency_mean_ms", Head: "latency-mean(ms)", HeadFmt: "%16s", CellFmt: "%16.3f"},
			{Key: "gbps", Head: "GB/s", HeadFmt: "%12s", CellFmt: "%12.3f"},
		},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []any{string(pt.Method), pt.SizeMB, pt.LatencyMeanS * 1000, pt.GBps})
	}
	return t
}

// PrintStreaming renders the comparison.
func PrintStreaming(w io.Writer, points []StreamingPoint) {
	_ = scenario.WriteTable(w, streamingTable(points))
}
