package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"simaibench/internal/datastore"
	"simaibench/internal/scenario"
	"simaibench/internal/stats"
	"simaibench/internal/stream"
)

// The streaming experiment is this reproduction's extension of the
// paper's named future work ("we plan [to] add support for
// point-to-point streaming, for instance using ADIOS2"): it compares
// snapshot delivery through the polled staging path (stage_write + the
// consumer's poll loop) against push-based step streaming, measuring
// end-to-end delivery latency and throughput with real data movement.

// StreamingMethod labels one transport discipline.
type StreamingMethod string

// Methods compared.
const (
	MethodStagedPolling StreamingMethod = "staged-poll"
	MethodStreamInProc  StreamingMethod = "stream-inproc"
	MethodStreamTCP     StreamingMethod = "stream-tcp"
)

// StreamingPoint is one (method, size) measurement.
type StreamingPoint struct {
	Method       StreamingMethod
	SizeMB       float64
	LatencyMeanS float64 // producer EndStep/StageWrite start -> consumer has bytes
	GBps         float64
}

// StreamingConfig drives the comparison.
type StreamingConfig struct {
	SizeMB    float64
	Snapshots int
	// PollInterval is the consumer's staging poll period — the latency
	// floor of the staged path that streaming removes.
	PollInterval time.Duration
	// Backend for the staged path (node-local by default).
	Backend datastore.Backend
}

func (c StreamingConfig) withDefaults() StreamingConfig {
	if c.SizeMB == 0 {
		c.SizeMB = 1
	}
	if c.Snapshots == 0 {
		c.Snapshots = 20
	}
	if c.PollInterval == 0 {
		c.PollInterval = 5 * time.Millisecond
	}
	return c
}

// RunStagedPolling measures the staging path: producer writes snapshots
// under fresh keys, consumer polls at the configured interval and reads
// when present. Cancelling ctx interrupts the poll loop.
func RunStagedPolling(ctx context.Context, cfg StreamingConfig) (StreamingPoint, error) {
	cfg = cfg.withDefaults()
	mgr, info, err := datastore.StartBackend(cfg.Backend, "")
	if err != nil {
		return StreamingPoint{}, err
	}
	defer mgr.Stop()
	store, err := datastore.Connect(info)
	if err != nil {
		return StreamingPoint{}, err
	}
	defer store.Close()

	payload := make([]byte, int(cfg.SizeMB*1e6))
	var lat stats.Welford
	var tput stats.Throughput
	for i := 0; i < cfg.Snapshots; i++ {
		key := fmt.Sprintf("snap/%d", i)
		start := time.Now()
		if err := store.StageWrite(key, payload); err != nil {
			return StreamingPoint{}, err
		}
		// Consumer side: poll until present, then read.
		for {
			if err := ctx.Err(); err != nil {
				return StreamingPoint{}, err
			}
			ok, err := store.Poll(key)
			if err != nil {
				return StreamingPoint{}, err
			}
			if ok {
				break
			}
			time.Sleep(cfg.PollInterval)
		}
		// First poll can race the write; model the steady-state consumer
		// that discovers the key on its next poll tick.
		time.Sleep(cfg.PollInterval)
		got, err := store.StageRead(key)
		if err != nil {
			return StreamingPoint{}, err
		}
		d := time.Since(start).Seconds()
		lat.Add(d)
		tput.Add(int64(len(got)), d)
	}
	return StreamingPoint{
		Method: MethodStagedPolling, SizeMB: cfg.SizeMB,
		LatencyMeanS: lat.Mean(), GBps: tput.MeanGBps(),
	}, nil
}

// RunStreamDelivery measures the push path over the given writer/reader
// pair: the producer publishes steps, the consumer receives them with no
// polling.
func RunStreamDelivery(cfg StreamingConfig, method StreamingMethod, w stream.Writer, r stream.Reader) (StreamingPoint, error) {
	cfg = cfg.withDefaults()
	payload := make([]byte, int(cfg.SizeMB*1e6))
	var lat stats.Welford
	var tput stats.Throughput
	errCh := make(chan error, 1)
	starts := make(chan time.Time, cfg.Snapshots)
	go func() {
		defer w.Close()
		for i := 0; i < cfg.Snapshots; i++ {
			step, err := w.BeginStep()
			if err != nil {
				errCh <- err
				return
			}
			if err := step.Put("field", payload); err != nil {
				errCh <- err
				return
			}
			starts <- time.Now()
			if err := step.EndStep(); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for i := 0; i < cfg.Snapshots; i++ {
		s, err := r.NextStep()
		if err != nil {
			return StreamingPoint{}, err
		}
		start := <-starts
		d := time.Since(start).Seconds()
		lat.Add(d)
		tput.Add(int64(s.Bytes()), d)
	}
	if err := <-errCh; err != nil {
		return StreamingPoint{}, err
	}
	return StreamingPoint{
		Method: method, SizeMB: cfg.SizeMB,
		LatencyMeanS: lat.Mean(), GBps: tput.MeanGBps(),
	}, nil
}

// RunStreamingComparison runs all three methods at one size.
func RunStreamingComparison(ctx context.Context, cfg StreamingConfig) ([]StreamingPoint, error) {
	cfg = cfg.withDefaults()
	var points []StreamingPoint

	staged, err := RunStagedPolling(ctx, cfg)
	if err != nil {
		return nil, err
	}
	points = append(points, staged)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pw, pr := stream.Pipe(4)
	inproc, err := RunStreamDelivery(cfg, MethodStreamInProc, pw, pr)
	if err != nil {
		return nil, err
	}
	pr.Close()
	points = append(points, inproc)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tw, err := stream.ListenTCP("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tr, err := stream.DialTCP(tw.Addr())
	if err != nil {
		tw.Close()
		return nil, err
	}
	tcp, err := RunStreamDelivery(cfg, MethodStreamTCP, tw, tr)
	tr.Close()
	if err != nil {
		return nil, err
	}
	points = append(points, tcp)
	return points, nil
}

// streamingTable structures the comparison for the reporters.
func streamingTable(points []StreamingPoint) scenario.Table {
	t := scenario.Table{
		Title: "Extension — staged polling vs point-to-point streaming (real data movement)",
		Columns: []scenario.Column{
			{Key: "method", Head: "method", HeadFmt: "%-14s", CellFmt: "%-14s"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			{Key: "latency_mean_ms", Head: "latency-mean(ms)", HeadFmt: "%16s", CellFmt: "%16.3f"},
			{Key: "gbps", Head: "GB/s", HeadFmt: "%12s", CellFmt: "%12.3f"},
		},
	}
	for _, pt := range points {
		t.Rows = append(t.Rows, []any{string(pt.Method), pt.SizeMB, pt.LatencyMeanS * 1000, pt.GBps})
	}
	return t
}

// PrintStreaming renders the comparison.
func PrintStreaming(w io.Writer, points []StreamingPoint) {
	_ = scenario.WriteTable(w, streamingTable(points))
}
