package experiments

import (
	"math"
	"testing"

	"simaibench/internal/datastore"
	"simaibench/internal/scenario"
	"simaibench/internal/sweep"
)

// Multi-tenant invariants the scale-out family must hold: shared
// backends degrade monotonically with tenant count, node-local does not,
// and the sweep is bit-deterministic at any worker count.

func scaleOutPoint(t *testing.T, b datastore.Backend, tenants int) ScaleOutPoint {
	t.Helper()
	return RunScaleOut(ScaleOutConfig{
		Tenants: tenants, Backend: b, SizeMB: 8, TrainIters: 120,
	})
}

func TestScaleOutNodeLocalIsFlat(t *testing.T) {
	base := scaleOutPoint(t, datastore.NodeLocal, 1)
	for _, n := range []int{2, 8, 16} {
		pt := scaleOutPoint(t, datastore.NodeLocal, n)
		// Welford accumulation order differs with rank count, so allow
		// float noise but nothing a contention effect could hide in.
		if math.Abs(pt.StageMeanS-base.StageMeanS) > base.StageMeanS*1e-9 {
			t.Errorf("node-local mean stage at %d tenants = %v, want flat %v", n, pt.StageMeanS, base.StageMeanS)
		}
		if pt.SharedWaitS != 0 {
			t.Errorf("node-local shared wait = %v, want 0", pt.SharedWaitS)
		}
	}
}

func TestScaleOutSharedBackendsDegradeMonotonically(t *testing.T) {
	for _, b := range []datastore.Backend{datastore.Redis, datastore.Dragon, datastore.FileSystem} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			prev := -1.0
			degraded := false
			for _, n := range []int{1, 4, 16} {
				pt := scaleOutPoint(t, b, n)
				if pt.Writes == 0 {
					t.Fatalf("%d tenants completed no writes", n)
				}
				if pt.StageMeanS < prev {
					t.Errorf("mean stage latency decreased with load: %v tenants %v < %v", n, pt.StageMeanS, prev)
				}
				if prev > 0 && pt.StageMeanS > prev*1.01 {
					degraded = true
				}
				prev = pt.StageMeanS
			}
			if !degraded {
				t.Errorf("%s never degraded across 1→16 tenants: contention model inert", b)
			}
		})
	}
}

func TestScaleOutAggregateThroughputScalesForNodeLocal(t *testing.T) {
	one := scaleOutPoint(t, datastore.NodeLocal, 1)
	eight := scaleOutPoint(t, datastore.NodeLocal, 8)
	if eight.AggGBps < one.AggGBps*7.5 {
		t.Errorf("node-local aggregate = %v at 8 tenants vs %v at 1: want ~8x linear scaling",
			eight.AggGBps, one.AggGBps)
	}
	// Redis saturates: aggregate at 16 tenants must fall well short of
	// 16x the single-tenant aggregate.
	rOne := scaleOutPoint(t, datastore.Redis, 1)
	rSixteen := scaleOutPoint(t, datastore.Redis, 16)
	if rSixteen.AggGBps > rOne.AggGBps*12 {
		t.Errorf("redis aggregate = %v at 16 tenants vs %v at 1: collapse missing",
			rSixteen.AggGBps, rOne.AggGBps)
	}
}

func TestScaleOutSweepDeterministicAcrossWorkers(t *testing.T) {
	old := sweep.Workers
	defer func() { sweep.Workers = old }()
	sweep.Workers = 1
	serial, err := RunScaleOutSweep(bg, datastore.Redis, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	sweep.Workers = 4
	parallel, err := RunScaleOutSweep(bg, datastore.Redis, 4, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) || len(serial) == 0 {
		t.Fatalf("sweep lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d differs across worker counts:\nserial   %+v\nparallel %+v",
				i, serial[i], parallel[i])
		}
	}
}

func TestScaleOutScenarioRegistered(t *testing.T) {
	s, ok := scenario.Lookup("scale-out")
	if !ok {
		t.Fatal("scale-out scenario not registered")
	}
	if s.Defaults().Tenants != 16 {
		t.Fatalf("default tenants = %d, want 16", s.Defaults().Tenants)
	}
	res, err := s.Run(bg, scenario.Params{SweepIters: 60, Tenants: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != len(datastore.Backends()) {
		t.Fatalf("tables = %d, want one per backend", len(res.Tables))
	}
	for i, tab := range res.Tables {
		// Tenants capped at 2 → {1, 2} × two sizes.
		if len(tab.Rows) != 4 {
			t.Fatalf("table %d has %d rows, want 4", i, len(tab.Rows))
		}
		// Every row carries the slowdown column, and the tenants=1 rows
		// are the 1.00 baseline.
		slowCol := len(tab.Columns) - 1
		if tab.Columns[slowCol].Key != "slowdown" {
			t.Fatalf("table %d last column = %q, want slowdown", i, tab.Columns[slowCol].Key)
		}
		for _, row := range tab.Rows {
			if row[0].(int) == 1 && row[slowCol].(float64) != 1.0 {
				t.Fatalf("table %d baseline slowdown = %v, want 1.0", i, row[slowCol])
			}
		}
	}
}

func TestScaleOutTenantTruncation(t *testing.T) {
	cases := map[int][]int{
		0:  {1, 2, 4, 8, 16},
		1:  {1},
		4:  {1, 2, 4},
		16: {1, 2, 4, 8, 16},
		3:  {1, 2},
	}
	for max, want := range cases {
		got := scaleOutTenants(max)
		if len(got) != len(want) {
			t.Errorf("scaleOutTenants(%d) = %v, want %v", max, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("scaleOutTenants(%d) = %v, want %v", max, got, want)
				break
			}
		}
	}
}
