package experiments

import "context"

// bg is the context for test runs that never cancel.
var bg = context.Background()
