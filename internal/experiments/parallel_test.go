package experiments

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
	"simaibench/internal/scenario"
)

// Cross-engine equivalence: every metric a parallel run reports must be
// bit-identical to the sequential engine's — not approximately equal,
// ==. Pattern1Point and ScaleOutPoint are flat float64/int64 structs,
// so struct equality is bitwise equality of every reported number.

// TestLPLookaheadTagging pins the costmodel's cross-LP edge analysis:
// node-private backends parallelize, shared serialization points force
// the sequential engine.
func TestLPLookaheadTagging(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		b      datastore.Backend
		shared bool
		want   float64
	}{
		{datastore.NodeLocal, false, inf},
		{datastore.NodeLocal, true, inf},
		{datastore.Redis, false, inf},
		{datastore.Dragon, false, inf},
		{datastore.Redis, true, 0},       // multi-tenant service slots
		{datastore.Dragon, true, 0},      // multi-tenant service slots
		{datastore.FileSystem, false, 0}, // shared MDS/OST queues
		{datastore.FileSystem, true, 0},
	}
	for _, c := range cases {
		if got := costmodel.LPLookaheadS(c.b, c.shared); got != c.want {
			t.Errorf("LPLookaheadS(%s, shared=%v) = %v, want %v", c.b, c.shared, got, c.want)
		}
	}
	if !lpEligible(4, 8, inf) {
		t.Error("workers=4 over 8 LPs with +Inf lookahead should dispatch to the parallel engine")
	}
	if lpEligible(1, 8, inf) || lpEligible(4, 1, inf) || lpEligible(4, 8, 0) {
		t.Error("workers<=1, single LP, or finite lookahead must keep the sequential engine")
	}
}

// TestLPPattern1MatchesSequential: RunPattern1Checked at Workers=N is
// struct-for-struct (hence bit-for-bit) identical to the sequential
// engine, for every backend — including FileSystem, whose zero
// lookahead exercises the transparent sequential fallback.
func TestLPPattern1MatchesSequential(t *testing.T) {
	for _, b := range datastore.Backends() {
		for _, size := range []float64{2, 8} {
			base := Pattern1Config{Nodes: 8, Backend: b, SizeMB: size, TrainIters: 120}
			seq, err := RunPattern1Checked(base)
			if err != nil {
				t.Fatalf("%s/%g sequential: %v", b, size, err)
			}
			if seq.Writes == 0 || seq.Reads == 0 {
				t.Fatalf("%s/%g: degenerate sequential point %+v", b, size, seq)
			}
			for _, w := range []int{1, 2, 4, 8} {
				cfg := base
				cfg.Workers = w
				par, err := RunPattern1Checked(cfg)
				if err != nil {
					t.Fatalf("%s/%g workers=%d: %v", b, size, w, err)
				}
				if par != seq {
					t.Errorf("%s/%g workers=%d diverged:\n  par %+v\n  seq %+v", b, size, w, par, seq)
				}
			}
		}
	}
}

// TestLPPattern1LargePartition drives the headline shape — many more
// LPs than workers — through the window scheduler.
func TestLPPattern1LargePartition(t *testing.T) {
	base := Pattern1Config{Nodes: 64, Backend: datastore.NodeLocal, SizeMB: 8, TrainIters: 120}
	seq, err := RunPattern1Checked(base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Workers = 4
	par, err := RunPattern1Checked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par != seq {
		t.Errorf("64-node workers=4 diverged:\n  par %+v\n  seq %+v", par, seq)
	}
}

// TestLPScaleOutMatchesSequential: the multi-tenant harness at
// Workers=N reproduces the sequential engine bit-for-bit on every
// backend (node-local dispatches to per-tenant LPs; the shared-queue
// backends keep the sequential engine).
func TestLPScaleOutMatchesSequential(t *testing.T) {
	for _, b := range datastore.Backends() {
		base := ScaleOutConfig{Tenants: 4, Backend: b, SizeMB: 8, TrainIters: 60}
		seq, err := RunScaleOutChecked(base)
		if err != nil {
			t.Fatalf("%s sequential: %v", b, err)
		}
		if seq.Writes == 0 {
			t.Fatalf("%s: degenerate sequential point %+v", b, seq)
		}
		for _, w := range []int{2, 4} {
			cfg := base
			cfg.Workers = w
			par, err := RunScaleOutChecked(cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", b, w, err)
			}
			if par != seq {
				t.Errorf("%s workers=%d diverged:\n  par %+v\n  seq %+v", b, w, par, seq)
			}
		}
	}
}

// TestLPScenarioEquivalenceByteIdentical: registered scenarios render
// byte-identical text reports at workers=1 and workers=4 — the
// end-to-end artifact equivalence the engine promises. resilience and
// campaign do not consume Workers (their subsystems stay sequential);
// including them pins that the knob is inert there.
func TestLPScenarioEquivalenceByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		p    scenario.Params
	}{
		{"fig3", scenario.Params{SweepIters: 60}},
		{"fig4", scenario.Params{SweepIters: 60}},
		{"scale-out", scenario.Params{SweepIters: 60, Tenants: 4}},
		{"resilience", scenario.Params{SweepIters: 120, Tenants: 2}},
		{"campaign", scenario.Params{Jobs: 200, Tenants: 4}},
	}
	for _, c := range cases {
		p1 := c.p
		p1.Workers = 1
		pN := c.p
		pN.Workers = 4
		a := renderScenarioText(t, c.name, p1)
		b := renderScenarioText(t, c.name, pN)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: workers=4 report differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
				c.name, a, b)
		}
	}
}

// TestLPGuardBudgetMatchesSequential: a parallel run that blows the
// event budget reports the same structured des.BudgetExceeded as the
// sequential engine — same Guard, same Events — because the budget is
// enforced globally across LPs, not per LP.
func TestLPGuardBudgetMatchesSequential(t *testing.T) {
	base := Pattern1Config{Nodes: 8, Backend: datastore.NodeLocal, SizeMB: 8,
		TrainIters: 600, MaxEvents: 500}
	_, seqErr := RunPattern1Checked(base)
	var seqBE *des.BudgetExceeded
	if !errors.As(seqErr, &seqBE) {
		t.Fatalf("sequential run did not trip the budget: %v", seqErr)
	}
	for _, w := range []int{2, 4} {
		cfg := base
		cfg.Workers = w
		_, parErr := RunPattern1Checked(cfg)
		var parBE *des.BudgetExceeded
		if !errors.As(parErr, &parBE) {
			t.Fatalf("workers=%d run did not trip the budget: %v", w, parErr)
		}
		if parBE.Guard != seqBE.Guard || parBE.Events != seqBE.Events {
			t.Errorf("workers=%d: BudgetExceeded{Guard:%+v Events:%d}, sequential {Guard:%+v Events:%d}",
				w, parBE.Guard, parBE.Events, seqBE.Guard, seqBE.Events)
		}
	}
	// The scale-out harness enforces the same global-budget contract.
	soBase := ScaleOutConfig{Tenants: 4, Backend: datastore.NodeLocal, SizeMB: 8,
		TrainIters: 600, MaxEvents: 400}
	_, soSeqErr := RunScaleOutChecked(soBase)
	var soSeqBE *des.BudgetExceeded
	if !errors.As(soSeqErr, &soSeqBE) {
		t.Fatalf("sequential scale-out did not trip the budget: %v", soSeqErr)
	}
	soCfg := soBase
	soCfg.Workers = 4
	_, soParErr := RunScaleOutChecked(soCfg)
	var soParBE *des.BudgetExceeded
	if !errors.As(soParErr, &soParBE) {
		t.Fatalf("workers=4 scale-out did not trip the budget: %v", soParErr)
	}
	if soParBE.Guard != soSeqBE.Guard || soParBE.Events != soSeqBE.Events {
		t.Errorf("scale-out workers=4: BudgetExceeded{Guard:%+v Events:%d}, sequential {Guard:%+v Events:%d}",
			soParBE.Guard, soParBE.Events, soSeqBE.Guard, soSeqBE.Events)
	}
}

// TestLPMergeLogs pins the canonical merge order: ascending time, ties
// by LP index, stable within an LP.
func TestLPMergeLogs(t *testing.T) {
	a := &sampleLog{}
	b := &sampleLog{}
	c := &sampleLog{} // empty logs must be harmless
	a.add(1, 10)
	a.add(2, 11)
	a.add(2, 12)
	b.add(0.5, 20)
	b.add(2, 21)
	var got []float64
	mergeLogs([]*sampleLog{a, b, c}, func(v float64) { got = append(got, v) })
	want := []float64{20, 10, 11, 12, 21}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("merge order %v, want %v", got, want)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d samples, want %d", len(got), len(want))
	}
}
