package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"simaibench/internal/clock"
	"simaibench/internal/des"
	"simaibench/internal/scenario"
	"simaibench/internal/sweep"
)

// This file is the saboteur suite: a deliberately misbehaving test-only
// scenario proves each run guardrail end-to-end — a panicking cell, a
// cell wedged on a virtual-clock barrier, a cell that blows its DES event
// budget, and a flaky cell that recovers under retry — all inside one
// sweep whose healthy cells must still complete and render. It is built
// with scenario.New but never Registered, so the registry (and the
// EXPERIMENTS.md table pinned to it) is unchanged.

// saboteurModes enumerate the sweep cells in order.
var saboteurModes = []string{"ok", "panic", "hang", "budget", "flaky"}

// newSaboteurScenario builds the test-only scenario. flakyAttempts counts
// the flaky cell's attempts; stalls receives the watchdog's diagnosis of
// the hung cell.
func newSaboteurScenario(flakyAttempts *atomic.Int64, stalls chan<- *clock.StallError) scenario.Scenario {
	return scenario.New("saboteur", "test-only: one misbehaving cell per guardrail",
		scenario.Params{SweepIters: 50},
		func(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
			healthy := Pattern1Config{
				Nodes: 8, Backend: 0, SizeMB: 2,
				TrainIters: p.SweepIters, MaxEvents: p.MaxEvents,
			}
			points, fails, err := guardedGrid(ctx, p, "saboteur/cells", saboteurModes, []int{0},
				func(mode string, _ int) (Pattern1Point, error) {
					switch mode {
					case "panic":
						panic("saboteur: deliberate panic")
					case "hang":
						// Two participants join the time barrier but only this
						// goroutine ever sleeps: the barrier can never complete
						// on its own. The watchdog must diagnose the stall; its
						// handler releases the phantom participant so the cell
						// recovers and reports the stall as its failure.
						v := clock.NewVirtual()
						v.Join()
						v.Join() // phantom second participant that never sleeps
						var stall atomic.Pointer[clock.StallError]
						stop := v.Watchdog(20*time.Millisecond, func(e *clock.StallError) {
							stall.Store(e)
							v.Leave() // release the phantom; the barrier completes
						})
						defer stop()
						v.Sleep(time.Millisecond) // wedges until the watchdog intervenes
						v.Leave()
						if e := stall.Load(); e != nil {
							stalls <- e
							return Pattern1Point{}, e
						}
						return Pattern1Point{}, errors.New("hang cell completed without a stall")
					case "budget":
						cfg := healthy
						cfg.MaxEvents = 50 // far below what the run needs
						return RunPattern1Checked(cfg)
					case "flaky":
						if flakyAttempts.Add(1) == 1 {
							return Pattern1Point{}, sweep.Retryable(errors.New("saboteur: transient failure"))
						}
						return RunPattern1Checked(healthy)
					default:
						return RunPattern1Checked(healthy)
					}
				})
			if err != nil {
				return nil, err
			}
			return &scenario.Result{Scenario: "saboteur", Params: p, Failures: fails,
				Tables: []scenario.Table{fig3Table(8, points)}}, nil
		})
}

// One sweep, four sabotages: the panicking, hung and budget-blown cells
// must each surface as a structured failure with the right diagnosis,
// the flaky cell must recover under retry, and the healthy cells must
// complete and render.
func TestSaboteurScenarioGuardrails(t *testing.T) {
	var flakyAttempts atomic.Int64
	stalls := make(chan *clock.StallError, 1)
	s := newSaboteurScenario(&flakyAttempts, stalls)
	res, err := s.Run(bg, scenario.Params{TimeoutS: 30, Retries: 1})
	if err != nil {
		t.Fatalf("saboteur scenario aborted instead of reporting per-cell failures: %v", err)
	}

	byCell := map[int]scenario.CellFailure{}
	for _, f := range res.Failures {
		if f.Sweep != "saboteur/cells" {
			t.Errorf("failure has sweep label %q, want saboteur/cells", f.Sweep)
		}
		byCell[f.Cell] = f
	}
	if len(byCell) != 3 {
		t.Fatalf("failures = %+v, want exactly cells 1 (panic), 2 (hang), 3 (budget)", res.Failures)
	}
	if f := byCell[1]; !strings.Contains(f.Error, "panic: saboteur: deliberate panic") || f.Attempts != 1 {
		t.Errorf("panic cell failure = %+v", f)
	}
	if f := byCell[2]; !strings.Contains(f.Error, "stalled") {
		t.Errorf("hang cell failure = %+v, want a stall diagnosis", f)
	}
	if f := byCell[3]; !strings.Contains(f.Error, "event budget exceeded") {
		t.Errorf("budget cell failure = %+v, want a budget diagnosis", f)
	}

	// The watchdog fired with a usable diagnosis of the barrier state.
	select {
	case e := <-stalls:
		if !errors.Is(e, clock.ErrStalled) || e.Joined != 2 || e.Sleepers != 1 {
			t.Errorf("stall diagnosis = %+v, want 2 joined / 1 sleeper", e)
		}
	default:
		t.Error("the hung cell's watchdog never fired")
	}

	// The flaky cell recovered on its second attempt; with the healthy
	// cell that makes two completed rows in the rendered table.
	if got := flakyAttempts.Load(); got != 2 {
		t.Errorf("flaky cell made %d attempts, want 2", got)
	}
	if rows := len(res.Tables[0].Rows); rows != 2 {
		t.Errorf("table has %d rows, want the 2 surviving cells", rows)
	}

	// The failures render explicitly through the text reporter.
	reporter, _ := scenario.NewReporter("text")
	var buf bytes.Buffer
	if err := reporter.Report(&buf, []*scenario.Result{res}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"FAILED cells — saboteur (3 of the sweep's cells did not complete)",
		"saboteur/cells[1] after 1 attempt(s): panic: saboteur: deliberate panic",
		"event budget exceeded",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, buf.String())
		}
	}
}

// A registered scenario run with an absurdly small event budget must
// report every cell as a structured budget failure — and still return a
// renderable (empty-table) result rather than aborting.
func TestRegisteredScenarioBudgetBlowout(t *testing.T) {
	s, ok := scenario.Lookup("fig5")
	if !ok {
		t.Fatal("fig5 not registered")
	}
	res, err := s.Run(bg, scenario.Params{Transfers: 5, MaxEvents: 10})
	if err != nil {
		t.Fatalf("budget-starved fig5 aborted instead of reporting failures: %v", err)
	}
	wantCells := len(Pattern2Backends) * len(Fig5Sizes)
	if len(res.Failures) != wantCells {
		t.Fatalf("%d failures, want all %d cells", len(res.Failures), wantCells)
	}
	for _, f := range res.Failures {
		if !strings.Contains(f.Error, "event budget exceeded") {
			t.Fatalf("cell %d failed with %q, want a budget diagnosis", f.Cell, f.Error)
		}
	}
	if rows := len(res.Tables[0].Rows); rows != 0 {
		t.Fatalf("table has %d rows from budget-starved cells", rows)
	}
}

// The Checked harness variants surface the budget trip as a structured
// des.BudgetExceeded for every simulated harness family.
func TestCheckedHarnessesSurfaceBudget(t *testing.T) {
	cases := map[string]func() error{
		"pattern1": func() error {
			_, err := RunPattern1Checked(Pattern1Config{TrainIters: 50, MaxEvents: 20})
			return err
		},
		"fig5": func() error {
			_, err := RunFig5Checked(Fig5Config{Transfers: 50, MaxEvents: 3})
			return err
		},
		"fig6": func() error {
			_, err := RunFig6Checked(Fig6Config{TrainIters: 50, MaxEvents: 20})
			return err
		},
		"scale-out": func() error {
			_, err := RunScaleOutChecked(ScaleOutConfig{TrainIters: 50, MaxEvents: 20})
			return err
		},
		"resilience": func() error {
			_, err := RunResilienceChecked(ResilienceConfig{TrainIters: 50, MaxEvents: 20})
			return err
		},
	}
	for name, run := range cases {
		err := run()
		var be *des.BudgetExceeded
		if !errors.As(err, &be) {
			t.Errorf("%s: error = %v, want des.BudgetExceeded", name, err)
		}
	}
}

// The zero-cost contract, end to end: enabling every guardrail with
// generous limits must leave scenario output byte-identical to a run
// with no guardrails at all.
func TestGuardrailsZeroCostOnHealthyRuns(t *testing.T) {
	generous := scenario.Params{TimeoutS: 600, Retries: 2, MaxEvents: 1 << 40}
	cases := []struct {
		name string
		p    scenario.Params
	}{
		{"fig3", scenario.Params{SweepIters: 60}},
		{"fig5", scenario.Params{Transfers: 5}},
		{"scale-out", scenario.Params{SweepIters: 60, Tenants: 2}},
	}
	for _, tc := range cases {
		plain := renderText(t, tc.name, tc.p)
		guarded := tc.p
		guarded.TimeoutS, guarded.Retries, guarded.MaxEvents = generous.TimeoutS, generous.Retries, generous.MaxEvents
		withRails := renderText(t, tc.name, guarded)
		if !bytes.Equal(plain, withRails) {
			t.Errorf("%s: output differs with guardrails enabled\n--- plain ---\n%s\n--- guarded ---\n%s",
				tc.name, plain, withRails)
		}
	}
}
