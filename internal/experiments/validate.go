package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"simaibench/internal/ai"
	"simaibench/internal/clock"
	"simaibench/internal/config"
	"simaibench/internal/datastore"
	"simaibench/internal/scenario"
	"simaibench/internal/simulation"
	"simaibench/internal/trace"
	"simaibench/internal/workflow"
)

// ValidationMode selects which side of the Table 2/3 comparison to run.
type ValidationMode int

const (
	// Original emulates the production nekRS-ML workflow using the
	// iteration-time distributions measured from it (mean 0.0312 s, std
	// 0.0273 s simulation; 0.0611 s ± 0.1 training). The production run
	// itself is not available here (it needs Aurora + nekRS), so its
	// published statistics are the ground truth we sample from — the
	// substitution documented in DESIGN.md.
	Original ValidationMode = iota
	// MiniApp is the SimAI-Bench mini-app: fixed run_time per the
	// Listing 2 configuration.
	MiniApp
)

// String returns the mode label used in tables.
func (m ValidationMode) String() string {
	if m == Original {
		return "Original"
	}
	return "Mini-app"
}

// ValidationConfig drives one validation run (§4.1.1).
type ValidationConfig struct {
	Mode ValidationMode
	// TrainIters: training iterations before the trainer steers the
	// workflow to stop (5000 in the paper).
	TrainIters int
	// WritePeriod: solver iterations between snapshot writes (100).
	WritePeriod int
	// ReadPeriod: training iterations between data-loader polls (10).
	ReadPeriod int
	// PayloadBytes per staged array (1.2 MB per rank in the original).
	PayloadBytes int
	// TimeScale compresses every emulated duration so a 300-virtual-
	// second run completes in well under a wall second.
	TimeScale float64
	// Backend for staging (the original uses Redis via SmartSim; any
	// backend works since validation measures event structure).
	Backend datastore.Backend
	// SimInitS / TrainInitS: initialization times (gray areas of Fig 2).
	SimInitS   float64
	TrainInitS float64
	Seed       int64
	// Clock selects the emulation time domain: clock.KindVirtual (the
	// default) runs both components against one virtual clock — no real
	// sleeping, bit-deterministic per seed, DES-speed — while
	// clock.KindWall keeps the genuine-compute wall-clock emulation the
	// paper validates with.
	Clock string
}

func (c ValidationConfig) withDefaults() ValidationConfig {
	if c.TrainIters == 0 {
		c.TrainIters = 5000
	}
	if c.WritePeriod == 0 {
		c.WritePeriod = 100
	}
	if c.ReadPeriod == 0 {
		c.ReadPeriod = 10
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 1_200_000
	}
	if c.TimeScale == 0 {
		c.TimeScale = 0.002
	}
	if c.SimInitS == 0 {
		c.SimInitS = 2.0
	}
	if c.TrainInitS == 0 {
		c.TrainInitS = 5.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clock == "" {
		c.Clock = clock.KindVirtual
	}
	return c
}

// simConfig builds the solver component configuration for the mode.
// Both modes use a small kernel so real compute never exceeds the scaled
// iteration budget; the run_time distribution is what differs.
func (c ValidationConfig) simConfig() config.SimulationConfig {
	rt := config.DistSpec{Type: "fixed", Value: 0.03147}
	if c.Mode == Original {
		rt = config.DistSpec{Type: "lognormal", Mean: 0.0312, Std: 0.0273}
	}
	return config.SimulationConfig{Kernels: []config.KernelSpec{{
		Name:     "nekrs_iter",
		Kernel:   "AXPY",
		RunTime:  &rt,
		DataSize: []int{512},
		Device:   "xpu",
	}}}
}

// aiConfig builds the trainer configuration for the mode.
func (c ValidationConfig) aiConfig() config.AIConfig {
	rt := config.DistSpec{Type: "fixed", Value: 0.061}
	if c.Mode == Original {
		rt = config.DistSpec{Type: "lognormal", Mean: 0.0611, Std: 0.1}
	}
	return config.AIConfig{
		Layers:  []int{8, 16, 8},
		LR:      0.01,
		Batch:   16,
		RunTime: &rt,
		Device:  "xpu",
	}
}

// SideStats summarizes one component of a validation run (one row pair
// of Tables 2 and 3).
type SideStats struct {
	Timesteps       int
	TransportEvents int
	IterMean        float64
	IterStd         float64
}

// ValidationResult is a full validation run.
type ValidationResult struct {
	Mode     ValidationMode
	Sim      SideStats
	Train    SideStats
	Timeline *trace.Timeline
	// MakespanS is the unscaled workflow duration in emulated seconds.
	MakespanS float64
}

// control keys (metadata, not counted as data-transport events — they
// carry a step index, not training data).
const (
	keyHead = "control/head"
	keyStop = "control/stop"
)

// dataKeys returns the two staged arrays of one snapshot (inputs and
// targets — each snapshot is two transport events on each side, which is
// how the original's ~2 events per write period arise).
func dataKeys(step int) (string, string) {
	return fmt.Sprintf("data/%d/x", step), fmt.Sprintf("data/%d/y", step)
}

// RunValidation executes the one-to-one workflow in real mode: two
// concurrent components exchanging real bytes through a real backend,
// with the trainer steering the simulation to stop after its final
// iteration — the structure of §4.1.1. Both components run against the
// configured emulation clock: under the default virtual clock all
// padding is free (the run completes as fast as its real compute and
// staging allow, deterministically per seed); under the wall clock this
// is the paper's genuine real-time emulation. Cancelling ctx aborts
// both components at their next iteration boundary.
func RunValidation(ctx context.Context, cfg ValidationConfig) (*ValidationResult, error) {
	cfg = cfg.withDefaults()
	clk, err := clock.FromKind(cfg.Clock)
	if err != nil {
		return nil, err
	}
	mgr, info, err := datastore.StartBackend(cfg.Backend, "")
	if err != nil {
		return nil, err
	}
	defer mgr.Stop()

	tl := trace.New()
	scale := cfg.TimeScale
	start := clk.Now()
	elapsed := func() float64 { return clk.Now().Sub(start).Seconds() / scale }

	res := &ValidationResult{Mode: cfg.Mode, Timeline: tl}
	w := workflow.New("validation-"+cfg.Mode.String(), workflow.WithClock(clk))

	// Simulation component.
	err = w.Register(workflow.Component{
		Name: "sim",
		Body: func(ctx workflow.Ctx) error {
			store, err := datastore.Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			sim, err := simulation.New("sim", cfg.simConfig(),
				simulation.WithStore(store),
				simulation.WithTimeline(tl, "Simulation"),
				simulation.WithSeed(cfg.Seed),
				simulation.WithTimeScale(scale),
				simulation.WithClock(clk))
			if err != nil {
				return err
			}
			clk.Sleep(time.Duration(cfg.SimInitS * scale * float64(time.Second)))
			tl.AddSpan("Simulation", trace.KindInit, 0, elapsed(), "init")
			// Stage valid float64 arrays so the trainer's loader gets
			// usable samples (random bytes would decode to NaNs).
			rng := rand.New(rand.NewSource(cfg.Seed + 100))
			vals := make([]float64, cfg.PayloadBytes/8)
			for i := range vals {
				vals[i] = rng.NormFloat64()
			}
			payload := ai.EncodeFloat64s(vals)
			step := 0
			for {
				if err := sim.RunIteration(); err != nil {
					return err
				}
				step++
				if step%cfg.WritePeriod == 0 {
					kx, ky := dataKeys(step)
					if err := sim.StageWrite(kx, payload); err != nil {
						return err
					}
					if err := sim.StageWrite(ky, payload[:cfg.PayloadBytes/8]); err != nil {
						return err
					}
					// Head pointer: control metadata, written raw.
					if err := store.StageWrite(keyHead, []byte(fmt.Sprint(step))); err != nil {
						return err
					}
				}
				if step%10 == 0 {
					if stop, _ := store.Poll(keyStop); stop {
						break
					}
					if ctx.Err() != nil {
						return ctx.Err()
					}
				}
			}
			r := sim.Report()
			res.Sim = SideStats{
				Timesteps:       r.Iterations,
				TransportEvents: r.Writes + r.Reads,
				IterMean:        r.IterMean,
				IterStd:         r.IterStd,
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	// AI training component.
	err = w.Register(workflow.Component{
		Name: "train",
		Body: func(ctx workflow.Ctx) error {
			store, err := datastore.Connect(info)
			if err != nil {
				return err
			}
			defer store.Close()
			tr, err := ai.New("train", cfg.aiConfig(),
				ai.WithStore(store),
				ai.WithTimeline(tl, "Training"),
				ai.WithSeed(cfg.Seed+7),
				ai.WithTimeScale(scale),
				ai.WithClock(clk))
			if err != nil {
				return err
			}
			clk.Sleep(time.Duration(cfg.TrainInitS * scale * float64(time.Second)))
			tl.AddSpan("Training", trace.KindInit, 0, elapsed(), "init")
			lastStep := ""
			for i := 1; i <= cfg.TrainIters; i++ {
				if _, err := tr.TrainIteration(); err != nil {
					return err
				}
				if i%cfg.ReadPeriod == 0 {
					head, err := store.StageRead(keyHead) // control metadata
					if errors.Is(err, datastore.ErrNotStaged) {
						continue
					}
					if err != nil {
						return err
					}
					if string(head) == lastStep {
						continue // no new snapshot
					}
					lastStep = string(head)
					var step int
					fmt.Sscan(lastStep, &step)
					kx, ky := dataKeys(step)
					if err := tr.UpdateLoader(kx); err != nil {
						return err
					}
					if err := tr.UpdateLoader(ky); err != nil {
						return err
					}
				}
				if ctx.Err() != nil {
					return ctx.Err()
				}
			}
			// Steer the workflow: tell the simulation to stop.
			if err := store.StageWrite(keyStop, []byte("1")); err != nil {
				return err
			}
			r := tr.Report()
			res.Train = SideStats{
				Timesteps:       r.Iterations,
				TransportEvents: r.Reads,
				IterMean:        r.IterMean,
				IterStd:         r.IterStd,
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	if err := w.Launch(ctx); err != nil {
		return nil, err
	}
	res.MakespanS = elapsed()
	return res, nil
}

// table2Table structures the event-count comparison (Table 2).
func table2Table(original, miniApp *ValidationResult) scenario.Table {
	t := scenario.Table{
		Title: "Table 2 — time steps and data-transport events",
		Columns: []scenario.Column{
			{Key: "mode", Head: "", HeadFmt: "%-10s", CellFmt: "%-10s"},
			{Key: "sim_steps", Head: "sim steps", HeadFmt: "%12s", CellFmt: "%12d"},
			{Key: "sim_transport", Head: "sim transport", HeadFmt: "%14s", CellFmt: "%14d"},
			{Key: "train_steps", Head: "train steps", HeadFmt: "%12s", CellFmt: "%12d"},
			{Key: "train_transport", Head: "train transport", HeadFmt: "%14s", CellFmt: "%14d"},
		},
	}
	for _, r := range []*ValidationResult{original, miniApp} {
		t.Rows = append(t.Rows, []any{r.Mode.String(), r.Sim.Timesteps, r.Sim.TransportEvents,
			r.Train.Timesteps, r.Train.TransportEvents})
	}
	return t
}

// PrintTable2 renders the event-count comparison (Table 2).
func PrintTable2(w io.Writer, original, miniApp *ValidationResult) {
	_ = scenario.WriteTable(w, table2Table(original, miniApp))
}

// table3Table structures the iteration-time comparison (Table 3).
func table3Table(original, miniApp *ValidationResult) scenario.Table {
	t := scenario.Table{
		Title: "Table 3 — iteration time mean / std (s)",
		Columns: []scenario.Column{
			{Key: "mode", Head: "", HeadFmt: "%-10s", CellFmt: "%-10s"},
			{Key: "sim_iter_mean_s", Head: "sim mean", HeadFmt: "%12s", CellFmt: "%12.4f"},
			{Key: "sim_iter_std_s", Head: "sim std", HeadFmt: "%12s", CellFmt: "%12.4f"},
			{Key: "train_iter_mean_s", Head: "train mean", HeadFmt: "%12s", CellFmt: "%12.4f"},
			{Key: "train_iter_std_s", Head: "train std", HeadFmt: "%12s", CellFmt: "%12.4f"},
		},
	}
	for _, r := range []*ValidationResult{original, miniApp} {
		t.Rows = append(t.Rows, []any{r.Mode.String(), r.Sim.IterMean, r.Sim.IterStd,
			r.Train.IterMean, r.Train.IterStd})
	}
	return t
}

// PrintTable3 renders the iteration-time comparison (Table 3).
func PrintTable3(w io.Writer, original, miniApp *ValidationResult) {
	_ = scenario.WriteTable(w, table3Table(original, miniApp))
}

// fig2Tables renders the two execution timelines as freeform ASCII
// tables (Fig 2): a window of the run showing compute spans, transfer
// marks and init areas.
func fig2Tables(original, miniApp *ValidationResult, windowS float64) ([]scenario.Table, error) {
	var tables []scenario.Table
	for _, r := range []*ValidationResult{original, miniApp} {
		var body strings.Builder
		if err := r.Timeline.Render(&body, 0, windowS, 100); err != nil {
			return nil, err
		}
		tables = append(tables, scenario.Table{
			Title: fmt.Sprintf("Fig 2 (%s) — timeline, first %.0f emulated seconds "+
				"(█ compute, | transfer, ░ init)", r.Mode, windowS),
			Text: body.String(),
		})
	}
	return tables, nil
}

// PrintFig2 renders the two execution timelines as ASCII (Fig 2).
func PrintFig2(w io.Writer, original, miniApp *ValidationResult, windowS float64) error {
	tables, err := fig2Tables(original, miniApp, windowS)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := scenario.WriteTable(w, t); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
