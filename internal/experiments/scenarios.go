package experiments

import (
	"context"
	"fmt"
	"sync"

	"simaibench/internal/clock"
	"simaibench/internal/datastore"
	"simaibench/internal/scenario"
)

// This file wires every experiment into the scenario registry: the
// paper's tables and figures, the streaming extension and the mechanism
// ablations are all enumerable and runnable through scenario.Resolve —
// the CLI's switch statement is gone, and a new workload is one
// Register call next to its harness.

// Paper-default ablation axes (the -exp ablation sweep values).
var (
	// MDSAblationServices sweeps the Lustre MDS service time from ablated
	// (10 µs) through the calibrated 0.4 ms to 4× that.
	MDSAblationServices = []float64{0.00001, 0.0001, 0.0004, 0.0016}
	// CacheAblationShares sweeps the per-process L3 share (MB) from
	// starved to effectively unlimited.
	CacheAblationShares = []float64{2, 8.75, 35, 1000}
	// IncastAblationLatencies sweeps Dragon's per-message incast latency
	// (s) from ablated to 4× the calibrated 10 ms.
	IncastAblationLatencies = []float64{0, 0.002, 0.010, 0.040}
)

// validationDefaults are the paper's §4.1.1 settings; the CLI overrides
// TrainIters/TimeScale for quick runs. The default clock is virtual —
// the run is bit-deterministic and completes at DES speed; -clock wall
// restores the genuine real-time emulation the paper measures with.
var validationDefaults = scenario.Params{
	TrainIters: 5000, TimeScale: 0.01, TimelineWindowS: 25, Clock: clock.KindVirtual,
}

// sweepDefaults drive the simulated-scale sweeps; 600 iterations per
// point preserve the steady-state statistics of the paper's >=2500.
var sweepDefaults = scenario.Params{SweepIters: 600}

func init() {
	scenario.Register(scenario.New("table2",
		"Table 2 — time-step and transport-event validation, original vs mini-app (real mode)",
		validationDefaults, runTable2))
	scenario.Register(scenario.New("table3",
		"Table 3 — iteration-time statistics, original vs mini-app (real mode)",
		validationDefaults, runTable3))
	scenario.Register(scenario.New("fig2",
		"Fig 2 — execution timelines of both validation runs (ASCII)",
		validationDefaults, runFig2))
	scenario.Register(scenario.New("fig3",
		"Fig 3 — Pattern 1 per-process throughput sweep (8 and 512 simulated nodes)",
		sweepDefaults, runFig3Scenario))
	scenario.Register(scenario.New("fig4",
		"Fig 4 — Pattern 1 compute vs transport time per event (8 and 512 nodes)",
		sweepDefaults, runFig4Scenario))
	scenario.Register(scenario.New("fig5",
		"Fig 5 — Pattern 2 two-node non-local read / local write throughput",
		scenario.Params{Transfers: 50}, runFig5Scenario))
	scenario.Register(scenario.New("fig6",
		"Fig 6 — Pattern 2 many-to-one training runtime scaling (8 and 128 sim nodes)",
		sweepDefaults, runFig6Scenario))
	scenario.Register(scenario.New("streaming",
		"Extension — staged polling vs point-to-point streaming (real data movement)",
		scenario.Params{Clock: clock.KindVirtual}, runStreamingScenario))
	scenario.Register(scenario.New("ablation",
		"Mechanism ablations — MDS service time, cache share, Dragon incast latency",
		sweepDefaults, runAblationScenario))
	scenario.Register(scenario.New("scale-out",
		"Multi-tenant contention — N co-scheduled workflows on one shared deployment (slowdown + collapse curves)",
		scenario.Params{SweepIters: 600, Tenants: 16}, runScaleOutScenario))
	scenario.Register(scenario.New("resilience",
		"Fault injection — node crashes vs checkpoint/restart cadence per backend (wasted work + optimal interval)",
		scenario.Params{SweepIters: 600, Tenants: 4}, runResilienceScenario))
	scenario.Register(scenario.New("campaign",
		"Facility-scale scheduling — open-loop job stream vs global policy (queueing tails, utilization, fairness)",
		scenario.Params{Jobs: 2000, Tenants: 8}, runCampaignScenario))
	scenario.Register(scenario.New("gradsync",
		"Gradient synchronization — AllReduce algorithms (ring/tree/hier) over the dragonfly topology (step time, comm fraction, crossover)",
		sweepDefaults, runGradSyncScenario))
	// "all" reproduces the paper's core artifacts in presentation order
	// (the streaming extension and ablations remain separate ids, as in
	// the pre-registry CLI).
	scenario.RegisterGroup("all", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6")
}

// validationCache memoizes real-mode validation runs within one
// context tree, so the table2/table3/fig2 scenarios share one
// (mode, iters, scale) measurement when run together — exactly as the
// pre-registry CLI ran validation once for table2+table3+fig2 — while
// independent Run calls (fresh contexts) re-measure from scratch.
type validationCache struct {
	sync.Mutex
	m map[ValidationConfig]*ValidationResult
}

type validationCacheKey struct{}

// WithValidationCache returns a context under which the validation
// scenarios memoize their runs: every scenario Run sharing this context
// reuses the same measured ValidationResult per configuration. Without
// it each Run measures independently.
func WithValidationCache(ctx context.Context) context.Context {
	return context.WithValue(ctx, validationCacheKey{},
		&validationCache{m: map[ValidationConfig]*ValidationResult{}})
}

// validationPair returns the Original and MiniApp runs for p, sharing
// measurements through the context's validation cache when present.
func validationPair(ctx context.Context, p scenario.Params) (orig, mini *ValidationResult, err error) {
	cache, _ := ctx.Value(validationCacheKey{}).(*validationCache)
	run := func(mode ValidationMode) (*ValidationResult, error) {
		cfg := ValidationConfig{Mode: mode, TrainIters: p.TrainIters, TimeScale: p.TimeScale, Clock: p.Clock}
		if cache == nil {
			return RunValidation(ctx, cfg)
		}
		cache.Lock()
		defer cache.Unlock()
		if r, ok := cache.m[cfg]; ok {
			return r, nil
		}
		r, err := RunValidation(ctx, cfg)
		if err != nil {
			return nil, err
		}
		cache.m[cfg] = r
		return r, nil
	}
	if orig, err = run(Original); err != nil {
		return nil, nil, err
	}
	if mini, err = run(MiniApp); err != nil {
		return nil, nil, err
	}
	return orig, mini, nil
}

func runTable2(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	orig, mini, err := validationPair(ctx, p)
	if err != nil {
		return nil, err
	}
	return &scenario.Result{Scenario: "table2", Params: p,
		Tables: []scenario.Table{table2Table(orig, mini)}}, nil
}

func runTable3(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	orig, mini, err := validationPair(ctx, p)
	if err != nil {
		return nil, err
	}
	return &scenario.Result{Scenario: "table3", Params: p,
		Tables: []scenario.Table{table3Table(orig, mini)}}, nil
}

func runFig2(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	orig, mini, err := validationPair(ctx, p)
	if err != nil {
		return nil, err
	}
	tables, err := fig2Tables(orig, mini, p.TimelineWindowS)
	if err != nil {
		return nil, err
	}
	return &scenario.Result{Scenario: "fig2", Params: p, Tables: tables}, nil
}

// The simulated-scale scenario runners below all follow one shape: each
// grid runs through guardedGrid, so a panicking, hanging or
// budget-blowing cell becomes a structured entry in Result.Failures
// while every other cell still renders. The exported Run* sweep helpers
// (RunFig3, RunFig5Sweep, …) keep their plain unguarded signatures for
// library callers.

func runFig3Scenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	res := &scenario.Result{Scenario: "fig3", Params: p}
	for _, nodes := range Fig3NodeCounts {
		points, fails, err := guardedGrid(ctx, p, fmt.Sprintf("fig3/%d-nodes", nodes),
			datastore.Backends(), Fig3Sizes,
			func(b datastore.Backend, size float64) (Pattern1Point, error) {
				return RunPattern1Checked(Pattern1Config{
					Nodes: nodes, Backend: b, SizeMB: size,
					TrainIters: p.SweepIters, MaxEvents: p.MaxEvents, Workers: p.Workers,
				})
			})
		if err != nil {
			return nil, err
		}
		res.Failures = append(res.Failures, fails...)
		res.Tables = append(res.Tables, fig3Table(nodes, points))
	}
	return res, nil
}

func runFig4Scenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	res := &scenario.Result{Scenario: "fig4", Params: p}
	for _, nodes := range Fig3NodeCounts {
		points, fails, err := guardedGrid(ctx, p, fmt.Sprintf("fig4/%d-nodes", nodes),
			Fig4Backends, Fig3Sizes,
			func(b datastore.Backend, size float64) (Pattern1Point, error) {
				return RunPattern1Checked(Pattern1Config{
					Nodes: nodes, Backend: b, SizeMB: size,
					TrainIters: p.SweepIters, MaxEvents: p.MaxEvents, Workers: p.Workers,
				})
			})
		if err != nil {
			return nil, err
		}
		res.Failures = append(res.Failures, fails...)
		res.Tables = append(res.Tables, fig4Table(nodes, points))
	}
	return res, nil
}

func runFig5Scenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	points, fails, err := guardedGrid(ctx, p, "fig5", Pattern2Backends, Fig5Sizes,
		func(b datastore.Backend, size float64) (Fig5Point, error) {
			return RunFig5Checked(Fig5Config{
				Backend: b, SizeMB: size, Transfers: p.Transfers, MaxEvents: p.MaxEvents,
			})
		})
	if err != nil {
		return nil, err
	}
	return &scenario.Result{Scenario: "fig5", Params: p, Failures: fails,
		Tables: []scenario.Table{fig5Table(points)}}, nil
}

func runFig6Scenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	res := &scenario.Result{Scenario: "fig6", Params: p}
	for _, nodes := range Fig6NodeCounts {
		points, fails, err := guardedGrid(ctx, p, fmt.Sprintf("fig6/%d-nodes", nodes),
			Pattern2Backends, Fig6Sizes,
			func(b datastore.Backend, size float64) (Fig6Point, error) {
				return RunFig6Checked(Fig6Config{
					Nodes: nodes, Backend: b, SizeMB: size,
					TrainIters: p.SweepIters, MaxEvents: p.MaxEvents,
				})
			})
		if err != nil {
			return nil, err
		}
		res.Failures = append(res.Failures, fails...)
		res.Tables = append(res.Tables, fig6Table(nodes, points))
	}
	return res, nil
}

// StreamingSizes are the message sizes of the streaming comparison.
var StreamingSizes = []float64{0.4, 2, 8}

func runStreamingScenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	res := &scenario.Result{Scenario: "streaming", Params: p}
	for _, size := range StreamingSizes {
		points, err := RunStreamingComparison(ctx, StreamingConfig{SizeMB: size, Clock: p.Clock})
		if err != nil {
			return nil, err
		}
		res.Tables = append(res.Tables, streamingTable(points))
	}
	return res, nil
}

func runAblationScenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	mds, mdsFails, err := runMDSAblationGuarded(ctx, p)
	if err != nil {
		return nil, err
	}
	cache, cacheFails, err := runCacheAblationGuarded(ctx, p)
	if err != nil {
		return nil, err
	}
	incast, incastFails, err := runIncastAblationGuarded(ctx, p)
	if err != nil {
		return nil, err
	}
	res := &scenario.Result{Scenario: "ablation", Params: p, Tables: []scenario.Table{
		mdsAblationTable(mds), cacheAblationTable(cache), incastAblationTable(incast),
	}}
	res.Failures = append(res.Failures, mdsFails...)
	res.Failures = append(res.Failures, cacheFails...)
	res.Failures = append(res.Failures, incastFails...)
	return res, nil
}
