package experiments

import (
	"context"
	"fmt"
	"io"

	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/scenario"
	"simaibench/internal/stats"
	"simaibench/internal/sweep"
)

// Scale-out family: multi-tenant cluster contention. Every scenario the
// paper ships runs a single workflow against a dedicated deployment;
// real clusters co-schedule many AI-HPC workflows on shared Redis /
// Dragon / Lustre infrastructure. Here N tenants each run the co-located
// one-to-one workflow on their own nodes (the cluster scales out with
// tenant count — cluster.CoSchedule hands each a dedicated block), but
// all staging traffic goes through ONE shared backend deployment
// (costmodel.NewSharedLocalWrite/Read): Redis shards and the Dragon
// managers serialize on their service slots, the Lustre MDS absorbs
// every tenant's metadata ops, and per-node tmpfs scales for free. The
// reported observables are per-tenant slowdown (mean staging latency vs
// the 1-tenant baseline) and the shared backend's queueing delay — the
// throughput-collapse curves that invert the paper's single-tenant
// transport rankings.

// ScaleOutConfig drives one multi-tenant measurement: N concurrent
// one-to-one workflow instances against a shared backend deployment.
type ScaleOutConfig struct {
	// Tenants is the number of co-scheduled workflow instances.
	Tenants int
	// NodesPerTenant sizes each tenant's dedicated node block (2).
	NodesPerTenant int
	Backend        datastore.Backend
	SizeMB         float64
	// SimIterS / TrainIterS: emulated iteration times (same profile as
	// Pattern 1).
	SimIterS   float64
	TrainIterS float64
	// WritePeriod / ReadPeriod in iterations. The multi-tenant study
	// stages every 10 solver iterations (vs Pattern 1's 100): contention
	// is a load phenomenon, and the aggressive cadence is what a heavily
	// trafficked shared cluster sees.
	WritePeriod int
	ReadPeriod  int
	// TrainIters: training iterations to simulate per tenant.
	TrainIters int
	// MaxEvents caps the DES events the run may execute (0 = unlimited);
	// RunScaleOutChecked surfaces the budget trip as an error.
	MaxEvents int64
	// Workers selects the parallel DES engine: with Workers > 1 the run
	// partitions into one logical process per tenant (des.LPSet)
	// advanced by up to that many cores, when the shared deployment has
	// no cross-tenant edges (node-local only); backends with shared
	// service queues keep the sequential engine. Results are
	// bit-identical to Workers <= 1.
	Workers int
	// Params overrides the cost-model constants (zero value = Default).
	Params *costmodel.Params
}

// withDefaults fills unset (or nonsensical non-positive) fields with the
// scale-out defaults, so RunScaleOut — a public API through
// pkg/simaibench — never panics on bad input.
func (c ScaleOutConfig) withDefaults() ScaleOutConfig {
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.NodesPerTenant <= 0 {
		c.NodesPerTenant = 2
	}
	if c.SizeMB <= 0 {
		c.SizeMB = 8
	}
	if c.SimIterS <= 0 {
		c.SimIterS = 0.0325
	}
	if c.TrainIterS <= 0 {
		c.TrainIterS = 0.0633
	}
	if c.WritePeriod <= 0 {
		c.WritePeriod = 10
	}
	if c.ReadPeriod <= 0 {
		c.ReadPeriod = 10
	}
	if c.TrainIters <= 0 {
		c.TrainIters = 300
	}
	return c
}

// ScaleOutPoint is one (tenants, backend, size) measurement.
type ScaleOutPoint struct {
	Tenants int
	Backend datastore.Backend
	SizeMB  float64
	// WriteGBps / ReadGBps: per-process staging throughput, averaged
	// over every rank of every tenant (the Fig 3 metric under load).
	WriteGBps float64
	ReadGBps  float64
	// StageMeanS / StageP50S: mean and median end-to-end write staging
	// latency (queueing included).
	StageMeanS float64
	StageP50S  float64
	// SharedWaitS: mean queueing delay at the backend's shared
	// serialization point (service slots or Lustre MDS); 0 for
	// node-local.
	SharedWaitS float64
	// AggGBps: aggregate staged-write throughput across all tenants —
	// the backend's delivered throughput, whose flattening under rising
	// tenant count is the collapse curve.
	AggGBps float64
	// Writes: completed staged writes across all tenants.
	Writes int64
}

// RunScaleOut simulates cfg.Tenants concurrent one-to-one workflows
// co-scheduled by cluster.CoSchedule onto dedicated node blocks, all
// staging through one shared deployment of cfg.Backend. The ranks are
// the Pattern 1 machines of flat.go in shared mode (shared: true), so
// single- and multi-tenant runs share one state-machine implementation.
func RunScaleOut(cfg ScaleOutConfig) ScaleOutPoint {
	pt, _ := RunScaleOutChecked(cfg)
	return pt
}

// RunScaleOutChecked is RunScaleOut under the run guardrails: with
// cfg.MaxEvents set, a runaway simulation aborts with the structured
// des.BudgetExceeded error. With no budget it never fails.
func RunScaleOutChecked(cfg ScaleOutConfig) (ScaleOutPoint, error) {
	cfg = cfg.withDefaults()
	if lpEligible(cfg.Workers, cfg.Tenants, costmodel.LPLookaheadS(cfg.Backend, true)) {
		return runScaleOutLP(cfg)
	}
	spec := cluster.Aurora(cfg.Tenants * cfg.NodesPerTenant)
	tenants, err := cluster.CoSchedule(spec, cfg.Tenants, cfg.NodesPerTenant)
	if err != nil {
		// Unreachable with withDefaults-sanitized inputs.
		panic(err)
	}
	place := cluster.Pattern1Placement(spec)
	env := newGuardedEnv(cfg.MaxEvents)
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	model := costmodel.New(env, spec, params)

	horizon := float64(cfg.TrainIters) * cfg.TrainIterS
	bytes := int64(cfg.SizeMB * 1e6)
	var writeTput, readTput stats.Throughput
	var writeTime stats.Welford

	writePeriod := float64(cfg.WritePeriod) * cfg.SimIterS
	nodes := cfg.Tenants * cfg.NodesPerTenant
	simRanks := nodes * place.SimTilesPerNode
	// Size the latency-sample sink for the expected write count (ranks ×
	// periods, plus slack for boundary writes) so recording contention
	// percentiles never regrows it mid-run.
	samples := make([]float64, 0, simRanks*(int(horizon/writePeriod)+2))
	// Slab-allocate the rank machines, as RunPattern1 does.
	writers := make([]simWriter, simRanks)
	readers := make([]aiReader, nodes*place.AITilesPerNode)
	wi, ri := 0, 0
	for _, tn := range tenants {
		for _, node := range tn.Nodes {
			for r := 0; r < place.SimTilesPerNode; r++ {
				initSimWriter(&writers[wi], env, model, simWriterConfig{
					backend: cfg.Backend, node: node, sizeMB: cfg.SizeMB,
					period: writePeriod, horizon: horizon, bytes: bytes,
					time: &writeTime, tput: &writeTput, samples: &samples,
					shared: true,
				})
				wi++
			}
			for r := 0; r < place.AITilesPerNode; r++ {
				initAIReader(&readers[ri], env, model, aiReaderConfig{
					backend: cfg.Backend, node: node, sizeMB: cfg.SizeMB,
					readPeriod:  float64(cfg.ReadPeriod) * cfg.TrainIterS,
					writePeriod: writePeriod,
					horizon:     horizon, bytes: bytes, tput: &readTput,
					shared: true,
				})
				ri++
			}
		}
	}
	endT := env.RunUntil(horizon * 1.5)
	if err := env.Err(); err != nil {
		return ScaleOutPoint{}, fmt.Errorf("scale-out (%s, %g MB, %d tenants): %w",
			cfg.Backend, cfg.SizeMB, cfg.Tenants, err)
	}
	if endT <= 0 {
		endT = horizon
	}

	aggGBps := 0.0
	if writeTime.N() > 0 {
		aggGBps = float64(writeTime.N()) * float64(bytes) / 1e9 / endT
	}
	return ScaleOutPoint{
		Tenants:     cfg.Tenants,
		Backend:     cfg.Backend,
		SizeMB:      cfg.SizeMB,
		WriteGBps:   writeTput.MeanGBps(),
		ReadGBps:    readTput.MeanGBps(),
		StageMeanS:  writeTime.Mean(),
		StageP50S:   stats.Quantile(samples, 0.5),
		SharedWaitS: model.SharedWaitS(cfg.Backend),
		AggGBps:     aggGBps,
		Writes:      writeTime.N(),
	}, nil
}

// ScaleOutTenantCounts is the default tenant sweep (doubling up to 16).
var ScaleOutTenantCounts = []int{1, 2, 4, 8, 16}

// ScaleOutSizes are the per-snapshot sizes of the scale-out grid: one
// comfortably inside every backend's service capacity, one that pushes
// the shared deployments into queueing.
var ScaleOutSizes = []float64{2, 8}

// scaleOutTenants truncates the tenant sweep to maxTenants (<=0: all).
func scaleOutTenants(maxTenants int) []int {
	if maxTenants <= 0 {
		return ScaleOutTenantCounts
	}
	out := []int{}
	for _, n := range ScaleOutTenantCounts {
		if n <= maxTenants {
			out = append(out, n)
		}
	}
	return out
}

// RunScaleOutSweep runs the tenants × size grid for one backend, fanning
// cells across the worker pool; each cell is an isolated deterministic
// simulation.
func RunScaleOutSweep(ctx context.Context, b datastore.Backend, maxTenants, trainIters int) ([]ScaleOutPoint, error) {
	return sweep.Grid(ctx, scaleOutTenants(maxTenants), ScaleOutSizes,
		func(tenants int, size float64) ScaleOutPoint {
			return RunScaleOut(ScaleOutConfig{
				Tenants: tenants, Backend: b, SizeMB: size, TrainIters: trainIters,
			})
		})
}

// scaleOutTable structures one backend's collapse curve: per-tenant
// slowdown is each row's mean staging latency over the 1-tenant baseline
// at the same size.
func scaleOutTable(b datastore.Backend, points []ScaleOutPoint) scenario.Table {
	t := scenario.Table{
		Title: fmt.Sprintf("Scale-out — %s: multi-tenant contention on one shared deployment", b),
		Columns: []scenario.Column{
			{Key: "tenants", Head: "tenants", HeadFmt: "%8s", CellFmt: "%8d"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%10s", CellFmt: "%10.2f"},
			{Key: "write_gbps", Head: "write(GB/s)", HeadFmt: "%12s", CellFmt: "%12.3f"},
			{Key: "read_gbps", Head: "read(GB/s)", HeadFmt: "%12s", CellFmt: "%12.3f"},
			{Key: "stage_p50_s", Head: "p50-stage(s)", HeadFmt: "%13s", CellFmt: "%13.5f"},
			{Key: "shared_wait_s", Head: "queue-wait(s)", HeadFmt: "%14s", CellFmt: "%14.5f"},
			{Key: "agg_gbps", Head: "agg(GB/s)", HeadFmt: "%10s", CellFmt: "%10.3f"},
			{Key: "slowdown", Head: "slowdown", HeadFmt: "%9s", CellFmt: "%9.2f"},
		},
	}
	// 1-tenant baselines by size, for the slowdown column.
	base := map[float64]float64{}
	for _, pt := range points {
		if pt.Tenants == 1 {
			base[pt.SizeMB] = pt.StageMeanS
		}
	}
	for _, pt := range points {
		slowdown := 0.0
		if b, ok := base[pt.SizeMB]; ok && b > 0 {
			slowdown = pt.StageMeanS / b
		}
		t.Rows = append(t.Rows, []any{pt.Tenants, pt.SizeMB, pt.WriteGBps, pt.ReadGBps,
			pt.StageP50S, pt.SharedWaitS, pt.AggGBps, slowdown})
	}
	return t
}

// PrintScaleOut renders one backend's scale-out rows in text layout.
func PrintScaleOut(w io.Writer, b datastore.Backend, points []ScaleOutPoint) {
	_ = scenario.WriteTable(w, scaleOutTable(b, points))
}

// runScaleOutScenario is the registered "scale-out" scenario: the
// tenants × size grid for all four backends, one collapse-curve table
// per backend. Each grid runs under the run guardrails: failed cells
// become Result.Failures while the completed points still render.
func runScaleOutScenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	res := &scenario.Result{Scenario: "scale-out", Params: p}
	for _, b := range datastore.Backends() {
		points, fails, err := guardedGrid(ctx, p, "scale-out/"+b.String(),
			scaleOutTenants(p.Tenants), ScaleOutSizes,
			func(tenants int, size float64) (ScaleOutPoint, error) {
				return RunScaleOutChecked(ScaleOutConfig{
					Tenants: tenants, Backend: b, SizeMB: size,
					TrainIters: p.SweepIters, MaxEvents: p.MaxEvents, Workers: p.Workers,
				})
			})
		if err != nil {
			return nil, err
		}
		res.Failures = append(res.Failures, fails...)
		res.Tables = append(res.Tables, scaleOutTable(b, points))
	}
	return res, nil
}
