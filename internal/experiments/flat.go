package experiments

import (
	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
	"simaibench/internal/stats"
)

// Flat rank runners: the workflow components of the simulated-scale
// experiments as callback state machines. Each rank used to be a spawned
// goroutine process (one goroutine + one channel handoff pair per
// event); these structs run the same loops flat on the scheduler
// goroutine, building every closure once at construction so steady-state
// iterations allocate nothing. The callback chains are exact CPS
// transforms of the old process bodies — same schedule calls in the same
// order — so event order and reported metrics are bit-identical.

// xferStarter is what a rank machine needs from its transfer op: both
// the single-tenant LocalXfer and the multi-tenant SharedXfer satisfy
// it, so one state machine serves both deployment modes.
type xferStarter interface{ Start() }

// simWriter replays the simulation rank: sleep one write period, stage a
// snapshot locally, record stats (when sinks are set), repeat while the
// wake-up check falls before the horizon.
type simWriter struct {
	env     *des.Env
	period  float64
	horizon float64
	start   float64
	bytes   int64
	time    *stats.Welford    // optional
	tput    *stats.Throughput // optional
	samples *[]float64        // optional per-op latency sink (scale-out p50)
	log     *sampleLog        // optional timestamped sink (parallel runs)
	xfer    xferStarter
	wake    func()
}

// newSimWriter builds the rank and schedules its first activation; the
// sweeps that build hundreds of ranks preallocate them in a slab and
// call initSimWriter directly.
func newSimWriter(env *des.Env, model *costmodel.Model, cfg simWriterConfig) *simWriter {
	w := &simWriter{}
	initSimWriter(w, env, model, cfg)
	return w
}

// initSimWriter initializes a (possibly slab-allocated) rank in place
// and schedules its first wake-up directly. Scheduling the first
// After(period) at construction instead of through a time-zero warm-up
// event preserves the relative order of every rank's wake-ups (ranks
// are constructed in a fixed order either way), so event interleaving —
// and therefore every reported metric — is unchanged.
func initSimWriter(w *simWriter, env *des.Env, model *costmodel.Model, cfg simWriterConfig) {
	*w = simWriter{
		env:     env,
		period:  cfg.period,
		horizon: cfg.horizon,
		bytes:   cfg.bytes,
		time:    cfg.time,
		tput:    cfg.tput,
		samples: cfg.samples,
		log:     cfg.log,
	}
	w.wake = func() {
		w.start = w.env.Now()
		w.xfer.Start()
	}
	done := func() {
		now := w.env.Now()
		d := now - w.start
		if w.time != nil {
			w.time.Add(d)
		}
		if w.tput != nil {
			w.tput.Add(w.bytes, d)
		}
		if w.samples != nil {
			*w.samples = append(*w.samples, d)
		}
		if w.log != nil {
			w.log.add(now, d)
		}
		if now < w.horizon {
			w.env.After(w.period, w.wake)
		}
	}
	if cfg.shared {
		w.xfer = model.NewSharedLocalWrite(cfg.backend, cfg.node, cfg.sizeMB, done)
	} else {
		w.xfer = model.NewLocalWrite(cfg.backend, cfg.node, cfg.sizeMB, done)
	}
	if env.Now() < w.horizon {
		env.After(w.period, w.wake)
	}
}

type simWriterConfig struct {
	backend datastore.Backend
	node    int
	sizeMB  float64
	period  float64
	horizon float64
	bytes   int64
	time    *stats.Welford
	tput    *stats.Throughput
	samples *[]float64
	// log, when set, records (completion time, latency) of every staged
	// write — the replayable stream the parallel harness merges across
	// LPs (see parallel.go).
	log *sampleLog
	// shared routes the write through the multi-tenant shared
	// deployment (costmodel.NewSharedLocalWrite).
	shared bool
}

// aiReader replays the trainer rank of Pattern 1: poll every read
// period, read only when a fresh snapshot exists (once per write
// period), record stats.
type aiReader struct {
	env         *des.Env
	readPeriod  float64
	writePeriod float64
	horizon     float64
	lastRead    float64
	start       float64
	bytes       int64
	time        *stats.Welford    // optional
	tput        *stats.Throughput // optional
	log         *sampleLog        // optional timestamped sink (parallel runs)
	xfer        xferStarter
	wake        func()
}

type aiReaderConfig struct {
	backend     datastore.Backend
	node        int
	sizeMB      float64
	readPeriod  float64
	writePeriod float64
	horizon     float64
	bytes       int64
	time        *stats.Welford
	tput        *stats.Throughput
	// log, when set, records (completion time, latency) of every read —
	// the replayable stream the parallel harness merges across LPs.
	log *sampleLog
	// shared routes the read through the multi-tenant shared deployment
	// (costmodel.NewSharedLocalRead).
	shared bool
}

func newAIReader(env *des.Env, model *costmodel.Model, cfg aiReaderConfig) *aiReader {
	r := &aiReader{}
	initAIReader(r, env, model, cfg)
	return r
}

// initAIReader initializes a (possibly slab-allocated) trainer rank in
// place, scheduling its first poll directly like initSimWriter.
func initAIReader(r *aiReader, env *des.Env, model *costmodel.Model, cfg aiReaderConfig) {
	*r = aiReader{
		env: env, readPeriod: cfg.readPeriod, writePeriod: cfg.writePeriod, horizon: cfg.horizon,
		lastRead: -cfg.writePeriod, bytes: cfg.bytes, time: cfg.time, tput: cfg.tput, log: cfg.log,
	}
	r.wake = func() {
		now := r.env.Now()
		if now-r.lastRead < r.writePeriod {
			// No new snapshot staged yet: this poll costs no transfer.
			if now < r.horizon {
				r.env.After(r.readPeriod, r.wake)
			}
			return
		}
		r.lastRead = now
		r.start = now
		r.xfer.Start()
	}
	done := func() {
		now := r.env.Now()
		d := now - r.start
		if r.time != nil {
			r.time.Add(d)
		}
		if r.tput != nil {
			r.tput.Add(r.bytes, d)
		}
		if r.log != nil {
			r.log.add(now, d)
		}
		if now < r.horizon {
			r.env.After(r.readPeriod, r.wake)
		}
	}
	if cfg.shared {
		r.xfer = model.NewSharedLocalRead(cfg.backend, cfg.node, cfg.sizeMB, done)
	} else {
		r.xfer = model.NewLocalRead(cfg.backend, cfg.node, cfg.sizeMB, done)
	}
	if env.Now() < r.horizon {
		env.After(r.readPeriod, r.wake)
	}
}

// fig5Pair replays the 2-node point-to-point loop: a local write on node
// 0 followed by a non-local read, a fixed number of times.
type fig5Pair struct {
	env        *des.Env
	transfers  int
	i          int
	bytes      int64
	writeStart float64
	readStart  float64
	writeTput  *stats.Throughput
	readTput   *stats.Throughput
	write      *costmodel.LocalXfer
	read       *costmodel.RemoteXfer
	beginWrite func()
}

func newFig5Pair(env *des.Env, model *costmodel.Model, backend datastore.Backend, sizeMB float64,
	transfers int, bytes int64, writeTput, readTput *stats.Throughput) *fig5Pair {
	p := &fig5Pair{
		env: env, transfers: transfers, bytes: bytes,
		writeTput: writeTput, readTput: readTput,
	}
	p.beginWrite = func() {
		p.writeStart = p.env.Now()
		p.write.Start()
	}
	p.write = model.NewLocalWrite(backend, 0, sizeMB, func() {
		p.writeTput.Add(p.bytes, p.env.Now()-p.writeStart)
		p.readStart = p.env.Now()
		p.read.Start()
	})
	p.read = model.NewRemoteRead(backend, sizeMB, func() {
		p.readTput.Add(p.bytes, p.env.Now()-p.readStart)
		p.i++
		if p.i < p.transfers {
			p.beginWrite()
		}
	})
	env.At(env.Now(), func() {
		if p.transfers > 0 {
			p.beginWrite()
		}
	})
	return p
}

// fig6Trainer replays the many-to-one trainer: compute for a read
// period, then a blocking ensemble read of the whole ensemble, tracking
// per-period progress so exec/iter stays correct when a slow backend
// does not finish within the horizon.
type fig6Trainer struct {
	env              *des.Env
	periods          int
	i                int
	sleepS           float64
	fetchStart       float64
	fetchTime        *stats.Welford
	lastPeriodEnd    *float64
	completedPeriods *int
	fetch            *costmodel.EnsembleFetch
	wake             func()
}

type fig6TrainerConfig struct {
	backend          datastore.Backend
	nodes            int
	sizeMB           float64
	periods          int
	sleepS           float64
	fetchTime        *stats.Welford
	lastPeriodEnd    *float64
	completedPeriods *int
}

func newFig6Trainer(env *des.Env, model *costmodel.Model, cfg fig6TrainerConfig) *fig6Trainer {
	t := &fig6Trainer{
		env: env, periods: cfg.periods, sleepS: cfg.sleepS,
		fetchTime: cfg.fetchTime, lastPeriodEnd: cfg.lastPeriodEnd, completedPeriods: cfg.completedPeriods,
	}
	t.wake = func() {
		t.fetchStart = t.env.Now()
		t.fetch.Start()
	}
	t.fetch = model.NewEnsembleFetch(cfg.backend, cfg.nodes, cfg.sizeMB, func() {
		now := t.env.Now()
		t.fetchTime.Add(now - t.fetchStart)
		*t.lastPeriodEnd = now
		*t.completedPeriods++
		t.i++
		if t.i < t.periods {
			t.env.After(t.sleepS, t.wake)
		}
	})
	env.At(env.Now(), func() {
		if t.periods > 0 {
			t.env.After(t.sleepS, t.wake)
		}
	})
	return t
}
