package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestStreamingComparisonRuns(t *testing.T) {
	// A deliberately wide poll interval: the property under test is that
	// push streaming removes the polling floor from delivery latency, so
	// the floor must sit clearly above scheduler/TCP jitter (~ms here).
	points, err := RunStreamingComparison(bg, StreamingConfig{
		SizeMB: 0.5, Snapshots: 8, PollInterval: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3 methods", len(points))
	}
	byMethod := map[StreamingMethod]StreamingPoint{}
	for _, pt := range points {
		if pt.LatencyMeanS <= 0 || pt.GBps <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
		byMethod[pt.Method] = pt
	}
	// The push paths remove the poll interval from the delivery latency:
	// streaming must beat staged polling for this size.
	staged := byMethod[MethodStagedPolling]
	for _, m := range []StreamingMethod{MethodStreamInProc, MethodStreamTCP} {
		if byMethod[m].LatencyMeanS >= staged.LatencyMeanS {
			t.Errorf("%s latency %v not below staged polling %v",
				m, byMethod[m].LatencyMeanS, staged.LatencyMeanS)
		}
	}
}

func TestStagedPollingLatencyIncludesPollInterval(t *testing.T) {
	fast, err := RunStagedPolling(bg, StreamingConfig{
		SizeMB: 0.1, Snapshots: 5, PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunStagedPolling(bg, StreamingConfig{
		SizeMB: 0.1, Snapshots: 5, PollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.LatencyMeanS < fast.LatencyMeanS+0.010 {
		t.Fatalf("poll interval not reflected in latency: %v vs %v",
			fast.LatencyMeanS, slow.LatencyMeanS)
	}
}

func TestPrintStreaming(t *testing.T) {
	points, err := RunStreamingComparison(bg, StreamingConfig{SizeMB: 0.2, Snapshots: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintStreaming(&buf, points)
	out := buf.String()
	for _, want := range []string{"staged-poll", "stream-inproc", "stream-tcp", "latency-mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("streaming output missing %q:\n%s", want, out)
		}
	}
}
