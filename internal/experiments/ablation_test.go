package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestMDSAblationDrivesCollapse(t *testing.T) {
	// The 512-node FS collapse must be caused by the MDS service time:
	// with a near-zero service time the 8-vs-512-node gap shrinks
	// drastically; with the default it is large.
	points, err := RunMDSAblation(bg, []float64{0.00001, 0.0004}, 200)
	if err != nil {
		t.Fatal(err)
	}
	get := func(svc float64, nodes int) float64 {
		for _, pt := range points {
			if pt.MDSServiceS == svc && pt.Nodes == nodes {
				return pt.WriteMeanS
			}
		}
		t.Fatalf("missing point svc=%v nodes=%d", svc, nodes)
		return 0
	}
	fastGap := get(0.00001, 512) / get(0.00001, 8)
	slowGap := get(0.0004, 512) / get(0.0004, 8)
	if slowGap < 3 {
		t.Fatalf("default MDS service should collapse at 512 nodes: gap %v", slowGap)
	}
	if fastGap > slowGap/2 {
		t.Fatalf("ablating MDS service should remove the collapse: %v vs %v", fastGap, slowGap)
	}
}

func TestCacheAblationMovesDip(t *testing.T) {
	// With a huge cache share the 32 MB dip disappears (monotonic
	// profile); with the default it is present.
	points, err := RunCacheAblation(bg, []float64{8.75, 1000}, 200)
	if err != nil {
		t.Fatal(err)
	}
	get := func(share, size float64) float64 {
		for _, pt := range points {
			if pt.CacheShareMB == share && pt.SizeMB == size {
				return pt.WriteGBps
			}
		}
		t.Fatalf("missing point share=%v size=%v", share, size)
		return 0
	}
	if !(get(8.75, 32) < get(8.75, 8)) {
		t.Fatal("default share lost the 32 MB dip")
	}
	if !(get(1000, 32) > get(1000, 8)) {
		t.Fatal("huge cache share should make the profile monotonic")
	}
}

func TestIncastAblationControlsCrossover(t *testing.T) {
	// With incast latency ablated to zero, Dragon's small-message fetch
	// should beat or match FS; with the default it clearly lags.
	points, err := RunIncastAblation(bg, []float64{0, 0.010}, 100)
	if err != nil {
		t.Fatal(err)
	}
	get := func(lat, size float64) (dragon, fs float64) {
		for _, pt := range points {
			if pt.IncastLatencyS == lat && pt.SizeMB == size {
				return pt.DragonFetchS, pt.FSFetchS
			}
		}
		t.Fatalf("missing point lat=%v size=%v", lat, size)
		return 0, 0
	}
	drDefault, fsDefault := get(0.010, 1)
	if drDefault < 2*fsDefault {
		t.Fatalf("default incast latency should make dragon lag FS at 1MB: %v vs %v", drDefault, fsDefault)
	}
	drZero, fsZero := get(0, 1)
	if drZero > 1.2*fsZero {
		t.Fatalf("zero incast latency should close the 1MB gap: dragon %v vs fs %v", drZero, fsZero)
	}
}

func TestAblationPrinters(t *testing.T) {
	var buf bytes.Buffer
	mds, err := RunMDSAblation(bg, []float64{0.0004}, 100)
	if err != nil {
		t.Fatal(err)
	}
	PrintMDSAblation(&buf, mds)
	cache, err := RunCacheAblation(bg, []float64{8.75}, 100)
	if err != nil {
		t.Fatal(err)
	}
	PrintCacheAblation(&buf, cache)
	incast, err := RunIncastAblation(bg, []float64{0.010}, 50)
	if err != nil {
		t.Fatal(err)
	}
	PrintIncastAblation(&buf, incast)
	out := buf.String()
	for _, want := range []string{"MDS service", "L3 share", "incast latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}
