package experiments

import (
	"testing"

	"simaibench/internal/scenario"
)

// TestValidationCacheScopedToContext: validation measurements are
// shared only within one WithValidationCache context — the CLI's "run
// validation once for table2+table3+fig2" behavior — and re-measured
// for independent contexts, so library callers collecting run-to-run
// variance never see silently recycled results.
func TestValidationCacheScopedToContext(t *testing.T) {
	p := scenario.Params{TrainIters: 40, TimeScale: 0.01}

	ctx := WithValidationCache(bg)
	o1, m1, err := validationPair(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	o2, m2, err := validationPair(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 || m1 != m2 {
		t.Fatal("same cache context should reuse the measured results")
	}

	o3, _, err := validationPair(WithValidationCache(bg), p)
	if err != nil {
		t.Fatal(err)
	}
	if o3 == o1 {
		t.Fatal("fresh cache context should re-measure, not reuse")
	}

	// No cache on the context at all: every call measures.
	o4, _, err := validationPair(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if o4 == o1 {
		t.Fatal("cache-less context should never reuse results")
	}
}
