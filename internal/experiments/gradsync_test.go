package experiments

import (
	"reflect"
	"testing"

	"simaibench/internal/scenario"
)

// TestGoldenGradSyncScenario pins the gradsync family's rendered
// tables — metrics and layout — at reduced iterations. Regenerate with
// UPDATE_GOLDEN=1 after an intentional model change.
func TestGoldenGradSyncScenario(t *testing.T) {
	checkGolden(t, "gradsync.golden", renderText(t, "gradsync", scenario.Params{SweepIters: 50}))
}

// TestGradSyncDeterministic: the same configuration twice gives
// bit-equal points — the jitter is hash-derived, not seeded from any
// ambient state.
func TestGradSyncDeterministic(t *testing.T) {
	cfg := GradSyncConfig{Ranks: 64, ModelMB: 4, Algo: "hier", Steps: 80}
	a, err := RunGradSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGradSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs disagree:\n%+v\n%+v", a, b)
	}
}

// TestGradSyncWorkersBitIdentical: the parallel LP engine at any
// worker count reproduces the serial metrics to the bit, for every
// algorithm (the engine guarantee runPattern1LP establishes, here for
// the gradsync harness).
func TestGradSyncWorkersBitIdentical(t *testing.T) {
	for _, algo := range GradSyncAlgos {
		cfg := GradSyncConfig{Ranks: 64, ModelMB: 4, Algo: algo, Steps: 60}
		cfg.Workers = 1
		serial, err := RunGradSync(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 4
		parallel, err := RunGradSync(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("%s: workers=4 diverged from serial:\n%+v\n%+v", algo, serial, parallel)
		}
	}
}

// TestGradSyncShape sanity-checks the physics the golden pins: comm
// fraction grows with model size, the step is never shorter than
// compute + collective, and every configured step completes.
func TestGradSyncShape(t *testing.T) {
	small, err := RunGradSync(GradSyncConfig{Ranks: 64, ModelMB: 0.25, Algo: "ring", Steps: 40})
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunGradSync(GradSyncConfig{Ranks: 64, ModelMB: 1024, Algo: "ring", Steps: 40})
	if err != nil {
		t.Fatal(err)
	}
	if small.CommFrac >= large.CommFrac {
		t.Errorf("comm fraction should grow with size: %.3f at 0.25MB vs %.3f at 1024MB",
			small.CommFrac, large.CommFrac)
	}
	for _, p := range []GradSyncPoint{small, large} {
		if p.Steps != 40 {
			t.Errorf("%g MB: completed %d steps, want 40", p.ModelMB, p.Steps)
		}
		if p.StepMeanS < p.ComputeS+p.CollS {
			t.Errorf("%g MB: step %.6fs shorter than compute %.6fs + coll %.6fs",
				p.ModelMB, p.StepMeanS, p.ComputeS, p.CollS)
		}
		if p.SkewMeanS < 0 {
			t.Errorf("%g MB: negative mean skew %.6fs", p.ModelMB, p.SkewMeanS)
		}
	}
}

// TestGradSyncEventBudget: a too-small DES event budget trips the
// shared guard and surfaces as a structured error, not a hang.
func TestGradSyncEventBudget(t *testing.T) {
	_, err := RunGradSync(GradSyncConfig{Ranks: 64, ModelMB: 4, Algo: "ring", Steps: 400, MaxEvents: 100})
	if err == nil {
		t.Fatal("100-event budget over 400 steps × 64 ranks should trip")
	}
}

// TestGradSyncRejectsUnknownAlgo: algorithm names are validated before
// any simulation runs.
func TestGradSyncRejectsUnknownAlgo(t *testing.T) {
	if _, err := RunGradSync(GradSyncConfig{Ranks: 8, Algo: "butterfly"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

// BenchmarkGradSync measures the DES harness at the sweep's largest
// rank count for the two algorithms the crossover table compares.
func BenchmarkGradSync(b *testing.B) {
	for _, algo := range []string{"ring", "hier"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunGradSync(GradSyncConfig{
					Ranks: 512, ModelMB: 4, Algo: algo, Steps: 100, Workers: 4,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
