package experiments

import (
	"context"
	"fmt"
	"math"

	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/des"
	"simaibench/internal/mpi"
	"simaibench/internal/scenario"
	"simaibench/internal/stats"
)

// The gradsync scenario family: data-parallel training steps in the
// CollectDWts/MPIWtFmDWt shape (emer-style gradient synchronization) —
// every rank computes its gradients, AllReduces them, and applies the
// weight update — swept over model size × rank count × collective
// algorithm. The question it answers is one the paper never ran: when
// does collective-algorithm choice, not datastore backend, dominate
// the step? The AllReduce is priced by the algorithmic cost models of
// internal/mpi over the Aurora dragonfly (internal/cluster.Topology,
// bridged through internal/costmodel), so the sweep exposes the
// crossover: the hierarchy wins at small messages and high rank
// counts (latency-bound), the ring wins at large messages
// (bandwidth-bound).
//
// Every cell runs through the parallel LP engine (des.LPSet, one LP
// per dragonfly group). The gradient barrier makes every rank's step
// boundary a pure function of the per-(rank, step) compute jitter —
// precomputed once and shared read-only — so LPs have no cross-LP
// edges (lookahead +Inf) and metrics are bit-identical at any worker
// count via the canonical sampleLog merge.

// Gradsync sweep axes (the -exp gradsync grid).
var (
	// GradSyncSizes are the per-rank gradient sizes in MB, spanning the
	// latency-bound through bandwidth-bound regimes.
	GradSyncSizes = []float64{0.25, 4, 64, 1024}
	// GradSyncRanks are the data-parallel rank counts (one rank per
	// dragonfly node).
	GradSyncRanks = []int{8, 64, 512}
	// GradSyncAlgos is the collective-algorithm axis, flat (the legacy
	// single-cost rendezvous) first.
	GradSyncAlgos = []string{"flat", "ring", "tree", "hier"}
)

// Deterministic training-step shape: compute scales affinely with
// model size, the optimizer update is memory-bandwidth bound, and each
// rank's per-step compute is skewed by a hash-derived jitter so the
// gradient barrier has a real straggler profile.
const (
	gradSyncComputeBaseS  = 0.030  // fixed forward/backward overhead per step
	gradSyncComputePerMBS = 0.0003 // compute seconds per model MB
	gradSyncUpdatePerMBS  = 5e-5   // optimizer update seconds per model MB
	gradSyncJitterFrac    = 0.08   // peak fractional compute skew
)

// gradSyncJitter returns the deterministic jitter u ∈ [0, 1) of one
// (rank, step) pair — a splitmix64-style hash, so the straggler
// pattern is reproducible bit-for-bit on any engine or worker count.
func gradSyncJitter(rank, step int) float64 {
	x := uint64(rank)*0x9E3779B97F4A7C15 + uint64(step)*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// GradSyncConfig drives one gradsync measurement: Ranks data-parallel
// trainers, one per node of AuroraTopology(Ranks), synchronizing a
// ModelMB gradient with the Algo AllReduce every step.
type GradSyncConfig struct {
	// Ranks is the data-parallel world size (8).
	Ranks int
	// ModelMB is the per-rank gradient/model size in MB (4).
	ModelMB float64
	// Algo is the collective algorithm name (mpi.ParseCollAlgo); empty
	// falls back to Params.CollAlgo, whose empty default is flat.
	Algo string
	// Steps is the number of training steps (600).
	Steps int
	// Workers caps the parallel DES workers (1 = serial; metrics are
	// bit-identical at any value).
	Workers int
	// MaxEvents arms the DES event budget (0 = unlimited).
	MaxEvents int64
	// Params overrides the calibrated cost-model constants.
	Params *costmodel.Params
}

func (c GradSyncConfig) withDefaults() GradSyncConfig {
	if c.Ranks < 1 {
		c.Ranks = 8
	}
	if c.ModelMB <= 0 {
		c.ModelMB = 4
	}
	if c.Steps < 1 {
		c.Steps = 600
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// GradSyncPoint is one (ranks, size, algorithm) measurement.
type GradSyncPoint struct {
	// Ranks / ModelMB / Algo echo the configuration.
	Ranks   int
	ModelMB float64
	Algo    string
	// CollSteps / CollS are the algorithm's modeled AllReduce profile:
	// synchronized communication steps and total seconds per call.
	CollSteps int
	CollS     float64
	// ComputeS is the unjittered per-step compute time.
	ComputeS float64
	// StepMeanS is the measured mean training-step time (compute +
	// straggler wait + AllReduce + update).
	StepMeanS float64
	// CommFrac is the AllReduce's share of the mean step.
	CommFrac float64
	// SkewMeanS is the mean straggler wait at the gradient barrier.
	SkewMeanS float64
	// Steps is the completed step count per rank.
	Steps int64
}

// gradRank is one trainer's event-driven state machine: compute
// (jittered), wait at the gradient barrier, AllReduce, update, next
// step. The barrier bound gmax is precomputed, so the machine needs
// two events per step and no cross-rank edges.
type gradRank struct {
	env       *des.Env
	rank      int
	steps     int
	computeS  float64
	updateS   float64
	collS     float64
	gmax      []float64
	step      int
	stepStart float64
	stepLog   *sampleLog
	skewLog   *sampleLog
}

func initGradRank(g *gradRank) {
	g.env.At(0, g.startStep)
}

func (g *gradRank) startStep() {
	s := g.step
	compute := g.computeS * (1 + gradSyncJitterFrac*gradSyncJitter(g.rank, s))
	g.env.At(g.stepStart+compute, func() {
		// Gradients ready: record the straggler wait until the slowest
		// rank reaches the AllReduce.
		g.skewLog.add(g.env.Now(), g.gmax[s]-compute)
	})
	// The step boundary is the same expression on every rank — the
	// barrier, the collective and the update are global — so all ranks
	// advance in lockstep to the bit.
	g.env.At(g.stepStart+g.gmax[s]+g.collS+g.updateS, g.endStep)
}

func (g *gradRank) endStep() {
	now := g.env.Now()
	g.stepLog.add(now, now-g.stepStart)
	g.step++
	if g.step < g.steps {
		g.stepStart = now
		g.startStep()
	}
}

// RunGradSync simulates one gradsync configuration and returns its
// measurement. Deterministic: equal configs give bit-equal points at
// any Workers value.
func RunGradSync(cfg GradSyncConfig) (GradSyncPoint, error) {
	cfg = cfg.withDefaults()
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	algoName := cfg.Algo
	if algoName == "" {
		algoName = params.CollAlgo
	}
	algo, err := mpi.ParseCollAlgo(algoName)
	if err != nil {
		return GradSyncPoint{}, fmt.Errorf("gradsync: %w", err)
	}

	// One rank per node of the dragonfly; the AllReduce cost comes from
	// the algorithm's step structure over the topology's hop classes.
	topo := cluster.AuroraTopology(cfg.Ranks)
	coll := costmodel.CollAllReduceCost(algo, topo, cfg.Ranks, cfg.ModelMB, nil)
	computeS := gradSyncComputeBaseS + gradSyncComputePerMBS*cfg.ModelMB
	updateS := gradSyncUpdatePerMBS * cfg.ModelMB

	// Precompute each step's straggler bound — the time the slowest
	// rank reaches the gradient barrier. A pure function of (rank,
	// step), shared read-only by every LP: the partition has no
	// cross-LP edges, so the LPs are embarrassingly parallel.
	gmax := make([]float64, cfg.Steps)
	horizon := 1.0
	for s := range gmax {
		m := 0.0
		for r := 0; r < cfg.Ranks; r++ {
			if c := computeS * (1 + gradSyncJitterFrac*gradSyncJitter(r, s)); c > m {
				m = c
			}
		}
		gmax[s] = m
		horizon += m + coll.TimeS + updateS
	}

	// One LP per dragonfly group (the partition is a pure function of
	// the workload shape, never of Workers — see parallel.go).
	blocks := cluster.LPBlocks(cfg.Ranks, topo.NodesPerRouter*topo.RoutersPerGroup)
	set := des.NewLPSet(len(blocks))
	if cfg.MaxEvents > 0 {
		set.SetSharedGuard(des.NewSharedGuard(cfg.MaxEvents))
	}
	stepLogs := make([]*sampleLog, len(blocks))
	skewLogs := make([]*sampleLog, len(blocks))
	for li, blk := range blocks {
		env := set.Env(li)
		stepLogs[li], skewLogs[li] = &sampleLog{}, &sampleLog{}
		ranks := make([]gradRank, blk.Nodes)
		for i := range ranks {
			ranks[i] = gradRank{
				env: env, rank: blk.Start + i, steps: cfg.Steps,
				computeS: computeS, updateS: updateS, collS: coll.TimeS,
				gmax: gmax, stepLog: stepLogs[li], skewLog: skewLogs[li],
			}
			initGradRank(&ranks[i])
		}
	}
	set.Run(cfg.Workers, horizon)
	if err := set.Err(); err != nil {
		return GradSyncPoint{}, fmt.Errorf("gradsync (%s, %g MB, %d ranks): %w",
			algo, cfg.ModelMB, cfg.Ranks, err)
	}

	var stepTime, skew stats.Welford
	mergeLogs(stepLogs, stepTime.Add)
	mergeLogs(skewLogs, skew.Add)
	commFrac := 0.0
	if stepTime.Mean() > 0 {
		commFrac = coll.TimeS / stepTime.Mean()
	}
	return GradSyncPoint{
		Ranks: cfg.Ranks, ModelMB: cfg.ModelMB, Algo: algo.String(),
		CollSteps: coll.Steps, CollS: coll.TimeS,
		ComputeS: computeS, StepMeanS: stepTime.Mean(), CommFrac: commFrac,
		SkewMeanS: skew.Mean(), Steps: stepTime.N() / int64(cfg.Ranks),
	}, nil
}

// gradSyncTable renders one rank count's size × algorithm grid.
func gradSyncTable(ranks int, points []GradSyncPoint) scenario.Table {
	topo := cluster.AuroraTopology(ranks)
	t := scenario.Table{
		Title: fmt.Sprintf("gradsync — %d ranks on dragonfly %d groups × %d routers × %d nodes (training step vs AllReduce algorithm)",
			ranks, topo.Groups, topo.RoutersPerGroup, topo.NodesPerRouter),
		Columns: []scenario.Column{
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%9s", CellFmt: "%9.2f"},
			{Key: "algo", Head: "algo", HeadFmt: "%6s", CellFmt: "%6s"},
			{Key: "coll_steps", Head: "steps", HeadFmt: "%6s", CellFmt: "%6d"},
			{Key: "coll_ms", Head: "coll(ms)", HeadFmt: "%10s", CellFmt: "%10.4f"},
			{Key: "skew_ms", Head: "skew(ms)", HeadFmt: "%9s", CellFmt: "%9.4f"},
			{Key: "step_ms", Head: "step(ms)", HeadFmt: "%10s", CellFmt: "%10.4f"},
			{Key: "comm_frac", Head: "comm", HeadFmt: "%6s", CellFmt: "%6.3f"},
		},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []any{
			p.ModelMB, p.Algo, p.CollSteps, p.CollS * 1e3,
			p.SkewMeanS * 1e3, p.StepMeanS * 1e3, p.CommFrac,
		})
	}
	return t
}

// gradSyncCrossoverTable reduces the full sweep to the algorithm-
// choice answer: per (ranks, size), each real algorithm's AllReduce
// time, the winner, and the hierarchy's speedup over the ring (>1
// where topology awareness pays, <1 where the ring's bandwidth
// optimality does). The flat model is excluded — it is the legacy
// single-cost abstraction, not an executable algorithm.
func gradSyncCrossoverTable(points []GradSyncPoint) scenario.Table {
	t := scenario.Table{
		Title: "gradsync — algorithm crossover (best AllReduce per ranks × size)",
		Columns: []scenario.Column{
			{Key: "ranks", Head: "ranks", HeadFmt: "%6s", CellFmt: "%6d"},
			{Key: "size_mb", Head: "size(MB)", HeadFmt: "%9s", CellFmt: "%9.2f"},
			{Key: "ring_ms", Head: "ring(ms)", HeadFmt: "%10s", CellFmt: "%10.4f"},
			{Key: "tree_ms", Head: "tree(ms)", HeadFmt: "%10s", CellFmt: "%10.4f"},
			{Key: "hier_ms", Head: "hier(ms)", HeadFmt: "%10s", CellFmt: "%10.4f"},
			{Key: "best", Head: "best", HeadFmt: "%6s", CellFmt: "%6s"},
			{Key: "hier_vs_ring", Head: "hier-vs-ring", HeadFmt: "%13s", CellFmt: "%13.2f"},
		},
	}
	type cell struct{ ring, tree, hier float64 }
	cells := map[[2]float64]*cell{}
	for _, p := range points {
		key := [2]float64{float64(p.Ranks), p.ModelMB}
		c := cells[key]
		if c == nil {
			c = &cell{}
			cells[key] = c
		}
		switch p.Algo {
		case "ring":
			c.ring = p.CollS
		case "tree":
			c.tree = p.CollS
		case "hier":
			c.hier = p.CollS
		}
	}
	for _, ranks := range GradSyncRanks {
		for _, size := range GradSyncSizes {
			c := cells[[2]float64{float64(ranks), size}]
			if c == nil {
				continue
			}
			best, bestT := "ring", c.ring
			if c.tree < bestT {
				best, bestT = "tree", c.tree
			}
			if c.hier < bestT {
				best = "hier"
			}
			speedup := math.Inf(1)
			if c.hier > 0 {
				speedup = c.ring / c.hier
			}
			t.Rows = append(t.Rows, []any{
				ranks, size, c.ring * 1e3, c.tree * 1e3, c.hier * 1e3, best, speedup,
			})
		}
	}
	return t
}

// runGradSyncScenario is the registered scenario body: the size ×
// algorithm grid per rank count (Params.CollAlgo narrows the algorithm
// axis), plus the crossover table when the full axis ran.
func runGradSyncScenario(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
	algos := GradSyncAlgos
	if p.CollAlgo != "" {
		if _, err := mpi.ParseCollAlgo(p.CollAlgo); err != nil {
			return nil, err
		}
		algos = []string{p.CollAlgo}
	}
	res := &scenario.Result{Scenario: "gradsync", Params: p}
	var all []GradSyncPoint
	for _, ranks := range GradSyncRanks {
		points, fails, err := guardedGrid(ctx, p, fmt.Sprintf("gradsync/%d-ranks", ranks),
			GradSyncSizes, algos,
			func(size float64, algo string) (GradSyncPoint, error) {
				return RunGradSync(GradSyncConfig{
					Ranks: ranks, ModelMB: size, Algo: algo,
					Steps: p.SweepIters, Workers: p.Workers, MaxEvents: p.MaxEvents,
				})
			})
		if err != nil {
			return nil, err
		}
		res.Failures = append(res.Failures, fails...)
		res.Tables = append(res.Tables, gradSyncTable(ranks, points))
		all = append(all, points...)
	}
	if len(algos) == len(GradSyncAlgos) {
		res.Tables = append(res.Tables, gradSyncCrossoverTable(all))
	}
	return res, nil
}
