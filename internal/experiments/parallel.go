package experiments

import (
	"fmt"
	"math"

	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/des"
	"simaibench/internal/stats"
)

// Parallel experiment harnesses: the Pattern 1 and scale-out workloads
// on the conservative multi-LP engine (des.LPSet). The partitioning
// exploits a structural fact of the cost model: with a node-local
// backend every resource a rank touches — its node's exchange bus, the
// cache/window thresholds, the in-memory transfer chain — is private to
// that rank's node, so the simulation decomposes into fully independent
// logical processes (lookahead +Inf, cluster.LPBlocks granularity).
// Backends with shared serialization points (the Lustre MDS/OSTs, the
// multi-tenant Redis/Dragon service slots) have zero modeled cross-LP
// latency (costmodel.LPLookaheadS), so those runs stay on the
// sequential engine — correctness never depends on the parallel path.
//
// Bit-identical metrics, not just statistically equivalent ones, are
// the contract: Workers=N must reproduce Workers=1 byte for byte.
// Two mechanisms deliver that:
//
//  1. The engine itself is deterministic for any worker count (see
//     internal/des/lp.go), and the partition is a pure function of the
//     workload shape — never of Workers — so per-LP event streams are
//     fixed.
//  2. Metric accumulation order is canonicalized: instead of feeding
//     the shared Welford/Throughput accumulators during execution (an
//     order that would depend on the partition), each LP records its
//     (completion time, latency) stream into a private sampleLog and
//     the streams are k-way merged by (time, LP index) afterwards.
//     Samples tied in time carry identical latencies here — every rank
//     of a node-symmetric workload measures the same constants — so
//     the merge order within a tie cannot perturb the floating-point
//     accumulation, and the replayed statistics match the sequential
//     run's bits. The equivalence tests in parallel_test.go enforce
//     this struct-for-struct and byte-for-byte.

// sampleLog records one accumulator's (completion time, latency)
// stream on a single LP. Within a log, times are nondecreasing (events
// execute in order inside an LP), which mergeLogs relies on.
type sampleLog struct {
	t []float64
	v []float64
}

func (l *sampleLog) add(t, v float64) {
	l.t = append(l.t, t)
	l.v = append(l.v, v)
}

// mergeLogs replays per-LP sample logs in canonical global order —
// ascending completion time, ties broken by LP index — via a k-way
// binary-heap merge, calling emit once per sample.
func mergeLogs(logs []*sampleLog, emit func(v float64)) {
	type head struct {
		t  float64
		lp int
	}
	less := func(a, b head) bool { return a.t < b.t || (a.t == b.t && a.lp < b.lp) }
	heap := make([]head, 0, len(logs))
	push := func(h head) {
		heap = append(heap, h)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() head {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			s := i
			if l := 2*i + 1; l < len(heap) && less(heap[l], heap[s]) {
				s = l
			}
			if r := 2*i + 2; r < len(heap) && less(heap[r], heap[s]) {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}
	pos := make([]int, len(logs))
	for lp, l := range logs {
		if len(l.t) > 0 {
			push(head{t: l.t[0], lp: lp})
		}
	}
	for len(heap) > 0 {
		h := pop()
		l := logs[h.lp]
		emit(l.v[pos[h.lp]])
		pos[h.lp]++
		if pos[h.lp] < len(l.t) {
			push(head{t: l.t[pos[h.lp]], lp: h.lp})
		}
	}
}

// lpEligible reports whether a run should dispatch to the parallel
// engine: parallelism was requested, the workload splits into more
// than one LP, and the backend imposes no finite cross-LP lookahead
// (+Inf = no cross-LP edges at all). Zero-lookahead backends fall back
// to the sequential engine per the conservative-synchronization
// contract.
func lpEligible(workers, lps int, lookS float64) bool {
	return workers > 1 && lps > 1 && math.IsInf(lookS, 1)
}

// runPattern1LP is RunPattern1Checked on the parallel engine: one LP
// per node (cluster.LPBlocks granularity 1), each with a private Env
// and cost model sized to its block. Only called when lpEligible — the
// backend's ranks touch no resource outside their own node, so the
// per-block models are behavior-identical to slices of the global one.
func runPattern1LP(cfg Pattern1Config) (Pattern1Point, error) {
	blocks := cluster.LPBlocks(cfg.Nodes, 1)
	set := des.NewLPSet(len(blocks))
	if cfg.MaxEvents > 0 {
		// The budget is global across LPs — the same cap the sequential
		// engine enforces — not per-LP, which would multiply it.
		set.SetSharedGuard(des.NewSharedGuard(cfg.MaxEvents))
	}
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	place := cluster.Pattern1Placement(cluster.Aurora(cfg.Nodes))
	horizon := float64(cfg.TrainIters) * cfg.TrainIterS
	bytes := int64(cfg.SizeMB * 1e6)

	writeLogs := make([]*sampleLog, len(blocks))
	readLogs := make([]*sampleLog, len(blocks))
	for li, blk := range blocks {
		env := set.Env(li)
		model := costmodel.New(env, cluster.Aurora(blk.Nodes), params)
		writeLogs[li] = &sampleLog{}
		readLogs[li] = &sampleLog{}
		writers := make([]simWriter, blk.Nodes*place.SimTilesPerNode)
		readers := make([]aiReader, blk.Nodes*place.AITilesPerNode)
		wi, ri := 0, 0
		for node := 0; node < blk.Nodes; node++ {
			for r := 0; r < place.SimTilesPerNode; r++ {
				initSimWriter(&writers[wi], env, model, simWriterConfig{
					backend: cfg.Backend, node: node, sizeMB: cfg.SizeMB,
					period:  float64(cfg.WritePeriod) * cfg.SimIterS,
					horizon: horizon, bytes: bytes, log: writeLogs[li],
				})
				wi++
			}
			for r := 0; r < place.AITilesPerNode; r++ {
				initAIReader(&readers[ri], env, model, aiReaderConfig{
					backend: cfg.Backend, node: node, sizeMB: cfg.SizeMB,
					readPeriod:  float64(cfg.ReadPeriod) * cfg.TrainIterS,
					writePeriod: float64(cfg.WritePeriod) * cfg.SimIterS,
					horizon:     horizon, bytes: bytes, log: readLogs[li],
				})
				ri++
			}
		}
	}
	set.Run(cfg.Workers, horizon*1.5)
	if err := set.Err(); err != nil {
		return Pattern1Point{}, fmt.Errorf("pattern1 (%s, %g MB, %d nodes): %w",
			cfg.Backend, cfg.SizeMB, cfg.Nodes, err)
	}

	var writeTput, readTput stats.Throughput
	var writeTime, readTime stats.Welford
	mergeLogs(writeLogs, func(d float64) {
		writeTime.Add(d)
		writeTput.Add(bytes, d)
	})
	mergeLogs(readLogs, func(d float64) {
		readTime.Add(d)
		readTput.Add(bytes, d)
	})
	return Pattern1Point{
		Nodes:     cfg.Nodes,
		Backend:   cfg.Backend,
		SizeMB:    cfg.SizeMB,
		ReadGBps:  readTput.MeanGBps(),
		WriteGBps: writeTput.MeanGBps(),
		ReadMeanS: readTime.Mean(),
		WriteMean: writeTime.Mean(),
		SimIterS:  cfg.SimIterS,
		TrainIter: cfg.TrainIterS,
		Writes:    writeTime.N(),
		Reads:     readTime.N(),
	}, nil
}

// runScaleOutLP is RunScaleOutChecked on the parallel engine: one LP
// per tenant (CoSchedule hands each tenant a dedicated contiguous node
// block). Only called when lpEligible with shared deployment mode —
// i.e. only for the node-local backend, whose "shared" deployment
// still touches nothing outside each tenant's own nodes.
func runScaleOutLP(cfg ScaleOutConfig) (ScaleOutPoint, error) {
	spec := cluster.Aurora(cfg.Tenants * cfg.NodesPerTenant)
	tenants, err := cluster.CoSchedule(spec, cfg.Tenants, cfg.NodesPerTenant)
	if err != nil {
		// Unreachable with withDefaults-sanitized inputs.
		panic(err)
	}
	place := cluster.Pattern1Placement(spec)
	set := des.NewLPSet(len(tenants))
	if cfg.MaxEvents > 0 {
		set.SetSharedGuard(des.NewSharedGuard(cfg.MaxEvents))
	}
	params := costmodel.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	horizon := float64(cfg.TrainIters) * cfg.TrainIterS
	bytes := int64(cfg.SizeMB * 1e6)
	writePeriod := float64(cfg.WritePeriod) * cfg.SimIterS

	models := make([]*costmodel.Model, len(tenants))
	writeLogs := make([]*sampleLog, len(tenants))
	readLogs := make([]*sampleLog, len(tenants))
	for li, tn := range tenants {
		env := set.Env(li)
		model := costmodel.New(env, cluster.Aurora(cfg.NodesPerTenant), params)
		models[li] = model
		writeLogs[li] = &sampleLog{}
		readLogs[li] = &sampleLog{}
		writers := make([]simWriter, len(tn.Nodes)*place.SimTilesPerNode)
		readers := make([]aiReader, len(tn.Nodes)*place.AITilesPerNode)
		wi, ri := 0, 0
		for node := range tn.Nodes {
			for r := 0; r < place.SimTilesPerNode; r++ {
				initSimWriter(&writers[wi], env, model, simWriterConfig{
					backend: cfg.Backend, node: node, sizeMB: cfg.SizeMB,
					period: writePeriod, horizon: horizon, bytes: bytes,
					log: writeLogs[li], shared: true,
				})
				wi++
			}
			for r := 0; r < place.AITilesPerNode; r++ {
				initAIReader(&readers[ri], env, model, aiReaderConfig{
					backend: cfg.Backend, node: node, sizeMB: cfg.SizeMB,
					readPeriod:  float64(cfg.ReadPeriod) * cfg.TrainIterS,
					writePeriod: writePeriod,
					horizon:     horizon, bytes: bytes, log: readLogs[li],
					shared: true,
				})
				ri++
			}
		}
	}
	endT := set.Run(cfg.Workers, horizon*1.5)
	if err := set.Err(); err != nil {
		return ScaleOutPoint{}, fmt.Errorf("scale-out (%s, %g MB, %d tenants): %w",
			cfg.Backend, cfg.SizeMB, cfg.Tenants, err)
	}
	if endT <= 0 {
		endT = horizon
	}

	var writeTput, readTput stats.Throughput
	var writeTime stats.Welford
	simRanks := spec.Nodes * place.SimTilesPerNode
	samples := make([]float64, 0, simRanks*(int(horizon/writePeriod)+2))
	mergeLogs(writeLogs, func(d float64) {
		writeTime.Add(d)
		writeTput.Add(bytes, d)
		samples = append(samples, d)
	})
	mergeLogs(readLogs, func(d float64) {
		readTput.Add(bytes, d)
	})
	aggGBps := 0.0
	if writeTime.N() > 0 {
		aggGBps = float64(writeTime.N()) * float64(bytes) / 1e9 / endT
	}
	return ScaleOutPoint{
		Tenants:     cfg.Tenants,
		Backend:     cfg.Backend,
		SizeMB:      cfg.SizeMB,
		WriteGBps:   writeTput.MeanGBps(),
		ReadGBps:    readTput.MeanGBps(),
		StageMeanS:  writeTime.Mean(),
		StageP50S:   stats.Quantile(samples, 0.5),
		SharedWaitS: models[0].SharedWaitS(cfg.Backend),
		AggGBps:     aggGBps,
		Writes:      writeTime.N(),
	}, nil
}
