package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SweepWorkers caps the worker pool used to fan independent sweep points
// across cores; 0 (the default) uses GOMAXPROCS, 1 forces serial
// execution. Each sweep point builds its own isolated des.Env and
// cost model, runs single-threaded and bit-deterministic, and writes
// only its own result slot — so results are identical at any worker
// count and the slice order never depends on scheduling.
var SweepWorkers int

// sweepParallel evaluates run(0..n-1) on a bounded worker pool and
// returns the results in index order.
func sweepParallel[T any](n int, run func(i int) T) []T {
	out := make([]T, n)
	workers := SweepWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			out[i] = run(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = run(i)
			}
		}()
	}
	wg.Wait()
	return out
}
