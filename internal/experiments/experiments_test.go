package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"simaibench/internal/datastore"
)

// --- Pattern 1 (Fig 3/4) shape tests against the paper's findings ---

func p1(nodes int, b datastore.Backend, size float64) Pattern1Point {
	return RunPattern1(Pattern1Config{
		Nodes: nodes, Backend: b, SizeMB: size, TrainIters: 300,
	})
}

func TestFig3InMemoryNonMonotonicAt8Nodes(t *testing.T) {
	for _, b := range []datastore.Backend{datastore.NodeLocal, datastore.Dragon, datastore.Redis} {
		t04 := p1(8, b, 0.4).WriteGBps
		t8 := p1(8, b, 8).WriteGBps
		t32 := p1(8, b, 32).WriteGBps
		if !(t8 > t04 && t32 < t8) {
			t.Errorf("%v: want rise-then-dip, got %.3f %.3f %.3f GB/s", b, t04, t8, t32)
		}
	}
}

func TestFig3FilesystemMonotonicAt8Nodes(t *testing.T) {
	prev := -1.0
	for _, size := range Fig3Sizes {
		pt := p1(8, datastore.FileSystem, size)
		if pt.WriteGBps <= prev {
			t.Fatalf("filesystem write throughput not monotonic at %v MB: %v <= %v",
				size, pt.WriteGBps, prev)
		}
		prev = pt.WriteGBps
	}
}

func TestFig3FilesystemCollapsesAt512Nodes(t *testing.T) {
	// The paper's headline Pattern 1 result: FS degrades severely from 8
	// to 512 nodes, in-memory backends stay flat.
	fs8 := p1(8, datastore.FileSystem, 8)
	fs512 := p1(512, datastore.FileSystem, 8)
	if fs512.WriteGBps > fs8.WriteGBps/3 {
		t.Fatalf("filesystem did not collapse: %v -> %v GB/s", fs8.WriteGBps, fs512.WriteGBps)
	}
	nl8 := p1(8, datastore.NodeLocal, 8)
	nl512 := p1(512, datastore.NodeLocal, 8)
	ratio := nl512.WriteGBps / nl8.WriteGBps
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("node-local should be scale-stable: %v -> %v GB/s", nl8.WriteGBps, nl512.WriteGBps)
	}
}

func TestFig3BackendOrdering(t *testing.T) {
	// Node-local and Dragon excellent, Redis "not as performant".
	nl := p1(8, datastore.NodeLocal, 8).WriteGBps
	dr := p1(8, datastore.Dragon, 8).WriteGBps
	rd := p1(8, datastore.Redis, 8).WriteGBps
	if !(nl >= dr && dr > rd) {
		t.Fatalf("ordering: node-local %v, dragon %v, redis %v", nl, dr, rd)
	}
}

func TestFig4NodeLocalTransferComparableToIteration(t *testing.T) {
	// "Even at the largest message size of 32 MB, the time for a single
	// data transfer is roughly equal to one computation iteration."
	pt := p1(8, datastore.NodeLocal, 32)
	if pt.WriteMean > 3*pt.SimIterS || pt.WriteMean < pt.SimIterS/10 {
		t.Fatalf("node-local 32MB write %v vs iter %v: not comparable", pt.WriteMean, pt.SimIterS)
	}
	// ...and scale-stable from 8 to 512 nodes.
	pt512 := p1(512, datastore.NodeLocal, 32)
	if pt512.WriteMean > pt.WriteMean*1.5 {
		t.Fatalf("node-local transfer grew with scale: %v -> %v", pt.WriteMean, pt512.WriteMean)
	}
}

func TestFig4FilesystemOrderOfMagnitudeAt512(t *testing.T) {
	// "At this larger scale ... the transfer time becoming approximately
	// an order of magnitude larger than one iteration."
	pt := p1(512, datastore.FileSystem, 32)
	if pt.WriteMean < 4*pt.SimIterS {
		t.Fatalf("filesystem 32MB write at 512 nodes = %v, want >> iter %v",
			pt.WriteMean, pt.SimIterS)
	}
	// While at 8 nodes it is comparable to an iteration.
	pt8 := p1(8, datastore.FileSystem, 32)
	if pt8.WriteMean > 3*pt8.SimIterS {
		t.Fatalf("filesystem 32MB write at 8 nodes = %v, want ~iter %v",
			pt8.WriteMean, pt8.SimIterS)
	}
}

func TestPattern1EventCountsReasonable(t *testing.T) {
	pt := RunPattern1(Pattern1Config{Nodes: 8, Backend: datastore.NodeLocal, SizeMB: 2, TrainIters: 600})
	if pt.Writes == 0 || pt.Reads == 0 {
		t.Fatalf("no transport events: %+v", pt)
	}
	// 48 sim ranks × (600·0.0633 / (100·0.0325)) ≈ 48 × 11.7 ≈ 560 writes.
	if pt.Writes < 300 || pt.Writes > 900 {
		t.Fatalf("write events = %d, want ~560", pt.Writes)
	}
}

func TestPrintFig3Fig4(t *testing.T) {
	points, err := RunFig3(bg, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintFig3(&buf, 8, points)
	out := buf.String()
	for _, want := range []string{"redis", "filesystem", "dragon", "node-local", "read(GB/s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3 output missing %q:\n%s", want, out)
		}
	}
	var buf4 bytes.Buffer
	fig4Points, err := RunFig4(bg, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig4(&buf4, 8, fig4Points)
	if !strings.Contains(buf4.String(), "sim-iter(s)") {
		t.Fatalf("fig4 output malformed:\n%s", buf4.String())
	}
}

// --- Pattern 2 (Fig 5/6) shape tests ---

func TestFig5RedisNonLocalReadPoor(t *testing.T) {
	rd := RunFig5(Fig5Config{Backend: datastore.Redis, SizeMB: 8})
	dr := RunFig5(Fig5Config{Backend: datastore.Dragon, SizeMB: 8})
	if rd.ReadGBps > dr.ReadGBps/3 {
		t.Fatalf("redis read %v should be << dragon %v", rd.ReadGBps, dr.ReadGBps)
	}
	// But redis local write is reasonable (comparable to its Fig 3 profile).
	if rd.WriteGBps < rd.ReadGBps {
		t.Fatalf("redis local write %v should beat its non-local read %v",
			rd.WriteGBps, rd.ReadGBps)
	}
}

func TestFig5DragonPeaksNear10MB(t *testing.T) {
	t1 := RunFig5(Fig5Config{Backend: datastore.Dragon, SizeMB: 1}).ReadGBps
	t10 := RunFig5(Fig5Config{Backend: datastore.Dragon, SizeMB: 10}).ReadGBps
	t128 := RunFig5(Fig5Config{Backend: datastore.Dragon, SizeMB: 128}).ReadGBps
	if !(t10 > t1 && t128 < t10) {
		t.Fatalf("dragon read should peak near 10MB: %v %v %v", t1, t10, t128)
	}
}

func TestFig5FSApproachesDragonAtLargeSizes(t *testing.T) {
	gap := func(size float64) float64 {
		fs := RunFig5(Fig5Config{Backend: datastore.FileSystem, SizeMB: size}).ReadGBps
		dr := RunFig5(Fig5Config{Backend: datastore.Dragon, SizeMB: size}).ReadGBps
		return dr / fs
	}
	if small, large := gap(1), gap(128); large >= small/1.5 {
		t.Fatalf("FS should close on dragon with size: gap %v -> %v", small, large)
	}
}

func TestFig6At8NodesDragonAndFSComparable(t *testing.T) {
	// "At this scale, the DragonHPC and file system backends perform
	// equally well."
	dr := RunFig6(Fig6Config{Nodes: 8, Backend: datastore.Dragon, SizeMB: 4, TrainIters: 200})
	fs := RunFig6(Fig6Config{Nodes: 8, Backend: datastore.FileSystem, SizeMB: 4, TrainIters: 200})
	ratio := dr.ExecPerIterS / fs.ExecPerIterS
	if ratio > 1.5 || ratio < 0.5 {
		t.Fatalf("8-node dragon/fs ratio = %v (%v vs %v)", ratio, dr.ExecPerIterS, fs.ExecPerIterS)
	}
}

func TestFig6At128NodesDragonLagsFSAtSmallSizes(t *testing.T) {
	// "For message sizes less than 10 MB, DragonHPC runtime is
	// significantly longer than the file system."
	dr := RunFig6(Fig6Config{Nodes: 128, Backend: datastore.Dragon, SizeMB: 1, TrainIters: 200})
	fs := RunFig6(Fig6Config{Nodes: 128, Backend: datastore.FileSystem, SizeMB: 1, TrainIters: 200})
	if dr.FetchMeanS < 2*fs.FetchMeanS {
		t.Fatalf("dragon fetch %v should be >= 2x fs %v at 1MB/128 nodes",
			dr.FetchMeanS, fs.FetchMeanS)
	}
	// "For larger message sizes, both DragonHPC and the file system show
	// similar performance."
	drBig := RunFig6(Fig6Config{Nodes: 128, Backend: datastore.Dragon, SizeMB: 128, TrainIters: 100})
	fsBig := RunFig6(Fig6Config{Nodes: 128, Backend: datastore.FileSystem, SizeMB: 128, TrainIters: 100})
	ratio := drBig.ExecPerIterS / fsBig.ExecPerIterS
	if ratio > 2.5 {
		t.Fatalf("large-size dragon/fs should converge: ratio %v", ratio)
	}
}

func TestFig6RedisSlowestEverywhere(t *testing.T) {
	for _, nodes := range []int{8, 128} {
		for _, size := range []float64{1, 32} {
			rd := RunFig6(Fig6Config{Nodes: nodes, Backend: datastore.Redis, SizeMB: size, TrainIters: 100})
			dr := RunFig6(Fig6Config{Nodes: nodes, Backend: datastore.Dragon, SizeMB: size, TrainIters: 100})
			fs := RunFig6(Fig6Config{Nodes: nodes, Backend: datastore.FileSystem, SizeMB: size, TrainIters: 100})
			if rd.FetchMeanS < dr.FetchMeanS || rd.FetchMeanS < fs.FetchMeanS {
				t.Fatalf("nodes=%d size=%v: redis fetch %v not slowest (dragon %v, fs %v)",
					nodes, size, rd.FetchMeanS, dr.FetchMeanS, fs.FetchMeanS)
			}
		}
	}
}

func TestFig6ExecTimeIncludesCompute(t *testing.T) {
	// With tiny messages the trainer should be compute-bound near its
	// iteration time (the flat left side of Fig 6a).
	pt := RunFig6(Fig6Config{Nodes: 8, Backend: datastore.FileSystem, SizeMB: 0.4, TrainIters: 200})
	if pt.ExecPerIterS < 0.0633 {
		t.Fatalf("exec/iter %v below pure compute 0.0633", pt.ExecPerIterS)
	}
	if pt.ExecPerIterS > 0.0633*2 {
		t.Fatalf("exec/iter %v should be near compute floor for tiny messages", pt.ExecPerIterS)
	}
}

func TestPrintFig5Fig6(t *testing.T) {
	var buf bytes.Buffer
	fig5Points, err := RunFig5Sweep(bg, 10)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig5(&buf, fig5Points)
	if !strings.Contains(buf.String(), "non-local read") {
		t.Fatalf("fig5 output malformed:\n%s", buf.String())
	}
	var buf6 bytes.Buffer
	fig6Points, err := RunFig6Sweep(bg, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig6(&buf6, 8, fig6Points)
	if !strings.Contains(buf6.String(), "exec/iter(s)") {
		t.Fatalf("fig6 output malformed:\n%s", buf6.String())
	}
}

// --- Validation (Tables 2/3, Fig 2) ---

// smallValidation runs a scaled-down validation quickly.
func smallValidation(t *testing.T, mode ValidationMode) *ValidationResult {
	t.Helper()
	res, err := RunValidation(bg, ValidationConfig{
		Mode:         mode,
		TrainIters:   300,
		WritePeriod:  25,
		ReadPeriod:   5,
		PayloadBytes: 50_000,
		// A gentle compression: aggressive scales push padded iteration
		// targets below the scheduler noise floor on small machines and
		// the Table-3 variance comparison washes out.
		TimeScale:  0.01,
		Backend:    datastore.NodeLocal,
		SimInitS:   0.5,
		TrainInitS: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidationTrainerRunsExactIterations(t *testing.T) {
	res := smallValidation(t, MiniApp)
	if res.Train.Timesteps != 300 {
		t.Fatalf("train steps = %d, want exactly 300", res.Train.Timesteps)
	}
}

func TestValidationSimStopsAfterSteering(t *testing.T) {
	res := smallValidation(t, MiniApp)
	// Sim runs ~ (300·0.061)/0.0315 ≈ 580 steps before the stop signal.
	if res.Sim.Timesteps < 300 || res.Sim.Timesteps > 1200 {
		t.Fatalf("sim steps = %d, want ~580", res.Sim.Timesteps)
	}
}

func TestValidationTransportEventCounts(t *testing.T) {
	res := smallValidation(t, MiniApp)
	// Two staged arrays per write period on the sim side.
	expWrites := 2 * (res.Sim.Timesteps / 25)
	if res.Sim.TransportEvents < expWrites-4 || res.Sim.TransportEvents > expWrites+4 {
		t.Fatalf("sim transport = %d, want ~%d", res.Sim.TransportEvents, expWrites)
	}
	// The trainer reads each fresh snapshot once (2 events each); it can
	// never read more snapshots than were written.
	if res.Train.TransportEvents == 0 || res.Train.TransportEvents > res.Sim.TransportEvents+4 {
		t.Fatalf("train transport = %d vs sim %d", res.Train.TransportEvents, res.Sim.TransportEvents)
	}
}

func TestValidationMiniAppLowStd(t *testing.T) {
	// Table 3's signature: the mini-app holds iteration time nearly
	// constant while the original varies widely.
	// Wall-clock variance assertions are inherently sensitive to outside
	// load (the suite shares one machine with parallel test binaries), so
	// allow a couple of retries: a genuine regression fails all attempts.
	const attempts = 3
	var lastErr string
	for attempt := 0; attempt < attempts; attempt++ {
		mini := smallValidation(t, MiniApp)
		orig := smallValidation(t, Original)
		switch {
		case mini.Train.IterStd > mini.Train.IterMean*0.6:
			lastErr = fmt.Sprintf("mini-app train std %v too high (mean %v)",
				mini.Train.IterStd, mini.Train.IterMean)
		case orig.Sim.IterStd < 1.5*mini.Sim.IterStd:
			lastErr = fmt.Sprintf("original sim std %v should clearly exceed mini-app %v",
				orig.Sim.IterStd, mini.Sim.IterStd)
		case math.Abs(orig.Train.IterMean-mini.Train.IterMean) > 0.03:
			lastErr = fmt.Sprintf("train iter means diverge: %v vs %v",
				orig.Train.IterMean, mini.Train.IterMean)
		default:
			return // all Table 3 properties hold
		}
		t.Logf("attempt %d: %s", attempt, lastErr)
	}
	t.Fatal(lastErr)
}

func TestValidationTimelinePopulated(t *testing.T) {
	res := smallValidation(t, MiniApp)
	if res.Timeline.Count("Simulation", 1) == 0 { // KindTransfer
		t.Fatal("no sim transfer spans on timeline")
	}
	if res.Timeline.Count("Training", 0) == 0 { // KindCompute
		t.Fatal("no training compute spans on timeline")
	}
}

func TestValidationPrinters(t *testing.T) {
	mini := smallValidation(t, MiniApp)
	orig := smallValidation(t, Original)
	var buf bytes.Buffer
	PrintTable2(&buf, orig, mini)
	PrintTable3(&buf, orig, mini)
	if err := PrintFig2(&buf, orig, mini, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Original", "Mini-app", "Fig 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("validation output missing %q:\n%s", want, out)
		}
	}
}

func TestValidationAcrossBackends(t *testing.T) {
	// The mini-app's event structure must be backend-independent: the
	// same workflow over Redis, Dragon and node-local staging produces
	// the same trainer iteration count and closely matching transport
	// event counts (transport *performance* differs; structure must not).
	var results []*ValidationResult
	for _, b := range []datastore.Backend{datastore.NodeLocal, datastore.Redis, datastore.Dragon} {
		res, err := RunValidation(bg, ValidationConfig{
			Mode: MiniApp, TrainIters: 200, WritePeriod: 25, ReadPeriod: 5,
			PayloadBytes: 20_000, TimeScale: 0.01, Backend: b,
			SimInitS: 0.2, TrainInitS: 0.4,
		})
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if res.Train.Timesteps != 200 {
			t.Fatalf("%v: train steps = %d", b, res.Train.Timesteps)
		}
		results = append(results, res)
	}
	for _, res := range results[1:] {
		// Sim step counts vary slightly with backend write latency; the
		// events-per-step structure must agree within a few snapshots.
		ratio0 := float64(results[0].Sim.TransportEvents) / float64(results[0].Sim.Timesteps)
		ratioB := float64(res.Sim.TransportEvents) / float64(res.Sim.Timesteps)
		if math.Abs(ratio0-ratioB) > 0.02 {
			t.Fatalf("event structure differs across backends: %v vs %v", ratio0, ratioB)
		}
	}
}
