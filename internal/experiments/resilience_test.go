package experiments

import (
	"bytes"
	"math"
	"testing"

	"simaibench/internal/clock"
	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
	"simaibench/internal/faults"
	"simaibench/internal/scenario"
	"simaibench/internal/stats"
)

// TestResilienceHealthyMatchesScaleOut is the equivalence contract of
// the fault layer: with crashes disabled and checkpointing off, the
// resilience rank machines must replay the exact event sequence of the
// scale-out machines — every shared observable bit-identical, for every
// backend. This is what guarantees the fault layer is a pure extension:
// its interruptibility hooks cost the healthy path nothing.
func TestResilienceHealthyMatchesScaleOut(t *testing.T) {
	for _, b := range datastore.Backends() {
		so := RunScaleOut(ScaleOutConfig{Tenants: 4, Backend: b, TrainIters: 150})
		re := RunResilience(ResilienceConfig{Tenants: 4, Backend: b, TrainIters: 150})
		if re.Crashes != 0 || re.WastedS != 0 || re.CkptWrites != 0 {
			t.Fatalf("%v: healthy run reported faults: %+v", b, re)
		}
		if !math.IsInf(re.MTBFS, 1) {
			t.Fatalf("%v: healthy MTBF should normalize to +Inf, got %v", b, re.MTBFS)
		}
		pairs := [][2]float64{
			{so.WriteGBps, re.WriteGBps},
			{so.ReadGBps, re.ReadGBps},
			{so.StageMeanS, re.StageMeanS},
			{so.StageP50S, re.StageP50S},
			{so.SharedWaitS, re.SharedWaitS},
			{so.AggGBps, re.AggGBps},
			{float64(so.Writes), float64(re.Writes)},
		}
		for i, p := range pairs {
			if p[0] != p[1] {
				t.Errorf("%v: observable %d differs: scale-out %v, resilience %v", b, i, p[0], p[1])
			}
		}
	}
}

// TestResilienceWasteMonotoneInCkptInterval is the acceptance-criteria
// contract: with faults enabled, the wasted-work fraction decreases
// monotonically as the checkpoint interval shrinks (fail-stop — no
// checkpoints — wastes the most), for every backend, against the same
// seeded crash timeline.
func TestResilienceWasteMonotoneInCkptInterval(t *testing.T) {
	for _, b := range datastore.Backends() {
		prev := math.Inf(1)
		prevInterval := "start"
		wastes := []float64{}
		for _, ckpt := range ResilienceCkptIntervals { // 0 (off), then shrinking
			pt := RunResilience(ResilienceConfig{Backend: b, MTBFS: 30, CkptIntervalS: ckpt})
			if pt.Crashes == 0 {
				t.Fatalf("%v ckpt=%v: no crashes at MTBF 30", b, ckpt)
			}
			if pt.WastedFrac > prev {
				t.Errorf("%v: waste increased from %v (ckpt=%s) to %v (ckpt=%v)",
					b, prev, prevInterval, pt.WastedFrac, ckpt)
			}
			prev = pt.WastedFrac
			prevInterval = ckptLabel(ckpt)
			wastes = append(wastes, pt.WastedFrac)
		}
		// The spread must be real, not a flat line of zeros.
		if wastes[0] < 2*wastes[len(wastes)-1] || wastes[0] <= 0 {
			t.Errorf("%v: waste spread too small to be meaningful: %v", b, wastes)
		}
	}
}

// TestResilienceCrashTimelineSharedAcrossPolicies: every cell of one
// MTBF column sees the identical crash count — the injector's streams
// are independent of the recovery configuration.
func TestResilienceCrashTimelineSharedAcrossPolicies(t *testing.T) {
	var crashes []int
	for _, ckpt := range []float64{0, 8, 2} {
		pt := RunResilience(ResilienceConfig{Backend: datastore.NodeLocal, MTBFS: 45, CkptIntervalS: ckpt})
		crashes = append(crashes, pt.Crashes)
	}
	if crashes[0] == 0 || crashes[0] != crashes[1] || crashes[1] != crashes[2] {
		t.Fatalf("crash counts differ across recovery configs: %v", crashes)
	}
}

// TestResilienceFaultsCostThroughput: crashes must actually cost
// something — fewer completed writes and positive waste relative to the
// healthy run.
func TestResilienceFaultsCostThroughput(t *testing.T) {
	healthy := RunResilience(ResilienceConfig{Backend: datastore.Redis})
	faulty := RunResilience(ResilienceConfig{Backend: datastore.Redis, MTBFS: 20})
	if faulty.Crashes == 0 {
		t.Fatal("no crashes at MTBF 20")
	}
	if faulty.Writes >= healthy.Writes {
		t.Fatalf("crashes did not reduce completed writes: %d vs healthy %d", faulty.Writes, healthy.Writes)
	}
	if faulty.WastedS <= 0 || faulty.WastedFrac <= 0 {
		t.Fatalf("crashes wasted no work: %+v", faulty)
	}
	if faulty.EffGBps >= faulty.AggGBps {
		t.Fatal("effective throughput should be discounted below aggregate under waste")
	}
}

// TestResilienceCheckpointTrafficFlows: with checkpointing on, durable
// checkpoint writes complete and carry nonzero cost through the
// backend.
func TestResilienceCheckpointTrafficFlows(t *testing.T) {
	pt := RunResilience(ResilienceConfig{Backend: datastore.Dragon, MTBFS: 60, CkptIntervalS: 4})
	if pt.CkptWrites == 0 || pt.CkptTotalS <= 0 {
		t.Fatalf("no checkpoint traffic: %+v", pt)
	}
	if pt.CkptFrac <= 0 || pt.CkptFrac > 0.5 {
		t.Fatalf("checkpoint overhead fraction implausible: %v", pt.CkptFrac)
	}
}

// TestResilienceStragglerReDispatch: under a heavy straggler regime the
// re-dispatch policy must deliver more completed writes than riding the
// slowdown out.
func TestResilienceStragglerReDispatch(t *testing.T) {
	base := ResilienceConfig{
		Backend:       datastore.NodeLocal,
		StragglerMTBS: 15, StragglerFactor: 8, StragglerDurS: 10,
	}
	ride := RunResilience(base)
	red := base
	red.ReDispatchStragglers = true
	moved := RunResilience(red)
	if ride.Writes >= moved.Writes {
		t.Fatalf("re-dispatch did not help: %d writes vs %d riding it out", moved.Writes, ride.Writes)
	}
}

// TestResilienceOutageDefersStaging: transient datastore outages reduce
// completed staging traffic — and checkpoint traffic, which must not
// start against a backend that is down — without crashing anything.
func TestResilienceOutageDefersStaging(t *testing.T) {
	healthy := RunResilience(ResilienceConfig{Backend: datastore.Redis})
	out := RunResilience(ResilienceConfig{Backend: datastore.Redis, OutageMTBS: 10, OutageDurS: 2})
	if out.Crashes != 0 {
		t.Fatalf("outage run crashed nodes: %+v", out)
	}
	if out.Writes >= healthy.Writes {
		t.Fatalf("outages did not defer staging: %d writes vs healthy %d", out.Writes, healthy.Writes)
	}
	ckHealthy := RunResilience(ResilienceConfig{Backend: datastore.Redis, CkptIntervalS: 2})
	ckOut := RunResilience(ResilienceConfig{Backend: datastore.Redis, CkptIntervalS: 2,
		OutageMTBS: 10, OutageDurS: 2})
	if ckOut.CkptWrites == 0 || ckOut.CkptWrites >= ckHealthy.CkptWrites {
		t.Fatalf("outages did not defer checkpoints: %d commits vs healthy %d",
			ckOut.CkptWrites, ckHealthy.CkptWrites)
	}
}

// TestCrashDuringRestoreChargesNoExtraWaste: a second crash landing
// while the post-repair restore read is still running must not
// re-charge the work already charged at the first crash (no compute has
// accrued in between).
func TestCrashDuringRestoreChargesNoExtraWaste(t *testing.T) {
	env := des.NewEnv()
	spec := cluster.Aurora(2)
	model := costmodel.New(env, spec, costmodel.Default())
	fs := &resFaultState{
		model:   model,
		rec:     faults.Recovery{Policy: faults.CheckpointRestart, CkptIntervalS: 50, CkptSizeMB: 8},
		backend: datastore.Redis, sizeMB: 8, horizon: 100,
		byNodeW: make([][]*resSimWriter, spec.Nodes),
		byNodeR: make([][]*resAIReader, spec.Nodes),
	}
	fs.inj = faults.New(env, spec, faults.Profile{}, faults.Hooks{})
	var wt stats.Welford
	var tput stats.Throughput
	var wasted, ckptTotal float64
	var ckptWrites int64
	samples := []float64{}
	w := &resSimWriter{}
	initResSimWriter(w, env, fs, 0, 0.5, 8e6, &wt, &tput, &samples,
		&wasted, &ckptWrites, &ckptTotal, 0)
	env.At(10, w.onCrash)
	env.At(11, w.onRepair)    // restore read begins (~20 ms)
	env.At(11.001, w.onCrash) // crash mid-restore
	env.At(12, w.onRepair)    // recover for good
	env.RunUntil(40)
	env.Shutdown()
	// Only the first crash charges: 10 s since lastCommit(0). The
	// mid-restore crash accrued no work.
	if wasted != 10 {
		t.Fatalf("wasted = %v, want exactly 10 (second crash double-charged)", wasted)
	}
}

// TestReDispatchAbandonsInFlightCheckpoint: migrating a rank off a
// straggling node while its checkpoint write is in flight must abandon
// that write — rebinding the transfer objects would otherwise orphan
// the only Abort handle, and a crash right after the migration would
// let the dead claim commit a phantom checkpoint (ckptDone firing for
// a down rank).
func TestReDispatchAbandonsInFlightCheckpoint(t *testing.T) {
	env := des.NewEnv()
	spec := cluster.Aurora(2)
	model := costmodel.New(env, spec, costmodel.Default())
	fs := &resFaultState{
		model: model,
		rec: faults.Recovery{Policy: faults.CheckpointRestart, CkptIntervalS: 5,
			CkptSizeMB: 8, ReDispatchStragglers: true},
		backend: datastore.Redis, sizeMB: 8, horizon: 100,
		byNodeW: make([][]*resSimWriter, spec.Nodes),
		byNodeR: make([][]*resAIReader, spec.Nodes),
	}
	fs.inj = faults.New(env, spec, faults.Profile{}, faults.Hooks{})
	var wt stats.Welford
	var tput stats.Throughput
	var wasted, ckptTotal float64
	var ckptWrites int64
	samples := []float64{}
	w := &resSimWriter{}
	initResSimWriter(w, env, fs, 0, 0.5, 8e6, &wt, &tput, &samples,
		&wasted, &ckptWrites, &ckptTotal, 0)
	// The first cadence tick starts a checkpoint write at t=5; 1 ms into
	// it the rank is re-dispatched to node 1, and 1 ms later node 1
	// crashes the rank. Neither the abandoned nor any other checkpoint
	// may commit while the rank is down.
	env.At(5.001, func() {
		if !w.ckptBusy {
			t.Fatal("checkpoint write should be in flight at t=5.001")
		}
		w.reDispatch(1)
	})
	env.At(5.002, w.onCrash)
	env.RunUntil(50)
	env.Shutdown()
	if ckptWrites != 0 {
		t.Fatalf("%d checkpoint(s) committed for a migrated-then-crashed rank", ckptWrites)
	}
	if w.lastCommit != 0 {
		t.Fatalf("lastCommit moved to %v for a crashed rank", w.lastCommit)
	}
}

// resilienceGoldenParams scale the scenario down for the golden and
// determinism tests (the grid shape is the default one).
var resilienceGoldenParams = scenario.Params{SweepIters: 150, Tenants: 4, Clock: clock.KindVirtual}

// renderResilience runs the registered scenario and renders it through
// the text reporter, the exact `-exp resilience -format text` path.
func renderResilience(t *testing.T, p scenario.Params) []byte {
	t.Helper()
	return renderText(t, "resilience", p)
}

// TestGoldenResilienceVirtual pins the resilience tables bit-for-bit:
// the whole family — injector timelines, interruption bookkeeping,
// checkpoint contention — is deterministic per seed.
func TestGoldenResilienceVirtual(t *testing.T) {
	checkGolden(t, "resilience_virtual.golden", renderResilience(t, resilienceGoldenParams))
}

// TestResilienceDeterministicAcrossRunsAndClocks: two renderings are
// byte-identical, and the scenario runs under both clock kinds (it is a
// pure-DES family: the emulation clock only tags the params) with
// identical tables.
func TestResilienceDeterministicAcrossRunsAndClocks(t *testing.T) {
	a := renderResilience(t, resilienceGoldenParams)
	b := renderResilience(t, resilienceGoldenParams)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical resilience runs rendered different bytes")
	}
	wall := resilienceGoldenParams
	wall.Clock = clock.KindWall
	c := renderResilience(t, wall)
	if !bytes.Equal(a, c) {
		t.Fatal("virtual- and wall-clock resilience tables differ")
	}
}

// TestResilienceParamsNarrowGrids: -mtbf/-ckpt collapse the sweep axes
// to {baseline, value}.
func TestResilienceParamsNarrowGrids(t *testing.T) {
	m := resilienceMTBFs(90)
	if len(m) != 2 || !math.IsInf(m[0], 1) || m[1] != 90 {
		t.Fatalf("resilienceMTBFs(90) = %v", m)
	}
	if got := resilienceMTBFs(0); len(got) != len(ResilienceMTBFs) {
		t.Fatalf("resilienceMTBFs(0) should be the default grid, got %v", got)
	}
	c := resilienceCkpts(5)
	if len(c) != 2 || c[0] != 0 || c[1] != 5 {
		t.Fatalf("resilienceCkpts(5) = %v", c)
	}
	if got := resilienceCkpts(0); len(got) != len(ResilienceCkptIntervals) {
		t.Fatalf("resilienceCkpts(0) should be the default grid, got %v", got)
	}
}
