package experiments

import (
	"bytes"
	"math"
	"testing"

	"simaibench/internal/scenario"
)

// campaignTestParams keep the golden/determinism runs quick while
// preserving every regime of the default grid.
var campaignTestParams = scenario.Params{Jobs: 300}

func TestGoldenCampaignScenario(t *testing.T) {
	checkGolden(t, "campaign.golden", renderText(t, "campaign", campaignTestParams))
}

// TestCampaignDeterministicRender is the ×2-run bit-identity contract:
// the campaign is a pure function of its seed, so two full renders —
// arrival generation, scheduling, fault injection, digests — are
// byte-identical.
func TestCampaignDeterministicRender(t *testing.T) {
	a := renderText(t, "campaign", campaignTestParams)
	b := renderText(t, "campaign", campaignTestParams)
	if !bytes.Equal(a, b) {
		t.Errorf("campaign differs across two runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestCampaignArrivalInvariantAcrossPolicies pins the open-loop
// contract: the arrival timeline is generated before scheduling and on
// its own rng streams, so every policy at a fixed (seed, load) faces
// the byte-identical offered workload — including under faults.
func TestCampaignArrivalInvariantAcrossPolicies(t *testing.T) {
	for _, mtbf := range []float64{0, CampaignFaultyMTBFS} {
		var sig uint64
		for i, pol := range campaignPolicies("") {
			pt, err := RunCampaignChecked(CampaignConfig{
				Load: 0.9, Policy: pol, Jobs: 200, MTBFS: mtbf,
			})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				sig = pt.ArrivalSig
				continue
			}
			if pt.ArrivalSig != sig {
				t.Errorf("mtbf=%g: policy %s saw arrival signature %x, want %x",
					mtbf, pol, pt.ArrivalSig, sig)
			}
		}
	}
}

// TestCampaignOverloadDifferentiation is the headline acceptance
// criterion: under 20% overload the size-aware policies' p99 slowdown
// is strictly below FIFO's.
func TestCampaignOverloadDifferentiation(t *testing.T) {
	run := func(pol string) CampaignPoint {
		pt, err := RunCampaignChecked(CampaignConfig{Load: 1.2, Policy: pol, Jobs: 400})
		if err != nil {
			t.Fatal(err)
		}
		return pt
	}
	fifo := run("fifo")
	for _, pol := range []string{"srpt", "hermod"} {
		if pt := run(pol); !(pt.SlowP99 < fifo.SlowP99) {
			t.Errorf("%s p99 slowdown %v not below FIFO's %v under overload",
				pol, pt.SlowP99, fifo.SlowP99)
		}
	}
}

// TestCampaignNarrowedParams: -rate and -policy narrow the grid to a
// single cell per fault profile, the scriptable single-point mode.
func TestCampaignNarrowedParams(t *testing.T) {
	s, ok := scenario.Lookup("campaign")
	if !ok {
		t.Fatal("campaign not registered")
	}
	res, err := s.Run(bg, scenario.Params{Jobs: 100, Rate: 0.7, Policy: "srpt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("%d tables, want 2 (healthy + faulty)", len(res.Tables))
	}
	for _, tb := range res.Tables {
		if len(tb.Rows) != 1 {
			t.Errorf("%q has %d rows, want 1", tb.Title, len(tb.Rows))
		}
	}
	if len(res.Failures) != 0 {
		t.Errorf("unexpected cell failures: %+v", res.Failures)
	}
}

// TestCampaignChecksBadInputs: unknown policies and degenerate loads
// surface as cell errors, not zero-value rows.
func TestCampaignChecksBadInputs(t *testing.T) {
	if _, err := RunCampaignChecked(CampaignConfig{Policy: "lottery"}); err == nil {
		t.Error("unknown policy accepted")
	}
	// Negative/zero loads fall back to the default (the withDefaults
	// convention); NaN is the degenerate value nothing can default.
	if _, err := RunCampaignChecked(CampaignConfig{Load: math.NaN(), Jobs: 10}); err == nil {
		t.Error("NaN load accepted")
	}
}

// TestCampaignFaultyAccounting: the faulty grid must actually injure
// the default-length campaign (crashes and restarts observed) while
// every job still retires.
func TestCampaignFaultyAccounting(t *testing.T) {
	pt, err := RunCampaignChecked(CampaignConfig{
		Load: 0.7, Policy: "fifo", Jobs: 600, MTBFS: CampaignFaultyMTBFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Crashes == 0 {
		t.Error("faulty profile injected no crashes; campaign too short for MTBF")
	}
	if pt.Completed+pt.Dropped != 600 {
		t.Errorf("completed %d + dropped %d != 600", pt.Completed, pt.Dropped)
	}
	if !(pt.Util > 0 && pt.Util <= 1) || !(pt.Fairness > 0 && pt.Fairness <= 1) {
		t.Errorf("util %v / fairness %v out of range", pt.Util, pt.Fairness)
	}
}
