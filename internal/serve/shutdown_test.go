package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Lifecycle robustness: shutdown mid-run must lose nothing that
// completed. The in-flight slow run finishes inside the drain window and
// its waiting caller is served the full result; requests arriving during
// the drain get typed 503s; and the server exits within its deadline.

// startServing runs ListenAndServe on cfg under a cancellable context
// and returns the base URL, the cancel that triggers the drain, and the
// channel carrying ListenAndServe's return.
func startServing(t *testing.T, cfg Config) (url string, shutdown context.CancelFunc, done chan error) {
	t.Helper()
	registerTestScenarios()
	cfg.Addr = "127.0.0.1:0"
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx); close(done) }()
	select {
	case <-s.Ready():
	case <-time.After(5 * time.Second):
		t.Fatalf("server never bound its listener")
	}
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Errorf("server never exited")
		}
	})
	return "http://" + s.Addr(), cancel, done
}

func TestGracefulShutdownServesInFlight(t *testing.T) {
	url, shutdown, done := startServing(t, Config{Workers: 2, DrainTimeout: 5 * time.Second})

	// A slow run (~400ms) goes in flight...
	inflight := make(chan error, 1)
	var body []byte
	var cacheTag string
	go func() {
		resp, err := http.Post(url+"/v1/run", "application/json",
			strings.NewReader(`{"scenario":"t-slow","params":{"timeline_window_s":0.4},"seed":300}`))
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		body, cacheTag = buf.Bytes(), resp.Header.Get("X-Cache")
		if resp.StatusCode != http.StatusOK {
			inflight <- errors.New(buf.String())
			return
		}
		inflight <- nil
	}()
	<-tSlowStarted

	// ...then the SIGTERM path fires mid-run.
	shutdown()

	// New work is refused with the typed shutting_down error while the
	// drain is in progress (the listener still answers).
	deadline := time.Now().Add(2 * time.Second)
	sawRefusal := false
	for time.Now().Before(deadline) && !sawRefusal {
		resp, err := http.Post(url+"/v1/run", "application/json",
			strings.NewReader(`{"scenario":"t-ok","seed":301}`))
		if err != nil {
			break // listener already closed: drain finished first
		}
		func() {
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				var eb errorBody
				if json.NewDecoder(resp.Body).Decode(&eb) == nil &&
					eb.Error != nil && eb.Error.Kind == KindShuttingDown {
					sawRefusal = true
				}
			}
		}()
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight run completes and its caller is served the result.
	select {
	case err := <-inflight:
		if err != nil {
			t.Fatalf("in-flight request lost to shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("in-flight request never resolved")
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil || rr.Result == nil {
		t.Fatalf("in-flight caller got a broken body (X-Cache %q): %s", cacheTag, body)
	}
	if !sawRefusal {
		t.Fatalf("no request observed the typed shutting_down refusal during the drain")
	}

	// And the server exits cleanly, well within the drain deadline.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ListenAndServe: %v (want clean drain)", err)
		}
	case <-time.After(6 * time.Second):
		t.Fatalf("server did not exit within the drain deadline")
	}
}

func TestDrainDeadlineAbandonsWedgedRun(t *testing.T) {
	url, shutdown, done := startServing(t, Config{Workers: 1, DrainTimeout: 200 * time.Millisecond})

	// A run that never finishes on its own occupies the worker. Its own
	// RunTimeout is long, so only the drain deadline can unstick it.
	hung := make(chan struct {
		status int
		body   []byte
	}, 1)
	go func() {
		resp, err := http.Post(url+"/v1/run", "application/json",
			strings.NewReader(`{"scenario":"t-hang","timeout_s":60,"seed":310}`))
		if err != nil {
			hung <- struct {
				status int
				body   []byte
			}{0, []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		hung <- struct {
			status int
			body   []byte
		}{resp.StatusCode, buf.Bytes()}
	}()
	time.Sleep(100 * time.Millisecond) // let the run get admitted
	start := time.Now()
	shutdown()

	select {
	case err := <-done:
		if !errors.Is(err, ErrDrainTimeout) {
			t.Fatalf("ListenAndServe = %v, want ErrDrainTimeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server wedged on an unfinishable run")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain deadline did not bound shutdown: took %v", elapsed)
	}
	// The abandoned caller got a typed error, not a dropped connection.
	r := <-hung
	if r.status != http.StatusServiceUnavailable && r.status != http.StatusGatewayTimeout {
		t.Fatalf("abandoned caller: status %d body %s", r.status, r.body)
	}
}
