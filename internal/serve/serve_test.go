package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simaibench/internal/clock"
	"simaibench/internal/des"
	"simaibench/internal/scenario"
)

// The serve tests do not import the experiments packages, so the global
// registry is empty here and the suite registers its own test-only
// scenarios (the saboteur pattern the guardrail tests use): a healthy
// deterministic run, a run counter for dedup assertions, a slow run for
// drain tests, and one misbehaving run per guardrail.

var (
	registerOnce sync.Once
	// tCountRuns counts underlying executions of t-count — the
	// singleflight assertions' ground truth.
	tCountRuns atomic.Int64
	// tSlowStarted receives one tick per t-slow run start, so drain tests
	// can SIGTERM mid-run instead of racing the admission.
	tSlowStarted = make(chan struct{}, 64)
)

// okResult builds a small deterministic Result echoing p.Rate.
func okResult(name string, p scenario.Params) *scenario.Result {
	return &scenario.Result{Scenario: name, Params: p, Tables: []scenario.Table{{
		Title:   name,
		Columns: []scenario.Column{{Key: "rate", Head: "rate", HeadFmt: "%8s", CellFmt: "%8.2f"}},
		Rows:    [][]any{{p.Rate}},
	}}}
}

// registerTestScenarios installs the suite's scenarios once per process.
func registerTestScenarios() {
	registerOnce.Do(func() {
		scenario.Register(scenario.New("t-ok", "test: deterministic healthy run",
			scenario.Params{Rate: 2},
			func(_ context.Context, p scenario.Params) (*scenario.Result, error) {
				return okResult("t-ok", p), nil
			}))
		scenario.Register(scenario.New("t-wall", "test: wall-clock run (uncacheable)",
			scenario.Params{Rate: 1, Clock: clock.KindWall},
			func(_ context.Context, p scenario.Params) (*scenario.Result, error) {
				return okResult("t-wall", p), nil
			}))
		scenario.Register(scenario.New("t-count", "test: counts executions, briefly slow",
			scenario.Params{Rate: 1},
			func(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
				tCountRuns.Add(1)
				select {
				case <-time.After(50 * time.Millisecond):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return okResult("t-count", p), nil
			}))
		scenario.Register(scenario.New("t-slow", "test: runs for TimelineWindowS seconds",
			scenario.Params{Rate: 1, TimelineWindowS: 0.2},
			func(ctx context.Context, p scenario.Params) (*scenario.Result, error) {
				select {
				case tSlowStarted <- struct{}{}:
				default:
				}
				select {
				case <-time.After(time.Duration(p.TimelineWindowS * float64(time.Second))):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return okResult("t-slow", p), nil
			}))
		scenario.Register(scenario.New("t-panic", "test: panics on every run",
			scenario.Params{Rate: 1},
			func(context.Context, scenario.Params) (*scenario.Result, error) {
				panic("t-panic: deliberate test panic")
			}))
		scenario.Register(scenario.New("t-budget", "test: trips the DES event budget",
			scenario.Params{Rate: 1},
			func(_ context.Context, p scenario.Params) (*scenario.Result, error) {
				return nil, &des.BudgetExceeded{
					Guard: des.Guard{MaxEvents: p.MaxEvents}, Events: p.MaxEvents, Now: 1,
				}
			}))
		scenario.Register(scenario.New("t-stall", "test: reports a wedged virtual clock",
			scenario.Params{Rate: 1},
			func(context.Context, scenario.Params) (*scenario.Result, error) {
				return nil, &clock.StallError{Joined: 2, Sleepers: 1, Idle: time.Second}
			}))
		scenario.Register(scenario.New("t-hang", "test: ignores nothing, sleeps on ctx",
			scenario.Params{Rate: 1},
			func(ctx context.Context, _ scenario.Params) (*scenario.Result, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			}))
	})
}

// newTestServer builds a Server on cfg plus an httptest front end, and
// registers cleanup that drains both.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	registerTestScenarios()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// paramsFromJSON decodes a raw params object, failing the test on error.
func paramsFromJSON(t *testing.T, raw string) scenario.Params {
	t.Helper()
	var p scenario.Params
	if err := json.Unmarshal([]byte(raw), &p); err != nil {
		t.Fatalf("params %s: %v", raw, err)
	}
	return p
}

// postRun submits one raw /v1/run body and returns status, body, X-Cache.
func postRun(t *testing.T, url string, body string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes(), resp.Header.Get("X-Cache")
}

func TestRunColdThenHotByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"scenario":"t-ok","params":{"rate":7},"seed":1}`

	st1, body1, tag1 := postRun(t, ts.URL, req)
	if st1 != http.StatusOK || tag1 != "miss" {
		t.Fatalf("cold: status %d X-Cache %q (want 200 miss): %s", st1, tag1, body1)
	}
	st2, body2, tag2 := postRun(t, ts.URL, req)
	if st2 != http.StatusOK || tag2 != "hit" {
		t.Fatalf("hot: status %d X-Cache %q (want 200 hit)", st2, tag2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("hot and cold bodies differ:\ncold: %s\nhot:  %s", body1, body2)
	}

	var rr RunResponse
	if err := json.Unmarshal(body1, &rr); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
	if rr.Scenario != "t-ok" || rr.Result == nil || len(rr.Key) != 64 {
		t.Fatalf("unexpected response: scenario %q key %q result %v", rr.Scenario, rr.Key, rr.Result)
	}
	if rr.Result.Params.Rate != 7 {
		t.Fatalf("params did not propagate: rate = %v", rr.Result.Params.Rate)
	}
}

func TestRunKeyedBySeedAndParams(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, b1, _ := postRun(t, ts.URL, `{"scenario":"t-ok","seed":1}`)
	st, _, tag := postRun(t, ts.URL, `{"scenario":"t-ok","seed":2}`)
	if st != http.StatusOK || tag == "hit" {
		t.Fatalf("different seed served from cache (status %d, X-Cache %q)", st, tag)
	}
	// Same effective params spelled implicitly vs explicitly: one key.
	st, b3, tag := postRun(t, ts.URL, `{"scenario":"t-ok","params":{"rate":2},"seed":1}`)
	if st != http.StatusOK || tag != "hit" {
		t.Fatalf("explicit defaults missed the cache (status %d, X-Cache %q)", st, tag)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatalf("implicit vs explicit defaults served different bodies")
	}
}

func TestWallClockBypassesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := `{"scenario":"t-wall","seed":1}`
	for i := 0; i < 2; i++ {
		st, _, tag := postRun(t, ts.URL, req)
		if st != http.StatusOK || tag == "hit" {
			t.Fatalf("request %d: status %d X-Cache %q (wall runs must not hit)", i, st, tag)
		}
	}
	if n := s.Stats().CacheLen; n != 0 {
		t.Fatalf("wall-clock result was cached (cache_len = %d)", n)
	}
}

func TestRunRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
		status     int
		kind       string
	}{
		{"malformed json", `{"scenario":`, http.StatusBadRequest, KindBadRequest},
		{"unknown field", `{"scenario":"t-ok","bogus":1}`, http.StatusBadRequest, KindBadRequest},
		{"missing scenario", `{"seed":1}`, http.StatusBadRequest, KindBadRequest},
		{"unknown scenario", `{"scenario":"no-such"}`, http.StatusNotFound, KindUnknownScenario},
		{"bad clock", `{"scenario":"t-ok","params":{"clock":"sundial"}}`, http.StatusBadRequest, KindBadRequest},
		{"negative timeout", `{"scenario":"t-ok","timeout_s":-1}`, http.StatusBadRequest, KindBadRequest},
	}
	for _, tc := range cases {
		st, body, _ := postRun(t, ts.URL, tc.body)
		if st != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, st, tc.status, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == nil {
			t.Errorf("%s: not a typed error body: %s", tc.name, body)
			continue
		}
		if eb.Error.Kind != tc.kind {
			t.Errorf("%s: kind %q, want %q", tc.name, eb.Error.Kind, tc.kind)
		}
	}
}

func TestGuardrailErrorsAreTyped(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxEvents: 100})
	cases := []struct {
		scenario string
		status   int
		kind     string
	}{
		{"t-panic", http.StatusInternalServerError, KindPanic},
		{"t-budget", http.StatusUnprocessableEntity, KindBudgetExceeded},
		{"t-stall", http.StatusInternalServerError, KindStall},
	}
	for _, tc := range cases {
		st, body, _ := postRun(t, ts.URL, `{"scenario":"`+tc.scenario+`"}`)
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == nil {
			t.Errorf("%s: not a typed error body: %s", tc.scenario, body)
			continue
		}
		if st != tc.status || eb.Error.Kind != tc.kind {
			t.Errorf("%s: got %d/%q, want %d/%q", tc.scenario, st, eb.Error.Kind, tc.status, tc.kind)
		}
	}
}

func TestRunDeadlineAbandonsHungRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	start := time.Now()
	st, body, _ := postRun(t, ts.URL, `{"scenario":"t-hang","timeout_s":0.1}`)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", st, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == nil || eb.Error.Kind != KindTimeout {
		t.Fatalf("want typed timeout error, got: %s", body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the run: took %v", elapsed)
	}
}

func TestScenariosEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	c := &Client{BaseURL: ts.URL}
	infos, err := c.Scenarios(context.Background())
	if err != nil {
		t.Fatalf("Scenarios: %v", err)
	}
	found := false
	for _, in := range infos {
		if in.Name == "t-ok" {
			found = true
			if in.Defaults.Rate != 2 {
				t.Errorf("t-ok defaults not served: %+v", in.Defaults)
			}
		}
	}
	if !found {
		t.Fatalf("t-ok missing from scenario list (%d entries)", len(infos))
	}
}

func TestHealthReadyStatz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %v (status %d)", path, err, resp.StatusCode)
		}
		resp.Body.Close()
	}
	postRun(t, ts.URL, `{"scenario":"t-ok","seed":41}`)
	postRun(t, ts.URL, `{"scenario":"t-ok","seed":41}`)

	c := &Client{BaseURL: ts.URL}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Requests < 2 || st.CacheHits < 1 || st.CacheMisses < 1 || !st.Ready {
		t.Fatalf("unexpected counters: %+v", st)
	}

	// Draining flips /readyz to a typed 503 while /healthz stays 200.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz after drain: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain: status %d, want 503", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after drain: %v (status %d, want 200)", err, resp2.StatusCode)
	}
	resp2.Body.Close()
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatalf("GET /v1/run: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

func TestClientTypedErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	c := &Client{BaseURL: ts.URL}
	_, _, err := c.Run(context.Background(), RunRequest{Scenario: "no-such"})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if ae.Kind != KindUnknownScenario || ae.Status != http.StatusNotFound {
		t.Fatalf("unexpected typed error: %+v", ae)
	}
}
