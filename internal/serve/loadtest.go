package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"simaibench/internal/dist"
	"simaibench/internal/loadgen"
	"simaibench/internal/stats"
)

// The self-benchmark harness: the server eats its own dogfood. The same
// open-loop generator that drives the facility-scale campaign scenarios
// (internal/loadgen) produces the arrival timeline here — a seeded
// Poisson stream over a weighted mix of request templates — replayed in
// real wall-clock time against a running server through the typed
// Client. Open loop is the point: arrivals do not wait for responses,
// so when the server saturates the harness keeps offering load and the
// shed rate, not a slowed request stream, absorbs the overload.

// LoadMix is one request species of a load test: a relative weight and
// the request template its arrivals replay.
type LoadMix struct {
	// Name labels the species in reports.
	Name string
	// Weight is the species' relative share of arrivals (> 0).
	Weight float64
	// Request is the template each arrival of this species submits.
	Request RunRequest
	// VarySeed, when true, gives the i-th arrival of the whole test
	// Request.Seed + i — every request a distinct cache cell, the
	// cache-cold traffic shape. False replays the template verbatim,
	// the cache-hot shape.
	VarySeed bool
}

// LoadConfig describes one load test: how many requests, at what rate,
// over what mix.
type LoadConfig struct {
	// Seed roots the arrival process; equal seeds offer identical
	// timelines.
	Seed int64
	// Requests is the number of arrivals to offer.
	Requests int
	// RatePerS is the mean arrival rate in requests per wall-clock
	// second.
	RatePerS float64
	// Mix is the weighted request mix (at least one entry).
	Mix []LoadMix
	// Timeout bounds each request on the client side (0 = none beyond
	// ctx).
	Timeout time.Duration
}

// LoadReport is the outcome of one load test: the service-level
// observables of the serving layer.
type LoadReport struct {
	// Sent is the number of requests offered.
	Sent int `json:"sent"`
	// OK counts 200 responses.
	OK int `json:"ok"`
	// CacheHits counts OK responses served from the result cache.
	CacheHits int `json:"cache_hits"`
	// Shed counts 429 (overloaded) rejections.
	Shed int `json:"shed"`
	// Failed counts every other failure (typed errors and transport).
	Failed int `json:"failed"`
	// ErrorKinds tallies failures by machine-readable kind.
	ErrorKinds map[string]int `json:"error_kinds,omitempty"`
	// DurationS is the wall-clock span from first send to last response.
	DurationS float64 `json:"duration_s"`
	// QPS is completed responses (OK + Shed + Failed) per second.
	QPS float64 `json:"qps"`
	// P50Ms, P99Ms and MaxMs are latency percentiles over OK responses,
	// in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// ShedRate returns the fraction of offered requests shed (0 when none
// were sent).
func (r *LoadReport) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// RunLoad replays cfg against the server behind c: arrivals fire at
// their generated instants (open loop — a response is never waited on
// before the next send), every response is classified, and latencies
// aggregate into exact percentiles. It returns once every in-flight
// request has resolved; ctx cancellation abandons pacing but still
// drains what was sent.
func RunLoad(ctx context.Context, c *Client, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("serve: load test with %d requests", cfg.Requests)
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("serve: load test with empty mix")
	}
	// Reuse the campaign generator for the arrival timeline and the
	// class-mix draw; the job attribute samplers are unused here, so
	// fixed placeholders keep the config valid.
	gcfg := loadgen.Config{
		Seed:     cfg.Seed,
		RatePerS: cfg.RatePerS,
		Jobs:     cfg.Requests,
	}
	for _, m := range cfg.Mix {
		gcfg.Classes = append(gcfg.Classes, loadgen.Class{
			Name: m.Name, Weight: m.Weight,
			Nodes: dist.Fixed(1), ServiceS: dist.Fixed(1), SlackS: dist.Fixed(1),
		})
	}
	jobs, err := loadgen.Generate(gcfg)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]LoadMix, len(cfg.Mix))
	for _, m := range cfg.Mix {
		byName[m.Name] = m
	}

	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		lat    stats.Digest
		report = &LoadReport{ErrorKinds: make(map[string]int)}
	)
	start := time.Now()
	for i, job := range jobs {
		// Pace to the generated timeline: ArriveS is relative to test
		// start. Cancellation stops offering but drains what was sent.
		if d := time.Duration(job.ArriveS*float64(time.Second)) - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		mix := byName[job.Class]
		req := mix.Request
		if mix.VarySeed {
			req.Seed += int64(i)
		}
		report.Sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx := ctx
			if cfg.Timeout > 0 {
				var cancel context.CancelFunc
				rctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
				defer cancel()
			}
			t0 := time.Now()
			_, cached, err := c.Run(rctx, req)
			elapsed := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				report.OK++
				if cached {
					report.CacheHits++
				}
				lat.Add(elapsed.Seconds() * 1e3)
				return
			}
			var ae *APIError
			if errors.As(err, &ae) {
				report.ErrorKinds[ae.Kind]++
				if ae.Kind == KindOverloaded {
					report.Shed++
					return
				}
			} else {
				report.ErrorKinds["transport"]++
			}
			report.Failed++
		}()
	}
	wg.Wait()
	report.DurationS = time.Since(start).Seconds()
	if done := report.OK + report.Shed + report.Failed; done > 0 && report.DurationS > 0 {
		report.QPS = float64(done) / report.DurationS
	}
	if lat.N() > 0 {
		report.P50Ms, report.P99Ms, report.MaxMs = lat.P50(), lat.P99(), lat.Max()
	}
	return report, nil
}
