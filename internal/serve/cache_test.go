package serve

import (
	"fmt"
	"testing"
)

// The result cache's bound is a robustness property: a serving process
// fed an endless stream of distinct cells must stay at its configured
// size, evicting least-recently-used entries rather than growing.

func TestCacheLRUBasics(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if got, ok := c.Get("a"); !ok || string(got) != "A" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	// a was just used, so inserting c evicts b.
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatalf("b survived eviction; LRU order not honoured")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatalf("a (recently used) was evicted")
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Fatalf("len %d evictions %d, want 2 and 1", c.Len(), c.Evictions())
	}
	// Re-putting an existing key refreshes without growing.
	c.Put("a", []byte("A2"))
	if got, _ := c.Get("a"); string(got) != "A2" {
		t.Fatalf("re-put did not refresh body: %q", got)
	}
	if c.Len() != 2 {
		t.Fatalf("re-put grew the cache to %d", c.Len())
	}
}

func TestCacheChurnStaysBounded(t *testing.T) {
	const capacity, churn = 64, 10_000
	c := newResultCache(capacity)
	for i := 0; i < churn; i++ {
		c.Put(fmt.Sprintf("key-%d", i), []byte{byte(i)})
		if n := c.Len(); n > capacity {
			t.Fatalf("after %d puts the cache holds %d entries (bound %d)", i+1, n, capacity)
		}
	}
	if c.Len() != capacity {
		t.Fatalf("steady-state len %d, want %d", c.Len(), capacity)
	}
	if want := int64(churn - capacity); c.Evictions() != want {
		t.Fatalf("evictions %d, want %d", c.Evictions(), want)
	}
	// The survivors are exactly the most recent `capacity` keys.
	for i := churn - capacity; i < churn; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%d", i)); !ok {
			t.Fatalf("recent key-%d missing after churn", i)
		}
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Fatalf("disabled cache served a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.Len())
	}
}
