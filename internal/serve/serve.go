// Package serve is the simulation-as-a-service layer: a long-running,
// fault-tolerant HTTP/JSON server over the scenario registry — the
// serving path the ROADMAP's "millions of users" story needs, assembled
// from pieces this repo already hardened. Robustness is the
// architecture, layered end to end:
//
//   - A content-addressed result cache (bounded LRU) keyed by the
//     canonical hash of (scenario, params, seed) — correct by
//     construction because virtual-clock runs are bit-deterministic —
//     with a singleflight layer that dedupes identical in-flight
//     requests, so a stampede of equal cells costs one simulation.
//   - Admission control and graceful degradation: a bounded worker pool
//     running every simulation through the hardened sweep runner (panic
//     isolation, per-run deadlines, seeded-backoff retry of retryable
//     errors), and a bounded admission queue that sheds load with
//     429 + Retry-After instead of queueing unboundedly. Per-request
//     deadlines propagate from the request into the run context,
//     scenario.Params.TimeoutS and the DES event guard.
//   - Structured failure: every error the guardrails produce —
//     des.BudgetExceeded, clock.StallError, sweep panics and timeouts —
//     maps to a typed JSON error body with a machine-readable kind. No
//     request can take the process down.
//   - Lifecycle robustness: graceful shutdown flips /readyz unready
//     first, stops admitting, drains in-flight runs up to a drain
//     deadline and flushes every completed result to its waiting
//     callers before exiting.
//
// Wire it into a process with ListenAndServe under a signal-cancelled
// context (what `simaibench serve` does), or mount Handler in a larger
// mux.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simaibench/internal/clock"
	"simaibench/internal/scenario"
	"simaibench/internal/sweep"
)

// Config are the server's robustness knobs. The zero value serves on
// :8080 with sensible bounds; every field has a flag on
// `simaibench serve`.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// Workers bounds the number of simulations running concurrently
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue: runs admitted but not yet
	// started (default 64). A full queue sheds with 429 + Retry-After.
	QueueDepth int
	// CacheSize bounds the result cache in entries (default 1024;
	// negative disables caching).
	CacheSize int
	// DrainTimeout bounds graceful shutdown: in-flight runs get this
	// long to complete and flush before being abandoned (default 30s).
	DrainTimeout time.Duration
	// RunTimeout is the default per-run wall-clock deadline applied when
	// a request carries none (default 120s). A wedged run is abandoned
	// with a typed timeout error instead of occupying a worker forever.
	RunTimeout time.Duration
	// MaxEvents is the default DES event budget per sweep cell applied
	// when a request carries none (0 = unlimited): the backstop that
	// turns a runaway simulation into a structured budget_exceeded.
	MaxEvents int64
	// Retries grants each run extra attempts when it fails with a
	// sweep.Retryable error (0 = fail on first error).
	Retries int
	// Seed roots the retry backoff jitter (reproducible per config).
	Seed int64
}

// withDefaults fills unset fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 120 * time.Second
	}
	return c
}

// Stats is the /statz snapshot: the serving counters that make
// degradation observable (and testable) instead of anecdotal.
type Stats struct {
	// Requests counts /v1/run requests received.
	Requests int64 `json:"requests"`
	// CacheHits counts requests served straight from the result cache.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts requests that started a new underlying run.
	CacheMisses int64 `json:"cache_misses"`
	// DedupJoins counts requests that joined an identical in-flight run
	// instead of starting their own.
	DedupJoins int64 `json:"dedup_joins"`
	// RunsCompleted counts underlying runs that finished successfully.
	RunsCompleted int64 `json:"runs_completed"`
	// RunsFailed counts underlying runs that ended in a typed error.
	RunsFailed int64 `json:"runs_failed"`
	// Shed counts requests rejected with 429 because the admission
	// queue was full.
	Shed int64 `json:"shed"`
	// Evictions counts result-cache entries dropped at capacity.
	Evictions int64 `json:"evictions"`
	// CacheLen is the current result-cache entry count.
	CacheLen int `json:"cache_len"`
	// InFlight is the number of distinct keys currently being computed.
	InFlight int `json:"in_flight"`
	// QueueLen is the current admission-queue depth.
	QueueLen int `json:"queue_len"`
	// Ready reports whether the server is admitting work (false once
	// draining).
	Ready bool `json:"ready"`
}

// task is one admitted unit of work: the leader's run closure plus the
// flight every waiter is parked on.
type task struct {
	key string
	f   *flight
	run func(ctx context.Context) ([]byte, error)
}

// Server is the simulation service. Create with New, mount Handler or
// run ListenAndServe; every method is safe for concurrent use.
type Server struct {
	cfg     Config
	cache   *resultCache
	flights flightGroup
	queue   chan *task

	// runCtx parents every underlying run: cancelled only when the
	// drain deadline forces abandonment — never by an individual caller.
	runCtx    context.Context
	runCancel context.CancelFunc

	notReady atomic.Bool // /readyz flips first
	draining atomic.Bool // then admission closes
	pending  atomic.Int64
	aborted  chan struct{} // closed when the drain deadline abandons runs
	abortOne sync.Once
	stopped  chan struct{} // closed when workers should exit
	stopOne  sync.Once

	listening chan struct{}
	addr      atomic.Value // string

	nRequests, nHits, nMisses, nDedup atomic.Int64
	nDone, nFailed, nShed             atomic.Int64

	httpSrv *http.Server
}

// New builds a Server and starts its worker pool. Callers that never
// ListenAndServe (tests mounting Handler directly) must call Shutdown
// to release the workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     newResultCache(cfg.CacheSize),
		queue:     make(chan *task, cfg.QueueDepth),
		aborted:   make(chan struct{}),
		stopped:   make(chan struct{}),
		listening: make(chan struct{}),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// worker executes admitted tasks one at a time until the server stops.
func (s *Server) worker() {
	for {
		select {
		case t := <-s.queue:
			body, err := t.run(s.runCtx)
			s.flights.complete(t.key, t.f, body, err)
			s.pending.Add(-1)
		case <-s.stopped:
			return
		}
	}
}

// Handler returns the server's HTTP API:
//
//	POST /v1/run       run (or serve from cache) one scenario
//	GET  /v1/scenarios list the registered scenarios with defaults
//	GET  /healthz      liveness (200 while the process runs)
//	GET  /readyz       readiness (503 once draining)
//	GET  /statz        serving counters as JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.notReady.Load() {
			writeError(w, &APIError{Status: http.StatusServiceUnavailable,
				Kind: KindShuttingDown, Message: "draining", RetryAfterS: 1})
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats())
	})
	return mux
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:      s.nRequests.Load(),
		CacheHits:     s.nHits.Load(),
		CacheMisses:   s.nMisses.Load(),
		DedupJoins:    s.nDedup.Load(),
		RunsCompleted: s.nDone.Load(),
		RunsFailed:    s.nFailed.Load(),
		Shed:          s.nShed.Load(),
		Evictions:     s.cache.Evictions(),
		CacheLen:      s.cache.Len(),
		InFlight:      s.flights.inFlight(),
		QueueLen:      len(s.queue),
		Ready:         !s.notReady.Load(),
	}
}

// handleScenarios lists the registry: every scenario with its paper
// defaults, so clients can discover valid ids and parameter baselines.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &APIError{Status: http.StatusMethodNotAllowed,
			Kind: KindMethodNotAllowed, Message: "use GET"})
		return
	}
	infos := make([]ScenarioInfo, 0)
	for _, sc := range scenario.All() {
		infos = append(infos, ScenarioInfo{
			Name: sc.Name(), Description: sc.Description(), Defaults: sc.Defaults(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(scenarioList{Scenarios: infos})
}

// handleRun is the core endpoint: cache → singleflight → admission →
// hardened run, every failure a typed JSON body.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.nRequests.Add(1)
	if r.Method != http.MethodPost {
		writeError(w, &APIError{Status: http.StatusMethodNotAllowed,
			Kind: KindMethodNotAllowed, Message: "use POST"})
		return
	}
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest,
			Message: "request body: " + err.Error()})
		return
	}
	if req.Scenario == "" {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest,
			Message: "request body: missing scenario id"})
		return
	}
	if s.draining.Load() {
		writeError(w, shuttingDownError())
		return
	}
	sc, ok := scenario.Lookup(req.Scenario)
	if !ok {
		writeError(w, &APIError{Status: http.StatusNotFound, Kind: KindUnknownScenario,
			Message: fmt.Sprintf("unknown scenario %q (valid ids: %s)",
				req.Scenario, strings.Join(scenario.Names(), ", "))})
		return
	}
	if _, err := clock.FromKind(req.Params.Clock); err != nil {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest, Message: err.Error()})
		return
	}
	if req.TimeoutS < 0 || req.Params.TimeoutS < 0 {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest,
			Message: "negative timeout"})
		return
	}

	// Deadline and budget propagation: the request deadline bounds the
	// whole run (hardened-runner timeout) and flows into
	// Params.TimeoutS, where the scenario's guarded sweeps apply it per
	// cell; the server's default event budget flows into
	// Params.MaxEvents, where the simulated harnesses arm des.Guard.
	// All of it happens BEFORE keying, so equal effective requests get
	// equal cache keys.
	p := req.Params
	timeout := time.Duration(req.TimeoutS * float64(time.Second))
	if timeout <= 0 {
		timeout = s.cfg.RunTimeout
	}
	if p.TimeoutS == 0 {
		p.TimeoutS = timeout.Seconds()
	}
	if p.MaxEvents == 0 {
		p.MaxEvents = s.cfg.MaxEvents
	}
	key, err := scenario.CacheKey(req.Scenario, p, sc.Defaults(), req.Seed)
	if err != nil {
		writeError(w, &APIError{Status: http.StatusBadRequest, Kind: KindBadRequest,
			Message: "params not canonicalizable: " + err.Error()})
		return
	}

	// Wall-clock runs are genuine time-compressed emulation — not
	// bit-deterministic — so they bypass the result cache; the
	// memoization contract only holds on the virtual clock.
	effClock := p.Clock
	if effClock == "" {
		effClock = sc.Defaults().Clock
	}
	cacheable := clock.IsVirtual(effClock)

	if cacheable {
		if body, ok := s.cache.Get(key); ok {
			s.nHits.Add(1)
			writeRunBody(w, body, "hit")
			return
		}
	}

	f, joined := s.flights.join(key)
	if joined {
		s.nDedup.Add(1)
	} else {
		// Leader: admit the new run or shed. Admission is bounded by the
		// queue; shedding completes the flight with the typed overload
		// error so every waiter (including callers that joined in the
		// meantime) gets the same 429.
		s.nMisses.Add(1)
		t := &task{key: key, f: f, run: s.runner(sc, req.Scenario, key, p, timeout, cacheable)}
		s.pending.Add(1)
		if s.draining.Load() {
			s.pending.Add(-1)
			s.flights.complete(key, f, nil, shuttingDownError())
		} else {
			select {
			case s.queue <- t:
			default:
				s.pending.Add(-1)
				s.nShed.Add(1)
				s.flights.complete(key, f, nil, &APIError{
					Status: http.StatusTooManyRequests, Kind: KindOverloaded,
					Message: fmt.Sprintf("admission queue full (%d queued, %d workers); retry later",
						s.cfg.QueueDepth, s.cfg.Workers),
					RetryAfterS: 1,
				})
			}
		}
	}

	tag := "miss"
	if joined {
		tag = "dedup"
	}
	select {
	case <-f.done:
		if f.err != nil {
			writeError(w, classifyRunError(f.err))
			return
		}
		writeRunBody(w, f.body, tag)
	case <-r.Context().Done():
		// The caller went away; the shared run continues for the other
		// joiners and the cache. Nothing useful can be written.
	case <-s.aborted:
		// A completed flight beats the abandonment notice: results that
		// finished during the drain are never lost to this race.
		select {
		case <-f.done:
			if f.err != nil {
				writeError(w, classifyRunError(f.err))
				return
			}
			writeRunBody(w, f.body, tag)
		default:
			writeError(w, shuttingDownError())
		}
	}
}

// shuttingDownError is the typed 503 the drain path serves.
func shuttingDownError() *APIError {
	return &APIError{Status: http.StatusServiceUnavailable, Kind: KindShuttingDown,
		Message: "server is draining; not admitting new runs", RetryAfterS: 1}
}

// writeRunBody serves a successful run body with its cache disposition
// in X-Cache (hit | miss | dedup) — a header, not a body field, so hot
// and cold responses for the same key stay byte-identical.
func writeRunBody(w http.ResponseWriter, body []byte, cacheTag string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheTag)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// runner builds the leader's run closure: the scenario executed as one
// cell of the hardened sweep runner, so the serving path inherits panic
// isolation, the per-run deadline and seeded-backoff retry of
// sweep.Retryable errors for free.
func (s *Server) runner(sc scenario.Scenario, name, key string, p scenario.Params,
	timeout time.Duration, cacheable bool) func(ctx context.Context) ([]byte, error) {
	return func(ctx context.Context) ([]byte, error) {
		opts := sweep.Options{Timeout: timeout, Retries: s.cfg.Retries, Seed: s.cfg.Seed}
		rep := sweep.Run(ctx, 1, opts, func(ctx context.Context, _ int) (*scenario.Result, error) {
			return sc.Run(ctx, p)
		})
		if err := rep.Err(); err != nil {
			s.nFailed.Add(1)
			return nil, err
		}
		body, err := encodeRunResponse(name, key, rep.Values[0])
		if err != nil {
			s.nFailed.Add(1)
			return nil, err
		}
		if cacheable {
			s.cache.Put(key, body)
		}
		s.nDone.Add(1)
		return body, nil
	}
}

// encodeRunResponse renders the response body stored in the cache and
// served to every caller of the key. Per-cell guardrail failures inside
// a partially completed sweep are annotated with machine-readable kinds.
func encodeRunResponse(name, key string, res *scenario.Result) ([]byte, error) {
	resp := RunResponse{Key: key, Scenario: name, Result: res}
	for _, f := range res.Failures {
		resp.FailureKinds = append(resp.FailureKinds, classifyFailureText(f.Error))
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("encoding result: %w", err)
	}
	return append(body, '\n'), nil
}

// Shutdown drains the server: admission closes, queued and in-flight
// runs get until ctx's deadline to complete and flush to their waiting
// callers, then remaining runs are abandoned (their callers receive the
// typed shutting_down error). It returns nil on a clean drain and ctx's
// error when the deadline forced abandonment. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.notReady.Store(true) // /readyz flips unready first
	s.draining.Store(true) // then admission closes
	var err error
drain:
	for s.pending.Load() > 0 {
		select {
		case <-ctx.Done():
			err = ctx.Err()
			s.runCancel() // abort in-flight runs
			s.abortOne.Do(func() { close(s.aborted) })
			break drain
		case <-time.After(2 * time.Millisecond):
		}
	}
	s.stopOne.Do(func() { close(s.stopped) })
	return err
}

// Addr returns the bound listen address once Ready is closed (useful
// with ":0").
func (s *Server) Addr() string {
	if v := s.addr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Ready is closed once the listener is bound and serving.
func (s *Server) Ready() <-chan struct{} { return s.listening }

// ErrDrainTimeout reports that graceful shutdown hit its drain deadline
// and abandoned still-running work; completed results were flushed.
var ErrDrainTimeout = errors.New("serve: drain deadline exceeded; abandoned in-flight runs")

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled (the
// SIGTERM path), then shuts down gracefully: /readyz flips unready,
// admission closes (new runs get typed 503s), in-flight runs drain up
// to Config.DrainTimeout with every completed result flushed to its
// waiting callers, and the HTTP server closes. Returns nil after a
// clean drain, ErrDrainTimeout when the deadline forced abandonment, or
// the listener's error.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		s.stopOne.Do(func() { close(s.stopped) })
		return err
	}
	s.addr.Store(ln.Addr().String())
	s.httpSrv = &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- s.httpSrv.Serve(ln) }()
	close(s.listening)

	select {
	case err := <-errc:
		s.stopOne.Do(func() { close(s.stopped) })
		return err
	case <-ctx.Done():
	}

	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	drainErr := s.Shutdown(dctx)
	// The listener keeps accepting during the drain so late requests get
	// typed 503s and waiting callers get their flushed results; it
	// closes only once the drain has settled. The HTTP shutdown gets its
	// own brief grace window (not the possibly-expired drain context) so
	// handlers just released by the abort still flush their bodies.
	hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer hcancel()
	if herr := s.httpSrv.Shutdown(hctx); herr != nil {
		s.httpSrv.Close()
	}
	<-errc // Serve has returned (ErrServerClosed)
	if drainErr != nil {
		return fmt.Errorf("%w (%v)", ErrDrainTimeout, drainErr)
	}
	return nil
}
