package serve

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// The singleflight contracts, exercised under -race in CI: a stampede of
// identical requests costs exactly one simulation and every caller gets
// the same bytes; and one caller abandoning its request mid-flight does
// not cancel the shared run the other joiners are waiting on.

func TestSingleflightStampede(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 64})
	const callers = 16
	req := `{"scenario":"t-count","params":{"rate":3},"seed":100}`

	before := tCountRuns.Load()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(req))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, buf.Bytes())
				return
			}
			mu.Lock()
			bodies = append(bodies, buf.Bytes())
			mu.Unlock()
		}()
	}
	wg.Wait()

	if got := tCountRuns.Load() - before; got != 1 {
		t.Fatalf("%d concurrent identical requests ran the simulation %d times, want exactly 1", callers, got)
	}
	if len(bodies) != callers {
		t.Fatalf("only %d/%d callers got a 200", len(bodies), callers)
	}
	for i, b := range bodies[1:] {
		if !bytes.Equal(bodies[0], b) {
			t.Fatalf("caller %d body differs from caller 0:\n%s\nvs\n%s", i+1, b, bodies[0])
		}
	}
	if st := s.Stats(); st.DedupJoins == 0 && st.CacheHits == 0 {
		t.Fatalf("no request joined the flight or hit the cache: %+v", st)
	}
}

func TestCallerCancelDoesNotCancelSharedRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 64})
	// t-slow runs ~300ms; impatient's 50ms client deadline expires
	// mid-flight while patient waits the run out.
	req := `{"scenario":"t-slow","params":{"timeline_window_s":0.3},"seed":200}`

	patientDone := make(chan error, 1)
	var patientBody []byte
	go func() {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(req))
		if err != nil {
			patientDone <- err
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		patientBody = buf.Bytes()
		if resp.StatusCode != http.StatusOK {
			patientDone <- &APIError{Status: resp.StatusCode, Kind: "http", Message: buf.String()}
			return
		}
		patientDone <- nil
	}()
	<-tSlowStarted // the run is in flight

	// The impatient caller joins the same flight, then gives up.
	ictx, icancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer icancel()
	c := &Client{BaseURL: ts.URL}
	if _, _, err := c.Run(ictx, RunRequest{Scenario: "t-slow",
		Params: paramsFromJSON(t, `{"timeline_window_s":0.3}`), Seed: 200}); err == nil {
		t.Fatalf("impatient caller unexpectedly got a result before its deadline")
	}

	select {
	case err := <-patientDone:
		if err != nil {
			t.Fatalf("patient caller failed after impatient cancel: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("patient caller never completed")
	}
	if len(patientBody) == 0 {
		t.Fatalf("patient caller got an empty body")
	}
	if st := s.Stats(); st.RunsFailed != 0 {
		t.Fatalf("the shared run failed (runs_failed = %d): caller cancel leaked into it", st.RunsFailed)
	}
	// The completed run populated the cache despite the cancelled joiner.
	st, _, tag := postRun(t, ts.URL, req)
	if st != http.StatusOK || tag != "hit" {
		t.Fatalf("replay after cancel: status %d X-Cache %q, want 200 hit", st, tag)
	}
}
