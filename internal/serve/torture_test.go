package serve

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"simaibench/internal/scenario"
)

// The torture suite: hostile traffic — panics, budget trips, stalls,
// hangs — mixed with healthy requests at rates past capacity. The
// contract is graceful degradation: zero process crashes, every response
// a typed body or a 200, overload absorbed by shedding rather than
// unbounded queueing.

func TestTortureMixedHostileTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 2, QueueDepth: 4, CacheSize: 32,
		RunTimeout: 500 * time.Millisecond, MaxEvents: 1000,
	})
	c := &Client{BaseURL: ts.URL}

	mix := []LoadMix{
		{Name: "healthy-hot", Weight: 4, Request: RunRequest{Scenario: "t-ok", Seed: 1}},
		{Name: "healthy-cold", Weight: 2, Request: RunRequest{Scenario: "t-ok", Seed: 1000}, VarySeed: true},
		{Name: "panicker", Weight: 1, Request: RunRequest{Scenario: "t-panic", Seed: 2000}, VarySeed: true},
		{Name: "budget-trip", Weight: 1, Request: RunRequest{Scenario: "t-budget", Seed: 3000}, VarySeed: true},
		{Name: "staller", Weight: 1, Request: RunRequest{Scenario: "t-stall", Seed: 4000}, VarySeed: true},
		{Name: "hanger", Weight: 1, Request: RunRequest{Scenario: "t-hang", Seed: 5000, TimeoutS: 0.05}, VarySeed: true},
	}
	report, err := RunLoad(context.Background(), c, LoadConfig{
		Seed: 9, Requests: 120, RatePerS: 400, Mix: mix, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}

	// The process survived (we're still here) and every offered request
	// resolved to a classified outcome — nothing vanished.
	if got := report.OK + report.Shed + report.Failed; got != report.Sent {
		t.Fatalf("%d of %d requests unaccounted for: %+v", report.Sent-got, report.Sent, report)
	}
	if report.OK == 0 {
		t.Fatalf("no healthy request survived the torture mix: %+v", report)
	}
	if report.ErrorKinds["transport"] != 0 {
		t.Fatalf("%d transport-level failures (dropped connections?): %+v",
			report.ErrorKinds["transport"], report)
	}
	// Each saboteur species produced its own typed kind.
	for _, kind := range []string{KindPanic, KindBudgetExceeded, KindStall, KindTimeout} {
		if report.ErrorKinds[kind] == 0 {
			t.Errorf("no %s failures classified; kinds: %v", kind, report.ErrorKinds)
		}
	}

	// The server still answers health checks and fresh work after abuse.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after torture: %v (status %d)", err, resp.StatusCode)
	}
	resp.Body.Close()
	if _, _, err := c.Run(context.Background(), RunRequest{Scenario: "t-ok", Seed: 77}); err != nil {
		t.Fatalf("healthy request after torture: %v", err)
	}
}

func TestOverloadShedsWithRetryAfter(t *testing.T) {
	// One worker, tiny queue, slow runs: offered load far past capacity
	// must shed with typed 429s instead of queueing unboundedly.
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	c := &Client{BaseURL: ts.URL}

	mix := []LoadMix{{
		Name: "slow-cold", Weight: 1, VarySeed: true,
		Request: RunRequest{
			Scenario: "t-slow", Seed: 6000,
			Params: scenario.Params{TimelineWindowS: 0.1},
		},
	}}
	report, err := RunLoad(context.Background(), c, LoadConfig{
		Seed: 10, Requests: 40, RatePerS: 200, Mix: mix, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if report.Shed == 0 {
		t.Fatalf("overload produced no shedding: %+v", report)
	}
	if report.OK == 0 {
		t.Fatalf("overload starved every request: %+v", report)
	}
	if report.ErrorKinds["transport"] != 0 || report.Failed != 0 {
		t.Fatalf("overload produced non-shed failures: %+v", report)
	}
	if st := s.Stats(); st.Shed == 0 {
		t.Fatalf("/statz did not count shedding: %+v", st)
	}

	// The typed 429 carries a Retry-After hint: occupy the worker and
	// fill the queue with distinct hanging runs (fired asynchronously),
	// then probe until one request sheds.
	for i := 0; i < 3; i++ {
		seed := 7000 + i
		go func() {
			c.Run(context.Background(), RunRequest{Scenario: "t-hang", Seed: int64(seed), TimeoutS: 1})
		}()
	}
	time.Sleep(100 * time.Millisecond) // let the hangs fill worker + queue
	probe := &http.Client{Timeout: 250 * time.Millisecond}
	deadline := time.Now().Add(3 * time.Second)
	sawRetryAfter := false
	for i := 0; time.Now().Before(deadline) && !sawRetryAfter; i++ {
		resp, err := probe.Post(ts.URL+"/v1/run", "application/json",
			strings.NewReader(`{"scenario":"t-hang","timeout_s":1,"seed":`+strconv.Itoa(8000+i)+`}`))
		if err != nil {
			continue // probe was admitted and outlived its client timeout
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without Retry-After header")
			}
			sawRetryAfter = true
		}
		resp.Body.Close()
	}
	if !sawRetryAfter {
		t.Fatalf("saturated server never shed with 429")
	}
}

func TestLoadReportLatencies(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	c := &Client{BaseURL: ts.URL}
	report, err := RunLoad(context.Background(), c, LoadConfig{
		Seed: 11, Requests: 30, RatePerS: 300,
		Mix:     []LoadMix{{Name: "hot", Weight: 1, Request: RunRequest{Scenario: "t-ok", Seed: 900}}},
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if report.OK != 30 {
		t.Fatalf("hot replay failed: %+v", report)
	}
	if report.CacheHits == 0 {
		t.Fatalf("hot replay produced no cache hits: %+v", report)
	}
	if !(report.P50Ms > 0) || !(report.P99Ms >= report.P50Ms) || !(report.MaxMs >= report.P99Ms) {
		t.Fatalf("latency percentiles not ordered: p50 %v p99 %v max %v",
			report.P50Ms, report.P99Ms, report.MaxMs)
	}
	if !(report.QPS > 0) || !(report.DurationS > 0) {
		t.Fatalf("throughput not recorded: %+v", report)
	}
	if report.ShedRate() != 0 {
		t.Fatalf("unexpected shedding on an underloaded server: %+v", report)
	}
}
