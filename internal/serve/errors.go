package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"simaibench/internal/clock"
	"simaibench/internal/des"
	"simaibench/internal/sweep"
)

// Every failure the server can produce is a typed JSON body with a
// machine-readable kind, so a load balancer, a retrying client and a
// human reading logs all classify the same way. The kinds form the
// server's error vocabulary; the structured errors the run guardrails
// produce (des.BudgetExceeded, clock.StallError, sweep.CellError) map
// onto it by errors.As/Is, never by string matching.

// The machine-readable error kinds of the serving API.
const (
	// KindBadRequest: the request body failed to parse or validate.
	KindBadRequest = "bad_request"
	// KindUnknownScenario: the requested scenario id is not registered.
	KindUnknownScenario = "unknown_scenario"
	// KindMethodNotAllowed: wrong HTTP method for the endpoint.
	KindMethodNotAllowed = "method_not_allowed"
	// KindOverloaded: the admission queue is full — shed with 429 and a
	// Retry-After hint rather than queueing unboundedly.
	KindOverloaded = "overloaded"
	// KindShuttingDown: the server is draining and admits no new runs.
	KindShuttingDown = "shutting_down"
	// KindBudgetExceeded: the run tripped its DES event/horizon budget
	// (des.BudgetExceeded).
	KindBudgetExceeded = "budget_exceeded"
	// KindStall: the run's virtual clock wedged (clock.StallError).
	KindStall = "stall"
	// KindPanic: the scenario panicked; the panic was isolated by the
	// hardened runner and the process survived (sweep.PanicError).
	KindPanic = "panic"
	// KindTimeout: the run was abandoned at its deadline
	// (sweep.ErrCellTimeout or a context deadline).
	KindTimeout = "timeout"
	// KindCanceled: the run was cancelled by server shutdown.
	KindCanceled = "canceled"
	// KindInternal: any other run failure.
	KindInternal = "internal"
)

// APIError is the structured error of one request: the HTTP status it
// was (or should be) served with, a machine-readable kind, and a
// human-readable message. RetryAfterS > 0 advises when to retry
// (overload shedding and shutdown both set it).
type APIError struct {
	// Status is the HTTP status code.
	Status int `json:"status"`
	// Kind is the machine-readable failure class (Kind* constants).
	Kind string `json:"kind"`
	// Message is the human-readable diagnosis.
	Message string `json:"message"`
	// RetryAfterS advises the client when a retry may succeed (seconds,
	// 0 = no advice).
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// Error renders the kind and message.
func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Kind, e.Message) }

// errorBody is the JSON envelope every error response uses.
type errorBody struct {
	Error *APIError `json:"error"`
}

// writeError serializes e as the typed JSON error body, setting the
// Retry-After header when e advises one.
func writeError(w http.ResponseWriter, e *APIError) {
	w.Header().Set("Content-Type", "application/json")
	if e.RetryAfterS > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(e.RetryAfterS+0.999)))
	}
	w.WriteHeader(e.Status)
	body, err := json.Marshal(errorBody{Error: e})
	if err != nil { // cannot happen for APIError; keep the contract anyway
		body = []byte(`{"error":{"status":500,"kind":"internal","message":"error encoding failed"}}`)
	}
	w.Write(append(body, '\n'))
}

// classifyRunError maps a run failure onto the typed error vocabulary.
// The hardened runner wraps scenario failures in *sweep.CellError, so
// classification unwraps with errors.As/Is through the whole chain:
// budget trips, stalls, panics and timeouts each keep their structured
// diagnosis in the message.
func classifyRunError(err error) *APIError {
	var be *des.BudgetExceeded
	if errors.As(err, &be) {
		return &APIError{Status: http.StatusUnprocessableEntity, Kind: KindBudgetExceeded, Message: be.Error()}
	}
	if errors.Is(err, clock.ErrStalled) {
		return &APIError{Status: http.StatusInternalServerError, Kind: KindStall, Message: err.Error()}
	}
	var pe *sweep.PanicError
	if errors.As(err, &pe) {
		return &APIError{Status: http.StatusInternalServerError, Kind: KindPanic, Message: err.Error()}
	}
	if errors.Is(err, sweep.ErrCellTimeout) || errors.Is(err, context.DeadlineExceeded) {
		return &APIError{Status: http.StatusGatewayTimeout, Kind: KindTimeout, Message: err.Error()}
	}
	if errors.Is(err, context.Canceled) {
		return &APIError{Status: http.StatusServiceUnavailable, Kind: KindCanceled,
			Message: "run cancelled by server shutdown: " + err.Error(), RetryAfterS: 1}
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	return &APIError{Status: http.StatusInternalServerError, Kind: KindInternal, Message: err.Error()}
}

// classifyFailureText maps one scenario.CellFailure's rendered error
// text onto an error kind. Per-cell failures of a partially completed
// sweep arrive as strings (the scenario layer renders them for its
// reports), so this is a prefix vocabulary over the structured errors'
// stable Error() forms — used only to annotate per-cell failure records
// inside 200 responses, never to classify whole-request errors.
func classifyFailureText(text string) string {
	switch {
	case strings.Contains(text, "event budget exceeded"), strings.Contains(text, "horizon exceeded"):
		return KindBudgetExceeded
	case strings.Contains(text, "stalled"):
		return KindStall
	case strings.Contains(text, "panic:"):
		return KindPanic
	case strings.Contains(text, "deadline exceeded"):
		return KindTimeout
	default:
		return KindInternal
	}
}
