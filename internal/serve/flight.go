package serve

import "sync"

// The singleflight layer: at most one underlying simulation per cache
// key is ever in flight. A stampede of identical requests — the shape a
// popular sweep cell produces under real traffic — joins the one
// existing flight and every caller receives the same serialized body
// when it lands, so N concurrent identical requests cost exactly one
// simulation.
//
// Flights are deliberately NOT tied to any caller's context: the run
// executes under the server's lifecycle context, so one impatient
// client cancelling its request cannot cancel the shared run the other
// joiners (and the cache) are waiting on. Even a flight whose every
// caller has gone away completes and populates the cache — the work was
// already admitted and paid for.

// flight is one in-flight computation of a cache key. done is closed
// exactly once, after body/err are set; waiters read them only after
// observing the close.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

// flightGroup deduplicates in-flight computations by key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key, creating it when none exists.
// joined reports whether an existing flight was joined (true) or this
// caller is the leader responsible for admitting and completing the
// new flight (false).
func (g *flightGroup) join(key string) (f *flight, joined bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		return f, true
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, false
}

// complete publishes the flight's outcome, wakes every waiter, and
// removes the key so later requests start fresh (or hit the cache the
// leader populated).
func (g *flightGroup) complete(key string, f *flight, body []byte, err error) {
	f.body, f.err = body, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}

// inFlight returns the number of keys currently being computed.
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
