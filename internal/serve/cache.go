package serve

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: a bounded LRU from
// cache key (scenario.CacheKey) to the fully rendered response body.
// Bodies are stored as serialized bytes, so a cache hit is one map
// lookup plus one write — no re-marshalling — and a hot and a cold
// response for the same key are byte-identical by construction.
//
// The bound matters as much as the mapping: a serving process fed an
// unbounded stream of distinct cells must not grow without limit, so
// insertion beyond capacity evicts the least-recently-used entry.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // key → element whose Value is *cacheEntry
	// evictions counts entries dropped at capacity, surfaced by /statz.
	evictions int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache returns an LRU bounded at capacity entries; capacity
// < 1 disables caching entirely (every Get misses, every Put is
// dropped), which is what a wall-clock-mode deployment would configure.
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached body for key and refreshes its recency.
// The returned slice is shared — callers must not mutate it.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least-recently-used entry
// when the cache is at capacity. Re-putting an existing key refreshes
// its body and recency without growing the cache.
func (c *resultCache) Put(key string, body []byte) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.cap {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Evictions returns the number of entries evicted at capacity.
func (c *resultCache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
