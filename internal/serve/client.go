package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"simaibench/internal/scenario"
)

// The wire vocabulary of the /v1 API plus a minimal typed client — what
// the self-benchmark harness replays traffic with and what library
// users embed instead of hand-rolling HTTP.

// RunRequest is the body of POST /v1/run: which scenario to run, with
// what parameters, under what identity seed and deadline.
type RunRequest struct {
	// Scenario is the registered scenario id (see GET /v1/scenarios).
	Scenario string `json:"scenario"`
	// Params are the scenario parameters; zero fields fall back to the
	// scenario's paper defaults, exactly as the CLI's flags do.
	Params scenario.Params `json:"params,omitempty"`
	// Seed is part of the result's content address: requests with
	// different seeds are distinct cache cells even at equal params.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutS bounds the whole run in wall-clock seconds (0 = the
	// server's default). It propagates into the run context, the
	// hardened runner's deadline and Params.TimeoutS.
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// RunResponse is the success body of POST /v1/run. Equal keys serve
// byte-identical bodies whether computed or cached; the cache
// disposition travels in the X-Cache header (hit | miss | dedup), not
// the body.
type RunResponse struct {
	// Key is the content address of this result: the canonical hash of
	// (scenario, effective params, seed).
	Key string `json:"key"`
	// Scenario echoes the scenario id.
	Scenario string `json:"scenario"`
	// Result is the structured scenario outcome — the same record the
	// CLI's -format json emits.
	Result *scenario.Result `json:"result"`
	// FailureKinds annotates Result.Failures (same order) with
	// machine-readable kinds, so clients classify per-cell guardrail
	// failures without parsing rendered error text.
	FailureKinds []string `json:"failure_kinds,omitempty"`
}

// ScenarioInfo is one entry of GET /v1/scenarios.
type ScenarioInfo struct {
	// Name is the stable scenario id.
	Name string `json:"name"`
	// Description is the one-line summary.
	Description string `json:"description"`
	// Defaults are the paper-default parameters.
	Defaults scenario.Params `json:"defaults"`
}

// scenarioList is the envelope of GET /v1/scenarios.
type scenarioList struct {
	Scenarios []ScenarioInfo `json:"scenarios"`
}

// Client is a typed client for the /v1 API. Errors the server sheds or
// fails with come back as *APIError, so callers switch on Kind instead
// of parsing bodies.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// httpClient returns the configured or default HTTP client.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Run submits one run request. cached reports whether the response was
// served from the result cache ("hit"); typed server errors return as
// *APIError.
func (c *Client) Run(ctx context.Context, req RunRequest) (resp *RunResponse, cached bool, err error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, false, err
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, false, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, false, decodeAPIError(hresp.StatusCode, data)
	}
	var out RunResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, false, fmt.Errorf("serve: decoding run response: %w", err)
	}
	return &out, hresp.Header.Get("X-Cache") == "hit", nil
}

// Scenarios lists the server's registered scenarios.
func (c *Client) Scenarios(ctx context.Context) ([]ScenarioInfo, error) {
	var out scenarioList
	if err := c.getJSON(ctx, "/v1/scenarios", &out); err != nil {
		return nil, err
	}
	return out.Scenarios, nil
}

// Stats fetches the /statz counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var out Stats
	if err := c.getJSON(ctx, "/statz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// getJSON fetches one GET endpoint into out, mapping non-200s to
// *APIError.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		return err
	}
	if hresp.StatusCode != http.StatusOK {
		return decodeAPIError(hresp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}

// decodeAPIError recovers the typed error from an error response,
// falling back to a generic APIError when the body is not the typed
// envelope (e.g. a proxy's HTML error page).
func decodeAPIError(status int, data []byte) error {
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err == nil && eb.Error != nil && eb.Error.Kind != "" {
		return eb.Error
	}
	return &APIError{Status: status, Kind: KindInternal,
		Message: fmt.Sprintf("HTTP %d: %s", status, bytes.TrimSpace(data))}
}
