package dragon

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func newLocalDict(t *testing.T, managers int) (*Dict, []*Manager) {
	t.Helper()
	var eps []Endpoint
	var ms []*Manager
	for i := 0; i < managers; i++ {
		m := NewManager()
		t.Cleanup(m.Close)
		ms = append(ms, m)
		eps = append(eps, Local(m))
	}
	d, err := Attach(eps...)
	if err != nil {
		t.Fatal(err)
	}
	return d, ms
}

func newTCPDict(t *testing.T, managers int) (*Dict, []*Manager) {
	t.Helper()
	var eps []Endpoint
	var ms []*Manager
	for i := 0; i < managers; i++ {
		m := NewManager()
		t.Cleanup(m.Close)
		ms = append(ms, m)
		ln, err := ListenAndServe(m, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		ep, err := DialEndpoint(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps = append(eps, ep)
	}
	d, err := Attach(eps...)
	if err != nil {
		t.Fatal(err)
	}
	return d, ms
}

// runBothTransports runs the same behaviour test over in-proc and TCP
// dictionaries, since both must satisfy the same contract.
func runBothTransports(t *testing.T, managers int, fn func(t *testing.T, d *Dict)) {
	t.Run("local", func(t *testing.T) {
		d, _ := newLocalDict(t, managers)
		fn(t, d)
	})
	t.Run("tcp", func(t *testing.T) {
		d, _ := newTCPDict(t, managers)
		fn(t, d)
	})
}

func TestPutGetRoundTrip(t *testing.T) {
	runBothTransports(t, 3, func(t *testing.T, d *Dict) {
		want := []byte("payload-123")
		if err := d.Put("k", want); err != nil {
			t.Fatal(err)
		}
		got, err := d.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("got %q", got)
		}
	})
}

func TestGetMissing(t *testing.T) {
	runBothTransports(t, 2, func(t *testing.T, d *Dict) {
		_, err := d.Get("missing")
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
	})
}

func TestHasDel(t *testing.T) {
	runBothTransports(t, 2, func(t *testing.T, d *Dict) {
		d.Put("k", []byte("v"))
		ok, err := d.Has("k")
		if err != nil || !ok {
			t.Fatalf("has = %v,%v", ok, err)
		}
		if err := d.Del("k"); err != nil {
			t.Fatal(err)
		}
		ok, _ = d.Has("k")
		if ok {
			t.Fatal("key survives delete")
		}
		// Deleting a missing key is not an error.
		if err := d.Del("k"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestEmptyValue(t *testing.T) {
	runBothTransports(t, 2, func(t *testing.T, d *Dict) {
		if err := d.Put("empty", nil); err != nil {
			t.Fatal(err)
		}
		got, err := d.Get("empty")
		if err != nil || len(got) != 0 {
			t.Fatalf("empty value: %v,%v", got, err)
		}
	})
}

func TestKeysSortedUnion(t *testing.T) {
	runBothTransports(t, 4, func(t *testing.T, d *Dict) {
		want := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for _, k := range want {
			d.Put(k, []byte(k))
		}
		got, err := d.Keys()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || !sort.StringsAreSorted(got) {
			t.Fatalf("keys = %v", got)
		}
	})
}

func TestLenAndClear(t *testing.T) {
	runBothTransports(t, 3, func(t *testing.T, d *Dict) {
		for i := 0; i < 30; i++ {
			d.Put(fmt.Sprintf("k%d", i), []byte("v"))
		}
		n, err := d.Len()
		if err != nil || n != 30 {
			t.Fatalf("len = %d,%v", n, err)
		}
		if err := d.Clear(); err != nil {
			t.Fatal(err)
		}
		n, _ = d.Len()
		if n != 0 {
			t.Fatalf("len after clear = %d", n)
		}
	})
}

func TestShardingSpreadsKeys(t *testing.T) {
	d, ms := newLocalDict(t, 4)
	for i := 0; i < 400; i++ {
		d.Put(fmt.Sprintf("key-%d", i), []byte("v"))
	}
	for i, m := range ms {
		n, _ := Local(m).Len()
		if n < 40 || n > 400/4*2 {
			t.Fatalf("manager %d has %d keys, far from uniform 100", i, n)
		}
	}
}

func TestRouteStableAcrossClients(t *testing.T) {
	d1, _ := newLocalDict(t, 5)
	d2, _ := newLocalDict(t, 5)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("route-%d", i)
		if d1.Route(k) != d2.Route(k) {
			t.Fatalf("routing disagrees for %q", k)
		}
	}
}

func TestValueIsolation(t *testing.T) {
	// Mutating a buffer after Put or a returned slice after Get must not
	// corrupt the stored value.
	d, _ := newLocalDict(t, 1)
	buf := []byte{1, 2, 3}
	d.Put("iso", buf)
	buf[0] = 99
	got1, _ := d.Get("iso")
	got1[1] = 88
	got2, _ := d.Get("iso")
	if got2[0] != 1 || got2[1] != 2 {
		t.Fatalf("stored value corrupted: %v", got2)
	}
}

func TestLargeValueOverTCP(t *testing.T) {
	d, _ := newTCPDict(t, 2)
	val := bytes.Repeat([]byte{0x5A}, 8<<20)
	if err := d.Put("big", val); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("big")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatal("8MB TCP round trip failed")
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	d, _ := newTCPDict(t, 2)
	key := string([]byte{0, 1, 255, 254, '\r', '\n'})
	val := []byte{0, 255, 10, 13, 0}
	if err := d.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(key)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("binary kv failed: %v %v", got, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	d, _ := newTCPDict(t, 3)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				k := fmt.Sprintf("c%d-%d", i, j)
				if err := d.Put(k, []byte(k)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				got, err := d.Get(k)
				if err != nil || string(got) != k {
					t.Errorf("get %s: %q %v", k, got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	n, _ := d.Len()
	if n != 8*25 {
		t.Fatalf("len = %d, want 200", n)
	}
}

func TestManagerOpsCounter(t *testing.T) {
	m := NewManager()
	defer m.Close()
	ep := Local(m)
	ep.Put("a", []byte("1"))
	ep.Get("a")
	ep.Has("a")
	if ops := m.Ops(); ops != 3 {
		t.Fatalf("ops = %d, want 3", ops)
	}
}

func TestManagerCloseUnblocksClients(t *testing.T) {
	m := NewManager()
	ep := Local(m)
	m.Close()
	if err := ep.Put("k", []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close = %v, want ErrClosed", err)
	}
}

func TestManagerCloseIdempotent(t *testing.T) {
	m := NewManager()
	m.Close()
	m.Close()
}

func TestAttachEmpty(t *testing.T) {
	if _, err := Attach(); err == nil {
		t.Fatal("Attach() with no endpoints succeeded")
	}
}

func TestServerSurvivesClientDisconnect(t *testing.T) {
	m := NewManager()
	defer m.Close()
	ln, err := ListenAndServe(m, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Abruptly drop a half-written request.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{byte(opPut), 0, 0})
	conn.Close()
	// Server must still serve new clients.
	ep, err := DialEndpoint(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Put("k", []byte("v")); err != nil {
		t.Fatalf("server wedged after bad client: %v", err)
	}
}

func TestPropertyRoundTripArbitraryKV(t *testing.T) {
	d, _ := newLocalDict(t, 4)
	f := func(key string, value []byte) bool {
		if err := d.Put(key, value); err != nil {
			return false
		}
		got, err := d.Get(key)
		return err == nil && bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKeyListCodec(t *testing.T) {
	f := func(keys []string) bool {
		got, err := decodeKeys(encodeKeys(keys))
		if err != nil {
			return false
		}
		if len(got) != len(keys) {
			return len(keys) == 0 && len(got) == 0
		}
		for i := range keys {
			if got[i] != keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLocalPutGet1MB(b *testing.B) {
	m := NewManager()
	defer m.Close()
	d, _ := Attach(Local(m))
	val := make([]byte, 1<<20)
	b.SetBytes(2 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Put("bench", val)
		d.Get("bench")
	}
}

func BenchmarkTCPPutGet1MB(b *testing.B) {
	m := NewManager()
	defer m.Close()
	ln, err := ListenAndServe(m, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	ep, err := DialEndpoint(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer ep.Close()
	d, _ := Attach(ep)
	val := make([]byte, 1<<20)
	b.SetBytes(2 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Put("bench", val)
		d.Get("bench")
	}
}
