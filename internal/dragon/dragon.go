// Package dragon implements a DragonHPC-style distributed in-memory
// dictionary: values are sharded by key hash across a set of manager
// processes (one per node in the paper's deployments), and clients attach
// to all managers and route each operation directly to the owning shard.
//
// Two transports are provided, mirroring Dragon's channel abstraction:
// an in-process transport (goroutine + request channel per manager) used
// when client and manager share an address space, and a TCP transport
// with a compact length-prefixed binary protocol for cross-process use.
// The binary protocol deliberately has lower framing overhead than RESP,
// reflecting the paper's observation that Dragon outperforms Redis on
// raw throughput.
package dragon

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("dragon: key not found")

// ErrClosed reports use after Close.
var ErrClosed = errors.New("dragon: closed")

// Manager owns one shard of the dictionary. All operations funnel through
// a single serve goroutine over a request channel — the analogue of a
// Dragon channel endpoint — so shard state needs no locks.
type Manager struct {
	requests chan managerReq
	quit     chan struct{}
	done     chan struct{}
	data     map[string][]byte
	closed   sync.Once

	// ops counts operations served, for stats and tests.
	mu  sync.Mutex
	ops int64
}

type managerOp int

const (
	opPut managerOp = iota
	opGet
	opDel
	opHas
	opKeys
	opClear
	opLen
)

type managerReq struct {
	op    managerOp
	key   string
	value []byte
	reply chan managerResp
}

type managerResp struct {
	value []byte
	keys  []string
	found bool
	n     int
}

// NewManager starts a manager with an empty shard.
func NewManager() *Manager {
	m := &Manager{
		requests: make(chan managerReq, 64),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		data:     make(map[string][]byte),
	}
	go m.serve()
	return m
}

func (m *Manager) serve() {
	defer close(m.done)
	for {
		select {
		case req := <-m.requests:
			m.mu.Lock()
			m.ops++
			m.mu.Unlock()
			req.reply <- m.handle(req)
		case <-m.quit:
			return
		}
	}
}

func (m *Manager) handle(req managerReq) managerResp {
	switch req.op {
	case opPut:
		buf := make([]byte, len(req.value))
		copy(buf, req.value)
		m.data[req.key] = buf
		return managerResp{found: true}
	case opGet:
		v, ok := m.data[req.key]
		if !ok {
			return managerResp{}
		}
		out := make([]byte, len(v))
		copy(out, v)
		return managerResp{value: out, found: true}
	case opDel:
		_, ok := m.data[req.key]
		delete(m.data, req.key)
		return managerResp{found: ok}
	case opHas:
		_, ok := m.data[req.key]
		return managerResp{found: ok}
	case opKeys:
		keys := make([]string, 0, len(m.data))
		for k := range m.data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return managerResp{keys: keys, found: true}
	case opClear:
		m.data = make(map[string][]byte)
		return managerResp{found: true}
	case opLen:
		return managerResp{n: len(m.data), found: true}
	}
	return managerResp{}
}

// call performs one round trip to the serve goroutine.
func (m *Manager) call(req managerReq) (managerResp, error) {
	req.reply = make(chan managerResp, 1)
	select {
	case m.requests <- req:
	case <-m.quit:
		return managerResp{}, ErrClosed
	}
	select {
	case resp := <-req.reply:
		return resp, nil
	case <-m.quit:
		return managerResp{}, ErrClosed
	}
}

// Ops returns the number of operations this manager has served.
func (m *Manager) Ops() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Close stops the serve goroutine. Idempotent.
func (m *Manager) Close() {
	m.closed.Do(func() { close(m.quit) })
	<-m.done
}

// Endpoint is one attachable shard endpoint: either a local manager or a
// TCP connection to a remote one.
type Endpoint interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
	Del(key string) error
	Has(key string) (bool, error)
	Keys() ([]string, error)
	Clear() error
	Len() (int, error)
	Close() error
}

// localEndpoint adapts a Manager to the Endpoint interface in-process.
type localEndpoint struct{ m *Manager }

// Local returns an in-process endpoint for m.
func Local(m *Manager) Endpoint { return localEndpoint{m} }

func (e localEndpoint) Put(key string, value []byte) error {
	_, err := e.m.call(managerReq{op: opPut, key: key, value: value})
	return err
}

func (e localEndpoint) Get(key string) ([]byte, error) {
	resp, err := e.m.call(managerReq{op: opGet, key: key})
	if err != nil {
		return nil, err
	}
	if !resp.found {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return resp.value, nil
}

func (e localEndpoint) Del(key string) error {
	_, err := e.m.call(managerReq{op: opDel, key: key})
	return err
}

func (e localEndpoint) Has(key string) (bool, error) {
	resp, err := e.m.call(managerReq{op: opHas, key: key})
	return resp.found, err
}

func (e localEndpoint) Keys() ([]string, error) {
	resp, err := e.m.call(managerReq{op: opKeys})
	return resp.keys, err
}

func (e localEndpoint) Clear() error {
	_, err := e.m.call(managerReq{op: opClear})
	return err
}

func (e localEndpoint) Len() (int, error) {
	resp, err := e.m.call(managerReq{op: opLen})
	return resp.n, err
}

func (e localEndpoint) Close() error { return nil }

// Dict is the client view of the distributed dictionary: a set of
// endpoints (one per manager) with hash routing.
type Dict struct {
	eps []Endpoint
}

// Attach builds a dictionary over the given endpoints. Endpoint order
// must be identical across all clients for routing to agree.
func Attach(eps ...Endpoint) (*Dict, error) {
	if len(eps) == 0 {
		return nil, errors.New("dragon: attach needs at least one endpoint")
	}
	return &Dict{eps: eps}, nil
}

// Managers returns the number of shards.
func (d *Dict) Managers() int { return len(d.eps) }

// Route returns the shard index for key (FNV-1a).
func (d *Dict) Route(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(d.eps)))
}

// Put stores value under key on its owning shard.
func (d *Dict) Put(key string, value []byte) error {
	return d.eps[d.Route(key)].Put(key, value)
}

// Get fetches key from its owning shard.
func (d *Dict) Get(key string) ([]byte, error) {
	return d.eps[d.Route(key)].Get(key)
}

// Del removes key.
func (d *Dict) Del(key string) error {
	return d.eps[d.Route(key)].Del(key)
}

// Has reports whether key is present.
func (d *Dict) Has(key string) (bool, error) {
	return d.eps[d.Route(key)].Has(key)
}

// Keys merges all shards' keys (each shard's keys are sorted; the merged
// result is globally sorted).
func (d *Dict) Keys() ([]string, error) {
	var all []string
	for _, ep := range d.eps {
		ks, err := ep.Keys()
		if err != nil {
			return nil, err
		}
		all = append(all, ks...)
	}
	sort.Strings(all)
	return all, nil
}

// Len sums shard sizes.
func (d *Dict) Len() (int, error) {
	total := 0
	for _, ep := range d.eps {
		n, err := ep.Len()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Clear empties every shard.
func (d *Dict) Clear() error {
	for _, ep := range d.eps {
		if err := ep.Clear(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every endpoint.
func (d *Dict) Close() error {
	var first error
	for _, ep := range d.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
