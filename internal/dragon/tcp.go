package dragon

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Wire protocol: a request is
//
//	[1B op][4B key length][key bytes][8B value length][value bytes]
//
// and a response is
//
//	[1B status][8B payload length][payload]
//
// Status 0 = ok, 1 = not found, 2 = error (payload is the message).
// Keys lists are encoded as repeated [4B len][bytes] inside the payload.
const (
	statusOK byte = iota
	statusNotFound
	statusError
)

// maxWireValue bounds a single value (1 GiB) to catch corrupt frames.
const maxWireValue = 1 << 30

// Serve exposes manager m on ln until the listener closes. It returns
// once the accept loop exits; per-connection goroutines drain on their
// own.
func Serve(m *Manager, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(m, conn)
	}
}

// ListenAndServe starts a manager server on addr, returning the bound
// listener (close it to stop).
func ListenAndServe(m *Manager, addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dragon: listen %s: %w", addr, err)
	}
	go Serve(m, ln)
	return ln, nil
}

func serveConn(m *Manager, conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		op, key, value, err := readRequest(r)
		if err != nil {
			return
		}
		var status byte
		var payload []byte
		resp, err := m.call(managerReq{op: op, key: key, value: value})
		switch {
		case err != nil:
			status, payload = statusError, []byte(err.Error())
		case op == opGet && !resp.found:
			status = statusNotFound
		case op == opHas:
			if resp.found {
				payload = []byte{1}
			} else {
				payload = []byte{0}
			}
		case op == opGet:
			payload = resp.value
		case op == opKeys:
			payload = encodeKeys(resp.keys)
		case op == opLen:
			payload = make([]byte, 8)
			binary.BigEndian.PutUint64(payload, uint64(resp.n))
		}
		if err := writeResponse(w, status, payload); err != nil {
			return
		}
	}
}

func readRequest(r *bufio.Reader) (op managerOp, key string, value []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	op = managerOp(hdr[0])
	keyLen := binary.BigEndian.Uint32(hdr[1:])
	if keyLen > maxWireValue {
		err = fmt.Errorf("dragon: key length %d exceeds limit", keyLen)
		return
	}
	keyBuf := make([]byte, keyLen)
	if _, err = io.ReadFull(r, keyBuf); err != nil {
		return
	}
	var lenBuf [8]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	valLen := binary.BigEndian.Uint64(lenBuf[:])
	if valLen > maxWireValue {
		err = fmt.Errorf("dragon: value length %d exceeds limit", valLen)
		return
	}
	value = make([]byte, valLen)
	if _, err = io.ReadFull(r, value); err != nil {
		return
	}
	return op, string(keyBuf), value, nil
}

func writeResponse(w *bufio.Writer, status byte, payload []byte) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

func encodeKeys(keys []string) []byte {
	var out []byte
	var lenBuf [4]byte
	for _, k := range keys {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(k)))
		out = append(out, lenBuf[:]...)
		out = append(out, k...)
	}
	return out
}

func decodeKeys(payload []byte) ([]string, error) {
	var keys []string
	for len(payload) > 0 {
		if len(payload) < 4 {
			return nil, fmt.Errorf("dragon: truncated key list")
		}
		n := binary.BigEndian.Uint32(payload)
		payload = payload[4:]
		if uint32(len(payload)) < n {
			return nil, fmt.Errorf("dragon: truncated key")
		}
		keys = append(keys, string(payload[:n]))
		payload = payload[n:]
	}
	return keys, nil
}

// tcpEndpoint is a client connection to a remote manager. Safe for
// concurrent use; requests serialize over one connection.
type tcpEndpoint struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// DialEndpoint connects to a manager served at addr.
func DialEndpoint(addr string) (Endpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dragon: dial %s: %w", addr, err)
	}
	return &tcpEndpoint{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

func (e *tcpEndpoint) roundTrip(op managerOp, key string, value []byte) (status byte, payload []byte, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var hdr [5]byte
	hdr[0] = byte(op)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(key)))
	if _, err = e.w.Write(hdr[:]); err != nil {
		return
	}
	if _, err = e.w.WriteString(key); err != nil {
		return
	}
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(value)))
	if _, err = e.w.Write(lenBuf[:]); err != nil {
		return
	}
	if _, err = e.w.Write(value); err != nil {
		return
	}
	if err = e.w.Flush(); err != nil {
		return
	}
	var shdr [9]byte
	if _, err = io.ReadFull(e.r, shdr[:]); err != nil {
		return
	}
	status = shdr[0]
	n := binary.BigEndian.Uint64(shdr[1:])
	if n > maxWireValue {
		err = fmt.Errorf("dragon: response length %d exceeds limit", n)
		return
	}
	payload = make([]byte, n)
	_, err = io.ReadFull(e.r, payload)
	return
}

func (e *tcpEndpoint) check(status byte, payload []byte, key string) error {
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	default:
		return fmt.Errorf("dragon: server error: %s", payload)
	}
}

func (e *tcpEndpoint) Put(key string, value []byte) error {
	status, payload, err := e.roundTrip(opPut, key, value)
	if err != nil {
		return err
	}
	return e.check(status, payload, key)
}

func (e *tcpEndpoint) Get(key string) ([]byte, error) {
	status, payload, err := e.roundTrip(opGet, key, nil)
	if err != nil {
		return nil, err
	}
	if err := e.check(status, payload, key); err != nil {
		return nil, err
	}
	return payload, nil
}

func (e *tcpEndpoint) Del(key string) error {
	status, payload, err := e.roundTrip(opDel, key, nil)
	if err != nil {
		return err
	}
	return e.check(status, payload, key)
}

func (e *tcpEndpoint) Has(key string) (bool, error) {
	status, payload, err := e.roundTrip(opHas, key, nil)
	if err != nil {
		return false, err
	}
	if err := e.check(status, payload, key); err != nil {
		return false, err
	}
	return len(payload) == 1 && payload[0] == 1, nil
}

func (e *tcpEndpoint) Keys() ([]string, error) {
	status, payload, err := e.roundTrip(opKeys, "", nil)
	if err != nil {
		return nil, err
	}
	if err := e.check(status, payload, ""); err != nil {
		return nil, err
	}
	return decodeKeys(payload)
}

func (e *tcpEndpoint) Clear() error {
	status, payload, err := e.roundTrip(opClear, "", nil)
	if err != nil {
		return err
	}
	return e.check(status, payload, "")
}

func (e *tcpEndpoint) Len() (int, error) {
	status, payload, err := e.roundTrip(opLen, "", nil)
	if err != nil {
		return 0, err
	}
	if err := e.check(status, payload, ""); err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, fmt.Errorf("dragon: bad len payload")
	}
	return int(binary.BigEndian.Uint64(payload)), nil
}

func (e *tcpEndpoint) Close() error { return e.conn.Close() }
