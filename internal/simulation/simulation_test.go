package simulation

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"simaibench/internal/config"
	"simaibench/internal/datastore"
	"simaibench/internal/trace"
)

func fastConfig(t *testing.T, runTime float64) config.SimulationConfig {
	t.Helper()
	js := `{"kernels":[{"name":"iter","mini_app_kernel":"AXPY","run_time":` +
		jsonFloat(runTime) + `,"data_size":[1024]}]}`
	c, err := config.ParseSimulation([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func jsonFloat(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

func TestRunIterationPadsToRunTime(t *testing.T) {
	const target = 0.02
	sim, err := New("sim", fastConfig(t, target))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := sim.Run(3); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed < 3*target*0.9 {
		t.Fatalf("3 iterations took %v, want >= %v", elapsed, 3*target)
	}
	r := sim.Report()
	if r.Iterations != 3 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	if math.Abs(r.IterMean-target)/target > 0.5 {
		t.Fatalf("iter mean = %v, want ~%v", r.IterMean, target)
	}
}

func TestIterationStatsLowStdForFixedRunTime(t *testing.T) {
	// Table 3: the mini-app "strictly maintains the iteration time close
	// to the provided value" — std must be tiny relative to the mean.
	sim, err := New("sim", fastConfig(t, 0.005))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	r := sim.Report()
	if r.IterStd > r.IterMean*0.5 {
		t.Fatalf("fixed run_time should give low std: mean %v std %v", r.IterMean, r.IterStd)
	}
}

func TestTimeScaleShrinksWallTime(t *testing.T) {
	sim, err := New("sim", fastConfig(t, 0.5), WithTimeScale(0.01))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := sim.Run(2); err != nil {
		t.Fatal(err)
	}
	if time.Since(start).Seconds() > 0.5 {
		t.Fatal("time scale did not shrink wall time")
	}
	// Reported statistics stay in unscaled units.
	r := sim.Report()
	if math.Abs(r.IterMean-0.5) > 0.25 {
		t.Fatalf("unscaled iter mean = %v, want ~0.5", r.IterMean)
	}
}

func TestStochasticRunTime(t *testing.T) {
	js := `{"kernels":[{"name":"iter","mini_app_kernel":"AXPY",
		"run_time":{"type":"discrete","values":[0.001,0.003],"weights":[1,1]},
		"data_size":[256]}]}`
	c, err := config.ParseSimulation([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New("sim", c, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(30); err != nil {
		t.Fatal(err)
	}
	r := sim.Report()
	// Mean should land between the two support points.
	if r.IterMean < 0.001 || r.IterMean > 0.0045 {
		t.Fatalf("stochastic iter mean = %v", r.IterMean)
	}
	if r.IterStd < 0.0003 {
		t.Fatalf("stochastic run_time should show real variance, std = %v", r.IterStd)
	}
}

func TestRunCountDrivenKernel(t *testing.T) {
	js := `{"kernels":[{"name":"gemm","mini_app_kernel":"MatMulGeneral",
		"run_count":2,"data_size":[8,8,8]}]}`
	c, err := config.ParseSimulation([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New("sim", c)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	if sim.Report().Iterations != 5 {
		t.Fatalf("iterations = %d", sim.Report().Iterations)
	}
}

func TestStagingThroughStore(t *testing.T) {
	mgr, info, err := datastore.StartBackend(datastore.NodeLocal, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	store, err := datastore.Connect(info)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	sim, err := New("sim", fastConfig(t, 0.001), WithStore(store))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("x", 10000))
	if err := sim.StageWrite("snap/1", payload); err != nil {
		t.Fatal(err)
	}
	got, err := sim.StageRead("snap/1")
	if err != nil || len(got) != len(payload) {
		t.Fatalf("read = %d bytes, %v", len(got), err)
	}
	ok, err := sim.Poll("snap/1")
	if err != nil || !ok {
		t.Fatalf("poll = %v,%v", ok, err)
	}
	r := sim.Report()
	if r.Writes != 1 || r.Reads != 1 {
		t.Fatalf("transport events = %d/%d, want 1/1", r.Writes, r.Reads)
	}
	if r.WriteGBps <= 0 || r.ReadGBps <= 0 {
		t.Fatalf("throughput not recorded: %v/%v", r.WriteGBps, r.ReadGBps)
	}
}

func TestStagingWithoutStoreFails(t *testing.T) {
	sim, err := New("sim", fastConfig(t, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.StageWrite("k", nil); err == nil {
		t.Fatal("stage write without store succeeded")
	}
	if _, err := sim.StageRead("k"); err == nil {
		t.Fatal("stage read without store succeeded")
	}
}

func TestReadMissingKeySurfacesNotStaged(t *testing.T) {
	mgr, info, err := datastore.StartBackend(datastore.NodeLocal, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	store, _ := datastore.Connect(info)
	defer store.Close()
	sim, _ := New("sim", fastConfig(t, 0.001), WithStore(store))
	if _, err := sim.StageRead("ghost"); !errors.Is(err, datastore.ErrNotStaged) {
		t.Fatalf("err = %v, want ErrNotStaged", err)
	}
	// Failed reads must not count as transport events.
	if sim.Report().Reads != 0 {
		t.Fatal("failed read counted as event")
	}
}

func TestTimelineSpans(t *testing.T) {
	tl := trace.New()
	mgr, info, err := datastore.StartBackend(datastore.NodeLocal, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	store, _ := datastore.Connect(info)
	defer store.Close()
	sim, err := New("sim", fastConfig(t, 0.002),
		WithStore(store), WithTimeline(tl, "Simulation"))
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(3)
	sim.StageWrite("k", []byte("v"))
	if got := tl.Count("Simulation", trace.KindCompute); got != 3 {
		t.Fatalf("compute spans = %d, want 3", got)
	}
	if got := tl.Count("Simulation", trace.KindTransfer); got != 1 {
		t.Fatalf("transfer spans = %d, want 1", got)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New("sim", config.SimulationConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestDeterministicSeedFromName(t *testing.T) {
	// Identical names give identical seeds, hence identical sampled
	// run_time sequences. Targets sit far above scheduler noise and the
	// tolerance is half the support gap, so only genuine seed divergence
	// can fail this.
	js := `{"kernels":[{"name":"i","mini_app_kernel":"AXPY",
		"run_time":{"type":"discrete","values":[0.004,0.012],"weights":[1,1]},"data_size":[64]}]}`
	c, _ := config.ParseSimulation([]byte(js))
	run := func() float64 {
		sim, _ := New("same-name", c)
		sim.Run(12)
		return sim.Report().IterMean
	}
	a, b := run(), run()
	if math.Abs(a-b) > 0.004 {
		t.Fatalf("same-name sims diverge: %v vs %v", a, b)
	}
}
