// Package simulation implements the paper's Simulation class (§3.3): a
// configurable component that emulates a scientific solver as a sequence
// of kernels, each characterized by a deterministic or stochastic
// run_time (or run_count), a data size and a device, with tight
// integration to the data-transport layer through stage_read/stage_write.
//
// Timing emulation: each iteration executes its kernels for real (so the
// process exhibits genuine compute and memory behaviour) and is then
// padded to the sampled run_time, reproducing the original application's
// makespan — the property the paper validates in Tables 2/3 and Fig 2.
package simulation

import (
	"fmt"
	"math/rand"
	"time"

	"simaibench/internal/clock"
	"simaibench/internal/config"
	"simaibench/internal/datastore"
	"simaibench/internal/dist"
	"simaibench/internal/kernels"
	"simaibench/internal/mpi"
	"simaibench/internal/spin"
	"simaibench/internal/stats"
	"simaibench/internal/trace"
)

// Option customizes a Simulation.
type Option func(*Simulation)

// WithStore attaches a data-transport client for staging.
func WithStore(s datastore.Store) Option { return func(sim *Simulation) { sim.store = s } }

// WithComm attaches an MPI communicator (for collective kernels and
// rank-aware staging keys).
func WithComm(c *mpi.Comm) Option { return func(sim *Simulation) { sim.comm = c } }

// WithTimeline attaches a trace timeline (Fig 2 rendering).
func WithTimeline(tl *trace.Timeline, lane string) Option {
	return func(sim *Simulation) { sim.timeline, sim.lane = tl, lane }
}

// WithSeed fixes the RNG seed (default: derived from the name).
func WithSeed(seed int64) Option { return func(sim *Simulation) { sim.seed = &seed } }

// WithTimeScale scales all emulated durations by f (0 < f <= 1 shrinks
// them) so tests and demos can run a 10,000-iteration workflow in
// milliseconds without changing its structure.
func WithTimeScale(f float64) Option { return func(sim *Simulation) { sim.timeScale = f } }

// WithWorkDir sets the directory I/O kernels use.
func WithWorkDir(dir string) Option { return func(sim *Simulation) { sim.workDir = dir } }

// WithClock runs the component against the given emulation clock: all
// iteration padding and timestamps come from it. The default is the
// wall clock (genuine-compute mode); a clock.Virtual makes every pad
// free and deterministic. Under a virtual clock the kernels still
// execute for real — their work simply occupies zero virtual time, and
// the pad covers the whole sampled run_time.
func WithClock(c clock.Clock) Option {
	return func(sim *Simulation) { sim.now, sim.sleep = c.Now, c.Sleep }
}

// boundKernel is a compiled kernel spec.
type boundKernel struct {
	spec     config.KernelSpec
	kernel   kernels.Kernel
	runTime  dist.Sampler // nil if count-driven
	runCount dist.Sampler // nil if time-driven
	device   kernels.Device
}

// Simulation is one emulated solver component.
type Simulation struct {
	name      string
	kernels   []boundKernel
	store     datastore.Store
	comm      *mpi.Comm
	timeline  *trace.Timeline
	lane      string
	rng       *rand.Rand
	seed      *int64
	timeScale float64
	workDir   string

	iterStats  stats.Welford
	iterations int

	writeStats stats.Welford
	readStats  stats.Welford
	writeTput  stats.Throughput
	readTput   stats.Throughput
	writes     int
	reads      int

	start time.Time
	now   func() time.Time
	sleep func(time.Duration)
}

// New compiles a validated configuration into a runnable component.
func New(name string, cfg config.SimulationConfig, opts ...Option) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim := &Simulation{
		name:      name,
		timeScale: 1,
		now:       time.Now,
		sleep:     spin.Sleep,
	}
	for _, o := range opts {
		o(sim)
	}
	seed := int64(1)
	if sim.seed != nil {
		seed = *sim.seed
	} else {
		for _, c := range name {
			seed = seed*31 + int64(c)
		}
	}
	sim.rng = rand.New(rand.NewSource(seed))
	for _, ks := range cfg.Kernels {
		k, err := kernels.New(ks.Kernel)
		if err != nil {
			return nil, err
		}
		dev, err := kernels.ParseDevice(ks.Device)
		if err != nil {
			return nil, err
		}
		bk := boundKernel{spec: ks, kernel: k, device: dev}
		if ks.RunTime != nil {
			if bk.runTime, err = ks.RunTime.Sampler(); err != nil {
				return nil, err
			}
		}
		if ks.RunCount != nil {
			if bk.runCount, err = ks.RunCount.Sampler(); err != nil {
				return nil, err
			}
		}
		sim.kernels = append(sim.kernels, bk)
	}
	sim.start = sim.now()
	return sim, nil
}

// Name returns the component name.
func (s *Simulation) Name() string { return s.name }

// Elapsed returns wall time since construction (scaled domain).
func (s *Simulation) Elapsed() float64 { return s.now().Sub(s.start).Seconds() }

// kernelCtx builds the execution context for one kernel.
func (s *Simulation) kernelCtx(dev kernels.Device) *kernels.Context {
	return &kernels.Context{Comm: s.comm, Dir: s.workDir, Rng: s.rng, Device: dev}
}

// RunIteration executes one solver iteration: every configured kernel
// runs once (time-driven kernels are padded to their sampled run_time,
// count-driven kernels run the sampled number of times). The iteration
// duration is recorded for Table-3-style statistics.
func (s *Simulation) RunIteration() error {
	iterStart := s.now()
	for i := range s.kernels {
		bk := &s.kernels[i]
		switch {
		case bk.runTime != nil:
			target := bk.runTime.Sample(s.rng) * s.timeScale
			kStart := s.now()
			if err := bk.kernel.Run(s.kernelCtx(bk.device), bk.spec.DataSize); err != nil {
				return fmt.Errorf("simulation %s: kernel %s: %w", s.name, bk.spec.Name, err)
			}
			if rem := target - s.now().Sub(kStart).Seconds(); rem > 0 {
				s.sleep(time.Duration(rem * float64(time.Second)))
			}
		default:
			n := int(bk.runCount.Sample(s.rng))
			if n < 1 {
				n = 1
			}
			for j := 0; j < n; j++ {
				if err := bk.kernel.Run(s.kernelCtx(bk.device), bk.spec.DataSize); err != nil {
					return fmt.Errorf("simulation %s: kernel %s: %w", s.name, bk.spec.Name, err)
				}
			}
		}
	}
	dur := s.now().Sub(iterStart).Seconds()
	s.iterStats.Add(dur / s.timeScale) // report unscaled statistics
	s.iterations++
	if s.timeline != nil {
		// Timeline coordinates are emulated (unscaled) seconds.
		end := s.Elapsed() / s.timeScale
		s.timeline.AddSpan(s.lane, trace.KindCompute, end-dur/s.timeScale, end, "iter")
	}
	return nil
}

// Run executes n iterations.
func (s *Simulation) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.RunIteration(); err != nil {
			return err
		}
	}
	return nil
}

// StageWrite publishes value through the attached store, recording the
// transfer duration and throughput (a Fig 3 "write" event).
func (s *Simulation) StageWrite(key string, value []byte) error {
	if s.store == nil {
		return fmt.Errorf("simulation %s: no data store attached", s.name)
	}
	start := s.now()
	if err := s.store.StageWrite(key, value); err != nil {
		return err
	}
	dur := s.now().Sub(start).Seconds()
	s.writeStats.Add(dur)
	s.writeTput.Add(int64(len(value)), dur)
	s.writes++
	if s.timeline != nil {
		end := s.Elapsed() / s.timeScale
		s.timeline.AddSpan(s.lane, trace.KindTransfer, end-dur/s.timeScale, end, "write "+key)
	}
	return nil
}

// StageRead fetches a staged value, recording the transfer (a "read"
// event).
func (s *Simulation) StageRead(key string) ([]byte, error) {
	if s.store == nil {
		return nil, fmt.Errorf("simulation %s: no data store attached", s.name)
	}
	start := s.now()
	v, err := s.store.StageRead(key)
	if err != nil {
		return nil, err
	}
	dur := s.now().Sub(start).Seconds()
	s.readStats.Add(dur)
	s.readTput.Add(int64(len(v)), dur)
	s.reads++
	if s.timeline != nil {
		end := s.Elapsed() / s.timeScale
		s.timeline.AddSpan(s.lane, trace.KindTransfer, end-dur/s.timeScale, end, "read "+key)
	}
	return v, nil
}

// Poll checks for staged data without reading it.
func (s *Simulation) Poll(key string) (bool, error) {
	if s.store == nil {
		return false, fmt.Errorf("simulation %s: no data store attached", s.name)
	}
	return s.store.Poll(key)
}

// Report is a snapshot of component statistics, the raw material of
// Tables 2 and 3.
type Report struct {
	Name       string
	Iterations int
	IterMean   float64
	IterStd    float64
	Writes     int
	Reads      int
	WriteMean  float64
	ReadMean   float64
	WriteGBps  float64
	ReadGBps   float64
}

// Report returns current statistics.
func (s *Simulation) Report() Report {
	return Report{
		Name:       s.name,
		Iterations: s.iterations,
		IterMean:   s.iterStats.Mean(),
		IterStd:    s.iterStats.Std(),
		Writes:     s.writes,
		Reads:      s.reads,
		WriteMean:  s.writeStats.Mean(),
		ReadMean:   s.readStats.Mean(),
		WriteGBps:  s.writeTput.MeanGBps(),
		ReadGBps:   s.readTput.MeanGBps(),
	}
}
