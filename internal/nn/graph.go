package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Graph is a fixed undirected graph with symmetric degree normalization
// — the Â = D^{-1/2}(A+I)D^{-1/2} operator of a graph convolutional
// network. The paper's target science case for Pattern 1 trains a GNN
// surrogate on mesh data; GraphConv extends the feed-forward AI
// component toward that architecture (the paper lists it as future
// work: "expand these capabilities to include more advanced
// architectures, such as graph ... neural networks").
type Graph struct {
	n   int
	adj [][]int     // neighbor lists including self-loop
	w   [][]float64 // normalized edge weights, parallel to adj
}

// NewGraph builds a normalized graph over n nodes from an undirected
// edge list. Self-loops are added automatically; duplicate and
// out-of-range edges are rejected.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("nn: graph needs >= 1 node")
	}
	neighbors := make([]map[int]bool, n)
	for i := range neighbors {
		neighbors[i] = map[int]bool{i: true} // self-loop
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("nn: edge (%d,%d) out of range [0,%d)", a, b, n)
		}
		neighbors[a][b] = true
		neighbors[b][a] = true
	}
	g := &Graph{n: n, adj: make([][]int, n), w: make([][]float64, n)}
	deg := make([]float64, n)
	for i, ns := range neighbors {
		deg[i] = float64(len(ns))
	}
	for i, ns := range neighbors {
		for j := range ns {
			g.adj[i] = append(g.adj[i], j)
			g.w[i] = append(g.w[i], 1/math.Sqrt(deg[i]*deg[j]))
		}
	}
	return g, nil
}

// Nodes returns the node count.
func (g *Graph) Nodes() int { return g.n }

// aggregate computes out[i] = Σ_j Â[i,j]·x[j] for feature matrices laid
// out as rows of per-node features.
func (g *Graph) aggregate(x [][]float64) [][]float64 {
	out := make([][]float64, g.n)
	width := len(x[0])
	for i := 0; i < g.n; i++ {
		row := make([]float64, width)
		for k, j := range g.adj[i] {
			wij := g.w[i][k]
			xj := x[j]
			for f := range row {
				row[f] += wij * xj[f]
			}
		}
		out[i] = row
	}
	return out
}

// GraphConv is one GCN layer: Y = (Â X) Wᵀ + b, where X is the n×in
// node-feature matrix (presented as a "batch" of n node rows, matching
// the Layer interface).
type GraphConv struct {
	graph   *Graph
	linear  *Linear
	lastAgg [][]float64
}

// NewGraphConv builds a GCN layer over g with the given feature widths.
func NewGraphConv(g *Graph, in, out int, rng *rand.Rand) *GraphConv {
	return &GraphConv{graph: g, linear: NewLinear(in, out, rng)}
}

// Forward aggregates neighbor features then applies the dense transform.
// len(x) must equal the graph's node count.
func (gc *GraphConv) Forward(x [][]float64) [][]float64 {
	if len(x) != gc.graph.n {
		panic(fmt.Sprintf("nn: graphconv got %d node rows, graph has %d", len(x), gc.graph.n))
	}
	gc.lastAgg = gc.graph.aggregate(x)
	return gc.linear.Forward(gc.lastAgg)
}

// Backward propagates through the dense transform and the (symmetric)
// aggregation: dX = Âᵀ (dAgg) = Â (dAgg) since Â is symmetric.
func (gc *GraphConv) Backward(grad [][]float64) [][]float64 {
	dAgg := gc.linear.Backward(grad)
	return gc.graph.aggregate(dAgg)
}

// Params returns the layer's weights.
func (gc *GraphConv) Params() []*Param { return gc.linear.Params() }

// NewGCN stacks GraphConv layers with ReLUs between, mirroring NewMLP.
func NewGCN(g *Graph, widths []int, rng *rand.Rand) (*MLP, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("nn: GCN needs >= 2 widths, got %v", widths)
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		if widths[i] < 1 || widths[i+1] < 1 {
			return nil, fmt.Errorf("nn: nonpositive width in %v", widths)
		}
		m.layers = append(m.layers, NewGraphConv(g, widths[i], widths[i+1], rng))
		if i+2 < len(widths) {
			m.layers = append(m.layers, &ReLU{})
		}
	}
	return m, nil
}
