package nn

import (
	"math"
	"math/rand"
	"testing"
)

// path4 returns a 4-node path graph 0-1-2-3.
func path4(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphValidation(t *testing.T) {
	if _, err := NewGraph(0, nil); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := NewGraph(2, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestAggregateNormalization(t *testing.T) {
	// Isolated nodes (self-loop only): Â is the identity.
	g, err := NewGraph(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	out := g.aggregate(x)
	for i := range x {
		for f := range x[i] {
			if math.Abs(out[i][f]-x[i][f]) > 1e-12 {
				t.Fatalf("identity aggregation broken: %v", out)
			}
		}
	}
}

func TestAggregateMixesNeighbors(t *testing.T) {
	g := path4(t)
	// One-hot feature on node 0 must leak to neighbor 1 but not node 3.
	x := [][]float64{{1}, {0}, {0}, {0}}
	out := g.aggregate(x)
	if out[1][0] <= 0 {
		t.Fatal("neighbor got no contribution")
	}
	if out[3][0] != 0 {
		t.Fatal("non-neighbor received contribution in one hop")
	}
	if out[0][0] <= out[1][0]/10 {
		t.Fatal("self contribution unexpectedly small")
	}
}

func TestAggregateSpectrallyBounded(t *testing.T) {
	// Symmetric normalization bounds Â's spectral norm by 1: aggregation
	// never expands the L2 norm of a feature vector. (Row sums may
	// exceed 1 for heterogeneous degrees; the L2 bound is the real
	// invariant.)
	g := path4(t)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		x := make([][]float64, 4)
		var inNorm float64
		for i := range x {
			x[i] = []float64{rng.NormFloat64()}
			inNorm += x[i][0] * x[i][0]
		}
		out := g.aggregate(x)
		var outNorm float64
		for i := range out {
			outNorm += out[i][0] * out[i][0]
		}
		if outNorm > inNorm*(1+1e-9) {
			t.Fatalf("aggregation expanded L2 norm: %v -> %v", inNorm, outNorm)
		}
	}
}

func TestGraphConvShapes(t *testing.T) {
	g := path4(t)
	rng := rand.New(rand.NewSource(1))
	gc := NewGraphConv(g, 3, 5, rng)
	x := make([][]float64, 4)
	for i := range x {
		x[i] = []float64{1, 2, 3}
	}
	out := gc.Forward(x)
	if len(out) != 4 || len(out[0]) != 5 {
		t.Fatalf("output shape %dx%d, want 4x5", len(out), len(out[0]))
	}
}

func TestGraphConvWrongNodeCountPanics(t *testing.T) {
	g := path4(t)
	gc := NewGraphConv(g, 2, 2, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong node count did not panic")
		}
	}()
	gc.Forward([][]float64{{1, 2}})
}

func TestGCNGradientCheck(t *testing.T) {
	// Backprop through aggregation + dense layers must match numerical
	// differentiation, same as the MLP gradient check.
	g := path4(t)
	rng := rand.New(rand.NewSource(42))
	m, err := NewGCN(g, []int{2, 3, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{0.5, -0.2}, {0.1, 0.9}, {-0.7, 0.3}, {0.2, 0.2}}
	target := [][]float64{{1}, {0}, {1}, {0}}

	m.ZeroGrad()
	_, lossGrad := MSELoss(m.Forward(x), target)
	m.Backward(lossGrad)

	for _, p := range m.Params() {
		for i := range p.W {
			want := numericalGrad(m, x, target, p, i)
			got := p.Grad[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v vs numerical %v", p.Name, i, got, want)
			}
		}
	}
}

func TestGCNInputGradient(t *testing.T) {
	// dL/dX through the symmetric aggregation.
	g := path4(t)
	rng := rand.New(rand.NewSource(5))
	m, _ := NewGCN(g, []int{2, 1}, rng)
	x := [][]float64{{0.4, 0.1}, {-0.3, 0.8}, {0.6, -0.6}, {0.05, 0.2}}
	target := [][]float64{{0}, {1}, {0}, {1}}

	m.ZeroGrad()
	_, lossGrad := MSELoss(m.Forward(x), target)
	dx := m.Backward(lossGrad)

	const eps = 1e-6
	for n := range x {
		for f := range x[n] {
			orig := x[n][f]
			x[n][f] = orig + eps
			lp, _ := MSELoss(m.Forward(x), target)
			x[n][f] = orig - eps
			lm, _ := MSELoss(m.Forward(x), target)
			x[n][f] = orig
			want := (lp - lm) / (2 * eps)
			if math.Abs(dx[n][f]-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("dx[%d][%d]: analytic %v vs numerical %v", n, f, dx[n][f], want)
			}
		}
	}
}

func TestGCNTrainsOnGraphTask(t *testing.T) {
	// Learn to predict each node's degree parity from one-hot features —
	// requires using graph structure.
	g, err := NewGraph(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	m, _ := NewGCN(g, []int{6, 16, 1}, rng)
	x := make([][]float64, 6)
	y := make([][]float64, 6)
	for i := range x {
		x[i] = make([]float64, 6)
		x[i][i] = 1
		y[i] = []float64{float64(len(g.adj[i]) % 2)}
	}
	opt := SGD{LR: 0.2}
	first, _ := MSELoss(m.Forward(x), y)
	for epoch := 0; epoch < 2000; epoch++ {
		m.ZeroGrad()
		_, grad := MSELoss(m.Forward(x), y)
		m.Backward(grad)
		opt.Step(m.Params())
	}
	last, _ := MSELoss(m.Forward(x), y)
	if last > first/5 {
		t.Fatalf("GCN did not learn: %v -> %v", first, last)
	}
}

func TestNewGCNValidation(t *testing.T) {
	g := path4(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewGCN(g, []int{3}, rng); err == nil {
		t.Fatal("single-width GCN accepted")
	}
	if _, err := NewGCN(g, []int{3, 0}, rng); err == nil {
		t.Fatal("zero width accepted")
	}
}
