// Package nn is a small from-scratch neural-network library — the
// substitute for the torch.nn feed-forward models the paper's AI class
// uses (§3.4). It provides dense layers, ReLU activations, mean-squared
// error, and SGD, with real forward/backward passes so distributed
// data-parallel training (internal/ai) produces genuine gradient traffic.
//
// Layout conventions: batches are [][]float64 (batch of row vectors);
// Linear weights are row-major [out][in].
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    []float64
	Grad []float64
}

// Layer is one differentiable stage. Backward consumes dL/d(output) and
// returns dL/d(input), accumulating parameter gradients internally.
type Layer interface {
	Forward(x [][]float64) [][]float64
	Backward(grad [][]float64) [][]float64
	Params() []*Param
}

// Linear is a dense layer: y = xWᵀ + b.
type Linear struct {
	In, Out int
	weight  *Param
	bias    *Param
	lastX   [][]float64
}

// NewLinear builds a dense layer with Xavier-uniform initialization from
// rng (deterministic given a seed).
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		In: in, Out: out,
		weight: &Param{Name: fmt.Sprintf("linear%dx%d.weight", in, out),
			W: make([]float64, in*out), Grad: make([]float64, in*out)},
		bias: &Param{Name: fmt.Sprintf("linear%dx%d.bias", in, out),
			W: make([]float64, out), Grad: make([]float64, out)},
	}
	bound := math.Sqrt(6.0 / float64(in+out))
	for i := range l.weight.W {
		l.weight.W[i] = (rng.Float64()*2 - 1) * bound
	}
	return l
}

// Forward computes y[b][o] = Σ_i x[b][i]·W[o][i] + bias[o].
func (l *Linear) Forward(x [][]float64) [][]float64 {
	l.lastX = x
	out := make([][]float64, len(x))
	for b, xb := range x {
		if len(xb) != l.In {
			panic(fmt.Sprintf("nn: linear input dim %d, want %d", len(xb), l.In))
		}
		row := make([]float64, l.Out)
		for o := 0; o < l.Out; o++ {
			w := l.weight.W[o*l.In : (o+1)*l.In]
			s := l.bias.W[o]
			for i, xv := range xb {
				s += w[i] * xv
			}
			row[o] = s
		}
		out[b] = row
	}
	return out
}

// Backward accumulates dW, db and returns dL/dx.
func (l *Linear) Backward(grad [][]float64) [][]float64 {
	if l.lastX == nil {
		panic("nn: linear backward before forward")
	}
	dx := make([][]float64, len(grad))
	for b, gb := range grad {
		xb := l.lastX[b]
		row := make([]float64, l.In)
		for o := 0; o < l.Out; o++ {
			g := gb[o]
			l.bias.Grad[o] += g
			wRow := l.weight.W[o*l.In : (o+1)*l.In]
			gRow := l.weight.Grad[o*l.In : (o+1)*l.In]
			for i := 0; i < l.In; i++ {
				gRow[i] += g * xb[i]
				row[i] += g * wRow[i]
			}
		}
		dx[b] = row
	}
	return dx
}

// Params returns weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }

// ReLU is the rectified-linear activation.
type ReLU struct {
	mask [][]bool
}

// Forward zeroes negatives and remembers the mask.
func (r *ReLU) Forward(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	r.mask = make([][]bool, len(x))
	for b, xb := range x {
		row := make([]float64, len(xb))
		m := make([]bool, len(xb))
		for i, v := range xb {
			if v > 0 {
				row[i] = v
				m[i] = true
			}
		}
		out[b] = row
		r.mask[b] = m
	}
	return out
}

// Backward gates gradients through the saved mask.
func (r *ReLU) Backward(grad [][]float64) [][]float64 {
	if r.mask == nil {
		panic("nn: relu backward before forward")
	}
	out := make([][]float64, len(grad))
	for b, gb := range grad {
		row := make([]float64, len(gb))
		for i, g := range gb {
			if r.mask[b][i] {
				row[i] = g
			}
		}
		out[b] = row
	}
	return out
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// MLP is a feed-forward stack: Linear → ReLU → ... → Linear.
type MLP struct {
	layers []Layer
}

// NewMLP builds an MLP with the given layer widths (e.g. [64, 128, 128, 8]
// gives three Linear layers with ReLUs between). Needs >= 2 widths.
func NewMLP(widths []int, rng *rand.Rand) (*MLP, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("nn: MLP needs >= 2 widths, got %v", widths)
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		if widths[i] < 1 || widths[i+1] < 1 {
			return nil, fmt.Errorf("nn: nonpositive width in %v", widths)
		}
		m.layers = append(m.layers, NewLinear(widths[i], widths[i+1], rng))
		if i+2 < len(widths) {
			m.layers = append(m.layers, &ReLU{})
		}
	}
	return m, nil
}

// Forward runs the full stack.
func (m *MLP) Forward(x [][]float64) [][]float64 {
	for _, l := range m.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the reverse pass from dL/d(output).
func (m *MLP) Backward(grad [][]float64) [][]float64 {
	for i := len(m.layers) - 1; i >= 0; i-- {
		grad = m.layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in layer order.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams counts scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += len(p.W)
	}
	return n
}

// ZeroGrad clears all gradient accumulators.
func (m *MLP) ZeroGrad() {
	for _, p := range m.Params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// MSELoss returns the mean-squared error over a batch and the gradient
// dL/d(pred) for the backward pass (mean over batch*dim elements).
func MSELoss(pred, target [][]float64) (float64, [][]float64) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: pred batch %d vs target %d", len(pred), len(target)))
	}
	n := 0
	for b := range pred {
		n += len(pred[b])
	}
	if n == 0 {
		return 0, nil
	}
	loss := 0.0
	grad := make([][]float64, len(pred))
	for b := range pred {
		if len(pred[b]) != len(target[b]) {
			panic("nn: pred/target dim mismatch")
		}
		row := make([]float64, len(pred[b]))
		for i := range pred[b] {
			d := pred[b][i] - target[b][i]
			loss += d * d
			row[i] = 2 * d / float64(n)
		}
		grad[b] = row
	}
	return loss / float64(n), grad
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float64
}

// Step applies one update: w -= lr·g.
func (s SGD) Step(params []*Param) {
	for _, p := range params {
		for i := range p.W {
			p.W[i] -= s.LR * p.Grad[i]
		}
	}
}
