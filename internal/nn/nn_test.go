package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearForwardKnown(t *testing.T) {
	l := NewLinear(2, 2, rand.New(rand.NewSource(1)))
	copy(l.weight.W, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(l.bias.W, []float64{10, 20})
	out := l.Forward([][]float64{{1, 1}})
	if out[0][0] != 13 || out[0][1] != 27 {
		t.Fatalf("forward = %v, want [13 27]", out)
	}
}

func TestLinearInputDimPanics(t *testing.T) {
	l := NewLinear(3, 2, rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input dim did not panic")
		}
	}()
	l.Forward([][]float64{{1, 2}})
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	out := r.Forward([][]float64{{-1, 0, 2.5}})
	if out[0][0] != 0 || out[0][1] != 0 || out[0][2] != 2.5 {
		t.Fatalf("relu = %v", out)
	}
	grad := r.Backward([][]float64{{5, 5, 5}})
	if grad[0][0] != 0 || grad[0][1] != 0 || grad[0][2] != 5 {
		t.Fatalf("relu grad = %v", grad)
	}
}

func TestMLPConstruction(t *testing.T) {
	m, err := NewMLP([]int{4, 8, 2}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// 4*8+8 + 8*2+2 = 58 params.
	if m.NumParams() != 58 {
		t.Fatalf("NumParams = %d, want 58", m.NumParams())
	}
	out := m.Forward([][]float64{{1, 2, 3, 4}})
	if len(out) != 1 || len(out[0]) != 2 {
		t.Fatalf("output shape = %dx%d", len(out), len(out[0]))
	}
}

func TestMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP([]int{4}, rng); err == nil {
		t.Fatal("single-width MLP accepted")
	}
	if _, err := NewMLP([]int{4, 0, 2}, rng); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestMSELossKnown(t *testing.T) {
	pred := [][]float64{{1, 2}}
	target := [][]float64{{0, 0}}
	loss, grad := MSELoss(pred, target)
	if math.Abs(loss-2.5) > 1e-12 { // (1+4)/2
		t.Fatalf("loss = %v, want 2.5", loss)
	}
	if math.Abs(grad[0][0]-1) > 1e-12 || math.Abs(grad[0][1]-2) > 1e-12 {
		t.Fatalf("grad = %v, want [1 2]", grad)
	}
}

func TestMSELossZeroWhenEqual(t *testing.T) {
	x := [][]float64{{3, 4, 5}}
	loss, grad := MSELoss(x, x)
	if loss != 0 {
		t.Fatalf("loss = %v", loss)
	}
	for _, g := range grad[0] {
		if g != 0 {
			t.Fatalf("grad = %v", grad)
		}
	}
}

// numericalGrad estimates dLoss/dp by central differences.
func numericalGrad(m *MLP, x, target [][]float64, p *Param, i int) float64 {
	const eps = 1e-6
	orig := p.W[i]
	p.W[i] = orig + eps
	lossP, _ := MSELoss(m.Forward(x), target)
	p.W[i] = orig - eps
	lossM, _ := MSELoss(m.Forward(x), target)
	p.W[i] = orig
	return (lossP - lossM) / (2 * eps)
}

func TestGradientCheck(t *testing.T) {
	// Analytic gradients must match numerical differentiation — the
	// canonical correctness proof for a backprop implementation.
	rng := rand.New(rand.NewSource(42))
	m, err := NewMLP([]int{3, 5, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := [][]float64{{0.5, -0.3, 0.8}, {1.2, 0.1, -0.7}}
	target := [][]float64{{1, 0}, {0, 1}}

	m.ZeroGrad()
	pred := m.Forward(x)
	_, lossGrad := MSELoss(pred, target)
	m.Backward(lossGrad)

	checked := 0
	for _, p := range m.Params() {
		for i := range p.W {
			want := numericalGrad(m, x, target, p, i)
			got := p.Grad[i]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %v vs numerical %v", p.Name, i, got, want)
			}
			checked++
		}
	}
	if checked != m.NumParams() {
		t.Fatalf("checked %d of %d params", checked, m.NumParams())
	}
}

func TestBackwardInputGradient(t *testing.T) {
	// dL/dx must also match numerical differentiation.
	rng := rand.New(rand.NewSource(7))
	m, _ := NewMLP([]int{2, 4, 1}, rng)
	x := [][]float64{{0.3, -0.9}}
	target := [][]float64{{0.5}}

	m.ZeroGrad()
	_, lossGrad := MSELoss(m.Forward(x), target)
	dx := m.Backward(lossGrad)

	const eps = 1e-6
	for i := range x[0] {
		orig := x[0][i]
		x[0][i] = orig + eps
		lp, _ := MSELoss(m.Forward(x), target)
		x[0][i] = orig - eps
		lm, _ := MSELoss(m.Forward(x), target)
		x[0][i] = orig
		want := (lp - lm) / (2 * eps)
		if math.Abs(dx[0][i]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("dx[%d]: analytic %v vs numerical %v", i, dx[0][i], want)
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// Fit y = [x0+x1, x0-x1]: loss must drop by orders of magnitude.
	rng := rand.New(rand.NewSource(3))
	m, _ := NewMLP([]int{2, 16, 2}, rng)
	opt := SGD{LR: 0.05}
	batch := func() ([][]float64, [][]float64) {
		x := make([][]float64, 32)
		y := make([][]float64, 32)
		for i := range x {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			x[i] = []float64{a, b}
			y[i] = []float64{a + b, a - b}
		}
		return x, y
	}
	x0, y0 := batch()
	first, _ := MSELoss(m.Forward(x0), y0)
	for epoch := 0; epoch < 400; epoch++ {
		x, y := batch()
		m.ZeroGrad()
		_, g := MSELoss(m.Forward(x), y)
		m.Backward(g)
		opt.Step(m.Params())
	}
	last, _ := MSELoss(m.Forward(x0), y0)
	if last > first/50 {
		t.Fatalf("training did not converge: %v -> %v", first, last)
	}
}

func TestZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, _ := NewMLP([]int{2, 2}, rng)
	x := [][]float64{{1, 1}}
	_, g := MSELoss(m.Forward(x), [][]float64{{0, 0}})
	m.Backward(g)
	nonzero := false
	for _, p := range m.Params() {
		for _, gv := range p.Grad {
			if gv != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("backward produced all-zero grads")
	}
	m.ZeroGrad()
	for _, p := range m.Params() {
		for _, gv := range p.Grad {
			if gv != 0 {
				t.Fatal("ZeroGrad left residue")
			}
		}
	}
}

func TestGradAccumulationAcrossBatches(t *testing.T) {
	// Two backward passes without ZeroGrad must sum gradients.
	rng := rand.New(rand.NewSource(9))
	m, _ := NewMLP([]int{2, 2}, rng)
	x := [][]float64{{1, 2}}
	tgt := [][]float64{{0, 0}}

	m.ZeroGrad()
	_, g := MSELoss(m.Forward(x), tgt)
	m.Backward(g)
	single := append([]float64(nil), m.Params()[0].Grad...)

	m.ZeroGrad()
	for i := 0; i < 2; i++ {
		_, g := MSELoss(m.Forward(x), tgt)
		m.Backward(g)
	}
	for i, gv := range m.Params()[0].Grad {
		if math.Abs(gv-2*single[i]) > 1e-12 {
			t.Fatalf("grad[%d] = %v, want %v", i, gv, 2*single[i])
		}
	}
}

func TestDeterministicInit(t *testing.T) {
	a, _ := NewMLP([]int{4, 4, 4}, rand.New(rand.NewSource(11)))
	b, _ := NewMLP([]int{4, 4, 4}, rand.New(rand.NewSource(11)))
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				t.Fatal("same seed produced different init")
			}
		}
	}
}

func TestPropertyMSELossNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		pred := [][]float64{raw[:half]}
		target := [][]float64{raw[half : 2*half]}
		loss, _ := MSELoss(pred, target)
		return loss >= 0 || math.IsNaN(loss) == containsNaN(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func containsNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

func BenchmarkForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, _ := NewMLP([]int{64, 128, 128, 8}, rng)
	x := make([][]float64, 32)
	y := make([][]float64, 32)
	for i := range x {
		x[i] = make([]float64, 64)
		y[i] = make([]float64, 8)
	}
	opt := SGD{LR: 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrad()
		_, g := MSELoss(m.Forward(x), y)
		m.Backward(g)
		opt.Step(m.Params())
	}
}
