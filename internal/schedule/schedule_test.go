package schedule

import (
	"math"
	"testing"

	"simaibench/internal/cluster"
	"simaibench/internal/des"
	"simaibench/internal/faults"
	"simaibench/internal/loadgen"
)

// job builds a hand-crafted workload entry for micro-scenarios.
func job(id int, arrive, service float64, nodes int) loadgen.Job {
	return loadgen.Job{
		ID: id, Tenant: id % 4, Class: "t",
		ArriveS: arrive, Nodes: nodes,
		ServiceS: service, DeadlineS: arrive + 2*service,
	}
}

// run executes one campaign to completion and returns its metrics.
func run(t *testing.T, pol Policy, jobs []loadgen.Job, nodes int, prof faults.Profile) *Metrics {
	t.Helper()
	env := des.NewEnv()
	env.SetGuard(des.Guard{MaxEvents: 5_000_000})
	spec := cluster.Aurora(nodes)
	var s *Scheduler
	s, err := New(env, spec, Config{Policy: pol, Faults: prof, OnComplete: env.Stop})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	env.Run()
	if err := env.Err(); err != nil {
		t.Fatalf("guard tripped: %v", err)
	}
	if !s.Done() {
		t.Fatalf("run ended with %d pending jobs", s.QueueLen())
	}
	return s.Metrics()
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := ParsePolicy(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("lottery"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestPolicyOrdering pins the micro-scenario that separates arrival
// order from size-aware order: a warmup job holds the whole 2-node
// facility until t=5, behind which one wide 100s job and two 1s jobs
// queue up. FIFO lets the wide job block the short ones for the full
// 100s; every size- or deadline-aware policy runs the short ones first.
func TestPolicyOrdering(t *testing.T) {
	jobs := []loadgen.Job{
		job(0, 0, 5, 2),   // warmup: occupies the facility until t=5
		job(1, 1, 100, 2), // wide long job
		job(2, 2, 1, 1),
		job(3, 3, 1, 1),
	}
	maxWait := func(pol Policy) float64 {
		return run(t, pol, jobs, 2, faults.Profile{}).Wait.Max()
	}
	if got := maxWait(FIFO()); got != 103 {
		t.Errorf("FIFO max wait %v, want 103 (short jobs starve behind the wide one)", got)
	}
	for _, pol := range []Policy{EDF(), SRPT(), Hermod()} {
		if got := maxWait(pol); got != 5 {
			t.Errorf("%s max wait %v, want 5 (short jobs bypass the wide one)", pol.Name(), got)
		}
	}
}

// TestHealthyRunConservation checks node-second accounting on a
// fault-free run: busy node-seconds equal the workload's exact
// footprint, nothing is wasted, and utilization is a proper fraction.
func TestHealthyRunConservation(t *testing.T) {
	cfg := loadgen.Config{
		Seed: 5, RatePerS: 0.4, Jobs: 300, Tenants: 6,
		Classes: loadgen.DefaultClasses(),
	}
	jobs, err := loadgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, j := range jobs {
		want += float64(j.Nodes) * j.ServiceS
	}
	m := run(t, SRPT(), jobs, 64, faults.Profile{})
	if m.Completed != 300 || m.Dropped != 0 || m.Restarts != 0 {
		t.Fatalf("outcomes: %+v", m)
	}
	if math.Abs(m.BusyNodeS-want) > 1e-6*want {
		t.Errorf("busy node-seconds %v, want %v", m.BusyNodeS, want)
	}
	if m.WastedNodeS != 0 {
		t.Errorf("wasted node-seconds %v on a healthy run", m.WastedNodeS)
	}
	if u := m.Utilization(64); !(u > 0 && u <= 1) {
		t.Errorf("utilization %v out of range", u)
	}
	if f := m.JainFairness(); !(f > 0 && f <= 1) {
		t.Errorf("fairness %v out of range", f)
	}
	if n := len(m.TenantMeanSlowdowns()); n != 6 {
		t.Errorf("%d tenant means, want 6", n)
	}
}

// TestDeterministicRuns pins bit-reproducibility: two runs of the same
// faulty campaign agree on every metric, including tail quantiles.
func TestDeterministicRuns(t *testing.T) {
	cfg := loadgen.Config{
		Seed: 9, RatePerS: 0.5, Jobs: 200, Tenants: 4,
		Classes: loadgen.DefaultClasses(),
	}
	jobs, err := loadgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := faults.Profile{Seed: 3, MTBFS: 2000, RepairS: 60}
	a := run(t, Hermod(), jobs, 32, prof)
	b := run(t, Hermod(), jobs, 32, prof)
	if a.Completed != b.Completed || a.Dropped != b.Dropped ||
		a.Restarts != b.Restarts || a.BusyNodeS != b.BusyNodeS ||
		a.LastCompletionS != b.LastCompletionS {
		t.Fatalf("metrics differ: %+v vs %+v", a, b)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Slowdown.Quantile(q) != b.Slowdown.Quantile(q) {
			t.Fatalf("q=%v slowdown differs", q)
		}
	}
}

// TestSizeAwarePoliciesBeatFIFOUnderOverload is the differentiation
// contract of the campaign scenario: at offered load 1.2 the p99
// slowdown of SRPT and the Hermod hybrid must be strictly below FIFO.
func TestSizeAwarePoliciesBeatFIFOUnderOverload(t *testing.T) {
	cfg := loadgen.Config{
		Seed: 1, Jobs: 500, Tenants: 8,
		Classes: loadgen.DefaultClasses(),
	}
	cfg.RatePerS = cfg.RateForLoad(1.2, 64)
	jobs, err := loadgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fifo := run(t, FIFO(), jobs, 64, faults.Profile{})
	for _, pol := range []Policy{SRPT(), Hermod()} {
		m := run(t, pol, jobs, 64, faults.Profile{})
		if !(m.Slowdown.P99() < fifo.Slowdown.P99()) {
			t.Errorf("%s p99 slowdown %v not below FIFO's %v",
				pol.Name(), m.Slowdown.P99(), fifo.Slowdown.P99())
		}
	}
}

// TestCrashEvictionRequeues drives a crash-heavy profile and checks
// the fail-stop restart path: work is evicted and re-run, every job
// still retires, and the waste shows up in the accounting.
func TestCrashEvictionRequeues(t *testing.T) {
	jobs := make([]loadgen.Job, 20)
	for i := range jobs {
		jobs[i] = job(i, float64(i)*5, 30, 2)
	}
	prof := faults.Profile{Seed: 11, MTBFS: 200, RepairS: 10}
	m := run(t, FIFO(), jobs, 4, prof)
	if m.Restarts == 0 {
		t.Fatal("crash-heavy profile caused no evictions; weaken MTBF")
	}
	if m.Completed+m.Dropped != 20 {
		t.Fatalf("completed %d + dropped %d != 20", m.Completed, m.Dropped)
	}
	if m.WastedNodeS <= 0 || m.WastedNodeS >= m.BusyNodeS {
		t.Errorf("wasted %v vs busy %v", m.WastedNodeS, m.BusyNodeS)
	}
}

// TestRestartBudgetDrops sets a negative budget (drop on first
// eviction) under the same crashy profile: evicted jobs are dropped,
// not re-queued, and the run still terminates cleanly.
func TestRestartBudgetDrops(t *testing.T) {
	jobs := make([]loadgen.Job, 20)
	for i := range jobs {
		jobs[i] = job(i, float64(i)*5, 30, 2)
	}
	env := des.NewEnv()
	s, err := New(env, cluster.Aurora(4), Config{
		Policy:      FIFO(),
		Faults:      faults.Profile{Seed: 11, MTBFS: 200, RepairS: 10},
		MaxRestarts: -1,
		OnComplete:  env.Stop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(jobs); err != nil {
		t.Fatal(err)
	}
	env.Run()
	m := s.Metrics()
	if m.Dropped == 0 {
		t.Fatal("no drops under a drop-on-first-eviction budget")
	}
	if m.Dropped != m.Restarts {
		t.Errorf("dropped %d != evictions %d under zero budget", m.Dropped, m.Restarts)
	}
	if !s.Done() {
		t.Fatal("run did not drain")
	}
}

func TestSubmitValidates(t *testing.T) {
	env := des.NewEnv()
	s, err := New(env, cluster.Aurora(4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]loadgen.Job{
		"too wide":     job(0, 0, 10, 5),
		"zero nodes":   {ID: 1, ArriveS: 0, Nodes: 0, ServiceS: 1},
		"zero service": {ID: 2, ArriveS: 0, Nodes: 1, ServiceS: 0},
		"NaN service":  {ID: 3, ArriveS: 0, Nodes: 1, ServiceS: math.NaN()},
	} {
		if err := s.Submit([]loadgen.Job{bad}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if s.submitted != 0 {
		t.Fatalf("rejected submissions still counted: %d", s.submitted)
	}
}
