package schedule

import (
	"fmt"
	"sort"

	"simaibench/internal/cluster"
	"simaibench/internal/des"
	"simaibench/internal/faults"
	"simaibench/internal/loadgen"
	"simaibench/internal/stats"
)

// DefaultMaxRestarts is the per-job restart budget applied when
// Config.MaxRestarts is zero: a job evicted by node crashes more than
// this many times is dropped instead of re-queued, so a crash-looping
// job cannot pin the facility forever (the run-guardrail discipline of
// the sweep layer, applied per job).
const DefaultMaxRestarts = 16

// Queued is one job's scheduler-side state: the immutable workload
// description plus the mutable placement bookkeeping. Policies read
// the exported fields from Less; everything else is owned by the
// Scheduler.
type Queued struct {
	// Job is the workload description from the load generator.
	Job loadgen.Job
	// Restarts counts crash evictions suffered so far; it is compared
	// against the per-job restart budget.
	Restarts int

	firstStartS float64 // first placement time, -1 while never placed
	startS      float64 // current placement time
	nodes       []int   // currently held node indices
	hold        *des.Hold
}

// Config parameterizes a Scheduler run.
type Config struct {
	// Policy orders the pending queue; nil defaults to FIFO.
	Policy Policy
	// Faults is the disturbance profile driven against the facility;
	// the zero value injects nothing and costs nothing.
	Faults faults.Profile
	// MaxRestarts is the per-job crash-eviction budget: 0 means
	// DefaultMaxRestarts, negative means drop on the first eviction.
	MaxRestarts int
	// OnComplete fires when every submitted job has completed or been
	// dropped. A faulty campaign sets this to env.Stop — the injector's
	// disturbance streams never drain on their own.
	OnComplete func()
}

// Scheduler is the facility-global scheduler: it owns the free/busy
// state of a cluster partition (availability delegated to a
// faults.Injector and its cluster.NodeSet), a pending queue ordered by
// a pluggable Policy, and the DES events that move jobs through
// arrival → placement → completion, with crash evictions and repairs
// interleaved by the injector. All state is mutated only from the
// des.Env scheduler goroutine.
type Scheduler struct {
	env  *des.Env
	spec cluster.Spec
	cfg  Config
	inj  *faults.Injector

	occupant []*Queued // node index -> running job, nil when free
	freeUp   int       // nodes both up and unoccupied

	pending   []*Queued
	submitted int
	finished  int

	m Metrics
}

// New builds a scheduler over spec's nodes, constructing (and
// starting) the fault injector for cfg.Faults. Jobs enter via Submit;
// the caller then runs the environment.
func New(env *des.Env, spec cluster.Spec, cfg Config) (*Scheduler, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = FIFO()
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = DefaultMaxRestarts
	}
	s := &Scheduler{
		env:      env,
		spec:     spec,
		cfg:      cfg,
		occupant: make([]*Queued, spec.Nodes),
		freeUp:   spec.Nodes,
	}
	s.m.tenant = map[int]*stats.Welford{}
	s.inj = faults.New(env, spec, cfg.Faults, faults.Hooks{
		Crash:  s.onCrash,
		Repair: s.onRepair,
	})
	s.inj.Start()
	return s, nil
}

// Submit schedules the arrival events for an open-loop job stream.
// Every job must fit the facility (1 <= Nodes <= spec.Nodes) and have
// positive service time; otherwise nothing is scheduled and an error
// names the offender. Submit may be called once or many times, before
// or during a run, as long as arrivals are not in the past.
func (s *Scheduler) Submit(jobs []loadgen.Job) error {
	for _, j := range jobs {
		if j.Nodes < 1 || j.Nodes > s.spec.Nodes {
			return fmt.Errorf("schedule: job %d requests %d nodes on a %d-node facility",
				j.ID, j.Nodes, s.spec.Nodes)
		}
		if !(j.ServiceS > 0) {
			return fmt.Errorf("schedule: job %d has service time %v", j.ID, j.ServiceS)
		}
		if j.ArriveS < s.env.Now() {
			return fmt.Errorf("schedule: job %d arrives in the past (%v < now %v)",
				j.ID, j.ArriveS, s.env.Now())
		}
	}
	for _, j := range jobs {
		j := j
		s.submitted++
		s.env.At(j.ArriveS, func() {
			q := &Queued{Job: j, firstStartS: -1}
			q.hold = des.NewHold(s.env, func() { s.complete(q) })
			s.pending = append(s.pending, q)
			s.trySchedule()
		})
	}
	return nil
}

// trySchedule drains the pending queue in policy order: repeatedly
// pick the least job under Policy.Less and place it if it fits the
// free capacity, stopping at the first job that does not fit (strict
// priority with head-of-line blocking, no backfill — uniform across
// policies so a comparison isolates the ordering).
func (s *Scheduler) trySchedule() {
	now := s.env.Now()
	for len(s.pending) > 0 {
		best := 0
		for i := 1; i < len(s.pending); i++ {
			if s.cfg.Policy.Less(s.pending[i], s.pending[best], now) {
				best = i
			}
		}
		q := s.pending[best]
		if q.Job.Nodes > s.freeUp {
			return
		}
		s.pending = append(s.pending[:best], s.pending[best+1:]...)
		s.place(q, now)
	}
}

// place assigns the lowest-indexed free up nodes to q and arms its
// completion hold. The effective service time is stretched by the
// worst straggler factor among the chosen nodes, sampled at placement.
func (s *Scheduler) place(q *Queued, now float64) {
	q.nodes = q.nodes[:0]
	slow := 1.0
	for n := 0; n < s.spec.Nodes && len(q.nodes) < q.Job.Nodes; n++ {
		if s.occupant[n] == nil && s.inj.NodeUp(n) {
			q.nodes = append(q.nodes, n)
			s.occupant[n] = q
			if f := s.inj.Slowdown(n); f > slow {
				slow = f
			}
		}
	}
	s.freeUp -= len(q.nodes)
	q.startS = now
	if q.firstStartS < 0 {
		q.firstStartS = now
		s.m.Wait.Add(now - q.Job.ArriveS)
	}
	q.hold.After(q.Job.ServiceS * slow)
}

// release returns q's nodes to the pool; down (a node index, or -1)
// is excluded from the free count because it just crashed.
func (s *Scheduler) release(q *Queued, down int) {
	for _, n := range q.nodes {
		s.occupant[n] = nil
		if n != down && s.inj.NodeUp(n) {
			s.freeUp++
		}
	}
	q.nodes = q.nodes[:0]
}

// complete retires a job whose hold fired: record metrics, free its
// nodes, and give the queue a placement opportunity.
func (s *Scheduler) complete(q *Queued) {
	now := s.env.Now()
	width := float64(len(q.nodes))
	s.release(q, -1)
	s.m.BusyNodeS += (now - q.startS) * width
	s.m.Completed++
	slowdown := (now - q.Job.ArriveS) / q.Job.ServiceS
	s.m.Slowdown.Add(slowdown)
	if now > q.Job.DeadlineS {
		s.m.DeadlineMisses++
	}
	t := s.m.tenant[q.Job.Tenant]
	if t == nil {
		t = &stats.Welford{}
		s.m.tenant[q.Job.Tenant] = t
	}
	t.Add(slowdown)
	s.m.LastCompletionS = now
	s.finishOne()
	s.trySchedule()
}

// finishOne advances the completion count and fires OnComplete when
// the last submitted job retires.
func (s *Scheduler) finishOne() {
	s.finished++
	if s.finished == s.submitted && s.cfg.OnComplete != nil {
		s.cfg.OnComplete()
	}
}

// onCrash is the injector's Crash hook: evict the occupant (fail-stop,
// its accumulated work is wasted), cancel its completion, and re-queue
// it — or drop it once past the restart budget. An unoccupied crashed
// node just leaves the free pool.
func (s *Scheduler) onCrash(node int) {
	q := s.occupant[node]
	if q == nil {
		s.freeUp--
		return
	}
	now := s.env.Now()
	width := float64(len(q.nodes))
	q.hold.Cancel()
	s.release(q, node)
	lost := (now - q.startS) * width
	s.m.BusyNodeS += lost
	s.m.WastedNodeS += lost
	q.Restarts++
	s.m.Restarts++
	if q.Restarts > s.cfg.MaxRestarts || s.cfg.MaxRestarts < 0 {
		s.m.Dropped++
		s.finishOne()
	} else {
		s.pending = append(s.pending, q)
	}
	s.trySchedule()
}

// onRepair is the injector's Repair hook: the node re-enters the free
// pool (it was evicted at crash time, so it is never occupied here)
// and the queue gets a placement opportunity.
func (s *Scheduler) onRepair(node int) {
	if s.occupant[node] == nil {
		s.freeUp++
	}
	s.trySchedule()
}

// Done reports whether every submitted job has completed or been
// dropped.
func (s *Scheduler) Done() bool { return s.finished == s.submitted }

// QueueLen returns the current pending-queue length.
func (s *Scheduler) QueueLen() int { return len(s.pending) }

// Injector exposes the fault injector (crash counts, NodeSet view)
// for reporting.
func (s *Scheduler) Injector() *faults.Injector { return s.inj }

// Metrics returns the live metrics accumulator.
func (s *Scheduler) Metrics() *Metrics { return &s.m }

// Metrics aggregates one campaign run: queueing-delay and slowdown
// digests over completed jobs (dropped jobs contribute to Dropped
// only), facility node-second accounting, and per-tenant slowdown
// means for the fairness index.
type Metrics struct {
	// Wait collects queueing delays (first placement − arrival).
	Wait stats.Digest
	// Slowdown collects (completion − arrival) / nominal service.
	Slowdown stats.Digest
	// Completed, Dropped, Restarts and DeadlineMisses count job
	// outcomes; Restarts counts crash evictions across all jobs.
	Completed, Dropped, Restarts, DeadlineMisses int
	// BusyNodeS is occupied node-seconds (including work later lost to
	// crashes); WastedNodeS is the lost subset.
	BusyNodeS, WastedNodeS float64
	// LastCompletionS is the virtual time of the last completion — the
	// campaign makespan for utilization purposes.
	LastCompletionS float64

	tenant map[int]*stats.Welford
}

// TenantMeanSlowdowns returns each tenant's mean slowdown in tenant-id
// order (tenants with no completed jobs are absent).
func (m *Metrics) TenantMeanSlowdowns() []float64 {
	ids := make([]int, 0, len(m.tenant))
	for id := range m.tenant {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]float64, 0, len(ids))
	for _, id := range ids {
		out = append(out, m.tenant[id].Mean())
	}
	return out
}

// JainFairness returns Jain's index over the per-tenant mean
// slowdowns: 1.0 when every tenant experiences equal service quality.
func (m *Metrics) JainFairness() float64 { return stats.Jain(m.TenantMeanSlowdowns()) }

// Utilization returns delivered facility utilization: busy
// node-seconds over nodes × makespan (0 before any completion).
func (m *Metrics) Utilization(nodes int) float64 {
	if m.LastCompletionS <= 0 || nodes <= 0 {
		return 0
	}
	return m.BusyNodeS / (float64(nodes) * m.LastCompletionS)
}
