// Package schedule is the global scheduling layer of the facility-scale
// campaign scenarios: it takes the open-loop job stream produced by
// internal/loadgen and places each job onto a free block of the
// facility's nodes (cluster.NodeSet), entirely as flat callback events
// on a des.Env — arrivals, placements, completions, crash evictions and
// repairs all share the engine's deterministic (time, seq) order, so a
// campaign is bit-reproducible per seed.
//
// Policies are pluggable orderings over the pending queue. All four
// built-ins (FIFO, EDF, SRPT, Hermod-style hybrid) run under the same
// queue mechanics — strict priority with head-of-line blocking, no
// backfill — so a policy comparison isolates the ordering itself: the
// highest-priority job reserves the machine room until enough nodes
// free up, exactly the regime where size-aware orderings beat arrival
// order.
//
// The scheduler composes with internal/faults: node crashes evict the
// running job (its work is lost, fail-stop), return it to the pending
// queue and count a restart; repairs return capacity. Because the
// injector's crash streams are seeded independently of both the
// arrival streams and the policy, every policy in a sweep is judged
// against identical disturbances.
package schedule

import (
	"fmt"
	"strings"
)

// Policy is a pluggable global scheduling discipline: a strict weak
// ordering over the pending queue. The scheduler repeatedly places the
// least job (by Less) that fits the free capacity, blocking the queue
// when the least job does not fit. Implementations must be
// deterministic — break every tie on Job.ID — or campaign runs lose
// bit-reproducibility.
type Policy interface {
	// Name is the stable id used by -policy flags and reports.
	Name() string
	// Less reports whether a should be placed before b at virtual time
	// now.
	Less(a, b *Queued, now float64) bool
}

// FIFO orders by arrival time: the baseline every batch system starts
// from, and the policy whose tails collapse first under overload —
// one wide job at the head starves everything behind it.
func FIFO() Policy { return fifoPolicy{} }

// EDF orders by absolute deadline (earliest due first): the classic
// real-time discipline, sensitive to the deadline slack the load
// generator samples per class.
func EDF() Policy { return edfPolicy{} }

// SRPT orders by remaining service time. Under this scheduler's
// non-preemptive, fail-stop regime a queued job always owes its full
// nominal service, so the ordering is shortest-service-first at every
// decision point — the size-aware discipline that minimizes mean
// slowdown.
func SRPT() Policy { return srptPolicy{} }

// Hermod is a hybrid in the style of the Hermod serverless-training
// scheduler: size-aware like SRPT, but a job's effective size decays
// with its waiting time, so large jobs age into the front of the queue
// instead of starving behind an endless stream of small ones. The
// score is service²/(service + wait): equal to the service time for a
// fresh job, asymptotically proportional to service²/wait as it ages.
func Hermod() Policy { return hermodPolicy{} }

type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "fifo" }
func (fifoPolicy) Less(a, b *Queued, _ float64) bool {
	if a.Job.ArriveS != b.Job.ArriveS {
		return a.Job.ArriveS < b.Job.ArriveS
	}
	return a.Job.ID < b.Job.ID
}

type edfPolicy struct{}

func (edfPolicy) Name() string { return "edf" }
func (edfPolicy) Less(a, b *Queued, _ float64) bool {
	if a.Job.DeadlineS != b.Job.DeadlineS {
		return a.Job.DeadlineS < b.Job.DeadlineS
	}
	return a.Job.ID < b.Job.ID
}

type srptPolicy struct{}

func (srptPolicy) Name() string { return "srpt" }
func (srptPolicy) Less(a, b *Queued, _ float64) bool {
	if a.Job.ServiceS != b.Job.ServiceS {
		return a.Job.ServiceS < b.Job.ServiceS
	}
	return a.Job.ID < b.Job.ID
}

type hermodPolicy struct{}

func (hermodPolicy) Name() string { return "hermod" }

// score is the aging-discounted effective size; smaller places first.
func (hermodPolicy) score(q *Queued, now float64) float64 {
	wait := now - q.Job.ArriveS
	if wait < 0 {
		wait = 0
	}
	s := q.Job.ServiceS
	return s * s / (s + wait)
}

func (p hermodPolicy) Less(a, b *Queued, now float64) bool {
	sa, sb := p.score(a, now), p.score(b, now)
	if sa != sb {
		return sa < sb
	}
	return a.Job.ID < b.Job.ID
}

// Policies returns the built-in policies in canonical sweep order.
func Policies() []Policy {
	return []Policy{FIFO(), EDF(), SRPT(), Hermod()}
}

// PolicyNames returns the built-in policy ids in canonical sweep order.
func PolicyNames() []string {
	names := make([]string, 0, 4)
	for _, p := range Policies() {
		names = append(names, p.Name())
	}
	return names
}

// ParsePolicy converts a CLI/config string to a built-in Policy, or an
// error naming the valid ids.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.Name() == s {
			return p, nil
		}
	}
	return nil, fmt.Errorf("schedule: unknown policy %q (valid: %s)",
		s, strings.Join(PolicyNames(), ", "))
}
