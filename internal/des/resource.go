package des

// Resource is a counted resource with a FIFO wait queue, equivalent to a
// SimPy Resource. It models serialization points in the cluster: a NIC
// that admits a bounded number of concurrent flows, a Lustre metadata
// server with a single service slot, an OST with k parallel streams.
type Resource struct {
	env   *Env
	cap   int
	inUse int
	waitQ []*Proc
	// peak tracks the maximum simultaneous utilization, handy for
	// asserting contention in tests.
	peak int
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("des: resource capacity must be >= 1")
	}
	return &Resource{env: env, cap: capacity}
}

// Acquire blocks the calling process until a slot is free, FIFO order.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap {
		r.inUse++
		if r.inUse > r.peak {
			r.peak = r.inUse
		}
		return
	}
	r.waitQ = append(r.waitQ, p)
	p.park()
}

// Release frees one slot, waking the longest-waiting process if any.
// The slot transfers directly to the woken process, preserving FIFO
// fairness (no barging).
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("des: release of idle resource")
	}
	if len(r.waitQ) > 0 {
		next := r.waitQ[0]
		r.waitQ = r.waitQ[1:]
		// inUse stays the same: the slot moves to next.
		r.env.Schedule(r.env.now, func() { r.env.transfer(next, nil) })
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for d virtual seconds, and releases.
func (r *Resource) Use(p *Proc, d float64) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// InUse reports current utilization; Cap the capacity; Waiting the queue
// length; Peak the maximum utilization observed.
func (r *Resource) InUse() int   { return r.inUse }
func (r *Resource) Cap() int     { return r.cap }
func (r *Resource) Waiting() int { return len(r.waitQ) }
func (r *Resource) Peak() int    { return r.peak }
