package des

// Resource is a counted resource with a FIFO wait queue, equivalent to a
// SimPy Resource. It models serialization points in the cluster: a NIC
// that admits a bounded number of concurrent flows, a Lustre metadata
// server with a single service slot, an OST with k parallel streams.
// Processes (Acquire) and flat callbacks (Request) share one queue, so
// both styles contend in strict FIFO order.
type Resource struct {
	env   *Env
	cap   int
	inUse int
	// waitQ[qHead:] is the FIFO of queued claimants. Popping advances
	// qHead instead of reslicing, and enqueue compacts the consumed
	// prefix back to the front once the backing array fills, so a
	// steady-state contention workload (the multi-tenant shared queues)
	// enqueues with zero allocations after warm-up.
	waitQ []rwaiter
	qHead int
	// peak tracks the maximum simultaneous utilization, handy for
	// asserting contention in tests.
	peak int
	// Queueing-delay accounting: total virtual seconds claimants spent
	// queued and the number of grants (immediate grants count with zero
	// wait). Pure bookkeeping — no events are scheduled for it — so
	// enabling multi-tenant contention reports cannot perturb event
	// order.
	waitTotal float64
	grants    int64
}

// rwaiter is one queued claimant: a parked process or a grant callback,
// stamped with its enqueue time for queueing-delay accounting. g is
// non-nil for cancellable requests (RequestCancellable).
type rwaiter struct {
	p    *Proc
	fn   func()
	enqT float64
	g    *Grant
}

// NewResource returns a resource with the given capacity (>= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("des: resource capacity must be >= 1")
	}
	return &Resource{env: env, cap: capacity}
}

// take claims a free slot; returns false when at capacity.
func (r *Resource) take() bool {
	if r.inUse >= r.cap {
		return false
	}
	r.inUse++
	if r.inUse > r.peak {
		r.peak = r.inUse
	}
	r.grants++
	return true
}

// enqueue appends a claimant, reusing the consumed front of the backing
// array before growing it.
func (r *Resource) enqueue(w rwaiter) {
	if r.qHead > 0 && len(r.waitQ) == cap(r.waitQ) {
		n := copy(r.waitQ, r.waitQ[r.qHead:])
		tail := r.waitQ[n:]
		for i := range tail {
			tail[i] = rwaiter{} // release claimant references
		}
		r.waitQ = r.waitQ[:n]
		r.qHead = 0
	}
	r.waitQ = append(r.waitQ, w)
}

// dequeue removes and returns the longest-waiting claimant.
func (r *Resource) dequeue() rwaiter {
	next := r.waitQ[r.qHead]
	r.waitQ[r.qHead] = rwaiter{}
	r.qHead++
	if r.qHead == len(r.waitQ) {
		r.waitQ = r.waitQ[:0]
		r.qHead = 0
	}
	return next
}

// Acquire blocks the calling process until a slot is free, FIFO order.
func (r *Resource) Acquire(p *Proc) {
	if r.take() {
		return
	}
	r.enqueue(rwaiter{p: p, enqT: r.env.now})
	p.park()
}

// Request invokes fn holding a slot: synchronously if one is free (as
// Acquire returns immediately), otherwise when the slot is granted, in
// FIFO order with any parked processes. The flat counterpart of Acquire;
// reuse one fn closure across calls to keep the hot path allocation-free.
func (r *Resource) Request(fn func()) {
	if r.take() {
		fn()
		return
	}
	r.enqueue(rwaiter{fn: fn, enqT: r.env.now})
}

// Release frees one slot, waking the longest-waiting claimant if any.
// The slot transfers directly to the woken claimant, preserving FIFO
// fairness (no barging). Cancelled claimants (Grant.Cancel) are dropped
// silently on the way: they count neither as grants nor toward the
// queueing-delay totals, and a release that finds only cancelled
// claimants frees the slot as if the queue were empty.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("des: release of idle resource")
	}
	for len(r.waitQ) > r.qHead {
		next := r.dequeue()
		if next.g != nil && next.g.cancelled {
			continue // claimant withdrew while queued
		}
		r.waitTotal += r.env.now - next.enqT
		r.grants++
		if next.g != nil {
			next.g.granted = true
		}
		// inUse stays the same: the slot moves to next.
		if next.p != nil {
			r.env.resume(r.env.now, next.p, nil)
		} else {
			r.env.Schedule(r.env.now, next.fn)
		}
		return
	}
	r.inUse--
}

// Grant is the cancellation handle of RequestCancellable: the claimant
// side of an interruptible queue entry (a checkpoint write whose node
// crashes while queued on the shared service slots). Cancel withdraws
// the claimant while it is still queued; once the slot is granted the
// handle is inert and the holder must Release as usual.
type Grant struct {
	granted   bool
	cancelled bool
}

// Granted reports whether the slot was handed to the claimant (its fn
// ran or is scheduled to run).
func (g *Grant) Granted() bool { return g.granted }

// Cancel withdraws a still-queued claimant, reporting whether it
// actually withdrew (false once granted or already cancelled). A
// withdrawn claimant's fn never runs and its wait never counts in the
// queueing-delay accounting.
func (g *Grant) Cancel() bool {
	if g.granted || g.cancelled {
		return false
	}
	g.cancelled = true
	return true
}

// RequestCancellable is Request with a cancellation handle: fn runs
// holding a slot — synchronously if one is free, otherwise when granted
// in FIFO order — unless the returned Grant is cancelled while still
// queued. Event order is identical to Request for uncancelled grants.
func (r *Resource) RequestCancellable(fn func()) *Grant {
	g := &Grant{}
	if r.take() {
		g.granted = true
		fn()
		return g
	}
	r.enqueue(rwaiter{fn: fn, enqT: r.env.now, g: g})
	return g
}

// Use acquires the resource, holds it for d virtual seconds, and releases.
func (r *Resource) Use(p *Proc, d float64) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// UseFor is the flat counterpart of Use: hold a slot for d virtual
// seconds, then release and invoke then. Convenient for one-off timed
// holds; hot loops should instead cache a Request grant closure that
// calls After/Release itself, which schedules with zero allocations.
func (r *Resource) UseFor(d float64, then func()) {
	r.Request(func() {
		r.env.After(d, func() {
			r.Release()
			then()
		})
	})
}

// InUse reports current utilization; Cap the capacity; Waiting the queue
// length (including claimants cancelled but not yet drained by a
// Release); Peak the maximum utilization observed.
func (r *Resource) InUse() int   { return r.inUse }
func (r *Resource) Cap() int     { return r.cap }
func (r *Resource) Waiting() int { return len(r.waitQ) - r.qHead }
func (r *Resource) Peak() int    { return r.peak }

// Grants reports how many slot grants have occurred (immediate and
// queued alike).
func (r *Resource) Grants() int64 { return r.grants }

// TotalWaitS reports the cumulative virtual seconds claimants spent in
// the wait queue before being granted a slot.
func (r *Resource) TotalWaitS() float64 { return r.waitTotal }

// AvgWaitS reports the mean queueing delay per grant — the observable
// the multi-tenant contention reports use to show a shared backend
// saturating. Zero when nothing has been granted.
func (r *Resource) AvgWaitS() float64 {
	if r.grants == 0 {
		return 0
	}
	return r.waitTotal / float64(r.grants)
}
