package des

import (
	"errors"
	"strings"
	"testing"
)

// A runaway self-rescheduling event must be cut off at the event budget
// with a structured, diagnosable error instead of looping forever.
func TestGuardEventBudget(t *testing.T) {
	env := NewEnv()
	env.SetGuard(Guard{MaxEvents: 100})
	var fired int
	var loop func()
	loop = func() {
		fired++
		env.After(0.001, loop) // perpetual: never drains on its own
	}
	env.After(0, loop)
	env.Run()

	err := env.Err()
	if err == nil {
		t.Fatal("runaway loop ran to completion under a 100-event budget")
	}
	var be *BudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("Err() = %T (%v), want *BudgetExceeded", err, err)
	}
	if be.ByHorizon {
		t.Fatalf("tripped by horizon, want event budget: %v", be)
	}
	if be.Events != 100 || fired != 100 {
		t.Fatalf("executed %d events (callback fired %d), want exactly 100", be.Events, fired)
	}
	if env.Pending() == 0 {
		t.Fatal("queue was discarded; a tripped guard must preserve it for diagnosis")
	}
	if !strings.Contains(err.Error(), "event budget exceeded") {
		t.Fatalf("undiagnosable message: %q", err)
	}
}

// Events scheduled past the guard horizon abort the run; RunUntil's own
// horizon argument still pauses silently.
func TestGuardVirtualTimeHorizon(t *testing.T) {
	env := NewEnv()
	env.SetGuard(Guard{HorizonS: 10})
	var ran int
	env.At(1, func() { ran++ })
	env.At(5, func() { ran++ })
	env.At(50, func() { ran++ }) // past the guard horizon

	env.Run()
	var be *BudgetExceeded
	if !errors.As(env.Err(), &be) {
		t.Fatalf("Err() = %v, want *BudgetExceeded", env.Err())
	}
	if !be.ByHorizon || be.NextT != 50 {
		t.Fatalf("trip = %+v, want horizon trip at next event t=50", be)
	}
	if ran != 2 {
		t.Fatalf("%d events ran, want the 2 inside the horizon", ran)
	}
	if now := env.Now(); now != 5 {
		t.Fatalf("clock at %v, want 5 (the last in-horizon event)", now)
	}
}

// The zero-value guard imposes no limits and records no error, and
// SetGuard(Guard{}) removes a previously installed one.
func TestGuardDisabled(t *testing.T) {
	env := NewEnv()
	var ran int
	for i := 0; i < 1000; i++ {
		env.At(float64(i), func() { ran++ })
	}
	env.Run()
	if env.Err() != nil || ran != 1000 {
		t.Fatalf("unguarded run: ran=%d err=%v", ran, env.Err())
	}

	env2 := NewEnv()
	env2.SetGuard(Guard{MaxEvents: 1})
	env2.SetGuard(Guard{}) // removed before running
	env2.At(0, func() { ran++ })
	env2.At(1, func() { ran++ })
	env2.Run()
	if env2.Err() != nil {
		t.Fatalf("removed guard still tripped: %v", env2.Err())
	}
	if got := env2.Executed(); got != 2 {
		t.Fatalf("Executed() = %d, want 2", got)
	}
}

// Guarded and unguarded runs of the same workload execute the identical
// event sequence — the guardrail must be zero-cost in behavior.
func TestGuardHealthyRunIdentical(t *testing.T) {
	run := func(guard bool) []float64 {
		env := NewEnv()
		if guard {
			env.SetGuard(Guard{MaxEvents: 1 << 30, HorizonS: 1e9})
		}
		var trace []float64
		var n int
		var tick func()
		tick = func() {
			trace = append(trace, env.Now())
			if n++; n < 50 {
				env.After(0.5, tick)
			}
		}
		env.After(0, tick)
		env.Run()
		if env.Err() != nil {
			t.Fatalf("healthy run tripped: %v", env.Err())
		}
		return trace
	}
	plain, guarded := run(false), run(true)
	if len(plain) != len(guarded) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(guarded))
	}
	for i := range plain {
		if plain[i] != guarded[i] {
			t.Fatalf("event %d at t=%v (plain) vs t=%v (guarded)", i, plain[i], guarded[i])
		}
	}
}

// BenchmarkGuardedTick is BenchmarkCallbackTick with a (never-tripping)
// guard armed: the same cached self-rescheduling closure, plus the one
// budget branch per executed event. The guard=off/on delta recorded in
// BENCH_DES.json comes from this pair.
func BenchmarkGuardedTick(b *testing.B) {
	env := NewEnv()
	env.SetGuard(Guard{MaxEvents: 1 << 60})
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			env.After(1, tick)
		}
	}
	env.At(0, tick)
	b.ResetTimer()
	env.Run()
}
