package des

import (
	"math/rand"
	"testing"
)

// --- callback fast path semantics ---

func TestAtRunsFlat(t *testing.T) {
	env := NewEnv()
	var got []float64
	env.At(2, func() { got = append(got, env.Now()) })
	env.At(1, func() { got = append(got, env.Now()) })
	env.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("At firing order/time = %v", got)
	}
}

func TestOnTriggerBeforeTrigger(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var got any
	var at float64 = -1
	ev.OnTrigger(func(v any) { got, at = v, env.Now() })
	env.At(4, func() { ev.Trigger("payload") })
	env.Run()
	if got != "payload" || at != 4 {
		t.Fatalf("OnTrigger got %v at t=%v, want payload at 4", got, at)
	}
}

func TestOnTriggerAfterTriggerIsSynchronous(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	ev.Trigger(42)
	called := false
	ev.OnTrigger(func(v any) {
		if v != 42 {
			t.Errorf("value = %v", v)
		}
		called = true
	})
	if !called {
		t.Fatal("OnTrigger on a triggered event did not run synchronously")
	}
}

func TestTriggerInterleavesProcsAndCallbacks(t *testing.T) {
	// Mixed subscribers must fire in subscription order, exactly like
	// all-proc waiters did.
	env := NewEnv()
	ev := NewEvent(env)
	var order []string
	env.Spawn("a", func(p *Proc) { p.Wait(ev); order = append(order, "proc-a") })
	env.Schedule(0, func() { ev.OnTrigger(func(any) { order = append(order, "cb-b") }) })
	env.Spawn("c", func(p *Proc) { p.Wait(ev); order = append(order, "proc-c") })
	env.At(1, func() { ev.Trigger(nil) })
	env.Run()
	want := []string{"proc-a", "cb-b", "proc-c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFuture(t *testing.T) {
	env := NewEnv()
	f := NewFuture(env)
	if f.Done() {
		t.Fatal("new future reports done")
	}
	var got any
	f.Then(func(v any) { got = v })
	env.At(3, func() { f.Complete("x") })
	env.Run()
	if !f.Done() || f.Value() != "x" || got != "x" {
		t.Fatalf("future done=%v value=%v delivered=%v", f.Done(), f.Value(), got)
	}
}

func TestFutureEventBridgesToProcs(t *testing.T) {
	env := NewEnv()
	f := NewFuture(env)
	var got any
	env.Spawn("w", func(p *Proc) { got = p.Wait(f.Event()) })
	env.At(2, func() { f.Complete(7) })
	env.Run()
	if got != 7 {
		t.Fatalf("proc waiting on future got %v", got)
	}
}

func TestAwaitAll(t *testing.T) {
	env := NewEnv()
	evs := []*Event{NewEvent(env), NewEvent(env), NewEvent(env)}
	var at float64 = -1
	AwaitAll(func() { at = env.Now() }, evs...)
	env.At(5, func() { evs[1].Trigger(nil) })
	env.At(2, func() { evs[0].Trigger(nil) })
	env.At(9, func() { evs[2].Trigger(nil) })
	env.Run()
	if at != 9 {
		t.Fatalf("AwaitAll completed at %v, want 9 (slowest)", at)
	}
}

func TestAwaitAllEmptyAndTriggered(t *testing.T) {
	env := NewEnv()
	done := false
	AwaitAll(func() { done = true })
	if !done {
		t.Fatal("AwaitAll with no events did not complete synchronously")
	}
	ev := NewEvent(env)
	ev.Trigger(nil)
	done = false
	AwaitAll(func() { done = true }, ev)
	if !done {
		t.Fatal("AwaitAll with all-triggered events did not complete synchronously")
	}
}

func TestResourceRequestInterleavesWithProcs(t *testing.T) {
	// Callback claimants and process claimants share one FIFO queue.
	env := NewEnv()
	res := NewResource(env, 1)
	var order []string
	env.Spawn("p1", func(p *Proc) { res.Use(p, 2); order = append(order, "p1") })
	env.Schedule(0, func() {
		res.UseFor(2, func() { order = append(order, "cb") })
	})
	env.Spawn("p2", func(p *Proc) { res.Use(p, 2); order = append(order, "p2") })
	env.Run()
	want := []string{"p1", "cb", "p2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
	if env.Now() != 6 {
		t.Fatalf("final time = %v, want 6 (serialized holds)", env.Now())
	}
}

func TestResourceRequestSynchronousWhenFree(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	called := false
	res.Request(func() { called = true })
	if !called {
		t.Fatal("Request on a free resource did not grant synchronously")
	}
	if res.InUse() != 1 {
		t.Fatalf("inUse = %d after grant", res.InUse())
	}
	res.Release()
}

func TestStoreOnNext(t *testing.T) {
	env := NewEnv()
	st := NewStore(env)
	var got []any
	st.OnNext(func(v any) { got = append(got, v) }) // parked
	env.At(1, func() { st.Put("a") })
	env.Run()
	st.Put("b")
	st.OnNext(func(v any) { got = append(got, v) }) // synchronous
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("OnNext delivered %v", got)
	}
}

// TestFlatMatchesProcSemantics runs the same randomized
// resource-contention workload twice — once with processes, once with
// flat callbacks — and requires identical completion traces. This is
// the engine-level determinism regression for the callback fast path:
// the CPS transform of a process body must replay its event order.
func TestFlatMatchesProcSemantics(t *testing.T) {
	type job struct{ start, hold float64 }
	makeJobs := func(seed int64) []job {
		rng := rand.New(rand.NewSource(seed))
		jobs := make([]job, 60)
		for i := range jobs {
			jobs[i] = job{start: rng.Float64() * 10, hold: rng.Float64()}
		}
		return jobs
	}
	runProcs := func(jobs []job) []float64 {
		env := NewEnv()
		res := NewResource(env, 2)
		var trace []float64
		for _, j := range jobs {
			j := j
			env.SpawnAt(j.start, "job", func(p *Proc) {
				res.Use(p, j.hold)
				trace = append(trace, p.Now())
			})
		}
		env.Run()
		return trace
	}
	runFlat := func(jobs []job) []float64 {
		env := NewEnv()
		res := NewResource(env, 2)
		var trace []float64
		for _, j := range jobs {
			j := j
			env.At(j.start, func() {
				res.UseFor(j.hold, func() { trace = append(trace, env.Now()) })
			})
		}
		env.Run()
		return trace
	}
	for seed := int64(1); seed <= 5; seed++ {
		jobs := makeJobs(seed)
		a, b := runProcs(jobs), runFlat(jobs)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestFlatDeterminismAcrossRuns: identical seeded callback workloads
// must produce identical traces run-to-run.
func TestFlatDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		res := NewResource(env, 3)
		var trace []float64
		for i := 0; i < 80; i++ {
			start, hold := rng.Float64()*20, rng.Float64()
			env.At(start, func() {
				res.UseFor(hold, func() { trace = append(trace, env.Now()) })
			})
		}
		env.Run()
		return trace
	}
	a, b := run(13), run(13)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("callback traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// --- hot path microbenchmarks ---

// BenchmarkSpawnSleep measures the legacy process path: one goroutine
// per process, one channel-handoff pair per sleep.
func BenchmarkSpawnSleep(b *testing.B) {
	env := NewEnv()
	env.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	env.Run()
}

// BenchmarkCallbackTick measures the flat counterpart of SpawnSleep: a
// cached closure rescheduling itself. This is the engine's true hot
// path and should be allocation-free.
func BenchmarkCallbackTick(b *testing.B) {
	env := NewEnv()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			env.After(1, tick)
		}
	}
	env.At(0, tick)
	b.ResetTimer()
	env.Run()
}

// BenchmarkEventTrigger measures trigger+callback delivery with one
// subscriber per event.
func BenchmarkEventTrigger(b *testing.B) {
	env := NewEnv()
	sink := func(any) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := NewEvent(env)
		ev.OnTrigger(sink)
		ev.Trigger(nil)
		env.Run()
	}
}

// BenchmarkScheduleDrain measures raw heap push/pop throughput: 1024
// events scheduled at scattered times, then drained.
func BenchmarkScheduleDrain(b *testing.B) {
	fn := func() {}
	for i := 0; i < b.N; i++ {
		env := NewEnv()
		for j := 0; j < 1024; j++ {
			env.Schedule(float64(j%31), fn)
		}
		env.Run()
	}
}

func TestResourceQueueReusesStorage(t *testing.T) {
	// The wait queue must reach a steady state with no per-grant
	// allocations: claimants recycle the consumed front of the backing
	// array (enqueue/dequeue) instead of growing it. This is the
	// multi-tenant shared-queue hot path. Each claimant caches its two
	// closures up front, per the package's reuse discipline.
	env := NewEnv()
	res := NewResource(env, 1)
	grants := 0
	type claimant struct{ grant, cycle func() }
	for i := 0; i < 8; i++ {
		c := &claimant{}
		c.cycle = func() { res.Release(); res.Request(c.grant) }
		c.grant = func() { grants++; env.After(1, c.cycle) }
		res.Request(c.grant)
	}
	env.RunUntil(64) // warm the event heap and the wait-queue array
	allocs := testing.AllocsPerRun(20, func() { env.RunUntil(env.Now() + 64) })
	if allocs > 0 {
		t.Fatalf("steady-state queue churn allocates %.1f allocs/run, want 0 (grants=%d, waiting=%d)",
			allocs, grants, res.Waiting())
	}
	if grants == 0 || res.Waiting() != 7 {
		t.Fatalf("bad accounting: grants=%d waiting=%d", grants, res.Waiting())
	}
}
