package des

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based coverage of the engine's core invariant: the flat
// 4-ary event heap pops records in strictly increasing (time, seq)
// order, and every scheduled event fires exactly once. The generator
// builds randomized schedules — including events that schedule more
// events from inside their own callbacks, the shape every rank machine
// in this repo has — across 1k seeds; FuzzHeapOrder feeds the same
// checker from arbitrary byte strings so `go test -fuzz` can walk the
// heap into corners the seeded generator never reaches.

// firing is one observed event execution.
type firing struct {
	t   float64
	id  int
	now float64 // Env.Now() inside the callback
}

// runSchedule schedules events at the given offsets (each a delay from
// time zero; negative values are clamped to zero), with every chainEvery-th
// event rescheduling a follow-up from inside its callback. It returns
// the firings in execution order.
func runSchedule(t *testing.T, offsets []float64, chainEvery int) []firing {
	t.Helper()
	env := NewEnv()
	var fired []firing
	id := 0
	var add func(at float64)
	add = func(at float64) {
		myID := id
		id++
		chain := chainEvery > 0 && myID%chainEvery == chainEvery-1
		env.Schedule(at, func() {
			fired = append(fired, firing{t: at, id: myID, now: env.Now()})
			if chain && len(fired) < 4*len(offsets) {
				// Schedule a follow-up strictly from "now", as every
				// periodic rank machine does.
				add(env.Now() + math.Abs(at-math.Floor(at)) + 0.25)
			}
		})
	}
	for _, off := range offsets {
		if off < 0 {
			off = 0
		}
		add(off)
	}
	env.Run()
	scheduled := id // includes follow-ups chained during the run
	if env.Pending() != 0 {
		t.Fatalf("run left %d events pending", env.Pending())
	}
	if len(fired) != scheduled {
		t.Fatalf("scheduled %d events, fired %d (lost or duplicated)", scheduled, len(fired))
	}
	return fired
}

// checkMonotone asserts the heap-order invariant over an execution:
// firing times never decrease, equal-time firings run in schedule (id)
// order when both were scheduled from outside callbacks at the same
// time, and the clock the callbacks observe matches their schedule time.
func checkMonotone(t *testing.T, fired []firing) {
	t.Helper()
	seen := map[int]int{}
	for i, f := range fired {
		seen[f.id]++
		if f.now != f.t {
			t.Fatalf("firing %d: callback observed Now()=%v, scheduled at %v", i, f.now, f.t)
		}
		if i == 0 {
			continue
		}
		prev := fired[i-1]
		if f.t < prev.t {
			t.Fatalf("firing %d: time went backwards (%v after %v)", i, f.t, prev.t)
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("event %d fired %d times", id, n)
		}
	}
}

// TestHeapOrderRandomSchedules is the 1k-seed property test: randomized
// schedules (uniform, clustered-tie, and chained shapes) must fire every
// event exactly once in monotone time order.
func TestHeapOrderRandomSchedules(t *testing.T) {
	for seed := int64(0); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		offsets := make([]float64, n)
		for i := range offsets {
			switch rng.Intn(3) {
			case 0: // uniform spread
				offsets[i] = rng.Float64() * 100
			case 1: // heavy ties: small integer grid
				offsets[i] = float64(rng.Intn(8))
			default: // clustered near one instant
				offsets[i] = 50 + rng.Float64()*1e-9
			}
		}
		chain := 0
		if rng.Intn(2) == 0 {
			chain = 1 + rng.Intn(5)
		}
		checkMonotone(t, runSchedule(t, offsets, chain))
	}
}

// TestHeapTieOrderIsScheduleOrder pins the tie-break: events scheduled
// at one identical time fire in exactly the order they were scheduled.
func TestHeapTieOrderIsScheduleOrder(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		n := 2 + rng.Intn(40)
		offsets := make([]float64, n)
		at := rng.Float64() * 10
		for i := range offsets {
			offsets[i] = at
		}
		fired := runSchedule(t, offsets, 0)
		for i, f := range fired {
			if f.id != i {
				t.Fatalf("seed %d: tie firing %d has id %d (want schedule order)", seed, i, f.id)
			}
		}
	}
}

// TestHoldCancelDoesNotPerturbOrder checks the Hold contract: arming,
// cancelling and re-arming holds interleaved with plain events leaves
// the surviving events' order and count intact.
func TestHoldCancelDoesNotPerturbOrder(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x401d))
		env := NewEnv()
		var fired []float64
		plain := 1 + rng.Intn(20)
		for i := 0; i < plain; i++ {
			at := rng.Float64() * 20
			env.Schedule(at, func() { fired = append(fired, at) })
		}
		holds := make([]*Hold, 1+rng.Intn(8))
		holdFired := 0
		for i := range holds {
			holds[i] = NewHold(env, func() { holdFired++ })
			holds[i].After(rng.Float64() * 20)
		}
		cancelled := 0
		for _, h := range holds {
			if rng.Intn(2) == 0 {
				h.Cancel()
				cancelled++
				if rng.Intn(2) == 0 {
					h.After(rng.Float64() * 20) // re-arm after cancel
					cancelled--
				}
			}
		}
		env.Run()
		if holdFired != len(holds)-cancelled {
			t.Fatalf("seed %d: %d holds armed, %d cancelled, fired %d",
				seed, len(holds), cancelled, holdFired)
		}
		if len(fired) != plain {
			t.Fatalf("seed %d: cancellation perturbed plain events: %d of %d fired",
				seed, len(fired), plain)
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("seed %d: plain events out of order", seed)
			}
		}
	}
}

// TestGrantCancelPreservesFIFO checks the cancellable-grant contract:
// cancelled claimants vanish from the FIFO without consuming a grant or
// skewing the wait accounting of the survivors.
func TestGrantCancelPreservesFIFO(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x9a27))
		env := NewEnv()
		r := NewResource(env, 1)
		var order []int
		// Holder keeps the slot busy until t=10.
		r.Request(func() { env.Schedule(10, r.Release) })
		n := 2 + rng.Intn(10)
		grants := make([]*Grant, n)
		cancel := map[int]bool{}
		for i := 0; i < n; i++ {
			i := i
			grants[i] = r.RequestCancellable(func() {
				order = append(order, i)
				env.Schedule(env.Now()+1, r.Release)
			})
			if rng.Intn(3) == 0 {
				cancel[i] = true
			}
		}
		for i := range cancel {
			if !grants[i].Cancel() {
				t.Fatalf("seed %d: queued grant %d refused Cancel", seed, i)
			}
			if grants[i].Cancel() {
				t.Fatalf("seed %d: grant %d cancelled twice", seed, i)
			}
		}
		env.Run()
		want := 0
		for i := 0; i < n; i++ {
			if cancel[i] {
				if grants[i].Granted() {
					t.Fatalf("seed %d: cancelled grant %d was granted", seed, i)
				}
				continue
			}
			if !grants[i].Granted() {
				t.Fatalf("seed %d: surviving grant %d never granted", seed, i)
			}
			if want >= len(order) || order[want] != i {
				t.Fatalf("seed %d: FIFO broken: got %v", seed, order)
			}
			want++
		}
		if len(order) != want {
			t.Fatalf("seed %d: %d grants ran, want %d", seed, len(order), want)
		}
	}
}

// FuzzHeapOrder drives the heap-order checker from arbitrary bytes:
// each 2-byte group becomes one event offset (coarse 0-255 grid plus a
// fine fraction, maximizing tie pressure), and the final byte selects
// the chaining density. CI runs this as a 30 s smoke
// (`go test -fuzz=FuzzHeapOrder -fuzztime=30s ./internal/des`).
func FuzzHeapOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add([]byte{255, 1, 255, 2, 255, 3, 0})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		chain := 0
		if len(data) > 0 {
			chain = int(data[len(data)-1]) % 6
			data = data[:len(data)-1]
		}
		var offsets []float64
		for i := 0; i+1 < len(data); i += 2 {
			offsets = append(offsets, float64(data[i])+float64(data[i+1])/256)
		}
		if len(offsets) == 0 {
			return
		}
		checkMonotone(t, runSchedule(t, offsets, chain))
	})
}
