package des

// Hold is a cancellable scheduled callback: the interruptible
// counterpart of Env.After for state machines that a fault can tear
// down mid-wait (a rank's next wake-up, a checkpoint cadence timer, a
// repair deadline). A Hold owns at most one pending occurrence at a
// time; Cancel orphans the pending occurrence without touching the
// event heap — the record still pops at its scheduled time, sees a
// stale generation, and falls through without running the callback.
// Armed/fired/cancelled occurrences all keep the (time, seq) order of
// every other event untouched, so adding cancellation to a schedule
// cannot perturb the events around it.
//
// Like the flat transfer objects, a Hold is allocated once (NewHold
// builds its closure) and re-armed for free: arming pushes one value
// record, and the generation payload is a small boxed int.
type Hold struct {
	env *Env
	fn  func()
	// gen stamps each arming; Cancel bumps it so the pending record's
	// stale stamp no longer matches.
	gen   int
	armed bool
	check func(any)
}

// NewHold returns an unarmed hold that runs fn when a pending arming
// fires uncancelled.
func NewHold(env *Env, fn func()) *Hold {
	h := &Hold{env: env, fn: fn}
	h.check = func(v any) {
		if v.(int) != h.gen {
			return // cancelled (or superseded) arming
		}
		h.armed = false
		h.fn()
	}
	return h
}

// At arms the hold to fire at absolute virtual time t (>= Now). Arming
// an already-armed hold cancels the pending occurrence first, so a hold
// never fires twice for one arming sequence.
func (h *Hold) At(t float64) {
	if h.armed {
		h.gen++
	}
	h.armed = true
	h.env.call(t, h.check, h.gen)
}

// After arms the hold to fire d seconds from now.
func (h *Hold) After(d float64) { h.At(h.env.now + d) }

// Cancel orphans the pending occurrence, if any. Safe to call when the
// hold is idle.
func (h *Hold) Cancel() {
	if h.armed {
		h.gen++
		h.armed = false
	}
}

// Armed reports whether an uncancelled occurrence is pending.
func (h *Hold) Armed() bool { return h.armed }
