package des

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	env := NewEnv()
	if env.Now() != 0 {
		t.Fatalf("new env clock = %v, want 0", env.Now())
	}
}

func TestScheduleOrdering(t *testing.T) {
	env := NewEnv()
	var got []float64
	for _, d := range []float64{3, 1, 2, 1.5} {
		d := d
		env.Schedule(d, func() { got = append(got, d) })
	}
	env.Run()
	want := []float64{1, 1.5, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySequence(t *testing.T) {
	env := NewEnv()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		env.Schedule(5, func() { got = append(got, i) })
	}
	env.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of schedule order: %v", got)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	env := NewEnv()
	env.Schedule(10, func() {})
	env.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	env.Schedule(5, func() {})
}

func TestProcessSleep(t *testing.T) {
	env := NewEnv()
	var wake []float64
	env.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(2.5)
			wake = append(wake, p.Now())
		}
	})
	end := env.Run()
	if len(wake) != 3 {
		t.Fatalf("got %d wakeups, want 3", len(wake))
	}
	want := []float64{2.5, 5.0, 7.5}
	for i := range want {
		if wake[i] != want[i] {
			t.Fatalf("wake times = %v, want %v", wake, want)
		}
	}
	if end != 7.5 {
		t.Fatalf("final time = %v, want 7.5", end)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	env := NewEnv()
	panicked := false
	env.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(-1)
	})
	env.Run()
	if !panicked {
		t.Fatal("negative sleep did not panic")
	}
}

func TestZeroSleepYields(t *testing.T) {
	// A zero-length sleep must still yield so that other same-time
	// events run in schedule order.
	env := NewEnv()
	var order []string
	env.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	env.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	env.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEventWaitBeforeTrigger(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var got any
	var at float64
	env.Spawn("waiter", func(p *Proc) {
		got = p.Wait(ev)
		at = p.Now()
	})
	env.Spawn("trigger", func(p *Proc) {
		p.Sleep(4)
		ev.Trigger("payload")
	})
	env.Run()
	if got != "payload" || at != 4 {
		t.Fatalf("wait returned %v at t=%v, want payload at t=4", got, at)
	}
}

func TestEventWaitAfterTrigger(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	var at float64 = -1
	env.Spawn("trigger", func(p *Proc) { ev.Trigger(42) })
	env.SpawnAt(3, "late", func(p *Proc) {
		if v := p.Wait(ev); v != 42 {
			t.Errorf("late wait got %v, want 42", v)
		}
		at = p.Now()
	})
	env.Run()
	if at != 3 {
		t.Fatalf("late waiter resumed at %v, want 3 (no extra delay)", at)
	}
}

func TestEventMultipleWaiters(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	woken := 0
	for i := 0; i < 5; i++ {
		env.Spawn("w", func(p *Proc) {
			p.Wait(ev)
			woken++
		})
	}
	env.SpawnAt(1, "t", func(p *Proc) { ev.Trigger(nil) })
	env.Run()
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestEventDoubleTriggerPanics(t *testing.T) {
	env := NewEnv()
	ev := NewEvent(env)
	ev.Trigger(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double trigger did not panic")
		}
	}()
	ev.Trigger(nil)
}

func TestProcDoneEvent(t *testing.T) {
	env := NewEnv()
	var doneAt float64
	worker := env.Spawn("worker", func(p *Proc) { p.Sleep(7) })
	env.Spawn("joiner", func(p *Proc) {
		p.Wait(worker.Done())
		doneAt = p.Now()
	})
	env.Run()
	if doneAt != 7 {
		t.Fatalf("join time = %v, want 7", doneAt)
	}
}

func TestWaitAll(t *testing.T) {
	env := NewEnv()
	var procs []*Proc
	for i := 1; i <= 4; i++ {
		d := float64(i)
		procs = append(procs, env.Spawn("w", func(p *Proc) { p.Sleep(d) }))
	}
	var at float64
	env.Spawn("join", func(p *Proc) {
		p.WaitAll(procs[0].Done(), procs[1].Done(), procs[2].Done(), procs[3].Done())
		at = p.Now()
	})
	env.Run()
	if at != 4 {
		t.Fatalf("WaitAll finished at %v, want 4 (slowest)", at)
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	var finish []float64
	for i := 0; i < 3; i++ {
		env.Spawn("u", func(p *Proc) {
			res.Use(p, 2)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	want := []float64{2, 4, 6}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times = %v, want %v (capacity-1 serialization)", finish, want)
		}
	}
	if res.Peak() != 1 {
		t.Fatalf("peak = %d, want 1", res.Peak())
	}
}

func TestResourceParallelism(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 3)
	var finish []float64
	for i := 0; i < 6; i++ {
		env.Spawn("u", func(p *Proc) {
			res.Use(p, 5)
			finish = append(finish, p.Now())
		})
	}
	env.Run()
	// 6 jobs of 5s on 3 slots: 3 finish at 5, 3 at 10.
	sort.Float64s(finish)
	want := []float64{5, 5, 5, 10, 10, 10}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish times = %v, want %v", finish, want)
		}
	}
	if res.Peak() != 3 {
		t.Fatalf("peak = %d, want 3", res.Peak())
	}
}

func TestResourceFIFO(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.SpawnAt(float64(i)*0.1, "u", func(p *Proc) {
			res.Acquire(p)
			order = append(order, i)
			p.Sleep(1)
			res.Release()
		})
	}
	env.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("acquisition order = %v, want FIFO", order)
		}
	}
}

func TestResourceWaitAccounting(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	// Three 2s holds requested at t=0: waits are 0, 2 and 4 seconds.
	for i := 0; i < 3; i++ {
		env.Spawn("u", func(p *Proc) { res.Use(p, 2) })
	}
	env.Run()
	if res.Grants() != 3 {
		t.Fatalf("grants = %d, want 3", res.Grants())
	}
	if res.TotalWaitS() != 6 {
		t.Fatalf("total wait = %v, want 6 (0+2+4)", res.TotalWaitS())
	}
	if res.AvgWaitS() != 2 {
		t.Fatalf("avg wait = %v, want 2", res.AvgWaitS())
	}
}

func TestResourceWaitAccountingUncontended(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 2)
	env.Spawn("a", func(p *Proc) { res.Use(p, 1) })
	env.SpawnAt(5, "b", func(p *Proc) { res.Use(p, 1) })
	env.Run()
	if res.Grants() != 2 || res.TotalWaitS() != 0 || res.AvgWaitS() != 0 {
		t.Fatalf("uncontended: grants=%d wait=%v avg=%v, want 2/0/0",
			res.Grants(), res.TotalWaitS(), res.AvgWaitS())
	}
}

func TestResourceWaitAccountingFlatRequests(t *testing.T) {
	// The flat callback path (Request) shares the accounting with
	// Acquire: two immediate grants, one queued 3s.
	env := NewEnv()
	res := NewResource(env, 2)
	hold := func() { env.After(3, res.Release) }
	res.Request(hold)
	res.Request(hold)
	res.Request(hold)
	env.Run()
	if res.Grants() != 3 {
		t.Fatalf("grants = %d, want 3", res.Grants())
	}
	if res.TotalWaitS() != 3 {
		t.Fatalf("total wait = %v, want 3", res.TotalWaitS())
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	res.Release()
}

func TestResourceBadCapacityPanics(t *testing.T) {
	env := NewEnv()
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewResource(env, 0)
}

func TestStoreProducerConsumer(t *testing.T) {
	env := NewEnv()
	st := NewStore(env)
	var got []int
	env.Spawn("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(1)
			st.Put(i)
		}
	})
	env.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, st.Get(p).(int))
		}
	})
	env.Run()
	if len(got) != 10 {
		t.Fatalf("consumed %d items, want 10", len(got))
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("items out of order: %v", got)
		}
	}
}

func TestStoreGetBeforePut(t *testing.T) {
	env := NewEnv()
	st := NewStore(env)
	var at float64
	env.Spawn("c", func(p *Proc) {
		v := st.Get(p)
		if v != "x" {
			t.Errorf("got %v, want x", v)
		}
		at = p.Now()
	})
	env.SpawnAt(9, "p", func(p *Proc) { st.Put("x") })
	env.Run()
	if at != 9 {
		t.Fatalf("consumer resumed at %v, want 9", at)
	}
}

func TestStoreTryGet(t *testing.T) {
	env := NewEnv()
	st := NewStore(env)
	if _, ok := st.TryGet(); ok {
		t.Fatal("TryGet on empty store returned ok")
	}
	st.Put(1)
	st.Put(2)
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	v, ok := st.TryGet()
	if !ok || v != 1 {
		t.Fatalf("TryGet = %v,%v, want 1,true", v, ok)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	env := NewEnv()
	fired := 0
	env.Schedule(1, func() { fired++ })
	env.Schedule(5, func() { fired++ })
	env.Schedule(10, func() { fired++ })
	env.RunUntil(5)
	if fired != 2 {
		t.Fatalf("fired = %d at horizon 5, want 2", fired)
	}
	if env.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", env.Pending())
	}
	env.Run()
	if fired != 3 {
		t.Fatalf("fired = %d after full run, want 3", fired)
	}
}

func TestStopAndResume(t *testing.T) {
	env := NewEnv()
	var log []float64
	env.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(1)
			log = append(log, p.Now())
			if p.Now() == 3 {
				env.Stop()
			}
		}
	})
	env.Run()
	if len(log) != 3 {
		t.Fatalf("ticks before stop = %d, want 3", len(log))
	}
	env.Resume()
	if len(log) != 5 {
		t.Fatalf("ticks after resume = %d, want 5", len(log))
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	// Identical seeded workloads must produce identical traces.
	run := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv()
		res := NewResource(env, 2)
		var trace []float64
		for i := 0; i < 50; i++ {
			start := rng.Float64() * 10
			hold := rng.Float64()
			env.SpawnAt(start, "job", func(p *Proc) {
				res.Use(p, hold)
				trace = append(trace, p.Now())
			})
		}
		env.Run()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPropertySleepAccumulates(t *testing.T) {
	// Property: a process performing n sleeps of durations d_i ends at
	// sum(d_i), for arbitrary non-negative durations.
	f := func(raw []uint16) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		env := NewEnv()
		var want float64
		ds := make([]float64, len(raw))
		for i, r := range raw {
			ds[i] = float64(r) / 100.0
			want += ds[i]
		}
		var got float64
		env.Spawn("s", func(p *Proc) {
			for _, d := range ds {
				p.Sleep(d)
			}
			got = p.Now()
		})
		env.Run()
		return got == want || (len(ds) == 0 && got == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyResourceNeverExceedsCapacity(t *testing.T) {
	f := func(rawCap uint8, holds []uint8) bool {
		capacity := int(rawCap%8) + 1
		if len(holds) > 40 {
			holds = holds[:40]
		}
		env := NewEnv()
		res := NewResource(env, capacity)
		for _, h := range holds {
			d := float64(h%50) / 10
			env.Spawn("j", func(p *Proc) { res.Use(p, d) })
		}
		env.Run()
		return res.Peak() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := NewEnv()
		for j := 0; j < 1000; j++ {
			env.Schedule(float64(j%17), func() {})
		}
		env.Run()
	}
}

func BenchmarkProcessSwitch(b *testing.B) {
	env := NewEnv()
	env.Spawn("spinner", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	env.Run()
}

func TestShutdownReleasesParkedProcs(t *testing.T) {
	env := NewEnv()
	for i := 0; i < 50; i++ {
		env.Spawn("sleeper", func(p *Proc) {
			p.Sleep(1000) // far beyond the horizon
		})
	}
	ev := NewEvent(env)
	env.Spawn("waiter", func(p *Proc) { p.Wait(ev) }) // never triggered
	env.RunUntil(1)
	if env.Procs() != 51 {
		t.Fatalf("live procs before shutdown = %d, want 51", env.Procs())
	}
	env.Shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for env.Procs() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("procs after shutdown = %d, want 0", env.Procs())
		}
		runtime.Gosched()
	}
	if env.Pending() != 0 {
		t.Fatalf("events after shutdown = %d", env.Pending())
	}
}

func TestShutdownWithNeverStartedProc(t *testing.T) {
	env := NewEnv()
	env.SpawnAt(100, "late", func(p *Proc) { p.Sleep(1) })
	env.RunUntil(1) // start event still queued
	env.Shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for env.Procs() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("never-started proc survived shutdown")
		}
		runtime.Gosched()
	}
}

func TestShutdownIdempotentOnDrainedEnv(t *testing.T) {
	env := NewEnv()
	env.Spawn("quick", func(p *Proc) { p.Sleep(1) })
	env.Run()
	env.Shutdown()
	env.Shutdown()
}
