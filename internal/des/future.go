package des

// Future is a one-shot value produced later: the flat-callback
// counterpart of spawning a process and waiting on its Done event.
// Complete delivers the value; Then subscribes a callback. It is a thin
// veneer over Event with future-shaped names, so leaf operations that
// produce a result can hand it to continuations without parking a
// goroutine.
type Future struct {
	ev Event
}

// NewFuture returns an incomplete future bound to env.
func NewFuture(env *Env) *Future {
	return &Future{ev: Event{env: env}}
}

// Complete resolves the future with v, scheduling all subscribers at the
// current virtual time. Completing twice panics.
func (f *Future) Complete(v any) { f.ev.Trigger(v) }

// Done reports whether the future has been completed.
func (f *Future) Done() bool { return f.ev.triggered }

// Value returns the completed value (nil before completion).
func (f *Future) Value() any { return f.ev.val }

// Then invokes fn with the value: synchronously if already complete,
// otherwise at completion time (subscription order).
func (f *Future) Then(fn func(v any)) { f.ev.OnTrigger(fn) }

// Event exposes the underlying event so process code can Wait on a
// future produced by callback code.
func (f *Future) Event() *Event { return &f.ev }

// AwaitAll invokes done once every event has triggered, checking them in
// order: the flat counterpart of Proc.WaitAll. It replays WaitAll's
// exact scheduling behavior — skip already-triggered events
// synchronously, subscribe to the first pending one, repeat on wake — so
// callback ports of fan-out/join code preserve event order.
func AwaitAll(done func(), evs ...*Event) {
	i := 0
	var step func(any)
	step = func(any) {
		for i < len(evs) && evs[i].triggered {
			i++
		}
		if i == len(evs) {
			done()
			return
		}
		evs[i].OnTrigger(step)
	}
	step(nil)
}
