package des

import (
	"fmt"
	"sync/atomic"
)

// Guard bounds one environment's execution: an executed-event budget and
// a virtual-time horizon that convert a runaway simulation (a
// self-perpetuating event loop, a mis-parameterized sweep cell) into a
// structured BudgetExceeded error instead of an unbounded run. The zero
// value imposes no limits and costs one predictable branch per event.
type Guard struct {
	// MaxEvents caps the number of events RunUntil may execute over the
	// environment's lifetime (0 = unlimited).
	MaxEvents int64
	// HorizonS caps virtual time: executing an event scheduled past this
	// many seconds aborts the run (0 = no horizon). Unlike RunUntil's
	// `until` argument — which silently pauses at the boundary — crossing
	// the guard horizon is an error: it means the workload scheduled work
	// beyond the time budget it promised to stay within.
	HorizonS float64
}

// enabled reports whether any limit is set.
func (g Guard) enabled() bool { return g.MaxEvents > 0 || g.HorizonS > 0 }

// BudgetExceeded is the structured error recorded on an Env whose Guard
// tripped. It carries enough to diagnose the runaway: which limit
// tripped, how far the run got, and the limits in force.
type BudgetExceeded struct {
	// Guard is the limit configuration that tripped.
	Guard Guard
	// Events is the number of events executed when the run aborted.
	Events int64
	// Now is the virtual time (seconds) when the run aborted.
	Now float64
	// NextT is the virtual time of the event that would have run next.
	NextT float64
	// ByHorizon reports which limit tripped: true for the virtual-time
	// horizon, false for the event budget.
	ByHorizon bool
}

// Error renders the trip diagnosis.
func (e *BudgetExceeded) Error() string {
	if e.ByHorizon {
		return fmt.Sprintf("des: virtual-time horizon exceeded: next event at t=%.6g is past the %.6gs guard horizon (%d events executed, now=%.6g)",
			e.NextT, e.Guard.HorizonS, e.Events, e.Now)
	}
	return fmt.Sprintf("des: event budget exceeded: %d events executed (limit %d) at t=%.6g with work still queued",
		e.Events, e.Guard.MaxEvents, e.Now)
}

// SetGuard installs (or, with a zero Guard, removes) execution limits on
// the environment and clears any previously recorded budget error. Set
// it before Run/RunUntil; a tripped run stops at the offending event,
// records the error for Err, and preserves the queue for diagnosis.
func (e *Env) SetGuard(g Guard) {
	e.guard = g
	e.guarded = g.enabled() || e.shared != nil
	e.guardErr = nil
}

// Err returns the BudgetExceeded error recorded by a guarded run that
// tripped its limits, or nil after a healthy run. Check it after
// Run/RunUntil on guarded environments: the run-loop return value alone
// cannot distinguish a drained queue from an aborted one.
func (e *Env) Err() error { return e.guardErr }

// Executed reports the total number of events executed by this
// environment across all Run/RunUntil calls.
func (e *Env) Executed() int64 { return e.executed }

// SharedGuard is one event budget enforced jointly across several
// environments — the logical processes of a partitioned LPSet run.
// Without it, a per-LP Guard.MaxEvents would multiply the budget by
// the LP count: a cell allowed 1M events sequentially could execute
// 4096M under a per-node partition. Every participating Env reserves
// from the same atomic counter before executing an event; reservation
// i executes iff i <= max, so when the budget trips, exactly max
// events have executed across the set — the same count a sequential
// Env reports in its BudgetExceeded.
type SharedGuard struct {
	max  int64
	used atomic.Int64
}

// NewSharedGuard returns a joint budget of maxEvents (> 0) to attach
// to each LP's Env via ShareGuard (or to a whole set via
// LPSet.SetSharedGuard).
func NewSharedGuard(maxEvents int64) *SharedGuard {
	if maxEvents <= 0 {
		panic(fmt.Sprintf("des: shared guard budget %d", maxEvents))
	}
	return &SharedGuard{max: maxEvents}
}

// MaxEvents returns the joint budget.
func (g *SharedGuard) MaxEvents() int64 { return g.max }

// Exceeded reports whether the joint budget has tripped.
func (g *SharedGuard) Exceeded() bool { return g.used.Load() > g.max }

// ShareGuard attaches (or with nil detaches) a joint cross-environment
// event budget, clearing any recorded budget error. It composes with
// SetGuard: a per-env Guard and a shared budget can both be armed.
func (e *Env) ShareGuard(g *SharedGuard) {
	e.shared = g
	e.guarded = e.guard.enabled() || g != nil
	e.guardErr = nil
}

// checkGuard reports whether executing the next queued event (at time
// nextT) would exceed the guard, recording the budget error if so.
func (e *Env) checkGuard(nextT float64) bool {
	if e.shared != nil && e.shared.used.Add(1) > e.shared.max {
		// Reservations beyond the joint budget never execute, so the
		// executed total across every attached env is exactly max — the
		// same Events a sequential env reports at its budget trip.
		e.guardErr = &BudgetExceeded{
			Guard: Guard{MaxEvents: e.shared.max}, Events: e.shared.max,
			Now: e.now, NextT: nextT,
		}
		return true
	}
	if e.guard.MaxEvents > 0 && e.executed >= e.guard.MaxEvents {
		e.guardErr = &BudgetExceeded{Guard: e.guard, Events: e.executed, Now: e.now, NextT: nextT}
		return true
	}
	if e.guard.HorizonS > 0 && nextT > e.guard.HorizonS {
		e.guardErr = &BudgetExceeded{Guard: e.guard, Events: e.executed, Now: e.now, NextT: nextT, ByHorizon: true}
		return true
	}
	return false
}
