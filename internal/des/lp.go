package des

import (
	"fmt"
	"math"
	"sync"
)

// Conservative parallel DES: an LPSet partitions a simulation into
// logical processes (LPs), each owning a private Env — its own 4-ary
// event heap, clock and resources — and advances them concurrently
// under a lookahead bound.
//
// Cross-LP interaction happens only through declared links (Connect),
// each carrying the minimum virtual latency of the edge it models. The
// global minimum over all links is the lookahead L, and Run executes
// LBTS-style windows: every LP drains its events in [floor, floor+L)
// in parallel (floor = the earliest pending event anywhere), then a
// barrier delivers the window's buffered cross-LP messages in canonical
// (destination, source, send-order) order. A message sent at t with
// delay >= its link latency arrives at >= floor+L, i.e. never inside
// the window that sent it, so no LP can observe an event out of
// timestamp order — the classic conservative-synchronization argument.
//
// Determinism is strict, not just statistical: each LP's window is
// executed single-threaded by exactly one worker, and the barrier
// merge order is a pure function of the partition, so Run(workers=N)
// produces bit-identical state to Run(workers=1) for every N. The
// experiment harnesses build on this to keep parallel metrics
// byte-identical to the sequential engine.
//
// Degenerate shapes fall back safely:
//
//   - No links at all (lookahead +Inf): LPs are independent and drain
//     to the horizon in one embarrassingly parallel pass.
//   - Any zero-latency link (lookahead 0): windows cannot make progress
//     in parallel, so Run switches to a sequential global merge loop
//     that always executes the globally earliest (t, LP index) event —
//     correctness never depends on the parallel path.

// lpLink is one declared cross-LP edge with its minimum latency.
type lpLink struct {
	src, dst int
	lookS    float64
}

// lpMsg is one buffered cross-LP message: a callback to run on the
// destination LP at absolute virtual time at.
type lpMsg struct {
	at  float64
	fn  func()
	dst int
}

// LPSet is a group of logical processes advanced under conservative
// (lookahead-bounded) synchronization. Construct with NewLPSet, wire
// cross-LP edges with Connect, populate each Env(i), then Run.
type LPSet struct {
	envs  []*Env
	links []lpLink
	// linkLook holds the minimum declared latency per (src, dst) edge,
	// enforced as the Send contract.
	linkLook map[[2]int]float64
	// look is the global lookahead: the minimum over all link
	// latencies, +Inf with no links.
	look float64
	// outbox buffers each source LP's cross-LP sends during a window;
	// per-source slices, so window execution appends without locks.
	outbox [][]lpMsg
	// merged is set while the zero-lookahead fallback loop runs: Send
	// then delivers directly instead of buffering to the barrier.
	merged bool
	shared *SharedGuard
}

// NewLPSet returns n empty logical processes with no cross-LP links.
func NewLPSet(n int) *LPSet {
	if n < 1 {
		panic(fmt.Sprintf("des: LPSet of %d LPs", n))
	}
	s := &LPSet{
		envs:     make([]*Env, n),
		linkLook: map[[2]int]float64{},
		look:     math.Inf(1),
		outbox:   make([][]lpMsg, n),
	}
	for i := range s.envs {
		s.envs[i] = NewEnv()
	}
	return s
}

// N reports the number of logical processes.
func (s *LPSet) N() int { return len(s.envs) }

// Env returns LP i's private environment. Populate it exactly as a
// sequential simulation would; during Run it is advanced by one worker
// at a time, so machine code needs no locking.
func (s *LPSet) Env(i int) *Env { return s.envs[i] }

// Connect declares a directed cross-LP edge from src to dst whose
// messages take at least lookaheadS virtual seconds — the modeled link
// latency that bounds how far LPs may run ahead of each other. A
// zero lookahead is legal but forces the sequential fallback (see
// Lookahead). Declaring the same edge twice keeps the smaller latency.
func (s *LPSet) Connect(src, dst int, lookaheadS float64) {
	s.checkLP(src)
	s.checkLP(dst)
	if src == dst {
		panic("des: LP self-link (schedule on the LP's own Env instead)")
	}
	if lookaheadS < 0 || math.IsNaN(lookaheadS) {
		panic(fmt.Sprintf("des: link lookahead %v", lookaheadS))
	}
	key := [2]int{src, dst}
	if prev, ok := s.linkLook[key]; ok {
		if lookaheadS < prev {
			s.linkLook[key] = lookaheadS
		}
	} else {
		s.linkLook[key] = lookaheadS
		s.links = append(s.links, lpLink{src: src, dst: dst, lookS: lookaheadS})
	}
	if lookaheadS < s.look {
		s.look = lookaheadS
	}
}

// Lookahead returns the global lookahead bound: the minimum declared
// link latency, or +Inf when no links exist (fully independent LPs).
func (s *LPSet) Lookahead() float64 { return s.look }

// SequentialFallback reports whether Run will execute the set on the
// sequential global-merge loop: true exactly when some link has zero
// lookahead, leaving no window in which LPs could safely run ahead.
func (s *LPSet) SequentialFallback() bool { return len(s.links) > 0 && s.look <= 0 }

// checkLP validates an LP index.
func (s *LPSet) checkLP(i int) {
	if i < 0 || i >= len(s.envs) {
		panic(fmt.Sprintf("des: LP %d of %d", i, len(s.envs)))
	}
}

// Send schedules fn on LP dst at src's current time plus delayS. It is
// the only legal way for one LP's event to affect another, and must be
// called from code executing on src's Env. The delay must be at least
// the Connect-declared latency of the (src, dst) link: that is the
// conservative contract the window synchronization relies on, so
// violating it (or sending over an undeclared edge) panics.
func (s *LPSet) Send(src, dst int, delayS float64, fn func()) {
	look, ok := s.linkLook[[2]int{src, dst}]
	if !ok {
		panic(fmt.Sprintf("des: Send over undeclared link %d->%d", src, dst))
	}
	if delayS < look {
		panic(fmt.Sprintf("des: Send %d->%d with delay %v below link lookahead %v", src, dst, delayS, look))
	}
	at := s.envs[src].now + delayS
	if s.merged {
		// Zero-lookahead fallback: the global loop keeps every LP at the
		// same frontier, so direct delivery is safe and immediate.
		s.envs[dst].push(event{t: at, kind: evFunc, fn: fn})
		return
	}
	s.outbox[src] = append(s.outbox[src], lpMsg{at: at, fn: fn, dst: dst})
}

// SetSharedGuard attaches one joint event budget to every LP (see
// SharedGuard): MaxEvents is then enforced globally across the set, not
// per LP, matching what the same budget means on a sequential Env.
func (s *LPSet) SetSharedGuard(g *SharedGuard) {
	s.shared = g
	for _, e := range s.envs {
		e.ShareGuard(g)
	}
}

// Err returns the first LP's recorded guard error (scanning in LP
// order), or nil after a healthy run.
func (s *LPSet) Err() error {
	for _, e := range s.envs {
		if e.guardErr != nil {
			return e.guardErr
		}
	}
	return nil
}

// Executed reports the total events executed across all LPs.
func (s *LPSet) Executed() int64 {
	var n int64
	for _, e := range s.envs {
		n += e.executed
	}
	return n
}

// Shutdown terminates every LP's live processes and drops queued
// events; call when abandoning a set whose horizon stopped early.
func (s *LPSet) Shutdown() {
	for _, e := range s.envs {
		e.Shutdown()
	}
}

// Run advances every LP to virtual time `until` (inclusive, like
// Env.RunUntil) using up to `workers` concurrent event loops, and
// returns the latest event time executed anywhere. Results are
// bit-identical for every workers value; workers only sets how many
// LP windows execute at once. With zero lookahead Run degrades to the
// sequential global merge loop (see SequentialFallback). After a
// guarded run, check Err.
func (s *LPSet) Run(workers int, until float64) float64 {
	if workers < 1 {
		workers = 1
	}
	// Deliver sends buffered before Run (setup-time cross-LP wiring).
	s.deliver()
	if s.SequentialFallback() {
		return s.runMerged(until)
	}
	for {
		floor := math.Inf(1)
		for _, e := range s.envs {
			if t, ok := e.NextT(); ok && t < floor {
				floor = t
			}
		}
		if floor > until || math.IsInf(floor, 1) {
			break
		}
		if limit := floor + s.look; limit <= floor {
			// The lookahead is positive but vanishes against floor's
			// magnitude (floor+look rounds to floor), so no window can
			// open. Guarantee progress with one globally-earliest step —
			// the same canonical (t, LP index) order as the fallback loop.
			if !s.stepEarliest() {
				break
			}
		} else if limit > until {
			// The window spans the whole remaining horizon: drain it with
			// RunUntil's inclusive boundary, exactly like the sequential
			// engine's final RunUntil(until).
			s.each(workers, func(i int) { s.envs[i].RunUntil(until) })
		} else {
			s.each(workers, func(i int) { s.envs[i].RunBefore(limit) })
		}
		s.deliver()
		if s.shared != nil && s.Err() != nil {
			break
		}
	}
	return s.maxNow()
}

// runMerged is the zero-lookahead sequential fallback: one global loop
// that always executes the earliest (t, LP index) event across the
// set, delivering cross-LP sends directly. It is exact for any link
// latency, including zero.
func (s *LPSet) runMerged(until float64) float64 {
	s.merged = true
	defer func() { s.merged = false }()
	for {
		best, bestT := -1, math.Inf(1)
		for i, e := range s.envs {
			if t, ok := e.NextT(); ok && t < bestT {
				best, bestT = i, t
			}
		}
		if best < 0 || bestT > until {
			break
		}
		if !s.envs[best].stepOne() {
			break // guard tripped
		}
	}
	return s.maxNow()
}

// stepEarliest executes the globally earliest (t, LP index) event,
// reporting false when no event is pending or the guard tripped. It is
// the degenerate-window progress primitive of Run: unlike the fallback
// loop, cross-LP sends made during the step buffer to the barrier.
func (s *LPSet) stepEarliest() bool {
	best, bestT := -1, math.Inf(1)
	for i, e := range s.envs {
		if t, ok := e.NextT(); ok && t < bestT {
			best, bestT = i, t
		}
	}
	if best < 0 {
		return false
	}
	return s.envs[best].stepOne()
}

// maxNow returns the latest LP clock — the time of the last event
// executed anywhere (0 when nothing ran).
func (s *LPSet) maxNow() float64 {
	end := 0.0
	for _, e := range s.envs {
		if e.now > end {
			end = e.now
		}
	}
	return end
}

// deliver flushes the window's buffered cross-LP messages into their
// destination queues in canonical order — destinations ascending, then
// sources ascending, then send order — so the seq numbers tied
// messages receive are a pure function of the partition, never of
// worker scheduling.
func (s *LPSet) deliver() {
	if len(s.links) == 0 {
		return
	}
	for dst := range s.envs {
		for src := range s.outbox {
			for k := range s.outbox[src] {
				m := &s.outbox[src][k]
				if m.dst != dst {
					continue
				}
				s.envs[dst].push(event{t: m.at, kind: evFunc, fn: m.fn})
			}
		}
	}
	for i := range s.outbox {
		s.outbox[i] = s.outbox[i][:0]
	}
}

// each runs f(i) for every LP index: inline when workers <= 1,
// otherwise on a bounded worker pool with a barrier join. A panic in
// any LP is re-raised on the calling goroutine after the join, so the
// sweep guardrails' per-cell panic isolation keeps working under
// parallel execution.
func (s *LPSet) each(workers int, f func(i int)) {
	n := len(s.envs)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for i := range idx {
				f(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
