// Package des implements a deterministic, process-oriented discrete-event
// simulation engine in the style of SimPy. It is the substrate for the
// simulated-scale experiments: virtual Aurora nodes, interconnect links,
// Lustre servers and workflow components all run as des processes against
// a virtual clock, so 512-node experiments finish in milliseconds of wall
// time and are bit-reproducible across runs.
//
// Concurrency model: every process is a goroutine, but exactly one
// goroutine (either the scheduler or a single resumed process) runs at a
// time. Control is handed over explicitly through unbuffered channels, so
// process bodies may mutate shared simulation state without locks.
// Determinism: simultaneous events fire in schedule order (a monotonically
// increasing sequence number breaks time ties).
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Env is a simulation environment: a virtual clock plus a pending-event
// queue. The zero value is not usable; construct with NewEnv.
type Env struct {
	now     float64
	seq     int64
	events  eventHeap
	yield   chan struct{}
	procs   int // live (spawned, unfinished) processes
	live    []*Proc
	stopped bool
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// Schedule runs fn at absolute virtual time t (>= Now). It is the
// low-level primitive beneath processes, timeouts and event triggers.
func (e *Env) Schedule(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: schedule at t=%v before now=%v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &scheduled{t: t, seq: e.seq, fn: fn})
}

// After runs fn d seconds from now.
func (e *Env) After(d float64, fn func()) { e.Schedule(e.now+d, fn) }

// Run executes events until the queue is empty. It returns the final
// virtual time.
func (e *Env) Run() float64 { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with time <= until. Events scheduled beyond the
// horizon remain queued. It returns the virtual time of the last executed
// event (or the starting time if nothing ran).
func (e *Env) RunUntil(until float64) float64 {
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.t > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.t
		next.fn()
	}
	return e.now
}

// Stop halts the run loop after the current event completes. Queued events
// are preserved; Run/RunUntil may be called again to continue.
func (e *Env) Stop() { e.stopped = true }

// resumeStopped clears the stop flag so a later Run continues.
func (e *Env) clearStop() { e.stopped = false }

// Resume continues a stopped environment until the queue drains.
func (e *Env) Resume() float64 {
	e.clearStop()
	return e.Run()
}

// Pending reports the number of queued events.
func (e *Env) Pending() int { return len(e.events) }

// Procs reports the number of live processes.
func (e *Env) Procs() int { return e.procs }

// shutdownSignal unwinds a parked process during Shutdown.
type shutdownSignal struct{}

// Shutdown terminates every live process and drops all queued events,
// releasing their goroutines. Call it when abandoning an environment
// whose horizon stopped before all processes finished (RunUntil), so
// long-lived benchmark runs do not accumulate parked goroutines. The
// environment must not be used afterwards.
func (e *Env) Shutdown() {
	for _, p := range e.live {
		if p.dead {
			continue
		}
		// Every non-dead process is parked on its resume channel (the
		// scheduler is idle), so the send cannot block.
		p.resume <- shutdownSignal{}
		<-e.yield
	}
	e.live = nil
	e.events = nil
}

// scheduled is one queued event.
type scheduled struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []*scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*scheduled)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Proc is the handle a process body uses to interact with the simulation:
// sleeping, waiting on events, acquiring resources. A Proc is only valid
// inside the goroutine running its body.
type Proc struct {
	env    *Env
	name   string
	resume chan any
	done   *Event
	dead   bool
}

// Spawn starts a new process running body immediately (at the current
// virtual time, after already-queued events at that time). It returns the
// process handle; the Done event fires when body returns.
func (e *Env) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, body)
}

// SpawnAt starts a new process at absolute virtual time t.
func (e *Env) SpawnAt(t float64, name string, body func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan any), done: NewEvent(e)}
	e.procs++
	e.live = append(e.live, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isShutdown := r.(shutdownSignal); !isShutdown {
					panic(r) // real failure in the process body
				}
			}
			p.dead = true
			e.procs--
			e.yield <- struct{}{}
		}()
		if v := <-p.resume; isShutdown(v) { // wait for first activation
			panic(shutdownSignal{})
		}
		body(p)
		p.done.Trigger(nil)
	}()
	e.Schedule(t, func() { e.transfer(p, nil) })
	return p
}

// isShutdown reports whether a resume value is the shutdown sentinel.
func isShutdown(v any) bool {
	_, ok := v.(shutdownSignal)
	return ok
}

// transfer hands control to process p (delivering v from its wait) and
// blocks the scheduler until p yields again.
func (e *Env) transfer(p *Proc, v any) {
	p.resume <- v
	<-e.yield
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.env.now }

// Done returns the event triggered when the process body returns.
func (p *Proc) Done() *Event { return p.done }

// park yields control to the scheduler and blocks until some event
// resumes this process, returning the value passed to the resume. A
// shutdown sentinel unwinds the process (recovered in the spawn wrapper).
func (p *Proc) park() any {
	p.env.yield <- struct{}{}
	v := <-p.resume
	if isShutdown(v) {
		panic(shutdownSignal{})
	}
	return v
}

// Sleep advances the process by d virtual seconds.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic("des: negative sleep")
	}
	e := p.env
	e.After(d, func() { e.transfer(p, nil) })
	p.park()
}

// Wait blocks until ev triggers, returning the trigger value. If ev has
// already triggered it returns immediately without yielding.
func (p *Proc) Wait(ev *Event) any {
	if ev.triggered {
		return ev.val
	}
	ev.waiters = append(ev.waiters, p)
	return p.park()
}

// WaitAll blocks until every event has triggered.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// Event is a one-shot condition processes can wait on. Triggering resumes
// all waiters at the current virtual time, in wait order.
type Event struct {
	env       *Env
	triggered bool
	val       any
	waiters   []*Proc
}

// NewEvent returns an untriggered event bound to env.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Triggered reports whether Trigger has been called.
func (ev *Event) Triggered() bool { return ev.triggered }

// Value returns the trigger value (nil before triggering).
func (ev *Event) Value() any { return ev.val }

// Trigger fires the event with value v, scheduling resumption of every
// waiter at the current time. Triggering twice panics: one-shot events
// keep workflow completion logic honest.
func (ev *Event) Trigger(v any) {
	if ev.triggered {
		panic("des: event triggered twice")
	}
	ev.triggered = true
	ev.val = v
	ws := ev.waiters
	ev.waiters = nil
	for _, p := range ws {
		proc := p
		ev.env.Schedule(ev.env.now, func() { ev.env.transfer(proc, v) })
	}
}
