// Package des implements a deterministic, process-oriented discrete-event
// simulation engine in the style of SimPy. It is the substrate for the
// simulated-scale experiments: virtual Aurora nodes, interconnect links,
// Lustre servers and workflow components all run as des processes against
// a virtual clock, so 512-node experiments finish in milliseconds of wall
// time and are bit-reproducible across runs.
//
// Two execution styles share one event queue:
//
//   - Processes (Spawn): every process is a goroutine, but exactly one
//     goroutine (either the scheduler or a single resumed process) runs
//     at a time. Control is handed over explicitly through unbuffered
//     channels, so process bodies may mutate shared simulation state
//     without locks. Convenient for complex control flow.
//   - Callback events (At/After, Event.OnTrigger, Resource.Request):
//     plain functions that run flat on the scheduler goroutine with no
//     goroutine, channel handoff or per-event allocation. This is the
//     hot path: a Sleep-equivalent reschedule of a cached closure costs
//     one value-record push into the heap and nothing else.
//
// Determinism: simultaneous events fire in schedule order (a
// monotonically increasing sequence number breaks time ties), and the
// two styles interleave on the same (time, seq) total order, so a
// callback port of a process workload replays the exact event order of
// the original as long as it issues the same schedule calls.
package des

import (
	"fmt"
	"math"
)

// Event kinds. The pending queue stores value-type records rather than
// heap-allocated closures; the kind selects which payload field fires.
const (
	evFunc   uint8 = iota // run fn()
	evResume              // resume proc, delivering val to its wait
	evCall                // run cb(val)
)

// event is one queued occurrence: a flat 64-byte record ordered by
// (t, seq). Records live inline in the heap slice, so scheduling never
// allocates; the slice itself is the pool, growing once and then being
// reused for the life of the environment.
type event struct {
	t    float64
	seq  int64
	proc *Proc
	fn   func()
	cb   func(any)
	val  any
	kind uint8
}

// before reports heap ordering: earlier time first, schedule order
// breaking ties.
func (a *event) before(b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// Env is a simulation environment: a virtual clock plus a pending-event
// queue. The zero value is not usable; construct with NewEnv.
type Env struct {
	now     float64
	seq     int64
	q       []event // flat 4-ary min-heap on (t, seq)
	yield   chan struct{}
	procs   int // live (spawned, unfinished) processes
	live    []*Proc
	stopped bool

	// Run guardrails (see guard.go). guarded mirrors guard.enabled() so
	// the healthy hot path pays one predictable branch per event. shared
	// is the joint cross-LP event budget of a partitioned run (nil
	// outside LPSet runs).
	guard    Guard
	shared   *SharedGuard
	guarded  bool
	executed int64
	guardErr error
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// push enqueues a record, maintaining the 4-ary heap invariant. The
// hole-based sift-up writes the new record exactly once.
func (e *Env) push(ev event) {
	if ev.t < e.now {
		panic(fmt.Sprintf("des: schedule at t=%v before now=%v", ev.t, e.now))
	}
	e.seq++
	ev.seq = e.seq
	q := append(e.q, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(&q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
	e.q = q
}

// pop removes and returns the earliest record.
func (e *Env) pop() event {
	q := e.q
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = event{} // release payload references
	q = q[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			min := c
			for j := c + 1; j < end; j++ {
				if q[j].before(&q[min]) {
					min = j
				}
			}
			if !q[min].before(&last) {
				break
			}
			q[i] = q[min]
			i = min
		}
		q[i] = last
	}
	e.q = q
	return top
}

// Schedule runs fn at absolute virtual time t (>= Now). It is the
// low-level primitive beneath processes, timeouts and event triggers.
func (e *Env) Schedule(t float64, fn func()) {
	e.push(event{t: t, kind: evFunc, fn: fn})
}

// At is Schedule under its callback-fast-path name: run fn at absolute
// virtual time t, flat on the scheduler goroutine. Reuse one closure
// across reschedules (store it in your state struct) and the only
// per-occurrence cost is a value push into the event heap.
func (e *Env) At(t float64, fn func()) { e.Schedule(t, fn) }

// After runs fn d seconds from now.
func (e *Env) After(d float64, fn func()) { e.Schedule(e.now+d, fn) }

// call schedules cb(v) at time t: the value-carrying callback used by
// Event triggers. Allocation-free like all record pushes.
func (e *Env) call(t float64, cb func(any), v any) {
	e.push(event{t: t, kind: evCall, cb: cb, val: v})
}

// resume schedules delivery of v to parked process p at time t.
func (e *Env) resume(t float64, p *Proc, v any) {
	e.push(event{t: t, kind: evResume, proc: p, val: v})
}

// Run executes events until the queue is empty. It returns the final
// virtual time.
func (e *Env) Run() float64 { return e.RunUntil(math.Inf(1)) }

// RunUntil executes events with time <= until. Events scheduled beyond the
// horizon remain queued. It returns the virtual time of the last executed
// event (or the starting time if nothing ran).
func (e *Env) RunUntil(until float64) float64 {
	for len(e.q) > 0 && !e.stopped {
		if e.q[0].t > until {
			break
		}
		if !e.execNext() {
			break
		}
	}
	return e.now
}

// RunBefore executes events with time strictly below limit — the
// window-execution primitive of the conservative parallel engine
// (LPSet): a window [floor, floor+lookahead) must exclude its upper
// bound, because a cross-LP message can still arrive exactly at it.
func (e *Env) RunBefore(limit float64) float64 {
	for len(e.q) > 0 && !e.stopped {
		if e.q[0].t >= limit {
			break
		}
		if !e.execNext() {
			break
		}
	}
	return e.now
}

// NextT peeks at the earliest pending event time; ok is false when the
// queue is empty.
func (e *Env) NextT() (t float64, ok bool) {
	if len(e.q) == 0 {
		return 0, false
	}
	return e.q[0].t, true
}

// stepOne executes exactly one event (the earliest pending), honoring
// the guard; it reports false when the queue is empty, the env is
// stopped, or the guard tripped. It is the primitive of the LPSet
// zero-lookahead fallback loop, which interleaves single steps across
// LPs in global (t, LP index) order.
func (e *Env) stepOne() bool {
	if len(e.q) == 0 || e.stopped {
		return false
	}
	return e.execNext()
}

// execNext pops and runs the earliest queued event, honoring the
// guard. It reports false when the guard tripped (the event stays
// queued and the guard error is recorded for Err).
func (e *Env) execNext() bool {
	if e.guarded && e.checkGuard(e.q[0].t) {
		return false
	}
	e.executed++
	ev := e.pop()
	e.now = ev.t
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evResume:
		e.transfer(ev.proc, ev.val)
	case evCall:
		ev.cb(ev.val)
	}
	return true
}

// Stop halts the run loop after the current event completes. Queued events
// are preserved; Run/RunUntil may be called again to continue.
func (e *Env) Stop() { e.stopped = true }

// clearStop clears the stop flag so a later Run continues.
func (e *Env) clearStop() { e.stopped = false }

// Resume continues a stopped environment until the queue drains.
func (e *Env) Resume() float64 {
	e.clearStop()
	return e.Run()
}

// Pending reports the number of queued events.
func (e *Env) Pending() int { return len(e.q) }

// Procs reports the number of live processes.
func (e *Env) Procs() int { return e.procs }

// shutdownSignal unwinds a parked process during Shutdown.
type shutdownSignal struct{}

// Shutdown terminates every live process and drops all queued events,
// releasing their goroutines. Call it when abandoning an environment
// whose horizon stopped before all processes finished (RunUntil), so
// long-lived benchmark runs do not accumulate parked goroutines. The
// environment must not be used afterwards.
func (e *Env) Shutdown() {
	for _, p := range e.live {
		if p.dead {
			continue
		}
		// Every non-dead process is parked on its resume channel (the
		// scheduler is idle), so the send cannot block.
		p.resume <- shutdownSignal{}
		<-e.yield
	}
	e.live = nil
	e.q = nil
}

// Proc is the handle a process body uses to interact with the simulation:
// sleeping, waiting on events, acquiring resources. A Proc is only valid
// inside the goroutine running its body.
type Proc struct {
	env    *Env
	name   string
	resume chan any
	done   *Event
	dead   bool
}

// Spawn starts a new process running body immediately (at the current
// virtual time, after already-queued events at that time). It returns the
// process handle; the Done event fires when body returns.
func (e *Env) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, body)
}

// SpawnAt starts a new process at absolute virtual time t.
func (e *Env) SpawnAt(t float64, name string, body func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan any), done: NewEvent(e)}
	e.procs++
	e.live = append(e.live, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isShutdown := r.(shutdownSignal); !isShutdown {
					panic(r) // real failure in the process body
				}
			}
			p.dead = true
			e.procs--
			e.yield <- struct{}{}
		}()
		if v := <-p.resume; isShutdown(v) { // wait for first activation
			panic(shutdownSignal{})
		}
		body(p)
		p.done.Trigger(nil)
	}()
	e.resume(t, p, nil)
	return p
}

// isShutdown reports whether a resume value is the shutdown sentinel.
func isShutdown(v any) bool {
	_, ok := v.(shutdownSignal)
	return ok
}

// transfer hands control to process p (delivering v from its wait) and
// blocks the scheduler until p yields again.
func (e *Env) transfer(p *Proc, v any) {
	p.resume <- v
	<-e.yield
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the owning environment.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.env.now }

// Done returns the event triggered when the process body returns.
func (p *Proc) Done() *Event { return p.done }

// park yields control to the scheduler and blocks until some event
// resumes this process, returning the value passed to the resume. A
// shutdown sentinel unwinds the process (recovered in the spawn wrapper).
func (p *Proc) park() any {
	p.env.yield <- struct{}{}
	v := <-p.resume
	if isShutdown(v) {
		panic(shutdownSignal{})
	}
	return v
}

// Sleep advances the process by d virtual seconds.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic("des: negative sleep")
	}
	p.env.resume(p.env.now+d, p, nil)
	p.park()
}

// Wait blocks until ev triggers, returning the trigger value. If ev has
// already triggered it returns immediately without yielding.
func (p *Proc) Wait(ev *Event) any {
	if ev.triggered {
		return ev.val
	}
	ev.waiters = append(ev.waiters, waiter{p: p})
	return p.park()
}

// WaitAll blocks until every event has triggered.
func (p *Proc) WaitAll(evs ...*Event) {
	for _, ev := range evs {
		p.Wait(ev)
	}
}

// waiter is one subscriber to an Event: a parked process or a flat
// callback, whichever field is set.
type waiter struct {
	p  *Proc
	cb func(any)
}

// Event is a one-shot condition that both processes and callbacks can
// wait on. Triggering resumes all subscribers at the current virtual
// time, in subscription order.
type Event struct {
	env       *Env
	triggered bool
	val       any
	waiters   []waiter
}

// NewEvent returns an untriggered event bound to env.
func NewEvent(env *Env) *Event { return &Event{env: env} }

// Triggered reports whether Trigger has been called.
func (ev *Event) Triggered() bool { return ev.triggered }

// Value returns the trigger value (nil before triggering).
func (ev *Event) Value() any { return ev.val }

// Trigger fires the event with value v, scheduling resumption of every
// subscriber at the current time. Triggering twice panics: one-shot
// events keep workflow completion logic honest.
func (ev *Event) Trigger(v any) {
	if ev.triggered {
		panic("des: event triggered twice")
	}
	ev.triggered = true
	ev.val = v
	ws := ev.waiters
	ev.waiters = nil
	for _, w := range ws {
		if w.p != nil {
			ev.env.resume(ev.env.now, w.p, v)
		} else {
			ev.env.call(ev.env.now, w.cb, v)
		}
	}
}

// OnTrigger registers fn to receive the trigger value: the flat
// counterpart of Wait. If the event has already triggered, fn runs
// synchronously (as Wait returns without yielding); otherwise it is
// scheduled at trigger time, in subscription order with any parked
// process waiters.
func (ev *Event) OnTrigger(fn func(v any)) {
	if ev.triggered {
		fn(ev.val)
		return
	}
	ev.waiters = append(ev.waiters, waiter{cb: fn})
}
