package des

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// tickMachine is a minimal periodic workload: fire every period, record
// the firing time, stop after count fires. Identical schedule calls on
// any Env, so single-env and partitioned runs are directly comparable.
type tickMachine struct {
	env    *Env
	period float64
	count  int
	times  []float64
	fire   func()
}

func newTickMachine(env *Env, start, period float64, count int) *tickMachine {
	m := &tickMachine{env: env, period: period, count: count}
	m.fire = func() {
		m.times = append(m.times, m.env.Now())
		if len(m.times) < m.count {
			m.env.After(m.period, m.fire)
		}
	}
	env.At(start, m.fire)
	return m
}

// TestLPIndependentMatchesSingleEnv: machines with no cross-LP edges
// produce identical per-machine firing times whether they share one Env
// or run as separate LPs, at any worker count.
func TestLPIndependentMatchesSingleEnv(t *testing.T) {
	build := func(envOf func(i int) *Env) []*tickMachine {
		ms := make([]*tickMachine, 6)
		for i := range ms {
			ms[i] = newTickMachine(envOf(i), 0.1*float64(i), 0.25+0.01*float64(i), 20+i)
		}
		return ms
	}
	ref := NewEnv()
	refMs := build(func(int) *Env { return ref })
	refEnd := ref.RunUntil(1e6)

	for _, workers := range []int{1, 2, 4, 8} {
		set := NewLPSet(6)
		ms := build(func(i int) *Env { return set.Env(i) })
		end := set.Run(workers, 1e6)
		if end != refEnd {
			t.Errorf("workers=%d: end=%v, sequential %v", workers, end, refEnd)
		}
		if got, want := set.Executed(), ref.Executed(); got != want {
			t.Errorf("workers=%d: executed %d, sequential %d", workers, got, want)
		}
		for i := range ms {
			if !reflect.DeepEqual(ms[i].times, refMs[i].times) {
				t.Errorf("workers=%d: machine %d trace diverged", workers, i)
			}
		}
	}
}

// TestLPWindowedSendMatchesSingleEnv: a cross-LP ping-pong under a
// positive lookahead reproduces the single-env trace exactly, for any
// worker count.
func TestLPWindowedSendMatchesSingleEnv(t *testing.T) {
	const look = 0.05
	const rounds = 40
	type world struct {
		env  func(i int) *Env
		send func(src, dst int, delay float64, fn func())
	}
	// Two machines ping-pong: each receipt records the time and replies
	// after delay >= look, with local chatter between receipts.
	build := func(w world) [][]float64 {
		traces := make([][]float64, 2)
		var hop func(at, from int)
		hop = func(dst, from int) {
			traces[dst] = append(traces[dst], w.env(dst).Now())
			if len(traces[0])+len(traces[1]) < rounds {
				// Local chatter on the receiving side.
				w.env(dst).After(0.01, func() {})
				w.send(dst, from, look+0.02, func() { hop(from, dst) })
			}
		}
		w.env(0).At(0.1, func() { hop(0, 1) })
		return traces
	}

	ref := NewEnv()
	refTraces := build(world{
		env:  func(int) *Env { return ref },
		send: func(_, _ int, delay float64, fn func()) { ref.After(delay, fn) },
	})
	ref.RunUntil(1e6)

	for _, workers := range []int{1, 2, 4} {
		set := NewLPSet(2)
		set.Connect(0, 1, look)
		set.Connect(1, 0, look)
		if set.SequentialFallback() {
			t.Fatal("positive lookahead should not force the fallback")
		}
		traces := build(world{env: set.Env, send: set.Send})
		set.Run(workers, 1e6)
		if !reflect.DeepEqual(traces, refTraces) {
			t.Errorf("workers=%d: ping-pong trace diverged: %v vs %v", workers, traces, refTraces)
		}
	}
}

// TestLPZeroLookaheadFallback: a zero-latency link forces the
// sequential merged loop, which still reproduces the single-env trace —
// including same-time cross-LP delivery, impossible under windows.
func TestLPZeroLookaheadFallback(t *testing.T) {
	set := NewLPSet(2)
	set.Connect(0, 1, 0)
	if !set.SequentialFallback() {
		t.Fatal("zero lookahead must force the sequential fallback")
	}
	if set.Lookahead() != 0 {
		t.Fatalf("lookahead = %v", set.Lookahead())
	}

	var got []float64
	rec := func() { got = append(got, set.Env(1).Now()) }
	// LP0 sends zero-delay messages to LP1 while LP1 also runs local work
	// at the same instants.
	for _, at := range []float64{0.5, 1.0, 1.5} {
		at := at
		set.Env(1).At(at, rec)
		set.Env(0).At(at, func() { set.Send(0, 1, 0, rec) })
	}
	end := set.Run(4, 10)
	want := []float64{0.5, 0.5, 1.0, 1.0, 1.5, 1.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback trace %v, want %v", got, want)
	}
	if end != 1.5 {
		t.Errorf("end = %v, want 1.5", end)
	}
}

// TestLPConnectKeepsMinimum: duplicate edges keep the smaller latency
// and the global lookahead tracks the minimum over all links.
func TestLPConnectKeepsMinimum(t *testing.T) {
	set := NewLPSet(3)
	set.Connect(0, 1, 0.5)
	set.Connect(1, 2, 0.2)
	if set.Lookahead() != 0.2 {
		t.Fatalf("lookahead = %v, want 0.2", set.Lookahead())
	}
	set.Connect(0, 1, 0.1)
	if set.Lookahead() != 0.1 {
		t.Fatalf("lookahead after re-connect = %v, want 0.1", set.Lookahead())
	}
	// Raising an existing edge must not loosen the bound.
	set.Connect(0, 1, 5)
	if set.Lookahead() != 0.1 {
		t.Fatalf("lookahead after looser re-connect = %v, want 0.1", set.Lookahead())
	}
	mustPanic(t, "send below lookahead", func() {
		set.Env(0).At(0, func() { set.Send(0, 1, 0.05, func() {}) })
		set.Run(1, 1)
	})
}

// TestLPSendContract: the conservative contract is enforced by panics —
// undeclared edges, delays below the link latency, self-links, invalid
// lookaheads and out-of-range LP indices.
func TestLPSendContract(t *testing.T) {
	set := NewLPSet(2)
	set.Connect(0, 1, 0.1)
	mustPanic(t, "undeclared link", func() { set.Send(1, 0, 1, func() {}) })
	mustPanic(t, "self link", func() { set.Connect(0, 0, 1) })
	mustPanic(t, "negative lookahead", func() { set.Connect(0, 1, -1) })
	mustPanic(t, "NaN lookahead", func() { set.Connect(0, 1, math.NaN()) })
	mustPanic(t, "LP out of range", func() { set.Connect(0, 7, 1) })
	mustPanic(t, "empty set", func() { NewLPSet(0) })
	mustPanic(t, "bad budget", func() { NewSharedGuard(0) })
}

// TestLPSharedGuardBudget: MaxEvents on an LPSet is enforced globally
// across LPs, and the structured error matches what a sequential Env
// reports for the same budget — same Guard, same Events.
func TestLPSharedGuardBudget(t *testing.T) {
	const budget = 25
	build := func(envOf func(i int) *Env) {
		for i := 0; i < 4; i++ {
			newTickMachine(envOf(i), 0.1*float64(i), 0.25, 1000)
		}
	}

	ref := NewEnv()
	ref.SetGuard(Guard{MaxEvents: budget})
	build(func(int) *Env { return ref })
	ref.RunUntil(1e6)
	var refErr *BudgetExceeded
	if !errors.As(ref.Err(), &refErr) {
		t.Fatalf("sequential run did not trip: %v", ref.Err())
	}

	for _, workers := range []int{1, 4} {
		set := NewLPSet(4)
		set.SetSharedGuard(NewSharedGuard(budget))
		build(func(i int) *Env { return set.Env(i) })
		set.Run(workers, 1e6)
		var lpErr *BudgetExceeded
		if !errors.As(set.Err(), &lpErr) {
			t.Fatalf("workers=%d: parallel run did not trip: %v", workers, set.Err())
		}
		if lpErr.Guard != refErr.Guard || lpErr.Events != refErr.Events {
			t.Errorf("workers=%d: BudgetExceeded{Guard:%+v Events:%d}, sequential {Guard:%+v Events:%d}",
				workers, lpErr.Guard, lpErr.Events, refErr.Guard, refErr.Events)
		}
		if got := set.Executed(); got != budget {
			t.Errorf("workers=%d: executed %d events across LPs, budget %d", workers, got, budget)
		}
	}
}

// TestLPSharedGuardUnderWindows: the joint budget also trips mid-window
// on the parallel path (positive lookahead), not just in the fallback.
func TestLPSharedGuardUnderWindows(t *testing.T) {
	const budget = 30
	set := NewLPSet(2)
	set.Connect(0, 1, 0.5)
	set.Connect(1, 0, 0.5)
	set.SetSharedGuard(NewSharedGuard(budget))
	newTickMachine(set.Env(0), 0, 0.1, 1000)
	newTickMachine(set.Env(1), 0.05, 0.1, 1000)
	set.Run(4, 1e6)
	var be *BudgetExceeded
	if !errors.As(set.Err(), &be) {
		t.Fatalf("windowed run did not trip: %v", set.Err())
	}
	if be.Events != budget || set.Executed() != budget {
		t.Errorf("Events=%d executed=%d, want both %d", be.Events, set.Executed(), budget)
	}
}

// TestLPShareGuardSurvivesSetGuard: installing a per-env Guard after a
// shared budget is attached must not disarm the shared budget.
func TestLPShareGuardSurvivesSetGuard(t *testing.T) {
	env := NewEnv()
	env.ShareGuard(NewSharedGuard(3))
	env.SetGuard(Guard{}) // zero guard: no per-env limits
	newTickMachine(env, 0, 0.1, 100)
	env.RunUntil(1e6)
	var be *BudgetExceeded
	if !errors.As(env.Err(), &be) {
		t.Fatalf("shared budget disarmed by SetGuard: %v", env.Err())
	}
	if be.Events != 3 {
		t.Errorf("Events = %d, want 3", be.Events)
	}
}

// TestLPPanicPropagation: a panic inside any LP's window surfaces from
// Run on the calling goroutine, at every worker count, so callers'
// recover-based isolation keeps working.
func TestLPPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		set := NewLPSet(4)
		for i := 0; i < 4; i++ {
			newTickMachine(set.Env(i), 0, 0.1, 50)
		}
		set.Env(2).At(1.0, func() { panic("lp boom") })
		func() {
			defer func() {
				if r := recover(); r != "lp boom" {
					t.Errorf("workers=%d: recovered %v, want \"lp boom\"", workers, r)
				}
			}()
			set.Run(workers, 1e6)
			t.Errorf("workers=%d: Run returned instead of panicking", workers)
		}()
	}
}

// TestLPRunHonorsHorizon: Run's until bound is inclusive like
// Env.RunUntil, and events past it stay queued.
func TestLPRunHonorsHorizon(t *testing.T) {
	set := NewLPSet(2)
	m0 := newTickMachine(set.Env(0), 1, 1, 100)
	m1 := newTickMachine(set.Env(1), 0.5, 1, 100)
	end := set.Run(4, 3)
	if end != 3 {
		t.Errorf("end = %v, want 3 (inclusive bound)", end)
	}
	if got := len(m0.times) + len(m1.times); got != 6 {
		t.Errorf("fired %d events by t=3, want 6", got)
	}
	if set.Env(0).Pending() == 0 || set.Env(1).Pending() == 0 {
		t.Error("events past the horizon should remain queued")
	}
	set.Shutdown()
	if set.Env(0).Pending() != 0 || set.Env(1).Pending() != 0 {
		t.Error("Shutdown should drop queued events")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}
