package des

// Store is an unbounded FIFO queue connecting producer and consumer
// processes, equivalent to a SimPy Store. Getters block while the store is
// empty; putters never block. It models mailboxes: staged-data
// notification queues, server request queues, trainer inboxes.
type Store struct {
	env   *Env
	items []any
	getQ  []*Proc
}

// NewStore returns an empty store bound to env.
func NewStore(env *Env) *Store { return &Store{env: env} }

// Put appends v, waking the longest-waiting getter if any. Callable from
// process bodies and from plain scheduled callbacks alike.
func (s *Store) Put(v any) {
	if len(s.getQ) > 0 {
		p := s.getQ[0]
		s.getQ = s.getQ[1:]
		s.env.Schedule(s.env.now, func() { s.env.transfer(p, v) })
		return
	}
	s.items = append(s.items, v)
}

// Get blocks the calling process until an item is available and returns
// it, FIFO order.
func (s *Store) Get(p *Proc) any {
	if len(s.items) > 0 {
		v := s.items[0]
		s.items = s.items[1:]
		return v
	}
	s.getQ = append(s.getQ, p)
	return p.park()
}

// TryGet returns the head item without blocking; ok is false if empty.
func (s *Store) TryGet() (v any, ok bool) {
	if len(s.items) == 0 {
		return nil, false
	}
	v = s.items[0]
	s.items = s.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (s *Store) Len() int { return len(s.items) }
