package des

// Store is an unbounded FIFO queue connecting producer and consumer
// processes, equivalent to a SimPy Store. Getters block while the store is
// empty; putters never block. It models mailboxes: staged-data
// notification queues, server request queues, trainer inboxes.
type Store struct {
	env   *Env
	items []any
	getQ  []waiter
}

// NewStore returns an empty store bound to env.
func NewStore(env *Env) *Store { return &Store{env: env} }

// Put appends v, waking the longest-waiting getter if any. Callable from
// process bodies and from plain scheduled callbacks alike.
func (s *Store) Put(v any) {
	if len(s.getQ) > 0 {
		w := s.getQ[0]
		s.getQ = s.getQ[1:]
		if w.p != nil {
			s.env.resume(s.env.now, w.p, v)
		} else {
			s.env.call(s.env.now, w.cb, v)
		}
		return
	}
	s.items = append(s.items, v)
}

// Get blocks the calling process until an item is available and returns
// it, FIFO order.
func (s *Store) Get(p *Proc) any {
	if len(s.items) > 0 {
		v := s.items[0]
		s.items = s.items[1:]
		return v
	}
	s.getQ = append(s.getQ, waiter{p: p})
	return p.park()
}

// OnNext invokes fn with the next item: synchronously if one is queued
// (as Get returns immediately), otherwise when a Put arrives, FIFO with
// any parked getters. The flat counterpart of Get.
func (s *Store) OnNext(fn func(v any)) {
	if len(s.items) > 0 {
		v := s.items[0]
		s.items = s.items[1:]
		fn(v)
		return
	}
	s.getQ = append(s.getQ, waiter{cb: fn})
}

// TryGet returns the head item without blocking; ok is false if empty.
func (s *Store) TryGet() (v any, ok bool) {
	if len(s.items) == 0 {
		return nil, false
	}
	v = s.items[0]
	s.items = s.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (s *Store) Len() int { return len(s.items) }
