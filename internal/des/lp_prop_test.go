package des

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// Property layer for the parallel engine: randomized workloads of
// chattering machines with cross-machine messaging, executed three ways
// — one shared Env (the reference), an LPSet at several partition
// granularities, and each partition at several worker counts — must
// produce identical per-machine timestamp traces. This is the engine's
// core contract: partitioning and parallelism are pure execution
// strategies, never observable in results.

// lpWorld abstracts where machines live so one generator builds the
// reference and the partitioned runs from identical schedule calls.
type lpWorld struct {
	env  func(machine int) *Env
	send func(src, dst int, delayS float64, fn func())
}

// lpWorkload is one generated scenario: n machines with start offsets,
// periods, fire counts, and a cross-send pattern.
type lpWorkload struct {
	starts  []float64
	periods []float64
	counts  []int
	// sendEvery: machine i messages machine (i+1)%n on every k-th fire
	// (0 = never).
	sendEvery []int
	// sendDelay per machine, always >= the partition's link lookahead.
	sendDelay []float64
}

func genLPWorkload(rng *rand.Rand, n int, minDelay float64) lpWorkload {
	w := lpWorkload{
		starts:    make([]float64, n),
		periods:   make([]float64, n),
		counts:    make([]int, n),
		sendEvery: make([]int, n),
		sendDelay: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		w.starts[i] = rng.Float64()
		// Quantized periods create plenty of exact time ties across
		// machines — the hard case for merge determinism.
		w.periods[i] = float64(1+rng.Intn(8)) * 0.125
		w.counts[i] = 1 + rng.Intn(40)
		w.sendEvery[i] = rng.Intn(4) // 0 = never
		w.sendDelay[i] = minDelay + float64(1+rng.Intn(8))*0.25
	}
	return w
}

// buildLP instantiates the workload in a world, returning one timestamp
// trace per machine (fires and receipts interleaved in local order).
func buildLP(w lpWorld, wl lpWorkload) [][]float64 {
	n := len(wl.starts)
	traces := make([][]float64, n)
	var receive func(dst int) func()
	receive = func(dst int) func() {
		return func() {
			traces[dst] = append(traces[dst], w.env(dst).Now())
		}
	}
	for i := 0; i < n; i++ {
		i := i
		fires := 0
		var fire func()
		fire = func() {
			traces[i] = append(traces[i], w.env(i).Now())
			fires++
			if wl.sendEvery[i] > 0 && fires%wl.sendEvery[i] == 0 {
				w.send(i, (i+1)%n, wl.sendDelay[i], receive((i+1)%n))
			}
			if fires < wl.counts[i] {
				w.env(i).After(wl.periods[i], fire)
			}
		}
		w.env(i).At(wl.starts[i], fire)
	}
	return traces
}

// runLPReference executes the workload on one shared Env.
func runLPReference(wl lpWorkload) [][]float64 {
	env := NewEnv()
	traces := buildLP(lpWorld{
		env:  func(int) *Env { return env },
		send: func(_, _ int, delayS float64, fn func()) { env.After(delayS, fn) },
	}, wl)
	env.RunUntil(1e9)
	return traces
}

// runLPPartitioned executes the workload on an LPSet: machines are
// distributed round-robin over lps logical processes, every distinct LP
// pair is linked with the given lookahead (the all-cross-LP-edge case),
// and the set runs with the given worker count.
func runLPPartitioned(wl lpWorkload, lps, workers int, lookS float64) [][]float64 {
	n := len(wl.starts)
	set := NewLPSet(lps)
	lpOf := func(machine int) int { return machine % lps }
	if lps > 1 {
		for a := 0; a < lps; a++ {
			for b := 0; b < lps; b++ {
				if a != b {
					set.Connect(a, b, lookS)
				}
			}
		}
	}
	traces := buildLP(lpWorld{
		env: func(m int) *Env { return set.Env(lpOf(m)) },
		send: func(src, dst int, delayS float64, fn func()) {
			if lpOf(src) == lpOf(dst) {
				set.Env(lpOf(src)).After(delayS, fn)
			} else {
				set.Send(lpOf(src), lpOf(dst), delayS, fn)
			}
		},
	}, wl)
	set.Run(workers, 1e9)
	_ = n
	return traces
}

// checkLPEquivalence runs one workload through every (partition,
// lookahead, workers) combination and compares traces to the reference.
func checkLPEquivalence(t *testing.T, seed int64, wl lpWorkload, lookS float64) {
	t.Helper()
	ref := runLPReference(wl)
	n := len(wl.starts)
	for _, lps := range []int{1, 2, n} {
		if lps > n {
			continue
		}
		for _, workers := range []int{1, 4} {
			got := runLPPartitioned(wl, lps, workers, lookS)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d: lps=%d workers=%d look=%v: traces diverged from single-env reference",
					seed, lps, workers, lookS)
			}
		}
	}
}

// TestLPRandomWorkloadsMatchSequential: 1000 random workloads, each
// checked at partition granularities {1, 2, n} × workers {1, 4} ×
// lookahead {0 (fallback), small (many windows), large (one window)}.
func TestLPRandomWorkloadsMatchSequential(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 100
	}
	looks := []float64{0, 0.05, 50}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + rng.Intn(6)
		look := looks[seed%len(looks)]
		wl := genLPWorkload(rng, n, look)
		checkLPEquivalence(t, int64(seed), wl, look)
	}
}

// TestLPDegenerateShapes pins the edge cases of the window computation:
// a single LP (no links), an empty set run, all-cross-LP edges at zero
// lookahead, and a lookahead so small the window holds one event.
func TestLPDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	wl := genLPWorkload(rng, 4, 0)

	// Single LP: no links, one pass to the horizon.
	ref := runLPReference(wl)
	if got := runLPPartitioned(wl, 1, 4, 0); !reflect.DeepEqual(got, ref) {
		t.Error("single-LP run diverged")
	}
	// Empty set: Run on LPs with no events returns 0.
	if end := NewLPSet(3).Run(2, 100); end != 0 {
		t.Errorf("empty run end = %v, want 0", end)
	}
	// Tiny lookahead: every window holds at most a handful of events.
	tiny := genLPWorkload(rng, 4, 0.001)
	if got := runLPPartitioned(tiny, 4, 4, 0.001); !reflect.DeepEqual(got, runLPReference(tiny)) {
		t.Error("tiny-lookahead run diverged")
	}
}

// FuzzLPWindow fuzzes the lookahead/window computation: arbitrary seeds,
// machine counts, partition sizes, worker counts and lookahead bits must
// never break trace equivalence with the single-env reference. The
// lookahead is decoded from raw bits through abs() so the corpus can
// reach denormals and huge values; non-finite values are clamped.
func FuzzLPWindow(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(2), uint8(4), float64(0))
	f.Add(int64(2), uint8(6), uint8(6), uint8(1), float64(0.05))
	f.Add(int64(3), uint8(3), uint8(2), uint8(8), float64(1e300))
	f.Add(int64(4), uint8(2), uint8(2), uint8(3), math.SmallestNonzeroFloat64)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, lpsRaw, workersRaw uint8, lookRaw float64) {
		n := 2 + int(nRaw%6)
		lps := 1 + int(lpsRaw)%n
		workers := 1 + int(workersRaw%8)
		look := math.Abs(lookRaw)
		if math.IsNaN(look) || math.IsInf(look, 0) || look > 1e6 {
			look = 1e6
		}
		rng := rand.New(rand.NewSource(seed))
		wl := genLPWorkload(rng, n, look)
		ref := runLPReference(wl)
		got := runLPPartitioned(wl, lps, workers, look)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("n=%d lps=%d workers=%d look=%v: traces diverged", n, lps, workers, look)
		}
	})
}
