package redis

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := newServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

// --- RESP codec ---

func respRoundTrip(t *testing.T, v Value) Value {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(v); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatalf("decode %q: %v", buf.String(), err)
	}
	return got
}

func TestRESPSimpleString(t *testing.T) {
	got := respRoundTrip(t, Simple("OK"))
	if got.Kind != KindSimple || got.Str != "OK" {
		t.Fatalf("got %+v", got)
	}
}

func TestRESPError(t *testing.T) {
	got := respRoundTrip(t, Errorf("ERR boom %d", 7))
	if got.Kind != KindError || got.Str != "ERR boom 7" {
		t.Fatalf("got %+v", got)
	}
}

func TestRESPInteger(t *testing.T) {
	for _, n := range []int64{0, 1, -1, 1 << 40} {
		got := respRoundTrip(t, Integer(n))
		if got.Kind != KindInteger || got.Int != n {
			t.Fatalf("int %d round-tripped to %+v", n, got)
		}
	}
}

func TestRESPBulkWithCRLFInside(t *testing.T) {
	payload := []byte("line1\r\nline2\r\n$5\r\nfake!")
	got := respRoundTrip(t, Bulk(payload))
	if !bytes.Equal(got.Bulk, payload) {
		t.Fatalf("binary-safe bulk broken: %q", got.Bulk)
	}
}

func TestRESPNullBulk(t *testing.T) {
	got := respRoundTrip(t, NullBulk())
	if !got.IsNull() {
		t.Fatalf("null bulk round-tripped to %+v", got)
	}
}

func TestRESPNestedArray(t *testing.T) {
	v := Array(BulkString("SET"), Array(Integer(1), Simple("x")), NullBulk())
	got := respRoundTrip(t, v)
	if len(got.Array) != 3 || len(got.Array[1].Array) != 2 || !got.Array[2].IsNull() {
		t.Fatalf("got %+v", got)
	}
}

func TestRESPRejectsGarbage(t *testing.T) {
	for _, raw := range []string{"!bad\r\n", ":\r\n", "$abc\r\n", "+no-terminator"} {
		_, err := NewReader(strings.NewReader(raw)).Read()
		if err == nil {
			t.Fatalf("garbage %q accepted", raw)
		}
	}
}

func TestRESPBulkLengthLimit(t *testing.T) {
	_, err := NewReader(strings.NewReader("$999999999999\r\n")).Read()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized bulk accepted: %v", err)
	}
}

func TestPropertyRESPRoundTrip(t *testing.T) {
	f := func(payload []byte, n int64, s string) bool {
		s = strings.Map(func(r rune) rune { // simple strings cannot contain CR/LF
			if r == '\r' || r == '\n' {
				return '_'
			}
			return r
		}, s)
		v := Array(Bulk(payload), Integer(n), Simple(s))
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(v); err != nil {
			return false
		}
		w.Flush()
		got, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		return bytes.Equal(got.Array[0].Bulk, payload) &&
			got.Array[1].Int == n && got.Array[2].Str == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- Server commands over TCP ---

func TestPing(t *testing.T) {
	_, c := newPair(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestSetGet(t *testing.T) {
	_, c := newPair(t)
	val := []byte("hello world")
	if err := c.Set("greeting", val); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("greeting")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("got %q", got)
	}
}

func TestGetMissingIsErrNil(t *testing.T) {
	_, c := newPair(t)
	_, err := c.Get("missing")
	if !errors.Is(err, ErrNil) {
		t.Fatalf("err = %v, want ErrNil", err)
	}
}

func TestSetOverwrite(t *testing.T) {
	_, c := newPair(t)
	c.Set("k", []byte("one"))
	c.Set("k", []byte("two"))
	got, _ := c.Get("k")
	if string(got) != "two" {
		t.Fatalf("got %q", got)
	}
}

func TestDelAndExists(t *testing.T) {
	_, c := newPair(t)
	c.Set("a", []byte("1"))
	c.Set("b", []byte("2"))
	ok, err := c.Exists("a")
	if err != nil || !ok {
		t.Fatalf("exists a = %v,%v", ok, err)
	}
	n, err := c.Del("a", "b", "ghost")
	if err != nil || n != 2 {
		t.Fatalf("del = %d,%v want 2", n, err)
	}
	ok, _ = c.Exists("a")
	if ok {
		t.Fatal("a exists after del")
	}
}

func TestKeysGlob(t *testing.T) {
	_, c := newPair(t)
	for _, k := range []string{"sim:0", "sim:1", "train:0"} {
		c.Set(k, []byte("x"))
	}
	got, err := c.Keys("sim:*")
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	if len(got) != 2 || got[0] != "sim:0" || got[1] != "sim:1" {
		t.Fatalf("keys = %v", got)
	}
}

func TestDBSizeAndFlush(t *testing.T) {
	_, c := newPair(t)
	for i := 0; i < 5; i++ {
		c.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	n, err := c.DBSize()
	if err != nil || n != 5 {
		t.Fatalf("dbsize = %d,%v", n, err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	n, _ = c.DBSize()
	if n != 0 {
		t.Fatalf("dbsize after flush = %d", n)
	}
}

func TestIncr(t *testing.T) {
	_, c := newPair(t)
	for want := int64(1); want <= 3; want++ {
		got, err := c.Incr("counter")
		if err != nil || got != want {
			t.Fatalf("incr = %d,%v want %d", got, err, want)
		}
	}
	c.Set("text", []byte("not-a-number"))
	if _, err := c.Incr("text"); err == nil {
		t.Fatal("INCR on text succeeded")
	}
}

func TestUnknownCommand(t *testing.T) {
	_, c := newPair(t)
	_, err := c.Do("NOSUCH")
	if err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("err = %v", err)
	}
}

func TestWrongArity(t *testing.T) {
	_, c := newPair(t)
	_, err := c.Do("SET", []byte("only-key"))
	if err == nil || !strings.Contains(err.Error(), "wrong number of arguments") {
		t.Fatalf("err = %v", err)
	}
}

func TestBinaryValues(t *testing.T) {
	_, c := newPair(t)
	val := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(val)
	c.Set("bin", val)
	got, err := c.Get("bin")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("binary round trip failed: %v", err)
	}
}

func TestLargeValue8MB(t *testing.T) {
	_, c := newPair(t)
	val := bytes.Repeat([]byte{0xAB}, 8<<20)
	if err := c.Set("big", val); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("big")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatal("8MB round trip failed")
	}
}

func TestManyClientsConcurrent(t *testing.T) {
	s := newServer(t)
	const clients, per = 8, 40
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < per; j++ {
				key := fmt.Sprintf("c%d-k%d", i, j)
				if err := c.Set(key, []byte(key)); err != nil {
					t.Errorf("set: %v", err)
					return
				}
				got, err := c.Get(key)
				if err != nil || string(got) != key {
					t.Errorf("get %s = %q,%v", key, got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	c, _ := Dial(s.Addr())
	defer c.Close()
	n, _ := c.DBSize()
	if n != clients*per {
		t.Fatalf("dbsize = %d, want %d", n, clients*per)
	}
}

func TestSharedClientConcurrent(t *testing.T) {
	_, c := newPair(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("shared-%d", i)
			if err := c.Set(key, []byte{byte(i)}); err != nil {
				t.Errorf("set: %v", err)
			}
			got, err := c.Get(key)
			if err != nil || got[0] != byte(i) {
				t.Errorf("get: %v %v", got, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestServerCountsCommands(t *testing.T) {
	s, c := newPair(t)
	before := s.Commands()
	c.Set("k", []byte("v"))
	c.Get("k")
	if got := s.Commands() - before; got != 2 {
		t.Fatalf("command count delta = %d, want 2", got)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := newServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClientAfterServerClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Close()
	if _, err := c.Get("k"); err == nil {
		t.Fatal("request to closed server succeeded")
	}
}

// --- Cluster ---

func TestClusterShardsKeys(t *testing.T) {
	s1, s2 := newServer(t), newServer(t)
	cl, err := DialCluster([]string{s1.Addr(), s2.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := cl.Set(fmt.Sprintf("key-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c1, _ := Dial(s1.Addr())
	c2, _ := Dial(s2.Addr())
	defer c1.Close()
	defer c2.Close()
	n1, _ := c1.DBSize()
	n2, _ := c2.DBSize()
	if n1+n2 != n {
		t.Fatalf("shard sizes %d+%d != %d", n1, n2, n)
	}
	if n1 == 0 || n2 == 0 {
		t.Fatalf("degenerate sharding: %d/%d", n1, n2)
	}
}

func TestClusterGetRoutesToRightShard(t *testing.T) {
	s1, s2 := newServer(t), newServer(t)
	cl, err := DialCluster([]string{s1.Addr(), s2.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("rt-%d", i)
		cl.Set(key, []byte(key))
		got, err := cl.Get(key)
		if err != nil || string(got) != key {
			t.Fatalf("cluster get %s = %q,%v", key, got, err)
		}
	}
	keys, err := cl.Keys("rt-*")
	if err != nil || len(keys) != 20 {
		t.Fatalf("cluster keys = %d,%v want 20", len(keys), err)
	}
	if err := cl.FlushAll(); err != nil {
		t.Fatal(err)
	}
	keys, _ = cl.Keys("*")
	if len(keys) != 0 {
		t.Fatalf("keys after flush: %v", keys)
	}
}

func TestClusterEmptyAddrs(t *testing.T) {
	if _, err := DialCluster(nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func BenchmarkSetGet(b *testing.B) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	for _, size := range []int{1 << 10, 1 << 20} {
		val := make([]byte, size)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := c.Set("bench", val); err != nil {
					b.Fatal(err)
				}
				if _, err := c.Get("bench"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "anything/with/slashes", true},
		{"*", "", true},
		{"sim:*", "sim:0", true},
		{"sim:*", "train:0", false},
		{"data/*/x", "data/100/x", true},
		{"data/*/x", "data/100/y", false},
		{"k?y", "key", true},
		{"k?y", "ky", false},
		{"a*b*c", "axxbyyc", true},
		{"a*b*c", "axxbyy", false},
		{"exact", "exact", true},
		{"exact", "exact!", false},
	}
	for _, tc := range cases {
		if got := globMatch(tc.pattern, tc.s); got != tc.want {
			t.Errorf("globMatch(%q,%q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
}
