// Package redis implements a from-scratch, wire-compatible subset of the
// Redis in-memory key-value store: the RESP2 protocol, a TCP server with
// Redis's single-threaded command-execution model, a pipelining client,
// and client-side sharded "cluster" deployment.
//
// It stands in for the production Redis that the paper's original
// workflow (SmartSim/nekRS-ML) uses as its data-transport backend. Only
// the command set the DataStore layer needs is implemented, but the
// protocol framing is the real one, so the costs being benchmarked
// (serialization, socket hops, server event-loop serialization) are the
// same in kind as the original's.
package redis

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Value is one RESP protocol value. Exactly one interpretation is active,
// chosen by Kind.
type Value struct {
	Kind  Kind
	Str   string  // Simple, Error
	Int   int64   // Integer
	Bulk  []byte  // Bulk (nil means null bulk string)
	Array []Value // Array
	Null  bool    // null bulk string / null array
}

// Kind discriminates RESP value types.
type Kind int

// RESP value kinds.
const (
	KindSimple Kind = iota
	KindError
	KindInteger
	KindBulk
	KindArray
)

// Convenience constructors.
func Simple(s string) Value { return Value{Kind: KindSimple, Str: s} }
func Errorf(format string, args ...any) Value {
	return Value{Kind: KindError, Str: fmt.Sprintf(format, args...)}
}
func Integer(n int64) Value { return Value{Kind: KindInteger, Int: n} }
func Bulk(b []byte) Value   { return Value{Kind: KindBulk, Bulk: b} }
func BulkString(s string) Value {
	return Value{Kind: KindBulk, Bulk: []byte(s)}
}
func NullBulk() Value         { return Value{Kind: KindBulk, Null: true} }
func Array(vs ...Value) Value { return Value{Kind: KindArray, Array: vs} }

// IsNull reports whether v is a RESP null.
func (v Value) IsNull() bool { return v.Null }

// Text returns a best-effort string form of v (bulk payload, simple
// string, or integer digits).
func (v Value) Text() string {
	switch v.Kind {
	case KindBulk:
		return string(v.Bulk)
	case KindSimple, KindError:
		return v.Str
	case KindInteger:
		return strconv.FormatInt(v.Int, 10)
	}
	return ""
}

// ErrProtocol reports malformed RESP input.
var ErrProtocol = errors.New("redis: protocol error")

// maxBulkLen guards against absurd allocations from corrupt frames
// (512 MB, Redis's own proto-max-bulk-len default).
const maxBulkLen = 512 << 20

// Writer encodes RESP values onto a stream.
type Writer struct {
	w *bufio.Writer
}

// NewWriter returns a RESP writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write encodes one value. Call Flush to push buffered bytes.
func (w *Writer) Write(v Value) error {
	switch v.Kind {
	case KindSimple:
		w.w.WriteByte('+')
		w.w.WriteString(v.Str)
	case KindError:
		w.w.WriteByte('-')
		w.w.WriteString(v.Str)
	case KindInteger:
		w.w.WriteByte(':')
		w.w.WriteString(strconv.FormatInt(v.Int, 10))
	case KindBulk:
		if v.Null {
			w.w.WriteString("$-1")
		} else {
			w.w.WriteByte('$')
			w.w.WriteString(strconv.Itoa(len(v.Bulk)))
			w.w.WriteString("\r\n")
			w.w.Write(v.Bulk)
		}
	case KindArray:
		if v.Null {
			w.w.WriteString("*-1")
		} else {
			w.w.WriteByte('*')
			w.w.WriteString(strconv.Itoa(len(v.Array)))
			w.w.WriteString("\r\n")
			for _, el := range v.Array {
				if err := w.Write(el); err != nil {
					return err
				}
			}
			return nil // elements already terminated
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrProtocol, v.Kind)
	}
	_, err := w.w.WriteString("\r\n")
	return err
}

// Flush pushes buffered output to the underlying stream.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes RESP values from a stream.
type Reader struct {
	r *bufio.Reader
}

// NewReader returns a RESP reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Read decodes one value.
func (r *Reader) Read() (Value, error) {
	t, err := r.r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch t {
	case '+':
		s, err := r.line()
		return Value{Kind: KindSimple, Str: s}, err
	case '-':
		s, err := r.line()
		return Value{Kind: KindError, Str: s}, err
	case ':':
		s, err := r.line()
		if err != nil {
			return Value{}, err
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad integer %q", ErrProtocol, s)
		}
		return Integer(n), nil
	case '$':
		n, err := r.length()
		if err != nil {
			return Value{}, err
		}
		if n < 0 {
			return NullBulk(), nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r.r, buf); err != nil {
			return Value{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, fmt.Errorf("%w: bulk not CRLF-terminated", ErrProtocol)
		}
		return Bulk(buf[:n]), nil
	case '*':
		n, err := r.length()
		if err != nil {
			return Value{}, err
		}
		if n < 0 {
			return Value{Kind: KindArray, Null: true}, nil
		}
		arr := make([]Value, n)
		for i := range arr {
			arr[i], err = r.Read()
			if err != nil {
				return Value{}, err
			}
		}
		return Value{Kind: KindArray, Array: arr}, nil
	default:
		return Value{}, fmt.Errorf("%w: unexpected type byte %q", ErrProtocol, t)
	}
}

// line reads one CRLF-terminated line (without the terminator).
func (r *Reader) line() (string, error) {
	s, err := r.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(s) < 2 || s[len(s)-2] != '\r' {
		return "", fmt.Errorf("%w: line not CRLF-terminated", ErrProtocol)
	}
	return s[:len(s)-2], nil
}

// length reads a CRLF-terminated signed length.
func (r *Reader) length() (int, error) {
	s, err := r.line()
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%w: bad length %q", ErrProtocol, s)
	}
	if n > maxBulkLen {
		return 0, fmt.Errorf("%w: length %d exceeds limit", ErrProtocol, n)
	}
	return n, nil
}
