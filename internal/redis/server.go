package redis

import (
	"fmt"
	"net"

	"strings"
	"sync"
	"sync/atomic"
)

// Server is a mini Redis server: a TCP listener whose connections feed a
// single command-execution goroutine, mirroring Redis's single-threaded
// event loop — the serialization point that shapes the backend's
// performance profile in the paper's experiments.
type Server struct {
	ln       net.Listener
	requests chan request
	quit     chan struct{}
	wg       sync.WaitGroup
	closed   atomic.Bool

	// data is owned exclusively by the executor goroutine.
	data map[string][]byte

	// stats
	commands atomic.Int64
}

type request struct {
	cmd   []Value
	reply chan Value
}

// NewServer starts a server listening on addr ("127.0.0.1:0" for an
// ephemeral port). Use Addr to discover the bound address.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("redis: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:       ln,
		requests: make(chan request, 128),
		quit:     make(chan struct{}),
		data:     make(map[string][]byte),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.executor()
	return s, nil
}

// Addr returns the listener's address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Commands returns the number of commands executed, for tests and stats.
func (s *Server) Commands() int64 { return s.commands.Load() }

// Close stops the listener, the executor, and all connections.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.quit)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	go func() { // unblock reads on shutdown
		<-s.quit
		conn.Close()
	}()
	r := NewReader(conn)
	w := NewWriter(conn)
	reply := make(chan Value, 1)
	for {
		v, err := r.Read()
		if err != nil {
			return
		}
		if v.Kind != KindArray || len(v.Array) == 0 {
			if werr := writeAndFlush(w, Errorf("ERR invalid request")); werr != nil {
				return
			}
			continue
		}
		select {
		case s.requests <- request{cmd: v.Array, reply: reply}:
		case <-s.quit:
			return
		}
		var resp Value
		select {
		case resp = <-reply:
		case <-s.quit:
			return
		}
		if err := writeAndFlush(w, resp); err != nil {
			return
		}
	}
}

func writeAndFlush(w *Writer, v Value) error {
	if err := w.Write(v); err != nil {
		return err
	}
	return w.Flush()
}

// executor is the single-threaded command loop that owns the keyspace.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case req := <-s.requests:
			s.commands.Add(1)
			req.reply <- s.execute(req.cmd)
		case <-s.quit:
			return
		}
	}
}

func (s *Server) execute(cmd []Value) Value {
	name := strings.ToUpper(cmd[0].Text())
	args := cmd[1:]
	switch name {
	case "PING":
		if len(args) == 1 {
			return Bulk(args[0].Bulk)
		}
		return Simple("PONG")
	case "ECHO":
		if len(args) != 1 {
			return wrongArity(name)
		}
		return Bulk(args[0].Bulk)
	case "SET":
		if len(args) != 2 {
			return wrongArity(name)
		}
		buf := make([]byte, len(args[1].Bulk))
		copy(buf, args[1].Bulk)
		s.data[args[0].Text()] = buf
		return Simple("OK")
	case "GET":
		if len(args) != 1 {
			return wrongArity(name)
		}
		v, ok := s.data[args[0].Text()]
		if !ok {
			return NullBulk()
		}
		return Bulk(v)
	case "DEL":
		n := int64(0)
		for _, a := range args {
			if _, ok := s.data[a.Text()]; ok {
				delete(s.data, a.Text())
				n++
			}
		}
		return Integer(n)
	case "EXISTS":
		n := int64(0)
		for _, a := range args {
			if _, ok := s.data[a.Text()]; ok {
				n++
			}
		}
		return Integer(n)
	case "KEYS":
		if len(args) != 1 {
			return wrongArity(name)
		}
		pattern := args[0].Text()
		var out []Value
		for k := range s.data {
			if globMatch(pattern, k) {
				out = append(out, BulkString(k))
			}
		}
		return Array(out...)
	case "DBSIZE":
		return Integer(int64(len(s.data)))
	case "FLUSHALL", "FLUSHDB":
		s.data = make(map[string][]byte)
		return Simple("OK")
	case "INCR":
		if len(args) != 1 {
			return wrongArity(name)
		}
		key := args[0].Text()
		cur := int64(0)
		if v, ok := s.data[key]; ok {
			parsed, err := parseInt(v)
			if err != nil {
				return Errorf("ERR value is not an integer or out of range")
			}
			cur = parsed
		}
		cur++
		s.data[key] = []byte(fmt.Sprintf("%d", cur))
		return Integer(cur)
	case "MSET":
		if len(args) == 0 || len(args)%2 != 0 {
			return wrongArity(name)
		}
		for i := 0; i < len(args); i += 2 {
			buf := make([]byte, len(args[i+1].Bulk))
			copy(buf, args[i+1].Bulk)
			s.data[args[i].Text()] = buf
		}
		return Simple("OK")
	case "MGET":
		out := make([]Value, len(args))
		for i, a := range args {
			if v, ok := s.data[a.Text()]; ok {
				out[i] = Bulk(v)
			} else {
				out[i] = NullBulk()
			}
		}
		return Value{Kind: KindArray, Array: out}
	default:
		return Errorf("ERR unknown command '%s'", name)
	}
}

// globMatch implements Redis-style glob matching: '*' matches any run of
// characters (including separators, unlike filepath.Match), '?' matches
// one character, everything else is literal.
func globMatch(pattern, s string) bool {
	// Iterative wildcard matching with backtracking to the last '*'.
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '?' || pattern[pi] == s[si]):
			pi++
			si++
		case pi < len(pattern) && pattern[pi] == '*':
			star, mark = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}

func wrongArity(cmd string) Value {
	return Errorf("ERR wrong number of arguments for '%s' command", strings.ToLower(cmd))
}

func parseInt(b []byte) (int64, error) {
	var n int64
	if _, err := fmt.Sscanf(string(b), "%d", &n); err != nil {
		return 0, err
	}
	return n, nil
}
