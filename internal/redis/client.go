package redis

import (
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
)

// ErrNil reports a null reply (missing key) from the server.
var ErrNil = errors.New("redis: nil reply")

// Client is a connection to one server. It is safe for concurrent use;
// requests on one client are serialized over a single TCP connection,
// like a redis-py connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *Reader
	w    *Writer
}

// Dial connects to a server address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("redis: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: NewReader(conn), w: NewWriter(conn)}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one command (name plus bulk-string arguments) and returns the
// reply. Error replies become Go errors.
func (c *Client) Do(cmd string, args ...[]byte) (Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doLocked(cmd, args...)
}

func (c *Client) doLocked(cmd string, args ...[]byte) (Value, error) {
	parts := make([]Value, 0, len(args)+1)
	parts = append(parts, BulkString(cmd))
	for _, a := range args {
		parts = append(parts, Bulk(a))
	}
	if err := c.w.Write(Array(parts...)); err != nil {
		return Value{}, fmt.Errorf("redis: send %s: %w", cmd, err)
	}
	if err := c.w.Flush(); err != nil {
		return Value{}, fmt.Errorf("redis: send %s: %w", cmd, err)
	}
	v, err := c.r.Read()
	if err != nil {
		return Value{}, fmt.Errorf("redis: reply %s: %w", cmd, err)
	}
	if v.Kind == KindError {
		return Value{}, fmt.Errorf("redis: %s", v.Str)
	}
	return v, nil
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if v.Text() != "PONG" {
		return fmt.Errorf("redis: unexpected ping reply %q", v.Text())
	}
	return nil
}

// Set stores value under key.
func (c *Client) Set(key string, value []byte) error {
	_, err := c.Do("SET", []byte(key), value)
	return err
}

// Get fetches key; ErrNil if missing.
func (c *Client) Get(key string) ([]byte, error) {
	v, err := c.Do("GET", []byte(key))
	if err != nil {
		return nil, err
	}
	if v.IsNull() {
		return nil, fmt.Errorf("%w: %q", ErrNil, key)
	}
	return v.Bulk, nil
}

// Del removes keys, returning how many existed.
func (c *Client) Del(keys ...string) (int64, error) {
	args := make([][]byte, len(keys))
	for i, k := range keys {
		args[i] = []byte(k)
	}
	v, err := c.Do("DEL", args...)
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Exists reports whether key is present.
func (c *Client) Exists(key string) (bool, error) {
	v, err := c.Do("EXISTS", []byte(key))
	if err != nil {
		return false, err
	}
	return v.Int > 0, nil
}

// Keys returns keys matching a glob pattern.
func (c *Client) Keys(pattern string) ([]string, error) {
	v, err := c.Do("KEYS", []byte(pattern))
	if err != nil {
		return nil, err
	}
	out := make([]string, len(v.Array))
	for i, el := range v.Array {
		out[i] = el.Text()
	}
	return out, nil
}

// DBSize returns the number of keys on the server.
func (c *Client) DBSize() (int64, error) {
	v, err := c.Do("DBSIZE")
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// FlushAll clears the keyspace.
func (c *Client) FlushAll() error {
	_, err := c.Do("FLUSHALL")
	return err
}

// Incr increments an integer key, returning the new value.
func (c *Client) Incr(key string) (int64, error) {
	v, err := c.Do("INCR", []byte(key))
	if err != nil {
		return 0, err
	}
	return v.Int, nil
}

// Cluster is a client-side sharded view over several independent server
// instances, matching the paper's ServerManager deployment of Redis "as
// distinct instances or as a cluster": keys are routed by CRC32.
type Cluster struct {
	clients []*Client
}

// DialCluster connects to every address.
func DialCluster(addrs []string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("redis: empty cluster address list")
	}
	cl := &Cluster{}
	for _, a := range addrs {
		c, err := Dial(a)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.clients = append(cl.clients, c)
	}
	return cl, nil
}

// Close closes every member connection.
func (cl *Cluster) Close() error {
	var first error
	for _, c := range cl.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pick routes a key to its shard client.
func (cl *Cluster) pick(key string) *Client {
	return cl.clients[int(crc32.ChecksumIEEE([]byte(key))%uint32(len(cl.clients)))]
}

// Set stores value on the key's shard.
func (cl *Cluster) Set(key string, value []byte) error { return cl.pick(key).Set(key, value) }

// Get fetches key from its shard.
func (cl *Cluster) Get(key string) ([]byte, error) { return cl.pick(key).Get(key) }

// Del removes key from its shard.
func (cl *Cluster) Del(key string) (int64, error) { return cl.pick(key).Del(key) }

// Exists checks key on its shard.
func (cl *Cluster) Exists(key string) (bool, error) { return cl.pick(key).Exists(key) }

// Keys merges KEYS results from all shards.
func (cl *Cluster) Keys(pattern string) ([]string, error) {
	var all []string
	for _, c := range cl.clients {
		ks, err := c.Keys(pattern)
		if err != nil {
			return nil, err
		}
		all = append(all, ks...)
	}
	return all, nil
}

// FlushAll clears every shard.
func (cl *Cluster) FlushAll() error {
	for _, c := range cl.clients {
		if err := c.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}
