// Contention contract tests, in the external test package so they can
// drive the simulated contention model (internal/costmodel imports
// datastore, so the inline test package would cycle).
package datastore_test

import (
	"testing"

	"simaibench/internal/cluster"
	"simaibench/internal/costmodel"
	"simaibench/internal/datastore"
	"simaibench/internal/des"
	"simaibench/internal/stats"
)

// stagedP50 simulates k concurrent clients, each on its own node,
// periodically staging 8 MB snapshots against one shared deployment of
// b for ~2 virtual seconds, and returns the p50 staging latency. Clients
// are phase-aligned, so every period is a k-wide burst into the shared
// service queue — the worst-case multi-tenant arrival pattern.
func stagedP50(k int, b datastore.Backend) float64 {
	const (
		sizeMB  = 8.0
		period  = 0.05
		horizon = 2.0
	)
	env := des.NewEnv()
	m := costmodel.New(env, cluster.Aurora(k), costmodel.Default())
	samples := make([]float64, 0, k*int(horizon/period))
	for i := 0; i < k; i++ {
		var (
			start    float64
			inFlight bool
			xfer     *costmodel.SharedXfer
			wake     func()
		)
		// Open-loop cadence: the next wake is scheduled relative to this
		// one, not to op completion, so clients stay phase-aligned and
		// every period bursts k-wide. A wake that finds the previous op
		// still in flight skips its turn (SharedXfer.Start must not be
		// re-entered), dropping that sample rather than corrupting it —
		// under the calibrated constants ops drain well within a period,
		// so nothing is actually dropped today.
		wake = func() {
			if env.Now()+period <= horizon {
				env.After(period, wake)
			}
			if inFlight {
				return
			}
			inFlight = true
			start = env.Now()
			xfer.Start()
		}
		xfer = m.NewSharedLocalWrite(b, i, sizeMB, func() {
			inFlight = false
			samples = append(samples, env.Now()-start)
		})
		env.At(0, wake)
	}
	env.RunUntil(horizon * 2)
	return stats.Quantile(samples, 0.5)
}

// TestContentionP50MonotoneByBackend is the multi-tenant contract, in
// eachBackend style: as concurrent clients on ONE shared deployment
// double, the p50 staging latency of every shared backend (Redis,
// Dragon, FileSystem) is monotonically non-decreasing — queueing can
// only add delay — while per-node NodeLocal stays exactly flat.
func TestContentionP50MonotoneByBackend(t *testing.T) {
	clients := []int{1, 2, 4, 8, 16}
	for _, b := range datastore.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			p50s := make([]float64, len(clients))
			for i, k := range clients {
				p50s[i] = stagedP50(k, b)
				if p50s[i] <= 0 {
					t.Fatalf("k=%d: no staging latency measured", k)
				}
			}
			if datastore.SharedDeployment(b) {
				for i := 1; i < len(p50s); i++ {
					if p50s[i] < p50s[i-1]*(1-1e-9) {
						t.Fatalf("p50 decreased under load: clients %v → p50 %v", clients, p50s)
					}
				}
				if p50s[len(p50s)-1] <= p50s[0]*(1+1e-9) {
					t.Fatalf("shared backend never queued: clients %v → p50 %v", clients, p50s)
				}
			} else {
				for i := 1; i < len(p50s); i++ {
					if p50s[i] != p50s[0] {
						t.Fatalf("node-local p50 not flat: clients %v → p50 %v", clients, p50s)
					}
				}
			}
		})
	}
}

func TestSharedDeploymentClassification(t *testing.T) {
	want := map[datastore.Backend]bool{
		datastore.Redis:      true,
		datastore.Dragon:     true,
		datastore.FileSystem: true,
		datastore.NodeLocal:  false,
	}
	for b, shared := range want {
		if datastore.SharedDeployment(b) != shared {
			t.Errorf("SharedDeployment(%v) = %v, want %v", b, !shared, shared)
		}
	}
}

func TestServiceSlots(t *testing.T) {
	cases := []struct {
		cfg  datastore.ServerConfig
		want int
	}{
		{datastore.ServerConfig{Backend: datastore.Redis}, 1},
		{datastore.ServerConfig{Backend: datastore.Redis, Instances: 4}, 4},
		{datastore.ServerConfig{Backend: datastore.Dragon, Instances: 8}, 8},
		{datastore.ServerConfig{Backend: datastore.FileSystem, Shards: 3}, 3},
		{datastore.ServerConfig{Backend: datastore.NodeLocal}, 1},
	}
	for _, c := range cases {
		if got := c.cfg.ServiceSlots(); got != c.want {
			t.Errorf("ServiceSlots(%+v) = %d, want %d", c.cfg, got, c.want)
		}
	}
}
