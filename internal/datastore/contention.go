package datastore

// Multi-tenant contention metadata: which backends are shared
// serialization points when many workflows run against one deployment,
// and how many concurrent service slots a deployment offers. The
// simulated contention model (internal/costmodel's shared-service
// queues, built on internal/des Resources) keys off these answers, so
// the queueing behaviour of the scale-out scenarios stays tied to the
// ServerManager-level deployment shape rather than being a free-floating
// constant.

// SharedDeployment reports whether a deployment of backend b is shared
// infrastructure that serializes all tenants' staging traffic:
//
//   - Redis and Dragon servers are cluster-wide processes every client
//     connects to — concurrent workflows queue on their service threads.
//   - FileSystem is a Lustre-style shared mount: all tenants funnel
//     through the same metadata server and OST pool.
//   - NodeLocal is per-node tmpfs; each node (and so, under dedicated
//     placement, each tenant) brings its own, so nothing is shared and
//     staging scales with tenant count.
func SharedDeployment(b Backend) bool {
	return b != NodeLocal
}

// ServiceSlots reports the number of concurrent server-side service
// slots the configured deployment offers: one per Redis/Dragon server
// instance (each mini server services requests one at a time), and one
// per shard for the file-backed stores (independent shard directories
// absorb concurrent renames). This is the capacity the contention model
// gives the shared-service queue of a multi-tenant deployment.
func (cfg ServerConfig) ServiceSlots() int {
	slots := 1
	switch cfg.Backend {
	case Redis, Dragon:
		if cfg.Instances > 0 {
			slots = cfg.Instances
		}
	case NodeLocal, FileSystem:
		if cfg.Shards > 0 {
			slots = cfg.Shards
		}
	}
	return slots
}
