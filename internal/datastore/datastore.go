// Package datastore implements the paper's data-transport layer (§3.2):
// the ServerManager that deploys data-staging backends and the DataStore
// client that exposes one uniform API over all of them — stage_write,
// stage_read, poll_staged_data and clean_staged_data in the original.
//
// Four backends are supported, exactly the set the paper benchmarks:
//
//   - Redis        — the mini RESP server(s) of internal/redis
//   - Dragon       — the distributed dictionary of internal/dragon
//   - NodeLocal    — the sharded file store of internal/fskv on a
//     node-local (tmpfs-style) directory
//   - FileSystem   — the same sharded store on a shared (Lustre-style)
//     directory
//
// Selecting a backend is a runtime argument, which is what lets the
// mini-apps benchmark every transport without code changes — the paper's
// central design point.
package datastore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"simaibench/internal/clock"
	"simaibench/internal/dragon"
	"simaibench/internal/fskv"
	"simaibench/internal/redis"
)

// Backend identifies a data-transport implementation.
type Backend int

// The four transport backends from the paper's evaluation.
const (
	Redis Backend = iota
	Dragon
	NodeLocal
	FileSystem
)

// ParseBackend converts a CLI/config string to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "redis":
		return Redis, nil
	case "dragon":
		return Dragon, nil
	case "node-local", "nodelocal", "node_local":
		return NodeLocal, nil
	case "filesystem", "file-system", "fs", "lustre":
		return FileSystem, nil
	}
	return Redis, fmt.Errorf("datastore: unknown backend %q", s)
}

// String returns the canonical config name.
func (b Backend) String() string {
	switch b {
	case Redis:
		return "redis"
	case Dragon:
		return "dragon"
	case NodeLocal:
		return "node-local"
	case FileSystem:
		return "filesystem"
	}
	return "unknown"
}

// Backends lists all four, in the paper's presentation order.
func Backends() []Backend { return []Backend{Redis, FileSystem, Dragon, NodeLocal} }

// ErrNotStaged reports a key with no staged value yet; pollers treat it
// as "try again".
var ErrNotStaged = errors.New("datastore: key not staged")

// Store is the uniform client API (the paper's DataStore class).
// Implementations are safe for concurrent use.
type Store interface {
	// StageWrite publishes value under key. Writes are atomic: a
	// concurrent StageRead sees either the whole value or ErrNotStaged.
	StageWrite(key string, value []byte) error
	// StageRead returns the staged value, or ErrNotStaged.
	StageRead(key string) ([]byte, error)
	// Poll reports whether key is currently staged (poll_staged_data).
	Poll(key string) (bool, error)
	// Clean removes the given keys; missing keys are ignored
	// (clean_staged_data).
	Clean(keys ...string) error
	// Keys lists staged keys (diagnostics, ensemble discovery).
	Keys() ([]string, error)
	// Backend reports which transport this store uses.
	Backend() Backend
	// Close releases client resources (servers are owned by the
	// ServerManager, not the client).
	Close() error
}

// WaitStaged polls key at the given interval until it is staged or ctx
// is done, returning the value. It is the blocking read the paper's AI
// trainer uses on the many-to-one pattern. The wait runs on the wall
// clock; components on an emulation clock use WaitStagedClock so the
// poll cadence follows their time domain.
func WaitStaged(ctx context.Context, s Store, key string, interval time.Duration) ([]byte, error) {
	return WaitStagedClock(ctx, clock.Wall, s, key, interval)
}

// WaitStagedClock is WaitStaged with the poll interval spent on the
// given emulation clock: under a clock.Virtual the waiting participant
// parks in virtual time between polls, so a producer participant can
// run, and the wait costs (and is accounted as) whole poll ticks of
// virtual time instead of real ones.
func WaitStagedClock(ctx context.Context, c clock.Clock, s Store, key string, interval time.Duration) ([]byte, error) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	for {
		v, err := s.StageRead(key)
		if err == nil {
			return v, nil
		}
		if !errors.Is(err, ErrNotStaged) {
			return nil, err
		}
		if err := clock.SleepCtx(ctx, c, interval); err != nil {
			return nil, fmt.Errorf("datastore: waiting for %q: %w", key, err)
		}
	}
}

// ClientInfo is everything a client needs to connect to a running
// deployment. The ServerManager returns it from Start (the analogue of
// the paper's server.get_server_info()); it is JSON-serializable so
// remote components can receive it as launch metadata.
type ClientInfo struct {
	Backend Backend  `json:"backend"`
	Addrs   []string `json:"addrs,omitempty"`  // redis / dragon server addresses
	Dir     string   `json:"dir,omitempty"`    // node-local / filesystem root
	Shards  int      `json:"shards,omitempty"` // file-store shard count
}

// Connect opens a client Store for a running deployment.
func Connect(info ClientInfo) (Store, error) {
	switch info.Backend {
	case Redis:
		cl, err := redis.DialCluster(info.Addrs)
		if err != nil {
			return nil, err
		}
		return &redisStore{cluster: cl}, nil
	case Dragon:
		if len(info.Addrs) == 0 {
			return nil, errors.New("datastore: dragon needs server addresses")
		}
		eps := make([]dragon.Endpoint, 0, len(info.Addrs))
		for _, a := range info.Addrs {
			ep, err := dragon.DialEndpoint(a)
			if err != nil {
				for _, e := range eps {
					e.Close()
				}
				return nil, err
			}
			eps = append(eps, ep)
		}
		d, err := dragon.Attach(eps...)
		if err != nil {
			return nil, err
		}
		return &dragonStore{dict: d}, nil
	case NodeLocal, FileSystem:
		shards := info.Shards
		if shards < 1 {
			shards = 1
		}
		st, err := fskv.Open(info.Dir, shards)
		if err != nil {
			return nil, err
		}
		return &fsStore{store: st, backend: info.Backend}, nil
	}
	return nil, fmt.Errorf("datastore: unknown backend %v", info.Backend)
}

// --- file-backed store (node-local and filesystem) ---

type fsStore struct {
	store   *fskv.Store
	backend Backend
}

func (s *fsStore) StageWrite(key string, value []byte) error { return s.store.Put(key, value) }

func (s *fsStore) StageRead(key string) ([]byte, error) {
	v, err := s.store.Get(key)
	if errors.Is(err, fskv.ErrNotFound) {
		return nil, fmt.Errorf("%w: %q", ErrNotStaged, key)
	}
	return v, err
}

func (s *fsStore) Poll(key string) (bool, error) { return s.store.Exists(key), nil }

func (s *fsStore) Clean(keys ...string) error {
	for _, k := range keys {
		if err := s.store.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

func (s *fsStore) Keys() ([]string, error) { return s.store.Keys() }
func (s *fsStore) Backend() Backend        { return s.backend }
func (s *fsStore) Close() error            { return nil }

// --- redis-backed store ---

type redisStore struct {
	cluster *redis.Cluster
}

func (s *redisStore) StageWrite(key string, value []byte) error {
	return s.cluster.Set(key, value)
}

func (s *redisStore) StageRead(key string) ([]byte, error) {
	v, err := s.cluster.Get(key)
	if errors.Is(err, redis.ErrNil) {
		return nil, fmt.Errorf("%w: %q", ErrNotStaged, key)
	}
	return v, err
}

func (s *redisStore) Poll(key string) (bool, error) { return s.cluster.Exists(key) }

func (s *redisStore) Clean(keys ...string) error {
	for _, k := range keys {
		if _, err := s.cluster.Del(k); err != nil {
			return err
		}
	}
	return nil
}

func (s *redisStore) Keys() ([]string, error) { return s.cluster.Keys("*") }
func (s *redisStore) Backend() Backend        { return Redis }
func (s *redisStore) Close() error            { return s.cluster.Close() }

// --- dragon-backed store ---

type dragonStore struct {
	dict *dragon.Dict
}

func (s *dragonStore) StageWrite(key string, value []byte) error {
	return s.dict.Put(key, value)
}

func (s *dragonStore) StageRead(key string) ([]byte, error) {
	v, err := s.dict.Get(key)
	if errors.Is(err, dragon.ErrNotFound) {
		return nil, fmt.Errorf("%w: %q", ErrNotStaged, key)
	}
	return v, err
}

func (s *dragonStore) Poll(key string) (bool, error) { return s.dict.Has(key) }

func (s *dragonStore) Clean(keys ...string) error {
	for _, k := range keys {
		if err := s.dict.Del(k); err != nil {
			return err
		}
	}
	return nil
}

func (s *dragonStore) Keys() ([]string, error) { return s.dict.Keys() }
func (s *dragonStore) Backend() Backend        { return Dragon }
func (s *dragonStore) Close() error            { return s.dict.Close() }
